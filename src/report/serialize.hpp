// Plain-text serialization of client observations — the checker's input
// format, so real systems (or test rigs) can dump observations and audit
// them offline with the `crooks-check` tool.
//
// Format (whitespace-separated, '#' starts a comment):
//
//   default-level ReadCommitted   # optional: level for unannotated txns
//   txn 1 session=2 site=0 start=5 commit=9 level=Serializable
//     read 3 0            # read key 3, observed the initial value ⊥
//     read 4 7 phantom    # read key 4, observed a value no state contains
//     write 5
//   end
//   vo 3 1 7              # optional: install order of key 3 was T1 then T7
//
// Attributes are optional; `read k w` names the observed writer transaction
// (0 = ⊥). Ids are positive integers. `level=` declares the isolation level
// the transaction ran at (canonical names or the RU/RC/RA/SI/SER/SSER
// aliases — anything else is a parse error naming the valid spellings); the
// history-wide `default-level` directive sets the level of unannotated
// transactions when the history is audited as a mixed-level assignment.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "committest/levels.hpp"
#include "model/transaction.hpp"

namespace crooks::report {

struct Observations {
  model::TransactionSet txns;
  std::unordered_map<Key, std::vector<TxnId>> version_order;  // may be empty
  /// The `default-level` directive, when present: the level unannotated
  /// transactions run at in a mixed-level audit.
  std::optional<ct::IsolationLevel> default_level;

  bool has_version_order() const { return !version_order.empty(); }

  /// True when the input declared any level information (per-transaction
  /// annotations or the history-wide directive) — the cue for tools to audit
  /// with a per-transaction assignment instead of one global level.
  bool has_level_annotations() const {
    if (default_level.has_value()) return true;
    for (const model::Transaction& t : txns) {
      if (t.level().has_value()) return true;
    }
    return false;
  }
};

/// Parse the format above. Throws std::invalid_argument with a line-numbered
/// message on malformed input.
Observations parse_observations(std::istream& in);
Observations parse_observations(const std::string& text);

/// Serialize; parse(write(x)) reconstructs x exactly.
void write_observations(std::ostream& out, const Observations& obs);
std::string to_text(const Observations& obs);

}  // namespace crooks::report
