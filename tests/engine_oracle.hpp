// Shared three-way differential oracle for the checker's engine tiers.
//
// run_three_way() forces the direct, graph, and exhaustive engines (via
// CheckOptions::engine) onto the same compiled history and asserts the
// cross-engine contract:
//   * the exhaustive engine always decides — it is the oracle,
//   * the direct engine decides every eligible level (RC/RA/PSI); its PSI
//     saturation may resolve through the exhaustive fallback but must not
//     give up while the history fits opts.exhaustive_threshold,
//   * any engine that decides agrees with the oracle's verdict,
//   * every SAT witness verifies against the canonical commit tests (the
//     engines legitimately produce *different* orders — equality is modulo
//     "is a valid execution for this level", which verify_witness decides),
//   * every UNSAT verdict carries the same canonical diagnosis (violating
//     transaction, clause, candidate execution): all engines delegate to the
//     single explain_refutation() entry point, so divergence means an engine
//     refuted a different history than the one it was given.
//
// The classic anomaly × level scenarios (anomaly_matrix_test.cpp's table)
// live here too, so engine suites can re-run them without duplicating it.
#pragma once

#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <string>
#include <vector>

#include "checker/checker.hpp"

namespace crooks::checker::oracle {

using L = ct::IsolationLevel;

struct Scenario {
  std::string name;
  model::TransactionSet txns;
  std::set<L> satisfiable;
};

inline const std::set<L>& all_levels() {
  static const std::set<L> kAll{
      L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic,
      L::kPSI,             L::kAdyaSI,        L::kAnsiSI,
      L::kSessionSI,       L::kStrongSI,      L::kSerializable,
      L::kStrictSerializable};
  return kAll;
}

inline std::set<L> all_but(std::initializer_list<L> unsat) {
  std::set<L> s = all_levels();
  for (L l : unsat) s.erase(l);
  return s;
}

/// The classic anomalies with their expected per-level verdicts (§4–§5).
inline std::vector<Scenario> anomaly_scenarios() {
  using model::TransactionSet;
  using model::TxnBuilder;
  constexpr Key kX{0}, kY{1};
  const std::set<L> kAll = all_levels();

  std::vector<Scenario> out;

  out.push_back({"clean_serial_chain",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 1).build(),
                     TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(2, 3).build(),
                     TxnBuilder(3).read(kX, TxnId{1}).read(kY, TxnId{2}).at(4, 5).build(),
                 }},
                 kAll});

  out.push_back({"write_skew",
                 TransactionSet{{
                     TxnBuilder(1).read(kX, kInitTxn).read(kY, kInitTxn).write(kX).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).read(kY, kInitTxn).write(kY).at(1, 11).build(),
                 }},
                 all_but({L::kSerializable, L::kStrictSerializable})});

  out.push_back({"lost_update",
                 TransactionSet{{
                     TxnBuilder(1).read(kX, kInitTxn).write(kX).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).write(kX).at(1, 11).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic}});

  out.push_back({"long_fork",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 10).build(),
                     TxnBuilder(2).write(kY).at(1, 11).build(),
                     TxnBuilder(3).read(kX, TxnId{1}).read(kY, kInitTxn).at(2, 12).build(),
                     TxnBuilder(4).read(kX, kInitTxn).read(kY, TxnId{2}).at(3, 13).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic, L::kPSI}});

  out.push_back({"causality_violation",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 10).build(),
                     TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(11, 12).build(),
                     TxnBuilder(3).read(kY, TxnId{2}).read(kX, kInitTxn).at(13, 14).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic}});

  out.push_back({"fractured_read",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).write(kY).at(0, 10).build(),
                     TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).at(1, 11).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted}});

  out.push_back({"dirty_read_aborted",
                 TransactionSet{{
                     TxnBuilder(2).read(kX, TxnId{99}).at(0, 1).build(),
                 }},
                 {L::kReadUncommitted}});

  out.push_back({"intermediate_read",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 1).build(),
                     TxnBuilder(2).read_intermediate(kX, TxnId{1}).at(2, 3).build(),
                 }},
                 {L::kReadUncommitted}});

  out.push_back({"session_inversion",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).session(SessionId{1}).at(20, 30).build(),
                 }},
                 all_but({L::kSessionSI, L::kStrongSI, L::kStrictSerializable})});

  out.push_back({"cross_session_staleness",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).session(SessionId{2}).at(20, 30).build(),
                 }},
                 all_but({L::kStrongSI, L::kStrictSerializable})});

  return out;
}

struct ThreeWay {
  CheckResult direct;
  CheckResult graph;
  CheckResult exhaustive;
};

/// Run all three engines on the same compiled history and assert the
/// cross-engine contract (non-fatally — wrap calls in SCOPED_TRACE for
/// context). Returns the three results for extra, caller-specific checks.
inline ThreeWay run_three_way(L level, const model::CompiledHistory& ch,
                              CheckOptions opts = {}) {
  ThreeWay r;
  CheckOptions sel = opts;
  sel.engine = EngineSelect::kDirect;
  r.direct = check(level, ch, sel);
  sel.engine = EngineSelect::kGraph;
  r.graph = check(level, ch, sel);
  sel.engine = EngineSelect::kExhaustive;
  r.exhaustive = check(level, ch, sel);

  EXPECT_NE(r.exhaustive.outcome, Outcome::kUnknown)
      << ct::name_of(level) << ": oracle undecided: " << r.exhaustive.detail;
  if (direct_eligible(level) && ch.size() <= opts.exhaustive_threshold) {
    EXPECT_NE(r.direct.outcome, Outcome::kUnknown)
        << ct::name_of(level)
        << ": direct engine gave up within the fallback budget: "
        << r.direct.detail;
  }

  const auto against_oracle = [&](const char* name, const CheckResult& e) {
    if (e.outcome == Outcome::kUnknown) return;  // honest "no opinion"
    EXPECT_EQ(e.outcome, r.exhaustive.outcome)
        << ct::name_of(level) << ": " << name << " says " << e.detail
        << "\n but the oracle says " << r.exhaustive.detail;
    if (e.satisfiable()) {
      ASSERT_TRUE(e.witness.has_value()) << name;
      const ct::ExecutionVerdict v = verify_witness(level, ch, *e.witness);
      EXPECT_TRUE(v.ok) << ct::name_of(level) << ": " << name
                        << " witness fails the commit tests: " << v.explanation;
    }
    if (e.unsatisfiable() && r.exhaustive.unsatisfiable()) {
      ASSERT_EQ(e.diagnosis.has_value(), r.exhaustive.diagnosis.has_value())
          << ct::name_of(level) << ": " << name;
      if (e.diagnosis.has_value()) {
        EXPECT_EQ(e.diagnosis->txn, r.exhaustive.diagnosis->txn)
            << ct::name_of(level) << ": " << name;
        EXPECT_EQ(e.diagnosis->clause, r.exhaustive.diagnosis->clause)
            << ct::name_of(level) << ": " << name;
        EXPECT_EQ(e.diagnosis->candidate_execution,
                  r.exhaustive.diagnosis->candidate_execution)
            << ct::name_of(level) << ": " << name;
      }
    }
  };
  against_oracle("direct", r.direct);
  against_oracle("graph", r.graph);
  return r;
}

inline ThreeWay run_three_way(L level, const model::TransactionSet& txns,
                              CheckOptions opts = {}) {
  const model::CompiledHistory ch(txns);
  return run_three_way(level, ch, opts);
}

}  // namespace crooks::checker::oracle
