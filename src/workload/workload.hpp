// Workload generators: transaction intents for the store and the
// replication simulator.
//
// The paper's Figure 5 workload is generate_mix with 3 reads + 3 writes,
// uniform over 10,000 keys. Other experiments use variations (Zipfian skew,
// read-only fractions, session-structured clients).
#pragma once

#include <cstdint>
#include <vector>

#include "store/runner.hpp"

namespace crooks::wl {

struct MixOptions {
  std::size_t transactions = 100;
  std::size_t keys = 1000;
  std::size_t reads_per_txn = 3;
  std::size_t writes_per_txn = 3;
  double zipf_theta = 0;          // 0 = uniform key choice
  double read_only_fraction = 0;  // fraction of transactions with no writes
  std::uint32_t sessions = 0;     // >0: assign round-robin session ids
  std::uint32_t sites = 1;        // >0: assign round-robin site ids (PSI)
  std::uint64_t seed = 1;
};

/// Random read/write transactions. Keys within one transaction are distinct
/// (the model's writes-once rule) and reads precede writes of the same key.
std::vector<store::TxnIntent> generate_mix(const MixOptions& opts);

/// The Figure 3 banking scenario: `pairs` couples, each with a checking and
/// a savings account; each couple issues two concurrent withdrawals — one
/// reads both balances then debits checking, the other reads both then
/// debits savings. Under SER one of each pair must observe the other; under
/// SI both may read the stale snapshot (write skew).
std::vector<store::TxnIntent> banking_withdrawals(std::size_t pairs);

/// Mixed-level deployment profile: the banking withdrawals declared at
/// `critical_level` interleaved with a read-mostly background mix declared at
/// `background_level` — the "SER where it matters, RC everywhere else"
/// pattern mixed-level audits exist for. Background keys are offset past the
/// account keys so the populations share no data; the interleaving is
/// decided by the runner's scheduler, not the intent order.
struct MixedProfileOptions {
  std::size_t pairs = 4;                     // banking couples
  MixOptions background;                     // read-mostly filler traffic
  ct::IsolationLevel critical_level = ct::IsolationLevel::kSerializable;
  ct::IsolationLevel background_level = ct::IsolationLevel::kReadCommitted;
};
std::vector<store::TxnIntent> generate_mixed_profile(const MixedProfileOptions& opts);

}  // namespace crooks::wl
