// Read-state analysis over one execution (Definitions 2–4 and the PSI
// precedence sets of §4).
//
// Given a TransactionSet 𝒯 and an Execution e, this computes, for every
// operation o, the contiguous interval of candidate read states RS_e(o) =
// [sf_o, sl_o]; per transaction, PREREAD_e(T), the COMPLETE-state interval
// (the intersection of the per-operation intervals), and the NO-CONF
// threshold (the earliest state s with Δ(s, s_p) ∩ W_T = ∅); and, lazily,
// the D-PREC / PREC precedence relation used by the PSI / PL-2+ commit test.
//
// The analysis operates on the CompiledHistory form: operation classification
// (phantom / internal / unknown writer) and writer resolution are precomputed
// there, so this pass is pure index arithmetic on per-key version timelines
// indexed by dense KeyIdx; no state is ever materialized and no hashing
// happens per operation. Construction is O(|ops| · log |versions|).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "common/interval.hpp"
#include "model/compiled.hpp"
#include "model/execution.hpp"
#include "model/transaction.hpp"

namespace crooks::model {

/// One installed version of a key in the execution order.
struct VersionEntry {
  StateIndex pos = 0;              // state index where this version became current
  TxnId writer = kInitTxn;         // transaction that installed it
  TxnIdx writer_dense = kNoTxnIdx; // dense index of the writer (kNoTxnIdx for ⊥)
};

/// Per-operation results.
struct OpAnalysis {
  StateInterval rs;       // RS_e(o) as a closed interval; empty ⇒ PREREAD fails
  bool internal = false;  // read that follows the transaction's own write
};

/// Per-transaction results.
struct TxnAnalysis {
  StateIndex state = 0;      // index of s_T (the state this transaction generates)
  StateIndex parent = 0;     // index of s_p (= state - 1)
  bool preread = false;      // PREREAD_e(T)
  StateInterval complete;    // states s with COMPLETE_{e,T}(s); may be empty
  StateIndex no_conf_min = 0;  // smallest s such that NO-CONF_T(s) holds
  std::vector<OpAnalysis> ops;
};

/// Transitive precedence (the ▷ relation of the PSI commit test).
class Precedence {
 public:
  /// Does `a` (dense index) transitively precede `b` (dense index)?
  bool precedes(std::size_t a, std::size_t b) const { return prec_[b].test(a); }

  /// The full PREC_e set of a transaction, as a bitset over dense indices.
  const DynamicBitset& prec_set(std::size_t dense) const { return prec_[dense]; }

  /// |D-PREC_e(T)|: number of *direct* predecessors (Fig. 5's dependency metric).
  std::size_t direct_count(std::size_t dense) const { return direct_count_[dense]; }

 private:
  friend class ReadStateAnalysis;
  std::vector<DynamicBitset> prec_;
  std::vector<std::size_t> direct_count_;
};

class ReadStateAnalysis {
 public:
  /// Compiles the set privately; prefer the CompiledHistory overload when the
  /// same history is analyzed against several executions.
  ReadStateAnalysis(const TransactionSet& txns, const Execution& e);

  /// Shares an existing compilation (must outlive this analysis).
  ReadStateAnalysis(const CompiledHistory& ch, const Execution& e);

  const TransactionSet& txns() const { return ch_->txns(); }
  const CompiledHistory& compiled() const { return *ch_; }
  const Execution& execution() const { return *exec_; }

  const TxnAnalysis& txn(std::size_t dense) const { return txn_[dense]; }
  const TxnAnalysis& txn(TxnId id) const { return txn_[txns().dense_index_of(id)]; }
  std::size_t size() const { return txn_.size(); }

  /// PREREAD_e(𝒯): every operation of every transaction has a read state.
  bool preread_all() const { return preread_all_; }

  /// The ordered version timeline of a key (always starts with the initial ⊥
  /// version at state 0).
  const std::vector<VersionEntry>& timeline(Key k) const;
  const std::vector<VersionEntry>& timeline_idx(KeyIdx k) const { return timelines_[k]; }

  /// State index of the last write to `k` at or before state `s` (0 when `k`
  /// was never written that early, i.e. the key still holds ⊥).
  StateIndex last_write_at_or_before(Key k, StateIndex s) const;
  StateIndex last_write_at_or_before_idx(KeyIdx k, StateIndex s) const;

  /// Invoke f(writer TxnId, position) for every version of `k` installed at a
  /// state index in (lo, hi]; both bounds are state indices.
  template <typename F>
  void for_writers_in(Key k, StateIndex lo_exclusive, StateIndex hi_inclusive, F&& f) const {
    for (const VersionEntry& v : timeline(k)) {
      if (v.pos > hi_inclusive) break;
      if (v.pos > lo_exclusive) f(v.writer, v.pos);
    }
  }

  /// Same, over dense key index; f receives the full VersionEntry (so callers
  /// can use the dense writer index without a hash lookup).
  template <typename F>
  void for_writers_in_idx(KeyIdx k, StateIndex lo_exclusive, StateIndex hi_inclusive,
                          F&& f) const {
    for (const VersionEntry& v : timelines_[k]) {
      if (v.pos > hi_inclusive) break;
      if (v.pos > lo_exclusive) f(v);
    }
  }

  /// Lazily computed ▷ relation (transitive closure of D-PREC along e).
  /// Only meaningful when PREREAD holds for the transactions involved;
  /// operations with empty read states contribute no read edges.
  const Precedence& precedence() const;

 private:
  void init();
  void analyze_transaction(std::size_t dense);
  StateInterval read_states_of(std::size_t dense, const CompiledOp& op) const;

  std::unique_ptr<const CompiledHistory> owned_;  // set by the TransactionSet ctor
  const CompiledHistory* ch_;
  const Execution* exec_;
  std::vector<std::vector<VersionEntry>> timelines_;  // indexed by KeyIdx
  std::vector<TxnAnalysis> txn_;
  bool preread_all_ = true;
  mutable std::optional<Precedence> precedence_;
};

}  // namespace crooks::model
