// End-to-end integration: store → observations → serialization → parsing →
// audit → verdicts, crossing every module boundary the way a real deployment
// would (dump the commit log, ship it to the auditor, read the report).
#include <gtest/gtest.h>

#include "adya/phenomena.hpp"
#include "common/rng.hpp"
#include "replication/geo_store.hpp"
#include "report/report.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

namespace crooks {
namespace {

TEST(Integration, StoreDumpAuditRoundTrip) {
  // 1. Run a snapshot-isolation store on a contended workload.
  const auto intents = wl::generate_mix({.transactions = 40,
                                         .keys = 6,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .sessions = 4,
                                         .seed = 9});
  const store::RunResult run = store::run(
      intents, {.mode = store::CCMode::kSnapshotIsolation, .seed = 2,
                .concurrency = 6, .retries = 3});

  // 2. Dump observations to text, as a real system would.
  const report::Observations dumped{run.observations, run.version_order, std::nullopt};
  const std::string text = report::to_text(dumped);
  ASSERT_FALSE(text.empty());

  // 3. Parse the dump back and audit it.
  const report::Observations parsed = report::parse_observations(text);
  const report::AuditResult audit = report::audit(parsed);

  // 4. The audit confirms the mode's contract (ANSI SI) from text alone.
  ASSERT_TRUE(audit.strongest.has_value());
  EXPECT_TRUE(ct::at_least_as_strong(*audit.strongest, ct::IsolationLevel::kAnsiSI))
      << audit.text;
  EXPECT_NE(audit.text.find("PASS  AnsiSI"), std::string::npos) << audit.text;
}

TEST(Integration, GeoStoreDumpNamesThePsiContract) {
  repl::GeoStore g({.sites = 3, .replication_delay = 5});
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const TxnId t = g.begin(SiteId{static_cast<std::uint32_t>(rng.below(3))});
    std::unordered_set<std::uint64_t> written;
    for (int op = 0; op < 4; ++op) {
      const std::uint64_t k = rng.below(6);
      if (rng.chance(0.5)) {
        g.read(t, Key{k});
      } else if (written.insert(k).second) {
        g.write(t, Key{k});
      }
    }
    if (g.is_active(t)) g.commit(t);
  }

  const report::Observations dumped{g.observations(), g.version_order(), std::nullopt};
  const report::Observations parsed = report::parse_observations(report::to_text(dumped));
  const report::AuditResult audit = report::audit(parsed);
  EXPECT_NE(audit.text.find("PASS  PSI"), std::string::npos) << audit.text;
}

TEST(Integration, InjectedAnomalySurvivesTheFullPipeline) {
  // Hand-inject a fractured read into otherwise clean observations and watch
  // it surface, by name, in the final report.
  const report::Observations obs = report::parse_observations(
      "txn 1 start=0 commit=10\n  write 0\n  write 1\nend\n"
      "txn 2 start=11 commit=20\n  read 0 1\n  read 1 0\nend\n"
      "vo 0 1\nvo 1 1\n");
  const report::AuditResult audit = report::audit(obs);
  EXPECT_NE(audit.text.find("FAIL  ReadAtomic"), std::string::npos) << audit.text;
  EXPECT_NE(audit.text.find("fractured"), std::string::npos) << audit.text;
  EXPECT_NE(audit.text.find("PASS  ReadCommitted"), std::string::npos);
}

TEST(Integration, PhenomenaAndCheckerAgreeAfterSerialization) {
  const auto intents = wl::generate_mix({.transactions = 20,
                                         .keys = 5,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = 17});
  const store::RunResult run = store::run(
      intents, {.mode = store::CCMode::kReadCommitted, .seed = 6, .concurrency = 6});
  const report::Observations parsed = report::parse_observations(
      report::to_text({run.observations, run.version_order, std::nullopt}));

  const adya::History h = adya::from_observations(parsed.txns, parsed.version_order);
  const adya::Phenomena p = adya::detect(h);
  checker::CheckOptions opts;
  opts.version_order = &parsed.version_order;
  for (ct::IsolationLevel level : ct::kAllLevels) {
    const adya::Verdict av = adya::satisfies(p, level);
    if (av == adya::Verdict::kInapplicable) continue;
    const checker::CheckResult cr = checker::check(level, parsed.txns, opts);
    if (cr.outcome == checker::Outcome::kUnknown) continue;
    EXPECT_EQ(av == adya::Verdict::kSatisfied, cr.satisfiable()) << ct::name_of(level);
  }
}

}  // namespace
}  // namespace crooks
