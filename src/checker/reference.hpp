// Frozen hash-based reference engine.
//
// This is the pre-compile exhaustive search and read-state analysis, kept
// verbatim as a baseline: per-key timelines in unordered_maps, `contains(w)` /
// `by_id(w)` probes on every search node — exactly the representation
// CompiledHistory replaced. Two consumers:
//
//  * tests/compiled_history_test.cpp runs it differentially against the
//    compiled engines — verdicts must agree on every level, with and without
//    version orders (compilation is a pure re-indexing);
//  * bench_ablation_checker's `representation` ablation measures the speedup
//    of the compiled engine over this baseline in the same binary.
//
// The one deliberate divergence from the historical code: the candidate
// comparator. The original compared untimestamped transactions "equivalent"
// to everything, which is not a strict weak order on mixed
// timestamped/untimestamped sets (UB in std::sort) — freezing that would
// freeze the bug. This copy uses the fixed total order (timestamped first by
// commit timestamp, untimestamped after, dense index as tie-break), which is
// also CompiledHistory::ts_order() — candidate ordering affects node counts
// and witness choice, never verdicts.
//
// Do not "improve" this file; it is only useful while it stays hashed.
#pragma once

#include <vector>

#include "checker/checker.hpp"
#include "common/interval.hpp"

namespace crooks::checker::reference {

/// Sequential branch-and-bound over execution prefixes on the hashed
/// representation. Verdict-equivalent to check_exhaustive(level, txns, opts)
/// with opts.threads == 1 (identical candidate order ⇒ identical node
/// counts, too).
CheckResult check_exhaustive_hashed(ct::IsolationLevel level,
                                    const model::TransactionSet& txns,
                                    const CheckOptions& opts = {});

/// The hashed read-state computation: per-op RS_e(o) intervals of every
/// transaction under `e`, index-aligned with Transaction::ops(). Must match
/// ReadStateAnalysis (which runs on the compiled form) interval-for-interval.
std::vector<std::vector<StateInterval>> read_state_intervals_hashed(
    const model::TransactionSet& txns, const model::Execution& e);

}  // namespace crooks::checker::reference
