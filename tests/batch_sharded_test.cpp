// The size-class sharded batch scheduler and its MPMC result queue.
//
// check_batch's sharding (tiny chains packed many-per-task, medium chains one
// task each, large chains branch-parallel) is pure scheduling: whatever the
// shard shape, every result must be the one a lone check() would produce.
// These tests pin that down on mixed-size batches, prefix-extension chains,
// and failure paths, and they gate the scheduler's observability invariants:
//   * zero dropped results — crooks_batch_results_total advances exactly as
//     much as crooks_batch_items_total on a successful batch (the CI gate);
//   * the prescan-skip counter advances when the cheap id/size pass rejects a
//     prefix-extension candidate before any op vectors are compared.
// The MpmcQueue unit tests double as the TSan data-race gate for the lock-free
// ring (concurrent producers/consumers, blocking pop, full/empty edges).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "checker/checker.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "workload/observations.hpp"

namespace crooks {
namespace {

using checker::BatchItem;
using checker::CheckOptions;
using checker::CheckResult;
using checker::Outcome;
using ct::IsolationLevel;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// --- MpmcQueue --------------------------------------------------------------

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(MpmcQueue<int>(16).capacity(), 16u);
  EXPECT_EQ(MpmcQueue<int>(17).capacity(), 32u);
}

TEST(MpmcQueue, FifoWithinCapacity) {
  MpmcQueue<int> q(8);
  int out = -1;
  EXPECT_FALSE(q.try_pop(out));  // empty at birth
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // exactly full
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);  // strict FIFO
  }
  EXPECT_FALSE(q.try_pop(out));  // drained
  EXPECT_EQ(q.pushed(), 8u);
}

TEST(MpmcQueue, RingRecyclesAcrossWraparound) {
  // Push/pop many times the capacity through a tiny ring: every cell's
  // sequence number must recycle correctly or a later lap would stall.
  MpmcQueue<int> q(4);
  int out = -1;
  for (int lap = 0; lap < 100; ++lap) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.try_push(lap * 3 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.try_pop(out));
      EXPECT_EQ(out, lap * 3 + i);
    }
  }
}

TEST(MpmcQueue, BlockingPopWakesOnPush) {
  MpmcQueue<int> q(2);
  std::thread consumer([&q] {
    // Blocks until the producer below pushes; must not miss the wakeup.
    EXPECT_EQ(q.pop(), 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.push(42);
  consumer.join();
}

TEST(MpmcQueue, BlockingPushSqueezesThroughTinyRing) {
  // Producer pushes far more items than the ring holds; push() must block
  // (yield) on full and make progress as the consumer drains. Order is
  // preserved for a single producer/consumer pair.
  MpmcQueue<int> q(2);
  constexpr int kItems = 500;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) q.push(i);
  });
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(q.pop(), i);
  producer.join();
}

TEST(MpmcQueue, ConcurrentProducersConsumersConserveSum) {
  // The TSan gate for the lock-free ring: 4 producers and 4 consumers hammer
  // a ring much smaller than the item count (constant wraparound, frequent
  // full/empty transitions, parked pops). Every pushed value must be popped
  // exactly once: the per-consumer sums add up to the known total.
  constexpr std::size_t kProducers = 4, kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  MpmcQueue<std::uint64_t> q(16);
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> consumed(kConsumers, 0);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &consumed, c] {
      // Pops exactly its share; totals match, so every blocking pop returns.
      const std::uint64_t n = kPerProducer * kProducers / kConsumers;
      for (std::uint64_t i = 0; i < n; ++i) consumed[c] += q.pop();
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t total = kPerProducer * kProducers;
  EXPECT_EQ(std::accumulate(consumed.begin(), consumed.end(), std::uint64_t{0}),
            total * (total + 1) / 2);
  EXPECT_EQ(q.pushed(), total);
}

// --- sharded check_batch ----------------------------------------------------

/// A batch that exercises every size class and the tiny-packing limit: more
/// than kTinyPack (16) consecutive tiny histories, a few medium, two large.
struct MixedBatch {
  std::vector<wl::FuzzedObservations> fuzzed;
  std::vector<BatchItem> items;
};

MixedBatch make_mixed(std::uint64_t seed) {
  MixedBatch b;
  auto add = [&b](std::uint64_t s, std::size_t txns) {
    wl::ObservationFuzzOptions o;
    o.transactions = txns;
    o.keys = 4;
    b.fuzzed.push_back(wl::fuzz_observations(s, o));
  };
  // 20 tiny chains in a row: must split into at least two packed shards.
  for (std::size_t i = 0; i < 20; ++i) add(seed * 100 + i, 4);
  for (std::size_t i = 0; i < 3; ++i) add(seed * 100 + 40 + i, 7);   // medium
  for (std::size_t i = 0; i < 2; ++i) add(seed * 100 + 60 + i, 9);   // large
  b.items.reserve(b.fuzzed.size());
  for (const wl::FuzzedObservations& f : b.fuzzed) {
    b.items.push_back({&f.txns, nullptr});
  }
  return b;
}

class ShardedBatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedBatch, MixedSizeClassesMatchLoneCheck) {
  const MixedBatch b = make_mixed(GetParam());
  for (IsolationLevel level :
       {IsolationLevel::kReadAtomic, IsolationLevel::kSerializable}) {
    std::vector<CheckResult> lone;
    for (const BatchItem& item : b.items) {
      CheckOptions o;
      o.threads = 1;
      lone.push_back(checker::check(level, *item.txns, o));
    }
    for (std::size_t threads : kThreadCounts) {
      CheckOptions o;
      o.threads = threads;
      const std::vector<CheckResult> batch = checker::check_batch(level, b.items, o);
      ASSERT_EQ(batch.size(), b.items.size());
      for (std::size_t i = 0; i < b.items.size(); ++i) {
        if (lone[i].outcome != Outcome::kUnknown) {
          // The determinism contract: sharding and branch-parallel large
          // shards never contradict a definite sequential verdict.
          EXPECT_EQ(batch[i].outcome, lone[i].outcome)
              << ct::name_of(level) << " item " << i << " at " << threads
              << " threads: " << batch[i].detail;
        } else {
          // A parallel large shard may upgrade kUnknown to kSatisfiable,
          // never to kUnsatisfiable.
          EXPECT_NE(batch[i].outcome, Outcome::kUnsatisfiable)
              << ct::name_of(level) << " item " << i << " at " << threads;
        }
        if (batch[i].satisfiable()) {
          ASSERT_TRUE(batch[i].witness.has_value());
          EXPECT_TRUE(
              checker::verify_witness(level, *b.items[i].txns, *batch[i].witness).ok)
              << ct::name_of(level) << " item " << i << " at " << threads;
        }
      }
    }
  }
}

TEST_P(ShardedBatch, PrefixChainsMatchLoneCheck) {
  // Growing prefixes of one history (an audit stream) followed by an
  // unrelated history: the scheduler must detect the chain, grow one
  // compilation via extend(), and still reproduce every lone verdict.
  wl::ObservationFuzzOptions fo;
  fo.transactions = 6;
  fo.keys = 4;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), fo);
  const wl::FuzzedObservations other = wl::fuzz_observations(GetParam() + 1000, fo);
  std::vector<model::TransactionSet> histories;
  for (std::size_t n = 2; n <= f.txns.size(); ++n) {
    model::TransactionSet prefix;
    for (std::size_t t = 0; t < n; ++t) prefix.append(f.txns.at(t));
    histories.push_back(std::move(prefix));
  }
  histories.push_back(other.txns);

  for (IsolationLevel level :
       {IsolationLevel::kReadAtomic, IsolationLevel::kSerializable}) {
    std::vector<CheckResult> lone;
    for (const model::TransactionSet& h : histories) {
      CheckOptions o;
      o.threads = 1;
      lone.push_back(checker::check(level, h, o));
    }
    for (std::size_t threads : kThreadCounts) {
      CheckOptions o;
      o.threads = threads;
      const std::vector<CheckResult> batch = checker::check_batch(
          level, std::span<const model::TransactionSet>(histories), o);
      ASSERT_EQ(batch.size(), histories.size());
      for (std::size_t i = 0; i < histories.size(); ++i) {
        EXPECT_EQ(batch[i].outcome, lone[i].outcome)
            << ct::name_of(level) << " prefix " << i << " at " << threads
            << " threads";
        if (batch[i].satisfiable()) {
          EXPECT_TRUE(
              checker::verify_witness(level, histories[i], *batch[i].witness).ok);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedBatch, ::testing::Range<std::uint64_t>(1, 9));

// --- scheduler observability invariants -------------------------------------

TEST(ShardedBatchMetrics, ZeroDroppedResultsOnSuccess) {
  // The invariant CI gates on: every submitted history produces exactly one
  // result record, whatever the shard shapes and thread count.
  obs::set_enabled(true);
  obs::Counter& items = obs::Registry::global().counter("crooks_batch_items_total");
  obs::Counter& results =
      obs::Registry::global().counter("crooks_batch_results_total");
  obs::Counter& chains =
      obs::Registry::global().counter("crooks_batch_chains_total");
  obs::Counter& tiny_shards = obs::Registry::global().counter(
      "crooks_batch_shard_total", "", {{"class", "tiny"}});
  obs::Counter& large_shards = obs::Registry::global().counter(
      "crooks_batch_shard_total", "", {{"class", "large"}});
  obs::Counter& tiny_nodes = obs::Registry::global().counter(
      "crooks_batch_nodes_explored_total", "", {{"class", "tiny"}});

  const MixedBatch b = make_mixed(99);
  const std::uint64_t items0 = items.value(), results0 = results.value();
  const std::uint64_t chains0 = chains.value(), tiny0 = tiny_shards.value();
  const std::uint64_t large0 = large_shards.value(), nodes0 = tiny_nodes.value();

  CheckOptions o;
  o.threads = 8;
  const auto r = checker::check_batch(IsolationLevel::kSerializable, b.items, o);
  ASSERT_EQ(r.size(), b.items.size());

  EXPECT_EQ(items.value() - items0, b.items.size());
  EXPECT_EQ(results.value() - results0, b.items.size());  // zero dropped
  // No history extends another, so every item is its own chain.
  EXPECT_EQ(chains.value() - chains0, b.items.size());
  // 20 consecutive tiny chains at kTinyPack = 16 per shard ⇒ exactly 2 tiny
  // shards; the two 9-transaction histories are one large shard each.
  EXPECT_EQ(tiny_shards.value() - tiny0, 2u);
  EXPECT_EQ(large_shards.value() - large0, 2u);
  // Per-class effort: checking 20 histories explored *some* nodes.
  EXPECT_GT(tiny_nodes.value() - nodes0, 0u);
}

TEST(ShardedBatchMetrics, PrescanSkipsCountAvoidedOpCompares) {
  // Two histories agreeing on transaction 0's cheap fields but diverging at
  // transaction 1 (reordered tail): the cheap prescan rejects the chain at
  // i = 1 having avoided exactly one deep op-vector comparison.
  obs::set_enabled(true);
  obs::Counter& skips = obs::Registry::global().counter(
      "crooks_batch_prescan_skipped_op_compares_total");

  wl::ObservationFuzzOptions fo;
  fo.transactions = 4;
  const wl::FuzzedObservations f = wl::fuzz_observations(5, fo);
  ASSERT_GE(f.txns.size(), 3u);
  model::TransactionSet reordered;
  reordered.append(f.txns.at(0));
  reordered.append(f.txns.at(2));  // cheap mismatch at index 1 (different id)
  reordered.append(f.txns.at(1));
  reordered.append(f.txns.at(3));
  const std::vector<model::TransactionSet> histories = {f.txns, reordered};

  const std::uint64_t skips0 = skips.value();
  CheckOptions o;
  o.threads = 1;
  const auto r = checker::check_batch(
      IsolationLevel::kReadAtomic,
      std::span<const model::TransactionSet>(histories), o);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(skips.value() - skips0, 1u);
}

// --- failure paths ----------------------------------------------------------

TEST(ShardedBatchErrors, InvalidVersionOrderPropagatesFromAnyShard) {
  // A version order naming an unknown transaction makes the lone check()
  // throw; the sharded scheduler must surface the same exception whether the
  // failing shard runs inline (threads = 1) or on a pool worker draining
  // through the MPMC queue — and the drain must not deadlock on the failure.
  wl::ObservationFuzzOptions fo;
  fo.transactions = 7;  // medium: the bad item gets a shard of its own
  const wl::FuzzedObservations bad = wl::fuzz_observations(11, fo);
  std::unordered_map<Key, std::vector<TxnId>> bogus = bad.version_order;
  ASSERT_FALSE(bogus.empty());
  bogus.begin()->second.push_back(TxnId{999999});  // unknown transaction

  {
    CheckOptions o;
    o.threads = 1;
    o.version_order = &bogus;
    EXPECT_THROW(checker::check(IsolationLevel::kSerializable, bad.txns, o),
                 std::invalid_argument);
  }

  std::vector<wl::FuzzedObservations> tiny;
  for (std::uint64_t s = 0; s < 6; ++s) {
    wl::ObservationFuzzOptions to;
    to.transactions = 4;
    tiny.push_back(wl::fuzz_observations(200 + s, to));
  }
  std::vector<BatchItem> items;
  for (const wl::FuzzedObservations& f : tiny) items.push_back({&f.txns, nullptr});
  items.push_back({&bad.txns, &bogus});

  for (std::size_t threads : kThreadCounts) {
    CheckOptions o;
    o.threads = threads;
    EXPECT_THROW(checker::check_batch(IsolationLevel::kSerializable, items, o),
                 std::invalid_argument)
        << "at " << threads << " threads";
  }
}

}  // namespace
}  // namespace crooks
