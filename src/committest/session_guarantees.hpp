// Session guarantees (Terry et al., PDIS'94), expressed as state-based
// tests — an extension demonstrating the model's reach beyond the paper's
// Tables 1–2 (the paper cites these as the ancestral client-centric
// guarantees; §6).
//
// A session is the same notion used by Session SI (§5.2): a total order →se
// over a client's transactions, realized here as same-session transactions
// ordered by real time (T' →se T iff T'.commit < T.start). Each guarantee
// constrains, per transaction T and session predecessor T':
//
//   Read-My-Writes      every read of a key T' wrote must return T''s
//                       version or a later one: s_{T'} →* sl_o.
//   Monotonic-Reads     T cannot read a version of k older than any version
//                       of k that T' read: sf_{o'} →* sl_o.
//   Monotonic-Writes    T''s state precedes T's state in the execution.
//   Writes-Follow-Reads the writers T' observed precede T's state.
//
// These are per-execution tests (like CT_I(T, e)); `check_session_guarantee`
// answers the ∃e question for systems that export their commit order, by
// testing the commit-order execution (the natural witness for
// session-ordered systems).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "committest/commit_test.hpp"

namespace crooks::ct {

enum class SessionGuarantee : std::uint8_t {
  kReadMyWrites,
  kMonotonicReads,
  kMonotonicWrites,
  kWritesFollowReads,
};

inline constexpr SessionGuarantee kAllSessionGuarantees[] = {
    SessionGuarantee::kReadMyWrites,
    SessionGuarantee::kMonotonicReads,
    SessionGuarantee::kMonotonicWrites,
    SessionGuarantee::kWritesFollowReads,
};

constexpr std::string_view name_of(SessionGuarantee g) {
  switch (g) {
    case SessionGuarantee::kReadMyWrites: return "ReadMyWrites";
    case SessionGuarantee::kMonotonicReads: return "MonotonicReads";
    case SessionGuarantee::kMonotonicWrites: return "MonotonicWrites";
    case SessionGuarantee::kWritesFollowReads: return "WritesFollowReads";
  }
  return "?";
}

/// Evaluates session guarantees against one execution.
class SessionTester {
 public:
  explicit SessionTester(const model::ReadStateAnalysis& analysis);

  /// Does transaction `dense` satisfy the guarantee w.r.t. every session
  /// predecessor in this execution?
  CommitTestResult test(SessionGuarantee g, std::size_t dense) const;

  ExecutionVerdict test_all(SessionGuarantee g) const;

 private:
  /// Dense indices of same-session real-time predecessors of `dense`.
  std::vector<std::size_t> session_predecessors(std::size_t dense) const;

  const model::ReadStateAnalysis* a_;
};

/// ∃e for session guarantees, decided on the commit-order execution (all
/// transactions must carry timestamps; otherwise kUnsatisfiable is returned
/// with an explanation, mirroring the timed isolation levels).
ExecutionVerdict check_session_guarantee(SessionGuarantee g,
                                         const model::TransactionSet& txns);

}  // namespace crooks::ct
