file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_si_family.dir/bench_table2_si_family.cpp.o"
  "CMakeFiles/bench_table2_si_family.dir/bench_table2_si_family.cpp.o.d"
  "bench_table2_si_family"
  "bench_table2_si_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_si_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
