// Explainable refutations: turn "unsatisfiable at level I" into localized
// evidence an operator can act on.
//
// The state-based model makes violations explicable in exactly the terms a
// client could observe (the paper's motivation; Elle demonstrated that
// checkers win adoption by producing such certificates). A refutation is a
// universally-quantified fact — NO execution passes — so the evidence is
// stated against one canonical candidate execution: the history's shared
// timestamp order (for the timed levels, the only order C-ORD admits; for
// the rest, the natural "what the system claims happened" order). The
// commit test is evaluated transaction by transaction on that candidate and
// the first failure is unpacked into the failing transaction, the
// implicated read, and the candidate read states that leave the commit-test
// clause unsatisfiable.
#include <algorithm>
#include <sstream>

#include "checker/checker.hpp"
#include "committest/commit_test.hpp"
#include "model/analysis.hpp"
#include "model/compiled.hpp"

namespace crooks::checker {

namespace {

using model::CompiledHistory;
using model::TxnIdx;

/// The read this failure hinges on: the first read with an empty read-state
/// set (PREREAD failures), else the external read whose interval ends
/// earliest — the one pinning the snapshot furthest into the past, which is
/// what makes COMPLETE/NO-CONF windows empty for the state-based clauses.
const model::Operation* implicated_read(const model::Transaction& t,
                                        const model::TxnAnalysis& ta) {
  const model::Operation* best = nullptr;
  StateIndex best_last = 0;
  for (std::size_t i = 0; i < ta.ops.size(); ++i) {
    if (!t.ops()[i].is_read() || ta.ops[i].internal) continue;
    if (ta.ops[i].rs.empty()) return &t.ops()[i];
    if (best == nullptr || ta.ops[i].rs.last < best_last) {
      best = &t.ops()[i];
      best_last = ta.ops[i].rs.last;
    }
  }
  return best;
}

std::string render_candidate_states(const model::Transaction& t,
                                    const model::TxnAnalysis& ta) {
  std::ostringstream out;
  bool any = false;
  for (std::size_t i = 0; i < ta.ops.size(); ++i) {
    if (!t.ops()[i].is_read()) continue;
    if (any) out << "; ";
    any = true;
    out << model::to_string(t.ops()[i]) << ": RS = "
        << crooks::to_string(ta.ops[i].rs);
    if (ta.ops[i].internal) out << " (internal)";
  }
  if (any) out << "; ";
  out << "parent = s" << ta.parent << ", COMPLETE = "
      << crooks::to_string(ta.complete) << ", NO-CONF from s" << ta.no_conf_min;
  return out.str();
}

}  // namespace

std::optional<ReadDiagnosis> explain_refutation(const ct::LevelAssignment& levels,
                                                const CompiledHistory& ch,
                                                const model::Execution& candidate,
                                                std::string candidate_name) {
  if (ch.size() == 0 || candidate.size() != ch.size()) return std::nullopt;
  const model::ReadStateAnalysis analysis(ch, candidate);
  const ct::CommitTester tester(analysis);
  const ct::ExecutionVerdict verdict = tester.test_all(levels);
  if (verdict.ok || !verdict.violating_txn.has_value()) return std::nullopt;

  const std::size_t dense = ch.txns().dense_index_of(*verdict.violating_txn);
  const model::Transaction& t = ch.txns().at(dense);
  const model::TxnAnalysis& ta = analysis.txn(dense);

  ReadDiagnosis d;
  d.txn = *verdict.violating_txn;
  d.clause = verdict.explanation;
  d.candidate_execution = std::move(candidate_name);
  d.candidate_states = render_candidate_states(t, ta);
  d.level = levels.of(static_cast<TxnIdx>(dense));
  if (const model::Operation* read = implicated_read(t, ta)) {
    d.key = read->key;
    d.observed_writer = read->value.writer;
  }
  return d;
}

std::optional<ReadDiagnosis> explain_refutation(const ct::LevelAssignment& levels,
                                                const CompiledHistory& ch) {
  if (ch.size() == 0) return std::nullopt;
  std::vector<TxnId> ids;
  ids.reserve(ch.size());
  for (TxnIdx d : ch.ts_order()) ids.push_back(ch.id_of(d));
  return explain_refutation(levels, ch, model::Execution(ch.txns(), std::move(ids)),
                            "commit-timestamp candidate order");
}

std::optional<ReadDiagnosis> explain_refutation(ct::IsolationLevel level,
                                                const CompiledHistory& ch,
                                                const model::Execution& candidate,
                                                std::string candidate_name) {
  // A global level is the uniform assignment; test_all() on it delegates to
  // the global-level tester, so the diagnosis is the familiar one with the
  // violated transaction's level (= the global level) filled in.
  return explain_refutation(ct::LevelAssignment(level), ch, candidate,
                            std::move(candidate_name));
}

std::optional<ReadDiagnosis> explain_refutation(ct::IsolationLevel level,
                                                const CompiledHistory& ch) {
  return explain_refutation(ct::LevelAssignment(level), ch);
}

}  // namespace crooks::checker
