// Batch checking: fan independent histories across a thread pool.
//
// Histories in a batch share nothing — each gets its own dispatcher call with
// its own (optional) version order — so the only coordination is the pool
// itself. Per-history searches run single-threaded: when there are many
// histories, spending the core budget across them beats nesting parallelism
// inside each factorial search, and it keeps every per-history result
// bit-for-bit identical to a lone check() with threads = 1.
//
// One exception to "share nothing": audit streams often submit growing
// prefixes of the same history (check after every block). Consecutive items
// where each history extends the previous one are detected and compiled once
// into a growable CompiledHistory, re-using CompiledHistory::extend deltas
// instead of re-interning the shared prefix per item. A grown compilation is
// structurally identical to a fresh one (see model/compiled.hpp), so results
// are still bit-for-bit what a lone check() would produce.
#include <vector>

#include "checker/checker.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::checker {

namespace {

using model::Transaction;
using model::TransactionSet;

/// True when `next` is `prev` plus zero or more appended transactions
/// (attribute- and op-exact on the shared prefix).
bool extends_prefix(const TransactionSet& prev, const TransactionSet& next) {
  if (next.size() < prev.size()) return false;
  for (std::size_t i = 0; i < prev.size(); ++i) {
    const Transaction& a = prev.at(i);
    const Transaction& b = next.at(i);
    if (a.id() != b.id() || a.session() != b.session() || a.site() != b.site() ||
        a.start_ts() != b.start_ts() || a.commit_ts() != b.commit_ts() ||
        a.ops() != b.ops()) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::size_t CheckOptions::resolved_threads() const {
  return threads == 0 ? ThreadPool::default_threads() : threads;
}

std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const BatchItem> items,
                                     const CheckOptions& opts) {
  static obs::Counter& items_total = obs::Registry::global().counter(
      "crooks_batch_items_total", "Histories submitted through check_batch");
  static obs::Counter& chains_total = obs::Registry::global().counter(
      "crooks_batch_chains_total",
      "Prefix-extension chains scheduled by check_batch (a chain of one is a "
      "lone history)");
  obs::TraceSpan span("check.batch");
  std::vector<CheckResult> results(items.size());

  // Group consecutive items into maximal prefix-extension chains. A chain of
  // one is the common case and takes the original borrowing-compile path.
  struct Chain {
    std::size_t first = 0, count = 1;
  };
  std::vector<Chain> chains;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!chains.empty()) {
      const Chain& c = chains.back();
      const TransactionSet& prev = *items[c.first + c.count - 1].txns;
      if (!prev.empty() && extends_prefix(prev, *items[i].txns)) {
        ++chains.back().count;
        continue;
      }
    }
    chains.push_back({i, 1});
  }
  if (obs::enabled()) {
    items_total.inc(items.size());
    chains_total.inc(chains.size());
  }
  span.field("level", ct::name_of(level))
      .field("items", static_cast<std::uint64_t>(items.size()))
      .field("chains", static_cast<std::uint64_t>(chains.size()))
      .field("threads", static_cast<std::uint64_t>(opts.resolved_threads()));

  parallel_for_each_index(
      opts.resolved_threads(), chains.size(), [&](std::size_t ci) {
        const Chain& chain = chains[ci];
        auto local_opts = [&](std::size_t item) {
          CheckOptions local = opts;
          local.threads = 1;  // batch-level parallelism only; see header comment
          if (items[item].version_order != nullptr) {
            local.version_order = items[item].version_order;
          }
          return local;
        };
        if (chain.count == 1) {
          const std::size_t i = chain.first;
          // Compile once per history, in the worker: every engine the
          // dispatcher may try (graph, exhaustive, hierarchy inference)
          // shares this one compiled form instead of re-interning.
          const model::CompiledHistory ch(*items[i].txns);
          results[i] = check(level, ch, local_opts(i));
          return;
        }
        // Prefix chain: grow one compilation across the run, appending only
        // each item's new suffix as a CompiledDelta.
        model::CompiledHistory ch;
        std::size_t compiled = 0;
        for (std::size_t j = 0; j < chain.count; ++j) {
          const std::size_t i = chain.first + j;
          const TransactionSet& hist = *items[i].txns;
          std::vector<Transaction> block;
          block.reserve(hist.size() - compiled);
          for (std::size_t t = compiled; t < hist.size(); ++t) {
            block.push_back(hist.at(t));
          }
          if (!block.empty()) ch.extend(block);
          compiled = hist.size();
          results[i] = check(level, ch, local_opts(i));
        }
      });
  return results;
}

std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const model::TransactionSet> histories,
                                     const CheckOptions& opts) {
  std::vector<BatchItem> items(histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) items[i].txns = &histories[i];
  return check_batch(level, std::span<const BatchItem>(items), opts);
}

std::vector<CheckResult> check_incremental(ct::IsolationLevel level,
                                           std::span<const model::TransactionSet> blocks,
                                           const CheckOptions& opts) {
  obs::TraceSpan span("check.incremental");
  span.field("level", ct::name_of(level))
      .field("blocks", static_cast<std::uint64_t>(blocks.size()));
  std::vector<CheckResult> results(blocks.size());
  model::CompiledHistory ch;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const TransactionSet& block = blocks[i];
    std::vector<Transaction> txns;
    txns.reserve(block.size());
    for (std::size_t t = 0; t < block.size(); ++t) txns.push_back(block.at(t));
    if (!txns.empty()) ch.extend(txns);
    results[i] = check(level, ch, opts);
  }
  return results;
}

}  // namespace crooks::checker
