// Batch checking: fan independent histories across a thread pool.
//
// Histories in a batch share nothing — each gets its own dispatcher call with
// its own (optional) version order — so the only coordination is the pool
// itself. Per-history searches run single-threaded: when there are many
// histories, spending the core budget across them beats nesting parallelism
// inside each factorial search, and it keeps every per-history result
// bit-for-bit identical to a lone check() with threads = 1.
#include "checker/checker.hpp"
#include "common/thread_pool.hpp"

namespace crooks::checker {

std::size_t CheckOptions::resolved_threads() const {
  return threads == 0 ? ThreadPool::default_threads() : threads;
}

std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const BatchItem> items,
                                     const CheckOptions& opts) {
  std::vector<CheckResult> results(items.size());
  parallel_for_each_index(
      opts.resolved_threads(), items.size(), [&](std::size_t i) {
        CheckOptions local = opts;
        local.threads = 1;  // batch-level parallelism only; see header comment
        if (items[i].version_order != nullptr) {
          local.version_order = items[i].version_order;
        }
        // Compile once per history, in the worker: every engine the
        // dispatcher may try (graph, exhaustive, hierarchy inference)
        // shares this one compiled form instead of re-interning.
        const model::CompiledHistory ch(*items[i].txns);
        results[i] = check(level, ch, local);
      });
  return results;
}

std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const model::TransactionSet> histories,
                                     const CheckOptions& opts) {
  std::vector<BatchItem> items(histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) items[i].txns = &histories[i];
  return check_batch(level, std::span<const BatchItem>(items), opts);
}

}  // namespace crooks::checker
