// crooks-check: audit client observations for isolation violations.
//
//   crooks-check [OPTIONS] [FILE]
//
// Reads observations (see src/report/serialize.hpp for the format) from FILE
// or stdin and prints an isolation audit. Exit status: 0 when the requested
// level (or, by default, the weakest level ReadUncommitted) is satisfied,
// 1 on violation, 2 on usage/parse errors — including malformed or unknown
// isolation-level names, whether in --level/--levels or in the input's
// `level=` annotations (the error names every valid spelling).
//
// When the input carries `level=` annotations (or a `default-level`
// directive), or --levels is given, the single-verdict mode audits the
// history as a MIXED assignment: each transaction at its own level,
// unannotated ones at --level (else the file's default-level, else
// ReadUncommitted).
//
// Options:
//   --level=NAME     verdict/exit status for one level (e.g. Serializable;
//                    canonical names or the RU/RC/RA/SI/SER/SSER aliases).
//                    In mixed mode this is the default for unannotated txns.
//   --levels=ID=LEVEL[,ID=LEVEL...]
//                    per-transaction overrides by transaction id (as in the
//                    file format's `txn ID`, optionally T-prefixed), applied
//                    over the input's own level= annotations
//   --engine=NAME    force one engine (direct|graph|exhaustive) instead of the
//                    auto dispatch; the verdict is that engine's answer as-is,
//                    which may be UNDECIDED for levels it cannot decide
//   --threads=N      checker worker threads (0 = all cores, 1 = sequential)
//   --quiet          print only the verdict line
//   --follow         streaming audit: tail FILE (required), feeding each batch
//                    of appended transaction blocks to the incremental online
//                    checker and printing per-batch latency/verdict counters.
//                    The verdict judges the file's apply order itself (no `vo`
//                    lines allowed; offline mode owns the ∃e question).
//   --poll-ms=N      [follow] sleep between polls at end-of-file (default 50)
//   --idle-exit-ms=N [follow] exit after N ms without new input (default 0 =
//                    tail forever)
//   --max-blocks=N   [follow] exit after N audited batches (default 0 = no cap)
//   --window=N       [follow] bounded-memory audit: keep at most N transactions
//                    resident; the checker folds everything older into a
//                    summarized base and reclaims its memory, so the monitor
//                    can tail a stream forever. Verdicts are one-sided: a
//                    violation is never invented, and one is missed only when
//                    its witness reaches past the fold watermark (counted in
//                    crooks_online_past_window_* metrics)
//   --window-bytes=B [follow] same, but bound the resident-memory estimate in
//                    bytes; combines with --window (tighter limit wins)
//   --ingest-threads=N  [follow] pipelined ingest: N session-sharded workers
//                    decode transaction blocks in parallel while a merge
//                    thread runs the one authoritative checker, overlapping
//                    parse with check (checker::ShardedOnlineChecker).
//                    Verdicts, witnesses, counters and forensics output are
//                    byte-identical to the serial path at every N; only
//                    wall-clock changes. 0 (default) = serial ingest
//   --metrics[=FILE] after the audit, dump the metrics registry in Prometheus
//                    text exposition format to FILE (stdout if omitted)
//   --metrics-json=FILE  same scrape as one JSON object
//   --metrics-every=N    [follow] print a `metrics {...}` JSON snapshot line
//                    every N audited batches
//   --forensics      violation forensics: aggregate every violation witness
//                    into the canonical pattern table and print the
//                    "violation forensics" section. Offline, the observations
//                    are replayed through the same OnlineChecker + Collector
//                    machinery --follow runs, so the table is byte-identical
//                    to a streaming audit of the same log. Under --follow,
//                    also prints a `forensics {...}` snapshot line alongside
//                    every metrics snapshot and on each level's death.
//                    Does not change the exit status.
//   --forensics-json=FILE  write the pattern table as one JSON object
//                    (implies --forensics); deterministic byte-for-byte for a
//                    given log across offline/--follow and thread counts
//   --trace=FILE     write JSONL trace spans/events (compile, extend, engine
//                    dispatch, search, online ingest) to FILE
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "forensics/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/forensics_render.hpp"
#include "report/report.hpp"
#include "report/stream_audit.hpp"

using namespace crooks;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: crooks-check [--level=NAME] [--levels=ID=LEVEL,...]\n"
               "                    [--engine=NAME] [--threads=N]\n"
               "                    [--quiet] [--metrics[=FILE]] [--metrics-json=FILE]\n"
               "                    [--forensics] [--forensics-json=FILE]\n"
               "                    [--trace=FILE] [FILE]\n"
               "       crooks-check --follow [--level=NAME] [--quiet]\n"
               "                    [--poll-ms=N] [--idle-exit-ms=N] [--max-blocks=N]\n"
               "                    [--window=N] [--window-bytes=B]\n"
               "                    [--ingest-threads=N] [--metrics-every=N] [--forensics]\n"
               "                    [--forensics-json=FILE] FILE\n"
               "levels:");
  for (ct::IsolationLevel l : ct::kAllLevels) {
    std::fprintf(stderr, " %s", std::string(ct::name_of(l)).c_str());
  }
  std::fprintf(stderr, "\nengines: direct graph exhaustive\n");
  return 2;
}

std::optional<checker::EngineSelect> engine_by_name(const std::string& name) {
  if (name == "direct") return checker::EngineSelect::kDirect;
  if (name == "graph") return checker::EngineSelect::kGraph;
  if (name == "exhaustive") return checker::EngineSelect::kExhaustive;
  return std::nullopt;
}

/// Parse "ID=LEVEL[,ID=LEVEL...]" (ids as in the file format's `txn ID`,
/// optionally T-prefixed). Returns false after printing a specific error —
/// unknown level names list every valid spelling.
bool parse_levels_flag(const std::string& spec,
                       std::unordered_map<TxnId, ct::IsolationLevel>& out) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      std::fprintf(stderr, "malformed --levels entry '%s' (expected ID=LEVEL)\n",
                   item.c_str());
      return false;
    }
    std::string id_str = item.substr(0, eq);
    if (id_str[0] == 'T' || id_str[0] == 't') id_str.erase(0, 1);
    if (id_str.empty() ||
        id_str.find_first_not_of("0123456789") != std::string::npos ||
        id_str == "0") {
      std::fprintf(stderr,
                   "bad transaction id '%s' in --levels (positive integer, "
                   "optionally T-prefixed)\n",
                   item.substr(0, eq).c_str());
      return false;
    }
    const std::string level_str = item.substr(eq + 1);
    const auto lvl = ct::level_from_name(level_str);
    if (!lvl.has_value()) {
      std::fprintf(stderr, "unknown level '%s' in --levels; valid levels: %s\n",
                   level_str.c_str(), std::string(ct::kValidLevelNames).c_str());
      return false;
    }
    out[TxnId{std::stoull(id_str)}] = *lvl;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

bool parse_count(const std::string& value, std::size_t& out) {
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    out = static_cast<std::size_t>(std::stoul(value));
  } catch (const std::exception&) {  // out of range
    return false;
  }
  return true;
}

/// Write the forensics JSON export; returns false after printing an error.
bool write_forensics_json(const std::string& path,
                          const forensics::PatternTable& table) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open forensics file '%s'\n", path.c_str());
    return false;
  }
  out << report::forensics_json(table);
  return true;
}

/// Streaming audit of `file`, printing one line per audited batch plus an
/// announcement whenever a level records its first violation. Exit status
/// follows the requested level (default ReadUncommitted) at exit time.
int run_follow(const std::string& file, ct::IsolationLevel verdict_level,
               const report::StreamAuditOptions& base_opts, bool quiet,
               bool forensics, const std::string& forensics_json_file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
    return 2;
  }

  // The collector hooks the streaming checker's violation events: witnesses
  // are extracted at event time, while the failing transaction is resident.
  forensics::Collector collector;
  report::StreamAuditOptions opts = base_opts;
  if (forensics) {
    opts.on_checker = [&](checker::OnlineChecker& chk) { collector.attach(chk); };
  }

  const report::StreamAuditResult r = report::stream_audit(
      in, opts, [&](const report::StreamBlockReport& rep) {
        if (!quiet) {
          const double per_sec =
              rep.seconds > 0 ? static_cast<double>(rep.transactions) / rep.seconds
                              : 0.0;
          std::printf("block %llu: +%zu txns (%zu dup) in %.3f ms (%.0f txns/s), "
                      "%zu txns total, %zu/%zu levels alive",
                      static_cast<unsigned long long>(rep.block),
                      rep.transactions, rep.duplicates, rep.seconds * 1e3,
                      per_sec, rep.checker->size(),
                      rep.checker->surviving_levels().size(),
                      ct::kAllLevels.size());
          if (opts.window_txns != 0 || opts.window_bytes != 0) {
            std::printf(", watermark %llu, %zu resident",
                        static_cast<unsigned long long>(rep.watermark),
                        rep.resident_txns);
          }
          std::printf("\n");
        }
        for (ct::IsolationLevel dead : rep.died) {
          const auto& st = rep.checker->status(dead);
          std::printf("VIOLATION %s at txn %s: %s\n",
                      std::string(ct::name_of(dead)).c_str(),
                      st.first_violation.has_value()
                          ? crooks::to_string(*st.first_violation).c_str()
                          : "?",
                      st.explanation.c_str());
        }
        if (!rep.metrics_snapshot.empty()) {
          std::printf("metrics %s\n", rep.metrics_snapshot.c_str());
        }
        // Periodic pattern snapshots: alongside every metrics snapshot, and
        // whenever a level records its first violation (the moment an
        // operator wants the shape that killed it).
        if (forensics && (!rep.metrics_snapshot.empty() || !rep.died.empty())) {
          std::printf("forensics %s", report::forensics_json(collector.table()).c_str());
        }
        std::fflush(stdout);
        return true;
      });

  if (!r.error.empty()) {
    std::fprintf(stderr, "stream error: %s\n", r.error.c_str());
    return 2;
  }
  std::printf("audited %llu blocks, %zu transactions (%zu duplicates); "
              "surviving:",
              static_cast<unsigned long long>(r.blocks), r.transactions,
              r.duplicates);
  for (ct::IsolationLevel l : r.surviving) {
    std::printf(" %s", std::string(ct::name_of(l)).c_str());
  }
  std::printf("\n");
  // Checker totals for the whole run — the counters an operator needs to
  // judge how much a windowed audit may have under-reported.
  const checker::OnlineChecker::Stats& st = r.checker_stats;
  std::printf("checker stats: %llu compiled appends, %llu duplicates ignored, "
              "%llu retired (%llu ops reclaimed, %llu folds), "
              "%llu past-window reads, %llu past-window checks\n",
              static_cast<unsigned long long>(st.compiled_appends),
              static_cast<unsigned long long>(st.duplicates_ignored),
              static_cast<unsigned long long>(st.retired_txns),
              static_cast<unsigned long long>(st.retired_ops),
              static_cast<unsigned long long>(st.window_folds),
              static_cast<unsigned long long>(st.past_window_reads),
              static_cast<unsigned long long>(st.past_window_checks));
  if (forensics) {
    std::printf("%s", report::render_forensics(collector.table()).c_str());
    if (!forensics_json_file.empty() &&
        !write_forensics_json(forensics_json_file, collector.table())) {
      return 2;
    }
  }
  const auto it = r.statuses.find(verdict_level);
  return it != r.statuses.end() && it->second.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<ct::IsolationLevel> requested;
  std::unordered_map<TxnId, ct::IsolationLevel> level_overrides;
  checker::EngineSelect engine = checker::EngineSelect::kAuto;
  bool quiet = false;
  bool follow = false;
  bool metrics = false;
  bool forensics = false;
  std::string forensics_json_file;  // empty = no JSON export
  std::string metrics_file;         // empty = stdout
  std::string metrics_json_file;    // empty = no JSON dump
  std::string trace_file;
  std::size_t threads = 0;  // 0 = hardware_concurrency
  report::StreamAuditOptions follow_opts;
  std::string file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::size_t count = 0;
    if (arg.rfind("--level=", 0) == 0) {
      requested = ct::level_from_name(arg.substr(8));
      if (!requested.has_value()) {
        std::fprintf(stderr, "unknown level '%s'; valid levels: %s\n",
                     arg.substr(8).c_str(),
                     std::string(ct::kValidLevelNames).c_str());
        return usage();
      }
    } else if (arg.rfind("--levels=", 0) == 0) {
      if (!parse_levels_flag(arg.substr(9), level_overrides)) return usage();
    } else if (arg.rfind("--engine=", 0) == 0) {
      const auto sel = engine_by_name(arg.substr(9));
      if (!sel.has_value()) {
        std::fprintf(stderr, "unknown engine '%s'\n", arg.substr(9).c_str());
        return usage();
      }
      engine = *sel;
    } else if (arg.rfind("--threads=", 0) == 0 ||
               (arg == "--threads" && i + 1 < argc)) {
      const std::string value = arg == "--threads" ? argv[++i] : arg.substr(10);
      if (!parse_count(value, threads)) {
        std::fprintf(stderr, "bad thread count '%s'\n", value.c_str());
        return usage();
      }
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg.rfind("--poll-ms=", 0) == 0) {
      if (!parse_count(arg.substr(10), count)) return usage();
      follow_opts.poll_ms = static_cast<int>(count);
    } else if (arg.rfind("--idle-exit-ms=", 0) == 0) {
      if (!parse_count(arg.substr(15), count)) return usage();
      follow_opts.idle_exit_ms = static_cast<int>(count);
    } else if (arg.rfind("--max-blocks=", 0) == 0) {
      if (!parse_count(arg.substr(13), count)) return usage();
      follow_opts.max_blocks = count;
    } else if (arg.rfind("--window=", 0) == 0) {
      if (!parse_count(arg.substr(9), count) || count == 0) return usage();
      follow_opts.window_txns = count;
    } else if (arg.rfind("--window-bytes=", 0) == 0) {
      if (!parse_count(arg.substr(15), count) || count == 0) return usage();
      follow_opts.window_bytes = count;
    } else if (arg.rfind("--ingest-threads=", 0) == 0) {
      if (!parse_count(arg.substr(17), count)) return usage();
      follow_opts.ingest_threads = count;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics = true;
      metrics_file = arg.substr(10);
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json_file = arg.substr(15);
    } else if (arg.rfind("--metrics-every=", 0) == 0) {
      if (!parse_count(arg.substr(16), count)) return usage();
      follow_opts.metrics_every = count;
    } else if (arg == "--forensics") {
      forensics = true;
    } else if (arg.rfind("--forensics-json=", 0) == 0) {
      forensics = true;
      forensics_json_file = arg.substr(17);
      if (forensics_json_file.empty()) return usage();
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_file = arg.substr(8);
      if (trace_file.empty()) return usage();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    } else if (file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }

  if (!trace_file.empty() && !obs::Trace::open(trace_file)) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", trace_file.c_str());
    return 2;
  }

  // Scrape the registry and close the trace sink on every exit path past
  // argument parsing, so `--metrics --level=X violating.txt` still dumps
  // metrics alongside its exit status 1.
  const auto finish = [&](int rc) {
    if (metrics) {
      const std::string text = obs::Registry::global().prometheus_text();
      if (metrics_file.empty()) {
        std::fputs(text.c_str(), stdout);
      } else if (std::ofstream out(metrics_file); out) {
        out << text;
      } else {
        std::fprintf(stderr, "cannot open metrics file '%s'\n", metrics_file.c_str());
        if (rc == 0) rc = 2;
      }
    }
    if (!metrics_json_file.empty()) {
      if (std::ofstream out(metrics_json_file); out) {
        out << obs::Registry::global().json() << "\n";
      } else {
        std::fprintf(stderr, "cannot open metrics file '%s'\n",
                     metrics_json_file.c_str());
        if (rc == 0) rc = 2;
      }
    }
    obs::Trace::close();
    return rc;
  };

  if (follow) {
    if (file.empty() || file == "-") {
      std::fprintf(stderr, "--follow requires a FILE (stdin cannot be tailed)\n");
      return finish(usage());
    }
    const ct::IsolationLevel verdict_level =
        requested.value_or(ct::IsolationLevel::kReadUncommitted);
    return finish(run_follow(file, verdict_level, follow_opts, quiet, forensics,
                             forensics_json_file));
  }

  report::Observations obs;
  try {
    if (file.empty() || file == "-") {
      obs = report::parse_observations(std::cin);
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
        return finish(2);
      }
      obs = report::parse_observations(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return finish(2);
  }

  checker::CheckOptions opts;
  opts.threads = threads;
  opts.engine = engine;
  if (obs.has_version_order()) opts.version_order = &obs.version_order;

  // --levels overrides or in-file level information switch the single-verdict
  // mode to a mixed per-transaction assignment; a plain --level on an
  // unannotated file is the exact global-level check as before.
  const bool mixed = !level_overrides.empty() || obs.has_level_annotations();
  if (requested.has_value() || mixed) {
    const ct::IsolationLevel fallback =
        requested.has_value()
            ? *requested
            : obs.default_level.value_or(ct::IsolationLevel::kReadUncommitted);
    checker::CheckResult r;
    std::string label{ct::name_of(fallback)};
    if (mixed) {
      // Dense compile order == declaration order, so the column is built
      // straight off the transaction set.
      std::vector<ct::IsolationLevel> column;
      column.reserve(obs.txns.size());
      std::unordered_map<TxnId, std::size_t> dense;
      for (const model::Transaction& t : obs.txns) {
        dense.emplace(t.id(), column.size());
        column.push_back(t.level().value_or(fallback));
      }
      for (const auto& [id, lvl] : level_overrides) {
        const auto it = dense.find(id);
        if (it == dense.end()) {
          std::fprintf(stderr, "--levels names unknown transaction %s\n",
                       crooks::to_string(id).c_str());
          return finish(2);
        }
        column[it->second] = lvl;
      }
      ct::LevelAssignment assignment(fallback, std::move(column));
      label = assignment.describe();
      r = checker::check(assignment, obs.txns, opts);
    } else {
      r = checker::check(fallback, obs.txns, opts);
    }
    std::printf("%s: %s\n", label.c_str(),
                r.satisfiable()     ? "SATISFIABLE"
                : r.unsatisfiable() ? "UNSATISFIABLE"
                                    : "UNDECIDED");
    if (!quiet && !r.detail.empty()) std::printf("%s\n", r.detail.c_str());
    if (!quiet && r.diagnosis.has_value()) {
      std::printf("%s", report::render_counterexample(*r.diagnosis).c_str());
    }
    if (forensics) {
      // Same replay --follow would do over this log; the verdict above is
      // unchanged by it.
      checker::OnlineChecker replay;
      forensics::Collector collector;
      collector.attach(replay);
      replay.append_all(obs.txns);
      if (!quiet) {
        std::printf("%s", report::render_forensics(collector.table()).c_str());
      }
      if (!forensics_json_file.empty() &&
          !write_forensics_json(forensics_json_file, collector.table())) {
        return finish(2);
      }
    }
    return finish(r.satisfiable() ? 0 : 1);
  }

  if (forensics) {
    const report::ForensicsAudit fa = report::audit_with_forensics(obs, opts);
    if (quiet) {
      std::printf("strongest: %s\n",
                  fa.base.strongest.has_value()
                      ? std::string(ct::name_of(*fa.base.strongest)).c_str()
                      : "none");
    } else {
      std::printf("%s", fa.base.text.c_str());
    }
    if (!forensics_json_file.empty() &&
        !write_forensics_json(forensics_json_file, fa.table)) {
      return finish(2);
    }
    return finish(fa.base.strongest.has_value() ? 0 : 1);
  }

  const report::AuditResult a = report::audit(obs, opts);
  if (quiet) {
    std::printf("strongest: %s\n",
                a.strongest.has_value() ? std::string(ct::name_of(*a.strongest)).c_str()
                                        : "none");
  } else {
    std::printf("%s", a.text.c_str());
  }
  return finish(a.strongest.has_value() ? 0 : 1);
}
