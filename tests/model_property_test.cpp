// Cross-validation of the model's implicit-state machinery: the read-state
// intervals computed by index arithmetic must agree with brute-force checks
// against materialized states, on random executions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/analysis.hpp"
#include "workload/observations.hpp"

namespace crooks::model {
namespace {

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

/// Does state s (materialized) serve operation o of transaction t?
bool state_serves(const std::map<Key, Value>& state, const Transaction& t,
                  const Operation& op, bool internal) {
  if (op.is_write() || internal) return true;  // conventions: any state ≤ parent
  const auto it = state.find(op.key);
  const TxnId current = it == state.end() ? kInitTxn : it->second.writer;
  return !op.value.phantom && current == op.value.writer &&
         op.value.writer != t.id();
}

TEST_P(ModelProperty, IntervalsMatchMaterializedStates) {
  wl::ObservationFuzzOptions opts;
  opts.transactions = 6;
  opts.keys = 4;
  opts.p_dangling = 0.1;
  opts.p_phantom = 0.1;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), opts);

  // Random execution order.
  Rng rng(GetParam() * 31 + 7);
  std::vector<TxnId> order;
  for (const Transaction& t : f.txns) order.push_back(t.id());
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  const Execution e(f.txns, order);
  const ReadStateAnalysis a(f.txns, e);

  // Materialize every state once.
  std::vector<std::map<Key, Value>> states;
  for (StateIndex s = 0; s <= e.last_state(); ++s) {
    states.push_back(e.materialize(f.txns, s));
  }

  for (const Transaction& t : f.txns) {
    const std::size_t dense = f.txns.dense_index_of(t.id());
    const TxnAnalysis& ta = a.txn(dense);
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      for (StateIndex s = 0; s <= e.last_state(); ++s) {
        const bool in_interval = ta.ops[i].rs.contains(s);
        const bool brute = s <= ta.parent &&
                           state_serves(states[static_cast<std::size_t>(s)], t, op,
                                        ta.ops[i].internal);
        // Special case: a read of one's own never-made write has empty RS
        // even though no state "contradicts" it; handled by state_serves.
        EXPECT_EQ(in_interval, brute)
            << "seed " << GetParam() << " " << to_string(t.id()) << " op " << i
            << " (" << to_string(op) << ") state s" << s;
      }
    }
  }
}

TEST_P(ModelProperty, NoConfMatchesMaterializedDeltas) {
  wl::ObservationFuzzOptions opts;
  opts.transactions = 6;
  opts.keys = 4;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), opts);
  const Execution e = Execution::identity(f.txns);
  const ReadStateAnalysis a(f.txns, e);

  std::vector<std::map<Key, Value>> states;
  for (StateIndex s = 0; s <= e.last_state(); ++s) {
    states.push_back(e.materialize(f.txns, s));
  }

  for (const Transaction& t : f.txns) {
    const std::size_t dense = f.txns.dense_index_of(t.id());
    const TxnAnalysis& ta = a.txn(dense);
    for (StateIndex s = 0; s <= ta.parent; ++s) {
      // Brute-force Δ(s, s_p) ∩ W_T = ∅.
      bool conflict = false;
      const auto& at_s = states[static_cast<std::size_t>(s)];
      const auto& at_p = states[static_cast<std::size_t>(ta.parent)];
      for (Key k : t.write_set()) {
        const auto vs = at_s.find(k);
        const auto vp = at_p.find(k);
        const Value a_val = vs == at_s.end() ? Value{} : vs->second;
        const Value p_val = vp == at_p.end() ? Value{} : vp->second;
        if (!(a_val == p_val)) conflict = true;
      }
      EXPECT_EQ(s >= ta.no_conf_min, !conflict)
          << "seed " << GetParam() << " " << to_string(t.id()) << " s" << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty, ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace crooks::model
