file(REMOVE_RECURSE
  "CMakeFiles/checker_internals_test.dir/checker_internals_test.cpp.o"
  "CMakeFiles/checker_internals_test.dir/checker_internals_test.cpp.o.d"
  "checker_internals_test"
  "checker_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
