// Table 2: the snapshot-family commit tests and the Figure 4 hierarchy.
//
// The four SI flavors (Strong SI ⊃ Session SI ⊃ ANSI SI ⊃ Adya SI ⊃ PSI)
// differ only in which clauses of the shared template they include. The
// matrix evaluates each flavor against scenarios engineered to separate
// adjacent levels; the benchmark section times each flavor's test.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "checker/checker.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

const ct::IsolationLevel kFamily[] = {
    ct::IsolationLevel::kStrongSI, ct::IsolationLevel::kSessionSI,
    ct::IsolationLevel::kAnsiSI,   ct::IsolationLevel::kAdyaSI,
    ct::IsolationLevel::kPSI,
};

struct Scenario {
  const char* name;
  model::TransactionSet txns;
};

std::vector<Scenario> separating_scenarios() {
  using model::TxnBuilder;
  constexpr Key x{0}, y{1};
  std::vector<Scenario> out;
  out.push_back({"fresh snapshot reads",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).at(0, 10).build(),
                     TxnBuilder(2).read(x, TxnId{1}).write(y).at(11, 12).build(),
                 }}});
  out.push_back({"stale cross-session read",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(x, kInitTxn).session(SessionId{2}).at(20, 30).build(),
                 }}});
  out.push_back({"session inversion",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(x, kInitTxn).session(SessionId{1}).at(20, 30).build(),
                 }}});
  out.push_back({"untimed snapshot read",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).build(),
                     TxnBuilder(2).read(x, kInitTxn).write(y).build(),
                 }}});
  out.push_back({"long fork",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).at(0, 10).build(),
                     TxnBuilder(2).write(y).at(1, 11).build(),
                     TxnBuilder(3).read(x, TxnId{1}).read(y, kInitTxn).at(2, 12).build(),
                     TxnBuilder(4).read(x, kInitTxn).read(y, TxnId{2}).at(3, 13).build(),
                 }}});
  return out;
}

void print_matrix() {
  std::printf("Table 2 / Figure 4: the snapshot-based family on separating scenarios\n\n");
  std::printf("%-26s", "scenario \\ flavor");
  for (ct::IsolationLevel l : kFamily) {
    std::printf(" %9.9s", std::string(ct::name_of(l)).c_str());
  }
  std::printf("\n");
  for (const Scenario& sc : separating_scenarios()) {
    std::printf("%-26s", sc.name);
    for (ct::IsolationLevel l : kFamily) {
      const checker::CheckResult r = checker::check(l, sc.txns);
      std::printf(" %9s", r.satisfiable() ? "admit" : "reject");
    }
    std::printf("\n");
  }
  std::printf("\nEach flavor admits a strict superset of the flavors above it\n"
              "(Strong SI ⊂ Session SI ⊂ ANSI SI ⊂ Adya SI ⊂ PSI, Figure 4).\n"
              "Equivalences: ANSI SI ≡ GSI; Session SI ≡ Strong Session SI ≡ PC-SI;\n"
              "PSI ≡ PL-2+ (Theorems 8, 9, 10).\n\n");
}

void BM_SiFamilyTest(benchmark::State& state) {
  const auto level = static_cast<ct::IsolationLevel>(state.range(0));
  const auto intents = wl::generate_mix({.transactions = 300,
                                         .keys = 40,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .sessions = 6,
                                         .seed = 21});
  const store::RunResult r = store::run(
      intents, {.mode = store::CCMode::kSnapshotIsolation, .seed = 5, .retries = 3});
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::check(level, r.observations, opts).outcome);
  }
  state.SetLabel(std::string(ct::name_of(level)));
}

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  for (ct::IsolationLevel l : kFamily) {
    benchmark::RegisterBenchmark("BM_SiFamilyDecision", BM_SiFamilyTest)
        ->Arg(static_cast<int>(l));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
