file(REMOVE_RECURSE
  "CMakeFiles/crooks_model.dir/analysis.cpp.o"
  "CMakeFiles/crooks_model.dir/analysis.cpp.o.d"
  "libcrooks_model.a"
  "libcrooks_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
