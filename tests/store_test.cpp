// Store semantics per concurrency-control mode, and runner behavior
// (determinism, retries, failure injection, lock waiting).
#include <gtest/gtest.h>

#include "adya/phenomena.hpp"
#include "store/runner.hpp"
#include "store/store.hpp"
#include "workload/workload.hpp"

namespace crooks::store {
namespace {

constexpr Key kX{0}, kY{1};

TEST(Store, ReadInitiallyBottom) {
  Store s(CCMode::kReadCommitted);
  const TxnId t = s.begin();
  const ReadResult r = s.read(t, kX);
  EXPECT_EQ(r.status, StepStatus::kOk);
  EXPECT_TRUE(r.value.is_initial());
  EXPECT_EQ(s.commit(t), StepStatus::kOk);
}

TEST(Store, ReadYourOwnWrites) {
  for (CCMode m : {CCMode::kSerial, CCMode::kTwoPhaseLocking, CCMode::kSnapshotIsolation,
                   CCMode::kReadAtomic, CCMode::kReadCommitted, CCMode::kReadUncommitted}) {
    Store s(m);
    const TxnId t = s.begin();
    ASSERT_EQ(s.write(t, kX), StepStatus::kOk);
    const ReadResult r = s.read(t, kX);
    EXPECT_EQ(r.value.writer, t) << name_of(m);
    EXPECT_EQ(s.commit(t), StepStatus::kOk);
  }
}

TEST(Store, RejectsDoubleWrite) {
  Store s(CCMode::kReadCommitted);
  const TxnId t = s.begin();
  ASSERT_EQ(s.write(t, kX), StepStatus::kOk);
  EXPECT_THROW(s.write(t, kX), std::invalid_argument);
}

TEST(Store, CommittedWritesVisibleAfterCommit) {
  Store s(CCMode::kReadCommitted);
  const TxnId t1 = s.begin();
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);

  const TxnId t2 = s.begin();
  EXPECT_TRUE(s.read(t2, kX).value.is_initial());  // buffered write invisible
  ASSERT_EQ(s.commit(t1), StepStatus::kOk);
  EXPECT_EQ(s.read(t2, kX).value.writer, t1);      // RC: sees new commits
  ASSERT_EQ(s.commit(t2), StepStatus::kOk);
}

TEST(Store, SnapshotIsolationReadsFromBeginSnapshot) {
  Store s(CCMode::kSnapshotIsolation);
  const TxnId t1 = s.begin();
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  const TxnId t2 = s.begin();     // snapshot taken before t1 commits
  ASSERT_EQ(s.commit(t1), StepStatus::kOk);
  EXPECT_TRUE(s.read(t2, kX).value.is_initial());  // stale but consistent
  ASSERT_EQ(s.commit(t2), StepStatus::kOk);

  const TxnId t3 = s.begin();     // fresh snapshot
  EXPECT_EQ(s.read(t3, kX).value.writer, t1);
  ASSERT_EQ(s.commit(t3), StepStatus::kOk);
}

TEST(Store, SnapshotIsolationFirstCommitterWins) {
  Store s(CCMode::kSnapshotIsolation);
  const TxnId t1 = s.begin();
  const TxnId t2 = s.begin();
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  ASSERT_EQ(s.write(t2, kX), StepStatus::kOk);
  EXPECT_EQ(s.commit(t1), StepStatus::kOk);
  EXPECT_EQ(s.commit(t2), StepStatus::kAborted);  // ww conflict
  EXPECT_EQ(s.committed_count(), 1u);
  EXPECT_EQ(s.aborted_count(), 1u);
}

TEST(Store, SnapshotIsolationAllowsWriteSkew) {
  Store s(CCMode::kSnapshotIsolation);
  const TxnId t1 = s.begin();
  const TxnId t2 = s.begin();
  EXPECT_TRUE(s.read(t1, kX).value.is_initial());
  EXPECT_TRUE(s.read(t1, kY).value.is_initial());
  EXPECT_TRUE(s.read(t2, kX).value.is_initial());
  EXPECT_TRUE(s.read(t2, kY).value.is_initial());
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  ASSERT_EQ(s.write(t2, kY), StepStatus::kOk);
  EXPECT_EQ(s.commit(t1), StepStatus::kOk);
  EXPECT_EQ(s.commit(t2), StepStatus::kOk);  // disjoint write sets: both commit
}

TEST(Store, TwoPhaseLockingBlocksConflictingOlder) {
  Store s(CCMode::kTwoPhaseLocking);
  const TxnId t1 = s.begin();  // older
  const TxnId t2 = s.begin();  // younger
  ASSERT_EQ(s.write(t2, kX), StepStatus::kOk);   // t2 X-locks x
  EXPECT_EQ(s.read(t1, kX).status, StepStatus::kBlocked);  // older waits
  ASSERT_EQ(s.commit(t2), StepStatus::kOk);      // releases the lock
  EXPECT_EQ(s.read(t1, kX).status, StepStatus::kOk);
  EXPECT_EQ(s.commit(t1), StepStatus::kOk);
}

TEST(Store, TwoPhaseLockingYoungerDies) {
  Store s(CCMode::kTwoPhaseLocking);
  const TxnId t1 = s.begin();  // older
  const TxnId t2 = s.begin();  // younger
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  EXPECT_EQ(s.read(t2, kX).status, StepStatus::kAborted);  // wait-die victim
  EXPECT_FALSE(s.is_active(t2));
  EXPECT_EQ(s.commit(t1), StepStatus::kOk);
}

TEST(Store, TwoPhaseLockingSharedLocksCoexist) {
  Store s(CCMode::kTwoPhaseLocking);
  const TxnId t1 = s.begin();
  const TxnId t2 = s.begin();
  EXPECT_EQ(s.read(t1, kX).status, StepStatus::kOk);
  EXPECT_EQ(s.read(t2, kX).status, StepStatus::kOk);
  EXPECT_EQ(s.commit(t1), StepStatus::kOk);
  EXPECT_EQ(s.commit(t2), StepStatus::kOk);
}

TEST(Store, WoundWaitOlderWoundsYoungerHolder) {
  Store s(CCMode::kWoundWait);
  const TxnId t1 = s.begin();  // older
  const TxnId t2 = s.begin();  // younger
  ASSERT_EQ(s.write(t2, kX), StepStatus::kOk);   // t2 X-locks x
  EXPECT_EQ(s.read(t1, kX).status, StepStatus::kOk);  // t1 wounds t2, reads
  EXPECT_FALSE(s.is_active(t2));                 // t2 is dead
  EXPECT_EQ(s.commit(t1), StepStatus::kOk);
  EXPECT_EQ(s.aborted_count(), 1u);
}

TEST(Store, WoundWaitYoungerWaits) {
  Store s(CCMode::kWoundWait);
  const TxnId t1 = s.begin();  // older
  const TxnId t2 = s.begin();  // younger
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  EXPECT_EQ(s.read(t2, kX).status, StepStatus::kBlocked);  // younger waits
  EXPECT_TRUE(s.is_active(t2));
  ASSERT_EQ(s.commit(t1), StepStatus::kOk);
  EXPECT_EQ(s.read(t2, kX).value.writer, t1);
  EXPECT_EQ(s.commit(t2), StepStatus::kOk);
}

TEST(Store, WoundWaitWoundsAllConflictingHolders) {
  Store s(CCMode::kWoundWait);
  const TxnId old = s.begin();
  const TxnId y1 = s.begin();
  const TxnId y2 = s.begin();
  EXPECT_EQ(s.read(y1, kX).status, StepStatus::kOk);  // S locks
  EXPECT_EQ(s.read(y2, kX).status, StepStatus::kOk);
  EXPECT_EQ(s.write(old, kX), StepStatus::kOk);  // wounds both S holders
  EXPECT_FALSE(s.is_active(y1));
  EXPECT_FALSE(s.is_active(y2));
  EXPECT_EQ(s.commit(old), StepStatus::kOk);
}

TEST(Runner, WoundWaitMakesProgressUnderContention) {
  const auto intents = wl::generate_mix(
      {.transactions = 80, .keys = 4, .reads_per_txn = 2, .writes_per_txn = 2, .seed = 11});
  const RunResult r = run(intents, {.mode = CCMode::kWoundWait, .seed = 13,
                                    .concurrency = 8, .retries = 500});
  EXPECT_EQ(r.committed, 80u);
}

TEST(Store, ReadUncommittedSeesDirtyWrites) {
  Store s(CCMode::kReadUncommitted);
  const TxnId t1 = s.begin();
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  const TxnId t2 = s.begin();
  EXPECT_EQ(s.read(t2, kX).value.writer, t1);  // dirty read
  s.abort(t1);                                 // the writer dies
  ASSERT_EQ(s.commit(t2), StepStatus::kOk);
  // The exported history shows G1a.
  EXPECT_TRUE(adya::detect(s.history()).g1a);
}

TEST(Store, ReadUncommittedAbortedWritesInvisibleToLaterReads) {
  Store s(CCMode::kReadUncommitted);
  const TxnId t1 = s.begin();
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  s.abort(t1);
  const TxnId t2 = s.begin();
  EXPECT_TRUE(s.read(t2, kX).value.is_initial());
  ASSERT_EQ(s.commit(t2), StepStatus::kOk);
}

TEST(Store, ReadAtomicRepairsFracturedReads) {
  Store s(CCMode::kReadAtomic);
  const TxnId writer = s.begin();
  ASSERT_EQ(s.write(writer, kX), StepStatus::kOk);

  const TxnId reader = s.begin();
  EXPECT_TRUE(s.read(reader, kX).value.is_initial());  // before writer commits

  ASSERT_EQ(s.write(writer, kY), StepStatus::kOk);
  ASSERT_EQ(s.commit(writer), StepStatus::kOk);

  EXPECT_EQ(s.read(reader, kY).value.writer, writer);  // after: fresh y
  ASSERT_EQ(s.commit(reader), StepStatus::kOk);        // repair upgrades x

  const adya::Phenomena p = adya::detect(s.history());
  EXPECT_FALSE(p.fractured);
  // The exported observation of the reader has the *repaired* x.
  const model::TransactionSet obs = s.observations();
  EXPECT_EQ(obs.by_id(reader).ops()[0].value.writer, writer);
}

TEST(Store, ReadCommittedDoesFracture) {
  Store s(CCMode::kReadCommitted);
  const TxnId writer = s.begin();
  ASSERT_EQ(s.write(writer, kX), StepStatus::kOk);
  const TxnId reader = s.begin();
  EXPECT_TRUE(s.read(reader, kX).value.is_initial());
  ASSERT_EQ(s.write(writer, kY), StepStatus::kOk);
  ASSERT_EQ(s.commit(writer), StepStatus::kOk);
  EXPECT_EQ(s.read(reader, kY).value.writer, writer);
  ASSERT_EQ(s.commit(reader), StepStatus::kOk);
  EXPECT_TRUE(adya::detect(s.history()).fractured);
}

TEST(Store, HistoryExportRequiresQuiescence) {
  Store s(CCMode::kReadCommitted);
  const TxnId t = s.begin();
  EXPECT_THROW(s.history(), std::logic_error);
  s.abort(t);
  EXPECT_NO_THROW(s.history());
}

TEST(Store, VersionOrderFollowsCommitOrder) {
  Store s(CCMode::kReadCommitted);
  const TxnId t2 = s.begin();
  const TxnId t1 = s.begin();
  ASSERT_EQ(s.write(t1, kX), StepStatus::kOk);
  ASSERT_EQ(s.write(t2, kX), StepStatus::kOk);
  ASSERT_EQ(s.commit(t1), StepStatus::kOk);  // t1 installs first
  ASSERT_EQ(s.commit(t2), StepStatus::kOk);
  const auto vo = s.version_order();
  ASSERT_EQ(vo.at(kX).size(), 2u);
  EXPECT_EQ(vo.at(kX)[0], t1);
  EXPECT_EQ(vo.at(kX)[1], t2);
}

// ------------------------------------------------------------------ runner

TEST(Runner, DeterministicForSameSeed) {
  const auto intents = wl::generate_mix({.transactions = 40, .keys = 8, .seed = 7});
  RunOptions opts{.mode = CCMode::kSnapshotIsolation, .seed = 3, .concurrency = 6};
  const RunResult a = run(intents, opts);
  const RunResult b = run(intents, opts);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (const model::Transaction& t : a.observations) {
    const model::Transaction& u = b.observations.by_id(t.id());
    ASSERT_EQ(t.ops().size(), u.ops().size());
    for (std::size_t i = 0; i < t.ops().size(); ++i) EXPECT_EQ(t.ops()[i], u.ops()[i]);
  }
}

TEST(Runner, SerialModeCommitsEverything) {
  const auto intents = wl::generate_mix({.transactions = 30, .keys = 4, .seed = 2});
  const RunResult r = run(intents, {.mode = CCMode::kSerial, .seed = 1});
  EXPECT_EQ(r.committed, 30u);
  EXPECT_EQ(r.aborted, 0u);
}

TEST(Runner, SnapshotIsolationAbortsOnContention) {
  // Heavy write contention on a tiny key space: first-committer-wins fires.
  const auto intents = wl::generate_mix(
      {.transactions = 60, .keys = 4, .reads_per_txn = 1, .writes_per_txn = 2, .seed = 5});
  const RunResult r = run(intents, {.mode = CCMode::kSnapshotIsolation, .seed = 9,
                                    .concurrency = 8});
  EXPECT_GT(r.aborted, 0u);
  EXPECT_EQ(r.committed + r.aborted, 60u);
}

TEST(Runner, RetriesReRunAbortedIntents) {
  const auto intents = wl::generate_mix(
      {.transactions = 60, .keys = 4, .reads_per_txn = 1, .writes_per_txn = 2, .seed = 5});
  const RunResult r = run(intents, {.mode = CCMode::kSnapshotIsolation, .seed = 9,
                                    .concurrency = 8, .retries = 20});
  EXPECT_EQ(r.committed, 60u);  // every intent eventually commits
}

TEST(Runner, TwoPhaseLockingMakesProgressUnderContention) {
  const auto intents = wl::generate_mix(
      {.transactions = 80, .keys = 4, .reads_per_txn = 2, .writes_per_txn = 2, .seed = 11});
  // Wait-die under 8-way contention on a 4-key space thrashes by design;
  // with retry-with-original-seniority every intent still gets through.
  const RunResult r = run(intents, {.mode = CCMode::kTwoPhaseLocking, .seed = 13,
                                    .concurrency = 8, .retries = 500});
  EXPECT_EQ(r.committed, 80u);
  EXPECT_GT(r.blocked_steps, 0u);  // some waiting happened
}

TEST(Runner, InjectedAbortsAreRecorded) {
  const auto intents = wl::generate_mix({.transactions = 50, .keys = 16, .seed = 3});
  const RunResult r = run(intents, {.mode = CCMode::kReadCommitted, .seed = 4,
                                    .concurrency = 4, .injected_abort_prob = 0.2});
  EXPECT_GT(r.aborted, 0u);
  EXPECT_LT(r.committed, 50u);
}

TEST(Runner, ObservationsCarrySessionsAndTimestamps) {
  const auto intents = wl::generate_mix(
      {.transactions = 12, .keys = 20, .sessions = 3, .seed = 6});
  const RunResult r = run(intents, {.mode = CCMode::kSerial, .seed = 1});
  for (const model::Transaction& t : r.observations) {
    EXPECT_TRUE(t.has_timestamps());
    EXPECT_NE(t.session(), kNoSession);
  }
}

}  // namespace
}  // namespace crooks::store
