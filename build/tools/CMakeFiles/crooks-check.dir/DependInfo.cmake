
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/crooks_check.cpp" "tools/CMakeFiles/crooks-check.dir/crooks_check.cpp.o" "gcc" "tools/CMakeFiles/crooks-check.dir/crooks_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/crooks_report.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/crooks_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/adya/CMakeFiles/crooks_adya.dir/DependInfo.cmake"
  "/root/repo/build/src/committest/CMakeFiles/crooks_committest.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/crooks_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
