// Frozen hash-based reference engines.
//
// This is the pre-compile exhaustive search, read-state analysis, and
// streaming monitor, kept verbatim as baselines: per-key timelines in
// unordered_maps, `contains(w)` / `by_id(w)` probes on every search node or
// appended transaction — exactly the representation CompiledHistory replaced.
// Three consumers:
//
//  * tests/compiled_history_test.cpp runs the batch engines differentially
//    against the compiled ones — verdicts must agree on every level, with and
//    without version orders (compilation is a pure re-indexing);
//  * tests/online_incremental_test.cpp runs OnlineCheckerHashed differentially
//    against the incremental compiled OnlineChecker — per-level status,
//    first-violation id and explanation text must agree on any interleaving
//    of append() / append_all() blocks;
//  * bench_ablation_checker's `representation` ablation and
//    bench_online_incremental's `hashed` baseline measure the speedup of the
//    compiled engines over these in the same binary.
//
// The one deliberate divergence from the historical code: the candidate
// comparator. The original compared untimestamped transactions "equivalent"
// to everything, which is not a strict weak order on mixed
// timestamped/untimestamped sets (UB in std::sort) — freezing that would
// freeze the bug. This copy uses the fixed total order (timestamped first by
// commit timestamp, untimestamped after, dense index as tie-break), which is
// also CompiledHistory::ts_order() — candidate ordering affects node counts
// and witness choice, never verdicts.
//
// Do not "improve" this file; it is only useful while it stays hashed.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/checker.hpp"
#include "common/bitset.hpp"
#include "common/interval.hpp"
#include "model/compiled.hpp"

namespace crooks::checker::reference {

/// Sequential branch-and-bound over execution prefixes on the hashed
/// representation. Verdict-equivalent to check_exhaustive(level, txns, opts)
/// with opts.threads == 1 (identical candidate order ⇒ identical node
/// counts, too).
CheckResult check_exhaustive_hashed(ct::IsolationLevel level,
                                    const model::TransactionSet& txns,
                                    const CheckOptions& opts = {});

/// The hashed read-state computation: per-op RS_e(o) intervals of every
/// transaction under `e`, index-aligned with Transaction::ops(). Must match
/// ReadStateAnalysis (which runs on the compiled form) interval-for-interval.
std::vector<std::vector<StateInterval>> read_state_intervals_hashed(
    const model::TransactionSet& txns, const model::Execution& e);

/// The pre-incremental streaming monitor, frozen verbatim: every appended
/// transaction is a full Transaction copy, writer recency is an id-hash
/// probe, the Strong/Session recency bound is an O(n) scan over everything
/// applied, and every retroactive-inversion check walks the whole stream.
/// Status-equivalent to checker::OnlineChecker fed the same transactions in
/// the same order (per level: ok, first_violation, explanation).
class OnlineCheckerHashed {
 public:
  explicit OnlineCheckerHashed(std::vector<ct::IsolationLevel> levels =
                                   {ct::kAllLevels.begin(), ct::kAllLevels.end()});

  struct LevelStatus {
    bool ok = true;
    std::optional<TxnId> first_violation;
    std::string explanation;
  };

  /// Append the next committed transaction; false if the id was already seen.
  bool append(const model::Transaction& txn);

  /// Per-transaction appends in dense order — the "hashed fallback" regime
  /// the incremental checker eliminated.
  std::size_t append_all(const model::TransactionSet& txns);

  const LevelStatus& status(ct::IsolationLevel level) const;
  bool all_ok() const;
  std::size_t size() const { return txns_.size(); }
  std::vector<ct::IsolationLevel> surviving_levels() const;

 private:
  struct OpView {
    StateInterval rs;
    bool internal = false;
  };

  struct Placed {
    model::Transaction txn;
    StateIndex state = 0;  // 1-based
    std::vector<OpView> ops;
    DynamicBitset prec;  // populated only when PSI is tracked
  };

  bool tracking(ct::IsolationLevel level) const {
    return statuses_.contains(level);
  }
  void violate(ct::IsolationLevel level, TxnId txn, std::string why);

  OpView analyze_op(const model::Transaction& t, std::size_t op_index,
                    StateIndex parent) const;
  void evaluate_new(Placed& p);
  void check_retroactive_inversions(const Placed& p);
  void commit_placed(Placed p);

  const std::vector<std::pair<StateIndex, std::size_t>>* timeline_of(Key k) const {
    const model::KeyIdx ki = keys_.find(k);
    return ki == model::kNoKeyIdx || timelines_[ki].empty() ? nullptr
                                                            : &timelines_[ki];
  }

  std::map<ct::IsolationLevel, LevelStatus> statuses_;
  std::vector<Placed> txns_;  // in append (= execution) order
  std::unordered_map<TxnId, std::size_t> index_;
  model::KeyInterner keys_;
  std::vector<std::vector<std::pair<StateIndex, std::size_t>>> timelines_;
};

}  // namespace crooks::checker::reference
