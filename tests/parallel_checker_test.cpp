// Differential harness for the parallel checker layers.
//
// Parallelism can silently break search soundness (a lost branch, a racy
// budget, a witness assembled from a cancelled worker), so every parallel
// path is cross-validated here against the sequential ground truth on
// randomized adversarial observation sets:
//   * branch-parallel exhaustive search at 2 and 8 threads must reach the
//     verdict of check_exhaustive with threads = 1, and its witnesses must
//     pass verify_witness;
//   * check_batch must equal element-wise sequential checking, in input
//     order, with per-item version orders honoured;
//   * verdicts must be reproducible run-to-run at every thread count, even
//     when the node budget truncates the search;
//   * the pool itself must run every task and propagate exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "checker/checker.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "store/runner.hpp"
#include "workload/observations.hpp"
#include "workload/workload.hpp"

namespace crooks {
namespace {

using checker::BatchItem;
using checker::CheckOptions;
using checker::CheckResult;
using checker::Outcome;
using ct::IsolationLevel;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

class ParallelDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  wl::FuzzedObservations make() const {
    wl::ObservationFuzzOptions opts;
    opts.transactions = 7;
    opts.keys = 4;
    return wl::fuzz_observations(GetParam(), opts);
  }
};

TEST_P(ParallelDifferential, ExhaustiveVerdictsMatchSequential) {
  const wl::FuzzedObservations f = make();
  for (IsolationLevel level : ct::kAllLevels) {
    CheckOptions seq;
    seq.threads = 1;
    const CheckResult oracle = checker::check_exhaustive(level, f.txns, seq);
    ASSERT_NE(oracle.outcome, Outcome::kUnknown);
    for (std::size_t threads : kThreadCounts) {
      CheckOptions par = seq;
      par.threads = threads;
      const CheckResult r = checker::check_exhaustive(level, f.txns, par);
      EXPECT_EQ(r.outcome, oracle.outcome)
          << ct::name_of(level) << " at " << threads << " threads: " << r.detail;
      if (r.satisfiable()) {
        ASSERT_TRUE(r.witness.has_value());
        const ct::ExecutionVerdict v = checker::verify_witness(level, f.txns, *r.witness);
        EXPECT_TRUE(v.ok) << ct::name_of(level) << " at " << threads
                          << " threads: " << v.explanation;
      }
    }
  }
}

TEST_P(ParallelDifferential, ExhaustiveVerdictsMatchUnderVersionOrder) {
  const wl::FuzzedObservations f = make();
  for (IsolationLevel level : ct::kAllLevels) {
    CheckOptions seq;
    seq.threads = 1;
    seq.version_order = &f.version_order;
    const CheckResult oracle = checker::check_exhaustive(level, f.txns, seq);
    ASSERT_NE(oracle.outcome, Outcome::kUnknown);
    for (std::size_t threads : kThreadCounts) {
      CheckOptions par = seq;
      par.threads = threads;
      const CheckResult r = checker::check_exhaustive(level, f.txns, par);
      EXPECT_EQ(r.outcome, oracle.outcome)
          << ct::name_of(level) << " at " << threads << " threads";
      if (r.satisfiable()) {
        EXPECT_TRUE(checker::verify_witness(level, f.txns, *r.witness).ok);
      }
    }
  }
}

TEST_P(ParallelDifferential, CheckBatchEqualsElementwiseCheck) {
  // A batch mixing three histories (plain, and two restricted by their own
  // version order) must reproduce the lone check() results in input order.
  const wl::FuzzedObservations a = wl::fuzz_observations(GetParam() * 3 + 1);
  const wl::FuzzedObservations b = wl::fuzz_observations(GetParam() * 3 + 2);
  const wl::FuzzedObservations c = wl::fuzz_observations(GetParam() * 3 + 3);
  const std::vector<BatchItem> items = {
      {&a.txns, nullptr},
      {&b.txns, &b.version_order},
      {&c.txns, &c.version_order},
  };
  for (IsolationLevel level : {IsolationLevel::kReadAtomic, IsolationLevel::kPSI,
                               IsolationLevel::kSerializable}) {
    std::vector<CheckResult> lone;
    for (const BatchItem& item : items) {
      CheckOptions o;
      o.threads = 1;
      o.version_order = item.version_order;
      lone.push_back(checker::check(level, *item.txns, o));
    }
    for (std::size_t threads : kThreadCounts) {
      CheckOptions o;
      o.threads = threads;
      const std::vector<CheckResult> batch = checker::check_batch(level, items, o);
      ASSERT_EQ(batch.size(), items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(batch[i].outcome, lone[i].outcome)
            << ct::name_of(level) << " item " << i << " at " << threads << " threads";
        if (batch[i].satisfiable()) {
          ASSERT_TRUE(batch[i].witness.has_value());
          EXPECT_TRUE(
              checker::verify_witness(level, *items[i].txns, *batch[i].witness).ok);
        }
      }
    }
  }
}

TEST_P(ParallelDifferential, BudgetLimitedVerdictsAreReproducible) {
  // Tiny node budgets truncate the search; the deterministic combination
  // rule must still give the same verdict on every rerun at every thread
  // count, and a definite verdict must agree with the unbounded oracle.
  const wl::FuzzedObservations f = make();
  for (IsolationLevel level : {IsolationLevel::kReadAtomic, IsolationLevel::kAdyaSI,
                               IsolationLevel::kSerializable}) {
    CheckOptions unbounded;
    unbounded.threads = 1;
    const CheckResult oracle = checker::check_exhaustive(level, f.txns, unbounded);
    for (std::uint64_t budget : {5ull, 40ull, 400ull}) {
      for (std::size_t threads : kThreadCounts) {
        CheckOptions o;
        o.threads = threads;
        o.max_nodes = budget;
        const CheckResult first = checker::check_exhaustive(level, f.txns, o);
        for (int rerun = 0; rerun < 3; ++rerun) {
          const CheckResult again = checker::check_exhaustive(level, f.txns, o);
          EXPECT_EQ(again.outcome, first.outcome)
              << ct::name_of(level) << " budget " << budget << " threads " << threads;
        }
        if (first.outcome != Outcome::kUnknown) {
          EXPECT_EQ(first.outcome, oracle.outcome)
              << ct::name_of(level) << " budget " << budget << " threads " << threads;
        }
        if (first.satisfiable()) {
          EXPECT_TRUE(checker::verify_witness(level, f.txns, *first.witness).ok);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(CheckBatch, EmptyAndSingle) {
  EXPECT_TRUE(
      checker::check_batch(IsolationLevel::kSerializable,
                           std::span<const model::TransactionSet>())
          .empty());

  const wl::FuzzedObservations f = wl::fuzz_observations(7);
  const std::vector<model::TransactionSet> one = {f.txns};
  const auto r = checker::check_batch(IsolationLevel::kSerializable, one);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].outcome,
            checker::check(IsolationLevel::kSerializable, f.txns).outcome);
}

TEST(RunVerifiedBatch, MatchesIndividualRunsAndVerdicts) {
  std::vector<std::vector<store::TxnIntent>> workloads;
  for (std::size_t i = 0; i < 6; ++i) {
    workloads.push_back(wl::generate_mix({.transactions = 10,
                                          .keys = 5,
                                          .reads_per_txn = 2,
                                          .writes_per_txn = 2,
                                          .seed = 50 + i}));
  }
  store::RunOptions base{.mode = store::CCMode::kSnapshotIsolation,
                         .seed = 3,
                         .concurrency = 4,
                         .retries = 2};
  checker::CheckOptions copts;
  copts.threads = 4;
  const std::vector<store::VerifiedRun> batch = store::run_verified_batch(
      workloads, base, IsolationLevel::kSerializable, copts);
  ASSERT_EQ(batch.size(), workloads.size());

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    store::RunOptions o = base;
    o.seed = base.seed + i;
    const store::RunResult lone = store::run(workloads[i], o);
    EXPECT_EQ(batch[i].run.committed, lone.committed);
    EXPECT_EQ(batch[i].run.observations.size(), lone.observations.size());

    checker::CheckOptions seq;
    seq.threads = 1;
    seq.version_order = &lone.version_order;
    EXPECT_EQ(batch[i].verdict.outcome,
              checker::check(IsolationLevel::kSerializable, lone.observations, seq)
                  .outcome)
        << "workload " << i;
  }
}

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), (wave + 1) * 10);
  }
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&completed, i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after an exception.
  pool.submit([&completed] { completed.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, GaugesStayConsistentUnderContention) {
  // Hammer the pool's observability surface from outside while workers churn:
  // readers of queue_depth()/in_flight() and the global gauges race the
  // workers' updates. Run under TSan, this is the data-race gate for the
  // pool instrumentation; in any build it checks the gauges return to zero.
  obs::Gauge& depth = obs::Registry::global().gauge("crooks_pool_queue_depth");
  obs::Gauge& inflight = obs::Registry::global().gauge("crooks_pool_inflight");
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> ran{0};
  ThreadPool pool(4);
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      // Snapshots may be stale but must never be garbage.
      EXPECT_LE(pool.in_flight(), 4u + pool.queue_depth());
      EXPECT_GE(depth.value(), 0);
      EXPECT_GE(inflight.value(), -4);  // transiently low is fine; garbage isn't
      std::this_thread::yield();
    }
  });
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
  }
  done.store(true);
  reader.join();
  EXPECT_EQ(ran.load(), 20u * 50u);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ThreadPool pool;  // default-sized pool must construct and tear down cleanly
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace crooks
