#include <gtest/gtest.h>

#include <stdexcept>

#include "model/execution.hpp"
#include "model/operation.hpp"
#include "model/transaction.hpp"

namespace crooks::model {
namespace {

TEST(Value, InitialIsBottom) {
  Value v;
  EXPECT_TRUE(v.is_initial());
  EXPECT_FALSE(Value{TxnId{3}}.is_initial());
  EXPECT_FALSE(Value(kInitTxn, /*ph=*/true).is_initial());
}

TEST(Operation, Factories) {
  const Operation r = Operation::read(Key{1}, TxnId{5});
  EXPECT_TRUE(r.is_read());
  EXPECT_EQ(r.value.writer, TxnId{5});
  EXPECT_FALSE(r.value.phantom);

  const Operation w = Operation::write(Key{2}, TxnId{7});
  EXPECT_TRUE(w.is_write());
  EXPECT_EQ(w.value.writer, TxnId{7});

  const Operation p = Operation::read_intermediate(Key{1}, TxnId{5});
  EXPECT_TRUE(p.value.phantom);
}

TEST(Operation, ToString) {
  EXPECT_EQ(to_string(Operation::read(Key{1}, TxnId{5})), "r(k1=T5)");
  EXPECT_EQ(to_string(Operation::write(Key{2}, TxnId{7})), "w(k2)");
  EXPECT_EQ(to_string(Operation::read_intermediate(Key{1}, TxnId{5})), "r(k1=T5!)");
}

TEST(Transaction, ReadAndWriteSets) {
  const Transaction t = TxnBuilder(1).read(10, 0).write(11).read(12, 3).build();
  EXPECT_EQ(t.read_set().size(), 2u);
  EXPECT_EQ(t.write_set().size(), 1u);
  EXPECT_TRUE(t.reads(Key{10}));
  EXPECT_TRUE(t.writes(Key{11}));
  EXPECT_FALSE(t.writes(Key{10}));
  EXPECT_FALSE(t.is_read_only());
  EXPECT_TRUE(TxnBuilder(2).read(10, 0).build().is_read_only());
}

TEST(Transaction, RejectsDoubleWrite) {
  EXPECT_THROW(TxnBuilder(1).write(5).write(5).build(), std::invalid_argument);
}

TEST(Transaction, TimestampsOptional) {
  const Transaction untimed = TxnBuilder(1).write(0).build();
  EXPECT_FALSE(untimed.has_timestamps());
  const Transaction timed = TxnBuilder(2).write(0).at(10, 20).build();
  EXPECT_TRUE(timed.has_timestamps());
  EXPECT_EQ(timed.start_ts(), 10);
  EXPECT_EQ(timed.commit_ts(), 20);
}

TEST(Transaction, TimePrecedes) {
  const Transaction a = TxnBuilder(1).write(0).at(0, 5).build();
  const Transaction b = TxnBuilder(2).write(1).at(6, 8).build();
  const Transaction c = TxnBuilder(3).write(2).at(4, 9).build();  // overlaps a
  EXPECT_TRUE(time_precedes(a, b));
  EXPECT_FALSE(time_precedes(b, a));
  EXPECT_FALSE(time_precedes(a, c));
  EXPECT_FALSE(time_precedes(c, a));
  const Transaction untimed = TxnBuilder(4).write(3).build();
  EXPECT_FALSE(time_precedes(a, untimed));
  EXPECT_FALSE(time_precedes(untimed, b));
}

TEST(TransactionSet, DenseIndexRoundTrip) {
  TransactionSet ts({TxnBuilder(5).write(0).build(), TxnBuilder(9).write(1).build()});
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.by_id(TxnId{9}).id(), TxnId{9});
  EXPECT_EQ(ts.at(ts.dense_index_of(TxnId{5})).id(), TxnId{5});
  EXPECT_TRUE(ts.contains(TxnId{5}));
  EXPECT_FALSE(ts.contains(TxnId{6}));
  EXPECT_THROW(ts.dense_index_of(TxnId{6}), std::out_of_range);
}

TEST(TransactionSet, RejectsDuplicatesAndReservedId) {
  EXPECT_THROW(TransactionSet({TxnBuilder(1).build(), TxnBuilder(1).build()}),
               std::invalid_argument);
  EXPECT_THROW(TransactionSet({TxnBuilder(0).build()}), std::invalid_argument);
}

TEST(Execution, PositionsAndParents) {
  TransactionSet ts({TxnBuilder(1).write(0).build(), TxnBuilder(2).write(1).build(),
                     TxnBuilder(3).write(2).build()});
  Execution e(ts, {TxnId{2}, TxnId{3}, TxnId{1}});
  EXPECT_EQ(e.size(), 3u);
  EXPECT_EQ(e.state_of(ts.dense_index_of(TxnId{2})), 1);
  EXPECT_EQ(e.state_of(ts.dense_index_of(TxnId{3})), 2);
  EXPECT_EQ(e.state_of(ts.dense_index_of(TxnId{1})), 3);
  EXPECT_EQ(e.parent_of(ts.dense_index_of(TxnId{3})), 1);
  EXPECT_EQ(e.last_state(), 3);
}

TEST(Execution, RejectsNonPermutations) {
  TransactionSet ts({TxnBuilder(1).build(), TxnBuilder(2).build()});
  EXPECT_THROW(Execution(ts, {TxnId{1}}), std::invalid_argument);
  EXPECT_THROW(Execution(ts, {TxnId{1}, TxnId{1}}), std::invalid_argument);
  EXPECT_THROW(Execution(ts, {TxnId{1}, TxnId{3}}), std::out_of_range);
}

TEST(Execution, MaterializeStates) {
  TransactionSet ts({TxnBuilder(1).write(10).build(),
                     TxnBuilder(2).write(10).write(11).build()});
  Execution e(ts, {TxnId{1}, TxnId{2}});
  const auto s0 = e.materialize(ts, 0);
  EXPECT_TRUE(s0.empty());  // all keys implicitly ⊥
  const auto s1 = e.materialize(ts, 1);
  EXPECT_EQ(s1.at(Key{10}).writer, TxnId{1});
  const auto s2 = e.materialize(ts, 2);
  EXPECT_EQ(s2.at(Key{10}).writer, TxnId{2});
  EXPECT_EQ(s2.at(Key{11}).writer, TxnId{2});
  EXPECT_THROW(e.materialize(ts, 3), std::out_of_range);
}

TEST(Execution, IdentityOrder) {
  TransactionSet ts({TxnBuilder(4).build(), TxnBuilder(2).build()});
  Execution e = Execution::identity(ts);
  EXPECT_EQ(e.order().front(), TxnId{4});
  EXPECT_EQ(e.order().back(), TxnId{2});
}

TEST(Execution, ToStringShape) {
  TransactionSet ts({TxnBuilder(1).build()});
  EXPECT_EQ(to_string(Execution::identity(ts)), "s0 -T1-> s1");
}

}  // namespace
}  // namespace crooks::model
