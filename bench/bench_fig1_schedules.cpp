// Figure 1: two schedules that expose how differently "serializability" is
// implemented in practice.
//
//   (l) a schedule that IS serializable, but only if the system is willing
//       to order transactions against their real-time commit order
//       ("reorder writes"): T1 writes x and commits; T2, which started
//       before T1 committed... — concretely, T2 reads the initial x after
//       T1's commit has landed. Serialization order must put T2 first.
//       Systems that pin serialization order to commit order (the paper's
//       O/M columns) reject it; a true SER checker accepts.
//   (r) write skew: NOT serializable, but accepted by every snapshot-based
//       "serializable" mode (the Oracle 12c column of Figure 1).
//
// We reproduce the acceptance matrix with our isolation levels standing in
// for the paper's systems: StrictSerializable ≙ commit-order-pinned systems,
// Serializable ≙ the classic definition, AnsiSI ≙ SI certifiers sold as
// "serializable".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "checker/checker.hpp"

using namespace crooks;

namespace {

constexpr Key x{0}, y{1};
using model::TxnBuilder;

model::TransactionSet schedule_l() {
  // T1 w(x) commits at 10; T2 starts at 20 (after T1 commits) yet reads the
  // pre-T1 value of x and writes y. Serializable via the order T2, T1 —
  // which inverts real time.
  return model::TransactionSet{{
      TxnBuilder(1).write(x).at(0, 10).build(),
      TxnBuilder(2).read(x, kInitTxn).write(y).at(20, 30).build(),
  }};
}

model::TransactionSet schedule_r() {
  // Write skew (Figure 1(r)).
  return model::TransactionSet{{
      TxnBuilder(1).read(x, kInitTxn).read(y, kInitTxn).write(x).at(0, 10).build(),
      TxnBuilder(2).read(x, kInitTxn).read(y, kInitTxn).write(y).at(1, 11).build(),
  }};
}

void print_matrix() {
  struct Row {
    const char* system;
    ct::IsolationLevel level;
  };
  const Row rows[] = {
      {"classic serializability (S/MS/AS)", ct::IsolationLevel::kSerializable},
      {"commit-order-pinned systems (M/R)", ct::IsolationLevel::kStrictSerializable},
      {"SI certifiers sold as SER (O)", ct::IsolationLevel::kAnsiSI},
  };
  std::printf("Figure 1: acceptance of the two schedules\n\n");
  std::printf("%-36s %14s %14s\n", "system (≙ level)", "(l) reorder", "(r) write skew");
  for (const Row& row : rows) {
    const bool l = checker::check(row.level, schedule_l()).satisfiable();
    const bool r = checker::check(row.level, schedule_r()).satisfiable();
    std::printf("%-36s %14s %14s\n", row.system, l ? "accept" : "REJECT",
                r ? "accept" : "REJECT");
  }
  std::printf(
      "\nShape match with the paper: only the classic definition accepts (l) and\n"
      "rejects (r); commit-order-pinned systems reject the serializable (l);\n"
      "SI-based 'serializable' modes accept the non-serializable (r).\n\n");
}

void BM_ScheduleL(benchmark::State& state) {
  const model::TransactionSet txns = schedule_l();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check(ct::IsolationLevel::kSerializable, txns).outcome);
  }
}
BENCHMARK(BM_ScheduleL);

void BM_ScheduleR(benchmark::State& state) {
  const model::TransactionSet txns = schedule_r();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check(ct::IsolationLevel::kSerializable, txns).outcome);
  }
}
BENCHMARK(BM_ScheduleR);

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
