# Empty dependencies file for geo_store_test.
# This may be replaced when dependencies are built.
