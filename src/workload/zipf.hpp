// Zipfian key sampler (Gray et al., "Quickly generating billion-record
// synthetic databases"), the standard skewed-access model for transactional
// benchmarks. theta = 0 degenerates to uniform.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace crooks::wl {

class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    if (n == 0) throw std::invalid_argument("empty key space");
    if (theta < 0 || theta >= 1.0) {
      throw std::invalid_argument("theta must be in [0, 1)");
    }
    if (theta > 0) {
      zetan_ = zeta(n, theta);
      const double zeta2 = zeta(2, theta);
      alpha_ = 1.0 / (1.0 - theta);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta2 / zetan_);
    }
  }

  /// Sample a key index in [0, n).
  std::uint64_t operator()(Rng& rng) const {
    if (theta_ == 0) return rng.below(n_);
    const double u = rng.uniform01();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0, alpha_ = 0, eta_ = 0;
};

}  // namespace crooks::wl
