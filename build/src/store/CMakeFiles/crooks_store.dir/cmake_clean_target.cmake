file(REMOVE_RECURSE
  "libcrooks_store.a"
)
