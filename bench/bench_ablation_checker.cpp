// Ablation: checker engines.
//
// The graph engine (constructive theorems, polynomial) vs the exhaustive
// engine (branch-and-bound, factorial) on the same store-generated
// observations, across observation-set sizes. This quantifies why the
// equivalence theorems matter operationally: they turn an exponential
// search into a serialization-graph pass.
#include <benchmark/benchmark.h>

#include "checker/checker.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

store::RunResult run_of_size(std::size_t n) {
  const auto intents = wl::generate_mix({.transactions = n,
                                         .keys = std::max<std::size_t>(4, n / 3),
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = n});
  return store::run(intents, {.mode = store::CCMode::kSnapshotIsolation,
                              .seed = 2 * n + 1, .concurrency = 4, .retries = 3});
}

void BM_GraphEngine(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_graph(ct::IsolationLevel::kSerializable, r.observations, opts)
            .outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphEngine)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_ExhaustiveEngine(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_exhaustive(ct::IsolationLevel::kSerializable, r.observations,
                                  opts)
            .outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExhaustiveEngine)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Complexity();

/// Refutation is where the engines truly diverge: on an UNSATISFIABLE
/// instance (write skew padded with independent writers) the exhaustive
/// engine must exhaust the pruned permutation tree, while the graph engine
/// answers from one phenomena pass.
model::TransactionSet unsat_instance(std::size_t n) {
  using model::TxnBuilder;
  std::vector<model::Transaction> txns;
  txns.push_back(TxnBuilder(1).read(0, 0).read(1, 0).write(0).at(0, 1).build());
  txns.push_back(TxnBuilder(2).read(0, 0).read(1, 0).write(1).at(2, 3).build());
  for (std::uint64_t i = 3; i <= n; ++i) {
    txns.push_back(TxnBuilder(i)
                       .write(Key{i + 10})
                       .at(static_cast<Timestamp>(2 * i), static_cast<Timestamp>(2 * i + 1))
                       .build());
  }
  return model::TransactionSet(std::move(txns));
}

void BM_ExhaustiveRefutation(benchmark::State& state) {
  const model::TransactionSet txns = unsat_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_exhaustive(ct::IsolationLevel::kSerializable, txns).outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExhaustiveRefutation)->Arg(4)->Arg(6)->Arg(8)->Arg(9)->Complexity();

void BM_GraphRefutation(benchmark::State& state) {
  const model::TransactionSet txns = unsat_instance(static_cast<std::size_t>(state.range(0)));
  std::unordered_map<Key, std::vector<TxnId>> vo;
  for (const model::Transaction& t : txns) {
    for (Key k : t.write_set()) vo[k].push_back(t.id());
  }
  checker::CheckOptions opts;
  opts.version_order = &vo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_graph(ct::IsolationLevel::kSerializable, txns, opts).outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphRefutation)->Arg(4)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_ReadStateAnalysis(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  const model::Execution e =
      *checker::check(ct::IsolationLevel::kReadCommitted, r.observations).witness;
  for (auto _ : state) {
    const model::ReadStateAnalysis analysis(r.observations, e);
    benchmark::DoNotOptimize(analysis.preread_all());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadStateAnalysis)->Arg(32)->Arg(128)->Arg(512)->Arg(2048)->Complexity();

void BM_PrecedenceClosure(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  const model::Execution e =
      *checker::check(ct::IsolationLevel::kReadCommitted, r.observations).witness;
  for (auto _ : state) {
    const model::ReadStateAnalysis analysis(r.observations, e);
    benchmark::DoNotOptimize(analysis.precedence().direct_count(0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrecedenceClosure)->Arg(32)->Arg(128)->Arg(512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
