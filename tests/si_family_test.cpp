// Clause-by-clause behaviour of the snapshot-family commit tests (Table 2):
// COMPLETE, NO-CONF boundaries, C-ORD, T_s <_s T witness selection, and the
// session / real-time recency lower bounds.
#include <gtest/gtest.h>

#include "committest/commit_test.hpp"
#include "model/analysis.hpp"

namespace crooks::ct {
namespace {

using model::Execution;
using model::ReadStateAnalysis;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1}, kZ{2};

struct Harness {
  TransactionSet txns;
  Execution e;
  ReadStateAnalysis a;
  CommitTester tester;

  Harness(TransactionSet t, std::vector<TxnId> order)
      : txns(std::move(t)), e(txns, std::move(order)), a(txns, e), tester(a) {}
};

TEST(SiClauses, NoConfExactBoundary) {
  // T3 reads from s1 (x=T1) and writes y; y was last written at s2 by T2.
  // The only complete state for T3's read is s1, but NO-CONF needs s ≥ 2:
  // the candidate interval [max(1,2), parent] ∩ [1,1] is empty → fail.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).write(kX).write(kY).build(),
      TxnBuilder(3).read(kX, TxnId{1}).write(kY).build(),
  }};
  Harness h(std::move(txns), {TxnId{1}, TxnId{2}, TxnId{3}});
  const CommitTestResult r =
      h.tester.test(IsolationLevel::kAdyaSI, h.txns.dense_index_of(TxnId{3}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("NO-CONF"), std::string::npos);
}

TEST(SiClauses, NoConfSatisfiedAtExactState) {
  // Same shape but T3 reads from T2's x: the complete state IS s2, which
  // equals the conflict threshold — the boundary case must pass.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).write(kX).write(kY).build(),
      TxnBuilder(3).read(kX, TxnId{2}).write(kY).build(),
  }};
  Harness h(std::move(txns), {TxnId{1}, TxnId{2}, TxnId{3}});
  EXPECT_TRUE(h.tester.test(IsolationLevel::kAdyaSI, h.txns.dense_index_of(TxnId{3})).ok);
}

TEST(SiClauses, WitnessNeedNotBeParent) {
  // T3 reads the stale-but-complete s1; two unrelated commits intervene.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).write(kY).build(),
      TxnBuilder(4).write(kY).build(),
      TxnBuilder(3).read(kX, TxnId{1}).read(kY, kInitTxn).write(kZ).build(),
  }};
  Harness h(std::move(txns), {TxnId{1}, TxnId{2}, TxnId{4}, TxnId{3}});
  EXPECT_TRUE(h.tester.test(IsolationLevel::kAdyaSI, h.txns.dense_index_of(TxnId{3})).ok);
  // y=⊥ is only current in s0 and... no: T2 writes y at s2, so the read of
  // y=⊥ pins the snapshot to s1 at the latest; SER needs the parent s3.
  EXPECT_FALSE(
      h.tester.test(IsolationLevel::kSerializable, h.txns.dense_index_of(TxnId{3})).ok);
}

TEST(SiClauses, CordRejectsInvertedAdjacentPair) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 20).build(),
      TxnBuilder(2).write(kY).at(1, 10).build(),
  }};
  // Execution T1, T2 puts commit 20 before commit 10.
  Harness h(std::move(txns), {TxnId{1}, TxnId{2}});
  const CommitTestResult r =
      h.tester.test(IsolationLevel::kAnsiSI, h.txns.dense_index_of(TxnId{2}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C-ORD"), std::string::npos);
  // The untimed test does not care.
  EXPECT_TRUE(h.tester.test_all(IsolationLevel::kAdyaSI).ok);
}

TEST(SiClauses, WitnessMustTimePrecede) {
  // T2 starts before T1 commits, and reads T1's write: under ANSI SI the
  // snapshot's generator must commit before T2 starts — s1 does not qualify
  // and s0 is not complete for the read.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 10).build(),
      TxnBuilder(2).read(kX, TxnId{1}).at(5, 20).build(),
  }};
  Harness h(std::move(txns), {TxnId{1}, TxnId{2}});
  const CommitTestResult r =
      h.tester.test(IsolationLevel::kAnsiSI, h.txns.dense_index_of(TxnId{2}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("T_s <_s T"), std::string::npos);
  // Adya SI (logical timestamps) accepts exactly this — the paper's point
  // about reading "further in the past than necessary" vs early visibility.
  EXPECT_TRUE(h.tester.test(IsolationLevel::kAdyaSI, h.txns.dense_index_of(TxnId{2})).ok);
}

TEST(SiClauses, InitialStateAlwaysTimePrecedes) {
  TransactionSet txns{{TxnBuilder(1).read(kX, kInitTxn).at(0, 1).build()}};
  Harness h(std::move(txns), {TxnId{1}});
  EXPECT_TRUE(h.tester.test_all(IsolationLevel::kStrongSI).ok);
}

TEST(SiClauses, SessionRecencyLowerBound) {
  // Session: T1 then T3. T3's snapshot must include s_{T1}; reading y=⊥ pins
  // it before T2's write of y... which is after T1 — consistent. But reading
  // x=⊥ would pin it before s_{T1}: violation.
  TransactionSet ok_txns{{
      TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
      TxnBuilder(2).write(kY).at(11, 40).build(),
      TxnBuilder(3).read(kX, TxnId{1}).read(kY, kInitTxn).session(SessionId{1}).at(20, 30).build(),
  }};
  Harness good(std::move(ok_txns), {TxnId{1}, TxnId{3}, TxnId{2}});
  EXPECT_TRUE(good.tester.test_all(IsolationLevel::kSessionSI).ok)
      << good.tester.test_all(IsolationLevel::kSessionSI).explanation;

  TransactionSet bad_txns{{
      TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
      TxnBuilder(3).read(kX, kInitTxn).session(SessionId{1}).at(20, 30).build(),
  }};
  Harness bad(std::move(bad_txns), {TxnId{1}, TxnId{3}});
  const CommitTestResult r =
      bad.tester.test(IsolationLevel::kSessionSI, bad.txns.dense_index_of(TxnId{3}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("recency"), std::string::npos);
}

TEST(SiClauses, StrongRecencyCountsAllSessions) {
  // T2 (other session) commits before T3 starts; T3 reads x=⊥ from before
  // T2's write: Strong SI rejects, Session SI (no shared session) accepts.
  TransactionSet txns{{
      TxnBuilder(2).write(kX).session(SessionId{7}).at(0, 10).build(),
      TxnBuilder(3).read(kX, kInitTxn).session(SessionId{8}).at(20, 30).build(),
  }};
  Harness h(std::move(txns), {TxnId{2}, TxnId{3}});
  EXPECT_TRUE(h.tester.test_all(IsolationLevel::kSessionSI).ok);
  const CommitTestResult r =
      h.tester.test(IsolationLevel::kStrongSI, h.txns.dense_index_of(TxnId{3}));
  EXPECT_FALSE(r.ok);
}

TEST(SiClauses, ReadOnlyTransactionsNeverConflict) {
  // NO-CONF is vacuous for read-only transactions: any complete state works.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).write(kX).build(),
      TxnBuilder(3).read(kX, TxnId{1}).build(),
  }};
  Harness h(std::move(txns), {TxnId{1}, TxnId{2}, TxnId{3}});
  EXPECT_TRUE(h.tester.test(IsolationLevel::kAdyaSI, h.txns.dense_index_of(TxnId{3})).ok);
}

TEST(SiClauses, HelperAccessors) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
      TxnBuilder(2).write(kY).session(SessionId{1}).at(20, 30).build(),
      TxnBuilder(3).write(kZ).session(SessionId{2}).at(22, 40).build(),
  }};
  Harness h(std::move(txns), {TxnId{1}, TxnId{2}, TxnId{3}});
  const std::size_t d2 = h.txns.dense_index_of(TxnId{2});
  const std::size_t d3 = h.txns.dense_index_of(TxnId{3});
  EXPECT_EQ(h.tester.realtime_pred_max_state(d2), 1);  // T1's state
  EXPECT_EQ(h.tester.session_pred_max_state(d2), 1);
  EXPECT_EQ(h.tester.realtime_pred_max_state(d3), 1);  // T1 <_s T3 only
  EXPECT_EQ(h.tester.session_pred_max_state(d3), 0);   // alone in session 2
  EXPECT_TRUE(h.tester.commit_ordered_with_parent(d2));
  EXPECT_TRUE(h.tester.commit_ordered_with_parent(h.txns.dense_index_of(TxnId{1})));
}

}  // namespace
}  // namespace crooks::ct
