// Direct-engine scaling: ns/txn for the single-pass RC/RA/PSI checkers
// (checker::check_direct, forced via CheckOptions::engine) against the graph
// engine on the same compiled histories, from 10^3 to 10^6 transactions.
//
// The workload is a clean session-sharded history shaped like a store run:
// monotone commit timestamps, every read observing the latest committed
// writer of its key, so the commit order itself is a valid execution at
// every level. Both engines get the store's authoritative version order
// (per-key writers in commit order) — the configuration `crooks-check`
// audits under, and the one where the graph engine is complete for the
// weak levels: it compiles install orders, detects Adya phenomena, builds
// the serialization graph, and extracts a verified topological witness.
// The direct engine answers the same question in one forward sweep with
// per-key frontiers; the measured gap is everything the sweep never
// materializes. SAT is the right shape for a scaling bench: both engines
// must do their full per-transaction work on every history instead of
// bailing at the first refuted read.
//
// Rows: {rc,ra,psi} x {direct,graph}. RC/RA run 10^3..10^6; PSI stops at
// 10^4 — its verification builds the quadratic-bit precedence closure
// (n^2/8 bytes), and the direct engine's own saturation gate
// (kDirectPsiMaxTxns) declines past 16384 transactions rather than pretend
// the pass is still linear. ns_per_txn is computed from the best (minimum)
// per-iteration wall time, the stable signal on a shared host; CI gates
// direct RC/RA flatness (ns_per_txn at 10^5 within 2x of 10^3) on it.
//
// Verdict parity is asserted at startup: on each benched history size both
// engines must return SAT with a witness that passes the canonical commit
// tests, and on a small fuzzed battery (dangling reads, phantoms) the two
// engines must match the exhaustive oracle's verdict exactly. A bench
// binary must never time an engine that changes answers. Export:
//   --benchmark_format=json > BENCH_checker_direct.json
// When CROOKS_OBS_METRICS_JSON names a file the final registry scrape is
// written there; CI asserts crooks_direct_checks_total > 0 on it (the
// forced-direct rows really did run the direct engine, not a fallback).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/checker.hpp"
#include "model/compiled.hpp"
#include "model/transaction.hpp"
#include "obs/metrics.hpp"
#include "workload/observations.hpp"

using namespace crooks;
using L = ct::IsolationLevel;

namespace {

constexpr std::size_t kKeys = 256;
constexpr std::size_t kSessions = 8;

/// Deterministic splitmix-style step, so the key pattern is stable across
/// runs without seeding anything from the clock.
std::uint64_t mix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// n transactions over kKeys keys in kSessions sessions: txn i writes one
/// key and reads one key from the latest committed writer (or the initial
/// state), with commit timestamps in id order. The commit-sorted execution
/// satisfies every level, so both engines return SAT and pay their full
/// per-transaction cost.
model::TransactionSet build_clean_history(std::size_t n) {
  std::vector<model::Transaction> txns;
  txns.reserve(n);
  std::vector<TxnId> last_writer(kKeys, kInitTxn);
  std::uint64_t s = 0x5eed0000 + n;
  for (std::uint64_t i = 1; i <= n; ++i) {
    const std::size_t wk = mix(s) % kKeys;
    const std::size_t rk = mix(s) % kKeys;
    txns.push_back(model::TxnBuilder(i)
                       .read(Key{rk}, last_writer[rk])
                       .write(Key{wk})
                       .session(SessionId{static_cast<std::uint32_t>(i % kSessions)})
                       .at(static_cast<Timestamp>(2 * i),
                           static_cast<Timestamp>(2 * i + 1))
                       .build());
    last_writer[wk] = TxnId{i};
  }
  return model::TransactionSet(std::move(txns));
}

struct Fixture {
  model::TransactionSet txns;
  model::CompiledHistory ch;
  // Authoritative install order, as a store audit would supply: per key,
  // writers in commit-timestamp order.
  std::unordered_map<Key, std::vector<TxnId>> version_order;
  explicit Fixture(std::size_t n) : txns(build_clean_history(n)), ch(txns) {
    for (std::size_t i = 0; i < txns.size(); ++i) {
      for (const model::Operation& op : txns.at(i).ops()) {
        if (op.is_write()) version_order[op.key].push_back(txns.at(i).id());
      }
    }
  }
};

/// Histories are built once per size and shared across all rows — at 10^6
/// transactions the build itself is seconds of work that must not recur.
const Fixture& fixture(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<Fixture>(n)).first;
  }
  return *it->second;
}

checker::CheckResult run_engine(
    L level, const model::CompiledHistory& ch, checker::EngineSelect engine,
    const std::unordered_map<Key, std::vector<TxnId>>* vo) {
  checker::CheckOptions opts;
  opts.engine = engine;
  opts.threads = 1;
  opts.version_order = vo;
  return checker::check(level, ch, opts);
}

[[noreturn]] void parity_failure(const char* what, L level, std::size_t n,
                                 const checker::CheckResult& r) {
  const std::string name(ct::name_of(level));
  std::fprintf(stderr, "engine parity failure (%s) at level %s, n=%zu: %s\n",
               what, name.c_str(), n, r.detail.c_str());
  std::abort();
}

/// Every benched (level, size) pair must be SAT under both engines with a
/// witness the canonical commit tests accept, and on a fuzzed battery of
/// small adversarial histories both engines must reproduce the exhaustive
/// oracle's verdict. Timing an engine that changes answers is worse than
/// no bench at all.
void assert_parity() {
  const std::vector<std::size_t> sizes{1000, 10000};
  for (L level : {L::kReadCommitted, L::kReadAtomic, L::kPSI}) {
    for (std::size_t n : sizes) {
      const Fixture& f = fixture(n);
      for (auto engine :
           {checker::EngineSelect::kDirect, checker::EngineSelect::kGraph}) {
        const auto r = run_engine(level, f.ch, engine, &f.version_order);
        if (!r.satisfiable()) parity_failure("expected SAT", level, n, r);
        if (!r.witness.has_value()) parity_failure("missing witness", level, n, r);
        const ct::ExecutionVerdict v =
            checker::verify_witness(level, f.ch, *r.witness);
        if (!v.ok) parity_failure(v.explanation.c_str(), level, n, r);
      }
    }
  }
  // Adversarial small histories: dangling observations and phantoms, where
  // UNSAT verdicts and diagnoses must also line up with the oracle.
  wl::ObservationFuzzOptions fo;
  fo.transactions = 7;
  fo.keys = 4;
  fo.p_dangling = 0.1;
  fo.p_phantom = 0.05;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto f = wl::fuzz_observations(seed, fo);
    const model::CompiledHistory ch(f.txns);
    for (L level : {L::kReadCommitted, L::kReadAtomic, L::kPSI}) {
      // Both with and without the fuzzer's version order — the benched rows
      // use one, and the no-vo config exercises the heuristic graph path.
      for (const auto* vo : {&f.version_order,
                             static_cast<decltype(&f.version_order)>(nullptr)}) {
        const auto oracle =
            run_engine(level, ch, checker::EngineSelect::kExhaustive, vo);
        if (oracle.outcome == checker::Outcome::kUnknown) {
          parity_failure("oracle undecided", level, ch.size(), oracle);
        }
        for (auto engine :
             {checker::EngineSelect::kDirect, checker::EngineSelect::kGraph}) {
          const auto r = run_engine(level, ch, engine, vo);
          if (r.outcome == checker::Outcome::kUnknown) continue;  // honest pass
          if (r.outcome != oracle.outcome) {
            parity_failure("oracle disagreement", level, ch.size(), r);
          }
        }
      }
    }
  }
}

/// Per-transaction assignment rotating RC → RA → PSI by dense index: every
/// level the direct tier serves, in one history. Direct-eligible by
/// construction, so the mixed row measures the per-candidate level dispatch
/// against the uniform rows above it.
ct::LevelAssignment mixed_assignment(std::size_t n) {
  std::vector<L> column(n);
  for (std::size_t d = 0; d < n; ++d) {
    column[d] = std::array{L::kReadCommitted, L::kReadAtomic, L::kPSI}[d % 3];
  }
  return ct::LevelAssignment(L::kReadCommitted, std::move(column));
}

checker::CheckResult run_mixed(
    const ct::LevelAssignment& a, const model::CompiledHistory& ch,
    checker::EngineSelect engine,
    const std::unordered_map<Key, std::vector<TxnId>>* vo) {
  checker::CheckOptions opts;
  opts.engine = engine;
  opts.threads = 1;
  opts.version_order = vo;
  return checker::check(a, ch, opts);
}

/// Mixed-assignment parity: the direct and graph engines must reproduce the
/// exhaustive oracle's verdict under a genuinely mixed RC/RA/PSI assignment
/// on the fuzzed battery, and be SAT with a verifying witness on the benched
/// clean histories.
void assert_mixed_parity() {
  for (std::size_t n : {std::size_t{1000}, std::size_t{10000}}) {
    const Fixture& f = fixture(n);
    const ct::LevelAssignment a = mixed_assignment(n);
    for (auto engine :
         {checker::EngineSelect::kDirect, checker::EngineSelect::kGraph}) {
      const auto r = run_mixed(a, f.ch, engine, &f.version_order);
      if (!r.satisfiable()) parity_failure("mixed expected SAT", L::kPSI, n, r);
      if (!r.witness.has_value()) parity_failure("mixed missing witness", L::kPSI, n, r);
      const ct::ExecutionVerdict v = checker::verify_witness(a, f.ch, *r.witness);
      if (!v.ok) parity_failure(v.explanation.c_str(), L::kPSI, n, r);
    }
  }
  wl::ObservationFuzzOptions fo;
  fo.transactions = 7;
  fo.keys = 4;
  fo.p_dangling = 0.1;
  fo.p_phantom = 0.05;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto f = wl::fuzz_observations(seed, fo);
    const model::CompiledHistory ch(f.txns);
    const ct::LevelAssignment a = mixed_assignment(ch.size());
    for (const auto* vo : {&f.version_order,
                           static_cast<decltype(&f.version_order)>(nullptr)}) {
      const auto oracle = run_mixed(a, ch, checker::EngineSelect::kExhaustive, vo);
      if (oracle.outcome == checker::Outcome::kUnknown) {
        parity_failure("mixed oracle undecided", L::kPSI, ch.size(), oracle);
      }
      for (auto engine :
           {checker::EngineSelect::kDirect, checker::EngineSelect::kGraph}) {
        const auto r = run_mixed(a, ch, engine, vo);
        if (r.outcome == checker::Outcome::kUnknown) continue;  // honest pass
        if (r.outcome != oracle.outcome) {
          parity_failure("mixed oracle disagreement", L::kPSI, ch.size(), r);
        }
      }
    }
  }
}

void BM_Engine(benchmark::State& state, L level, checker::EngineSelect engine) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Fixture& f = fixture(n);  // build outside the timed region
  double best = 1e100;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = run_engine(level, f.ch, engine, &f.version_order);
    benchmark::DoNotOptimize(r.outcome);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, secs);
    if (!r.satisfiable()) parity_failure("verdict changed mid-bench", level, n, r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["txns"] = static_cast<double>(n);
  state.counters["ns_per_txn"] = best * 1e9 / static_cast<double>(n);
}

#define DIRECT_ROW(tag, level)                                        \
  BENCHMARK_CAPTURE(BM_Engine, tag##_direct, level,                   \
                    checker::EngineSelect::kDirect)
#define GRAPH_ROW(tag, level)                                         \
  BENCHMARK_CAPTURE(BM_Engine, tag##_graph, level,                    \
                    checker::EngineSelect::kGraph)

// RC/RA: the direct pass is one sweep with per-key frontiers — benched to
// 10^6 to show the ns/txn curve stays near-flat.
DIRECT_ROW(rc, L::kReadCommitted)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)->UseRealTime();
GRAPH_ROW(rc, L::kReadCommitted)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)->UseRealTime();
DIRECT_ROW(ra, L::kReadAtomic)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)->UseRealTime();
GRAPH_ROW(ra, L::kReadAtomic)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)->UseRealTime();
// PSI: verification is quadratic-bit in either engine; the direct engine's
// saturation gate declines past 16384 txns, so the curve stops at 10^4.
DIRECT_ROW(psi, L::kPSI)->Arg(1000)->Arg(10000)->UseRealTime();
GRAPH_ROW(psi, L::kPSI)->Arg(1000)->Arg(10000)->UseRealTime();

#undef DIRECT_ROW
#undef GRAPH_ROW

// Mixed per-transaction assignment (RC/RA/PSI rotating by dense index): the
// same single pass with per-candidate level dispatch. PSI is present, so the
// curve stops where the PSI rows do.
void BM_MixedDirect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Fixture& f = fixture(n);
  const ct::LevelAssignment a = mixed_assignment(n);
  double best = 1e100;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = run_mixed(a, f.ch, checker::EngineSelect::kDirect,
                             &f.version_order);
    benchmark::DoNotOptimize(r.outcome);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, secs);
    if (!r.satisfiable()) {
      parity_failure("mixed verdict changed mid-bench", L::kPSI, n, r);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["txns"] = static_cast<double>(n);
  state.counters["ns_per_txn"] = best * 1e9 / static_cast<double>(n);
}
BENCHMARK(BM_MixedDirect)->Name("BM_Engine/mixed_rc_ra_psi_direct")
    ->Arg(1000)->Arg(10000)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  assert_parity();
  assert_mixed_parity();
  benchmark::RunSpecifiedBenchmarks();
  // Final registry scrape for the CI direct-engine gate
  // (crooks_direct_checks_total must be nonzero after the forced rows).
  if (const char* path = std::getenv("CROOKS_OBS_METRICS_JSON")) {
    std::ofstream out(path);
    out << obs::Registry::global().json() << "\n";
  }
  return 0;
}
