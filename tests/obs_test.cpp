// The observability substrate: metrics registry semantics (sharded counters,
// gauges, fixed-bucket histograms, both exporters, the runtime kill switch)
// and the JSONL trace layer. Tests share the process-global registry, so each
// uses its own metric names and the enable/disable tests restore state.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndSignedAdd) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketsCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5);
  h.observe_n(50, 3);
  h.observe(1e6);  // lands in +Inf
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // three finite bounds + Inf
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 3u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 5 + 3 * 50.0 + 1e6);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Registry, FindOrRegisterReturnsSameObject) {
  Registry& r = Registry::global();
  Counter& a = r.counter("obs_test_dup_total", "first registration wins");
  Counter& b = r.counter("obs_test_dup_total", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, LabeledSeriesAreDistinct) {
  Registry& r = Registry::global();
  Counter& sat = r.counter("obs_test_labeled_total", "", {{"outcome", "sat"}});
  Counter& unsat = r.counter("obs_test_labeled_total", "", {{"outcome", "unsat"}});
  EXPECT_NE(&sat, &unsat);
  sat.inc();
  EXPECT_EQ(sat.value(), 1u);
  EXPECT_EQ(unsat.value(), 0u);
}

TEST(Registry, SeriesKeyRendering) {
  EXPECT_EQ(series_key("m", {}), "m");
  EXPECT_EQ(series_key("m", {{"a", "1"}, {"b", "x"}}), "m{a=\"1\",b=\"x\"}");
}

TEST(Registry, PrometheusTextExposition) {
  Registry& r = Registry::global();
  r.counter("obs_test_prom_total", "A test counter", {{"kind", "x"}}).inc(5);
  r.gauge("obs_test_prom_gauge", "A test gauge").set(-2);
  r.histogram("obs_test_prom_seconds", "A test histogram",
              std::vector<double>{1.0, 2.0})
      .observe(1.5);
  const std::string text = r.prometheus_text();
  EXPECT_NE(text.find("# HELP obs_test_prom_total A test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_total{kind=\"x\"} 5"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_gauge -2"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_seconds_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_seconds_count 1"), std::string::npos);
}

TEST(Registry, JsonScrapeIsOneLine) {
  Registry& r = Registry::global();
  r.counter("obs_test_json_total").inc(9);
  const std::string json = r.json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_json_total\":9"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsAddresses) {
  Registry& r = Registry::global();
  Counter& c = r.counter("obs_test_reset_total");
  c.inc(12);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&r.counter("obs_test_reset_total"), &c);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(KillSwitch, DisabledMutationsAreNoOps) {
  ASSERT_TRUE(enabled()) << "tests assume CROOKS_OBS_OFF is not set";
  Counter c;
  Gauge g;
  Histogram h({1.0});
  set_enabled(false);
  c.inc(5);
  g.set(5);
  g.add(5);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  set_enabled(true);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(ScopedTimerTest, ObservesElapsedSeconds) {
  Histogram h(std::vector<double>(latency_buckets_seconds().begin(),
                                  latency_buckets_seconds().end()));
  {
    ScopedTimer t(h);
    EXPECT_GE(t.elapsed(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);
}

TEST(TraceTest, InactiveByDefaultAndEventsAreDropped) {
  ASSERT_FALSE(Trace::active());
  Trace::event("no.sink", TraceFields().add("k", 1));  // must not crash
}

TEST(TraceTest, EventAndSpanEmitJsonLines) {
  std::ostringstream out;
  Trace::open_stream(&out);
  ASSERT_TRUE(Trace::active());
  Trace::event("unit.event", TraceFields()
                                 .add("str", "value")
                                 .add("num", std::uint64_t{7})
                                 .add("flag", true)
                                 .add("ratio", 0.5));
  {
    TraceSpan span("unit.span");
    span.field("n", 3);
  }
  Trace::close();
  EXPECT_FALSE(Trace::active());

  std::istringstream lines(out.str());
  std::string event_line, span_line;
  ASSERT_TRUE(std::getline(lines, event_line));
  ASSERT_TRUE(std::getline(lines, span_line));
  EXPECT_NE(event_line.find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(event_line.find("\"name\":\"unit.event\""), std::string::npos);
  EXPECT_NE(event_line.find("\"str\":\"value\""), std::string::npos);
  EXPECT_NE(event_line.find("\"num\":7"), std::string::npos);
  EXPECT_NE(event_line.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(event_line.find("\"t_us\":"), std::string::npos);
  EXPECT_EQ(event_line.find("\"dur_us\":"), std::string::npos);
  EXPECT_NE(span_line.find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(span_line.find("\"name\":\"unit.span\""), std::string::npos);
  EXPECT_NE(span_line.find("\"dur_us\":"), std::string::npos);
  EXPECT_NE(span_line.find("\"n\":3"), std::string::npos);
}

TEST(TraceTest, SpanConstructedWhileInactiveStaysInert) {
  std::ostringstream out;
  {
    TraceSpan span("never.emitted");  // no sink at construction
    Trace::open_stream(&out);
    span.field("ignored", 1);
  }
  Trace::close();
  EXPECT_TRUE(out.str().empty());
}

TEST(TraceTest, StringsAreJsonEscaped) {
  std::ostringstream out;
  Trace::open_stream(&out);
  Trace::event("esc", TraceFields().add("msg", "a\"b\\c\nd"));
  Trace::close();
  EXPECT_NE(out.str().find("\"msg\":\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(ThreadPoolObs, QueueDepthAndInFlightIntrospection) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      started.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (started.load() < 2) std::this_thread::yield();
  // Two tasks hold the workers; the other two must still be queued.
  EXPECT_EQ(pool.queue_depth(), 2u);
  EXPECT_EQ(pool.in_flight(), 2u);
  release.store(true);
  pool.wait();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPoolObs, PoolSeriesTrackCompletedTasks) {
  Registry& r = Registry::global();
  const std::uint64_t tasks_before =
      r.counter("crooks_pool_tasks_total").value();
  const std::uint64_t latencies_before =
      r.histogram("crooks_pool_task_seconds").count();
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([] {});
    }
    pool.wait();
  }
  EXPECT_EQ(r.counter("crooks_pool_tasks_total").value(), tasks_before + 8);
  EXPECT_EQ(r.histogram("crooks_pool_task_seconds").count(),
            latencies_before + 8);
  // Idle pool: both instantaneous gauges must read zero again.
  EXPECT_EQ(r.gauge("crooks_pool_queue_depth").value(), 0);
  EXPECT_EQ(r.gauge("crooks_pool_inflight").value(), 0);
}

}  // namespace
}  // namespace crooks::obs
