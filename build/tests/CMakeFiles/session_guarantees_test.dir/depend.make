# Empty dependencies file for session_guarantees_test.
# This may be replaced when dependencies are built.
