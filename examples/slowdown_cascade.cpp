// Slowdown cascades under PSI (§5.3), narrated.
//
// Three asynchronously-replicated sites run the paper's workload. Midway, a
// single key partition stalls. Under the traditional PSI definition every
// site totally orders its commits, so one stalled transaction head-of-line
// blocks everything committed after it at that site; under the client-centric
// definition only genuine dependents wait.
//
//   $ ./slowdown_cascade
#include <cstdio>

#include "replication/simulator.hpp"

using namespace crooks;

namespace {

void run(const char* title, std::optional<repl::Slowdown> slowdown) {
  repl::SimOptions o;
  o.sites = 3;
  o.keys = 10'000;
  o.transactions = 4'000;
  o.replication_delay = 20;
  o.partitions = 50;
  o.seed = 4;
  o.slowdown = slowdown;

  const repl::SimResult r = repl::simulate(o);

  std::size_t slow_touchers = 0;
  for (const repl::TxnMetrics& t : r.txns) slow_touchers += t.touches_slow_partition;

  std::printf("%s\n", title);
  std::printf("  committed %zu transactions (%zu first-committer-wins aborts)\n",
              r.committed, r.ww_aborts);
  if (slowdown.has_value()) {
    std::printf("  %zu transactions wrote the stalled partition\n", slow_touchers);
  }
  std::printf("  mean visibility latency of UNRELATED transactions:\n");
  std::printf("    traditional PSI (per-site total order): %8.1f ticks\n",
              r.mean_unrelated_latency(true));
  std::printf("    client-centric  (observed deps only):   %8.1f ticks\n",
              r.mean_unrelated_latency(false));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("3 sites, 10k keys, 3r+3w uniform, replication delay 20 ticks\n\n");
  run("baseline (no failures):", std::nullopt);
  run("partition 0 stalls for 1000 ticks (extra delay 3000):",
      repl::Slowdown{.partition = 0, .from = 500, .until = 1500, .extra_delay = 3000});
  std::printf(
      "The gap is the slowdown cascade: the traditional definition makes\n"
      "unrelated transactions wait for a stalled partition they never touched.\n");
  return 0;
}
