# Empty dependencies file for crooks_workload.
# This may be replaced when dependencies are built.
