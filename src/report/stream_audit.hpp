// Streaming audit: tail a growing observation stream through OnlineChecker.
//
// This is the library behind `crooks-check --follow`: it reads the plain-text
// observation format (serialize.hpp) from a stream that may still be growing
// (a history file another process appends to), groups complete `txn … end`
// blocks into batches, and feeds each batch to OnlineChecker::append_all —
// one CompiledDelta per batch, so a monitor that runs for days never leaves
// the compiled path. It lives in the report library (not the CLI) so tests
// can exercise the tailing loop in-process, including under ThreadSanitizer
// with a concurrent writer.
//
// Batching semantics: while input is available, complete blocks accumulate;
// whenever the reader catches up with the stream (EOF), everything
// accumulated is appended as one batch and reported via the callback. At EOF
// the stream's failbit is cleared and reading resumes after `poll_ms` —
// tail -f semantics — until `idle_exit_ms` passes without new input,
// `max_blocks` batches have been audited, or the callback returns false.
//
// `vo` (version order) lines are rejected: the streaming verdict is about the
// apply order itself, and the offline ∃e checkers own the version-order
// question. A `default-level` directive between blocks is handled by the
// stream splitter (stage 1) and applied to every later unannotated
// transaction, so the level column of the compiled stream matches what an
// offline parse of the same file would build.
//
// With StreamAuditOptions::ingest_threads >= 1 the same loop drives the
// pipelined ingest instead: stage 1 (this thread) splits blocks and resolves
// directives, N shard workers decode their session partition, and a merge
// thread appends every batch — in stream order, through one authoritative
// checker — so results are byte-identical to the serial path by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "checker/online.hpp"

namespace crooks::report {

struct StreamAuditOptions {
  /// Levels the monitor tracks (default: all ten).
  std::vector<ct::IsolationLevel> levels = {ct::kAllLevels.begin(),
                                            ct::kAllLevels.end()};
  /// Sleep between polls once the reader has caught up with the stream.
  int poll_ms = 50;
  /// Stop after this long without any new input; 0 = keep tailing forever
  /// (until max_blocks or the callback stops the audit).
  int idle_exit_ms = 0;
  /// Stop after this many non-empty batches; 0 = unbounded.
  std::uint64_t max_blocks = 0;
  /// Every N-th audited batch carries a JSON metrics snapshot
  /// (StreamBlockReport::metrics_snapshot) scraped from the global registry;
  /// 0 = never. `crooks-check --follow --metrics-every=N` renders these as
  /// `metrics {...}` lines interleaved with the human-format output.
  std::uint64_t metrics_every = 0;
  /// Bounded-memory window (`crooks-check --window=N`): keep at most this
  /// many transactions resident, retiring the prefix into the checker's
  /// summarized base. 0 = unbounded (the pre-window behavior).
  std::size_t window_txns = 0;
  /// Byte-estimate variant (`--window-bytes=B`); both may be set, the
  /// tighter limit wins. See OnlineChecker::WindowOptions.
  std::size_t window_bytes = 0;
  /// Invoked once on the freshly constructed checker, before any input is
  /// read. `crooks-check --forensics --follow` attaches its forensics
  /// Collector here (the collector must outlive the audit call).
  std::function<void(checker::OnlineChecker&)> on_checker = {};
  /// Pipelined ingest (`crooks-check --follow --ingest-threads=N`): N
  /// session-partitioned shard workers decode blocks in parallel and a merge
  /// thread runs the one authoritative OnlineChecker
  /// (checker::ShardedOnlineChecker), overlapping parse with check. 0 (the
  /// default) audits serially on the calling thread. Verdicts, witnesses,
  /// batch numbering, counter totals and forensics output are byte-identical
  /// to the serial path at every shard count — only wall-clock changes. With
  /// N >= 1 the `on_block` callback runs on the merge thread (calls are
  /// still strictly sequential, in batch order).
  std::size_t ingest_threads = 0;
};

/// One audited batch (all complete transaction blocks available at a poll).
struct StreamBlockReport {
  std::uint64_t block = 0;       // 1-based batch number
  std::size_t transactions = 0;  // accepted by the checker in this batch
  std::size_t duplicates = 0;    // ignored (id already in the stream)
  double seconds = 0;            // append_all latency for this batch
  /// Levels whose first violation happened in this batch.
  std::vector<ct::IsolationLevel> died;
  const checker::OnlineChecker* checker = nullptr;  // state after the batch
  /// One-line JSON scrape of the metrics registry; non-empty only on every
  /// StreamAuditOptions::metrics_every-th batch.
  std::string metrics_snapshot;
  /// Window state after the batch (all 0 / == transactions when unwindowed).
  std::uint64_t watermark = 0;       // transactions retired so far
  std::size_t resident_txns = 0;     // transactions still resident
  std::size_t resident_ops = 0;      // compiled op rows still resident
};

struct StreamAuditResult {
  std::uint64_t blocks = 0;
  std::size_t transactions = 0;
  std::size_t duplicates = 0;
  /// Parse/format failure that aborted the audit; empty on a clean exit.
  std::string error;
  std::vector<ct::IsolationLevel> surviving;
  std::map<ct::IsolationLevel, checker::OnlineChecker::LevelStatus> statuses;
  checker::OnlineChecker::Stats checker_stats;
};

/// Tail `in`, auditing each batch of complete transaction blocks. `on_block`
/// (optional) is invoked after every non-empty batch; returning false stops
/// the audit after that batch.
StreamAuditResult stream_audit(
    std::istream& in, const StreamAuditOptions& opts = {},
    const std::function<bool(const StreamBlockReport&)>& on_block = {});

}  // namespace crooks::report
