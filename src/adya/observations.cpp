#include <unordered_map>

#include "adya/history.hpp"

namespace crooks::adya {

model::TransactionSet to_observations(const History& h) {
  std::vector<model::Transaction> out;
  for (const HistTxn& t : h.txns()) {
    if (!t.committed) continue;

    std::unordered_map<Key, std::uint32_t> final_seq;
    for (const Event& e : t.events) {
      if (e.type == EventType::kWrite) final_seq[e.key] = e.version.seq;
    }

    std::vector<model::Operation> ops;
    ops.reserve(t.events.size());
    for (const Event& e : t.events) {
      if (e.type == EventType::kWrite) {
        // Only the final write survives into the observable world
        // (executions apply final writes only, Definition 1).
        if (e.version.seq == final_seq.at(e.key)) {
          ops.push_back(model::Operation::write(e.key, t.id));
        }
        continue;
      }
      const TxnId w = e.version.writer;
      // Reads of the transaction's own writes constrain nothing across
      // transactions (their read states are [s0, s_p] by convention) and a
      // client cannot even express "which of my writes" in the final-write
      // world — drop them.
      if (w == t.id) continue;
      const bool intermediate = w != kInitTxn && h.contains(w) &&
                                h.by_id(w).committed &&
                                h.by_id(w).final_write_seq(e.key) != e.version.seq;
      ops.push_back(intermediate ? model::Operation::read_intermediate(e.key, w)
                                 : model::Operation::read(e.key, w));
    }
    out.emplace_back(t.id, std::move(ops), t.session, t.site, t.start_ts,
                     t.commit_ts, t.level);
  }
  return model::TransactionSet(std::move(out));
}

History from_observations(
    const model::TransactionSet& txns,
    const std::unordered_map<Key, std::vector<TxnId>>& version_order) {
  std::vector<HistTxn> hts;
  hts.reserve(txns.size() + 1);

  // Transactions read from writers that may not belong to the set (aborted
  // per G1a); add a synthetic aborted transaction per such writer so the
  // history is self-contained.
  std::unordered_map<TxnId, std::vector<Key>> aborted_writes;

  for (const model::Transaction& t : txns) {
    HistTxn ht;
    ht.id = t.id();
    ht.committed = true;
    ht.session = t.session();
    ht.site = t.site();
    ht.start_ts = t.start_ts();
    ht.commit_ts = t.commit_ts();
    ht.level = t.level();
    for (const model::Operation& op : t.ops()) {
      if (op.is_write()) {
        ht.events.push_back({EventType::kWrite, op.key, Version{t.id(), 1}});
      } else {
        // A phantom value is "a write that no state contains": model it as a
        // non-final write (seq 0 < the writer's final seq 1) — exactly G1b.
        const std::uint32_t seq = op.value.phantom ? 0 : 1;
        ht.events.push_back({EventType::kRead, op.key, Version{op.value.writer, seq}});
        if (op.value.writer != kInitTxn && !txns.contains(op.value.writer)) {
          aborted_writes[op.value.writer].push_back(op.key);
        }
      }
    }
    hts.push_back(std::move(ht));
  }

  for (const auto& [id, keys] : aborted_writes) {
    HistTxn ht;
    ht.id = id;
    ht.committed = false;
    for (Key k : keys) ht.events.push_back({EventType::kWrite, k, Version{id, 1}});
    hts.push_back(std::move(ht));
  }

  // Complete the version order for keys with at most one committed writer.
  std::unordered_map<Key, std::vector<TxnId>> vo = version_order;
  std::unordered_map<Key, std::vector<TxnId>> writers;
  for (const model::Transaction& t : txns) {
    for (Key k : t.write_set()) writers[k].push_back(t.id());
  }
  for (auto& [key, ws] : writers) {
    if (vo.contains(key)) continue;
    if (ws.size() > 1) {
      throw std::invalid_argument("version order missing for multi-writer key " +
                                  crooks::to_string(key));
    }
    vo.emplace(key, ws);
  }
  return History(std::move(hts), std::move(vo));
}

}  // namespace crooks::adya
