// Structured phase tracing: JSONL spans and events for the check lifecycle.
//
// When a sink is installed (crooks-check --trace FILE, or a test's
// ostringstream), every instrumented phase — compile, extend() delta, engine
// dispatch, exhaustive search, graph fast-path, batch scheduling, online
// ingest — emits one JSON object per line:
//
//   {"type":"span","name":"engine.exhaustive","t_us":1234,"dur_us":88,
//    "tid":2,"level":"Serializable","nodes":4711,"outcome":"unsat"}
//
// `t_us` is microseconds since the sink was opened (monotonic clock), `tid`
// a small dense thread ordinal. Events are spans without `dur_us`. Fields
// are typed (string / int / float / bool) and appended in call order.
//
// With no sink installed every call is a relaxed atomic load and a branch —
// tracing costs nothing unless requested. Line emission takes a global
// mutex: spans close at phase granularity (per search, per block, per batch
// item), not per node, so the lock is far off every hot loop.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace crooks::obs {

/// Ordered field list of one trace record.
class TraceFields {
 public:
  TraceFields& add(std::string_view key, std::string_view value);
  TraceFields& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  TraceFields& add(std::string_view key, const std::string& value) {
    return add(key, std::string_view(value));
  }
  TraceFields& add(std::string_view key, std::uint64_t value);
  TraceFields& add(std::string_view key, std::int64_t value);
  TraceFields& add(std::string_view key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  TraceFields& add(std::string_view key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  TraceFields& add(std::string_view key, double value);
  TraceFields& add(std::string_view key, bool value);

  bool empty() const { return parts_.empty(); }
  /// Render as `,"k":v,...` (leading comma; empty string when no fields).
  std::string rendered() const;

 private:
  std::vector<std::string> parts_;  // pre-rendered `"k":v` fragments
};

class Trace {
 public:
  /// Install a file sink (truncates). Returns false when the file cannot be
  /// opened. Replaces any previous sink.
  static bool open(const std::string& path);
  /// Install a caller-owned stream sink (tests). The stream must outlive the
  /// sink; call close() before destroying it.
  static void open_stream(std::ostream* out);
  static void close();
  static bool active();

  /// Emit an instantaneous event (no duration).
  static void event(std::string_view name, const TraceFields& fields = {});
};

/// RAII span: records its start at construction and emits one line with
/// `dur_us` when it ends (destruction, or an explicit end()). Constructed
/// while tracing is inactive, it stays inert even if a sink appears later —
/// a span never spans a sink change.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan() { end(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a field to the closing record (no-op when inert).
  template <typename V>
  TraceSpan& field(std::string_view key, V&& value) {
    if (armed_) fields_.add(key, std::forward<V>(value));
    return *this;
  }

  void end();

 private:
  bool armed_ = false;
  std::string name_;
  std::uint64_t start_us_ = 0;
  TraceFields fields_;
};

}  // namespace crooks::obs
