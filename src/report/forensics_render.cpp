#include "report/forensics_render.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

namespace crooks::report {

namespace {

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

std::string json_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* role_name(std::uint8_t role) {
  switch (role) {
    case forensics::kRoleFailing: return "failing";
    case forensics::kRoleInit: return "init";
    default: return "other";
  }
}

/// count/total as integer per-mille, the only "rate" the exporters emit
/// (floating point would invite formatting drift across platforms).
std::uint64_t per_mille(std::uint64_t count, std::uint64_t total) {
  return total == 0 ? 0 : count * 1000 / total;
}

void json_key_list(std::ostringstream& os, const std::vector<Key>& keys) {
  os << "[";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << to_string(keys[i]) << "\"";
  }
  os << "]";
}

void json_exemplar(std::ostringstream& os, const forensics::Witness& w) {
  os << "{\"txn\":\"" << to_string(w.txn) << "\",\"level\":\""
     << ct::name_of(w.level) << "\",\"engine\":\"" << json_escape(w.engine)
     << "\",\"clause\":\"" << forensics::name_of(w.clause) << "\",\"keys\":";
  json_key_list(os, w.keys);
  os << ",\"nodes\":[";
  for (std::size_t i = 0; i < w.nodes.size(); ++i) {
    const forensics::WitnessNode& n = w.nodes[i];
    if (i != 0) os << ",";
    os << "{\"txn\":\"" << to_string(n.id) << "\",\"role\":\""
       << role_name(n.role) << "\",\"session\":\"" << to_string(n.session)
       << "\",\"reads\":";
    json_key_list(os, n.reads);
    os << ",\"writes\":";
    json_key_list(os, n.writes);
    os << "}";
  }
  os << "]}";
}

}  // namespace

std::string render_forensics(const forensics::PatternTable& table) {
  std::ostringstream out;
  out << "violation forensics: " << table.witnesses() << " witness"
      << (table.witnesses() == 1 ? "" : "es") << ", " << table.size()
      << " pattern" << (table.size() == 1 ? "" : "s");
  if (table.overflow() != 0) out << ", " << table.overflow() << " overflowed";
  out << "\n";
  if (table.witnesses() == 0) {
    out << "  no violation witnesses\n";
    return out.str();
  }

  for (const forensics::PatternRow* row : table.rows()) {
    out << "  [" << hex16(row->fingerprint).substr(10) << "] " << row->name
        << "  ×" << row->count << " (" << per_mille(row->count, table.witnesses())
        << "‰)  witnesses #" << row->first_seq << "–#" << row->last_seq << "\n";
    out << "      shape: " << row->shape << "\n";
    out << "      levels:";
    for (std::size_t i = 0; i < ct::kAllLevels.size(); ++i) {
      if (row->by_level[i] == 0) continue;
      out << " " << ct::name_of(ct::kAllLevels[i]) << " ×" << row->by_level[i];
    }
    out << " | engines:";
    for (std::size_t i = 0; i < forensics::kEngineNames.size(); ++i) {
      if (row->by_engine[i] == 0) continue;
      out << " " << forensics::kEngineNames[i] << " ×" << row->by_engine[i];
    }
    out << "\n";
    const auto keys = row->hot_keys.top();
    const auto sessions = row->hot_sessions.top();
    if (!keys.empty() || !sessions.empty()) {
      out << "      hot keys:";
      for (const auto& e : keys) {
        out << " " << to_string(Key{e.item}) << " ×" << e.count;
      }
      out << " | hot sessions:";
      for (const auto& e : sessions) {
        out << " "
            << to_string(SessionId{static_cast<std::uint32_t>(e.item)})
            << " ×" << e.count;
      }
      out << "\n";
    }
    if (row->truncated != 0) {
      out << "      truncated: " << row->truncated
          << " implicated transaction(s) beyond the node cap\n";
    }
    out << "      exemplar: " << to_string(row->exemplar.txn) << " at "
        << ct::name_of(row->exemplar.level) << " via " << row->exemplar.engine;
    if (!row->exemplar.keys.empty()) {
      out << ", keys";
      for (const Key& k : row->exemplar.keys) out << " " << to_string(k);
    }
    out << "\n";
  }

  const auto mined = table.mine();
  if (!mined.empty()) {
    out << "  mined sub-shapes (support ≥ "
        << table.options().mine_min_support << " of "
        << table.sample().size() << " sampled):\n";
    for (const forensics::MinedPattern& m : mined) {
      out << "    " << m.name << " ×" << m.support << ": " << m.shape << "\n";
    }
  }
  return out.str();
}

std::string forensics_json(const forensics::PatternTable& table) {
  std::ostringstream os;
  os << "{\"witnesses\":" << table.witnesses()
     << ",\"patterns\":" << table.size()
     << ",\"overflow\":" << table.overflow() << ",\"table\":[";
  bool first_row = true;
  for (const forensics::PatternRow* row : table.rows()) {
    if (!first_row) os << ",";
    first_row = false;
    os << "{\"id\":\"" << hex16(row->fingerprint) << "\",\"name\":\""
       << json_escape(row->name) << "\",\"clause\":\""
       << forensics::name_of(row->clause) << "\",\"shape\":\""
       << json_escape(row->shape) << "\",\"count\":" << row->count
       << ",\"rate_pm\":" << per_mille(row->count, table.witnesses())
       << ",\"first_seq\":" << row->first_seq
       << ",\"last_seq\":" << row->last_seq
       << ",\"truncated\":" << row->truncated << ",\"levels\":[";
    bool first = true;
    for (std::size_t i = 0; i < ct::kAllLevels.size(); ++i) {
      if (row->by_level[i] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"level\":\"" << ct::name_of(ct::kAllLevels[i])
         << "\",\"count\":" << row->by_level[i] << "}";
    }
    os << "],\"engines\":[";
    first = true;
    for (std::size_t i = 0; i < forensics::kEngineNames.size(); ++i) {
      if (row->by_engine[i] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"engine\":\"" << forensics::kEngineNames[i]
         << "\",\"count\":" << row->by_engine[i] << "}";
    }
    os << "],\"hot_keys\":[";
    first = true;
    for (const auto& e : row->hot_keys.top()) {
      if (!first) os << ",";
      first = false;
      os << "{\"key\":\"" << to_string(Key{e.item}) << "\",\"count\":" << e.count
         << "}";
    }
    os << "],\"hot_sessions\":[";
    first = true;
    for (const auto& e : row->hot_sessions.top()) {
      if (!first) os << ",";
      first = false;
      os << "{\"session\":\""
         << to_string(SessionId{static_cast<std::uint32_t>(e.item)})
         << "\",\"count\":" << e.count << "}";
    }
    os << "],\"exemplar\":";
    json_exemplar(os, row->exemplar);
    os << "}";
  }
  os << "],\"mined\":[";
  bool first = true;
  for (const forensics::MinedPattern& m : table.mine()) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"" << hex16(m.fingerprint) << "\",\"name\":\""
       << json_escape(m.name) << "\",\"shape\":\"" << json_escape(m.shape)
       << "\",\"support\":" << m.support << "}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace crooks::report
