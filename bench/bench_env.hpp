// Shared bench-process plumbing: the truthful build-type stamp and the
// baseline guard.
//
// Every exported bench JSON carries two build-type facts. google/benchmark's
// own `library_build_type` context key describes how the BENCHMARK LIBRARY
// was compiled — on Debian that is "debug", baked into the .so, and nothing
// this repo configures can change it. `crooks_build_type` (added here from
// the CMAKE_BUILD_TYPE this translation unit was actually compiled with)
// describes how OUR code was compiled — the fact that matters for whether a
// number is a real baseline. tools/bench_diff.py --forbid-debug gates on it.
//
// When CROOKS_BENCH_BASELINE is set in the environment (the CI leg that
// regenerates committed BENCH_*.json sets it), a non-optimized build aborts
// up front: recording a Debug baseline silently is the failure mode that
// motivated this file.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifndef CROOKS_BUILD_TYPE
#define CROOKS_BUILD_TYPE "unknown"
#endif

namespace crooks::benchx {

inline bool optimized_build() {
  return std::strcmp(CROOKS_BUILD_TYPE, "Release") == 0 ||
         std::strcmp(CROOKS_BUILD_TYPE, "RelWithDebInfo") == 0 ||
         std::strcmp(CROOKS_BUILD_TYPE, "MinSizeRel") == 0;
}

/// Idempotent; registered automatically below, callable explicitly too.
inline void stamp_build_type() {
  static const bool once = [] {
    benchmark::AddCustomContext("crooks_build_type", CROOKS_BUILD_TYPE);
    if (std::getenv("CROOKS_BENCH_BASELINE") != nullptr && !optimized_build()) {
      std::fprintf(stderr,
                   "refusing to record a baseline from a '%s' build "
                   "(CROOKS_BENCH_BASELINE is set; configure with "
                   "-DCMAKE_BUILD_TYPE=Release)\n",
                   CROOKS_BUILD_TYPE);
      std::abort();
    }
    return true;
  }();
  (void)once;
}

namespace internal {
// Every bench TU gets this header force-included (see bench/CMakeLists.txt),
// so the stamp lands in every exported JSON without each main() opting in.
// AddCustomContext only stores into a map; calling it before
// benchmark::Initialize is safe.
inline const bool kStamped = (stamp_build_type(), true);
}  // namespace internal

}  // namespace crooks::benchx
