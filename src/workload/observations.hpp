// Random client-observation generator — adversarial inputs for the checker.
//
// Unlike store runs (which are always *some* system's real behaviour),
// these observation sets are arbitrary: reads may observe later writers,
// unknown writers (G1a shapes), or phantom values (G1b shapes). They fuzz
// the checker's engines, which must stay mutually consistent on any input.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "model/transaction.hpp"

namespace crooks::wl {

struct ObservationFuzzOptions {
  std::size_t transactions = 6;
  std::size_t keys = 4;
  std::size_t max_reads = 3;
  std::size_t max_writes = 2;
  double p_dangling = 0.05;  // read names a writer outside the set
  double p_phantom = 0.05;   // read is marked phantom
  bool with_timestamps = true;
  /// With timestamps on, each transaction independently *loses* its
  /// timestamps with this probability. Produces the mixed
  /// timestamped/untimestamped sets whose candidate ordering broke the
  /// pre-compile comparator (not a strict weak order ⇒ UB in std::sort).
  /// 0 leaves the generated stream bit-identical to older seeds.
  double p_untimestamped = 0.0;
  std::uint32_t sessions = 2;  // 0 = none
  /// Each transaction independently gets a random `level=` annotation with
  /// this probability (uniform over all levels) — the mixed-level fuzz knob.
  /// 0 (the default) leaves the generated stream bit-identical to older
  /// seeds: the guard skips the rng draws entirely.
  double p_level_annotation = 0.0;
};

struct FuzzedObservations {
  model::TransactionSet txns;
  /// A syntactically valid install order (a random permutation of each
  /// key's writers) — usable as a CheckOptions::version_order restriction.
  std::unordered_map<Key, std::vector<TxnId>> version_order;
};

FuzzedObservations fuzz_observations(std::uint64_t seed,
                                     const ObservationFuzzOptions& opts = {});

}  // namespace crooks::wl
