// Adya's phenomena (Definition A.7) and per-level history verdicts
// (Definition A.8), plus Bailis's fractured reads (Appendix B).
//
// Verdicts are computed with respect to the history's recorded version order
// and (where applicable) its recorded start/commit points. This matches how
// the equivalence theorems instantiate both (e.g. Theorem 1's ⇒ direction
// instantiates << from the execution order).
#pragma once

#include <optional>
#include <string>

#include "adya/graph.hpp"
#include "adya/history.hpp"
#include "committest/levels.hpp"

namespace crooks::adya {

struct Phenomena {
  bool g0 = false;        // write cycles
  bool g1a = false;       // dirty (aborted) reads
  bool g1b = false;       // intermediate reads
  bool g1c = false;       // circular information flow
  bool g2 = false;        // anti-dependency cycles
  bool g_single = false;  // single anti-dependency cycles
  bool fractured = false; // fractured reads (read atomic)
  std::optional<bool> g_si_a;  // interference   (needs timestamps)
  std::optional<bool> g_si_b;  // missed effects (needs timestamps)
  std::optional<bool> rt_cycle;  // DSG ∪ real-time edges cyclic (strict ser)

  bool g1() const { return g1a || g1b || g1c; }

  std::string to_string() const;
};

Phenomena detect(const History& h);

/// Same phenomena from the compiled form. G1a, G1b and fractured reads fall
/// out of the precomputed per-op flags (a dirty read *is* an unknown-writer
/// op; an intermediate read *is* a phantom or writer-misses-key op); the
/// graph phenomena reuse one compiled Dsg, copied — not rebuilt — for the
/// timestamped variants. Verdict-equivalent to detect(from_observations(...)).
Phenomena detect(const model::CompiledHistory& ch, const InstallOrders& io);

/// Level-scoped variant: computes only the phenomena satisfies(p, level)
/// consults and leaves the rest at their defaults. This is a complexity
/// class, not a constant factor: the SI-family phenomena (G-SIb, real-time
/// cycles) need the start/real-time edge sets, which are Θ(n²) edges on a
/// mostly-serial history — asking about Read Committed must not pay for
/// them. The full detect() above remains the reference the equivalence
/// tests pin this against.
Phenomena detect(const model::CompiledHistory& ch, const InstallOrders& io,
                 ct::IsolationLevel level);

enum class Verdict {
  kSatisfied,
  kViolated,
  kInapplicable,  // the level's phenomena need data the history lacks
                  // (timestamps), or the level has no Adya-style definition
};

/// Does the history satisfy the isolation level, per the history-based
/// definitions the paper proves equivalent to its commit tests?
///   RU: ¬G0                      (Theorem 4)
///   RC: ¬G1                      (Theorem 3)
///   RA: ¬G1 ∧ ¬fractured         (Theorem 6)
///   PSI/PL-2+: ¬G1 ∧ ¬G-Single   (Theorem 10)
///   ANSI SI: ¬G1 ∧ ¬G-SI with the history's real start/commit points
///            (Theorem 2's construction, instantiated at the recorded times)
///   SER: ¬G1 ∧ ¬G2               (Theorem 1)
///   SSER: SER ∧ no DSG∪RT cycle
/// Adya SI (timestamp-free) existentially quantifies the start/commit
/// points, and Session/Strong SI have no phenomena-style definition in
/// Adya's framework; those are decided by the state-based checker instead.
Verdict satisfies(const History& h, ct::IsolationLevel level);
Verdict satisfies(const Phenomena& p, ct::IsolationLevel level);

/// Phenomenon-level diagnosis for a violated level, including a concrete
/// conflict cycle when one exists (e.g. "G-Single: T3 -rw-> T5 -> T3").
/// Empty when the history satisfies the level (or the level is
/// inapplicable).
std::string explain_violation(const History& h, ct::IsolationLevel level);

}  // namespace crooks::adya
