#include "replication/geo_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace crooks::repl {

using store::ReadResult;
using store::StepStatus;

GeoStore::GeoStore(Options options) : opts_(options) {
  if (opts_.sites == 0) throw std::invalid_argument("need at least one site");
  visible_.resize(opts_.sites);
  pending_.resize(opts_.sites);
}

void GeoStore::append_version(std::uint32_t site, Key k, std::uint64_t when,
                              std::size_t idx) {
  auto& versions = visible_[site][k];
  // Applies can arrive out of global version order only for independent
  // writers, and P2 chains writers of a key causally — but guard anyway.
  if (!versions.empty() && versions.back().second >= idx + 1) return;
  versions.emplace_back(when, idx + 1);
}

void GeoStore::drain(std::uint32_t site) {
  auto& pq = pending_[site];
  while (!pq.empty() && pq.top().first <= clock_) {
    const auto [when, idx] = pq.top();
    pq.pop();
    for (const model::Operation& op : committed_[idx].txn.ops()) {
      if (op.is_write()) append_version(site, op.key, when, idx);
    }
  }
}

std::size_t GeoStore::version_at(std::uint32_t site, Key k, std::uint64_t at) const {
  const auto vit = visible_[site].find(k);
  if (vit == visible_[site].end()) return 0;
  // Latest version applied at or before `at`. Entries are time-ascending.
  std::size_t best = 0;
  for (const auto& [when, idx] : vit->second) {
    if (when <= at) best = idx;
  }
  return best;
}

TxnId GeoStore::begin(SiteId origin) {
  if (origin.value >= opts_.sites) throw std::out_of_range("unknown site");
  const TxnId id{next_id_++};
  Active a;
  a.origin = origin;
  a.start_ts = static_cast<Timestamp>(tick());
  drain(origin.value);  // snapshot = site state as of the begin tick (P1)
  active_.emplace(id, std::move(a));
  return id;
}

ReadResult GeoStore::read(TxnId txn, Key k) {
  auto it = active_.find(txn);
  if (it == active_.end()) throw std::logic_error("read on inactive transaction");
  Active& a = it->second;
  tick();

  TxnId observed = kInitTxn;
  if (a.write_set.contains(k)) {
    observed = txn;  // read-your-own-writes
  } else {
    // P1 (site snapshot read): the version current at the begin snapshot.
    const std::size_t idx =
        version_at(a.origin.value, k, static_cast<std::uint64_t>(a.start_ts));
    if (idx != 0) observed = committed_[idx - 1].txn.id();
  }
  a.events.push_back({adya::EventType::kRead, k, adya::Version{observed, 1}});
  return {StepStatus::kOk, model::Value{observed}};
}

StepStatus GeoStore::write(TxnId txn, Key k) {
  auto it = active_.find(txn);
  if (it == active_.end()) throw std::logic_error("write on inactive transaction");
  Active& a = it->second;
  if (!a.write_set.insert(k).second) {
    throw std::invalid_argument("a transaction writes a key at most once (§3)");
  }
  tick();
  a.events.push_back({adya::EventType::kWrite, k, adya::Version{txn, 1}});
  return StepStatus::kOk;
}

StepStatus GeoStore::commit(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) throw std::logic_error("commit on inactive transaction");
  Active& a = it->second;
  const std::uint64_t commit_time = tick();
  drain(a.origin.value);

  // P2 (no write-write conflicts among somewhere-concurrent transactions):
  // for every written key, (a) nothing newer may have arrived at the origin
  // since our snapshot (first-committer-wins against the snapshot), and
  // (b) the globally latest committed version must already be visible here
  // (otherwise a remote writer is concurrent with us).
  for (Key k : a.write_set) {
    const std::size_t at_snapshot =
        version_at(a.origin.value, k, static_cast<std::uint64_t>(a.start_ts));
    const std::size_t now = version_at(a.origin.value, k, clock_);
    const auto git = global_latest_.find(k);
    const std::size_t global = git == global_latest_.end() ? 0 : git->second;
    if (now != at_snapshot || global != now) {
      abort(txn);
      return StepStatus::kAborted;
    }
  }

  // Build the final observation record and the dependency set (read-from
  // writers + the overwritten version's writer).
  std::vector<model::Operation> ops;
  ops.reserve(a.events.size());
  std::unordered_set<std::size_t> dep_set;
  for (const adya::Event& e : a.events) {
    if (e.type == adya::EventType::kWrite) {
      ops.push_back(model::Operation::write(e.key, txn));
      const std::size_t prev = version_at(a.origin.value, e.key, clock_);
      if (prev != 0) dep_set.insert(prev - 1);
    } else {
      ops.push_back(model::Operation::read(e.key, e.version.writer));
      if (e.version.writer != kInitTxn && e.version.writer != txn) {
        dep_set.insert(committed_index_.at(e.version.writer));
      }
    }
  }

  Committed c{model::Transaction(txn, std::move(ops), kNoSession, a.origin,
                                 a.start_ts, static_cast<Timestamp>(commit_time)),
              std::vector<std::uint64_t>(opts_.sites, 0)};

  // Apply schedule: local now; remote after the delay and after every
  // observed dependency (client-centric discipline — no origin-log prefix).
  const std::size_t idx = committed_.size();
  for (std::uint32_t site = 0; site < opts_.sites; ++site) {
    if (site == a.origin.value) {
      c.applied_at[site] = commit_time;
      continue;
    }
    std::uint64_t when = commit_time + opts_.replication_delay;
    for (std::size_t d : dep_set) {
      when = std::max(when, committed_[d].applied_at[site]);
    }
    c.applied_at[site] = when;
    pending_[site].push({when, idx});
  }

  committed_index_.emplace(txn, idx);
  committed_.push_back(std::move(c));
  for (Key k : a.write_set) {
    append_version(a.origin.value, k, commit_time, idx);
    global_latest_[k] = idx + 1;
    version_order_[k].push_back(txn);
  }
  active_.erase(txn);
  return StepStatus::kOk;
}

void GeoStore::abort(TxnId txn) {
  if (active_.erase(txn) > 0) ++aborted_;
}

bool GeoStore::visible_at(SiteId site, TxnId txn) {
  if (site.value >= opts_.sites) throw std::out_of_range("unknown site");
  const auto it = committed_index_.find(txn);
  if (it == committed_index_.end()) return false;
  return committed_[it->second].applied_at[site.value] <= clock_;
}

model::TransactionSet GeoStore::observations() const {
  std::vector<model::Transaction> txns;
  txns.reserve(committed_.size());
  for (const Committed& c : committed_) txns.push_back(c.txn);
  return model::TransactionSet(std::move(txns));
}

std::unordered_map<Key, std::vector<TxnId>> GeoStore::version_order() const {
  return version_order_;
}

}  // namespace crooks::repl
