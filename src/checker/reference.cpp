// Frozen hash-based reference engine — see reference.hpp for why this exists.
//
// The search is a verbatim copy of the pre-compile sequential PrefixSearch:
// per-key timelines / version orders live in unordered_maps keyed by Key,
// every read resolves its writer through txns.contains() + by_id() +
// dense_index_of() hash probes at every search node, internality is
// re-derived by rescanning earlier ops, and the real-time/session
// predecessor lists are built by the O(n²) pairwise loop. Only the parallel
// mode was dropped (the differential tests and the representation ablation
// both want the deterministic sequential engine) and the candidate
// comparator fixed (see reference.hpp).
#include "checker/reference.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "committest/commit_test.hpp"
#include "common/bitset.hpp"

namespace crooks::checker::reference {

namespace {

using ct::IsolationLevel;
using model::Operation;
using model::Transaction;

class HashedPrefixSearch {
 public:
  HashedPrefixSearch(IsolationLevel level, const model::TransactionSet& txns,
                     const CheckOptions& opts)
      : level_(level), txns_(&txns), max_nodes_(opts.max_nodes), n_(txns.size()) {
    if (opts.version_order != nullptr) {
      for (const auto& [key, installers] : *opts.version_order) {
        auto& seq = vo_[key];
        for (TxnId id : installers) {
          if (txns.contains(id)) seq.push_back(txns.dense_index_of(id));
        }
      }
      vo_next_.reserve(vo_.size());
      for (const auto& [key, seq] : vo_) vo_next_[key] = 0;
    }
    pos_.assign(n_, 0);
    prec_.assign(n_, DynamicBitset(n_));
    remaining_rt_.assign(n_, 0);
    remaining_sess_.assign(n_, 0);
    rt_preds_.resize(n_);
    sess_preds_.resize(n_);
    rt_succs_.resize(n_);
    sess_succs_.resize(n_);

    for (std::size_t a = 0; a < n_; ++a) {
      for (std::size_t b = 0; b < n_; ++b) {
        if (a == b) continue;
        const Transaction& ta = txns.at(a);
        const Transaction& tb = txns.at(b);
        if (time_precedes(ta, tb)) {
          rt_preds_[b].push_back(a);
          rt_succs_[a].push_back(b);
          if (ta.session() != kNoSession && ta.session() == tb.session()) {
            sess_preds_[b].push_back(a);
            sess_succs_[a].push_back(b);
          }
        }
      }
      remaining_rt_[a] = rt_preds_[a].size();
      remaining_sess_[a] = sess_preds_[a].size();
    }

    // Candidate order: timestamped transactions first in commit-timestamp
    // order, untimestamped after in declaration order (the fixed strict
    // total order; matches CompiledHistory::ts_order()).
    candidates_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) candidates_[i] = i;
    std::sort(candidates_.begin(), candidates_.end(),
              [&](std::size_t a, std::size_t b) {
                const Timestamp ca = txns.at(a).commit_ts();
                const Timestamp cb = txns.at(b).commit_ts();
                const bool at = ca != kNoTimestamp;
                const bool bt = cb != kNoTimestamp;
                if (at != bt) return at;
                if (at && ca != cb) return ca < cb;
                return a < b;
              });
  }

  CheckResult run() {
    if (auto pre = timestamps_precheck()) return *std::move(pre);
    if (dfs()) {
      std::vector<TxnId> ids;
      ids.reserve(order_.size());
      for (std::size_t d : order_) ids.push_back(txns_->at(d).id());
      return {Outcome::kSatisfiable, model::Execution(*txns_, std::move(ids)),
              "witness found by exhaustive search", nodes_};
    }
    if (nodes_ >= max_nodes_) {
      return {Outcome::kUnknown, std::nullopt, "search budget exhausted", nodes_};
    }
    return {Outcome::kUnsatisfiable, std::nullopt,
            "exhaustive search: no execution satisfies the commit test", nodes_};
  }

 private:
  struct OpInterval {
    StateIndex sf = 0;
    StateIndex sl = -1;
    bool empty() const { return sf > sl; }
  };

  std::optional<CheckResult> timestamps_precheck() const {
    if (!ct::requires_timestamps(level_)) return std::nullopt;
    for (const Transaction& t : *txns_) {
      if (!t.has_timestamps()) {
        return CheckResult{Outcome::kUnsatisfiable, std::nullopt,
                           std::string(ct::name_of(level_)) +
                               " requires the time oracle but " +
                               crooks::to_string(t.id()) + " has no timestamps",
                           0};
      }
    }
    return std::nullopt;
  }

  bool placed(std::size_t d) const { return pos_[d] != 0; }

  const std::vector<std::pair<StateIndex, std::size_t>>& timeline(Key k) const {
    static const std::vector<std::pair<StateIndex, std::size_t>> kEmpty;
    auto it = timelines_.find(k);
    return it == timelines_.end() ? kEmpty : it->second;
  }

  OpInterval interval_of(std::size_t d, std::size_t i, StateIndex parent) const {
    const Transaction& t = txns_->at(d);
    const Operation& op = t.ops()[i];
    if (op.is_write()) return {0, parent};
    if (op.value.phantom) return {0, -1};

    for (std::size_t j = 0; j < i; ++j) {
      const Operation& prev = t.ops()[j];
      if (prev.is_write() && prev.key == op.key) {
        return op.value.writer == t.id() ? OpInterval{0, parent} : OpInterval{0, -1};
      }
    }

    const TxnId w = op.value.writer;
    if (w == t.id()) return {0, -1};
    StateIndex version_pos = 0;
    if (w != kInitTxn) {
      if (!txns_->contains(w)) return {0, -1};
      const std::size_t wd = txns_->dense_index_of(w);
      if (!placed(wd) || !txns_->at(wd).writes(op.key)) return {0, -1};
      version_pos = pos_[wd];
    }
    const auto& tl = timeline(op.key);
    auto it = std::upper_bound(
        tl.begin(), tl.end(), version_pos,
        [](StateIndex v, const auto& en) { return v < en.first; });
    const StateIndex next_write = it == tl.end() ? parent + 2 : it->first;
    return {version_pos, std::min(next_write - 1, parent)};
  }

  bool is_internal(std::size_t d, std::size_t i) const {
    const Transaction& t = txns_->at(d);
    for (std::size_t j = 0; j < i; ++j) {
      if (t.ops()[j].is_write() && t.ops()[j].key == t.ops()[i].key) return true;
    }
    return false;
  }

  bool vo_admissible(std::size_t d) const {
    if (vo_.empty()) return true;
    for (Key k : txns_->at(d).write_set()) {
      auto it = vo_.find(k);
      if (it == vo_.end()) continue;
      const std::size_t next = vo_next_.at(k);
      if (next >= it->second.size() || it->second[next] != d) return false;
    }
    return true;
  }

  bool admissible(std::size_t d) {
    const Transaction& t = txns_->at(d);
    const StateIndex parent = static_cast<StateIndex>(order_.size());
    const std::size_t nops = t.ops().size();
    scratch_.resize(nops);

    bool preread = true;
    StateIndex complete_lo = 0, complete_hi = parent;
    for (std::size_t i = 0; i < nops; ++i) {
      scratch_[i] = interval_of(d, i, parent);
      if (scratch_[i].empty()) preread = false;
      complete_lo = std::max(complete_lo, scratch_[i].sf);
      complete_hi = std::min(complete_hi, scratch_[i].sl);
    }

    switch (level_) {
      case IsolationLevel::kReadUncommitted:
        return true;
      case IsolationLevel::kReadCommitted:
        return preread;
      case IsolationLevel::kReadAtomic:
        return preread && !fractured(d);
      case IsolationLevel::kPSI:
        return preread && caus_vis(d);
      case IsolationLevel::kSerializable:
        return complete_lo <= parent && complete_hi >= parent;
      case IsolationLevel::kStrictSerializable:
        return complete_lo <= parent && complete_hi >= parent &&
               remaining_rt_[d] == 0;
      case IsolationLevel::kAdyaSI:
      case IsolationLevel::kAnsiSI:
      case IsolationLevel::kSessionSI:
      case IsolationLevel::kStrongSI:
        return si_family(d, parent, complete_lo, complete_hi);
    }
    return false;
  }

  bool fractured(std::size_t d) const {
    const Transaction& t = txns_->at(d);
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& r1 = t.ops()[i];
      if (!r1.is_read() || is_internal(d, i)) continue;
      if (r1.value.writer == kInitTxn) continue;
      const Transaction& w1 = txns_->by_id(r1.value.writer);
      for (std::size_t j = 0; j < t.ops().size(); ++j) {
        const Operation& r2 = t.ops()[j];
        if (!r2.is_read() || is_internal(d, j)) continue;
        if (w1.writes(r2.key) && scratch_[i].sf > scratch_[j].sf) return true;
      }
    }
    return false;
  }

  bool caus_vis(std::size_t d) {
    const Transaction& t = txns_->at(d);
    DynamicBitset& prec = prec_[d];
    prec = DynamicBitset(n_);
    auto absorb = [&](std::size_t pd) {
      prec.set(pd);
      prec.or_with(prec_[pd]);
    };
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || is_internal(d, i)) continue;
      if (op.value.writer == kInitTxn) continue;
      absorb(txns_->dense_index_of(op.value.writer));  // placed: preread holds
    }
    for (Key k : t.write_set()) {
      for (const auto& [pos, wd] : timeline(k)) absorb(wd);
    }
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || is_internal(d, i)) continue;
      for (const auto& [pos, wd] : timeline(op.key)) {
        if (pos > scratch_[i].sl && prec.test(wd)) return false;
      }
    }
    return true;
  }

  bool si_family(std::size_t d, StateIndex parent, StateIndex complete_lo,
                 StateIndex complete_hi) const {
    const Transaction& t = txns_->at(d);
    const bool timed = level_ != IsolationLevel::kAdyaSI;

    if (timed) {
      if (!order_.empty()) {
        const Transaction& prev = txns_->at(order_.back());
        if (!(prev.commit_ts() < t.commit_ts())) return false;
      }
    }
    if (level_ == IsolationLevel::kStrictSerializable ||
        level_ == IsolationLevel::kStrongSI) {
      if (remaining_rt_[d] != 0) return false;
    }
    if (level_ == IsolationLevel::kSessionSI && remaining_sess_[d] != 0) return false;

    StateIndex lower = 0;
    if (level_ == IsolationLevel::kStrongSI) {
      for (std::size_t p : rt_preds_[d]) lower = std::max(lower, pos_[p]);
    } else if (level_ == IsolationLevel::kSessionSI) {
      for (std::size_t p : sess_preds_[d]) lower = std::max(lower, pos_[p]);
    }

    StateIndex no_conf = 0;
    for (Key k : t.write_set()) {
      const auto& tl = timeline(k);
      if (!tl.empty()) no_conf = std::max(no_conf, tl.back().first);
    }

    const StateIndex lo = std::max({complete_lo, no_conf, lower});
    const StateIndex hi = std::min(complete_hi, parent);
    if (lo > hi) return false;
    if (!timed) return true;

    for (StateIndex s = hi; s >= lo; --s) {
      if (s == 0) return true;
      const Transaction& gen = txns_->at(order_[static_cast<std::size_t>(s) - 1]);
      if (time_precedes(gen, t)) return true;
    }
    return false;
  }

  void place(std::size_t d) {
    order_.push_back(d);
    pos_[d] = static_cast<StateIndex>(order_.size());
    for (Key k : txns_->at(d).write_set()) {
      timelines_[k].emplace_back(pos_[d], d);
      if (auto it = vo_next_.find(k); it != vo_next_.end()) ++it->second;
    }
    for (std::size_t s : rt_succs_[d]) --remaining_rt_[s];
    for (std::size_t s : sess_succs_[d]) --remaining_sess_[s];
  }

  void unplace() {
    const std::size_t d = order_.back();
    order_.pop_back();
    pos_[d] = 0;
    for (Key k : txns_->at(d).write_set()) {
      timelines_[k].pop_back();
      if (auto it = vo_next_.find(k); it != vo_next_.end()) --it->second;
    }
    for (std::size_t s : rt_succs_[d]) ++remaining_rt_[s];
    for (std::size_t s : sess_succs_[d]) ++remaining_sess_[s];
  }

  bool dfs() {
    if (order_.size() == n_) return true;
    if (nodes_ >= max_nodes_) return false;
    for (std::size_t d : candidates_) {
      if (placed(d)) continue;
      ++nodes_;
      if (!vo_admissible(d) || !admissible(d)) continue;
      place(d);
      if (dfs()) return true;
      unplace();
      if (nodes_ >= max_nodes_) return false;
    }
    return false;
  }

  IsolationLevel level_;
  const model::TransactionSet* txns_;
  std::uint64_t max_nodes_;
  std::size_t n_;
  std::uint64_t nodes_ = 0;

  std::vector<std::size_t> candidates_;
  std::vector<std::size_t> order_;
  std::vector<StateIndex> pos_;  // 0 = unplaced, else 1-based state index
  std::unordered_map<Key, std::vector<std::pair<StateIndex, std::size_t>>> timelines_;
  std::unordered_map<Key, std::vector<std::size_t>> vo_;  // install order (dense)
  std::unordered_map<Key, std::size_t> vo_next_;          // next unplaced installer
  std::vector<DynamicBitset> prec_;
  std::vector<std::vector<std::size_t>> rt_preds_, sess_preds_, rt_succs_, sess_succs_;
  std::vector<std::size_t> remaining_rt_, remaining_sess_;
  std::vector<OpInterval> scratch_;
};

// The hashed read-state computation (the pre-compile ReadStateAnalysis
// core): hashed timelines keyed by Key, writer resolution through
// contains()/by_id()/dense_index_of().
struct HashedAnalysis {
  const model::TransactionSet* txns;
  const model::Execution* exec;
  std::unordered_map<Key, std::vector<std::pair<StateIndex, TxnId>>> timelines;

  explicit HashedAnalysis(const model::TransactionSet& t, const model::Execution& e)
      : txns(&t), exec(&e) {
    for (std::size_t j = 0; j < e.order().size(); ++j) {
      const Transaction& w = t.by_id(e.order()[j]);
      const StateIndex pos = static_cast<StateIndex>(j) + 1;
      for (Key k : w.write_set()) {
        auto [it, inserted] = timelines.try_emplace(k);
        if (inserted) it->second.emplace_back(0, kInitTxn);
        it->second.emplace_back(pos, w.id());
      }
    }
  }

  StateInterval read_states_of(const Transaction& t, std::size_t dense,
                               std::size_t op_index) const {
    const Operation& op = t.ops()[op_index];
    const StateIndex parent = exec->parent_of(dense);

    if (op.is_write()) return {0, parent};
    if (op.value.phantom) return {};

    for (std::size_t i = 0; i < op_index; ++i) {
      const Operation& prev = t.ops()[i];
      if (prev.is_write() && prev.key == op.key) {
        if (op.value.writer == t.id()) return {0, parent};
        return {};
      }
    }

    const TxnId writer = op.value.writer;
    if (writer == t.id()) return {};

    StateIndex version_pos = 0;
    if (writer != kInitTxn) {
      if (!txns->contains(writer)) return {};
      const Transaction& w = txns->by_id(writer);
      if (!w.writes(op.key)) return {};
      version_pos = exec->state_of(txns->dense_index_of(writer));
    }

    static const std::vector<std::pair<StateIndex, TxnId>> kInitialOnly{{0, kInitTxn}};
    auto tlit = timelines.find(op.key);
    const auto& tl = tlit == timelines.end() ? kInitialOnly : tlit->second;
    auto it = std::upper_bound(
        tl.begin(), tl.end(), version_pos,
        [](StateIndex v, const auto& en) { return v < en.first; });
    const StateIndex next_write = it == tl.end() ? exec->last_state() + 1 : it->first;
    return StateInterval{version_pos, std::min(next_write - 1, parent)};
  }
};

}  // namespace

CheckResult check_exhaustive_hashed(ct::IsolationLevel level,
                                    const model::TransactionSet& txns,
                                    const CheckOptions& opts) {
  if (txns.empty()) {
    return {Outcome::kSatisfiable, model::Execution::identity(txns),
            "empty transaction set", 0};
  }
  HashedPrefixSearch search(level, txns, opts);
  return search.run();
}

std::vector<std::vector<StateInterval>> read_state_intervals_hashed(
    const model::TransactionSet& txns, const model::Execution& e) {
  HashedAnalysis a(txns, e);
  std::vector<std::vector<StateInterval>> out(txns.size());
  for (std::size_t dense = 0; dense < txns.size(); ++dense) {
    const Transaction& t = txns.at(dense);
    out[dense].resize(t.ops().size());
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      out[dense][i] = a.read_states_of(t, dense, i);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// OnlineCheckerHashed: the pre-incremental streaming monitor, verbatim.
// ---------------------------------------------------------------------------

OnlineCheckerHashed::OnlineCheckerHashed(std::vector<IsolationLevel> levels) {
  for (IsolationLevel l : levels) statuses_.emplace(l, LevelStatus{});
}

const OnlineCheckerHashed::LevelStatus& OnlineCheckerHashed::status(
    IsolationLevel level) const {
  return statuses_.at(level);
}

bool OnlineCheckerHashed::all_ok() const {
  for (const auto& [level, s] : statuses_) {
    if (!s.ok) return false;
  }
  return true;
}

std::vector<IsolationLevel> OnlineCheckerHashed::surviving_levels() const {
  std::vector<IsolationLevel> out;
  for (const auto& [level, s] : statuses_) {
    if (s.ok) out.push_back(level);
  }
  return out;
}

void OnlineCheckerHashed::violate(IsolationLevel level, TxnId txn, std::string why) {
  auto it = statuses_.find(level);
  if (it == statuses_.end() || !it->second.ok) return;  // sticky first violation
  it->second.ok = false;
  it->second.first_violation = txn;
  it->second.explanation = crooks::to_string(txn) + ": " + std::move(why);
}

OnlineCheckerHashed::OpView OnlineCheckerHashed::analyze_op(const Transaction& t,
                                                            std::size_t op_index,
                                                            StateIndex parent) const {
  const Operation& op = t.ops()[op_index];
  if (op.is_write()) return {{0, parent}, false};
  if (op.value.phantom) return {{0, -1}, false};

  for (std::size_t j = 0; j < op_index; ++j) {
    const Operation& prev = t.ops()[j];
    if (prev.is_write() && prev.key == op.key) {
      return op.value.writer == t.id() ? OpView{{0, parent}, true}
                                       : OpView{{0, -1}, true};
    }
  }

  const TxnId w = op.value.writer;
  if (w == t.id()) return {{0, -1}, false};
  StateIndex version_pos = 0;
  if (w != kInitTxn) {
    auto it = index_.find(w);
    if (it == index_.end() || !txns_[it->second].txn.writes(op.key)) {
      return {{0, -1}, false};
    }
    version_pos = txns_[it->second].state;
  }
  const auto* tl = timeline_of(op.key);
  StateIndex next_write = parent + 2;
  if (tl != nullptr) {
    auto it = std::upper_bound(
        tl->begin(), tl->end(), version_pos,
        [](StateIndex v, const auto& en) { return v < en.first; });
    if (it != tl->end()) next_write = it->first;
  }
  return {{version_pos, std::min(next_write - 1, parent)}, false};
}

bool OnlineCheckerHashed::append(const Transaction& txn) {
  if (index_.contains(txn.id())) return false;

  Placed p;
  p.txn = txn;
  p.state = static_cast<StateIndex>(txns_.size()) + 1;
  const StateIndex parent = p.state - 1;
  p.ops.reserve(txn.ops().size());
  for (std::size_t i = 0; i < txn.ops().size(); ++i) {
    p.ops.push_back(analyze_op(txn, i, parent));
  }

  commit_placed(std::move(p));
  return true;
}

std::size_t OnlineCheckerHashed::append_all(const model::TransactionSet& txns) {
  std::size_t appended = 0;
  for (std::size_t d = 0; d < txns.size(); ++d) {
    if (append(txns.at(d))) ++appended;
  }
  return appended;
}

void OnlineCheckerHashed::commit_placed(Placed p) {
  evaluate_new(p);
  check_retroactive_inversions(p);

  // Install.
  index_.emplace(p.txn.id(), txns_.size());
  for (Key k : p.txn.write_set()) {
    const model::KeyIdx ki = keys_.intern(k);
    if (ki == timelines_.size()) timelines_.emplace_back();
    timelines_[ki].emplace_back(p.state, txns_.size());
  }
  txns_.push_back(std::move(p));
}

void OnlineCheckerHashed::evaluate_new(Placed& p) {
  const Transaction& t = p.txn;
  const StateIndex parent = p.state - 1;

  bool preread = true;
  StateIndex complete_lo = 0, complete_hi = parent;
  for (const OpView& o : p.ops) {
    if (o.rs.empty()) preread = false;
    complete_lo = std::max(complete_lo, o.rs.first);
    complete_hi = std::min(complete_hi, o.rs.last);
  }

  if (!preread) {
    for (IsolationLevel l : {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
                             IsolationLevel::kPSI}) {
      if (tracking(l)) violate(l, t.id(), "PREREAD fails in the apply order");
    }
  }

  // Fractured reads (RA).
  if (tracking(IsolationLevel::kReadAtomic) && preread) {
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& r1 = t.ops()[i];
      if (!r1.is_read() || p.ops[i].internal || r1.value.writer == kInitTxn) continue;
      auto wit = index_.find(r1.value.writer);
      if (wit == index_.end()) continue;
      const Transaction& w1 = txns_[wit->second].txn;
      for (std::size_t j = 0; j < t.ops().size(); ++j) {
        const Operation& r2 = t.ops()[j];
        if (!r2.is_read() || p.ops[j].internal) continue;
        if (w1.writes(r2.key) && p.ops[i].rs.first > p.ops[j].rs.first) {
          violate(IsolationLevel::kReadAtomic, t.id(),
                  "fractured read across " + crooks::to_string(w1.id()) + "'s writes");
        }
      }
    }
  }

  // CAUS-VIS (PSI). Build the transitive PREC set from placed predecessors.
  if (tracking(IsolationLevel::kPSI) && preread) {
    Placed& self = p;
    self.prec.grow(txns_.size() + 1);
    auto absorb = [&](std::size_t slot) {
      self.prec.set(slot);
      self.prec.or_with(txns_[slot].prec);
    };
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || p.ops[i].internal || op.value.writer == kInitTxn) continue;
      if (auto it = index_.find(op.value.writer); it != index_.end()) absorb(it->second);
    }
    for (Key k : t.write_set()) {
      if (const auto* tl = timeline_of(k)) {
        for (const auto& [pos, slot] : *tl) absorb(slot);
      }
    }
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || p.ops[i].internal) continue;
      if (const auto* tl = timeline_of(op.key)) {
        for (const auto& [pos, slot] : *tl) {
          if (pos > p.ops[i].rs.last && self.prec.test(slot)) {
            violate(IsolationLevel::kPSI, t.id(),
                    "CAUS-VIS fails: misses " + crooks::to_string(txns_[slot].txn.id()) +
                        "'s write to " + crooks::to_string(op.key));
          }
        }
      }
    }
  }

  // Serializability: the parent state must be complete.
  const bool parent_complete = complete_lo <= parent && complete_hi >= parent;
  if (tracking(IsolationLevel::kSerializable) && !parent_complete) {
    violate(IsolationLevel::kSerializable, t.id(),
            "parent state is not complete in the apply order");
  }
  if (tracking(IsolationLevel::kStrictSerializable) && !parent_complete) {
    violate(IsolationLevel::kStrictSerializable, t.id(),
            "parent state is not complete in the apply order");
  }

  // The snapshot family.
  const IsolationLevel si_family[] = {IsolationLevel::kAdyaSI, IsolationLevel::kAnsiSI,
                                      IsolationLevel::kSessionSI,
                                      IsolationLevel::kStrongSI};
  StateIndex no_conf = 0;
  for (Key k : t.write_set()) {
    if (const auto* tl = timeline_of(k)) {
      no_conf = std::max(no_conf, tl->back().first);
    }
  }
  for (IsolationLevel level : si_family) {
    if (!tracking(level) || !statuses_.at(level).ok) continue;
    const bool timed = level != IsolationLevel::kAdyaSI;
    if (timed && !t.has_timestamps()) {
      violate(level, t.id(), "requires the time oracle");
      continue;
    }
    if (timed && !txns_.empty()) {
      const Transaction& prev = txns_.back().txn;
      if (!(prev.commit_ts() < t.commit_ts())) {
        violate(level, t.id(), "C-ORD fails: applied out of commit order");
        continue;
      }
    }
    StateIndex lower = 0;
    if (level == IsolationLevel::kStrongSI || level == IsolationLevel::kSessionSI) {
      for (const Placed& q : txns_) {
        if (!time_precedes(q.txn, t)) continue;
        if (level == IsolationLevel::kSessionSI &&
            (t.session() == kNoSession || q.txn.session() != t.session())) {
          continue;
        }
        lower = std::max(lower, q.state);
      }
    }
    const StateIndex lo = std::max({complete_lo, no_conf, lower});
    const StateIndex hi = std::min(complete_hi, parent);
    bool ok = false;
    for (StateIndex s = hi; s >= lo; --s) {
      if (s == 0) {
        ok = true;
        break;
      }
      if (!timed || time_precedes(txns_[static_cast<std::size_t>(s) - 1].txn, t)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      violate(level, t.id(), "no admissible snapshot state in the apply order");
    }
  }
}

void OnlineCheckerHashed::check_retroactive_inversions(const Placed& p) {
  // A late-arriving transaction that committed before an already-applied
  // transaction *started* retroactively violates the real-time clauses of
  // strict serializability and Strong SI (and Session SI within a session).
  const Transaction& late = p.txn;
  if (late.commit_ts() == kNoTimestamp) return;
  for (const Placed& q : txns_) {
    if (!time_precedes(late, q.txn)) continue;
    if (tracking(IsolationLevel::kStrictSerializable)) {
      violate(IsolationLevel::kStrictSerializable, q.txn.id(),
              "real-time predecessor " + crooks::to_string(late.id()) +
                  " was applied after it");
    }
    if (tracking(IsolationLevel::kStrongSI)) {
      violate(IsolationLevel::kStrongSI, q.txn.id(),
              "snapshot misses " + crooks::to_string(late.id()) +
                  ", which committed before it started");
    }
    if (tracking(IsolationLevel::kSessionSI) && q.txn.session() != kNoSession &&
        q.txn.session() == late.session()) {
      violate(IsolationLevel::kSessionSI, q.txn.id(),
              "session predecessor " + crooks::to_string(late.id()) +
                  " was applied after it");
    }
  }
}

}  // namespace crooks::checker::reference
