#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

namespace crooks::obs {

namespace {

struct Sink {
  std::ofstream file;     // used when opened by path
  std::ostream* out = nullptr;  // file or caller-owned stream
  std::chrono::steady_clock::time_point epoch;
};

std::mutex g_mu;
std::unique_ptr<Sink> g_sink;                 // guarded by g_mu
std::atomic<bool> g_active{false};            // fast-path check

std::uint64_t now_us_locked(const Sink& s) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - s.epoch)
          .count());
}

std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string json_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void emit(std::string_view name, std::string_view type, bool with_dur,
          std::uint64_t start_us, const TraceFields& fields) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_sink == nullptr || g_sink->out == nullptr) return;
  const std::uint64_t now = now_us_locked(*g_sink);
  std::ostringstream line;
  line << "{\"type\":\"" << type << "\",\"name\":\"" << json_escape(name)
       << "\",\"t_us\":" << start_us;
  if (with_dur) line << ",\"dur_us\":" << (now - start_us);
  line << ",\"tid\":" << thread_ordinal() << fields.rendered() << "}\n";
  *g_sink->out << line.str();
  g_sink->out->flush();
}

std::uint64_t start_stamp() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_sink == nullptr || g_sink->out == nullptr) return 0;
  return now_us_locked(*g_sink);
}

}  // namespace

// ---------------------------------------------------------------- TraceFields

// Built with append rather than operator+ chains: GCC 12's -O3 restrict
// analysis reports a false-positive overlap inside the temporary-reusing
// `const char* + string&&` overload, which -Werror turns fatal on Release
// builds.
namespace {
std::string field(std::string_view key, std::string_view rendered_value) {
  std::string out;
  out.reserve(key.size() + rendered_value.size() + 4);
  out += '"';
  out += json_escape(key);
  out += "\":";
  out += rendered_value;
  return out;
}
}  // namespace

TraceFields& TraceFields::add(std::string_view key, std::string_view value) {
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += json_escape(value);
  quoted += '"';
  parts_.push_back(field(key, quoted));
  return *this;
}

TraceFields& TraceFields::add(std::string_view key, std::uint64_t value) {
  parts_.push_back(field(key, std::to_string(value)));
  return *this;
}

TraceFields& TraceFields::add(std::string_view key, std::int64_t value) {
  parts_.push_back(field(key, std::to_string(value)));
  return *this;
}

TraceFields& TraceFields::add(std::string_view key, double value) {
  std::ostringstream os;
  os.precision(9);
  os << value;
  parts_.push_back(field(key, os.str()));
  return *this;
}

TraceFields& TraceFields::add(std::string_view key, bool value) {
  parts_.push_back(field(key, value ? "true" : "false"));
  return *this;
}

std::string TraceFields::rendered() const {
  std::string out;
  for (const std::string& p : parts_) {
    out += ',';
    out += p;
  }
  return out;
}

// ---------------------------------------------------------------------- Trace

bool Trace::open(const std::string& path) {
  auto sink = std::make_unique<Sink>();
  sink->file.open(path, std::ios::trunc);
  if (!sink->file) return false;
  sink->out = &sink->file;
  sink->epoch = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(g_mu);
  g_sink = std::move(sink);
  g_active.store(true, std::memory_order_release);
  return true;
}

void Trace::open_stream(std::ostream* out) {
  auto sink = std::make_unique<Sink>();
  sink->out = out;
  sink->epoch = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(g_mu);
  g_sink = std::move(sink);
  g_active.store(out != nullptr, std::memory_order_release);
}

void Trace::close() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_active.store(false, std::memory_order_release);
  g_sink.reset();
}

bool Trace::active() { return g_active.load(std::memory_order_acquire); }

void Trace::event(std::string_view name, const TraceFields& fields) {
  if (!active()) return;
  const std::uint64_t t = start_stamp();
  emit(name, "event", /*with_dur=*/false, t, fields);
}

// ------------------------------------------------------------------ TraceSpan

TraceSpan::TraceSpan(std::string_view name) {
  if (!Trace::active()) return;
  armed_ = true;
  name_ = std::string(name);
  start_us_ = start_stamp();
}

void TraceSpan::end() {
  if (!armed_) return;
  armed_ = false;
  emit(name_, "span", /*with_dur=*/true, start_us_, fields_);
}

}  // namespace crooks::obs
