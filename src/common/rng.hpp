// Deterministic pseudo-random number generation.
//
// All randomized components (workload generators, interleaving schedulers,
// replication delay models) take an explicit seed so that every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace crooks {

/// SplitMix64: tiny, fast, statistically solid for simulation purposes, and
/// trivially seedable. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free mapping is overkill here; modulo bias is
    // negligible for 64-bit state and the bounds we use (< 2^32).
    return (*this)() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform01() < p; }

  /// Derive an independent stream (for per-component seeding).
  constexpr Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace crooks
