#include <gtest/gtest.h>

#include <map>

#include "workload/workload.hpp"
#include "workload/zipf.hpp"

namespace crooks::wl {
namespace {

TEST(Zipf, UniformWhenThetaZero) {
  ZipfGenerator z(10, 0.0);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[z(rng)];
  for (auto& [k, c] : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(Zipf, SkewedWhenThetaHigh) {
  ZipfGenerator z(1000, 0.99);
  Rng rng(2);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z(rng)];
  // The hottest key should absorb far more than uniform share (20).
  EXPECT_GT(counts[0], 1000);
}

TEST(Zipf, AllSamplesInRange) {
  ZipfGenerator z(50, 0.8);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z(rng), 50u);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfGenerator(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, -0.1), std::invalid_argument);
}

TEST(Mix, RespectsShape) {
  const auto intents = generate_mix({.transactions = 50,
                                     .keys = 100,
                                     .reads_per_txn = 3,
                                     .writes_per_txn = 2,
                                     .seed = 4});
  ASSERT_EQ(intents.size(), 50u);
  for (const auto& i : intents) {
    ASSERT_EQ(i.steps.size(), 5u);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_TRUE(i.steps[j].is_read);
    for (std::size_t j = 3; j < 5; ++j) EXPECT_FALSE(i.steps[j].is_read);
  }
}

TEST(Mix, KeysDistinctWithinTransaction) {
  const auto intents = generate_mix({.transactions = 100,
                                     .keys = 10,
                                     .reads_per_txn = 3,
                                     .writes_per_txn = 3,
                                     .seed = 5});
  for (const auto& i : intents) {
    std::set<std::uint64_t> keys;
    for (const auto& s : i.steps) EXPECT_TRUE(keys.insert(s.key.value).second);
  }
}

TEST(Mix, ReadOnlyFraction) {
  const auto intents = generate_mix({.transactions = 200,
                                     .keys = 100,
                                     .reads_per_txn = 2,
                                     .writes_per_txn = 2,
                                     .read_only_fraction = 0.5,
                                     .seed = 6});
  std::size_t read_only = 0;
  for (const auto& i : intents) {
    bool any_write = false;
    for (const auto& s : i.steps) any_write |= !s.is_read;
    read_only += any_write ? 0 : 1;
  }
  EXPECT_GT(read_only, 60u);
  EXPECT_LT(read_only, 140u);
}

TEST(Mix, SessionsAndSitesRoundRobin) {
  const auto intents = generate_mix({.transactions = 9,
                                     .keys = 50,
                                     .sessions = 3,
                                     .sites = 3,
                                     .seed = 7});
  for (std::size_t i = 0; i < intents.size(); ++i) {
    EXPECT_EQ(intents[i].session.value, i % 3);
    EXPECT_EQ(intents[i].site.value, i % 3);
  }
}

TEST(Mix, DeterministicPerSeed) {
  const auto a = generate_mix({.transactions = 20, .keys = 30, .seed = 8});
  const auto b = generate_mix({.transactions = 20, .keys = 30, .seed = 8});
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].steps.size(), b[i].steps.size());
    for (std::size_t j = 0; j < a[i].steps.size(); ++j) {
      EXPECT_EQ(a[i].steps[j].key, b[i].steps[j].key);
    }
  }
}

TEST(Banking, PairsShape) {
  const auto intents = banking_withdrawals(4);
  ASSERT_EQ(intents.size(), 8u);
  // Alice debits checking (even key), Bob debits savings (odd key).
  EXPECT_EQ(intents[0].steps.back().key.value, 0u);
  EXPECT_EQ(intents[1].steps.back().key.value, 1u);
  EXPECT_EQ(intents[6].steps.back().key.value, 6u);
  EXPECT_EQ(intents[7].steps.back().key.value, 7u);
}

}  // namespace
}  // namespace crooks::wl
