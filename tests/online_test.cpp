// Streaming checker: scenario behavior and agreement with the batch
// CommitTester on store-generated apply orders.
#include <gtest/gtest.h>

#include "checker/online.hpp"
#include "committest/commit_test.hpp"
#include "model/analysis.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

namespace crooks::checker {
namespace {

using ct::IsolationLevel;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1};

TEST(Online, CleanChainKeepsEverything) {
  OnlineChecker oc;
  oc.append(TxnBuilder(1).write(kX).at(0, 1).build());
  oc.append(TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(2, 3).build());
  oc.append(TxnBuilder(3).read(kY, TxnId{2}).at(4, 5).build());
  EXPECT_TRUE(oc.all_ok());
  EXPECT_EQ(oc.surviving_levels().size(), ct::kAllLevels.size());
}

TEST(Online, DuplicateAppendsIgnored) {
  OnlineChecker oc;
  EXPECT_TRUE(oc.append(TxnBuilder(1).write(kX).build()));
  EXPECT_FALSE(oc.append(TxnBuilder(1).write(kY).build()));
  EXPECT_EQ(oc.size(), 1u);
}

TEST(Online, WriteSkewKillsOnlySerializability) {
  OnlineChecker oc;
  oc.append(
      TxnBuilder(1).read(kX, kInitTxn).read(kY, kInitTxn).write(kX).at(0, 10).build());
  oc.append(
      TxnBuilder(2).read(kX, kInitTxn).read(kY, kInitTxn).write(kY).at(1, 11).build());
  EXPECT_FALSE(oc.status(IsolationLevel::kSerializable).ok);
  EXPECT_EQ(oc.status(IsolationLevel::kSerializable).first_violation, TxnId{2});
  EXPECT_TRUE(oc.status(IsolationLevel::kAdyaSI).ok);
  EXPECT_TRUE(oc.status(IsolationLevel::kStrongSI).ok);
  EXPECT_TRUE(oc.status(IsolationLevel::kPSI).ok);
}

TEST(Online, DirtyReadCaughtAtAppend) {
  OnlineChecker oc;
  oc.append(TxnBuilder(2).read(kX, TxnId{99}).at(0, 1).build());
  EXPECT_FALSE(oc.status(IsolationLevel::kReadCommitted).ok);
  EXPECT_TRUE(oc.status(IsolationLevel::kReadUncommitted).ok);
  EXPECT_NE(oc.status(IsolationLevel::kReadCommitted).explanation.find("PREREAD"),
            std::string::npos);
}

TEST(Online, RetroactiveRealTimeInversion) {
  OnlineChecker oc;
  // T2 applied first, then T1 arrives late although it committed before T2
  // started: strict serializability and Strong SI are retroactively dead.
  oc.append(TxnBuilder(2).write(kY).at(20, 30).build());
  EXPECT_TRUE(oc.all_ok());
  oc.append(TxnBuilder(1).write(kX).at(0, 10).build());
  EXPECT_FALSE(oc.status(IsolationLevel::kStrictSerializable).ok);
  EXPECT_EQ(oc.status(IsolationLevel::kStrictSerializable).first_violation, TxnId{2});
  EXPECT_FALSE(oc.status(IsolationLevel::kStrongSI).ok);
  // ...but plain serializability survives (T2's parent state is complete).
  EXPECT_TRUE(oc.status(IsolationLevel::kSerializable).ok);
  // C-ORD also fails for the timed snapshot family at the late append.
  EXPECT_FALSE(oc.status(IsolationLevel::kAnsiSI).ok);
}

TEST(Online, SessionInversionOnlyHitsSessionLevels) {
  OnlineChecker oc;
  oc.append(TxnBuilder(2).write(kY).session(SessionId{1}).at(20, 30).build());
  oc.append(TxnBuilder(1).write(kX).session(SessionId{2}).at(0, 10).build());
  // Different sessions: SessionSI violated? No session relation, but C-ORD
  // fails for the timed family at T1's out-of-commit-order append.
  EXPECT_FALSE(oc.status(IsolationLevel::kSessionSI).ok);

  OnlineChecker oc2;
  oc2.append(TxnBuilder(2).write(kY).session(SessionId{1}).at(20, 30).build());
  oc2.append(TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build());
  EXPECT_FALSE(oc2.status(IsolationLevel::kSessionSI).ok);
}

TEST(Online, ViolationsAreSticky) {
  OnlineChecker oc;
  oc.append(TxnBuilder(1).read(kX, TxnId{99}).at(0, 1).build());
  ASSERT_FALSE(oc.status(IsolationLevel::kReadCommitted).ok);
  const std::string first = oc.status(IsolationLevel::kReadCommitted).explanation;
  oc.append(TxnBuilder(2).read(kY, TxnId{98}).at(2, 3).build());
  EXPECT_EQ(oc.status(IsolationLevel::kReadCommitted).explanation, first);
  EXPECT_EQ(oc.status(IsolationLevel::kReadCommitted).first_violation, TxnId{1});
}

TEST(Online, TracksOnlyRequestedLevels) {
  OnlineChecker oc({IsolationLevel::kReadUncommitted});
  oc.append(TxnBuilder(1).read(kX, TxnId{99}).build());  // violates RC, SER...
  EXPECT_TRUE(oc.all_ok());                              // ...all untracked
  EXPECT_THROW(oc.status(IsolationLevel::kReadCommitted), std::out_of_range);
}

/// Agreement with the batch evaluator: feeding a store's apply order to the
/// online checker must yield exactly test_execution's verdict per level.
TEST(Online, AgreesWithBatchOnStoreRuns) {
  for (store::CCMode mode :
       {store::CCMode::kSnapshotIsolation, store::CCMode::kReadCommitted,
        store::CCMode::kReadUncommitted, store::CCMode::kTwoPhaseLocking}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto intents = wl::generate_mix({.transactions = 25,
                                             .keys = 6,
                                             .reads_per_txn = 2,
                                             .writes_per_txn = 2,
                                             .sessions = 3,
                                             .seed = seed});
      const store::RunResult r =
          store::run(intents, {.mode = mode, .seed = seed + 50, .concurrency = 5,
                               .injected_abort_prob = 0.05});

      // Apply order = commit-timestamp order (how the store installed them).
      std::vector<const model::Transaction*> order;
      for (const model::Transaction& t : r.observations) order.push_back(&t);
      std::sort(order.begin(), order.end(), [](auto* a, auto* b) {
        return a->commit_ts() < b->commit_ts();
      });

      OnlineChecker oc;
      std::vector<TxnId> ids;
      for (const model::Transaction* t : order) {
        oc.append(*t);
        ids.push_back(t->id());
      }

      const model::Execution e(r.observations, std::move(ids));
      const model::ReadStateAnalysis analysis(r.observations, e);
      const ct::CommitTester batch(analysis);
      for (IsolationLevel level : ct::kAllLevels) {
        EXPECT_EQ(oc.status(level).ok, batch.test_all(level).ok)
            << store::name_of(mode) << " seed " << seed << " @ "
            << ct::name_of(level) << ": online="
            << oc.status(level).explanation;
      }
    }
  }
}

// ------------------------------------------------------- weak-only direct path
//
// An OnlineChecker tracking only {RU, RC, RA, PSI} takes the direct ingest
// path: no per-op interval storage, no timeline binary searches. The
// contract is byte-identical verdicts and explanations to the general path.

const std::vector<IsolationLevel>& weak_levels() {
  static const std::vector<IsolationLevel> kWeak{
      IsolationLevel::kReadUncommitted, IsolationLevel::kReadCommitted,
      IsolationLevel::kReadAtomic, IsolationLevel::kPSI};
  return kWeak;
}

TEST(OnlineWeak, FracturedReadStreamedBlockByBlock) {
  OnlineChecker oc(weak_levels());
  oc.append(TxnBuilder(1).write(kX).write(kY).at(0, 10).build());
  EXPECT_TRUE(oc.all_ok());
  oc.append(TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).at(1, 11).build());
  EXPECT_TRUE(oc.status(IsolationLevel::kReadCommitted).ok);
  EXPECT_FALSE(oc.status(IsolationLevel::kReadAtomic).ok);
  EXPECT_NE(oc.status(IsolationLevel::kReadAtomic).explanation.find("fractured read"),
            std::string::npos);
  EXPECT_FALSE(oc.status(IsolationLevel::kPSI).ok);
  EXPECT_NE(oc.status(IsolationLevel::kPSI).explanation.find("CAUS-VIS"),
            std::string::npos);
  EXPECT_EQ(oc.stats().direct_appends, 2u);
}

TEST(OnlineWeak, DirtyReadAndDuplicateAppends) {
  OnlineChecker oc(weak_levels());
  oc.append(TxnBuilder(1).write(kX).at(0, 1).build());
  EXPECT_FALSE(oc.append(TxnBuilder(1).write(kY).at(0, 1).build()));  // dup
  oc.append(TxnBuilder(2).read(kX, TxnId{99}).at(2, 3).build());
  EXPECT_TRUE(oc.status(IsolationLevel::kReadUncommitted).ok);
  for (IsolationLevel l : {IsolationLevel::kReadCommitted,
                           IsolationLevel::kReadAtomic, IsolationLevel::kPSI}) {
    EXPECT_FALSE(oc.status(l).ok) << ct::name_of(l);
    EXPECT_EQ(oc.status(l).first_violation, TxnId{2}) << ct::name_of(l);
    EXPECT_NE(oc.status(l).explanation.find("PREREAD fails in the apply order"),
              std::string::npos);
  }
  EXPECT_EQ(oc.stats().duplicates_ignored, 1u);
  EXPECT_EQ(oc.stats().direct_appends, 2u);
  EXPECT_EQ(oc.stats().compiled_appends, 2u);
}

TEST(OnlineWeak, RetroactiveReadStaysStickyWhenWriterArrives) {
  // T2 reads T5 before T5 is applied: in the apply order that read has no
  // candidate state, so the weak levels die at T2 — and stay dead when T5
  // eventually arrives (placement verdicts are final).
  OnlineChecker oc(weak_levels());
  oc.append(TxnBuilder(2).read(kX, TxnId{5}).at(0, 1).build());
  ASSERT_FALSE(oc.status(IsolationLevel::kReadCommitted).ok);
  const std::string first = oc.status(IsolationLevel::kReadCommitted).explanation;
  oc.append(TxnBuilder(5).write(kX).at(2, 3).build());
  EXPECT_FALSE(oc.status(IsolationLevel::kReadCommitted).ok);
  EXPECT_EQ(oc.status(IsolationLevel::kReadCommitted).explanation, first);
  EXPECT_EQ(oc.status(IsolationLevel::kReadCommitted).first_violation, TxnId{2});
  EXPECT_FALSE(oc.status(IsolationLevel::kPSI).ok);
}

TEST(OnlineWeak, CausalityViolationCaughtByPsiOnly) {
  OnlineChecker oc(weak_levels());
  oc.append(TxnBuilder(1).write(kX).at(0, 10).build());
  oc.append(TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(11, 12).build());
  oc.append(TxnBuilder(3).read(kY, TxnId{2}).read(kX, kInitTxn).at(13, 14).build());
  EXPECT_TRUE(oc.status(IsolationLevel::kReadCommitted).ok);
  EXPECT_TRUE(oc.status(IsolationLevel::kReadAtomic).ok);
  EXPECT_FALSE(oc.status(IsolationLevel::kPSI).ok);
  EXPECT_EQ(oc.status(IsolationLevel::kPSI).first_violation, TxnId{3});
  EXPECT_NE(oc.status(IsolationLevel::kPSI).explanation.find("misses T1's write"),
            std::string::npos);
}

TEST(OnlineWeak, AgreesWithGeneralPathOnStoreRuns) {
  for (store::CCMode mode :
       {store::CCMode::kSnapshotIsolation, store::CCMode::kReadCommitted,
        store::CCMode::kReadUncommitted, store::CCMode::kTwoPhaseLocking}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto intents = wl::generate_mix({.transactions = 25,
                                             .keys = 6,
                                             .reads_per_txn = 2,
                                             .writes_per_txn = 2,
                                             .sessions = 3,
                                             .seed = seed});
      const store::RunResult r =
          store::run(intents, {.mode = mode, .seed = seed + 50, .concurrency = 5,
                               .injected_abort_prob = 0.05});
      std::vector<const model::Transaction*> order;
      for (const model::Transaction& t : r.observations) order.push_back(&t);
      std::sort(order.begin(), order.end(), [](auto* a, auto* b) {
        return a->commit_ts() < b->commit_ts();
      });

      OnlineChecker weak(weak_levels());
      OnlineChecker general;
      for (const model::Transaction* t : order) {
        weak.append(*t);
        general.append(*t);
      }
      for (IsolationLevel level : weak_levels()) {
        EXPECT_EQ(weak.status(level).ok, general.status(level).ok)
            << store::name_of(mode) << " seed " << seed << " @ "
            << ct::name_of(level);
        EXPECT_EQ(weak.status(level).first_violation,
                  general.status(level).first_violation)
            << ct::name_of(level);
        EXPECT_EQ(weak.status(level).explanation, general.status(level).explanation)
            << ct::name_of(level);
      }
      EXPECT_EQ(weak.stats().direct_appends, weak.stats().compiled_appends);
      EXPECT_EQ(weak.stats().ops_evaluated, general.stats().ops_evaluated);
      EXPECT_EQ(general.stats().direct_appends, 0u);
    }
  }
}

}  // namespace
}  // namespace crooks::checker
