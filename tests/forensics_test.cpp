// Violation forensics: canonical fingerprints, the bounded pattern table,
// and the determinism contract.
//
// The load-bearing property is REPLAY STABILITY: a witness depends only on
// the stream prefix up to its violation (the failing transaction's own ops,
// the retained scalar columns, exact write footprints), never on block
// batching, thread counts, or wall clock. The suite pins that end to end —
// same log in one gulp, transaction at a time, or random cuts ⇒ byte-equal
// forensics_json — plus the unit truths underneath: isomorphic shapes
// collapse to one fingerprint, the table's memory is bounded with counted
// overflow, mining promotes recurring sub-shapes, and the mined exemplar
// replays as a workload with the same access shape.
#include <gtest/gtest.h>

#include <random>
#include <span>
#include <vector>

#include "checker/checker.hpp"
#include "checker/online.hpp"
#include "forensics/collector.hpp"
#include "forensics/fingerprint.hpp"
#include "forensics/forensics.hpp"
#include "forensics/pattern_table.hpp"
#include "adya/graph.hpp"
#include "report/forensics_render.hpp"
#include "report/report.hpp"
#include "workload/observations.hpp"
#include "workload/workload.hpp"

namespace crooks::forensics {
namespace {

using model::Transaction;
using model::TransactionSet;
using model::TxnBuilder;

std::vector<Transaction> to_vector(const TransactionSet& txns) {
  std::vector<Transaction> all;
  all.reserve(txns.size());
  for (const Transaction& t : txns) all.push_back(t);
  return all;
}

/// The canonical write-skew history: T2 and T3 each read both keys from T1's
/// install and blindly update one of them.
std::vector<Transaction> write_skew() {
  return {
      TxnBuilder(1).write(1).write(2).session(SessionId{1}).at(0, 1).build(),
      TxnBuilder(2)
          .read(1, 1)
          .read(2, 1)
          .write(1)
          .session(SessionId{2})
          .at(2, 5)
          .build(),
      TxnBuilder(3)
          .read(1, 1)
          .read(2, 1)
          .write(2)
          .session(SessionId{3})
          .at(3, 6)
          .build(),
  };
}

/// Replay `txns` through a fresh OnlineChecker (all ten levels) with a
/// collector attached, exactly like `crooks-check --forensics`. `cuts`
/// chooses the block boundaries; empty = one gulp.
PatternTable replay(const std::vector<Transaction>& txns,
                    const std::vector<std::size_t>& cuts = {},
                    std::size_t window = 0) {
  checker::OnlineChecker chk;
  if (window != 0) chk.set_window({window, 0});
  Collector::Options copt;
  copt.metrics = false;
  Collector coll(copt);
  coll.attach(chk);
  if (cuts.empty()) {
    chk.append_all(std::span<const Transaction>(txns));
  } else {
    std::size_t at = 0;
    for (std::size_t cut : cuts) {
      const std::size_t end = std::min(txns.size(), at + cut);
      chk.append_all(std::span<const Transaction>(txns.data() + at, end - at));
      at = end;
      if (at == txns.size()) break;
    }
    if (at < txns.size()) {
      chk.append_all(
          std::span<const Transaction>(txns.data() + at, txns.size() - at));
    }
  }
  return coll.table();
}

// ---------------------------------------------------------------- shapes --

TEST(Fingerprint, IsomorphicShapesCollapse) {
  // write-skew as extracted with the failing node first ...
  ShapeGraph a;
  a.roles = {kRoleFailing, kRoleOther};
  a.edges = {{0, 1, adya::kRW}, {1, 0, adya::kRW}};
  a.normalize();
  // ... and the same shape with an extra spectator node and permuted labels.
  ShapeGraph b;
  b.roles = {kRoleOther, kRoleFailing};
  b.edges = {{1, 0, adya::kRW}, {0, 1, adya::kRW}};
  b.normalize();
  EXPECT_EQ(canonical_code(canonical_form(a)), canonical_code(canonical_form(b)));
  EXPECT_EQ(known_cycle_name(canonical_form(a)), "write-skew");
}

TEST(Fingerprint, RolesAndKindsDistinguish) {
  ShapeGraph skew;
  skew.roles = {kRoleFailing, kRoleOther};
  skew.edges = {{0, 1, adya::kRW}, {1, 0, adya::kRW}};
  skew.normalize();
  ShapeGraph read_skew = skew;
  read_skew.edges[1].kind = adya::kWR;  // wr+rw instead of rw+rw
  read_skew.normalize();
  EXPECT_NE(canonical_code(canonical_form(skew)),
            canonical_code(canonical_form(read_skew)));

  ShapeGraph init_role = skew;
  init_role.roles[1] = kRoleInit;
  EXPECT_NE(canonical_code(canonical_form(skew)),
            canonical_code(canonical_form(init_role)));
}

TEST(Fingerprint, SubshapeEnumerationIsConnectedAndDeduped) {
  ShapeGraph g;
  g.roles = {kRoleFailing, kRoleOther, kRoleOther};
  g.edges = {{1, 0, adya::kWR}, {2, 0, adya::kWR}, {0, 2, adya::kRW}};
  g.normalize();
  const std::vector<ShapeGraph> subs = enumerate_subshapes(g, 2);
  EXPECT_FALSE(subs.empty());
  for (const ShapeGraph& s : subs) {
    EXPECT_LE(s.edges.size(), 2u);
    EXPECT_GE(s.size(), 2u);  // every sub-shape spans its edge endpoints
  }
  // The two single wr edges (other -wr-> failing) are isomorphic: exactly
  // one canonical 1-edge wr sub-shape may appear.
  std::size_t wr_singletons = 0;
  for (const ShapeGraph& s : subs) {
    if (s.edges.size() == 1 && s.edges[0].kind == adya::kWR) ++wr_singletons;
  }
  EXPECT_EQ(wr_singletons, 1u);
}

TEST(Clauses, ClassifierMapsMonitorStrings) {
  EXPECT_EQ(classify_clause("T3: PREREAD fails: r(k1=T9) ..."), Clause::kPreread);
  EXPECT_EQ(classify_clause("fractured read: T2 saw w1 ..."), Clause::kFracturedRead);
  EXPECT_EQ(classify_clause("CAUS-VIS: ..."), Clause::kCausalVisibility);
  EXPECT_EQ(classify_clause("T3: parent state is not complete"),
            Clause::kParentIncomplete);
  EXPECT_EQ(classify_clause("C-ORD violated ..."), Clause::kCommitOrder);
  EXPECT_EQ(classify_clause("real-time recency fails"), Clause::kRealtime);
  EXPECT_EQ(classify_clause("session predecessor T4 not visible"),
            Clause::kSessionOrder);
  EXPECT_EQ(classify_clause("no admissible snapshot for T7"), Clause::kSnapshot);
  EXPECT_EQ(classify_clause("something novel"), Clause::kOther);
}

// ----------------------------------------------------------------- table --

TEST(SpaceSaving, DeterministicTopKWithOverestimate) {
  SpaceSaving s(2);
  for (int i = 0; i < 5; ++i) s.add(7);
  s.add(8);
  s.add(9);  // evicts the first minimum slot (8), inheriting count+1
  const auto top = s.top();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 7u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[1].item, 9u);
  EXPECT_EQ(top[1].count, 2u);  // 8's count + 1: the space-saving bound
}

TEST(PatternTableTest, BoundedWithCountedOverflow) {
  PatternTable::Options opt;
  opt.max_patterns = 2;
  PatternTable table(opt);
  // Three distinct fingerprints: vary the clause.
  Witness w;
  w.level = ct::IsolationLevel::kSerializable;
  w.engine = "online";
  w.txn = TxnId{1};
  w.nodes.push_back({TxnId{1}, kRoleFailing, kNoSession, {}, {}});
  w.shape.roles = {kRoleFailing};
  for (Clause c : {Clause::kPreread, Clause::kSnapshot, Clause::kRealtime,
                   Clause::kPreread}) {
    w.clause = c;
    w.fingerprint = fnv1a(kFnvBasis, name_of(c));
    table.add(w);
  }
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.witnesses(), 4u);
  EXPECT_EQ(table.overflow(), 1u);  // kRealtime arrived after the table filled
  std::uint64_t counted = 0;
  for (const PatternRow* row : table.rows()) counted += row->count;
  EXPECT_EQ(counted + table.overflow(), table.witnesses());
  // Render order: the twice-seen preread pattern first.
  EXPECT_EQ(table.rows()[0]->clause, Clause::kPreread);
  EXPECT_EQ(table.rows()[0]->count, 2u);
}

TEST(PatternTableTest, WriteSkewCollapsesAndNames) {
  const PatternTable table = replay(write_skew());
  ASSERT_GT(table.witnesses(), 0u);
  // SER and SSER both die on the same shape: one pattern, two witnesses.
  const PatternRow* top = table.rows()[0];
  EXPECT_GE(top->count, 2u);
  EXPECT_FALSE(top->name.empty());
  EXPECT_EQ(top->exemplar.fingerprint, top->fingerprint);
  EXPECT_FALSE(top->shape.empty());
  // Hot-spot attribution saw the implicated key and sessions.
  EXPECT_FALSE(top->hot_keys.top().empty());
  EXPECT_FALSE(top->hot_sessions.top().empty());
}

TEST(PatternTableTest, MiningPromotesRecurringSubShapes) {
  const std::vector<Transaction> txns = write_skew();
  PatternTable table = replay(txns);
  ASSERT_GE(table.sample().size(), 2u);
  const std::vector<MinedPattern> mined = table.mine();
  ASSERT_FALSE(mined.empty());
  for (const MinedPattern& m : mined) {
    EXPECT_GE(m.support, table.options().mine_min_support);
    EXPECT_FALSE(m.name.empty());
    EXPECT_FALSE(m.shape.empty());
  }
}

// ----------------------------------------------------- replay determinism --

class ForensicsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForensicsFuzz, BatchingNeverChangesTheReport) {
  const std::uint64_t seed = GetParam();
  wl::ObservationFuzzOptions fopt;
  fopt.transactions = 10;
  fopt.keys = 4;
  fopt.p_dangling = 0.1;
  fopt.p_phantom = 0.1;
  // Half the corpus carries mixed per-transaction level annotations.
  if (seed % 2 == 0) fopt.p_level_annotation = 0.5;
  const std::vector<Transaction> txns =
      to_vector(wl::fuzz_observations(seed, fopt).txns);

  const PatternTable gulp = replay(txns);
  const PatternTable one_at_a_time =
      replay(txns, std::vector<std::size_t>(txns.size(), 1));
  std::mt19937_64 rng(seed * 77 + 1);
  std::vector<std::size_t> cuts;
  for (std::size_t left = txns.size(); left > 0;) {
    const std::size_t c = 1 + rng() % 4;
    cuts.push_back(c);
    left -= std::min(left, c);
  }
  const PatternTable random_cuts = replay(txns, cuts);

  const std::string expect = report::forensics_json(gulp);
  EXPECT_EQ(expect, report::forensics_json(one_at_a_time));
  EXPECT_EQ(expect, report::forensics_json(random_cuts));
  EXPECT_EQ(report::render_forensics(gulp),
            report::render_forensics(one_at_a_time));

  // Every witness is accounted for: aggregated into a row or counted as
  // overflow, never silently dropped.
  std::uint64_t counted = 0;
  for (const PatternRow* row : gulp.rows()) {
    counted += row->count;
    EXPECT_FALSE(row->name.empty());
    EXPECT_EQ(row->exemplar.fingerprint, row->fingerprint);
    std::uint64_t by_level = 0, by_engine = 0;
    for (std::uint64_t n : row->by_level) by_level += n;
    for (std::uint64_t n : row->by_engine) by_engine += n;
    EXPECT_EQ(by_level, row->count);
    EXPECT_EQ(by_engine, row->count);
  }
  EXPECT_EQ(counted + gulp.overflow(), gulp.witnesses());
}

// 200 seeds ⇒ with the ten-level monitor this crosses every level family and
// (even seeds) mixed annotations.
INSTANTIATE_TEST_SUITE_P(Corpus, ForensicsFuzz,
                         ::testing::Range<std::uint64_t>(1, 201));

TEST(ForensicsCorpus, CollapsesTheCorpusIntoBoundedPatterns) {
  PatternTable::Options opt;  // defaults: 64 patterns
  PatternTable aggregate(opt);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    wl::ObservationFuzzOptions fopt;
    fopt.transactions = 8;
    fopt.keys = 3;
    fopt.p_dangling = 0.15;
    fopt.p_phantom = 0.15;
    if (seed % 2 == 0) fopt.p_level_annotation = 0.5;
    const std::vector<Transaction> txns =
        to_vector(wl::fuzz_observations(seed, fopt).txns);
    checker::OnlineChecker chk;
    Collector::Options copt;
    copt.metrics = false;
    Collector coll(copt);
    coll.attach(chk);
    chk.append_all(std::span<const Transaction>(txns));
    // Per-seed witness counts stay under the head-sample bound (≤ 8 txns ×
    // 10 levels), so the sample IS the seed's full witness stream.
    for (const Witness& w : coll.table().sample()) aggregate.add(w);
  }
  // An adversarial corpus produces far more witnesses than shapes: the whole
  // point of canonicalization.
  EXPECT_GT(aggregate.witnesses(), 100u);
  EXPECT_LE(aggregate.size(), 64u);
  EXPECT_LT(aggregate.size() + aggregate.overflow() / 4, aggregate.witnesses() / 2);
  for (const PatternRow* row : aggregate.rows()) {
    EXPECT_FALSE(row->name.empty());
    EXPECT_GE(row->last_seq, row->first_seq);
  }
}

TEST(ForensicsDeterminism, ThreadCountNeverChangesTheReport) {
  const std::vector<Transaction> txns = write_skew();
  report::Observations obs;
  obs.txns = TransactionSet(txns);
  checker::CheckOptions one;
  one.threads = 1;
  checker::CheckOptions eight;
  eight.threads = 8;
  const report::ForensicsAudit a = report::audit_with_forensics(obs, one);
  const report::ForensicsAudit b = report::audit_with_forensics(obs, eight);
  EXPECT_EQ(report::forensics_json(a.table), report::forensics_json(b.table));
  EXPECT_EQ(report::render_forensics(a.table), report::render_forensics(b.table));
  // The replay table is byte-stable; the engine exemplar lines land in the
  // rendered report.
  EXPECT_NE(a.base.text.find("violation forensics:"), std::string::npos);
  EXPECT_NE(a.base.text.find("engine exemplars"), std::string::npos);
}

TEST(ForensicsWindow, BoundedMemoryRunStaysAccounted) {
  // A long low-key-count stream with a small window: the monitor retires
  // aggressively while the collector keeps aggregating.
  const auto intents = wl::generate_mix({.transactions = 400,
                                         .keys = 5,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .sessions = 4,
                                         .seed = 11});
  const auto run = store::run(
      intents, {.mode = store::CCMode::kReadCommitted, .seed = 12,
                .concurrency = 4, .retries = 3});
  const std::vector<Transaction> txns = to_vector(run.observations);

  checker::OnlineChecker chk;
  chk.set_window({32, 0});
  Collector::Options copt;
  copt.metrics = false;
  Collector coll(copt);
  coll.attach(chk);
  std::size_t at = 0;
  while (at < txns.size()) {
    const std::size_t n = std::min<std::size_t>(16, txns.size() - at);
    chk.append_all(std::span<const Transaction>(txns.data() + at, n));
    at += n;
    EXPECT_LE(chk.resident_txns(), 32u + 16u);
  }
  const PatternTable& table = coll.table();
  std::uint64_t counted = 0;
  for (const PatternRow* row : table.rows()) counted += row->count;
  EXPECT_EQ(counted + table.overflow(), table.witnesses());
  // The export renders without touching retired state.
  EXPECT_FALSE(report::forensics_json(table).empty());
}

// -------------------------------------------------------- feedback replay --

TEST(PatternReplay, ExemplarBecomesADirectedWorkload) {
  const PatternTable table = replay(write_skew());
  ASSERT_GT(table.size(), 0u);
  const Witness& w = table.rows()[0]->exemplar;

  wl::PatternReplayOptions opt;
  opt.rounds = 3;
  opt.key_stride = 8;
  const std::vector<store::TxnIntent> intents = wl::generate_from_pattern(w, opt);
  std::size_t with_footprint = 0;
  for (const WitnessNode& n : w.nodes) {
    if (n.role != kRoleInit && (!n.reads.empty() || !n.writes.empty())) {
      ++with_footprint;
    }
  }
  ASSERT_GT(with_footprint, 0u);
  EXPECT_EQ(intents.size(), opt.rounds * with_footprint);
  for (const store::TxnIntent& intent : intents) {
    ASSERT_TRUE(intent.level.has_value());
    EXPECT_EQ(*intent.level, w.level);
    EXPECT_FALSE(intent.steps.empty());
  }
  // Strided rounds touch disjoint key blocks.
  const auto round_keys = [&](std::size_t r) {
    std::vector<std::uint64_t> keys;
    for (std::size_t i = r * with_footprint; i < (r + 1) * with_footprint; ++i) {
      for (const auto& s : intents[i].steps) keys.push_back(s.key.value);
    }
    return keys;
  };
  for (std::uint64_t k : round_keys(0)) EXPECT_LT(k, 1 + opt.key_stride);
  for (std::uint64_t k : round_keys(1)) {
    EXPECT_GE(k, 1 + opt.key_stride);
    EXPECT_LT(k, 1 + 2 * opt.key_stride);
  }
}

// ------------------------------------------------- mixed-level rendering --

TEST(MixedLevelDiagnosis, OwnLevelAppearsInTextAndJson) {
  // Write-skew where only the two skewed writers are declared Serializable;
  // the installer runs at ReadCommitted. The violated transaction's OWN
  // level must surface in both renderings.
  std::vector<Transaction> txns = {
      TxnBuilder(1).write(1).write(2).at(0, 1).build(),
      TxnBuilder(2)
          .read(1, 1)
          .read(2, 1)
          .write(1)
          .level(ct::IsolationLevel::kSerializable)
          .at(2, 5)
          .build(),
      TxnBuilder(3)
          .read(1, 1)
          .read(2, 1)
          .write(2)
          .level(ct::IsolationLevel::kSerializable)
          .at(3, 6)
          .build(),
  };
  TransactionSet set(txns);
  std::vector<ct::IsolationLevel> column = {
      ct::IsolationLevel::kReadCommitted, ct::IsolationLevel::kSerializable,
      ct::IsolationLevel::kSerializable};
  ct::LevelAssignment assignment(ct::IsolationLevel::kReadCommitted,
                                 std::move(column));
  const checker::CheckResult r = checker::check(assignment, set);
  ASSERT_TRUE(r.unsatisfiable());
  ASSERT_TRUE(r.diagnosis.has_value());
  ASSERT_TRUE(r.diagnosis->level.has_value());
  EXPECT_EQ(*r.diagnosis->level, ct::IsolationLevel::kSerializable);

  // Text rendering names the transaction's own level.
  const std::string text = report::render_counterexample(*r.diagnosis);
  EXPECT_NE(text.find("audited at Serializable"), std::string::npos) << text;

  // JSON rendering: the witness built from this diagnosis carries the level
  // into the exported exemplar.
  checker::OnlineChecker chk;
  chk.append_all(set);
  const std::optional<Witness> w = witness_from_result(
      chk.stream(), r, ct::IsolationLevel::kReadCommitted);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->level, ct::IsolationLevel::kSerializable);
  PatternTable table;
  table.add(*w);
  const std::string json = report::forensics_json(table);
  EXPECT_NE(json.find("\"level\":\"Serializable\""), std::string::npos) << json;
}

}  // namespace
}  // namespace crooks::forensics
