file(REMOVE_RECURSE
  "CMakeFiles/crooks_workload.dir/observations.cpp.o"
  "CMakeFiles/crooks_workload.dir/observations.cpp.o.d"
  "CMakeFiles/crooks_workload.dir/workload.cpp.o"
  "CMakeFiles/crooks_workload.dir/workload.cpp.o.d"
  "libcrooks_workload.a"
  "libcrooks_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
