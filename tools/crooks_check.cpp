// crooks-check: audit client observations for isolation violations.
//
//   crooks-check [OPTIONS] [FILE]
//
// Reads observations (see src/report/serialize.hpp for the format) from FILE
// or stdin and prints an isolation audit. Exit status: 0 when the requested
// level (or, by default, the weakest level ReadUncommitted) is satisfied,
// 1 on violation, 2 on usage/parse errors.
//
// Options:
//   --level=NAME   verdict/exit status for one level (e.g. Serializable)
//   --threads=N    checker worker threads (0 = all cores, 1 = sequential)
//   --quiet        print only the verdict line
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "report/report.hpp"

using namespace crooks;

namespace {

std::optional<ct::IsolationLevel> level_by_name(const std::string& name) {
  for (ct::IsolationLevel l : ct::kAllLevels) {
    if (name == ct::name_of(l)) return l;
  }
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: crooks-check [--level=NAME] [--threads=N] [--quiet] [FILE]\n"
               "levels:");
  for (ct::IsolationLevel l : ct::kAllLevels) {
    std::fprintf(stderr, " %s", std::string(ct::name_of(l)).c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<ct::IsolationLevel> requested;
  bool quiet = false;
  std::size_t threads = 0;  // 0 = hardware_concurrency
  std::string file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--level=", 0) == 0) {
      requested = level_by_name(arg.substr(8));
      if (!requested.has_value()) {
        std::fprintf(stderr, "unknown level '%s'\n", arg.substr(8).c_str());
        return usage();
      }
    } else if (arg.rfind("--threads=", 0) == 0 ||
               (arg == "--threads" && i + 1 < argc)) {
      const std::string value = arg == "--threads" ? argv[++i] : arg.substr(10);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "bad thread count '%s'\n", value.c_str());
        return usage();
      }
      try {
        threads = static_cast<std::size_t>(std::stoul(value));
      } catch (const std::exception&) {  // out of range
        std::fprintf(stderr, "bad thread count '%s'\n", value.c_str());
        return usage();
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    } else if (file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }

  report::Observations obs;
  try {
    if (file.empty() || file == "-") {
      obs = report::parse_observations(std::cin);
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
        return 2;
      }
      obs = report::parse_observations(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  checker::CheckOptions opts;
  opts.threads = threads;
  if (obs.has_version_order()) opts.version_order = &obs.version_order;

  if (requested.has_value()) {
    const checker::CheckResult r = checker::check(*requested, obs.txns, opts);
    std::printf("%s: %s\n", std::string(ct::name_of(*requested)).c_str(),
                r.satisfiable()     ? "SATISFIABLE"
                : r.unsatisfiable() ? "UNSATISFIABLE"
                                    : "UNDECIDED");
    if (!quiet && !r.detail.empty()) std::printf("%s\n", r.detail.c_str());
    return r.satisfiable() ? 0 : 1;
  }

  const report::AuditResult a = report::audit(obs, opts);
  if (quiet) {
    std::printf("strongest: %s\n",
                a.strongest.has_value() ? std::string(ct::name_of(*a.strongest)).c_str()
                                        : "none");
  } else {
    std::printf("%s", a.text.c_str());
  }
  return a.strongest.has_value() ? 0 : 1;
}
