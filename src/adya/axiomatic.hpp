// Cerone, Bernardi & Gotsman's axiomatic framework (CONCUR'15), as used by
// the paper's Appendix E to define PSI_A: a history satisfies PSI iff there
// exist a total arbitration order AR and a visibility relation VIS ⊆ AR with
//
//   INT         internal reads return the transaction's latest same-key write
//   EXT         an external read of x returns the AR-maximal VIS-visible
//               write of x (or the initial value if none is visible)
//   TRANSVIS    VIS is transitive
//   NOCONFLICT  writers of a common key are VIS-ordered
//
// Theorem 10(b) proves CT_PSI ≡ PSI_A. This module decides PSI_A directly —
// by enumerating arbitration orders and constructing, per order, the minimal
// visibility relation (reads-from ∪ AR-ordered conflicting writes, closed
// transitively; EXT is monotone in VIS, so if the minimal relation shows a
// reader too new a version, no larger one can help) — giving the test suite
// a third, independently-derived verdict to compare against the state-based
// checker and Adya's phenomena. Exponential in |𝒯|; intended for small sets.
#pragma once

#include <cstdint>
#include <string>

#include "model/transaction.hpp"

namespace crooks::adya {

struct AxiomaticResult {
  bool satisfiable = false;
  std::uint64_t orders_tried = 0;
  std::string detail;
};

/// Decide PSI_A by arbitration-order enumeration. |𝒯| must be ≤ 9.
AxiomaticResult check_psi_axiomatic(const model::TransactionSet& txns);

/// Serializability in the same framework: VIS = AR (every transaction sees
/// everything arbitrated before it), i.e. ∃AR such that each external read
/// returns the AR-latest prior write. Equivalent to CT_SER; |𝒯| ≤ 9.
AxiomaticResult check_ser_axiomatic(const model::TransactionSet& txns);

}  // namespace crooks::adya
