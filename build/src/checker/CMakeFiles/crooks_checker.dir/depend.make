# Empty dependencies file for crooks_checker.
# This may be replaced when dependencies are built.
