// Property suite over randomized, adversarial observation sets.
//
// The generator produces arbitrary observations — reads of later writers, of
// unknown writers, phantom values — and the properties assert that the
// checker's engines stay internally consistent on ALL of them:
//   * every witness verifies against the canonical commit tests,
//   * verdicts are monotone over the hierarchy,
//   * the graph engine never contradicts the exhaustive oracle,
//   * a version-order restriction can only shrink the satisfiable set,
//   * the online monitor agrees with the batch evaluator on any order,
//   * serialization round-trips preserve verdicts,
//   * budget- and thread-randomized runs never contradict the unbounded
//     sequential oracle (kUnknown is the only allowed divergence).
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "checker/online.hpp"
#include "checker/reference.hpp"
#include "common/rng.hpp"
#include "model/analysis.hpp"
#include "report/serialize.hpp"
#include "workload/observations.hpp"

namespace crooks {
namespace {

using checker::CheckOptions;
using checker::CheckResult;
using checker::Outcome;
using ct::IsolationLevel;

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  wl::FuzzedObservations make(bool timestamps = true) const {
    wl::ObservationFuzzOptions opts;
    opts.transactions = 7;
    opts.keys = 4;
    opts.with_timestamps = timestamps;
    return wl::fuzz_observations(GetParam(), opts);
  }
};

TEST_P(Fuzz, WitnessesVerify) {
  const wl::FuzzedObservations f = make();
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult r = checker::check_exhaustive(level, f.txns);
    ASSERT_NE(r.outcome, Outcome::kUnknown);
    if (r.satisfiable()) {
      ASSERT_TRUE(r.witness.has_value());
      const ct::ExecutionVerdict v = checker::verify_witness(level, f.txns, *r.witness);
      EXPECT_TRUE(v.ok) << ct::name_of(level) << ": " << v.explanation;
    }
  }
}

TEST_P(Fuzz, HierarchyMonotone) {
  const wl::FuzzedObservations f = make();
  std::vector<std::pair<IsolationLevel, bool>> verdicts;
  for (IsolationLevel level : ct::kAllLevels) {
    verdicts.emplace_back(level, checker::check_exhaustive(level, f.txns).satisfiable());
  }
  for (auto [a, asat] : verdicts) {
    for (auto [b, bsat] : verdicts) {
      if (asat && ct::at_least_as_strong(a, b)) {
        EXPECT_TRUE(bsat) << ct::name_of(a) << " sat but " << ct::name_of(b) << " unsat";
      }
    }
  }
}

TEST_P(Fuzz, GraphNeverContradictsOracle) {
  const wl::FuzzedObservations f = make();
  CheckOptions opts;
  opts.version_order = &f.version_order;
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult oracle = checker::check_exhaustive(level, f.txns, opts);
    const CheckResult graph = checker::check_graph(level, f.txns, opts);
    ASSERT_NE(oracle.outcome, Outcome::kUnknown);
    if (graph.outcome == Outcome::kUnknown) continue;
    EXPECT_EQ(graph.outcome, oracle.outcome)
        << ct::name_of(level) << "\n graph:  " << graph.detail
        << "\n oracle: " << oracle.detail;
  }
}

TEST_P(Fuzz, VersionOrderOnlyShrinks) {
  const wl::FuzzedObservations f = make();
  CheckOptions restricted;
  restricted.version_order = &f.version_order;
  for (IsolationLevel level : ct::kAllLevels) {
    const bool with_vo = checker::check_exhaustive(level, f.txns, restricted).satisfiable();
    const bool without = checker::check_exhaustive(level, f.txns).satisfiable();
    if (with_vo) {
      EXPECT_TRUE(without) << ct::name_of(level)
                           << ": restricted satisfiable but unrestricted not";
    }
  }
}

TEST_P(Fuzz, DispatchAgreesWithOracle) {
  const wl::FuzzedObservations f = make();
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult d = checker::check(level, f.txns);
    const CheckResult oracle = checker::check_exhaustive(level, f.txns);
    ASSERT_NE(oracle.outcome, Outcome::kUnknown);
    if (d.outcome == Outcome::kUnknown) continue;
    EXPECT_EQ(d.outcome, oracle.outcome) << ct::name_of(level) << ": " << d.detail;
  }
}

TEST_P(Fuzz, UntimedObservationsKillTimedLevelsOnly) {
  const wl::FuzzedObservations f = make(/*timestamps=*/false);
  for (IsolationLevel level : ct::kAllLevels) {
    if (!ct::requires_timestamps(level)) continue;
    EXPECT_TRUE(checker::check(level, f.txns).unsatisfiable()) << ct::name_of(level);
  }
  EXPECT_TRUE(checker::check(IsolationLevel::kReadUncommitted, f.txns).satisfiable());
}

TEST_P(Fuzz, OnlineAgreesWithBatchOnWitnessOrder) {
  const wl::FuzzedObservations f = make();
  // Use the RC witness if one exists (a PREREAD-consistent order); fall back
  // to id order otherwise.
  const CheckResult rc = checker::check_exhaustive(IsolationLevel::kReadCommitted, f.txns);
  model::Execution e = rc.satisfiable() ? *rc.witness : model::Execution::identity(f.txns);

  checker::OnlineChecker oc;
  for (TxnId id : e.order()) oc.append(f.txns.by_id(id));

  const model::ReadStateAnalysis analysis(f.txns, e);
  const ct::CommitTester batch(analysis);
  for (IsolationLevel level : ct::kAllLevels) {
    EXPECT_EQ(oc.status(level).ok, batch.test_all(level).ok)
        << ct::name_of(level) << ": " << oc.status(level).explanation;
  }
}

TEST_P(Fuzz, SerializationPreservesVerdicts) {
  const wl::FuzzedObservations f = make();
  report::Observations obs{f.txns, f.version_order, std::nullopt};
  const report::Observations back = report::parse_observations(report::to_text(obs));
  CheckOptions o1, o2;
  o1.version_order = &f.version_order;
  o2.version_order = &back.version_order;
  for (IsolationLevel level : ct::kAllLevels) {
    EXPECT_EQ(checker::check_exhaustive(level, f.txns, o1).outcome,
              checker::check_exhaustive(level, back.txns, o2).outcome)
        << ct::name_of(level);
  }
}

TEST_P(Fuzz, RandomizedBudgetsAndThreadsNeverContradict) {
  // Randomize the engine-selection threshold, the node budget (small enough
  // to hit the kUnknown paths regularly) and the worker count, under both
  // the exhaustive engine and the full dispatcher. A truncated or parallel
  // run may give up (kUnknown) but must never contradict the unbounded
  // sequential oracle, must reproduce its own verdict, and every witness
  // must verify.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b9ULL + 17);
  const wl::FuzzedObservations f = make();

  CheckOptions fuzzed;
  fuzzed.exhaustive_threshold = rng.below(12);  // sometimes below |𝒯|
  fuzzed.max_nodes = 1 + rng.below(2000);       // often exhausted at |𝒯| = 7
  fuzzed.threads = 1 + rng.below(8);
  const std::string config = "seed=" + std::to_string(seed) +
                             " threshold=" + std::to_string(fuzzed.exhaustive_threshold) +
                             " max_nodes=" + std::to_string(fuzzed.max_nodes) +
                             " threads=" + std::to_string(fuzzed.threads);

  CheckOptions unbounded;
  unbounded.threads = 1;
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult oracle = checker::check_exhaustive(level, f.txns, unbounded);
    ASSERT_NE(oracle.outcome, Outcome::kUnknown) << config;
    // The frozen hash-based engine is a second, independent oracle: the
    // compiled representation must not change any unbounded verdict.
    const CheckResult hashed =
        checker::reference::check_exhaustive_hashed(level, f.txns, unbounded);
    ASSERT_EQ(hashed.outcome, oracle.outcome)
        << ct::name_of(level) << " hashed reference disagrees: " << config;
    const CheckResult budgeted = checker::check_exhaustive(level, f.txns, fuzzed);
    const CheckResult again = checker::check_exhaustive(level, f.txns, fuzzed);
    EXPECT_EQ(budgeted.outcome, again.outcome)
        << ct::name_of(level) << " verdict not reproducible: " << config;
    if (budgeted.outcome != Outcome::kUnknown) {
      EXPECT_EQ(budgeted.outcome, oracle.outcome) << ct::name_of(level) << " " << config;
    }
    if (budgeted.satisfiable()) {
      ASSERT_TRUE(budgeted.witness.has_value()) << config;
      EXPECT_TRUE(checker::verify_witness(level, f.txns, *budgeted.witness).ok)
          << ct::name_of(level) << " " << config;
    }

    const CheckResult dispatched = checker::check(level, f.txns, fuzzed);
    if (dispatched.outcome != Outcome::kUnknown) {
      EXPECT_EQ(dispatched.outcome, oracle.outcome)
          << ct::name_of(level) << " dispatcher " << config << ": " << dispatched.detail;
    }
  }
}

TEST_P(Fuzz, MixedTimestampsBudgetsAndThreads) {
  // Strict-weak-order regression under the same randomized budget/thread
  // sweep: sets mixing timestamped and untimestamped transactions used to
  // hit undefined behaviour in the candidate sort. They must now behave
  // like any other input — definite sequential verdicts, agreement with the
  // hashed reference, and budgeted/parallel runs that never contradict.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x51ed2701ULL + 5);
  wl::ObservationFuzzOptions o;
  o.transactions = 7;
  o.keys = 4;
  o.p_untimestamped = 0.35;
  const wl::FuzzedObservations f = wl::fuzz_observations(seed, o);

  CheckOptions fuzzed;
  fuzzed.max_nodes = 1 + rng.below(2000);
  fuzzed.threads = 1 + rng.below(8);
  CheckOptions unbounded;
  unbounded.threads = 1;
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult oracle = checker::check_exhaustive(level, f.txns, unbounded);
    ASSERT_NE(oracle.outcome, Outcome::kUnknown) << ct::name_of(level);
    EXPECT_EQ(
        checker::reference::check_exhaustive_hashed(level, f.txns, unbounded).outcome,
        oracle.outcome)
        << ct::name_of(level) << " seed=" << seed;
    const CheckResult budgeted = checker::check_exhaustive(level, f.txns, fuzzed);
    if (budgeted.outcome != Outcome::kUnknown) {
      EXPECT_EQ(budgeted.outcome, oracle.outcome) << ct::name_of(level);
    }
    if (budgeted.satisfiable()) {
      EXPECT_TRUE(checker::verify_witness(level, f.txns, *budgeted.witness).ok)
          << ct::name_of(level);
    }
  }
}

TEST_P(Fuzz, DirectEngineAgreesWithBothOracles) {
  // The direct tier against two independent oracles — the compiled exhaustive
  // engine and the frozen hashed reference — with and without an
  // authoritative version order. At |𝒯| = 7 the PSI fallback budget always
  // suffices, so kUnknown is a failure, not an allowed divergence.
  const wl::FuzzedObservations f = make();
  CheckOptions unbounded;
  unbounded.threads = 1;
  CheckOptions with_vo = unbounded;
  with_vo.version_order = &f.version_order;
  for (IsolationLevel level :
       {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
        IsolationLevel::kPSI}) {
    for (const CheckOptions* o : {&unbounded, &with_vo}) {
      const std::string config = std::string(ct::name_of(level)) +
                                 (o == &with_vo ? " with vo" : " without vo");
      const CheckResult oracle = checker::check_exhaustive(level, f.txns, *o);
      ASSERT_NE(oracle.outcome, Outcome::kUnknown) << config;
      ASSERT_EQ(
          checker::reference::check_exhaustive_hashed(level, f.txns, *o).outcome,
          oracle.outcome)
          << config;
      const CheckResult direct = checker::check_direct(level, f.txns, *o);
      ASSERT_NE(direct.outcome, Outcome::kUnknown)
          << config << ": " << direct.detail;
      EXPECT_EQ(direct.outcome, oracle.outcome)
          << config << "\n direct: " << direct.detail
          << "\n oracle: " << oracle.detail;
      if (direct.satisfiable()) {
        ASSERT_TRUE(direct.witness.has_value()) << config;
        const ct::ExecutionVerdict v =
            checker::verify_witness(level, f.txns, *direct.witness);
        EXPECT_TRUE(v.ok) << config << ": " << v.explanation;
      }
    }
  }
}

TEST_P(Fuzz, DirectEngineMixedAndMissingTimestamps) {
  // Timestamp gaps must not perturb the direct tier: it never consults the
  // time oracle beyond the shared candidate order, so mixed and absent
  // timestamps behave like any other input.
  const std::uint64_t seed = GetParam();
  wl::ObservationFuzzOptions o;
  o.transactions = 7;
  o.keys = 4;
  o.p_untimestamped = 0.35;
  const wl::FuzzedObservations mixed = wl::fuzz_observations(seed, o);
  const wl::FuzzedObservations untimed = make(/*timestamps=*/false);
  for (IsolationLevel level :
       {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
        IsolationLevel::kPSI}) {
    for (const wl::FuzzedObservations* f : {&mixed, &untimed}) {
      const CheckResult oracle = checker::check_exhaustive(level, f->txns);
      ASSERT_NE(oracle.outcome, Outcome::kUnknown) << ct::name_of(level);
      const CheckResult direct = checker::check_direct(level, f->txns);
      ASSERT_NE(direct.outcome, Outcome::kUnknown) << ct::name_of(level);
      EXPECT_EQ(direct.outcome, oracle.outcome)
          << ct::name_of(level) << " seed=" << seed << ": " << direct.detail;
      if (direct.satisfiable()) {
        EXPECT_TRUE(checker::verify_witness(level, f->txns, *direct.witness).ok)
            << ct::name_of(level);
      }
    }
  }
}

TEST_P(Fuzz, RandomLevelMapAgreesAcrossEngines) {
  // The mixed-level sweep: each transaction independently draws a random
  // `level=` annotation, the assignment resolves annotations over a rotating
  // fallback, and the engines must stay mutually consistent on the mixed
  // question exactly as they do on the global one — exhaustive decides,
  // deciding engines agree, witnesses verify under the assignment, and a
  // serialization round-trip preserves the annotations and the verdict.
  const std::uint64_t seed = GetParam();
  wl::ObservationFuzzOptions o;
  o.transactions = 7;
  o.keys = 4;
  o.p_level_annotation = 0.4;
  if (seed % 4 == 0) o.p_untimestamped = 0.3;
  const wl::FuzzedObservations f = wl::fuzz_observations(seed, o);
  const model::CompiledHistory ch(f.txns);
  const ct::IsolationLevel fallback = ct::kAllLevels[seed % ct::kAllLevels.size()];
  const ct::LevelAssignment assignment =
      ct::LevelAssignment::from_annotations(ch, fallback);

  CheckOptions opts;
  opts.threads = 1;
  if (seed % 2 == 0) opts.version_order = &f.version_order;
  const CheckResult oracle = checker::check_exhaustive(assignment, ch, opts);
  ASSERT_NE(oracle.outcome, Outcome::kUnknown) << assignment.describe();
  if (oracle.satisfiable()) {
    ASSERT_TRUE(oracle.witness.has_value());
    const ct::ExecutionVerdict v =
        checker::verify_witness(assignment, ch, *oracle.witness);
    EXPECT_TRUE(v.ok) << assignment.describe() << ": " << v.explanation;
  }

  const CheckResult direct = checker::check_direct(assignment, ch, opts);
  if (checker::direct_eligible(assignment)) {
    ASSERT_NE(direct.outcome, Outcome::kUnknown)
        << assignment.describe() << ": " << direct.detail;
  }
  for (const CheckResult* r : {&direct, &std::as_const(oracle)}) {
    if (r->outcome == Outcome::kUnknown) continue;
    EXPECT_EQ(r->outcome, oracle.outcome) << assignment.describe();
  }
  const CheckResult graph = checker::check_graph(assignment, ch, opts);
  if (graph.outcome != Outcome::kUnknown) {
    EXPECT_EQ(graph.outcome, oracle.outcome)
        << assignment.describe() << "\n graph:  " << graph.detail
        << "\n oracle: " << oracle.detail;
  }
  if (direct.satisfiable()) {
    ASSERT_TRUE(direct.witness.has_value());
    EXPECT_TRUE(checker::verify_witness(assignment, ch, *direct.witness).ok);
  }

  // Round-trip: the text format carries the annotations, so the re-parsed
  // observations resolve to the same assignment and the same verdict.
  report::Observations obs{f.txns, f.version_order, std::nullopt};
  const report::Observations back = report::parse_observations(report::to_text(obs));
  const model::CompiledHistory bch(back.txns);
  ASSERT_EQ(bch.annotated_level_count(), ch.annotated_level_count());
  const ct::LevelAssignment bassign =
      ct::LevelAssignment::from_annotations(bch, fallback);
  EXPECT_EQ(bassign.present_mask(), assignment.present_mask());
  CheckOptions bopts;
  bopts.threads = 1;
  if (seed % 2 == 0) bopts.version_order = &back.version_order;
  EXPECT_EQ(checker::check_exhaustive(bassign, bch, bopts).outcome, oracle.outcome)
      << assignment.describe();
}

TEST_P(Fuzz, DeterministicVerdicts) {
  const wl::FuzzedObservations a = make();
  const wl::FuzzedObservations b = make();
  for (IsolationLevel level : ct::kAllLevels) {
    EXPECT_EQ(checker::check(level, a.txns).outcome,
              checker::check(level, b.txns).outcome);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(1, 151));

}  // namespace
}  // namespace crooks
