// The isolation checker: decide ∃e : ∀T ∈ 𝒯 : CT_I(T, e)  (Definition 5).
//
// This is the practical artifact the state-based model enables (and the idea
// later industrialized by checkers such as Elle, Cobra and PolySI): given
// only what *clients observed* — transactions with the values their reads
// returned — decide whether the storage system could have produced those
// observations under isolation level I.
//
// Four engine tiers, cross-validated against each other in the test suite:
//
//  * Direct      — single-pass checkers for the weak levels (RC, RA, PSI)
//    that sweep the compiled SoA arrays in commit order and never build a
//    DSG or a prefix-search tree. Sound and complete for RC and RA (with or
//    without a version order); for PSI a sound saturation refuter plus a
//    verified constructed witness, falling back to a bounded exhaustive
//    search on the rare undecided instance. Near-linear: the raw-speed tier
//    for large weak-level audits.
//  * Exhaustive  — branch-and-bound over execution prefixes. Sound and
//    complete for every level, factorial in |𝒯|; the ground-truth oracle.
//  * Graph       — the constructive ⇐ directions of Theorems 1–4, 6, 10:
//    build the dependency graph the observations pin down, topologically
//    sort it per the level's rule, and verify the commit test on the result.
//    With an authoritative version order (a store that knows its install
//    order) this is sound *and complete* for RU, RC, RA, PSI, SER and SSER;
//    for the timed SI family (ANSI/Session/Strong) the real-time C-ORD
//    clause pins the execution to commit-timestamp order, making the single
//    candidate decisive with or without a version order.
//  * Heuristic   — candidate orders (commit-time, dependency topological)
//    verified by the commit test; answers kSatisfiable or kUnknown. Used for
//    large client-only observation sets.
//
// check() picks automatically: direct for its eligible levels, else complete
// graph decision when available, else exhaustive when |𝒯| is small, else
// heuristic. CheckOptions::engine overrides the choice.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "committest/commit_test.hpp"
#include "committest/level_assignment.hpp"
#include "committest/levels.hpp"
#include "model/execution.hpp"
#include "model/transaction.hpp"

namespace crooks::checker {

enum class Outcome : std::uint8_t {
  kSatisfiable,    // witness execution found (and verified)
  kUnsatisfiable,  // proven: no execution passes the commit test
  kUnknown,        // search budget exhausted / incomplete engine gave up
};

/// The minimal conflicting read-state evidence attached to a refutation:
/// which transaction's commit test fails, on which read, against which
/// candidate states. Built by explain_refutation() from the canonical
/// candidate execution; rendered for humans by report::render_counterexample
/// (Elle-style anomaly certificate — a verdict an operator can act on).
struct ReadDiagnosis {
  TxnId txn{};                 // transaction whose commit test fails
  /// The isolation level the failing transaction was audited at — under a
  /// mixed-level assignment this is that transaction's *own* level, not a
  /// history-wide one.
  std::optional<ct::IsolationLevel> level;
  std::string clause;          // the violated commit-test clause, spelled out
  std::optional<Key> key;      // the implicated read's key, when one is pinned
  std::optional<TxnId> observed_writer;  // the writer that read observed
  /// Per-read candidate read-state intervals on the candidate execution,
  /// e.g. "r(k3=T2): [s2, s2]; r(k5=T6): [s6, s6]; parent = s6".
  std::string candidate_states;
  /// Which execution the evidence is stated against (e.g. "commit-timestamp
  /// order" — for the timed levels the only order C-ORD admits).
  std::string candidate_execution;
};

struct CheckResult {
  CheckResult() = default;
  /// The shape every engine returns: verdict, optional witness, proof sketch,
  /// effort. The observability fields below are filled in by the engine
  /// wrappers after the fact.
  CheckResult(Outcome o, std::optional<model::Execution> w, std::string d,
              std::uint64_t nodes = 0)
      : outcome(o), witness(std::move(w)), detail(std::move(d)), nodes_explored(nodes) {}

  Outcome outcome = Outcome::kUnknown;
  std::optional<model::Execution> witness;  // set iff kSatisfiable
  std::string detail;                       // proof sketch / failure reason
  /// Search effort, uniformly populated by every engine: states/placements
  /// examined by the exhaustive search, transactions commit-tested plus topo
  /// queue pops by the graph engine. Dashboards never see a zero just
  /// because the fast path answered.
  std::uint64_t nodes_explored = 0;
  /// Dependency-graph edges walked by the graph engine (0 for exhaustive).
  std::uint64_t edges_visited = 0;
  /// Which engine produced the verdict: "exhaustive", "graph", "heuristic",
  /// "hierarchy", or "" for trivial (empty-set) answers.
  std::string engine;
  /// Set on (some) kUnsatisfiable results: the failing commit test, localized.
  std::optional<ReadDiagnosis> diagnosis;

  bool satisfiable() const { return outcome == Outcome::kSatisfiable; }
  bool unsatisfiable() const { return outcome == Outcome::kUnsatisfiable; }
};

/// Which engine decides a check. kAuto is the dispatch described in the
/// header comment; the explicit selections force one engine and return its
/// verdict as-is (possibly kUnknown — forcing `direct` on a non-eligible
/// level, or `graph` where it is incomplete, reports honestly instead of
/// silently substituting another engine).
enum class EngineSelect : std::uint8_t {
  kAuto,
  kDirect,
  kGraph,
  kExhaustive,
};

struct CheckOptions {
  /// Use the exhaustive engine when |𝒯| ≤ this and no complete graph
  /// decision applies.
  std::size_t exhaustive_threshold = 9;

  /// Engine selection for check() / check_batch() / check_incremental().
  EngineSelect engine = EngineSelect::kAuto;

  /// Node budget for the exhaustive engine; exceeding it yields kUnknown.
  std::uint64_t max_nodes = 4'000'000;

  /// Authoritative per-key install order, when the system under check can
  /// export it (our store does). Keys absent from the map must have at most
  /// one committed writer.
  ///
  /// Semantics: when set, the checker decides the *restricted* question
  /// "∃e consistent with this install order : ∀T CT_I(T, e)" — i.e.
  /// executions must apply conflicting writes in the given order. This is
  /// the question the equivalence theorems answer (they instantiate << from
  /// e), so with a version order the graph engine is sound AND complete for
  /// RU, RC, RA, PSI, SER and SSER. Without it, the client-centric question
  /// is strictly more permissive: clients cannot observe install order, so
  /// e.g. two blind writes can always be ordered either way (this is the
  /// paper's Figure 1(l) point about systems that refuse to reorder writes).
  const std::unordered_map<Key, std::vector<TxnId>>* version_order = nullptr;

  /// Worker threads for the parallel layers: check_batch fans histories
  /// across this many workers, and the exhaustive engine distributes disjoint
  /// top-level prefix branches. 0 means hardware_concurrency; 1 preserves the
  /// fully sequential behaviour bit-for-bit (including nodes_explored — use
  /// threads = 1 when debugging node-count regressions).
  ///
  /// Determinism contract (see DESIGN.md §2.3): for a fixed input, the
  /// verdict (kSatisfiable / kUnsatisfiable / kUnknown) is the same for every
  /// thread count and every scheduling. A parallel run may choose a different
  /// witness than the sequential one — it still passes verify_witness — and
  /// may report a different nodes_explored, and it may answer kSatisfiable on
  /// budget-limited instances where the sequential engine gives up with
  /// kUnknown (never the reverse, and it never contradicts a definite
  /// sequential verdict).
  std::size_t threads = 0;

  /// Resolved thread count (threads == 0 ⇒ hardware_concurrency).
  std::size_t resolved_threads() const;
};

/// One history in a check_batch call: its observations plus (optionally) its
/// own authoritative version order. A null version_order falls back to the
/// batch-level CheckOptions::version_order.
struct BatchItem {
  const model::TransactionSet* txns = nullptr;
  const std::unordered_map<Key, std::vector<TxnId>>* version_order = nullptr;
};

/// Decide ∃e ∀T CT_I(T, e), picking the strongest applicable engine.
CheckResult check(ct::IsolationLevel level, const model::TransactionSet& txns,
                  const CheckOptions& opts = {});

/// Same, over an existing compilation of the history. All engines consume the
/// compiled form; the TransactionSet overloads compile once and delegate here.
CheckResult check(ct::IsolationLevel level, const model::CompiledHistory& ch,
                  const CheckOptions& opts = {});

/// Check many independent histories concurrently via a size-class sharded
/// scheduler (see batch.cpp): tiny histories are packed several per pool task
/// to amortize dispatch, medium ones get a task each, and large
/// (refutation-heavy) ones additionally run their searches with the
/// branch-parallel exhaustive engine. Completed shards drain through an MPMC
/// result queue instead of a pool-wide barrier. Results are returned in input
/// order; each is decided by the same dispatch as check(). With threads == 1
/// every result is bit-for-bit the lone sequential check; with more threads
/// the per-result guarantee is the CheckOptions::threads determinism contract
/// (same verdict, possibly a different witness or node count on large
/// histories).
std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const BatchItem> items,
                                     const CheckOptions& opts = {});

/// check_batch over bare observation sets; every history shares
/// opts.version_order (usually null). Consecutive histories where each
/// extends the previous one (same transactions plus an appended suffix) are
/// compiled once and grown per item via CompiledHistory::extend — an audit
/// stream of growing prefixes never re-interns its shared prefix.
std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const model::TransactionSet> histories,
                                     const CheckOptions& opts = {});

/// Audit a growing history at block granularity: result i answers the ∃e
/// question for the concatenation of blocks[0..i]. The shared prefix is
/// compiled once and extended incrementally (CompiledDelta per block).
/// Inherently sequential across blocks — opts.threads parallelizes within
/// each per-prefix check instead. Throws std::invalid_argument if a block
/// repeats a transaction id seen in an earlier block.
std::vector<CheckResult> check_incremental(ct::IsolationLevel level,
                                           std::span<const model::TransactionSet> blocks,
                                           const CheckOptions& opts = {});

/// Branch-and-bound over execution prefixes. Sound and complete (with
/// respect to opts.version_order when set); factorial.
CheckResult check_exhaustive(ct::IsolationLevel level,
                             const model::TransactionSet& txns,
                             const CheckOptions& opts = {});
CheckResult check_exhaustive(ct::IsolationLevel level,
                             const model::CompiledHistory& ch,
                             const CheckOptions& opts = {});

/// Constructive graph engine. Complete exactly when `detail` says so (see
/// header comment); otherwise may return kUnknown.
CheckResult check_graph(ct::IsolationLevel level, const model::TransactionSet& txns,
                        const CheckOptions& opts = {});
CheckResult check_graph(ct::IsolationLevel level, const model::CompiledHistory& ch,
                        const CheckOptions& opts = {});

/// True when `level` has a direct single-pass decision procedure: RC, RA and
/// PSI. check() tries the direct engine first exactly for these.
bool direct_eligible(ct::IsolationLevel level);

/// Direct single-pass engine for the weak levels (see direct.cpp). Sound and
/// complete for RC and RA; for PSI sound with a verified witness and a
/// bounded exhaustive fallback — kUnknown only on a non-eligible level or an
/// oversized undecided PSI instance (check()'s dispatch then falls through
/// to the complete engines).
CheckResult check_direct(ct::IsolationLevel level, const model::TransactionSet& txns,
                         const CheckOptions& opts = {});
CheckResult check_direct(ct::IsolationLevel level, const model::CompiledHistory& ch,
                         const CheckOptions& opts = {});

/// Build the minimal read-state evidence for a refuted history: evaluate the
/// level's commit test on `candidate` (or, for the one-argument overload, the
/// compiled history's shared timestamp order) and extract the first failing
/// transaction, the implicated read, and its candidate read states. Returns
/// nullopt when the candidate execution actually passes (possible when the
/// refutation came from a version-order restriction the candidate ignores).
std::optional<ReadDiagnosis> explain_refutation(ct::IsolationLevel level,
                                                const model::CompiledHistory& ch,
                                                const model::Execution& candidate,
                                                std::string candidate_name);
std::optional<ReadDiagnosis> explain_refutation(ct::IsolationLevel level,
                                                const model::CompiledHistory& ch);

/// Re-verify a witness against the canonical commit tests (used by tests to
/// guard against divergence between search-time and analysis-time logic).
ct::ExecutionVerdict verify_witness(ct::IsolationLevel level,
                                    const model::TransactionSet& txns,
                                    const model::Execution& e);
ct::ExecutionVerdict verify_witness(ct::IsolationLevel level,
                                    const model::CompiledHistory& ch,
                                    const model::Execution& e);

// --- per-transaction isolation levels --------------------------------------
//
// Every entry point below decides the mixed question ∃e ∀T CT_{A(T)}(T, e):
// each transaction's commit test runs at its own assigned level. A uniform
// assignment delegates verbatim to the global-level overload above, so
// uniform calls are verdict-, witness-, node-count- and diagnosis-identical
// to the existing API by construction (and oracle-checked by
// tests/mixed_levels_test.cpp). Genuinely mixed assignments dispatch:
//
//  * Direct      — eligible when every level present is in {RC, RA, PSI};
//    per-transaction constraint gating on the same single pass.
//  * Exhaustive  — sound and complete for any mix (the commit test is
//    modular in T; prefix pruning fixes a placed transaction's verdict at
//    its own level).
//  * Graph       — decisive when all levels present are in the timed SI
//    family (C-ORD pins the commit order for every transaction); otherwise
//    refutes at the meet of the present levels (sound by per-transaction
//    monotonicity) and verifies heuristic candidates per transaction.

/// Mixed-level check over one history. Dispatch mirrors check(level, ...).
CheckResult check(const ct::LevelAssignment& levels,
                  const model::TransactionSet& txns, const CheckOptions& opts = {});
CheckResult check(const ct::LevelAssignment& levels,
                  const model::CompiledHistory& ch, const CheckOptions& opts = {});

/// Mixed-level batch / incremental audits. The policy is resolved against
/// each item's own compilation (annotations + overrides + fallback);
/// LevelPolicy::uniform(level) reproduces the global-level overloads
/// bit-for-bit.
std::vector<CheckResult> check_batch(const ct::LevelPolicy& policy,
                                     std::span<const BatchItem> items,
                                     const CheckOptions& opts = {});
std::vector<CheckResult> check_batch(const ct::LevelPolicy& policy,
                                     std::span<const model::TransactionSet> histories,
                                     const CheckOptions& opts = {});
std::vector<CheckResult> check_incremental(const ct::LevelPolicy& policy,
                                           std::span<const model::TransactionSet> blocks,
                                           const CheckOptions& opts = {});

/// Forced-engine mixed entry points, mirroring the global-level ones.
CheckResult check_exhaustive(const ct::LevelAssignment& levels,
                             const model::CompiledHistory& ch,
                             const CheckOptions& opts = {});
CheckResult check_graph(const ct::LevelAssignment& levels,
                        const model::CompiledHistory& ch,
                        const CheckOptions& opts = {});
CheckResult check_direct(const ct::LevelAssignment& levels,
                         const model::CompiledHistory& ch,
                         const CheckOptions& opts = {});

/// True when the direct engine decides this assignment: every level present
/// is direct-eligible (RC, RA or PSI).
bool direct_eligible(const ct::LevelAssignment& levels);

/// Mixed-level refutation evidence: the diagnosis names the violated
/// transaction's own level.
std::optional<ReadDiagnosis> explain_refutation(const ct::LevelAssignment& levels,
                                                const model::CompiledHistory& ch,
                                                const model::Execution& candidate,
                                                std::string candidate_name);
std::optional<ReadDiagnosis> explain_refutation(const ct::LevelAssignment& levels,
                                                const model::CompiledHistory& ch);

/// Witness verification under a per-transaction assignment.
ct::ExecutionVerdict verify_witness(const ct::LevelAssignment& levels,
                                    const model::TransactionSet& txns,
                                    const model::Execution& e);
ct::ExecutionVerdict verify_witness(const ct::LevelAssignment& levels,
                                    const model::CompiledHistory& ch,
                                    const model::Execution& e);

}  // namespace crooks::checker
