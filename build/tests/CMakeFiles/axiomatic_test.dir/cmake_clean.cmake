file(REMOVE_RECURSE
  "CMakeFiles/axiomatic_test.dir/axiomatic_test.cpp.o"
  "CMakeFiles/axiomatic_test.dir/axiomatic_test.cpp.o.d"
  "axiomatic_test"
  "axiomatic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomatic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
