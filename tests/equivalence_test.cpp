// The paper's theorems, executable.
//
// For every CC mode and many seeds, a store run yields (a) a low-level Adya
// history with its authoritative version order and (b) pure client
// observations. The equivalence theorems (1, 3, 4, 6, 10 for the untimed
// levels; 2, 7, 8, 9 through the commit-order-pinned construction for the
// timed SI family) assert that phenomena verdicts on the history coincide
// with state-based checker verdicts on the observations. These tests run
// that assertion wholesale, plus: every mode satisfies its contract, the
// exhaustive oracle agrees on small runs, and verdicts are monotone over
// the hierarchy.
#include <gtest/gtest.h>

#include "adya/phenomena.hpp"
#include "checker/checker.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

namespace crooks {
namespace {

using checker::CheckOptions;
using checker::CheckResult;
using checker::Outcome;
using ct::IsolationLevel;
using store::CCMode;
using store::RunOptions;
using store::RunResult;

const CCMode kModes[] = {CCMode::kSerial,           CCMode::kTwoPhaseLocking,
                         CCMode::kWoundWait,        CCMode::kSnapshotIsolation,
                         CCMode::kReadAtomic,       CCMode::kReadCommitted,
                         CCMode::kReadUncommitted};

RunResult small_run(CCMode mode, std::uint64_t seed, std::size_t txns = 18,
                    std::size_t keys = 6) {
  const auto intents = wl::generate_mix({.transactions = txns,
                                         .keys = keys,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = seed});
  return store::run(intents, {.mode = mode,
                              .seed = seed * 7919 + 1,
                              .concurrency = 5,
                              .injected_abort_prob = 0.05,
                              .retries = 2});
}

struct ModeSeed {
  CCMode mode;
  std::uint64_t seed;
};

std::vector<ModeSeed> grid() {
  std::vector<ModeSeed> out;
  for (CCMode m : kModes) {
    for (std::uint64_t s = 1; s <= 8; ++s) out.push_back({m, s});
  }
  return out;
}

class StoreEquivalence : public ::testing::TestWithParam<ModeSeed> {};

/// Every mode satisfies its contracted isolation level, judged purely from
/// client observations (restricted to the store's install order).
TEST_P(StoreEquivalence, ModeSatisfiesItsContract) {
  const auto [mode, seed] = GetParam();
  const RunResult r = small_run(mode, seed);
  CheckOptions opts;
  opts.version_order = &r.version_order;
  const IsolationLevel contract = store::contract_of(mode);
  const CheckResult res = checker::check(contract, r.observations, opts);
  ASSERT_NE(res.outcome, Outcome::kUnknown) << res.detail;
  EXPECT_TRUE(res.satisfiable())
      << store::name_of(mode) << " run violates its contract "
      << ct::name_of(contract) << ": " << res.detail;
}

/// Theorems 1, 3, 4, 6, 10 (untimed levels) and 2/7/8/9 (timed family):
/// history-based verdict ≡ state-based verdict on the observations.
TEST_P(StoreEquivalence, PhenomenaMatchCommitTests) {
  const auto [mode, seed] = GetParam();
  const RunResult r = small_run(mode, seed);
  const adya::Phenomena p = adya::detect(r.history);
  CheckOptions opts;
  opts.version_order = &r.version_order;

  for (IsolationLevel level : ct::kAllLevels) {
    const adya::Verdict av = adya::satisfies(p, level);
    if (av == adya::Verdict::kInapplicable) continue;
    const CheckResult cr = checker::check(level, r.observations, opts);
    if (cr.outcome == Outcome::kUnknown) continue;  // engine gave up: no claim
    EXPECT_EQ(av == adya::Verdict::kSatisfied, cr.satisfiable())
        << store::name_of(mode) << " seed " << seed << " @ " << ct::name_of(level)
        << "\n  phenomena: " << p.to_string() << "\n  checker: " << cr.detail;
  }
}

/// The exhaustive oracle agrees with the fast engines on small runs.
TEST_P(StoreEquivalence, ExhaustiveOracleAgreesOnTinyRuns) {
  const auto [mode, seed] = GetParam();
  const RunResult r = small_run(mode, seed, /*txns=*/7, /*keys=*/4);
  CheckOptions opts;
  opts.version_order = &r.version_order;
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult fast = checker::check(level, r.observations, opts);
    const CheckResult oracle = checker::check_exhaustive(level, r.observations, opts);
    ASSERT_NE(oracle.outcome, Outcome::kUnknown);
    if (fast.outcome == Outcome::kUnknown) continue;
    EXPECT_EQ(fast.outcome, oracle.outcome)
        << store::name_of(mode) << " seed " << seed << " @ " << ct::name_of(level)
        << "\n  fast: " << fast.detail << "\n  oracle: " << oracle.detail;
  }
}

/// Hierarchy (Figure 4 + classic relations): if a run satisfies a stronger
/// level it satisfies every weaker one.
TEST_P(StoreEquivalence, VerdictsMonotoneOverHierarchy) {
  const auto [mode, seed] = GetParam();
  const RunResult r = small_run(mode, seed);
  CheckOptions opts;
  opts.version_order = &r.version_order;

  std::vector<std::pair<IsolationLevel, bool>> verdicts;
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult cr = checker::check(level, r.observations, opts);
    if (cr.outcome != Outcome::kUnknown) verdicts.emplace_back(level, cr.satisfiable());
  }
  for (auto [strong, ssat] : verdicts) {
    if (!ssat) continue;
    for (auto [weak, wsat] : verdicts) {
      if (ct::at_least_as_strong(strong, weak)) {
        EXPECT_TRUE(wsat) << store::name_of(mode) << " seed " << seed << ": "
                          << ct::name_of(strong) << " sat but " << ct::name_of(weak)
                          << " unsat";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, StoreEquivalence, ::testing::ValuesIn(grid()),
                         [](const ::testing::TestParamInfo<ModeSeed>& info) {
                           return std::string(store::name_of(info.param.mode)) + "_s" +
                                  std::to_string(info.param.seed);
                         });

/// Weaker modes must actually *exhibit* the anomalies that separate them
/// from stronger levels (otherwise the differentiation tests above are
/// vacuous). We search a few seeds for each separation.
template <typename Pred>
bool some_seed(CCMode mode, Pred&& pred, std::size_t txns = 40, std::size_t keys = 4,
               double abort_prob = 0.0) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto intents = wl::generate_mix({.transactions = txns,
                                           .keys = keys,
                                           .reads_per_txn = 2,
                                           .writes_per_txn = 2,
                                           .seed = seed});
    const RunResult r = store::run(intents, {.mode = mode,
                                             .seed = seed + 100,
                                             .concurrency = 8,
                                             .injected_abort_prob = abort_prob});
    if (pred(r)) return true;
  }
  return false;
}

TEST(StoreSeparation, ReadCommittedExhibitsLostUpdates) {
  EXPECT_TRUE(some_seed(CCMode::kReadCommitted, [](const RunResult& r) {
    return adya::detect(r.history).g_single;
  }));
}

TEST(StoreSeparation, SnapshotIsolationExhibitsWriteSkew) {
  EXPECT_TRUE(some_seed(CCMode::kSnapshotIsolation, [](const RunResult& r) {
    const adya::Phenomena p = adya::detect(r.history);
    return p.g2 && !p.g_single && !p.g1();
  }));
}

TEST(StoreSeparation, ReadUncommittedExhibitsDirtyReads) {
  EXPECT_TRUE(some_seed(
      CCMode::kReadUncommitted,
      [](const RunResult& r) { return adya::detect(r.history).g1a; },
      /*txns=*/40, /*keys=*/4, /*abort_prob=*/0.25));
}

TEST(StoreSeparation, ReadCommittedExhibitsFracturedReads) {
  EXPECT_TRUE(some_seed(CCMode::kReadCommitted, [](const RunResult& r) {
    return adya::detect(r.history).fractured;
  }));
}

TEST(StoreSeparation, ReadAtomicNeverFractures) {
  EXPECT_FALSE(some_seed(CCMode::kReadAtomic, [](const RunResult& r) {
    return adya::detect(r.history).fractured;
  }));
}

TEST(StoreSeparation, TwoPhaseLockingNeverExhibitsG2) {
  EXPECT_FALSE(some_seed(CCMode::kTwoPhaseLocking, [](const RunResult& r) {
    const adya::Phenomena p = adya::detect(r.history);
    return p.g1() || p.g2;
  }));
}

TEST(StoreSeparation, WoundWaitNeverExhibitsG2) {
  EXPECT_FALSE(some_seed(CCMode::kWoundWait, [](const RunResult& r) {
    const adya::Phenomena p = adya::detect(r.history);
    return p.g1() || p.g2;
  }));
}

}  // namespace
}  // namespace crooks
