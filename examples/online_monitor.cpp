// Streaming isolation monitoring: watch a store's commit stream live.
//
// A ReadCommitted store runs a contended workload while an OnlineChecker
// consumes its commit order transaction by transaction. The monitor reports
// the exact moment each isolation level dies, and what killed it — the
// operational side of "seeing is believing": every alarm is phrased in terms
// of states the clients actually observed.
//
//   $ ./online_monitor
#include <cstdio>
#include <map>

#include "checker/online.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

int main() {
  const auto intents = wl::generate_mix({.transactions = 60,
                                         .keys = 5,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = 12});
  const store::RunResult run = store::run(
      intents, {.mode = store::CCMode::kReadCommitted, .seed = 5, .concurrency = 8});

  // Replay the store's apply order into the monitor.
  std::vector<const model::Transaction*> order;
  for (const model::Transaction& t : run.observations) order.push_back(&t);
  std::sort(order.begin(), order.end(),
            [](auto* a, auto* b) { return a->commit_ts() < b->commit_ts(); });

  checker::OnlineChecker monitor;
  std::map<ct::IsolationLevel, std::size_t> died_at;
  std::size_t applied = 0;
  for (const model::Transaction* t : order) {
    monitor.append(*t);
    ++applied;
    for (ct::IsolationLevel level : ct::kAllLevels) {
      if (!monitor.status(level).ok && !died_at.contains(level)) {
        died_at[level] = applied;
        std::printf("after %3zu commits: %-18s DIED — %s\n", applied,
                    std::string(ct::name_of(level)).c_str(),
                    monitor.status(level).explanation.c_str());
      }
    }
  }

  std::printf("\nafter %zu commits, still alive:", applied);
  for (ct::IsolationLevel level : monitor.surviving_levels()) {
    std::printf(" %s", std::string(ct::name_of(level)).c_str());
  }
  std::printf("\n\n(a ReadCommitted store under contention: the strong levels die "
              "within a few\ncommits; ReadCommitted itself — its contract — survives "
              "the whole stream)\n");
  return 0;
}
