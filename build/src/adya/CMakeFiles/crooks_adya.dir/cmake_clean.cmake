file(REMOVE_RECURSE
  "CMakeFiles/crooks_adya.dir/axiomatic.cpp.o"
  "CMakeFiles/crooks_adya.dir/axiomatic.cpp.o.d"
  "CMakeFiles/crooks_adya.dir/graph.cpp.o"
  "CMakeFiles/crooks_adya.dir/graph.cpp.o.d"
  "CMakeFiles/crooks_adya.dir/observations.cpp.o"
  "CMakeFiles/crooks_adya.dir/observations.cpp.o.d"
  "CMakeFiles/crooks_adya.dir/phenomena.cpp.o"
  "CMakeFiles/crooks_adya.dir/phenomena.cpp.o.d"
  "libcrooks_adya.a"
  "libcrooks_adya.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_adya.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
