// Streaming isolation monitor.
//
// Real deployments don't audit after the fact — they watch the commit stream.
// OnlineChecker consumes committed transactions in the order the system
// applied them (the system's natural execution witness) and maintains, per
// tracked isolation level, whether the execution-so-far still satisfies
// every commit test. Appending is incremental: per-key version timelines
// grow append-only, a transaction's commit test is evaluated once at its
// append (placement fixes its verdict forever — the same observation that
// makes the exhaustive engine's pruning sound), and real-time/session
// recency clauses are re-checked retroactively when a late transaction
// reveals an inversion.
//
// The verdict is per-execution (CT_I over THIS order), the streaming
// analogue of ct::test_execution. A violation here means the system's own
// apply order is not a witness; the ∃e question can still be asked offline
// with checker::check.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "committest/levels.hpp"
#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "common/interval.hpp"
#include "model/compiled.hpp"
#include "model/transaction.hpp"

namespace crooks::checker {

class OnlineChecker {
 public:
  /// Track the given levels (default: all of them).
  explicit OnlineChecker(std::vector<ct::IsolationLevel> levels =
                             {ct::kAllLevels.begin(), ct::kAllLevels.end()});

  struct LevelStatus {
    bool ok = true;
    std::optional<TxnId> first_violation;
    std::string explanation;
  };

  /// Append the next committed transaction. Returns false if the id was
  /// already seen (the transaction is ignored).
  bool append(const model::Transaction& txn);

  /// Audit a whole history's apply order: append every transaction of `ch`
  /// in dense (declaration) order, returning how many were accepted. On a
  /// fresh checker this runs on the compiled ops directly — the writer of
  /// each read is already resolved to a dense index, so "has the writer been
  /// applied yet" is an integer compare instead of an id-hash probe, and the
  /// phantom / internal / unknown-writer branches are precomputed flags. On
  /// a non-empty checker it falls back to per-transaction append() (writer
  /// resolution must then consult the whole mixed stream).
  std::size_t append_all(const model::CompiledHistory& ch);

  const LevelStatus& status(ct::IsolationLevel level) const;
  bool all_ok() const;
  std::size_t size() const { return txns_.size(); }

  /// The levels still satisfied by the execution so far.
  std::vector<ct::IsolationLevel> surviving_levels() const;

 private:
  struct OpView {
    StateInterval rs;
    bool internal = false;
  };

  struct Placed {
    model::Transaction txn;
    StateIndex state = 0;  // 1-based
    std::vector<OpView> ops;
    DynamicBitset prec;  // populated only when PSI is tracked
  };

  bool tracking(ct::IsolationLevel level) const {
    return statuses_.contains(level);
  }
  void violate(ct::IsolationLevel level, TxnId txn, std::string why);

  OpView analyze_op(const model::Transaction& t, std::size_t op_index,
                    StateIndex parent) const;
  void evaluate_new(Placed& p);
  void check_retroactive_inversions(const Placed& p);

  /// Shared tail of append / append_all: evaluate the commit tests for the
  /// placed transaction, then install it into the index and timelines.
  void commit_placed(Placed p);

  /// Timeline of `k`, or null when no applied transaction wrote it yet.
  const std::vector<std::pair<StateIndex, std::size_t>>* timeline_of(Key k) const {
    const model::KeyIdx ki = keys_.find(k);
    return ki == model::kNoKeyIdx || timelines_[ki].empty() ? nullptr
                                                            : &timelines_[ki];
  }

  std::map<ct::IsolationLevel, LevelStatus> statuses_;
  std::vector<Placed> txns_;  // in append (= execution) order
  std::unordered_map<TxnId, std::size_t> index_;
  // Keys interned as the stream reveals them; timelines indexed by KeyIdx.
  model::KeyInterner keys_;
  std::vector<std::vector<std::pair<StateIndex, std::size_t>>> timelines_;
};

}  // namespace crooks::checker
