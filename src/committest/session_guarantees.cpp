#include "committest/session_guarantees.hpp"

#include <algorithm>

#include "model/execution.hpp"

namespace crooks::ct {

using model::Operation;
using model::ReadStateAnalysis;
using model::Transaction;
using model::TxnAnalysis;

SessionTester::SessionTester(const ReadStateAnalysis& analysis) : a_(&analysis) {}

std::vector<std::size_t> SessionTester::session_predecessors(std::size_t dense) const {
  const Transaction& t = a_->txns().at(dense);
  std::vector<std::size_t> preds;
  if (t.session() == kNoSession) return preds;
  for (std::size_t d = 0; d < a_->txns().size(); ++d) {
    if (d == dense) continue;
    const Transaction& p = a_->txns().at(d);
    if (p.session() == t.session() && time_precedes(p, t)) preds.push_back(d);
  }
  return preds;
}

CommitTestResult SessionTester::test(SessionGuarantee g, std::size_t dense) const {
  const Transaction& t = a_->txns().at(dense);
  const TxnAnalysis& ta = a_->txn(dense);

  for (std::size_t pd : session_predecessors(dense)) {
    const Transaction& pred = a_->txns().at(pd);
    const TxnAnalysis& pa = a_->txn(pd);

    switch (g) {
      case SessionGuarantee::kReadMyWrites:
        // Every read of a key the predecessor wrote must be able to read
        // from the predecessor's state or later.
        for (std::size_t i = 0; i < t.ops().size(); ++i) {
          const Operation& op = t.ops()[i];
          if (!op.is_read() || !pred.writes(op.key)) continue;
          if (ta.ops[i].rs.empty() || ta.ops[i].rs.last < pa.state) {
            return CommitTestResult::fail(
                "read-my-writes: " + model::to_string(op) + " returns a version "
                "older than the one this session wrote in " +
                crooks::to_string(pred.id()));
          }
        }
        break;

      case SessionGuarantee::kMonotonicReads:
        // T must not read a version of k older than any version of k the
        // predecessor read: each of T's reads must extend at least to the
        // first read state of every predecessor read of the same key.
        for (std::size_t i = 0; i < t.ops().size(); ++i) {
          const Operation& op = t.ops()[i];
          if (!op.is_read() || ta.ops[i].internal) continue;
          for (std::size_t j = 0; j < pred.ops().size(); ++j) {
            const Operation& prev = pred.ops()[j];
            if (!prev.is_read() || pa.ops[j].internal || prev.key != op.key) continue;
            if (ta.ops[i].rs.empty() || pa.ops[j].rs.empty() ||
                ta.ops[i].rs.last < pa.ops[j].rs.first) {
              return CommitTestResult::fail(
                  "monotonic-reads: " + model::to_string(op) +
                  " reads an older version than " + crooks::to_string(pred.id()) +
                  "'s " + model::to_string(prev));
            }
          }
        }
        break;

      case SessionGuarantee::kMonotonicWrites:
        // The predecessor's state must precede T's state in the execution.
        if (pa.state >= ta.state) {
          return CommitTestResult::fail(
              "monotonic-writes: " + crooks::to_string(pred.id()) +
              " is applied after this transaction despite preceding it in the "
              "session");
        }
        break;

      case SessionGuarantee::kWritesFollowReads:
        // Writers the predecessor observed must precede T's state.
        for (std::size_t j = 0; j < pred.ops().size(); ++j) {
          const Operation& prev = pred.ops()[j];
          if (!prev.is_read() || pa.ops[j].internal) continue;
          const TxnId w = prev.value.writer;
          if (w == kInitTxn || !a_->txns().contains(w)) continue;
          const TxnAnalysis& wa = a_->txn(w);
          if (wa.state >= ta.state) {
            return CommitTestResult::fail(
                "writes-follow-reads: " + crooks::to_string(w) + ", observed by " +
                crooks::to_string(pred.id()) + " earlier in the session, is "
                "applied after this transaction");
          }
        }
        break;
    }
  }
  return CommitTestResult::pass();
}

ExecutionVerdict SessionTester::test_all(SessionGuarantee g) const {
  for (std::size_t d = 0; d < a_->size(); ++d) {
    if (CommitTestResult r = test(g, d); !r) {
      return {false, a_->txns().at(d).id(),
              crooks::to_string(a_->txns().at(d).id()) + ": " + r.violation};
    }
  }
  return {true, std::nullopt, {}};
}

ExecutionVerdict check_session_guarantee(SessionGuarantee g,
                                         const model::TransactionSet& txns) {
  if (txns.empty()) return {true, std::nullopt, {}};
  std::vector<const Transaction*> sorted;
  sorted.reserve(txns.size());
  for (const Transaction& t : txns) {
    if (!t.has_timestamps()) {
      return {false, t.id(),
              "session guarantees need the time oracle; " +
                  crooks::to_string(t.id()) + " has no timestamps"};
    }
    sorted.push_back(&t);
  }
  std::sort(sorted.begin(), sorted.end(), [](const Transaction* a, const Transaction* b) {
    return a->commit_ts() < b->commit_ts();
  });
  std::vector<TxnId> order;
  order.reserve(sorted.size());
  for (const Transaction* t : sorted) order.push_back(t->id());
  const model::Execution e(txns, std::move(order));
  const model::ReadStateAnalysis analysis(txns, e);
  return SessionTester(analysis).test_all(g);
}

}  // namespace crooks::ct
