// Compiled-form counterparts of the Adya layer: install orders, DSG
// construction and phenomena detection straight from model::CompiledHistory,
// without lifting observations into a History first. The graph engine's hot
// path runs entirely on these; from_observations survives for the cold
// explanation path and the equivalence tests.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "adya/graph.hpp"
#include "adya/phenomena.hpp"

namespace crooks::adya {

namespace {

/// Does some read observe `id` as an unknown (non-member) writer? The
/// History path materializes such writers as synthetic *aborted*
/// transactions, which changes which validation error fires.
bool is_dangling_writer(const model::CompiledHistory& ch, TxnId id) {
  for (model::TxnIdx d = 0; d < ch.size(); ++d) {
    const model::OpsView cops = ch.ops(d);
    const auto& ops = ch.txns().at(d).ops();
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if ((cops.flags(i) & model::kOpUnknownWriter) != 0 &&
          ops[i].value.writer == id) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

InstallOrders compile_install_orders(
    const model::CompiledHistory& ch,
    const std::unordered_map<Key, std::vector<TxnId>>* version_order) {
  const model::TransactionSet& txns = ch.txns();
  InstallOrders io;
  io.by_key.resize(ch.key_count());

  // Complete the order for keys with at most one committed writer; a
  // multi-writer key must be covered (from_observations' precondition).
  for (model::KeyIdx k = 0; k < ch.key_count(); ++k) {
    const auto writers = ch.writers_of(k);
    if (writers.empty()) continue;
    if (version_order != nullptr && version_order->contains(ch.keys().key_of(k))) {
      continue;
    }
    if (writers.size() > 1) {
      throw std::invalid_argument("version order missing for multi-writer key " +
                                  crooks::to_string(ch.keys().key_of(k)));
    }
    io.by_key[k].assign(writers.begin(), writers.end());
  }

  // Validate and intern the explicit entries (History::validate part one).
  if (version_order != nullptr) {
    for (const auto& [key, order] : *version_order) {
      const model::KeyIdx k = ch.keys().find(key);
      std::vector<model::TxnIdx> interned;
      interned.reserve(order.size());
      for (TxnId id : order) {
        if (!txns.contains(id)) {
          if (is_dangling_writer(ch, id)) {
            throw std::invalid_argument(
                "version order must contain exactly the committed writers of the key");
          }
          throw std::invalid_argument("version order names unknown transaction");
        }
        const auto d = static_cast<model::TxnIdx>(txns.dense_index_of(id));
        if (k == model::kNoKeyIdx || !ch.writes_key(d, k)) {
          throw std::invalid_argument(
              "version order must contain exactly the committed writers of the key");
        }
        interned.push_back(d);
      }
      if (k != model::kNoKeyIdx) io.by_key[k] = std::move(interned);
    }
  }

  // Completeness: << is a *total* order on committed versions (Def. A.1),
  // so every committed final writer of a key must appear in its order.
  for (model::TxnIdx d = 0; d < ch.size(); ++d) {
    for (model::KeyIdx k : ch.write_keys(d)) {
      const std::vector<model::TxnIdx>& order = io.by_key[k];
      if (std::find(order.begin(), order.end(), d) == order.end()) {
        throw std::invalid_argument("version order misses a committed writer of " +
                                    crooks::to_string(ch.keys().key_of(k)));
      }
    }
  }
  return io;
}

Dsg::Dsg(const model::CompiledHistory& ch, const InstallOrders& io) {
  const std::size_t n = ch.size();
  ids_.reserve(n);
  for (model::TxnIdx d = 0; d < n; ++d) {
    node_.emplace(ch.id_of(d), ids_.size());
    ids_.push_back(ch.id_of(d));
  }
  adj_.resize(n);

  auto add_edge = [&](std::size_t from, std::size_t to, EdgeKind kind, Key key) {
    if (from == to) return;
    adj_[from].push_back(edges_.size());
    edges_.push_back({from, to, kind, key});
  };

  // Write-dependencies: consecutive installed versions (Definition A.2).
  for (model::KeyIdx k = 0; k < io.by_key.size(); ++k) {
    const std::vector<model::TxnIdx>& inst = io.by_key[k];
    for (std::size_t i = 0; i + 1 < inst.size(); ++i) {
      add_edge(inst[i], inst[i + 1], kWW, ch.keys().key_of(k));
    }
  }

  // Read- and anti-dependencies. Only reads of *installed* versions create
  // DSG edges; the dirty / intermediate skips are precomputed flags.
  for (model::TxnIdx d = 0; d < n; ++d) {
    const model::OpsView cops = ch.ops(d);
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & (model::kOpWrite | model::kOpSelfWriter)) != 0) continue;
      const model::KeyIdx key = cops.key(i);
      const std::vector<model::TxnIdx>& inst = io.by_key[key];
      if ((m & model::kOpInitWriter) != 0) {
        // Read of ⊥: anti-depends on the first installer of the key.
        if (!inst.empty()) add_edge(d, inst.front(), kRW, ch.keys().key_of(key));
        continue;
      }
      if ((m & model::kOpUnknownWriter) != 0) continue;  // G1a
      if ((m & (model::kOpPhantom | model::kOpWriterMissesKey)) != 0) {
        continue;  // G1b: observed version is not the writer's final one
      }
      const model::TxnIdx w = cops.writer(i);
      auto it = std::find(inst.begin(), inst.end(), w);
      if (it == inst.end()) continue;
      add_edge(w, d, kWR, ch.keys().key_of(key));
      // Anti-dependency to the installer of the *next* version, if any.
      const std::size_t next = static_cast<std::size_t>(it - inst.begin()) + 1;
      if (next < inst.size()) add_edge(d, inst[next], kRW, ch.keys().key_of(key));
    }
  }
}

bool Dsg::add_start_edges(const model::CompiledHistory& ch) {
  if (!ch.all_timestamped()) return false;
  const model::CompiledHistory::Adjacency& adj = ch.adjacency();
  for (model::TxnIdx b = 0; b < ch.size(); ++b) {
    for (model::TxnIdx a : adj.rt_preds.row(b)) {
      adj_[a].push_back(edges_.size());
      edges_.push_back({a, b, kSD, Key{}});
    }
  }
  return true;
}

bool Dsg::add_realtime_edges(const model::CompiledHistory& ch) {
  if (!ch.all_timestamped()) return false;
  const model::CompiledHistory::Adjacency& adj = ch.adjacency();
  for (model::TxnIdx b = 0; b < ch.size(); ++b) {
    for (model::TxnIdx a : adj.rt_preds.row(b)) {
      adj_[a].push_back(edges_.size());
      edges_.push_back({a, b, kRT, Key{}});
    }
  }
  return true;
}

namespace {

// Fractured reads (Appendix B.1): T reads x written (finally) by T_i; T_i
// also finally wrote y; T reads a version of y strictly older than T_i's.
bool detect_fractured(const model::CompiledHistory& ch, const InstallOrders& io) {
  for (model::TxnIdx d = 0; d < ch.size(); ++d) {
    const model::OpsView ops = ch.ops(d);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::uint8_t m1 = ops.flags(i);
      if ((m1 & (model::kOpWrite | model::kOpInitWriter | model::kOpSelfWriter |
                 model::kOpUnknownWriter)) != 0) {
        continue;
      }
      if ((m1 & (model::kOpPhantom | model::kOpWriterMissesKey)) != 0) {
        continue;  // r1 must observe the writer's final version
      }
      const model::TxnIdx wi = ops.writer(i);
      for (std::size_t j = 0; j < ops.size(); ++j) {
        const std::uint8_t m2 = ops.flags(j);
        if ((m2 & (model::kOpWrite | model::kOpSelfWriter)) != 0) continue;
        if (!ch.writes_key(wi, ops.key(j))) continue;
        const std::vector<model::TxnIdx>& inst = io.by_key[ops.key(j)];
        // Install position of r2's observed writer: -1 for ⊥, skip if absent.
        std::ptrdiff_t read_pos = -1;
        if ((m2 & model::kOpInitWriter) == 0) {
          if ((m2 & model::kOpUnknownWriter) != 0) continue;
          auto it = std::find(inst.begin(), inst.end(), ops.writer(j));
          if (it == inst.end()) continue;
          read_pos = it - inst.begin();
        }
        auto wit = std::find(inst.begin(), inst.end(), wi);
        if (wit == inst.end()) continue;
        if (read_pos < wit - inst.begin()) return true;
      }
    }
  }
  return false;
}

}  // namespace

namespace {

/// Which phenomena a level's verdict actually consults (the clauses of
/// satisfies(p, level)). Everything defaults off; detect_scoped() skips the
/// machinery behind anything not requested.
struct Needs {
  bool g0 = false;
  bool g1 = false;        // g1a + g1b + g1c
  bool g2 = false;
  bool g_single = false;
  bool fractured = false;
  bool si = false;        // g_si_a + g_si_b (start-dependency edges)
  bool rt = false;        // rt_cycle (real-time edges)
};

Needs needs_of(ct::IsolationLevel level) {
  using L = ct::IsolationLevel;
  Needs n;
  switch (level) {
    case L::kReadUncommitted:
      n.g0 = true;
      break;
    case L::kReadCommitted:
      n.g1 = true;
      break;
    case L::kReadAtomic:
      n.g1 = n.fractured = true;
      break;
    case L::kPSI:
      n.g1 = n.g_single = true;
      break;
    case L::kAnsiSI:
      n.g1 = n.si = true;
      break;
    case L::kSerializable:
      n.g1 = n.g2 = true;
      break;
    case L::kStrictSerializable:
      n.g1 = n.g2 = n.rt = true;
      break;
    case L::kAdyaSI:
    case L::kSessionSI:
    case L::kStrongSI:
      break;  // kInapplicable: no phenomena consulted
  }
  return n;
}

Phenomena detect_scoped(const model::CompiledHistory& ch, const InstallOrders& io,
                        const Needs& want) {
  Phenomena p;

  // G1a / G1b are single flag tests: a dirty read *is* an unknown-writer op,
  // an intermediate read *is* a phantom or writer-misses-key op.
  if (want.g1) {
    for (model::TxnIdx d = 0; d < ch.size(); ++d) {
      const model::OpsView cops = ch.ops(d);
      for (std::size_t i = 0; i < cops.size(); ++i) {
        const std::uint8_t m = cops.flags(i);
        if ((m & (model::kOpWrite | model::kOpInitWriter | model::kOpSelfWriter)) != 0) {
          continue;
        }
        if ((m & model::kOpUnknownWriter) != 0) {
          p.g1a = true;
        } else if ((m & (model::kOpPhantom | model::kOpWriterMissesKey)) != 0) {
          p.g1b = true;
        }
      }
    }
  }
  if (want.fractured) p.fractured = detect_fractured(ch, io);

  const bool want_dsg = want.g0 || want.g1 || want.g2 || want.g_single ||
                        want.si || want.rt;
  if (!want_dsg) return p;

  Dsg dsg(ch, io);
  if (want.g0) p.g0 = dsg.has_cycle(kWW);
  if (want.g1) p.g1c = dsg.has_cycle(kDependency);
  // G2 = some cycle contains an anti-dependency edge ⟺ some rw edge (u,v)
  // is closed by a path v →* u over arbitrary DSG edges. With the path
  // restricted to dependency edges the cycle has *exactly* one rw: G-Single.
  if (want.g2) p.g2 = dsg.cycle_with_exactly_one(kRW, kAllDsg);
  if (want.g_single) p.g_single = dsg.cycle_with_exactly_one(kRW, kDependency);

  if (want.si) {
    Dsg ssg = dsg;  // start / real-time edges are additive: copy, don't rebuild
    if (ssg.add_start_edges(ch)) {
      // G-SIa: a ww/wr edge without a corresponding start-dependency edge.
      bool sia = false;
      for (const Edge& e : ssg.edges()) {
        if (e.kind != kWW && e.kind != kWR) continue;
        if (!(ch.commit_ts(static_cast<model::TxnIdx>(e.from)) <
              ch.start_ts(static_cast<model::TxnIdx>(e.to)))) {
          sia = true;
          break;
        }
      }
      p.g_si_a = sia;
      p.g_si_b = ssg.cycle_with_exactly_one(kRW, kDependency | kSD);
    }
  }

  if (want.rt) {
    Dsg rt = dsg;
    if (rt.add_realtime_edges(ch)) {
      p.rt_cycle = rt.has_cycle(kAllDsg | kRT);
    }
  }
  return p;
}

}  // namespace

Phenomena detect(const model::CompiledHistory& ch, const InstallOrders& io) {
  Needs all;
  all.g0 = all.g1 = all.g2 = all.g_single = all.fractured = all.si = all.rt = true;
  return detect_scoped(ch, io, all);
}

Phenomena detect(const model::CompiledHistory& ch, const InstallOrders& io,
                 ct::IsolationLevel level) {
  return detect_scoped(ch, io, needs_of(level));
}

}  // namespace crooks::adya
