// Transactions of the state-based model (§3).
//
// A transaction T is a tuple (Σ_T, →to): a totally ordered set of read and
// write operations. We additionally carry the attributes other isolation
// levels need: the time oracle's start/commit timestamps (strict
// serializability, the Strong/Session/ANSI SI family), a session id
// (Session SI / PC-SI), and an origin site (PSI).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "committest/levels.hpp"
#include "common/ids.hpp"
#include "model/operation.hpp"

namespace crooks::model {

class Transaction {
 public:
  Transaction() = default;
  Transaction(TxnId id, std::vector<Operation> ops, SessionId session = kNoSession,
              SiteId site = SiteId{0}, Timestamp start = kNoTimestamp,
              Timestamp commit = kNoTimestamp,
              std::optional<ct::IsolationLevel> level = std::nullopt)
      : id_(id),
        session_(session),
        site_(site),
        start_(start),
        commit_(commit),
        level_(level),
        ops_(std::move(ops)) {
    for (const Operation& op : ops_) {
      if (op.is_write()) {
        if (!write_set_.insert(op.key).second) {
          throw std::invalid_argument("transaction " + crooks::to_string(id_) +
                                      " writes key " + crooks::to_string(op.key) +
                                      " more than once");
        }
      } else {
        read_set_.insert(op.key);
      }
    }
  }

  TxnId id() const { return id_; }
  SessionId session() const { return session_; }
  SiteId site() const { return site_; }

  /// Real-time timestamps from the time oracle O; kNoTimestamp when the
  /// client-centric observation carries no timing information.
  Timestamp start_ts() const { return start_; }
  Timestamp commit_ts() const { return commit_; }
  bool has_timestamps() const {
    return start_ != kNoTimestamp && commit_ != kNoTimestamp;
  }

  /// The isolation level this transaction was declared to run at (the
  /// observation format's `level=` annotation), when the client recorded one.
  /// Annotations are inert to every global-level API: only the
  /// ct::LevelAssignment entry points consult them.
  std::optional<ct::IsolationLevel> level() const { return level_; }

  const std::vector<Operation>& ops() const { return ops_; }
  const std::unordered_set<Key>& read_set() const { return read_set_; }
  const std::unordered_set<Key>& write_set() const { return write_set_; }

  bool writes(Key k) const { return write_set_.contains(k); }
  bool reads(Key k) const { return read_set_.contains(k); }
  bool is_read_only() const { return write_set_.empty(); }

  /// T1 <_s T2 iff T1.commit < T2.start (§3). False when timestamps are
  /// missing: without the oracle there is no real-time precedence.
  friend bool time_precedes(const Transaction& a, const Transaction& b) {
    return a.commit_ts() != kNoTimestamp && b.start_ts() != kNoTimestamp &&
           a.commit_ts() < b.start_ts();
  }

 private:
  TxnId id_{};
  SessionId session_ = kNoSession;
  SiteId site_{};
  Timestamp start_ = kNoTimestamp;
  Timestamp commit_ = kNoTimestamp;
  std::optional<ct::IsolationLevel> level_;
  std::vector<Operation> ops_;
  std::unordered_set<Key> read_set_;
  std::unordered_set<Key> write_set_;
};

/// Fluent builder for tests, examples, and generators.
class TxnBuilder {
 public:
  explicit TxnBuilder(TxnId id) : id_(id) {}
  explicit TxnBuilder(std::uint64_t id) : id_(TxnId{id}) {}

  TxnBuilder& read(Key k, TxnId observed_writer) {
    ops_.push_back(Operation::read(k, observed_writer));
    return *this;
  }
  TxnBuilder& read(std::uint64_t k, std::uint64_t observed_writer) {
    return read(Key{k}, TxnId{observed_writer});
  }
  TxnBuilder& read_intermediate(Key k, TxnId observed_writer) {
    ops_.push_back(Operation::read_intermediate(k, observed_writer));
    return *this;
  }
  TxnBuilder& write(Key k) {
    ops_.push_back(Operation::write(k, id_));
    return *this;
  }
  TxnBuilder& write(std::uint64_t k) { return write(Key{k}); }

  TxnBuilder& session(SessionId s) {
    session_ = s;
    return *this;
  }
  TxnBuilder& site(SiteId s) {
    site_ = s;
    return *this;
  }
  TxnBuilder& at(Timestamp start, Timestamp commit) {
    start_ = start;
    commit_ = commit;
    return *this;
  }
  TxnBuilder& level(ct::IsolationLevel l) {
    level_ = l;
    return *this;
  }

  Transaction build() const {
    return Transaction(id_, ops_, session_, site_, start_, commit_, level_);
  }

 private:
  TxnId id_;
  SessionId session_ = kNoSession;
  SiteId site_{0};
  Timestamp start_ = kNoTimestamp;
  Timestamp commit_ = kNoTimestamp;
  std::optional<ct::IsolationLevel> level_;
  std::vector<Operation> ops_;
};

/// An indexable collection of committed transactions — the set 𝒯 over which
/// executions are defined. Provides a dense index so analyses can use flat
/// arrays instead of hash maps on TxnId. Append-only: transactions are never
/// removed or reordered, so dense indices are stable forever (the growable
/// CompiledHistory and the streaming OnlineChecker rely on this).
class TransactionSet {
 public:
  TransactionSet() = default;
  explicit TransactionSet(std::vector<Transaction> txns) : txns_(std::move(txns)) {
    index_.reserve(txns_.size());
    for (std::size_t i = 0; i < txns_.size(); ++i) {
      TxnId id = txns_[i].id();
      if (id == kInitTxn) {
        throw std::invalid_argument("TxnId 0 is reserved for the initial state");
      }
      if (!index_.emplace(id, i).second) {
        throw std::invalid_argument("duplicate transaction id " + crooks::to_string(id));
      }
    }
  }

  /// Append one committed transaction (streaming construction — used by the
  /// growable CompiledHistory). Same validation as the constructor.
  void append(Transaction t) {
    const TxnId id = t.id();
    if (id == kInitTxn) {
      throw std::invalid_argument("TxnId 0 is reserved for the initial state");
    }
    if (!index_.emplace(id, txns_.size()).second) {
      throw std::invalid_argument("duplicate transaction id " + crooks::to_string(id));
    }
    txns_.push_back(std::move(t));
  }

  std::size_t size() const { return txns_.size(); }
  bool empty() const { return txns_.empty(); }

  const Transaction& at(std::size_t dense_index) const { return txns_.at(dense_index); }
  const Transaction& by_id(TxnId id) const { return txns_.at(dense_index_of(id)); }

  bool contains(TxnId id) const { return index_.contains(id); }

  std::size_t dense_index_of(TxnId id) const {
    auto it = index_.find(id);
    if (it == index_.end()) {
      throw std::out_of_range("unknown transaction " + crooks::to_string(id));
    }
    return it->second;
  }

  /// npos-returning variant: one hash probe for callers on a miss-tolerant
  /// path (contains() + dense_index_of() would probe twice).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t dense_index_if(TxnId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? npos : it->second;
  }

  auto begin() const { return txns_.begin(); }
  auto end() const { return txns_.end(); }

  /// Epoch retirement (growable CompiledHistory only): replace the payloads
  /// of transactions [first, upto) with id-and-scalars stubs — the ops
  /// vector and read/write sets, which dominate a Transaction's footprint,
  /// are released; id, session, site, timestamps and level survive. The
  /// id→dense index is NOT touched, so dense indices stay stable and
  /// duplicate detection over retired ids keeps working forever. Callers
  /// that need a retired transaction's footprint must use the compiled
  /// history's retained columns (write_keys / writes_key), never at().
  void retire_payloads(std::size_t first, std::size_t upto) {
    upto = std::min(upto, txns_.size());
    for (std::size_t i = first; i < upto; ++i) {
      Transaction& t = txns_[i];
      t = Transaction(t.id(), {}, t.session(), t.site(), t.start_ts(),
                      t.commit_ts(), t.level());
    }
  }

 private:
  std::vector<Transaction> txns_;
  std::unordered_map<TxnId, std::size_t> index_;
};

}  // namespace crooks::model
