#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace crooks::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> on = [] {
    const char* off = std::getenv("CROOKS_OBS_OFF");
    return !(off != nullptr && off[0] == '1');
  }();
  return on;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Doubles render without trailing noise: integers as integers, everything
/// else with enough precision to round-trip bucket bounds.
std::string fmt_double(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

// ------------------------------------------------------------------ Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.reserve(detail::kShards);
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    buckets_.push_back(
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1));
    for (std::size_t b = 0; b <= bounds_.size(); ++b) buckets_.back()[b] = 0;
  }
}

void Histogram::observe_n(double v, std::uint64_t n) {
  if (!enabled() || n == 0) return;
  const std::size_t slot = detail::shard_slot();
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[slot][b].fetch_add(n, std::memory_order_relaxed);
  count_[slot].v.fetch_add(n, std::memory_order_relaxed);
  const double add = v * static_cast<double>(n);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + add, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      out[b] += buckets_[s][b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const detail::Shard& s : count_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      buckets_[s][b].store(0, std::memory_order_relaxed);
    }
    count_[s].v.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

std::span<const double> latency_buckets_seconds() {
  static const std::array<double, 10> b = {1e-6, 4e-6,  16e-6, 64e-6, 256e-6,
                                           1e-3, 4e-3,  16e-3, 250e-3, 10.0};
  return b;
}

std::span<const double> depth_buckets() {
  static const std::array<double, 13> b = {1,  2,   4,   8,    16,   32,  64,
                                           128, 256, 512, 1024, 2048, 4096};
  return b;
}

std::span<const double> size_buckets() {
  static const std::array<double, 13> b = {1,      4,      16,      64,     256,
                                           1024,   4096,   16384,   65536,  262144,
                                           1048576, 4194304, 16777216};
  return b;
}

// ------------------------------------------------------------------- Registry

std::string series_key(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  std::string key(name);
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += escape_label_value(v);
    key += '"';
  }
  key += '}';
  return key;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = series_.try_emplace(series_key(name, labels));
  Family& f = it->second;
  if (inserted) {
    f.name = std::string(name);
    f.help = std::string(help);
    f.kind = Family::Kind::kCounter;
    f.labels = std::move(labels);
    f.counter = std::make_unique<Counter>();
  }
  return *f.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = series_.try_emplace(series_key(name, labels));
  Family& f = it->second;
  if (inserted) {
    f.name = std::string(name);
    f.help = std::string(help);
    f.kind = Family::Kind::kGauge;
    f.labels = std::move(labels);
    f.gauge = std::make_unique<Gauge>();
  }
  return *f.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::span<const double> upper_bounds,
                               Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = series_.try_emplace(series_key(name, labels));
  Family& f = it->second;
  if (inserted) {
    f.name = std::string(name);
    f.help = std::string(help);
    f.kind = Family::Kind::kHistogram;
    f.labels = std::move(labels);
    if (upper_bounds.empty()) upper_bounds = latency_buckets_seconds();
    f.histogram = std::make_unique<Histogram>(
        std::vector<double>(upper_bounds.begin(), upper_bounds.end()));
  }
  return *f.histogram;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  // Emit HELP/TYPE once per family, in series order (the map is sorted by
  // key, so every series of a family is contiguous).
  std::string last_family;
  for (const auto& [key, f] : series_) {
    if (f.name != last_family) {
      last_family = f.name;
      if (!f.help.empty()) out << "# HELP " << f.name << ' ' << f.help << '\n';
      out << "# TYPE " << f.name << ' '
          << (f.kind == Family::Kind::kCounter    ? "counter"
              : f.kind == Family::Kind::kGauge    ? "gauge"
                                                  : "histogram")
          << '\n';
    }
    switch (f.kind) {
      case Family::Kind::kCounter:
        out << key << ' ' << f.counter->value() << '\n';
        break;
      case Family::Kind::kGauge:
        out << key << ' ' << f.gauge->value() << '\n';
        break;
      case Family::Kind::kHistogram: {
        const std::vector<std::uint64_t> counts = f.histogram->bucket_counts();
        const std::vector<double>& bounds = f.histogram->bounds();
        auto labeled = [&](std::string_view le) {
          Labels l = f.labels;
          l.emplace_back("le", std::string(le));
          return series_key(f.name + "_bucket", l);
        };
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < bounds.size(); ++b) {
          cum += counts[b];
          out << labeled(fmt_double(bounds[b])) << ' ' << cum << '\n';
        }
        cum += counts[bounds.size()];
        out << labeled("+Inf") << ' ' << cum << '\n';
        out << series_key(f.name + "_sum", f.labels) << ' '
            << fmt_double(f.histogram->sum()) << '\n';
        out << series_key(f.name + "_count", f.labels) << ' '
            << f.histogram->count() << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters, gauges, histograms;
  bool c1 = true, g1 = true, h1 = true;
  auto jkey = [](const std::string& key) {
    std::string out = "\"";
    for (char c : key) {
      if (c == '\\' || c == '"') out.push_back('\\');
      out.push_back(c);
    }
    out += "\"";
    return out;
  };
  for (const auto& [key, f] : series_) {
    switch (f.kind) {
      case Family::Kind::kCounter:
        counters << (c1 ? "" : ",") << jkey(key) << ':' << f.counter->value();
        c1 = false;
        break;
      case Family::Kind::kGauge:
        gauges << (g1 ? "" : ",") << jkey(key) << ':' << f.gauge->value();
        g1 = false;
        break;
      case Family::Kind::kHistogram: {
        const std::vector<std::uint64_t> counts = f.histogram->bucket_counts();
        const std::vector<double>& bounds = f.histogram->bounds();
        histograms << (h1 ? "" : ",") << jkey(key) << ":{\"buckets\":[";
        for (std::size_t b = 0; b < bounds.size(); ++b) {
          histograms << (b == 0 ? "" : ",") << '[' << fmt_double(bounds[b])
                     << ',' << counts[b] << ']';
        }
        histograms << (bounds.empty() ? "" : ",") << "[\"+Inf\","
                   << counts[bounds.size()] << "]],\"sum\":"
                   << fmt_double(f.histogram->sum())
                   << ",\"count\":" << f.histogram->count() << '}';
        h1 = false;
        break;
      }
    }
  }
  return "{\"counters\":{" + counters.str() + "},\"gauges\":{" + gauges.str() +
         "},\"histograms\":{" + histograms.str() + "}}";
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, f] : series_) {
    if (f.counter) f.counter->reset();
    if (f.gauge) f.gauge->reset();
    if (f.histogram) f.histogram->reset();
  }
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives every static user
  return *r;
}

// ---------------------------------------------------------------- ScopedTimer

ScopedTimer::ScopedTimer(Histogram& h) : h_(&h) {
  if (enabled()) start_ns_ = now_ns();
}

double ScopedTimer::elapsed() const {
  return start_ns_ == 0 ? 0.0
                        : static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ != 0) h_->observe(elapsed());
}

}  // namespace crooks::obs
