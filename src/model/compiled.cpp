#include "model/compiled.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::model {

namespace {

obs::Counter& compiled_txns_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_compile_txns_total", "Transactions interned by compile_block");
  return c;
}
obs::Counter& compiled_deltas_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_compile_deltas_total", "CompiledHistory::extend calls");
  return c;
}
obs::Histogram& extend_seconds() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "crooks_compile_extend_seconds",
      "Latency of one CompiledHistory::extend (compile + re-resolve)");
  return h;
}
obs::Counter& retired_txns_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_compile_retired_txns_total",
      "Transactions folded into the base state by CompiledHistory::retire");
  return c;
}
obs::Counter& retired_ops_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_compile_retired_ops_total",
      "Compiled SoA ops reclaimed by CompiledHistory::retire");
  return c;
}

/// Front-erase `cut` elements, returning real memory to the allocator when
/// the slack has grown past the resident size (vector::erase alone keeps
/// capacity, which would defeat the bounded-memory point of retirement).
template <typename V>
void drop_front(V& v, std::size_t cut) {
  v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(cut));
  if (v.capacity() > 2 * v.size() + 1024) v.shrink_to_fit();
}

}  // namespace

CompiledHistory::CompiledHistory(const TransactionSet& txns)
    : txns_(&txns), n_(txns.size()) {
  compile_block(0);
}

CompiledHistory::CompiledHistory() : txns_(nullptr) {
  owned_ = std::make_unique<TransactionSet>();
  txns_ = owned_.get();
  compile_block(0);
}

bool CompiledHistory::ts_less(TxnIdx a, TxnIdx b) const {
  const bool ta = commit_ts_[a] != kNoTimestamp;
  const bool tb = commit_ts_[b] != kNoTimestamp;
  if (ta != tb) return ta;  // timestamped first
  if (ta && commit_ts_[a] != commit_ts_[b]) return commit_ts_[a] < commit_ts_[b];
  return a < b;  // deterministic tie-break: dense (declaration) order
}

void CompiledHistory::compile_block(TxnIdx first) {
  const TransactionSet& txns = *txns_;
  const std::size_t n = n_;
  if (n > first) {
    compiled_txns_total().inc(static_cast<std::uint64_t>(n - first));
    if (obs::Trace::active()) {
      obs::Trace::event("model.compile_block",
                        obs::TraceFields()
                            .add("first", static_cast<std::uint64_t>(first))
                            .add("count", static_cast<std::uint64_t>(n - first)));
    }
  }
  if (op_begin_.empty()) {  // bootstrap the offset arrays
    op_begin_.push_back(0);
    wk_begin_.push_back(0);
    rk_begin_.push_back(0);
  }

  // Pass 1: intern every key of the block in first-appearance order so KeyIdx
  // assignment is deterministic across runs and thread counts — and identical
  // whether the history was compiled whole or grown block by block.
  for (TxnIdx d = first; d < n; ++d) {
    for (const Operation& op : txns.at(d).ops()) keys_.intern(op.key);
  }
  const std::size_t kc = keys_.size();
  writers_of_.rows.resize(kc);
  if (written_scratch_.size() < kc) written_scratch_.resize(kc, 0);

  // Pass 2: write footprints (sorted dense arrays + bitset masks). Every key a
  // transaction writes appears among its ops, so find() always resolves. Masks
  // are sized to the key universe at this block — writes_key() guards reads
  // with later-interned keys.
  // Reserve only on the first (bulk) compile: re-reserving to exactly n on
  // every extend would reallocate the whole vector per block, turning a long
  // stream of small appends quadratic. Later blocks rely on push_back's
  // amortized geometric growth instead.
  if (write_mask_.empty()) write_mask_.reserve(n);
  for (TxnIdx d = first; d < n; ++d) {
    const Transaction& t = txns.at(d);
    DynamicBitset mask(kc);
    std::vector<KeyIdx> wk;
    wk.reserve(t.write_set().size());
    for (Key k : t.write_set()) {
      const KeyIdx ki = keys_.find(k);
      mask.set(ki);
      wk.push_back(ki);
    }
    std::sort(wk.begin(), wk.end());
    write_keys_.insert(write_keys_.end(), wk.begin(), wk.end());
    wk_begin_.push_back(static_cast<std::uint32_t>(write_keys_.size()));
    write_mask_.push_back(std::move(mask));
  }

  // Pass 3: classify every operation into a flags byte (OpClass is derived
  // from it by op_class_of, whose table mirrors the branch order of
  // ReadStateAnalysis::read_states_of exactly: phantom before internal before
  // self before unknown-writer before writer-misses-key). `contains` sees the
  // prefix plus the whole block, so intra-block forward references resolve;
  // only writers absent from the entire set-so-far stay unknown (and are
  // queued in `pending_` for re-resolution by a later block).
  start_ts_.resize(n);
  commit_ts_.resize(n);
  session_.resize(n);
  ids_.resize(n);
  level_tag_.resize(n, kNoLevelTag);
  std::vector<KeyIdx> touched;
  for (TxnIdx d = first; d < n; ++d) {
    const Transaction& t = txns.at(d);
    ids_[d] = t.id();
    start_ts_[d] = t.start_ts();
    commit_ts_[d] = t.commit_ts();
    session_[d] = t.session();
    if (const auto lvl = t.level()) {
      level_tag_[d] = static_cast<std::uint8_t>(*lvl);
      ++annotated_levels_;
    }
    if (!t.has_timestamps()) all_timestamped_ = false;

    touched.clear();
    std::vector<KeyIdx> rk;
    for (std::size_t oi = 0; oi < t.ops().size(); ++oi) {
      const Operation& op = t.ops()[oi];
      const KeyIdx ck = keys_.find(op.key);
      if (op.is_write()) {
        op_key_.push_back(ck);
        op_writer_.push_back(kNoTxnIdx);
        op_flags_.push_back(kOpWrite);
        written_scratch_[ck] = 1;
        touched.push_back(ck);
        continue;
      }

      rk.push_back(ck);
      const TxnId w = op.value.writer;
      const bool positional_internal = written_scratch_[ck] != 0;
      const bool is_self = w == t.id();
      const bool is_init = w == kInitTxn;
      const bool known = !is_init && txns.contains(w);
      std::uint8_t m = 0;
      TxnIdx cw = kNoTxnIdx;
      if (op.value.phantom) m |= kOpPhantom;
      if (is_init) m |= kOpInitWriter;
      if (is_self) m |= kOpSelfWriter;
      if (!is_init && !known) m |= kOpUnknownWriter;
      if (positional_internal) m |= kOpPositionalInternal;
      if (known) {
        cw = static_cast<TxnIdx>(txns.dense_index_of(w));
        // Compiled footprint, not txns.at(cw).writes(): pass 2 already built
        // the block's masks, prefix masks exist, and retired writers (whose
        // Transaction payloads are stubs) answer from their retained sorted
        // footprint — all three exactly as a whole-set compile would.
        if (!writes_key(cw, ck)) m |= kOpWriterMissesKey;
      } else if (!is_init && owned_ != nullptr) {
        pending_[w].emplace_back(d, static_cast<std::uint32_t>(oi));
      }
      op_key_.push_back(ck);
      op_writer_.push_back(cw);
      op_flags_.push_back(m);
    }
    // Offsets stay ABSOLUTE across retirement: the arrays may have had their
    // retired prefix front-erased, so the next absolute offset is base + size.
    op_begin_.push_back(ops_base_ + static_cast<std::uint32_t>(op_flags_.size()));
    for (KeyIdx k : touched) written_scratch_[k] = 0;

    std::sort(rk.begin(), rk.end());
    rk.erase(std::unique(rk.begin(), rk.end()), rk.end());
    read_keys_.insert(read_keys_.end(), rk.begin(), rk.end());
    rk_begin_.push_back(rk_base_ + static_cast<std::uint32_t>(read_keys_.size()));
  }

  // Pass 4: per-key writer lists (rows over KeyIdx, writers in dense order —
  // appending block writers preserves the order a whole-set compile produces).
  for (TxnIdx d = first; d < n; ++d) {
    for (KeyIdx k : write_keys(d)) writers_of_.rows[k].push_back(d);
  }

  // Candidate order (see ts_order()): splice the block's timestamped
  // candidates into the sorted timestamped prefix and append its
  // untimestamped ones — every new dense index exceeds every old one, so the
  // untimestamped region stays in dense order without re-sorting.
  std::vector<TxnIdx> timed, untimed;
  for (TxnIdx d = first; d < n; ++d) {
    (commit_ts_[d] != kNoTimestamp ? timed : untimed).push_back(d);
  }
  std::sort(timed.begin(), timed.end(),
            [this](TxnIdx a, TxnIdx b) { return ts_less(a, b); });
  ts_order_.insert(ts_order_.begin() + static_cast<std::ptrdiff_t>(ts_timed_),
                   timed.begin(), timed.end());
  // Streams usually arrive in commit order, putting the whole block after the
  // existing timestamped prefix — then the insert above already left the
  // region sorted and the O(prefix) merge (which would make per-transaction
  // appends quadratic over a long stream) can be skipped. ts_less is a total
  // order (dense tie-break), so "not after the prefix" is a strict test.
  if (!timed.empty() && ts_timed_ > 0 &&
      ts_less(timed.front(), ts_order_[ts_timed_ - 1])) {
    std::inplace_merge(
        ts_order_.begin(),
        ts_order_.begin() + static_cast<std::ptrdiff_t>(ts_timed_),
        ts_order_.begin() + static_cast<std::ptrdiff_t>(ts_timed_ + timed.size()),
        [this](TxnIdx a, TxnIdx b) { return ts_less(a, b); });
  }
  ts_timed_ += timed.size();
  ts_order_.insert(ts_order_.end(), untimed.begin(), untimed.end());
}

const CompiledDelta& CompiledHistory::extend(std::span<const Transaction> block) {
  if (owned_ == nullptr) {
    throw std::logic_error(
        "CompiledHistory::extend: a borrowing compilation is immutable");
  }
  obs::TraceSpan span("model.extend");
  obs::ScopedTimer timer(extend_seconds());
  compiled_deltas_total().inc();
  span.field("block", static_cast<std::uint64_t>(block.size()))
      .field("prefix", static_cast<std::uint64_t>(n_));
  // Validate before mutating anything so a bad block leaves the history as-is.
  // (The intra-block set is skipped for single-transaction blocks — the
  // append() streaming path — where it can't trigger.)
  std::unordered_set<TxnId> in_block;
  for (const Transaction& t : block) {
    if (t.id() == kInitTxn) {
      throw std::invalid_argument("TxnId 0 is reserved for the initial state");
    }
    if (owned_->contains(t.id()) ||
        (block.size() > 1 && !in_block.insert(t.id()).second)) {
      throw std::invalid_argument("duplicate transaction id " +
                                  crooks::to_string(t.id()));
    }
  }

  delta_ = CompiledDelta{};
  delta_.first = static_cast<TxnIdx>(n_);
  delta_.first_new_key = static_cast<KeyIdx>(keys_.size());
  for (const Transaction& t : block) owned_->append(t);
  const TxnIdx first = static_cast<TxnIdx>(n_);
  n_ = txns_->size();
  compile_block(first);
  delta_.count = static_cast<std::uint32_t>(n_ - first);

  // Re-resolve prefix reads whose observed writer arrived in this block. This
  // keys off the awaited id, not the touched keys, so even a writer that
  // never writes the awaited key is resolved (to kOpWriterMissesKey) exactly
  // as a whole-set compile would. Only the flags byte and writer change; the
  // classification follows for free because OpClass is derived from flags.
  for (TxnIdx d = first; d < n_; ++d) {
    auto it = pending_.find(id_of(d));
    if (it == pending_.end()) continue;
    for (const auto& [td, oi] : it->second) {
      const std::size_t at = op_begin_[td] - ops_base_ + oi;
      op_writer_[at] = d;
      std::uint8_t m = static_cast<std::uint8_t>(op_flags_[at] & ~kOpUnknownWriter);
      if (!writes_key(d, op_key_[at])) m |= kOpWriterMissesKey;
      op_flags_[at] = m;
      delta_.resolved.emplace_back(td, oi);
    }
    pending_.erase(it);
  }

  if (adj_ready_.load(std::memory_order_relaxed)) extend_adjacency(*adj_, first);
  return delta_;
}

CompiledHistory::RetireStats CompiledHistory::retire(TxnIdx upto) {
  if (owned_ == nullptr) {
    throw std::logic_error(
        "CompiledHistory::retire: only a growable history can retire its prefix");
  }
  RetireStats st;
  upto = static_cast<TxnIdx>(std::min<std::size_t>(upto, n_));
  st.watermark = std::max(upto, retired_);
  if (upto <= retired_) return st;  // monotone; no-op below the watermark
  const TxnIdx first = retired_;

  // The SoA op arrays: reclaim [op_begin_[first], op_begin_[upto]).
  const std::size_t ops_cut = op_begin_[upto] - ops_base_;
  st.ops = ops_cut;
  drop_front(op_key_, ops_cut);
  drop_front(op_writer_, ops_cut);
  drop_front(op_flags_, ops_cut);
  ops_base_ = op_begin_[upto];

  // Read-key footprints (write footprints are retained — see writes_key()).
  drop_front(read_keys_, rk_begin_[upto] - rk_base_);
  rk_base_ = rk_begin_[upto];

  // Per-transaction write masks (each sized to the key universe — the
  // O(txns × keys) term retirement exists to cap).
  write_mask_.erase(write_mask_.begin(),
                    write_mask_.begin() + static_cast<std::ptrdiff_t>(upto - first));

  // The owned Transaction payloads (ops vector + read/write hash sets, the
  // dominant per-transaction footprint). Ids and scalars survive, so
  // duplicate appends of retired blocks are still detected exactly.
  owned_->retire_payloads(first, upto);

  // Unresolved-writer entries owned by retired readers: their op slots are
  // reclaimed, so a later extend() must not patch them. The retired reader's
  // streaming verdict was fixed at its own append; the offline engines that
  // would have consumed the re-resolution refuse retired histories anyway.
  for (auto it = pending_.begin(); it != pending_.end();) {
    std::vector<std::pair<TxnIdx, std::uint32_t>>& v = it->second;
    const auto keep = std::remove_if(
        v.begin(), v.end(), [upto](const auto& e) { return e.first < upto; });
    st.pending_purged += static_cast<std::uint64_t>(v.end() - keep);
    v.erase(keep, v.end());
    it = v.empty() ? pending_.erase(it) : std::next(it);
  }

  // Materialized adjacency: clear the retired rows (and drop the retired
  // entries of the sort indices). Resident rows may still *name* retired
  // dense indices — they are just numbers, and only engines barred from
  // retired histories walk them.
  if (adj_ready_.load(std::memory_order_relaxed)) {
    for (TxnIdx d = first; d < upto; ++d) {
      std::vector<TxnIdx>().swap(adj_->rt_preds.rows[d]);
      std::vector<TxnIdx>().swap(adj_->rt_succs.rows[d]);
      std::vector<TxnIdx>().swap(adj_->sess_preds.rows[d]);
      std::vector<TxnIdx>().swap(adj_->sess_succs.rows[d]);
    }
  }

  retired_ = upto;
  st.txns = upto - first;
  if (obs::enabled()) {
    retired_txns_total().inc(st.txns);
    retired_ops_total().inc(st.ops);
  }
  if (obs::Trace::active()) {
    obs::Trace::event("model.retire",
                      obs::TraceFields()
                          .add("watermark", static_cast<std::uint64_t>(upto))
                          .add("txns", static_cast<std::uint64_t>(st.txns))
                          .add("ops", st.ops));
  }
  return st;
}

const CompiledHistory::Adjacency& CompiledHistory::adjacency() const {
  if (!adj_ready_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(adj_mu_);
    if (!adj_.has_value()) adj_ = build_adjacency();
    adj_ready_.store(true, std::memory_order_release);
  }
  return *adj_;
}

CompiledHistory::Adjacency CompiledHistory::build_adjacency() const {
  Adjacency adj;
  const std::size_t n = n_;

  // Committed transactions sorted by (commit_ts, dense): for any b, the
  // real-time predecessors {a : commit(a) < start(b)} form a prefix of this
  // array, found by one binary search instead of an O(n) scan per b. The
  // start-sorted twin serves extend_adjacency (which old rows gain a new
  // predecessor).
  adj.by_commit.reserve(n);
  adj.by_start.reserve(n);
  for (TxnIdx d = 0; d < n; ++d) {
    if (commit_ts_[d] != kNoTimestamp) adj.by_commit.push_back(d);
    if (start_ts_[d] != kNoTimestamp) adj.by_start.push_back(d);
  }
  std::sort(adj.by_commit.begin(), adj.by_commit.end(), [this](TxnIdx a, TxnIdx b) {
    if (commit_ts_[a] != commit_ts_[b]) return commit_ts_[a] < commit_ts_[b];
    return a < b;
  });
  std::sort(adj.by_start.begin(), adj.by_start.end(), [this](TxnIdx a, TxnIdx b) {
    if (start_ts_[a] != start_ts_[b]) return start_ts_[a] < start_ts_[b];
    return a < b;
  });

  adj.rt_preds.rows.resize(n);
  adj.rt_succs.rows.resize(n);
  adj.sess_preds.rows.resize(n);
  adj.sess_succs.rows.resize(n);
  for (TxnIdx b = 0; b < n; ++b) {
    if (start_ts_[b] == kNoTimestamp) continue;
    const Timestamp s = start_ts_[b];
    auto end = std::lower_bound(
        adj.by_commit.begin(), adj.by_commit.end(), s,
        [this](TxnIdx a, Timestamp v) { return commit_ts_[a] < v; });
    for (auto it = adj.by_commit.begin(); it != end; ++it) {
      const TxnIdx a = *it;
      if (a == b) continue;
      adj.rt_preds.rows[b].push_back(a);
      if (session_[b] != kNoSession && session_[a] == session_[b]) {
        adj.sess_preds.rows[b].push_back(a);
      }
    }
  }
  // Invert: iterating b in ascending dense order keeps every successor row in
  // ascending dense order, the canonical form extend_adjacency preserves.
  for (TxnIdx b = 0; b < n; ++b) {
    for (TxnIdx a : adj.rt_preds.rows[b]) adj.rt_succs.rows[a].push_back(b);
    for (TxnIdx a : adj.sess_preds.rows[b]) adj.sess_succs.rows[a].push_back(b);
  }
  return adj;
}

void CompiledHistory::extend_adjacency(Adjacency& adj, TxnIdx first) const {
  const std::size_t n = n_;
  adj.rt_preds.rows.resize(n);
  adj.rt_succs.rows.resize(n);
  adj.sess_preds.rows.resize(n);
  adj.sess_succs.rows.resize(n);

  auto commit_less = [this](TxnIdx a, TxnIdx b) {
    if (commit_ts_[a] != commit_ts_[b]) return commit_ts_[a] < commit_ts_[b];
    return a < b;
  };
  auto start_less = [this](TxnIdx a, TxnIdx b) {
    if (start_ts_[a] != start_ts_[b]) return start_ts_[a] < start_ts_[b];
    return a < b;
  };
  for (TxnIdx d = first; d < n; ++d) {
    if (commit_ts_[d] != kNoTimestamp) {
      adj.by_commit.insert(
          std::lower_bound(adj.by_commit.begin(), adj.by_commit.end(), d, commit_less),
          d);
    }
    if (start_ts_[d] != kNoTimestamp) {
      adj.by_start.insert(
          std::lower_bound(adj.by_start.begin(), adj.by_start.end(), d, start_less),
          d);
    }
  }

  // New transactions' full predecessor rows, exactly as build_adjacency would
  // compute them (the sort indices already include the whole block, so
  // intra-block real-time edges appear too). Old predecessors' successor rows
  // are appended in ascending new-dense order, preserving the canonical form;
  // new transactions' successor rows are collected and sorted at the end.
  std::vector<std::vector<TxnIdx>> succ_new(n - first), sess_succ_new(n - first);
  for (TxnIdx b = first; b < n; ++b) {
    if (start_ts_[b] == kNoTimestamp) continue;
    auto end = std::lower_bound(
        adj.by_commit.begin(), adj.by_commit.end(), start_ts_[b],
        [this](TxnIdx a, Timestamp v) { return commit_ts_[a] < v; });
    for (auto it = adj.by_commit.begin(); it != end; ++it) {
      const TxnIdx a = *it;
      if (a == b) continue;
      adj.rt_preds.rows[b].push_back(a);
      if (a < first) {
        adj.rt_succs.rows[a].push_back(b);
      } else {
        succ_new[a - first].push_back(b);
      }
      if (session_[b] != kNoSession && session_[a] == session_[b]) {
        adj.sess_preds.rows[b].push_back(a);
        if (a < first) {
          adj.sess_succs.rows[a].push_back(b);
        } else {
          sess_succ_new[a - first].push_back(b);
        }
      }
    }
  }

  // A new transaction can also be a late-arriving predecessor of an *old* one
  // (commit(new) < start(old)): insert it at its (commit, dense) position in
  // the old row, keeping the row bit-identical to a fresh build.
  for (TxnIdx a = first; a < n; ++a) {
    if (commit_ts_[a] == kNoTimestamp) continue;
    auto it = std::upper_bound(
        adj.by_start.begin(), adj.by_start.end(), commit_ts_[a],
        [this](Timestamp v, TxnIdx q) { return v < start_ts_[q]; });
    for (; it != adj.by_start.end(); ++it) {
      const TxnIdx q = *it;
      if (q >= first) continue;  // new q: handled by the block pass above
      auto& row = adj.rt_preds.rows[q];
      row.insert(std::lower_bound(row.begin(), row.end(), a, commit_less), a);
      succ_new[a - first].push_back(q);
      if (session_[q] != kNoSession && session_[a] == session_[q]) {
        auto& srow = adj.sess_preds.rows[q];
        srow.insert(std::lower_bound(srow.begin(), srow.end(), a, commit_less), a);
        sess_succ_new[a - first].push_back(q);
      }
    }
  }
  for (TxnIdx a = first; a < n; ++a) {
    std::sort(succ_new[a - first].begin(), succ_new[a - first].end());
    std::sort(sess_succ_new[a - first].begin(), sess_succ_new[a - first].end());
    adj.rt_succs.rows[a] = std::move(succ_new[a - first]);
    adj.sess_succs.rows[a] = std::move(sess_succ_new[a - first]);
  }
}

}  // namespace crooks::model
