// GeoStore: an interactive geo-replicated transactional store providing PSI
// through the client-centric dependency discipline of §5.3.
//
// N sites each hold a full copy of the key space. A transaction executes at
// its origin site, reading the site-visible versions; on commit its writes
// install locally at once and replicate asynchronously, becoming visible at
// a remote site only after (a) the replication delay and (b) the apply of
// every transaction it *observed* (read-from and overwritten-version
// dependencies) — nothing else. There is no per-site total order: exactly
// the freedom the paper shows PSI can afford.
//
// Write-write conflicts between somewhere-concurrent transactions abort the
// later committer (PSI's property P2).
//
// Logical time advances by one tick per API call; pending remote applies
// drain lazily as time passes. The exported observations must — and, per the
// test suite, do — satisfy CT_PSI.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adya/history.hpp"
#include "model/transaction.hpp"
#include "store/store.hpp"

namespace crooks::repl {

class GeoStore {
 public:
  struct Options {
    std::uint32_t sites = 3;
    std::uint64_t replication_delay = 20;  // ticks from commit to remote apply
  };

  explicit GeoStore(Options options);

  TxnId begin(SiteId origin);
  store::ReadResult read(TxnId txn, Key k);
  store::StepStatus write(TxnId txn, Key k);
  store::StepStatus commit(TxnId txn);
  void abort(TxnId txn);

  bool is_active(TxnId txn) const { return active_.contains(txn); }

  /// Current logical time (ticks consumed so far).
  std::uint64_t now() const { return clock_; }

  /// Has the given committed transaction been applied at `site` by now?
  bool visible_at(SiteId site, TxnId txn);

  /// Committed client observations (timestamps are logical ticks).
  model::TransactionSet observations() const;
  std::unordered_map<Key, std::vector<TxnId>> version_order() const;

  std::size_t committed_count() const { return committed_.size(); }
  std::size_t aborted_count() const { return aborted_; }

 private:
  struct Committed {
    model::Transaction txn;                 // final observation record
    std::vector<std::uint64_t> applied_at;  // per site
  };

  struct Active {
    SiteId origin{};
    Timestamp start_ts = 0;
    std::vector<adya::Event> events;
    std::unordered_set<Key> write_set;
  };

  std::uint64_t tick() { return ++clock_; }
  void drain(std::uint32_t site);
  void append_version(std::uint32_t site, Key k, std::uint64_t when, std::size_t idx);
  /// Version (committed index + 1, 0 = ⊥) of `k` visible at `site` as of
  /// time `at` — the site-snapshot read primitive (P1).
  std::size_t version_at(std::uint32_t site, Key k, std::uint64_t at) const;

  Options opts_;
  std::uint64_t clock_ = 0;
  std::uint64_t next_id_ = 1;

  // Per site, per key: (apply time, committed idx + 1), time-ascending.
  std::vector<std::unordered_map<Key, std::vector<std::pair<std::uint64_t, std::size_t>>>>
      visible_;
  using PendingApply = std::pair<std::uint64_t, std::size_t>;
  std::vector<std::priority_queue<PendingApply, std::vector<PendingApply>,
                                  std::greater<>>>
      pending_;
  std::unordered_map<Key, std::size_t> global_latest_;  // committed idx+1
  std::unordered_map<Key, std::vector<TxnId>> version_order_;

  std::unordered_map<TxnId, Active> active_;
  std::vector<Committed> committed_;
  std::unordered_map<TxnId, std::size_t> committed_index_;
  std::size_t aborted_ = 0;
};

}  // namespace crooks::repl
