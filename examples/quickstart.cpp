// Quickstart: the state-based model in five minutes.
//
// Reconstructs the paper's Figure 2 execution, shows per-operation read
// states and complete states, evaluates commit tests (Table 1), and runs the
// ∃e checker on client observations alone.
//
//   $ ./quickstart
#include <cstdio>

#include "checker/checker.hpp"
#include "committest/commit_test.hpp"
#include "model/analysis.hpp"

using namespace crooks;

int main() {
  // ---- 1. Describe what clients observed. ---------------------------------
  // Values identify their writers, so an observation is just "read k, saw
  // the value T_i wrote" / "wrote k". (Figure 2 of the paper.)
  constexpr Key x{0}, y{1}, z{2};
  model::TransactionSet txns{{
      model::TxnBuilder(1).write(x).build(),                               // Ta
      model::TxnBuilder(2).read(y, TxnId{3}).read(z, kInitTxn).build(),    // Tb
      model::TxnBuilder(3).write(y).build(),                               // Tc
      model::TxnBuilder(4).write(y).write(z).build(),                      // Td
      model::TxnBuilder(5).read(x, kInitTxn).read(z, TxnId{4}).build(),    // Te
  }};

  // ---- 2. Pick an execution and compute read states. ----------------------
  model::Execution e(txns, {TxnId{1}, TxnId{3}, TxnId{4}, TxnId{2}, TxnId{5}});
  std::printf("execution: %s\n\n", model::to_string(e).c_str());

  model::ReadStateAnalysis analysis(txns, e);
  for (const model::Transaction& t : txns) {
    const model::TxnAnalysis& ta = analysis.txn(t.id());
    std::printf("%s (parent s%lld):\n", to_string(t.id()).c_str(),
                static_cast<long long>(ta.parent));
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      std::printf("  %-12s read states %s\n", model::to_string(t.ops()[i]).c_str(),
                  to_string(ta.ops[i].rs).c_str());
    }
    std::printf("  complete states: %s\n", to_string(ta.complete).c_str());
  }

  // ---- 3. Commit tests against this execution (Table 1). ------------------
  ct::CommitTester tester(analysis);
  std::printf("\ncommit tests on this execution:\n");
  for (ct::IsolationLevel level :
       {ct::IsolationLevel::kSerializable, ct::IsolationLevel::kAdyaSI,
        ct::IsolationLevel::kPSI, ct::IsolationLevel::kReadCommitted}) {
    const ct::ExecutionVerdict v = tester.test_all(level);
    std::printf("  %-16s %s%s%s\n", std::string(ct::name_of(level)).c_str(),
                v.ok ? "PASS" : "FAIL", v.ok ? "" : "  — ",
                v.ok ? "" : v.explanation.c_str());
  }

  // ---- 4. The ∃e question: could ANY execution satisfy the level? ---------
  std::printf("\nchecker verdicts (∃e, from observations alone):\n");
  for (ct::IsolationLevel level :
       {ct::IsolationLevel::kSerializable, ct::IsolationLevel::kAdyaSI,
        ct::IsolationLevel::kPSI, ct::IsolationLevel::kReadCommitted}) {
    const checker::CheckResult r = checker::check(level, txns);
    std::printf("  %-16s %s  (%s)\n", std::string(ct::name_of(level)).c_str(),
                r.satisfiable() ? "SATISFIABLE" : "UNSATISFIABLE", r.detail.c_str());
    if (r.witness.has_value()) {
      std::printf("%19s witness: %s\n", "", model::to_string(*r.witness).c_str());
    }
  }
  return 0;
}
