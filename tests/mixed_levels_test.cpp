// Per-transaction isolation levels, end to end.
//
// The contract under test has two halves:
//
//  1. Uniform assignments are the OLD api. Every entry point taking a
//     LevelAssignment / LevelPolicy detects the uniform case and delegates
//     verbatim to the global-level code, so a uniform call must be verdict-,
//     witness-, diagnosis- and node-count-identical to check(level, ...) —
//     asserted here over the anomaly suite and 200+ fuzz seeds, on all three
//     engines (this is the oracle check checker.hpp's mixed section cites).
//
//  2. Genuinely mixed assignments answer ∃e ∀T CT_{A(T)}(T, e). The flip
//     matrix pins the semantics: one transaction's annotation change flips a
//     known anomaly's verdict, the exhaustive engine is the oracle, deciding
//     engines agree, witnesses verify under the assignment, and refutations
//     name the violated transaction's OWN level.
//
// Plus the infrastructure that carries the levels: the compiled level column
// through extend() (grown ≡ fresh), the streaming monitor's assigned mode,
// the batch/incremental policy plumbing, and the frozen hashed reference via
// the uniform-agreement shim.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/checker.hpp"
#include "checker/online.hpp"
#include "checker/reference.hpp"
#include "engine_oracle.hpp"
#include "store/runner.hpp"
#include "workload/observations.hpp"
#include "workload/workload.hpp"

namespace crooks::checker {
namespace {

using L = ct::IsolationLevel;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1};

// ---------------------------------------------------------------------------
// 1. Uniform assignments delegate verbatim to the global-level API.
// ---------------------------------------------------------------------------

void expect_identical(const CheckResult& uniform, const CheckResult& global,
                      const std::string& what) {
  ASSERT_EQ(uniform.outcome, global.outcome)
      << what << "\n uniform: " << uniform.detail
      << "\n global:  " << global.detail;
  EXPECT_EQ(uniform.detail, global.detail) << what;
  EXPECT_EQ(uniform.engine, global.engine) << what;
  EXPECT_EQ(uniform.nodes_explored, global.nodes_explored) << what;
  EXPECT_EQ(uniform.edges_visited, global.edges_visited) << what;
  ASSERT_EQ(uniform.witness.has_value(), global.witness.has_value()) << what;
  if (uniform.witness.has_value()) {
    EXPECT_EQ(uniform.witness->order(), global.witness->order()) << what;
  }
  ASSERT_EQ(uniform.diagnosis.has_value(), global.diagnosis.has_value()) << what;
  if (uniform.diagnosis.has_value()) {
    EXPECT_EQ(uniform.diagnosis->txn, global.diagnosis->txn) << what;
    EXPECT_EQ(uniform.diagnosis->clause, global.diagnosis->clause) << what;
    EXPECT_EQ(uniform.diagnosis->candidate_execution,
              global.diagnosis->candidate_execution)
        << what;
    EXPECT_EQ(uniform.diagnosis->candidate_states,
              global.diagnosis->candidate_states)
        << what;
  }
}

TEST(MixedUniformParity, AnomalySuiteAllEnginesAllLevels) {
  const std::vector<EngineSelect> engines{EngineSelect::kAuto, EngineSelect::kDirect,
                                          EngineSelect::kGraph,
                                          EngineSelect::kExhaustive};
  for (const oracle::Scenario& s : oracle::anomaly_scenarios()) {
    const model::CompiledHistory ch(s.txns);
    for (L level : ct::kAllLevels) {
      for (EngineSelect e : engines) {
        CheckOptions opts;
        opts.threads = 1;
        opts.engine = e;
        const ct::LevelAssignment uniform(level);
        ASSERT_TRUE(uniform.is_uniform());
        expect_identical(check(uniform, ch, opts), check(level, ch, opts),
                         s.name + " @ " + std::string(ct::name_of(level)));
      }
    }
  }
}

TEST(MixedUniformParity, MaterializedAllFallbackColumnCanonicalizes) {
  // A column where every entry equals the fallback IS the uniform case: the
  // constructor must detect it, not just the empty-column form.
  for (const oracle::Scenario& s : oracle::anomaly_scenarios()) {
    const model::CompiledHistory ch(s.txns);
    for (L level : {L::kReadCommitted, L::kPSI, L::kSerializable}) {
      ct::LevelAssignment a(level, std::vector<L>(ch.size(), level));
      EXPECT_TRUE(a.is_uniform()) << s.name;
      EXPECT_EQ(a.describe(), ct::name_of(level)) << s.name;
      CheckOptions opts;
      opts.threads = 1;
      expect_identical(check(a, ch, opts), check(level, ch, opts), s.name);
    }
  }
}

TEST(MixedUniformParity, FuzzSeedsAllEngines) {
  // 200+ random observation sets; the level rotates so every level is hit
  // 20+ times, and every seed additionally runs the direct-eligible RC and
  // the strongest SER to keep both dispatch families hot on each input.
  const std::vector<EngineSelect> engines{EngineSelect::kDirect, EngineSelect::kGraph,
                                          EngineSelect::kExhaustive};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    wl::ObservationFuzzOptions fopts;
    fopts.p_untimestamped = (seed % 3 == 0) ? 0.3 : 0.0;
    const wl::FuzzedObservations f = wl::fuzz_observations(seed, fopts);
    const model::CompiledHistory ch(f.txns);
    const L rotating = ct::kAllLevels[seed % ct::kAllLevels.size()];
    for (L level : {rotating, L::kReadCommitted, L::kSerializable}) {
      for (EngineSelect e : engines) {
        CheckOptions opts;
        opts.threads = 1;
        opts.engine = e;
        if (seed % 2 == 0) opts.version_order = &f.version_order;
        expect_identical(check(ct::LevelAssignment(level), ch, opts),
                         check(level, ch, opts),
                         "seed " + std::to_string(seed) + " @ " +
                             std::string(ct::name_of(level)));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. The mixed flip matrix: one annotation change flips the verdict.
// ---------------------------------------------------------------------------

// Assignment over dense (declaration) indices: every transaction at
// `fallback` except the listed (index, level) overrides.
ct::LevelAssignment mix(std::size_t n, L fallback,
                        std::initializer_list<std::pair<std::size_t, L>> over) {
  std::vector<L> column(n, fallback);
  for (const auto& [d, l] : over) column[d] = l;
  return ct::LevelAssignment(fallback, std::move(column));
}

// Three-way differential under an assignment: exhaustive is the oracle and
// must produce `expect_sat`; direct must decide when the assignment is
// direct-eligible; any deciding engine agrees; witnesses verify under the
// assignment; refutation diagnoses are canonical (identical across engines).
// Returns the oracle result for caller-specific checks.
CheckResult mixed_three_way(const ct::LevelAssignment& a,
                            const model::CompiledHistory& ch, bool expect_sat) {
  CheckOptions opts;
  opts.threads = 1;
  opts.engine = EngineSelect::kExhaustive;
  const CheckResult ex = check(a, ch, opts);
  EXPECT_NE(ex.outcome, Outcome::kUnknown) << a.describe() << ": oracle undecided";
  EXPECT_EQ(ex.satisfiable(), expect_sat)
      << a.describe() << ": oracle says " << ex.detail;

  const auto against = [&](const char* name, const CheckResult& r) {
    if (r.outcome == Outcome::kUnknown) return;  // honest "no opinion"
    EXPECT_EQ(r.outcome, ex.outcome)
        << a.describe() << ": " << name << " says " << r.detail
        << "\n but the oracle says " << ex.detail;
    if (r.satisfiable()) {
      ASSERT_TRUE(r.witness.has_value()) << name;
      const ct::ExecutionVerdict v = verify_witness(a, ch, *r.witness);
      EXPECT_TRUE(v.ok) << a.describe() << ": " << name
                        << " witness fails its commit tests: " << v.explanation;
    }
    if (r.unsatisfiable() && ex.unsatisfiable()) {
      ASSERT_EQ(r.diagnosis.has_value(), ex.diagnosis.has_value()) << name;
      if (r.diagnosis.has_value()) {
        EXPECT_EQ(r.diagnosis->txn, ex.diagnosis->txn) << name;
        EXPECT_EQ(r.diagnosis->level, ex.diagnosis->level) << name;
        EXPECT_EQ(r.diagnosis->clause, ex.diagnosis->clause) << name;
        EXPECT_EQ(r.diagnosis->candidate_execution, ex.diagnosis->candidate_execution)
            << name;
      }
    }
  };

  opts.engine = EngineSelect::kDirect;
  const CheckResult di = check(a, ch, opts);
  if (direct_eligible(a)) {
    EXPECT_NE(di.outcome, Outcome::kUnknown)
        << a.describe() << ": direct engine gave up: " << di.detail;
  }
  against("direct", di);

  opts.engine = EngineSelect::kGraph;
  against("graph", check(a, ch, opts));

  opts.engine = EngineSelect::kAuto;
  const CheckResult au = check(a, ch, opts);
  EXPECT_NE(au.outcome, Outcome::kUnknown) << a.describe();
  against("auto", au);

  // The exhaustive witness itself must verify, too.
  if (ex.satisfiable()) {
    EXPECT_TRUE(ex.witness.has_value()) << a.describe();
    if (ex.witness.has_value()) {
      EXPECT_TRUE(verify_witness(a, ch, *ex.witness).ok) << a.describe();
    }
  }
  return ex;
}

TEST(MixedFlipMatrix, FracturedReadFlipsOnReadersAnnotation) {
  const oracle::Scenario s = oracle::anomaly_scenarios()[5];
  ASSERT_EQ(s.name, "fractured_read");
  const model::CompiledHistory ch(s.txns);

  // Everyone at RC: the fracture is allowed.
  mixed_three_way(mix(2, L::kReadCommitted, {}), ch, /*expect_sat=*/true);
  // Promote the READER (T2, dense 1) to ReadAtomic: its own commit test now
  // rejects the fracture — the single-annotation verdict flip.
  const CheckResult r =
      mixed_three_way(mix(2, L::kReadCommitted, {{1, L::kReadAtomic}}), ch,
                      /*expect_sat=*/false);
  ASSERT_TRUE(r.diagnosis.has_value());
  EXPECT_EQ(r.diagnosis->txn, TxnId{2});
  // The diagnosis reports the failing transaction's OWN level.
  EXPECT_EQ(r.diagnosis->level, L::kReadAtomic);
  // Promoting the WRITER instead changes nothing: T1 has no reads, and a
  // commit test only mentions its transaction's own reads.
  mixed_three_way(mix(2, L::kReadCommitted, {{0, L::kReadAtomic}}), ch,
                  /*expect_sat=*/true);
}

TEST(MixedFlipMatrix, WriteSkewNeedsBothSidesSerializable) {
  const oracle::Scenario s = oracle::anomaly_scenarios()[1];
  ASSERT_EQ(s.name, "write_skew");
  const model::CompiledHistory ch(s.txns);

  // One-sided SER is satisfiable: place the SER transaction first and the
  // RC one can still read both stale balances afterwards.
  mixed_three_way(mix(2, L::kReadCommitted, {{0, L::kSerializable}}), ch, true);
  mixed_three_way(mix(2, L::kReadCommitted, {{1, L::kSerializable}}), ch, true);
  // Both sides SER: the classic refutation returns.
  mixed_three_way(mix(2, L::kSerializable, {}), ch, false);
}

TEST(MixedFlipMatrix, LongForkIsThePsiAllowedAnomaly) {
  const oracle::Scenario s = oracle::anomaly_scenarios()[3];
  ASSERT_EQ(s.name, "long_fork");
  const model::CompiledHistory ch(s.txns);

  // Both readers at PSI (writers RC): satisfiable — the long fork is exactly
  // what PSI permits and the SI family forbids.
  mixed_three_way(mix(4, L::kReadCommitted, {{2, L::kPSI}, {3, L::kPSI}}), ch, true);
  // ONE reader at AdyaSI is still satisfiable: a single SI transaction only
  // needs its own complete prefix, and one exists for either fork arm alone.
  mixed_three_way(mix(4, L::kReadCommitted, {{2, L::kPSI}, {3, L::kAdyaSI}}), ch,
                  true);
  // BOTH readers at AdyaSI: their prefixes would have to be un-nested —
  // impossible in one execution, so the mix is refuted.
  mixed_three_way(mix(4, L::kReadCommitted, {{2, L::kAdyaSI}, {3, L::kAdyaSI}}), ch,
                  false);
}

TEST(MixedFlipMatrix, CrossSessionStalenessFlipsOnStrongSiReader) {
  const oracle::Scenario s = oracle::anomaly_scenarios()[9];
  ASSERT_EQ(s.name, "cross_session_staleness");
  const model::CompiledHistory ch(s.txns);

  const CheckResult r =
      mixed_three_way(mix(2, L::kReadCommitted, {{1, L::kStrongSI}}), ch, false);
  ASSERT_TRUE(r.diagnosis.has_value());
  EXPECT_EQ(r.diagnosis->level, L::kStrongSI);
  // Annotating the WRITER StrongSI leaves the stale read at RC: satisfiable.
  mixed_three_way(mix(2, L::kReadCommitted, {{0, L::kStrongSI}}), ch, true);
}

TEST(MixedFlipMatrix, SessionInversionFlipsOnSessionSiNotAnsiSi) {
  const oracle::Scenario s = oracle::anomaly_scenarios()[8];
  ASSERT_EQ(s.name, "session_inversion");
  const model::CompiledHistory ch(s.txns);

  // AnsiSI has no session clause: the same-session stale read survives.
  mixed_three_way(mix(2, L::kReadCommitted, {{1, L::kAnsiSI}}), ch, true);
  // SessionSI's recency clause refutes it.
  mixed_three_way(mix(2, L::kReadCommitted, {{1, L::kSessionSI}}), ch, false);
}

// ---------------------------------------------------------------------------
// 3. The compiled level column survives extend(): grown ≡ fresh.
// ---------------------------------------------------------------------------

std::vector<model::Transaction> annotated_transactions() {
  return {
      TxnBuilder(1).write(kX).at(0, 1).level(L::kSerializable).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(2, 3).build(),  // unannotated
      TxnBuilder(3).read(kY, TxnId{2}).at(4, 5).level(L::kReadAtomic).build(),
      // Forward observation: T4 reads a writer arriving only in a later
      // block, so extend()'s late-writer re-resolution runs alongside the
      // level column.
      TxnBuilder(4).read(kX, TxnId{5}).at(6, 7).level(L::kPSI).build(),
      TxnBuilder(5).write(kX).at(8, 9).level(L::kStrongSI).build(),
  };
}

void expect_level_columns_equal(const model::CompiledHistory& grown,
                                const model::CompiledHistory& fresh,
                                const std::string& what) {
  ASSERT_EQ(grown.size(), fresh.size()) << what;
  EXPECT_EQ(grown.annotated_level_count(), fresh.annotated_level_count()) << what;
  EXPECT_EQ(grown.level_tags(), fresh.level_tags()) << what;
  const auto ga = ct::LevelAssignment::from_annotations(grown, L::kReadCommitted);
  const auto fa = ct::LevelAssignment::from_annotations(fresh, L::kReadCommitted);
  EXPECT_EQ(ga.present_mask(), fa.present_mask()) << what;
  for (model::TxnIdx d = 0; d < grown.size(); ++d) {
    EXPECT_EQ(grown.level_tag(d), fresh.level_tag(d)) << what << " d=" << d;
    EXPECT_EQ(ga.of(d), fa.of(d)) << what << " d=" << d;
  }
}

TEST(MixedLevelColumn, ExtendPreservesAnnotationsOnAnyInterleaving) {
  const std::vector<model::Transaction> txns = annotated_transactions();
  const TransactionSet set{{txns.begin(), txns.end()}};
  const model::CompiledHistory fresh(set);
  ASSERT_EQ(fresh.annotated_level_count(), 4u);
  EXPECT_EQ(fresh.level_tag(1), model::CompiledHistory::kNoLevelTag);
  EXPECT_EQ(fresh.annotated_level(0), L::kSerializable);
  EXPECT_EQ(fresh.annotated_level(1), std::nullopt);

  // One by one.
  {
    model::CompiledHistory grown;
    for (const model::Transaction& t : txns) grown.extend(t);
    expect_level_columns_equal(grown, fresh, "one-by-one");
  }
  // Every two-block split.
  for (std::size_t cut = 1; cut < txns.size(); ++cut) {
    model::CompiledHistory grown;
    grown.extend(std::span<const model::Transaction>(txns.data(), cut));
    grown.extend(
        std::span<const model::Transaction>(txns.data() + cut, txns.size() - cut));
    expect_level_columns_equal(grown, fresh,
                               "two blocks, cut=" + std::to_string(cut));
  }
  // Block + singles interleaving.
  {
    model::CompiledHistory grown;
    grown.extend(std::span<const model::Transaction>(txns.data(), 2));
    grown.extend(txns[2]);
    grown.extend(std::span<const model::Transaction>(txns.data() + 3, 2));
    expect_level_columns_equal(grown, fresh, "block+single+block");
  }
}

// ---------------------------------------------------------------------------
// 4. Uniform-agreement shim against the frozen hashed reference.
// ---------------------------------------------------------------------------

TEST(MixedReferenceShim, UniformAssignmentMatchesHashedExhaustive) {
  // reference:: keeps the global-level signature on purpose (it is frozen);
  // the agreement obligation is on the NEW api: a uniform assignment routed
  // through the assignment entry point must reproduce the frozen hashed
  // engine's verdict, node count and witness order.
  CheckOptions sequential;
  sequential.threads = 1;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const wl::FuzzedObservations f = wl::fuzz_observations(seed);
    const model::CompiledHistory ch(f.txns);
    const L level = ct::kAllLevels[seed % ct::kAllLevels.size()];
    const CheckResult hashed =
        reference::check_exhaustive_hashed(level, f.txns, sequential);
    const CheckResult mixed_api =
        check_exhaustive(ct::LevelAssignment(level), ch, sequential);
    ASSERT_EQ(mixed_api.outcome, hashed.outcome)
        << "seed " << seed << " @ " << ct::name_of(level)
        << "\n assignment: " << mixed_api.detail << "\n hashed: " << hashed.detail;
    EXPECT_EQ(mixed_api.nodes_explored, hashed.nodes_explored) << "seed " << seed;
    ASSERT_EQ(mixed_api.witness.has_value(), hashed.witness.has_value());
    if (mixed_api.witness.has_value()) {
      EXPECT_EQ(mixed_api.witness->order(), hashed.witness->order());
    }
  }
}

// ---------------------------------------------------------------------------
// 5. Streaming monitor: OnlineChecker's assigned mode.
// ---------------------------------------------------------------------------

TEST(MixedOnline, AssignedModeMatchesUniformTrackingWithoutAnnotations) {
  // With no annotations every transaction resolves to the fallback, so the
  // assigned-mode status must agree with a uniform checker tracking exactly
  // that level — same verdict, same first violator.
  for (const oracle::Scenario& s : oracle::anomaly_scenarios()) {
    for (L level : ct::kAllLevels) {
      OnlineChecker uniform{std::vector<L>{level}};
      uniform.append_all(s.txns);
      OnlineChecker assigned(OnlineChecker::kTrackAssigned, level);
      assigned.append_all(s.txns);
      EXPECT_TRUE(assigned.assigned_mode());
      EXPECT_EQ(assigned.assigned_status().ok, uniform.status(level).ok)
          << s.name << " @ " << ct::name_of(level);
      EXPECT_EQ(assigned.assigned_status().first_violation,
                uniform.status(level).first_violation)
          << s.name << " @ " << ct::name_of(level);
      EXPECT_EQ(assigned.stats().hashed_fallback_appends, 0u);
    }
  }
}

TEST(MixedOnline, AnnotationFlipsTheStream) {
  // Fractured read applied in declaration order. Reader annotated RA over an
  // RC fallback: the stream violates at T2, named with its own level.
  const std::vector<model::Transaction> flagged{
      TxnBuilder(1).write(kX).write(kY).at(0, 10).build(),
      TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).at(1, 11)
          .level(L::kReadAtomic).build(),
  };
  OnlineChecker c(OnlineChecker::kTrackAssigned, L::kReadCommitted);
  c.append_all(std::span<const model::Transaction>(flagged.data(), flagged.size()));
  EXPECT_FALSE(c.all_ok());
  EXPECT_FALSE(c.assigned_status().ok);
  EXPECT_EQ(c.assigned_status().first_violation, TxnId{2});
  EXPECT_NE(c.assigned_status().explanation.find("T2 [ReadAtomic]"),
            std::string::npos)
      << c.assigned_status().explanation;

  // Annotating the writer instead leaves the reader at RC: the stream passes.
  const std::vector<model::Transaction> writer_only{
      TxnBuilder(1).write(kX).write(kY).at(0, 10).level(L::kReadAtomic).build(),
      TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).at(1, 11).build(),
  };
  OnlineChecker ok(OnlineChecker::kTrackAssigned, L::kReadCommitted);
  ok.append_all(
      std::span<const model::Transaction>(writer_only.data(), writer_only.size()));
  EXPECT_TRUE(ok.all_ok());
  EXPECT_TRUE(ok.assigned_status().ok);
}

// ---------------------------------------------------------------------------
// 6. Batch / incremental policies.
// ---------------------------------------------------------------------------

TEST(MixedBatch, TriviallyUniformPolicyEqualsLevelForm) {
  std::vector<TransactionSet> histories;
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    histories.push_back(wl::fuzz_observations(seed).txns);
  }
  CheckOptions opts;
  opts.threads = 1;
  for (L level : {L::kReadCommitted, L::kPSI, L::kSerializable}) {
    const auto via_policy =
        check_batch(ct::LevelPolicy::uniform(level),
                    std::span<const TransactionSet>(histories), opts);
    const auto via_level =
        check_batch(level, std::span<const TransactionSet>(histories), opts);
    ASSERT_EQ(via_policy.size(), via_level.size());
    for (std::size_t i = 0; i < via_policy.size(); ++i) {
      expect_identical(via_policy[i], via_level[i],
                       "item " + std::to_string(i) + " @ " +
                           std::string(ct::name_of(level)));
    }
  }
}

TEST(MixedBatch, OverrideFlipsABatchItem) {
  // Two fractured-read histories; the policy override promotes each item's
  // reader to RA, flipping both verdicts relative to the RC fallback.
  std::vector<TransactionSet> histories;
  for (int i = 0; i < 2; ++i) {
    histories.push_back(TransactionSet{{
        TxnBuilder(1).write(kX).write(kY).at(0, 10).build(),
        TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).at(1, 11).build(),
    }});
  }
  CheckOptions opts;
  opts.threads = 1;

  ct::LevelPolicy plain{L::kReadCommitted, {}, true};
  for (const CheckResult& r :
       check_batch(plain, std::span<const TransactionSet>(histories), opts)) {
    EXPECT_TRUE(r.satisfiable()) << r.detail;
  }

  ct::LevelPolicy promoted{L::kReadCommitted, {{TxnId{2}, L::kReadAtomic}}, true};
  for (const CheckResult& r :
       check_batch(promoted, std::span<const TransactionSet>(histories), opts)) {
    ASSERT_TRUE(r.unsatisfiable()) << r.detail;
    ASSERT_TRUE(r.diagnosis.has_value());
    EXPECT_EQ(r.diagnosis->txn, TxnId{2});
    EXPECT_EQ(r.diagnosis->level, L::kReadAtomic);
  }
}

TEST(MixedBatch, IncrementalResolvePrefixToleratesFutureOverrides) {
  // The override names T2, which only arrives in block 2: the block-1 check
  // must not throw (resolve_prefix ignores not-yet-seen ids) and the block-2
  // verdict must honor it.
  const std::vector<TransactionSet> blocks{
      TransactionSet{{TxnBuilder(1).write(kX).write(kY).at(0, 10).build()}},
      TransactionSet{
          {TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).at(1, 11).build()}},
  };
  CheckOptions opts;
  opts.threads = 1;
  ct::LevelPolicy policy{L::kReadCommitted, {{TxnId{2}, L::kReadAtomic}}, true};
  const std::vector<CheckResult> results =
      check_incremental(policy, std::span<const TransactionSet>(blocks), opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].satisfiable()) << results[0].detail;
  ASSERT_TRUE(results[1].unsatisfiable()) << results[1].detail;
  EXPECT_EQ(results[1].diagnosis->txn, TxnId{2});
  EXPECT_EQ(results[1].diagnosis->level, L::kReadAtomic);
}

TEST(MixedBatch, RunVerifiedBatchPolicyOverload) {
  std::vector<std::vector<store::TxnIntent>> workloads;
  for (std::size_t i = 0; i < 3; ++i) {
    workloads.push_back(wl::generate_mix({.transactions = 8,
                                          .keys = 5,
                                          .reads_per_txn = 2,
                                          .writes_per_txn = 1,
                                          .seed = 70 + i}));
  }
  store::RunOptions base{.mode = store::CCMode::kSnapshotIsolation,
                         .seed = 7,
                         .concurrency = 3};
  CheckOptions copts;
  copts.threads = 1;

  // A trivially uniform policy reproduces the level overload exactly.
  const auto via_level =
      store::run_verified_batch(workloads, base, L::kReadAtomic, copts);
  const auto via_policy = store::run_verified_batch(
      workloads, base, ct::LevelPolicy::uniform(L::kReadAtomic), copts);
  ASSERT_EQ(via_level.size(), via_policy.size());
  for (std::size_t i = 0; i < via_level.size(); ++i) {
    EXPECT_EQ(via_policy[i].run.committed, via_level[i].run.committed);
    expect_identical(via_policy[i].verdict, via_level[i].verdict,
                     "workload " + std::to_string(i));
  }
}

TEST(MixedBatch, MixedProfileWorkloadAuditsAtDeclaredLevels) {
  // The deployment shape: SER banking pairs over an RC read-mostly
  // background. The store threads each intent's declared level through to
  // the observations, and the policy audits every transaction at its own.
  wl::MixedProfileOptions mopts;
  mopts.pairs = 1;
  mopts.background = {.transactions = 4,
                      .keys = 4,
                      .reads_per_txn = 2,
                      .writes_per_txn = 0,
                      .seed = 11};
  const std::vector<store::TxnIntent> intents = wl::generate_mixed_profile(mopts);
  ASSERT_EQ(intents.size(), 6u);
  EXPECT_EQ(intents[0].level, L::kSerializable);
  EXPECT_EQ(intents[2].level, L::kReadCommitted);

  store::RunOptions ropts{.mode = store::CCMode::kSerial, .seed = 3};
  CheckOptions copts;
  copts.threads = 1;
  const auto verified = store::run_verified_batch(
      {intents}, ropts, ct::LevelPolicy{L::kReadCommitted, {}, true}, copts);
  ASSERT_EQ(verified.size(), 1u);
  // The observations carry the declared levels...
  const model::CompiledHistory ch(verified[0].run.observations);
  EXPECT_GT(ch.annotated_level_count(), 0u);
  // ...and a serial store passes even the SER transactions' own tests.
  EXPECT_TRUE(verified[0].verdict.satisfiable()) << verified[0].verdict.detail;
}

}  // namespace
}  // namespace crooks::checker
