file(REMOVE_RECURSE
  "libcrooks_workload.a"
)
