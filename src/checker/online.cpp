#include "checker/online.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::checker {

using ct::IsolationLevel;
using model::Transaction;
using model::TxnIdx;

namespace {

obs::Counter& online_blocks_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_blocks_total", "Blocks ingested by the online checker");
  return c;
}
obs::Counter& online_txns_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_txns_total",
      "Transactions evaluated on compiled deltas by the online checker");
  return c;
}
obs::Counter& online_duplicates_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_duplicates_total",
      "Transactions ignored by the online checker as duplicate ids");
  return c;
}
obs::Histogram& online_block_seconds() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "crooks_online_block_seconds",
      "Latency of one online ingest (compile delta + evaluate block)");
  return h;
}
obs::Counter& online_fallback_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_fallback_appends_total",
      "Transactions served from the pre-compile hashed path; must stay 0 "
      "(every append compiles) — CI gates on this series");
  return c;
}

}  // namespace

OnlineChecker::OnlineChecker(std::vector<IsolationLevel> levels) {
  for (IsolationLevel l : levels) statuses_.emplace(l, LevelStatus{});
  weak_only_ = true;
  for (const auto& [l, s] : statuses_) {
    if (l != IsolationLevel::kReadUncommitted &&
        l != IsolationLevel::kReadCommitted &&
        l != IsolationLevel::kReadAtomic && l != IsolationLevel::kPSI) {
      weak_only_ = false;
      break;
    }
  }
}

OnlineChecker::OnlineChecker(TrackAssignedTag, IsolationLevel fallback)
    : assigned_mode_(true), assigned_fallback_(fallback) {
  // A later block may annotate any level, so the weak-only direct path (and
  // its skipped PREC/interval bookkeeping) is never safe here.
  weak_only_ = false;
}

const OnlineChecker::LevelStatus& OnlineChecker::status(IsolationLevel level) const {
  return statuses_.at(level);
}

bool OnlineChecker::all_ok() const {
  if (!assigned_status_.ok) return false;
  for (const auto& [level, s] : statuses_) {
    if (!s.ok) return false;
  }
  return true;
}

std::vector<IsolationLevel> OnlineChecker::surviving_levels() const {
  std::vector<IsolationLevel> out;
  for (const auto& [level, s] : statuses_) {
    if (s.ok) out.push_back(level);
  }
  return out;
}

void OnlineChecker::violate(IsolationLevel level, TxnId txn, std::string why) {
  if (assigned_mode_) {
    if (!assigned_status_.ok) return;  // sticky first violation
    assigned_status_.ok = false;
    assigned_status_.first_violation = txn;
    // Mirror ct::CommitTester::test_all(LevelAssignment): the explanation
    // names the violated transaction's own level.
    assigned_status_.explanation = crooks::to_string(txn) + " [" +
                                   std::string(ct::name_of(level)) +
                                   "]: " + std::move(why);
    if (obs::enabled()) {
      obs::Registry::global()
          .counter("crooks_online_violations_total",
                   "First violations recorded per tracked level",
                   {{"level", std::string(ct::name_of(level))}})
          .inc();
    }
    if (obs::Trace::active()) {
      obs::Trace::event("online.violation",
                        obs::TraceFields()
                            .add("level", ct::name_of(level))
                            .add("txn", crooks::to_string(txn))
                            .add("why", assigned_status_.explanation));
    }
    return;
  }
  auto it = statuses_.find(level);
  if (it == statuses_.end() || !it->second.ok) return;  // sticky first violation
  it->second.ok = false;
  it->second.first_violation = txn;
  it->second.explanation = crooks::to_string(txn) + ": " + std::move(why);
  if (obs::enabled()) {
    obs::Registry::global()
        .counter("crooks_online_violations_total",
                 "First violations recorded per tracked level",
                 {{"level", std::string(ct::name_of(level))}})
        .inc();
  }
  if (obs::Trace::active()) {
    obs::Trace::event("online.violation",
                      obs::TraceFields()
                          .add("level", ct::name_of(level))
                          .add("txn", crooks::to_string(txn))
                          .add("why", it->second.explanation));
  }
}

bool OnlineChecker::append(const Transaction& txn) {
  if (txn.id() == kInitTxn || stream_.txns().contains(txn.id())) {
    ++stats_.duplicates_ignored;
    online_duplicates_total().inc();
    return false;
  }
  ingest(stream_.extend(txn));
  return true;
}

std::size_t OnlineChecker::append_all(std::span<const Transaction> block) {
  std::vector<Transaction> fresh;
  fresh.reserve(block.size());
  std::unordered_set<TxnId> in_block;
  for (const Transaction& t : block) {
    if (t.id() == kInitTxn || stream_.txns().contains(t.id()) ||
        !in_block.insert(t.id()).second) {
      ++stats_.duplicates_ignored;
      online_duplicates_total().inc();
      continue;
    }
    fresh.push_back(t);
  }
  if (fresh.empty()) return 0;
  ingest(stream_.extend(fresh));
  return fresh.size();
}

std::size_t OnlineChecker::append_all(const model::TransactionSet& txns) {
  const std::vector<Transaction> block(txns.begin(), txns.end());
  return append_all(std::span<const Transaction>(block));
}

std::size_t OnlineChecker::append_all(const model::CompiledHistory& ch) {
  std::vector<Transaction> block;
  block.reserve(ch.size());
  for (TxnIdx d = 0; d < ch.size(); ++d) block.push_back(ch.txns().at(d));
  return append_all(std::span<const Transaction>(block));
}

void OnlineChecker::ingest(const model::CompiledDelta& delta) {
  obs::TraceSpan span("online.ingest");
  obs::ScopedTimer timer(online_block_seconds());
  ++stats_.blocks;
  stats_.compiled_appends += delta.count;
  if (obs::enabled()) {
    online_blocks_total().inc();
    online_txns_total().inc(delta.count);
    // Register the tripwire series so it appears (at 0) in every scrape the
    // bench exports; a future fallback path must inc() it.
    online_fallback_total();
  }
  span.field("first", static_cast<std::uint64_t>(delta.first))
      .field("count", static_cast<std::uint64_t>(delta.count))
      .field("stream_size", static_cast<std::uint64_t>(stream_.size()));
  timelines_.resize(stream_.key_count());

  if (weak_only_) {
    // Every tracked level decides on read-state starts alone — skip the
    // per-op interval construction entirely.
    for (TxnIdx d = delta.first; d < delta.first + delta.count; ++d) {
      ingest_weak_txn(d);
    }
    return;
  }

  // Evaluate the block's transactions one by one in dense (= apply) order:
  // when transaction d is evaluated only [0, d) is installed, so "has the
  // observed writer been applied yet" is the dense compare `writer < d` —
  // exact for prefix writers, earlier block members, and intra-block forward
  // references alike.
  for (TxnIdx d = delta.first; d < delta.first + delta.count; ++d) {
    Placed p;
    p.state = static_cast<StateIndex>(d) + 1;
    const StateIndex parent = p.state - 1;
    const model::OpsView cops = stream_.ops(d);
    stats_.ops_evaluated += cops.size();
    p.ops.reserve(cops.size());
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & model::kOpWrite) != 0) {
        p.ops.push_back({{0, parent}, false});
        continue;
      }
      if ((m & model::kOpPhantom) != 0) {
        p.ops.push_back({{0, -1}, false});
        continue;
      }
      if ((m & model::kOpPositionalInternal) != 0) {
        p.ops.push_back((m & model::kOpSelfWriter) != 0
                            ? OpView{{0, parent}, true}
                            : OpView{{0, -1}, true});
        continue;
      }
      if ((m & model::kOpSelfWriter) != 0) {
        p.ops.push_back({{0, -1}, false});
        continue;
      }
      StateIndex version_pos = 0;
      if ((m & model::kOpInitWriter) == 0) {
        if ((m & (model::kOpUnknownWriter | model::kOpWriterMissesKey)) != 0 ||
            cops.writer(i) >= d) {  // writer not applied yet: reads from the future
          p.ops.push_back({{0, -1}, false});
          continue;
        }
        version_pos = static_cast<StateIndex>(cops.writer(i)) + 1;
      }
      const auto* tl = timeline_of(cops.key(i));
      StateIndex next_write = parent + 2;
      if (tl != nullptr) {
        auto it = std::upper_bound(
            tl->begin(), tl->end(), version_pos,
            [](StateIndex v, const auto& en) { return v < en.first; });
        if (it != tl->end()) next_write = it->first;
      }
      p.ops.push_back({{version_pos, std::min(next_write - 1, parent)}, false});
    }

    commit_placed(d, std::move(p));
  }
}

void OnlineChecker::ingest_weak_txn(TxnIdx d) {
  const TxnId id = stream_.id_of(d);
  const model::OpsView cops = stream_.ops(d);
  stats_.ops_evaluated += cops.size();
  ++stats_.direct_appends;

  // Per-op read-state starts from flags and dense compares alone. The start
  // is exactly `rs.first` of the general path: 0 for writes, phantoms,
  // internals, and initial-version reads; writer+1 for applied member
  // writers. PREREAD emptiness is likewise a flags fact — an applied member
  // version's interval {writer+1, min(next_write-1, parent)} is never empty
  // (upper_bound guarantees next_write > writer+1 and writer < d gives
  // writer+1 ≤ parent), and the initial version's {0, ...} always admits 0.
  weak_firsts_.assign(cops.size(), 0);
  bool preread = true;
  for (std::size_t i = 0; i < cops.size(); ++i) {
    const std::uint8_t m = cops.flags(i);
    if ((m & model::kOpWrite) != 0) continue;
    if ((m & model::kOpPhantom) != 0) {
      preread = false;
      continue;
    }
    if ((m & model::kOpPositionalInternal) != 0) {
      if ((m & model::kOpSelfWriter) == 0) preread = false;
      continue;
    }
    if ((m & model::kOpSelfWriter) != 0) {
      preread = false;
      continue;
    }
    if ((m & model::kOpInitWriter) != 0) continue;
    if ((m & (model::kOpUnknownWriter | model::kOpWriterMissesKey)) != 0 ||
        cops.writer(i) >= d) {  // writer not applied yet: reads from the future
      preread = false;
      continue;
    }
    weak_firsts_[i] = static_cast<StateIndex>(cops.writer(i)) + 1;
  }

  if (!preread) {
    for (IsolationLevel l : {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
                             IsolationLevel::kPSI}) {
      if (tracking(l)) violate(l, id, "PREREAD fails in the apply order");
    }
  }

  // Fractured reads (RA) — identical filters and iteration order to the
  // general path, with rs.first read from the scratch array.
  if (tracking(IsolationLevel::kReadAtomic) && preread) {
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m1 = cops.flags(i);
      if ((m1 & model::kOpWrite) != 0 || cops.internal(i) ||
          (m1 & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w1 = cops.writer(i);
      if (w1 == model::kNoTxnIdx || w1 >= d) continue;  // not applied
      for (std::size_t j = 0; j < cops.size(); ++j) {
        if (cops.is_write(j) || cops.internal(j)) continue;
        if (stream_.writes_key(w1, cops.key(j)) &&
            weak_firsts_[i] > weak_firsts_[j]) {
          violate(IsolationLevel::kReadAtomic, id,
                  "fractured read across " + crooks::to_string(stream_.id_of(w1)) +
                      "'s writes");
        }
      }
    }
  }

  Placed p;
  p.state = static_cast<StateIndex>(d) + 1;

  // CAUS-VIS (PSI). Under PREREAD every surviving read is of the initial or
  // an applied member version, whose interval start decides timeline
  // visibility: entry pos > rs.last ⟺ pos > rs.first, because entries at
  // pos ≤ rs.last are exactly those at pos ≤ rs.first (upper_bound picks the
  // first entry past the version) and no installed entry exceeds parent.
  if (tracking(IsolationLevel::kPSI) && preread) {
    p.prec.grow(txns_.size() + 1);
    auto absorb = [&](std::size_t slot) {
      p.prec.set(slot);
      p.prec.or_with(txns_[slot].prec);
    };
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & model::kOpWrite) != 0 || cops.internal(i) ||
          (m & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w = cops.writer(i);
      if (w != model::kNoTxnIdx && w < d) absorb(w);
    }
    for (model::KeyIdx k : stream_.write_keys(d)) {
      if (const auto* tl = timeline_of(k)) {
        for (const auto& [pos, slot] : *tl) absorb(slot);
      }
    }
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if (cops.is_write(i) || cops.internal(i)) continue;
      if (const auto* tl = timeline_of(cops.key(i))) {
        for (const auto& [pos, slot] : *tl) {
          if (pos > weak_firsts_[i] && p.prec.test(slot)) {
            violate(IsolationLevel::kPSI, id,
                    "CAUS-VIS fails: misses " +
                        crooks::to_string(stream_.id_of(static_cast<TxnIdx>(slot))) +
                        "'s write to " +
                        crooks::to_string(stream_.keys().key_of(cops.key(i))));
          }
        }
      }
    }
  }

  // Install — the tail of commit_placed. Retroactive inversions touch only
  // the timed levels, which a weak-only checker never tracks.
  for (model::KeyIdx k : stream_.write_keys(d)) {
    timelines_[k].emplace_back(p.state, static_cast<std::size_t>(d));
  }
  const SessionId s = stream_.session(d);
  if (s != kNoSession) session_states_[s].push_back(p.state);
  max_start_applied_ = std::max(max_start_applied_, stream_.start_ts(d));
  txns_.push_back(std::move(p));
}

void OnlineChecker::commit_placed(TxnIdx d, Placed p) {
  evaluate_new(d, p);
  if (assigned_mode_) {
    applied_mask_ |= static_cast<std::uint16_t>(
        1u << static_cast<unsigned>(assigned_level_of(d)));
  }
  check_retroactive_inversions(d);

  // Install.
  for (model::KeyIdx k : stream_.write_keys(d)) {
    timelines_[k].emplace_back(p.state, static_cast<std::size_t>(d));
  }
  const SessionId s = stream_.session(d);
  if (s != kNoSession) session_states_[s].push_back(p.state);
  max_start_applied_ = std::max(max_start_applied_, stream_.start_ts(d));
  txns_.push_back(std::move(p));
}

void OnlineChecker::evaluate_new(TxnIdx d, Placed& p) {
  const TxnId id = stream_.id_of(d);
  const StateIndex parent = p.state - 1;
  const model::OpsView cops = stream_.ops(d);
  // Assigned mode evaluates exactly the transaction's own level: tracking()
  // reads current_level_ for the rest of this call.
  if (assigned_mode_) current_level_ = assigned_level_of(d);

  bool preread = true;
  StateIndex complete_lo = 0, complete_hi = parent;
  for (const OpView& o : p.ops) {
    if (o.rs.empty()) preread = false;
    complete_lo = std::max(complete_lo, o.rs.first);
    complete_hi = std::min(complete_hi, o.rs.last);
  }

  if (!preread) {
    for (IsolationLevel l : {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
                             IsolationLevel::kPSI}) {
      if (tracking(l)) violate(l, id, "PREREAD fails in the apply order");
    }
  }

  // Fractured reads (RA).
  if (tracking(IsolationLevel::kReadAtomic) && preread) {
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m1 = cops.flags(i);
      if ((m1 & model::kOpWrite) != 0 || p.ops[i].internal ||
          (m1 & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w1 = cops.writer(i);
      if (w1 == model::kNoTxnIdx || w1 >= d) continue;  // not applied
      for (std::size_t j = 0; j < cops.size(); ++j) {
        if (cops.is_write(j) || p.ops[j].internal) continue;
        if (stream_.writes_key(w1, cops.key(j)) &&
            p.ops[i].rs.first > p.ops[j].rs.first) {
          violate(IsolationLevel::kReadAtomic, id,
                  "fractured read across " + crooks::to_string(stream_.id_of(w1)) +
                      "'s writes");
        }
      }
    }
  }

  // CAUS-VIS (PSI). Build the transitive PREC set from placed predecessors.
  // Assigned mode builds the set for EVERY transaction (preread permitting):
  // a PSI-level transaction arriving in a later block absorbs its
  // predecessors' closures, whatever levels those ran at.
  if ((tracking(IsolationLevel::kPSI) || assigned_mode_) && preread) {
    p.prec.grow(txns_.size() + 1);
    auto absorb = [&](std::size_t slot) {
      p.prec.set(slot);
      p.prec.or_with(txns_[slot].prec);
    };
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & model::kOpWrite) != 0 || p.ops[i].internal ||
          (m & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w = cops.writer(i);
      if (w != model::kNoTxnIdx && w < d) absorb(w);
    }
    for (model::KeyIdx k : stream_.write_keys(d)) {
      if (const auto* tl = timeline_of(k)) {
        for (const auto& [pos, slot] : *tl) absorb(slot);
      }
    }
    // The visibility check itself applies only when THIS transaction runs
    // at PSI.
    if (tracking(IsolationLevel::kPSI)) {
      for (std::size_t i = 0; i < cops.size(); ++i) {
        if (cops.is_write(i) || p.ops[i].internal) continue;
        if (const auto* tl = timeline_of(cops.key(i))) {
          for (const auto& [pos, slot] : *tl) {
            if (pos > p.ops[i].rs.last && p.prec.test(slot)) {
              violate(IsolationLevel::kPSI, id,
                      "CAUS-VIS fails: misses " +
                          crooks::to_string(stream_.id_of(static_cast<TxnIdx>(slot))) +
                          "'s write to " +
                          crooks::to_string(stream_.keys().key_of(cops.key(i))));
            }
          }
        }
      }
    }
  }

  // Serializability: the parent state must be complete.
  const bool parent_complete = complete_lo <= parent && complete_hi >= parent;
  if (tracking(IsolationLevel::kSerializable) && !parent_complete) {
    violate(IsolationLevel::kSerializable, id,
            "parent state is not complete in the apply order");
  }
  if (tracking(IsolationLevel::kStrictSerializable) && !parent_complete) {
    violate(IsolationLevel::kStrictSerializable, id,
            "parent state is not complete in the apply order");
  }

  // The snapshot family.
  const IsolationLevel si_family[] = {IsolationLevel::kAdyaSI, IsolationLevel::kAnsiSI,
                                      IsolationLevel::kSessionSI,
                                      IsolationLevel::kStrongSI};
  StateIndex no_conf = 0;
  for (model::KeyIdx k : stream_.write_keys(d)) {
    if (const auto* tl = timeline_of(k)) {
      no_conf = std::max(no_conf, tl->back().first);
    }
  }
  // Real-time recency bound: # applied transactions with commit < start(d).
  // A timed level that is still alive has already enforced, at every prior
  // append, that the applied stream is fully timestamped (time-oracle clause)
  // and in strictly increasing commit order (C-ORD clause) — so the hashed
  // engine's O(n) time_precedes scan collapses to one binary search over the
  // dense prefix. Computed lazily: only timed levels that survive their
  // preconditions need it, and only they may trust it.
  //
  // Assigned mode voids the sorted invariant: untimed-level transactions
  // interleave (their kNoTimestamp never tripped any clause), so the
  // real-time bounds fall back to linear scans over the prefix. Only
  // timed-level transactions in a mixed stream pay that cost.
  const Timestamp start_t = stream_.start_ts(d);
  StateIndex pos_cache = -1;
  auto applied_before_start = [&]() -> StateIndex {
    if (pos_cache < 0) {
      if (assigned_mode_) {
        // Largest applied state whose generator time-precedes d. On a sorted
        // timed prefix this equals the binary-search count below; on a mixed
        // prefix the set of real-time predecessors need not be a prefix, and
        // the max is the correct snapshot lower bound.
        StateIndex max_state = 0;
        for (TxnIdx q = 0; q < d; ++q) {
          if (stream_.commit_ts(q) != kNoTimestamp &&
              stream_.commit_ts(q) < start_t) {
            max_state = std::max(max_state, static_cast<StateIndex>(q) + 1);
          }
        }
        pos_cache = max_state;
      } else {
        std::size_t lo = 0, hi = static_cast<std::size_t>(d);
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          if (stream_.commit_ts(static_cast<TxnIdx>(mid)) < start_t) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        pos_cache = static_cast<StateIndex>(lo);
      }
    }
    return pos_cache;
  };
  // s > 0 is admissible for a timed level iff its generating transaction
  // (dense s-1) real-time-precedes d.
  auto generator_precedes = [&](StateIndex s) {
    const TxnIdx g = static_cast<TxnIdx>(s - 1);
    return stream_.commit_ts(g) != kNoTimestamp && stream_.commit_ts(g) < start_t;
  };
  for (IsolationLevel level : si_family) {
    if (!tracking(level) || !status_ok(level)) continue;
    const bool timed = level != IsolationLevel::kAdyaSI;
    if (timed && !stream_.has_timestamps(d)) {
      violate(level, id, "requires the time oracle");
      continue;
    }
    if (timed && d > 0) {
      // In uniform mode the parent is necessarily timestamped (an untimed
      // parent already killed the level), so the kNoTimestamp conjunct only
      // bites in assigned mode, where an untimed parent IS out of commit
      // order for this execution (kNoTimestamp = INT64_MIN would otherwise
      // slip past the `<`).
      if (!(stream_.commit_ts(d - 1) != kNoTimestamp &&
            stream_.commit_ts(d - 1) < stream_.commit_ts(d))) {
        violate(level, id, "C-ORD fails: applied out of commit order");
        continue;
      }
    }
    StateIndex lower = 0;
    if (level == IsolationLevel::kStrongSI) {
      lower = applied_before_start();
    } else if (level == IsolationLevel::kSessionSI &&
               stream_.session(d) != kNoSession) {
      if (auto sit = session_states_.find(stream_.session(d));
          sit != session_states_.end()) {
        if (assigned_mode_) {
          // Largest same-session state whose generator time-precedes d —
          // the sorted-prefix shortcut below is not available here.
          for (StateIndex s : sit->second) {
            if (s > 0 && generator_precedes(s)) lower = std::max(lower, s);
          }
        } else {
          // Largest applied same-session state within the real-time prefix.
          const StateIndex pos = applied_before_start();
          auto it = std::upper_bound(sit->second.begin(), sit->second.end(), pos);
          if (it != sit->second.begin()) lower = *(it - 1);
        }
      }
    }
    const StateIndex lo = std::max({complete_lo, no_conf, lower});
    const StateIndex hi = std::min(complete_hi, parent);
    // ∃ admissible s ∈ [lo, hi]: s == 0 always qualifies; a timed level also
    // accepts any s whose generating transaction real-time-precedes d, i.e.
    // s ≤ applied_before_start() — so the descending scan reduces to bounds.
    bool ok = hi >= lo;
    if (ok && timed && lo > 0) {
      if (assigned_mode_) {
        // Mixed prefix: admissibility is not downward closed — scan.
        ok = false;
        for (StateIndex s = hi; s >= lo && !ok; --s) ok = generator_precedes(s);
      } else {
        ok = lo <= applied_before_start();
      }
    }
    if (!ok) {
      violate(level, id, "no admissible snapshot state in the apply order");
    }
  }
}

void OnlineChecker::check_retroactive_inversions(TxnIdx d) {
  // A late-arriving transaction that committed before an already-applied
  // transaction *started* retroactively violates the real-time clauses of
  // strict serializability and Strong SI (and Session SI within a session).
  const Timestamp commit_d = stream_.commit_ts(d);
  if (commit_d == kNoTimestamp) return;
  // ∃ applied q with commit(d) < start(q) ⟺ commit(d) < max applied start —
  // on a monotone stream (the common case) this skips the O(n) scan entirely.
  if (!(commit_d < max_start_applied_)) return;

  const TxnId late_id = stream_.id_of(d);
  const SessionId late_session = stream_.session(d);

  if (assigned_mode_) {
    // An inversion hits the applied transaction q at q's OWN level, so the
    // dispatch is per q, not per tracked level. applied_mask_ skips the scan
    // when no applied transaction holds a real-time/session clause.
    if (!assigned_status_.ok) return;
    auto bit = [](IsolationLevel l) {
      return static_cast<std::uint16_t>(1u << static_cast<unsigned>(l));
    };
    if ((applied_mask_ & (bit(IsolationLevel::kStrictSerializable) |
                          bit(IsolationLevel::kStrongSI) |
                          bit(IsolationLevel::kSessionSI))) == 0) {
      return;
    }
    for (std::size_t slot = 0; slot < txns_.size(); ++slot) {
      const TxnIdx q = static_cast<TxnIdx>(slot);
      const IsolationLevel lq = assigned_level_of(q);
      if (lq != IsolationLevel::kStrictSerializable &&
          lq != IsolationLevel::kStrongSI && lq != IsolationLevel::kSessionSI) {
        continue;
      }
      if (!stream_.time_precedes(d, q)) continue;
      const TxnId q_id = stream_.id_of(q);
      if (lq == IsolationLevel::kStrictSerializable) {
        violate(lq, q_id,
                "real-time predecessor " + crooks::to_string(late_id) +
                    " was applied after it");
      } else if (lq == IsolationLevel::kStrongSI) {
        violate(lq, q_id,
                "snapshot misses " + crooks::to_string(late_id) +
                    ", which committed before it started");
      } else if (stream_.session(q) != kNoSession &&
                 stream_.session(q) == late_session) {
        violate(lq, q_id,
                "session predecessor " + crooks::to_string(late_id) +
                    " was applied after it");
      }
    }
    return;
  }

  auto live = [&](IsolationLevel l) {
    auto it = statuses_.find(l);
    return it != statuses_.end() && it->second.ok;
  };
  if (!live(IsolationLevel::kStrictSerializable) && !live(IsolationLevel::kStrongSI) &&
      !live(IsolationLevel::kSessionSI)) {
    return;
  }

  for (std::size_t slot = 0; slot < txns_.size(); ++slot) {
    const TxnIdx q = static_cast<TxnIdx>(slot);
    if (!stream_.time_precedes(d, q)) continue;
    const TxnId q_id = stream_.id_of(q);
    if (tracking(IsolationLevel::kStrictSerializable)) {
      violate(IsolationLevel::kStrictSerializable, q_id,
              "real-time predecessor " + crooks::to_string(late_id) +
                  " was applied after it");
    }
    if (tracking(IsolationLevel::kStrongSI)) {
      violate(IsolationLevel::kStrongSI, q_id,
              "snapshot misses " + crooks::to_string(late_id) +
                  ", which committed before it started");
    }
    if (tracking(IsolationLevel::kSessionSI) && stream_.session(q) != kNoSession &&
        stream_.session(q) == late_session) {
      violate(IsolationLevel::kSessionSI, q_id,
              "session predecessor " + crooks::to_string(late_id) +
                  " was applied after it");
    }
  }
}

}  // namespace crooks::checker
