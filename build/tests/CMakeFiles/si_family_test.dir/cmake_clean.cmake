file(REMOVE_RECURSE
  "CMakeFiles/si_family_test.dir/si_family_test.cpp.o"
  "CMakeFiles/si_family_test.dir/si_family_test.cpp.o.d"
  "si_family_test"
  "si_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
