// Pipelined session-sharded ingest vs the serial follow loop.
//
//  * startup parity assert — before any timing, the same observation text is
//    audited serially and through the pipeline at 1 and 8 shards; verdicts,
//    counters, per-level statuses and forensics JSON must be byte-identical
//    or the process aborts. A pipeline that is fast but wrong never reports
//    a number.
//  * BM_FollowIngest/threads — the headline: tail the same multi-megabyte
//    observation stream (plain-text format, 8 sessions, chunked like a
//    growing file) through report::stream_audit serially and with
//    --ingest-threads=N, same process, same chunk boundaries. Exports
//    serial_secs / pipelined_secs / speedup_vs_serial / txns_per_sec and
//    host_cpus (the CI gate asserts speedup_vs_serial >= 1.5 at N=4 only
//    when host_cpus >= 4 — a 1-core runner records the numbers without the
//    claim).
//
// The stream is audited under --window=4096 (the soak configuration): decode
// cost dominates append cost there, which is precisely the asymmetry the
// shard stage exploits.
//
// Export with --benchmark_format=json > BENCH_checker_pipeline.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.hpp"
#include "checker/online.hpp"
#include "forensics/collector.hpp"
#include "obs/metrics.hpp"
#include "report/forensics_render.hpp"
#include "report/serialize.hpp"
#include "report/stream_audit.hpp"

using namespace crooks;

namespace {

constexpr std::size_t kKeys = 64;
constexpr std::uint32_t kSessions = 8;
constexpr std::size_t kChunks = 32;

/// Same generator shape as bench_online_window's StreamGen — read-latest,
/// sessions round-robin, monotone timestamps, serializable by construction —
/// but rendered to the plain-text observation format, because THIS bench
/// measures the ingest path (tokenize, parse, build) ahead of the checker.
std::string stream_text(std::size_t total) {
  std::vector<TxnId> latest(kKeys, TxnId{0});
  Timestamp ts = 0;
  std::string out;
  out.reserve(total * 48);
  for (std::uint64_t id = 1; id <= total; ++id) {
    const std::size_t wk = id % kKeys;
    const std::size_t rk = (id * 7 + 3) % kKeys;
    report::Observations obs;
    obs.txns = model::TransactionSet{std::vector<model::Transaction>{
        model::TxnBuilder(id)
            .read(Key{rk}, latest[rk])
            .write(Key{wk})
            .session(SessionId{static_cast<std::uint32_t>(id % kSessions)})
            .at(ts, ts + 1)
            .build()}};
    out += report::to_text(obs);
    latest[wk] = TxnId{id};
    ts += 2;
  }
  return out;
}

/// An istream source that reports EOF every text.size()/chunks bytes and
/// resumes after clear() — the in-process stand-in for a growing file, giving
/// both arms identical, deterministic batch boundaries.
class ChunkedBuf : public std::streambuf {
 public:
  ChunkedBuf(const std::string& text, std::size_t chunks)
      : text_(text),
        chunk_(std::max<std::size_t>(1, text.size() / chunks)) {}

  /// True once every byte has been consumed — the audit callback's exit
  /// signal (deterministic, unlike an idle timeout). Atomic because the
  /// pipelined path's callback runs on the merge thread while the reader
  /// thread is still driving underflow().
  bool exhausted() const { return done_.load(std::memory_order_acquire); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    if (pos_ >= text_.size()) {
      done_.store(true, std::memory_order_release);
      return traits_type::eof();
    }
    if (pending_break_) {
      pending_break_ = false;
      return traits_type::eof();
    }
    char* data = const_cast<char*>(text_.data());
    const std::size_t n = std::min(chunk_, text_.size() - pos_);
    setg(data + pos_, data + pos_, data + pos_ + n);
    pos_ += n;
    pending_break_ = true;
    return traits_type::to_int_type(*gptr());
  }

 private:
  const std::string& text_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
  bool pending_break_ = false;
  std::atomic<bool> done_{false};
};

struct AuditRun {
  report::StreamAuditResult result;
  std::string forensics;
  double seconds = 0;
};

/// Untimed serial pre-pass: learn how many batches this text yields at these
/// chunk boundaries. The exhausted() callback is a correct exit ONLY
/// serially — the pipelined reader runs ahead of the merge stage, so the
/// merge-side callback would see "input done" epochs early and stop the
/// audit mid-stream. The timed arms exit on max_blocks instead, which both
/// paths define identically.
std::uint64_t count_blocks(const std::string& text) {
  ChunkedBuf buf(text, kChunks);
  std::istream in(&buf);
  report::StreamAuditOptions opts;
  opts.poll_ms = 0;
  opts.idle_exit_ms = 10000;
  opts.window_txns = 4096;
  const report::StreamAuditResult r = report::stream_audit(
      in, opts, [&](const report::StreamBlockReport&) { return !buf.exhausted(); });
  return r.blocks;
}

AuditRun run_audit(const std::string& text, std::size_t ingest_threads,
                   std::uint64_t max_blocks) {
  ChunkedBuf buf(text, kChunks);
  std::istream in(&buf);
  forensics::Collector collector;
  report::StreamAuditOptions opts;
  opts.poll_ms = 0;
  opts.idle_exit_ms = 10000;  // safety net; max_blocks is the real exit
  opts.max_blocks = max_blocks;
  opts.window_txns = 4096;
  opts.ingest_threads = ingest_threads;
  opts.on_checker = [&](checker::OnlineChecker& chk) { collector.attach(chk); };
  AuditRun run;
  const auto t0 = std::chrono::steady_clock::now();
  run.result = report::stream_audit(in, opts);
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run.forensics = report::forensics_json(collector.table());
  return run;
}

std::string fingerprint(const AuditRun& run) {
  std::ostringstream os;
  const report::StreamAuditResult& r = run.result;
  os << r.blocks << ' ' << r.transactions << ' ' << r.duplicates << " ["
     << r.error << "]\n";
  for (const auto& [level, st] : r.statuses) {
    os << ct::name_of(level) << ' ' << st.ok << ' '
       << (st.first_violation ? st.first_violation->value : 0) << ' '
       << st.explanation << '\n';
  }
  const checker::OnlineChecker::Stats& s = r.checker_stats;
  os << s.blocks << ' ' << s.compiled_appends << ' '
     << s.hashed_fallback_appends << ' ' << s.duplicates_ignored << ' '
     << s.ops_evaluated << ' ' << s.direct_appends << ' ' << s.retired_txns
     << ' ' << s.retired_ops << ' ' << s.window_folds << ' '
     << s.past_window_reads << ' ' << s.past_window_checks << '\n';
  os << run.forensics;
  return os.str();
}

/// Abort-on-mismatch parity check: the pipeline must agree with the serial
/// monitor byte-for-byte before any throughput number is worth exporting.
void assert_startup_parity() {
  const std::string text = stream_text(4000);
  const std::uint64_t blocks = count_blocks(text);
  const AuditRun serial = run_audit(text, 0, blocks);
  const std::string want = fingerprint(serial);
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const AuditRun piped = run_audit(text, threads, blocks);
    const std::string got = fingerprint(piped);
    if (got != want) {
      std::fprintf(stderr,
                   "startup parity FAILED at ingest_threads=%zu\n"
                   "--- serial ---\n%s\n--- pipelined ---\n%s\n",
                   threads, want.c_str(), got.c_str());
      std::abort();
    }
  }
}

void BM_FollowIngest(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t total = 60000;
  static const std::string& text = *new std::string(stream_text(total));
  static const std::uint64_t blocks = count_blocks(text);
  for (auto _ : state) {
    const AuditRun serial = run_audit(text, 0, blocks);
    const AuditRun piped = run_audit(text, threads, blocks);
    if (fingerprint(serial) != fingerprint(piped)) {
      std::fprintf(stderr, "parity lost at ingest_threads=%zu\n", threads);
      std::abort();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.counters["serial_secs"] = serial.seconds;
    state.counters["pipelined_secs"] = piped.seconds;
    state.counters["speedup_vs_serial"] = serial.seconds / piped.seconds;
    state.counters["txns_per_sec"] =
        static_cast<double>(total) / piped.seconds;
    state.counters["txns_per_sec_serial"] =
        static_cast<double>(total) / serial.seconds;
    state.counters["host_cpus"] = std::thread::hardware_concurrency();
  }
}
BENCHMARK(BM_FollowIngest)->Arg(1)->Arg(2)->Arg(4)->Iterations(1)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  crooks::benchx::stamp_build_type();  // also force-included; idempotent
  assert_startup_parity();
  benchmark::RunSpecifiedBenchmarks();
  // The per-shard ingest series CI gates on live in the metrics registry.
  if (const char* path = std::getenv("CROOKS_OBS_METRICS_JSON")) {
    std::ofstream out(path);
    out << crooks::obs::Registry::global().json() << "\n";
  }
  return 0;
}
