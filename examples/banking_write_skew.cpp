// Figure 3: the banking write-skew anomaly, end to end.
//
// Alice and Bob share a checking and a savings account ($30 each; the sum
// must stay non-negative). Both check the combined balance and then withdraw
// $40 from different accounts. Under snapshot isolation both withdrawals may
// read the same stale-but-complete state and commit — the invariant breaks.
// Under two-phase locking (serializable) the second withdrawal observes the
// first.
//
// The example then audits the store's own observations with the checker: the
// SI run passes CT_SI but fails CT_SER, with a violation message phrased in
// terms of client-observable states (§5.1).
#include <cstdio>

#include "checker/checker.hpp"
#include "store/store.hpp"

using namespace crooks;

namespace {

constexpr Key kChecking{0}, kSavings{1};
constexpr int kInitialBalance = 30;
constexpr int kWithdrawal = 40;

struct Outcome {
  bool alice_committed = false;
  bool bob_committed = false;
  model::TransactionSet observations;
  std::unordered_map<Key, std::vector<TxnId>> version_order;
};

/// Run the two concurrent withdrawals, interleaved so both read before
/// either writes. The "application logic" (balance arithmetic) lives here;
/// the store tracks who-wrote-what.
Outcome run_withdrawals(store::CCMode mode) {
  store::Store s(mode);
  const TxnId alice = s.begin();
  const TxnId bob = s.begin();

  // Both read both balances. A read observing ⊥ or a commit from the other
  // withdrawal tells the application which balance it sees.
  auto balance_seen = [&](TxnId me, TxnId other_withdrawal) {
    int total = 2 * kInitialBalance;
    const auto c = s.read(me, kChecking);
    const auto v = s.read(me, kSavings);
    if (c.status == store::StepStatus::kOk && c.value.writer == other_withdrawal) {
      total -= kWithdrawal;
    }
    if (v.status == store::StepStatus::kOk && v.value.writer == other_withdrawal) {
      total -= kWithdrawal;
    }
    return total;
  };

  Outcome out;
  const int alice_sees = balance_seen(alice, bob);
  const int bob_sees = balance_seen(bob, alice);

  // Withdraw only if the application believes the funds suffice. Under 2PL
  // a write may block on the other's read lock (the older waits, the
  // younger dies), so drive both to completion round-robin.
  struct Attempt {
    TxnId id;
    Key target;
    bool wants;
    int stage = 0;  // 0 = write, 1 = commit, 2 = finished
    bool committed = false;
  };
  Attempt attempts[2] = {{alice, kChecking, alice_sees >= kWithdrawal},
                         {bob, kSavings, bob_sees >= kWithdrawal}};
  bool progress = true;
  while (progress) {
    progress = false;
    for (Attempt& a : attempts) {
      if (a.stage == 2) continue;
      if (!s.is_active(a.id)) {  // wait-die victim
        a.stage = 2;
        progress = true;
        continue;
      }
      if (!a.wants) {  // insufficient funds observed: back off
        s.abort(a.id);
        a.stage = 2;
        progress = true;
        continue;
      }
      const store::StepStatus st =
          a.stage == 0 ? s.write(a.id, a.target) : s.commit(a.id);
      if (st == store::StepStatus::kOk) {
        a.committed = a.stage == 1;
        a.stage += 1;
        progress = true;
      } else if (st == store::StepStatus::kAborted) {
        a.stage = 2;
        progress = true;
      }  // kBlocked: retry next round, after the other side moved
    }
  }
  for (Attempt& a : attempts) {  // safety: never export with live transactions
    if (s.is_active(a.id)) s.abort(a.id);
  }
  out.alice_committed = attempts[0].committed;
  out.bob_committed = attempts[1].committed;

  out.observations = s.observations();
  out.version_order = s.version_order();
  return out;
}

void report(const char* title, store::CCMode mode) {
  const Outcome o = run_withdrawals(mode);
  const int final_balance = 2 * kInitialBalance -
                            (o.alice_committed ? kWithdrawal : 0) -
                            (o.bob_committed ? kWithdrawal : 0);
  std::printf("%s:\n", title);
  std::printf("  Alice's withdrawal: %s\n", o.alice_committed ? "committed" : "did not commit");
  std::printf("  Bob's withdrawal:   %s\n", o.bob_committed ? "committed" : "did not commit");
  std::printf("  combined balance:   $%d %s\n", final_balance,
              final_balance < 0 ? " <-- INVARIANT VIOLATED (write skew)" : "");

  checker::CheckOptions opts;
  opts.version_order = &o.version_order;
  for (ct::IsolationLevel level :
       {ct::IsolationLevel::kSerializable, ct::IsolationLevel::kAdyaSI}) {
    const checker::CheckResult r = checker::check(level, o.observations, opts);
    std::printf("  audit %-13s %s\n", std::string(ct::name_of(level)).c_str(),
                r.satisfiable() ? "PASS" : ("FAIL — " + r.detail).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Both accounts start at $%d; each withdrawal is $%d.\n\n",
              kInitialBalance, kWithdrawal);
  report("Figure 3(b): snapshot isolation", store::CCMode::kSnapshotIsolation);
  report("Figure 3(a): two-phase locking (serializable)", store::CCMode::kTwoPhaseLocking);
  return 0;
}
