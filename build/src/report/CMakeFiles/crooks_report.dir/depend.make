# Empty dependencies file for crooks_report.
# This may be replaced when dependencies are built.
