// Read-state analysis tests, including the paper's Figure 2 example.
#include <gtest/gtest.h>

#include "model/analysis.hpp"

namespace crooks::model {
namespace {

constexpr Key kX{0}, kY{1}, kZ{2};

/// Figure 2 reconstruction. Execution:
///   s0 --Ta: w(x)--> s1 --Tc: w(y)--> s2 --Td: w(y),w(z)--> s3
///      --Tb: r(y=Tc), r(z=⊥)--> s4 --Te: r(x=⊥), r(z=Td)--> s5
/// Tb's r(y=Tc) can only have read from s2 (y overwritten at s3); its
/// r(z=⊥) from s0..s2 — s2 is a complete state for Tb. Te has no complete
/// state: r(x=⊥) only fits s0, r(z=Td) only states ≥ s3.
struct Figure2 : ::testing::Test {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),                                // Ta
      TxnBuilder(2).read(kY, TxnId{3}).read(kZ, kInitTxn).build(),    // Tb
      TxnBuilder(3).write(kY).build(),                                // Tc
      TxnBuilder(4).write(kY).write(kZ).build(),                      // Td
      TxnBuilder(5).read(kX, kInitTxn).read(kZ, TxnId{4}).build(),    // Te
  }};
  Execution e{txns, {TxnId{1}, TxnId{3}, TxnId{4}, TxnId{2}, TxnId{5}}};
  ReadStateAnalysis a{txns, e};
};

TEST_F(Figure2, ReadStatesOfTb) {
  const TxnAnalysis& tb = a.txn(TxnId{2});
  EXPECT_EQ(tb.ops[0].rs, (StateInterval{2, 2}));  // r(y=Tc): only s2
  EXPECT_EQ(tb.ops[1].rs, (StateInterval{0, 2}));  // r(z=⊥): s0..s2
}

TEST_F(Figure2, CompleteStateOfTbIsS2) {
  const TxnAnalysis& tb = a.txn(TxnId{2});
  EXPECT_TRUE(tb.preread);
  EXPECT_EQ(tb.complete, (StateInterval{2, 2}));
}

TEST_F(Figure2, TeHasNoCompleteState) {
  const TxnAnalysis& te = a.txn(TxnId{5});
  EXPECT_TRUE(te.preread);  // every op individually has read states
  EXPECT_EQ(te.ops[0].rs, (StateInterval{0, 0}));  // r(x=⊥): only s0
  EXPECT_EQ(te.ops[1].rs, (StateInterval{3, 4}));  // r(z=Td): s3..parent
  EXPECT_TRUE(te.complete.empty());
}

TEST_F(Figure2, WritersReadStatesSpanToParent) {
  const TxnAnalysis& td = a.txn(TxnId{4});
  EXPECT_EQ(td.parent, 2);
  EXPECT_EQ(td.ops[0].rs, (StateInterval{0, 2}));
  EXPECT_EQ(td.ops[1].rs, (StateInterval{0, 2}));
}

TEST_F(Figure2, PrereadHoldsForAll) { EXPECT_TRUE(a.preread_all()); }

TEST_F(Figure2, TimelinesTrackVersions) {
  const auto& tl = a.timeline(kY);
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].writer, kInitTxn);
  EXPECT_EQ(tl[1].writer, TxnId{3});
  EXPECT_EQ(tl[1].pos, 2);
  EXPECT_EQ(tl[2].writer, TxnId{4});
  EXPECT_EQ(tl[2].pos, 3);
}

TEST_F(Figure2, UnwrittenKeyTimelineIsInitialOnly) {
  const auto& tl = a.timeline(Key{99});
  ASSERT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl[0].writer, kInitTxn);
}

TEST_F(Figure2, LastWriteQueries) {
  EXPECT_EQ(a.last_write_at_or_before(kY, 5), 3);
  EXPECT_EQ(a.last_write_at_or_before(kY, 2), 2);
  EXPECT_EQ(a.last_write_at_or_before(kY, 1), 0);
  EXPECT_EQ(a.last_write_at_or_before(kX, 5), 1);
}

TEST(Analysis, FutureReadHasEmptyReadStates) {
  // T1 reads T2's write, but the execution orders T1 first: no read state.
  TransactionSet txns{{TxnBuilder(1).read(kX, TxnId{2}).build(),
                       TxnBuilder(2).write(kX).build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  EXPECT_FALSE(a.txn(TxnId{1}).preread);
  EXPECT_TRUE(a.txn(TxnId{1}).ops[0].rs.empty());

  // Reversed order: fine.
  Execution e2(txns, {TxnId{2}, TxnId{1}});
  ReadStateAnalysis a2(txns, e2);
  EXPECT_TRUE(a2.txn(TxnId{1}).preread);
  EXPECT_EQ(a2.txn(TxnId{1}).ops[0].rs, (StateInterval{1, 1}));
}

TEST(Analysis, ReadFromUnknownWriterFailsPreread) {
  TransactionSet txns{{TxnBuilder(1).read(kX, TxnId{77}).build()}};
  ReadStateAnalysis a(txns, Execution::identity(txns));
  EXPECT_FALSE(a.preread_all());
}

TEST(Analysis, ReadFromWriterThatNeverWroteKeyFailsPreread) {
  TransactionSet txns{{TxnBuilder(1).write(kY).build(),
                       TxnBuilder(2).read(kX, TxnId{1}).build()}};
  ReadStateAnalysis a(txns, Execution::identity(txns));
  EXPECT_FALSE(a.txn(TxnId{2}).preread);
}

TEST(Analysis, PhantomReadFailsPreread) {
  TransactionSet txns{{TxnBuilder(1).write(kX).build(),
                       TxnBuilder(2).read_intermediate(kX, TxnId{1}).build()}};
  ReadStateAnalysis a(txns, Execution::identity(txns));
  EXPECT_FALSE(a.txn(TxnId{2}).preread);
}

TEST(Analysis, InternalReadByConventionSpansToParent) {
  TransactionSet txns{{TxnBuilder(1).write(kX).build(),
                       TxnBuilder(2).write(kX).read(kX, TxnId{2}).build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  const TxnAnalysis& t2 = a.txn(TxnId{2});
  EXPECT_TRUE(t2.ops[1].internal);
  EXPECT_EQ(t2.ops[1].rs, (StateInterval{0, 1}));
}

TEST(Analysis, InternalReadOfWrongValueFailsPreread) {
  // Claims to read T1's value for x after writing x itself: violates
  // read-your-own-writes; no read state exists (Definition 2).
  TransactionSet txns{{TxnBuilder(1).write(kX).build(),
                       TxnBuilder(2).write(kX).read(kX, TxnId{1}).build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  EXPECT_FALSE(a.txn(TxnId{2}).preread);
}

TEST(Analysis, NoConfThresholdTracksConflictingWrites) {
  // T3 writes x; x was last written at state 2 (by T2) before T3's parent.
  TransactionSet txns{{TxnBuilder(1).write(kX).build(), TxnBuilder(2).write(kX).build(),
                       TxnBuilder(3).write(kX).build(), TxnBuilder(4).write(kY).build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}, TxnId{4}, TxnId{3}});
  ReadStateAnalysis a(txns, e);
  EXPECT_EQ(a.txn(TxnId{3}).no_conf_min, 2);   // T2's write at s2
  EXPECT_EQ(a.txn(TxnId{2}).no_conf_min, 1);   // T1's write at s1
  EXPECT_EQ(a.txn(TxnId{1}).no_conf_min, 0);   // nothing before
  EXPECT_EQ(a.txn(TxnId{4}).no_conf_min, 0);   // y never written before
}

TEST(Analysis, PrecedenceReadAndWriteDeps) {
  // T2 reads T1's x; T3 writes x (after T1, T2); T4 reads T3's x.
  TransactionSet txns{{TxnBuilder(1).write(kX).build(),
                       TxnBuilder(2).read(kX, TxnId{1}).build(),
                       TxnBuilder(3).write(kX).build(),
                       TxnBuilder(4).read(kX, TxnId{3}).build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}, TxnId{3}, TxnId{4}});
  ReadStateAnalysis a(txns, e);
  const Precedence& p = a.precedence();
  const auto d = [&](std::uint64_t id) { return txns.dense_index_of(TxnId{id}); };
  EXPECT_TRUE(p.precedes(d(1), d(2)));   // read dep
  EXPECT_TRUE(p.precedes(d(1), d(3)));   // ww dep
  EXPECT_TRUE(p.precedes(d(3), d(4)));   // read dep
  EXPECT_TRUE(p.precedes(d(1), d(4)));   // transitive
  EXPECT_FALSE(p.precedes(d(2), d(3)));  // rw is NOT a D-PREC edge
  EXPECT_FALSE(p.precedes(d(4), d(1)));
  EXPECT_EQ(p.direct_count(d(4)), 1u);
  EXPECT_EQ(p.direct_count(d(3)), 1u);
  EXPECT_EQ(p.direct_count(d(1)), 0u);
}

TEST(Analysis, PrecedenceCountsDistinctDirectPreds) {
  // T3 reads from T1 and T2 and ww-depends on both: D-PREC = {T1, T2}.
  TransactionSet txns{{TxnBuilder(1).write(kX).build(), TxnBuilder(2).write(kY).build(),
                       TxnBuilder(3)
                           .read(kX, TxnId{1})
                           .read(kY, TxnId{2})
                           .write(kX)
                           .write(kY)
                           .build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}, TxnId{3}});
  ReadStateAnalysis a(txns, e);
  EXPECT_EQ(a.precedence().direct_count(txns.dense_index_of(TxnId{3})), 2u);
}

}  // namespace
}  // namespace crooks::model
