#include "forensics/collector.hpp"

#include "obs/metrics.hpp"

namespace crooks::forensics {

namespace {

obs::Gauge& patterns_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_forensics_patterns",
      "Distinct violation patterns currently aggregated");
  return g;
}
obs::Counter& overflow_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_forensics_pattern_overflow_total",
      "Witnesses dropped because the bounded pattern table was full with an "
      "unseen fingerprint");
  return c;
}

}  // namespace

void Collector::attach(checker::OnlineChecker& chk) {
  checker::OnlineChecker* p = &chk;
  chk.set_violation_hook(
      [this, p](const checker::OnlineChecker::ViolationEvent& ev) {
        on_violation(p->stream(), ev);
      });
}

void Collector::on_violation(const model::CompiledHistory& ch,
                             const checker::OnlineChecker::ViolationEvent& ev) {
  WitnessInputs in;
  in.failing = ev.dense;
  in.clause = classify_clause(ev.why);
  in.level = ev.level;
  in.engine = "online";
  in.other = ev.other;
  add(extract_witness(ch, in));
}

void Collector::add(const Witness& w) {
  table_.add(w);
  if (!opt_.metrics || !obs::enabled()) return;

  const PatternRow* row = table_.find(w.fingerprint);
  if (row == nullptr) {
    overflow_total().inc();
    patterns_gauge().set(static_cast<std::int64_t>(table_.size()));
    return;
  }
  obs::Registry::global()
      .counter("crooks_forensics_witnesses_total",
               "Violation witnesses aggregated per pattern and level",
               {{"pattern", row->name},
                {"level", std::string(ct::name_of(w.level))}})
      .inc();
  patterns_gauge().set(static_cast<std::int64_t>(table_.size()));
  // Hot-spot sketch heads, bounded by the pattern cap: per pattern, the top
  // key/session item and its (space-saving, overestimating) count.
  const auto keys = row->hot_keys.top();
  if (!keys.empty()) {
    obs::Registry::global()
        .gauge("crooks_forensics_hot_key",
               "Hottest implicated key per pattern (space-saving sketch head)",
               {{"pattern", row->name}})
        .set(static_cast<std::int64_t>(keys[0].item));
    obs::Registry::global()
        .gauge("crooks_forensics_hot_key_count",
               "Witness count of the hottest implicated key per pattern",
               {{"pattern", row->name}})
        .set(static_cast<std::int64_t>(keys[0].count));
  }
  const auto sessions = row->hot_sessions.top();
  if (!sessions.empty()) {
    obs::Registry::global()
        .gauge("crooks_forensics_hot_session",
               "Hottest implicated session per pattern (sketch head)",
               {{"pattern", row->name}})
        .set(static_cast<std::int64_t>(sessions[0].item));
    obs::Registry::global()
        .gauge("crooks_forensics_hot_session_count",
               "Witness count of the hottest implicated session per pattern",
               {{"pattern", row->name}})
        .set(static_cast<std::int64_t>(sessions[0].count));
  }
}

}  // namespace crooks::forensics
