// The anomaly × isolation-level matrix, decided end-to-end by the checker
// (Definition 5). Each classic anomaly separates adjacent levels of the
// hierarchy exactly where the paper says it should. Parameterized over
// every (scenario, level) pair; expected verdicts derived from §4–§5.
#include <gtest/gtest.h>

#include <set>

#include "checker/checker.hpp"

namespace crooks::checker {
namespace {

using ct::IsolationLevel;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1};
using L = IsolationLevel;

struct Scenario {
  std::string name;
  TransactionSet txns;
  std::set<L> satisfiable;
};

const std::set<L> kAll{L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic,
                       L::kPSI,             L::kAdyaSI,        L::kAnsiSI,
                       L::kSessionSI,       L::kStrongSI,      L::kSerializable,
                       L::kStrictSerializable};

std::set<L> all_but(std::initializer_list<L> unsat) {
  std::set<L> s = kAll;
  for (L l : unsat) s.erase(l);
  return s;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  out.push_back({"clean_serial_chain",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 1).build(),
                     TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(2, 3).build(),
                     TxnBuilder(3).read(kX, TxnId{1}).read(kY, TxnId{2}).at(4, 5).build(),
                 }},
                 kAll});

  out.push_back({"write_skew",
                 TransactionSet{{
                     TxnBuilder(1).read(kX, kInitTxn).read(kY, kInitTxn).write(kX).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).read(kY, kInitTxn).write(kY).at(1, 11).build(),
                 }},
                 all_but({L::kSerializable, L::kStrictSerializable})});

  out.push_back({"lost_update",
                 TransactionSet{{
                     TxnBuilder(1).read(kX, kInitTxn).write(kX).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).write(kX).at(1, 11).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic}});

  out.push_back({"long_fork",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 10).build(),
                     TxnBuilder(2).write(kY).at(1, 11).build(),
                     TxnBuilder(3).read(kX, TxnId{1}).read(kY, kInitTxn).at(2, 12).build(),
                     TxnBuilder(4).read(kX, kInitTxn).read(kY, TxnId{2}).at(3, 13).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic, L::kPSI}});

  out.push_back({"causality_violation",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 10).build(),
                     TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(11, 12).build(),
                     TxnBuilder(3).read(kY, TxnId{2}).read(kX, kInitTxn).at(13, 14).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted, L::kReadAtomic}});

  out.push_back({"fractured_read",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).write(kY).at(0, 10).build(),
                     TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).at(1, 11).build(),
                 }},
                 {L::kReadUncommitted, L::kReadCommitted}});

  out.push_back({"dirty_read_aborted",
                 TransactionSet{{
                     TxnBuilder(2).read(kX, TxnId{99}).at(0, 1).build(),
                 }},
                 {L::kReadUncommitted}});

  out.push_back({"intermediate_read",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).at(0, 1).build(),
                     TxnBuilder(2).read_intermediate(kX, TxnId{1}).at(2, 3).build(),
                 }},
                 {L::kReadUncommitted}});

  out.push_back({"session_inversion",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).session(SessionId{1}).at(20, 30).build(),
                 }},
                 all_but({L::kSessionSI, L::kStrongSI, L::kStrictSerializable})});

  out.push_back({"cross_session_staleness",
                 TransactionSet{{
                     TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(kX, kInitTxn).session(SessionId{2}).at(20, 30).build(),
                 }},
                 all_but({L::kStrongSI, L::kStrictSerializable})});

  return out;
}

class AnomalyMatrix : public ::testing::TestWithParam<Scenario> {};

TEST_P(AnomalyMatrix, CheckerMatchesExpectedVerdicts) {
  const Scenario& sc = GetParam();
  for (L level : kAll) {
    const bool expect_sat = sc.satisfiable.contains(level);
    const CheckResult r = check(level, sc.txns);
    ASSERT_NE(r.outcome, Outcome::kUnknown)
        << sc.name << " @ " << ct::name_of(level) << ": " << r.detail;
    EXPECT_EQ(r.satisfiable(), expect_sat)
        << sc.name << " @ " << ct::name_of(level) << ": " << r.detail;
    if (r.satisfiable()) {
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(verify_witness(level, sc.txns, *r.witness).ok);
    }
  }
}

TEST_P(AnomalyMatrix, ExhaustiveAgreesWithDispatch) {
  const Scenario& sc = GetParam();
  for (L level : kAll) {
    const CheckResult d = check(level, sc.txns);
    const CheckResult e = check_exhaustive(level, sc.txns);
    ASSERT_NE(e.outcome, Outcome::kUnknown);
    EXPECT_EQ(d.outcome, e.outcome) << sc.name << " @ " << ct::name_of(level);
  }
}

TEST_P(AnomalyMatrix, VerdictsMonotoneOverHierarchy) {
  const Scenario& sc = GetParam();
  for (L strong : kAll) {
    if (!sc.satisfiable.contains(strong)) continue;
    for (L weak : kAll) {
      if (ct::at_least_as_strong(strong, weak)) {
        EXPECT_TRUE(sc.satisfiable.contains(weak))
            << sc.name << ": " << ct::name_of(strong) << " sat implies "
            << ct::name_of(weak) << " sat (scenario table inconsistent)";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Anomalies, AnomalyMatrix, ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace crooks::checker
