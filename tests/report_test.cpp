// Serialization round-trips, parser error handling, and audit rendering.
#include <gtest/gtest.h>

#include "report/report.hpp"
#include "report/serialize.hpp"

namespace crooks::report {
namespace {

const char* kWriteSkew = R"(
# write skew
txn 1 start=0 commit=10
  read 0 0
  read 1 0
  write 0
end
txn 2 start=1 commit=11
  read 0 0
  read 1 0
  write 1
end
vo 0 1
vo 1 2
)";

TEST(Serialize, ParsesWellFormedInput) {
  const Observations obs = parse_observations(kWriteSkew);
  ASSERT_EQ(obs.txns.size(), 2u);
  const model::Transaction& t1 = obs.txns.by_id(TxnId{1});
  EXPECT_EQ(t1.ops().size(), 3u);
  EXPECT_EQ(t1.start_ts(), 0);
  EXPECT_EQ(t1.commit_ts(), 10);
  EXPECT_TRUE(t1.ops()[0].is_read());
  EXPECT_TRUE(t1.ops()[0].value.is_initial());
  EXPECT_TRUE(t1.ops()[2].is_write());
  ASSERT_TRUE(obs.has_version_order());
  EXPECT_EQ(obs.version_order.at(Key{0}).front(), TxnId{1});
}

TEST(Serialize, ParsesAttributes) {
  const Observations obs = parse_observations(
      "txn 7 session=3 site=2 start=-5 commit=9\n  write 1\nend\n");
  const model::Transaction& t = obs.txns.by_id(TxnId{7});
  EXPECT_EQ(t.session(), SessionId{3});
  EXPECT_EQ(t.site(), SiteId{2});
  EXPECT_EQ(t.start_ts(), -5);
  EXPECT_EQ(t.commit_ts(), 9);
}

TEST(Serialize, ParsesPhantomReads) {
  const Observations obs =
      parse_observations("txn 1\n  read 4 9 phantom\nend\n");
  EXPECT_TRUE(obs.txns.by_id(TxnId{1}).ops()[0].value.phantom);
}

TEST(Serialize, RoundTripExact) {
  const Observations a = parse_observations(kWriteSkew);
  const Observations b = parse_observations(to_text(a));
  ASSERT_EQ(a.txns.size(), b.txns.size());
  for (const model::Transaction& t : a.txns) {
    const model::Transaction& u = b.txns.by_id(t.id());
    EXPECT_EQ(t.session(), u.session());
    EXPECT_EQ(t.site(), u.site());
    EXPECT_EQ(t.start_ts(), u.start_ts());
    EXPECT_EQ(t.commit_ts(), u.commit_ts());
    ASSERT_EQ(t.ops().size(), u.ops().size());
    for (std::size_t i = 0; i < t.ops().size(); ++i) EXPECT_EQ(t.ops()[i], u.ops()[i]);
  }
  EXPECT_EQ(a.version_order, b.version_order);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  auto expect_error = [](const char* text, const char* needle) {
    try {
      parse_observations(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("read 1 2\n", "outside a transaction");
  expect_error("txn 1\ntxn 2\n", "another transaction is open");
  expect_error("txn 1\n  write 3\n", "unterminated");
  expect_error("txn 1\n  read 3\nend\n", "read needs");
  expect_error("txn 1 bogus=1\nend\n", "unknown attribute");
  expect_error("frobnicate\n", "unknown directive");
  expect_error("txn x\nend\n", "bad txn id");
}

TEST(Serialize, EmptyInputIsEmptyObservationSet) {
  const Observations obs = parse_observations("");
  EXPECT_TRUE(obs.txns.empty());
  EXPECT_FALSE(obs.has_version_order());
}

TEST(Audit, WriteSkewReport) {
  const Observations obs = parse_observations(kWriteSkew);
  const AuditResult a = audit(obs);
  ASSERT_TRUE(a.strongest.has_value());
  EXPECT_EQ(*a.strongest, ct::IsolationLevel::kStrongSI);
  EXPECT_NE(a.text.find("FAIL  Serializable"), std::string::npos);
  EXPECT_NE(a.text.find("PASS  AdyaSI"), std::string::npos);
  EXPECT_NE(a.text.find("strongest level(s) admitted: StrongSI"), std::string::npos);
  EXPECT_NE(a.text.find("witness"), std::string::npos);
}

TEST(Audit, CleanHistoryAdmitsEverything) {
  const Observations obs = parse_observations(
      "txn 1 start=0 commit=1\n  write 0\nend\n"
      "txn 2 start=2 commit=3\n  read 0 1\nend\n");
  const AuditResult a = audit(obs);
  // Both lattice branches top out: the maximal set is {StrongSI, SSER}.
  ASSERT_TRUE(a.strongest.has_value());
  EXPECT_NE(a.text.find("strongest level(s) admitted: StrongSI, StrictSerializable"),
            std::string::npos)
      << a.text;
  for (ct::IsolationLevel l : ct::kAllLevels) {
    EXPECT_EQ(a.text.find(std::string("FAIL  ") + std::string(ct::name_of(l))),
              std::string::npos);
  }
}

TEST(Audit, NamesPhenomenaWhenOrderKnown) {
  const Observations obs = parse_observations(kWriteSkew);
  const AuditResult a = audit(obs);
  EXPECT_NE(a.text.find("phenomena under the install order"), std::string::npos);
  EXPECT_NE(a.text.find("G2"), std::string::npos);
}

TEST(RenderExecution, ShowsStates) {
  const Observations obs = parse_observations(
      "txn 1\n  write 0\nend\ntxn 2\n  read 0 1\n  write 1\nend\n");
  const model::Execution e(obs.txns, {TxnId{1}, TxnId{2}});
  const std::string text = render_execution(obs.txns, e);
  EXPECT_NE(text.find("s0: all keys"), std::string::npos);
  EXPECT_NE(text.find("s1: apply T1"), std::string::npos);
  EXPECT_NE(text.find("k0=T1"), std::string::npos);
  EXPECT_NE(text.find("k1=T2"), std::string::npos);
}

}  // namespace
}  // namespace crooks::report
