# Empty dependencies file for axiomatic_test.
# This may be replaced when dependencies are built.
