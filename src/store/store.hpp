// A single-node multiversion transactional key-value store with pluggable
// concurrency control.
//
// The store is the test substrate for the checker: each CC mode targets one
// isolation level, and every run exports BOTH the low-level Adya history
// (with aborted transactions and the authoritative version order) and the
// client observations (a model::TransactionSet). This turns each equivalence
// theorem into an executable property: the phenomena verdict on the history
// must agree with the checker verdict on the observations.
//
// Modes and the guarantee they aim for:
//   kSerial            strict serializability (one transaction at a time)
//   kTwoPhaseLocking   strict serializability (S/X locks, wait-die)
//   kSnapshotIsolation ANSI SI (begin-time snapshot, first-committer-wins)
//   kReadAtomic        read atomic (RAMP-style read repair)
//   kReadCommitted     read committed (latest committed version per read)
//   kReadUncommitted   read uncommitted (dirty reads allowed)
//
// The store is driven step-by-step through an explicit handle API, so an
// external scheduler fully controls the interleaving (see runner.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adya/history.hpp"
#include "committest/levels.hpp"
#include "common/ids.hpp"
#include "model/transaction.hpp"

namespace crooks::store {

enum class CCMode : std::uint8_t {
  kSerial,
  kTwoPhaseLocking,  // S/X locks, wait-die (younger requesters abort)
  kWoundWait,        // S/X locks, wound-wait (older requesters abort holders)
  kSnapshotIsolation,
  kReadAtomic,
  kReadCommitted,
  kReadUncommitted,
};

constexpr std::string_view name_of(CCMode m) {
  switch (m) {
    case CCMode::kSerial: return "Serial";
    case CCMode::kTwoPhaseLocking: return "TwoPhaseLocking";
    case CCMode::kWoundWait: return "WoundWait";
    case CCMode::kSnapshotIsolation: return "SnapshotIsolation";
    case CCMode::kReadAtomic: return "ReadAtomic";
    case CCMode::kReadCommitted: return "ReadCommitted";
    case CCMode::kReadUncommitted: return "ReadUncommitted";
  }
  return "?";
}

/// The isolation level a CC mode is designed to provide (its contract).
ct::IsolationLevel contract_of(CCMode m);

/// Result of a single read/write/commit step.
enum class StepStatus : std::uint8_t {
  kOk,       // step performed
  kBlocked,  // waiting on a lock — retry later (2PL only)
  kAborted,  // the transaction died (wait-die victim, SI conflict, injected)
};

struct ReadResult {
  StepStatus status = StepStatus::kOk;
  model::Value value;  // valid iff status == kOk
};

class Store {
 public:
  explicit Store(CCMode mode) : mode_(mode) {}

  CCMode mode() const { return mode_; }

  /// Begin a transaction. Ids are assigned by the store (monotonically,
  /// starting at 1) so they never collide with kInitTxn.
  ///
  /// `priority` is the wait-die seniority: retried transactions pass their
  /// original priority so they age instead of starving (the classic
  /// restart-with-original-timestamp rule). Defaults to the start time.
  ///
  /// `level` is the client's declared isolation level, recorded verbatim into
  /// the exported history/observations (`level=` annotation). The store's CC
  /// mode is global — the declaration states what the client ASKS to be
  /// audited at, which mixed-level checking then enforces per transaction.
  TxnId begin(SessionId session = kNoSession, SiteId site = SiteId{0},
              Timestamp priority = kNoTimestamp,
              std::optional<ct::IsolationLevel> level = std::nullopt);

  /// Wait-die seniority of an active transaction (for retry bookkeeping).
  Timestamp priority_of(TxnId txn) const { return active_.at(txn).priority; }

  /// Read `k`. On kOk the observed value is returned and recorded.
  ReadResult read(TxnId txn, Key k);

  /// Buffer (or, under RU, immediately publish) a write of `k`.
  StepStatus write(TxnId txn, Key k);

  /// Try to commit. kOk on success; kAborted if certification failed.
  StepStatus commit(TxnId txn);

  /// Abort explicitly (also used for failure injection).
  void abort(TxnId txn);

  bool is_active(TxnId txn) const { return active_.contains(txn); }

  // --- export ---------------------------------------------------------------

  /// Full low-level history (committed + aborted, authoritative version order).
  adya::History history() const;

  /// Client observations: committed transactions with the values their reads
  /// returned and the store's real start/commit timestamps.
  model::TransactionSet observations() const;

  /// The per-key install order (authoritative version order), for CheckOptions.
  std::unordered_map<Key, std::vector<TxnId>> version_order() const;

  std::size_t committed_count() const { return committed_; }
  std::size_t aborted_count() const { return aborted_; }

 private:
  struct VersionRec {
    TxnId writer{};
    Timestamp commit_ts = kNoTimestamp;  // kNoTimestamp while pending
    bool aborted = false;
    Timestamp created_ts = kNoTimestamp;  // when the write was published
  };

  struct LockState {
    TxnId x_owner = kInitTxn;                 // kInitTxn = unlocked
    std::unordered_set<TxnId> s_owners;
  };

  struct ActiveTxn {
    SessionId session = kNoSession;
    SiteId site{};
    std::optional<ct::IsolationLevel> level;
    Timestamp start_ts = kNoTimestamp;
    Timestamp priority = kNoTimestamp;        // wait-die seniority
    Timestamp snapshot = kNoTimestamp;        // SI: begin-time snapshot
    std::vector<adya::Event> events;          // executed ops, in order
    std::unordered_map<Key, std::size_t> dirty;  // RU: key -> version index
    std::unordered_set<Key> write_set;        // buffered writes
    std::unordered_set<Key> locks_held;       // 2PL
  };

  Timestamp tick() { return ++clock_; }

  const VersionRec* latest_committed(Key k, Timestamp at_most) const;
  ReadResult read_version(ActiveTxn& t, Key k);
  bool acquire_lock(ActiveTxn& t, TxnId id, Key k, bool exclusive);
  void release_locks(ActiveTxn& t, TxnId id);
  void finish(TxnId id, ActiveTxn&& t, bool committed, Timestamp commit_ts);

  CCMode mode_;
  Timestamp clock_ = 0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<Key, std::vector<VersionRec>> versions_;
  std::unordered_map<Key, LockState> locks_;
  std::unordered_map<TxnId, ActiveTxn> active_;
  std::vector<adya::HistTxn> finished_;
  std::size_t committed_ = 0;
  std::size_t aborted_ = 0;
};

}  // namespace crooks::store
