file(REMOVE_RECURSE
  "CMakeFiles/audit_store.dir/audit_store.cpp.o"
  "CMakeFiles/audit_store.dir/audit_store.cpp.o.d"
  "audit_store"
  "audit_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
