#include "workload/workload.hpp"

#include <algorithm>
#include <unordered_set>

#include "workload/zipf.hpp"

namespace crooks::wl {

std::vector<store::TxnIntent> generate_mix(const MixOptions& opts) {
  Rng rng(opts.seed);
  ZipfGenerator zipf(opts.keys, opts.zipf_theta);
  std::vector<store::TxnIntent> intents;
  intents.reserve(opts.transactions);

  for (std::size_t i = 0; i < opts.transactions; ++i) {
    store::TxnIntent intent;
    if (opts.sessions > 0) {
      intent.session = SessionId{static_cast<std::uint32_t>(i % opts.sessions)};
    }
    if (opts.sites > 1) {
      intent.site = SiteId{static_cast<std::uint32_t>(i % opts.sites)};
    }

    const bool read_only = rng.chance(opts.read_only_fraction);
    const std::size_t want_writes = read_only ? 0 : opts.writes_per_txn;
    const std::size_t want = opts.reads_per_txn + want_writes;

    // Distinct keys per transaction: reject duplicates (key spaces in every
    // experiment are much larger than the footprint, so this terminates fast).
    std::unordered_set<std::uint64_t> picked;
    std::vector<std::uint64_t> keys;
    keys.reserve(want);
    while (keys.size() < want && picked.size() < opts.keys) {
      const std::uint64_t k = zipf(rng);
      if (picked.insert(k).second) keys.push_back(k);
    }

    std::size_t j = 0;
    for (; j < opts.reads_per_txn && j < keys.size(); ++j) intent.read(keys[j]);
    for (; j < keys.size(); ++j) intent.write(keys[j]);
    intents.push_back(std::move(intent));
  }
  return intents;
}

std::vector<store::TxnIntent> banking_withdrawals(std::size_t pairs) {
  std::vector<store::TxnIntent> intents;
  intents.reserve(2 * pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::uint64_t checking = 2 * p;
    const std::uint64_t savings = 2 * p + 1;
    // Alice: check both balances, withdraw from checking.
    intents.push_back(store::TxnIntent{}
                          .read(checking)
                          .read(savings)
                          .write(checking));
    // Bob: check both balances, withdraw from savings.
    intents.push_back(store::TxnIntent{}
                          .read(checking)
                          .read(savings)
                          .write(savings));
  }
  return intents;
}

std::vector<store::TxnIntent> generate_from_pattern(
    const forensics::Witness& w, const PatternReplayOptions& opts) {
  // Slot index of each implicated key (w.keys is sorted and duplicate-free).
  const auto slot_of = [&](Key k) {
    return static_cast<std::uint64_t>(
        std::lower_bound(w.keys.begin(), w.keys.end(), k,
                         [](Key a, Key b) { return a.value < b.value; }) -
        w.keys.begin());
  };

  std::vector<store::TxnIntent> intents;
  for (std::size_t r = 0; r < opts.rounds; ++r) {
    const auto remap = [&](Key k) {
      if (opts.key_stride == 0) return k;
      return Key{1 + static_cast<std::uint64_t>(r) * opts.key_stride + slot_of(k)};
    };
    // Rotate the starting node per round so the scheduler sees every
    // arrival order of the conflicting footprints, not just the witness's.
    const std::size_t n = w.nodes.size();
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = (j + r) % n;
      const forensics::WitnessNode& node = w.nodes[i];
      if (node.role == forensics::kRoleInit) continue;  // ⊥ has no intent
      if (node.reads.empty() && node.writes.empty()) continue;
      store::TxnIntent intent;
      intent.at(w.level);
      if (opts.sessions > 0) {
        intent.session = SessionId{static_cast<std::uint32_t>(i % opts.sessions) + 1};
      } else {
        intent.session = node.session;
      }
      for (Key k : node.reads) intent.read(remap(k));
      for (Key k : node.writes) intent.write(remap(k));
      intents.push_back(std::move(intent));
    }
  }
  return intents;
}

std::vector<store::TxnIntent> generate_mixed_profile(const MixedProfileOptions& opts) {
  std::vector<store::TxnIntent> intents = banking_withdrawals(opts.pairs);
  for (store::TxnIntent& i : intents) i.at(opts.critical_level);

  std::vector<store::TxnIntent> background = generate_mix(opts.background);
  const std::uint64_t offset = 2 * opts.pairs;  // past the account keys
  for (store::TxnIntent& i : background) {
    for (store::TxnIntent::Step& s : i.steps) s.key = Key{s.key.value + offset};
    i.at(opts.background_level);
    intents.push_back(std::move(i));
  }
  return intents;
}

}  // namespace crooks::wl
