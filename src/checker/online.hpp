// Streaming isolation monitor.
//
// Real deployments don't audit after the fact — they watch the commit stream.
// OnlineChecker consumes committed transactions in the order the system
// applied them (the system's natural execution witness) and maintains, per
// tracked isolation level, whether the execution-so-far still satisfies
// every commit test. Appending is incremental: per-key version timelines
// grow append-only, a transaction's commit test is evaluated once at its
// append (placement fixes its verdict forever — the same observation that
// makes the exhaustive engine's pruning sound), and real-time/session
// recency clauses are re-checked retroactively when a late transaction
// reveals an inversion.
//
// The checker owns a growable CompiledHistory and feeds every appended block
// through CompiledHistory::extend, so the whole stream — first block or
// ten-thousandth — is evaluated on compiled ops: writer recency is a dense
// integer compare, phantom/internal/unknown-writer branches are precomputed
// flags, and the real-time recency clauses use the monotone commit order the
// timed levels themselves enforce (binary search instead of an O(n) scan).
// There is no hashed fallback path; stats().hashed_fallback_appends exists
// purely as a regression tripwire (asserted == 0 by the differential suite
// and by CI's bench gate). The frozen per-transaction hashed monitor lives in
// checker::reference::OnlineCheckerHashed for differential testing and as
// the bench baseline.
//
// The verdict is per-execution (CT_I over THIS order), the streaming
// analogue of ct::test_execution. A violation here means the system's own
// apply order is not a witness; the ∃e question can still be asked offline
// with checker::check.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "committest/levels.hpp"
#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "common/interval.hpp"
#include "model/compiled.hpp"
#include "model/transaction.hpp"

namespace crooks::checker {

class OnlineChecker {
 public:
  /// Track the given levels (default: all of them).
  explicit OnlineChecker(std::vector<ct::IsolationLevel> levels =
                             {ct::kAllLevels.begin(), ct::kAllLevels.end()});

  struct LevelStatus {
    bool ok = true;
    std::optional<TxnId> first_violation;
    std::string explanation;
  };

  /// Mixed-level monitor: evaluate every appended transaction at its own
  /// `level=` annotation (falling back to `fallback` when unannotated) and
  /// maintain ONE status — the streaming analogue of
  /// ct::test_execution(LevelAssignment, ...). Because a later block may
  /// annotate any level, this mode always takes the general ingest path
  /// (never the weak-only direct path), builds every transaction's PREC set
  /// (a future PSI-level transaction needs its predecessors' closures), and
  /// drops the sorted-commit-prefix shortcut of the timed recency clauses —
  /// untimed transactions interleave freely, so real-time predecessors are
  /// found by scan instead of binary search.
  /// Construct as: OnlineChecker c(OnlineChecker::kTrackAssigned, fallback);
  /// (A tag, not a one-member options struct: a braced {level} argument must
  /// keep meaning "track exactly this level" via the vector constructor.)
  struct TrackAssignedTag {};
  static constexpr TrackAssignedTag kTrackAssigned{};
  OnlineChecker(TrackAssignedTag,
                ct::IsolationLevel fallback = ct::IsolationLevel::kSerializable);

  /// True for a checker built by track_assigned().
  bool assigned_mode() const { return assigned_mode_; }

  /// The single mixed-assignment status (assigned mode only). Its
  /// explanation names the violated transaction's own level.
  const LevelStatus& assigned_status() const { return assigned_status_; }

  /// Streaming throughput accounting, exported by bench_online_incremental
  /// and asserted by the differential suite.
  struct Stats {
    std::uint64_t blocks = 0;            // extend() calls (append() = block of 1)
    std::uint64_t compiled_appends = 0;  // transactions evaluated on compiled deltas
    /// Transactions evaluated on the pre-compile hashed path. Always 0 —
    /// every call path compiles — kept as a regression tripwire (CI fails the
    /// bench gate if it ever goes positive).
    std::uint64_t hashed_fallback_appends = 0;
    std::uint64_t duplicates_ignored = 0;
    /// Compiled operations whose read-state views were computed — the online
    /// analogue of CheckResult::nodes_explored, so the streaming monitor's
    /// effort is comparable with the offline engines' on one dashboard.
    std::uint64_t ops_evaluated = 0;
    /// Transactions evaluated on the weak-level direct path (every tracked
    /// level in {RU, RC, RA, PSI}): no timeline binary searches, no per-op
    /// interval storage. Equals compiled_appends on a weak-only checker and
    /// 0 when any stronger level is tracked.
    std::uint64_t direct_appends = 0;
  };

  /// Append the next committed transaction. Returns false if the id was
  /// already seen or reserved (the transaction is ignored).
  bool append(const model::Transaction& txn);

  /// Append a block of transactions in declaration order, returning how many
  /// were accepted (duplicates are ignored, not errors). The block is
  /// compiled as one CompiledDelta — fresh checker or not, every transaction
  /// is evaluated on compiled ops; there is no fallback to the hashed path.
  std::size_t append_all(std::span<const model::Transaction> block);
  std::size_t append_all(const model::TransactionSet& txns);
  /// Compatibility overload: audits ch's transactions in dense order. The
  /// checker re-compiles them into its own stream (ch's dense indices need
  /// not match the stream's).
  std::size_t append_all(const model::CompiledHistory& ch);

  const LevelStatus& status(ct::IsolationLevel level) const;
  bool all_ok() const;
  std::size_t size() const { return txns_.size(); }
  const Stats& stats() const { return stats_; }

  /// The levels still satisfied by the execution so far.
  std::vector<ct::IsolationLevel> surviving_levels() const;

  /// The compiled view of the stream so far (dense index == apply order).
  /// Any engine can consume it, e.g. for an offline ∃e check of the prefix.
  const model::CompiledHistory& stream() const { return stream_; }

 private:
  struct OpView {
    StateInterval rs;
    bool internal = false;
  };

  struct Placed {
    StateIndex state = 0;  // 1-based; == dense index + 1
    std::vector<OpView> ops;
    DynamicBitset prec;  // populated only when PSI is tracked
  };

  /// Is `level` evaluated for the transaction currently being ingested?
  /// Uniform mode: a fixed set. Assigned mode: exactly the transaction's own
  /// level (current_level_, set at the top of evaluate_new).
  bool tracking(ct::IsolationLevel level) const {
    return assigned_mode_ ? level == current_level_ : statuses_.contains(level);
  }
  bool status_ok(ct::IsolationLevel level) const {
    return assigned_mode_ ? assigned_status_.ok : statuses_.at(level).ok;
  }
  /// The level transaction `d` is evaluated at in assigned mode.
  ct::IsolationLevel assigned_level_of(model::TxnIdx d) const {
    const std::uint8_t t = stream_.level_tag(d);
    return t == model::CompiledHistory::kNoLevelTag
               ? assigned_fallback_
               : static_cast<ct::IsolationLevel>(t);
  }
  void violate(ct::IsolationLevel level, TxnId txn, std::string why);

  /// Shared tail of every append path: compute the read-state views of the
  /// block's transactions against the stream prefix, evaluate their commit
  /// tests, and install them (timelines, session index, recency maxima).
  void ingest(const model::CompiledDelta& delta);
  /// Weak-level direct path, taken when every tracked level is in
  /// {RU, RC, RA, PSI}. For those levels only the read-state *start* of each
  /// op matters: PREREAD emptiness is a pure flags/dense-index fact (a member
  /// version's interval is never empty), the RA fracture compares rs.first,
  /// and on a timeline entry `pos > rs.last` ⟺ `pos > rs.first`. So the
  /// per-op timeline binary search and interval storage both disappear;
  /// verdicts and explanations are byte-identical to the general path.
  void ingest_weak_txn(model::TxnIdx d);
  void evaluate_new(model::TxnIdx d, Placed& p);
  void check_retroactive_inversions(model::TxnIdx d);
  void commit_placed(model::TxnIdx d, Placed p);

  /// Timeline of dense key `k`, or null when nothing applied wrote it yet.
  const std::vector<std::pair<StateIndex, std::size_t>>* timeline_of(
      model::KeyIdx k) const {
    return k >= timelines_.size() || timelines_[k].empty() ? nullptr
                                                           : &timelines_[k];
  }

  std::map<ct::IsolationLevel, LevelStatus> statuses_;
  model::CompiledHistory stream_;  // owning; dense index == apply order
  std::vector<Placed> txns_;       // per applied transaction, same order
  // Timelines indexed by the stream's KeyIdx: (installed state, dense writer).
  std::vector<std::vector<std::pair<StateIndex, std::size_t>>> timelines_;
  // Per-session applied states (ascending), for the Session SI recency bound.
  std::unordered_map<SessionId, std::vector<StateIndex>> session_states_;
  // Max start_ts over applied transactions: a late transaction can invert a
  // real-time clause iff some applied transaction started after it committed.
  Timestamp max_start_applied_ = kNoTimestamp;
  // True when every tracked level is untimed-weak (RU/RC/RA/PSI): fixed at
  // construction, routes ingest() to the direct per-transaction path.
  bool weak_only_ = false;
  // --- Assigned (mixed-level) mode, set by track_assigned() ---
  bool assigned_mode_ = false;
  ct::IsolationLevel assigned_fallback_ = ct::IsolationLevel::kSerializable;
  LevelStatus assigned_status_;
  // Level of the transaction currently in evaluate_new (assigned mode).
  ct::IsolationLevel current_level_ = ct::IsolationLevel::kSerializable;
  // Bitmask of the levels applied transactions were evaluated at — lets the
  // retroactive-inversion pass exit early when no applied transaction holds
  // a real-time/session clause.
  std::uint16_t applied_mask_ = 0;
  // Scratch: per-op read-state starts for the transaction being ingested on
  // the weak path (reused across transactions to avoid reallocation).
  std::vector<StateIndex> weak_firsts_;
  Stats stats_;
};

}  // namespace crooks::checker
