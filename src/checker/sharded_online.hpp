// Pipelined, session-sharded front-end for the streaming monitor.
//
// The streaming audit path was the one engine tier still pinned to a single
// core: `report::stream_audit` parsed, compiled and checked every block on
// the tailing thread. Profiling the follow loop shows the split is lopsided —
// decoding a transaction block out of the plain-text observation format costs
// microseconds (tokenizer, attribute parsing, Transaction construction) while
// appending the decoded transaction to OnlineChecker costs tens of
// nanoseconds on the weak-only direct path. ShardedOnlineChecker exploits
// exactly that asymmetry with a three-stage pipeline:
//
//   stage 1 (caller)   splits the raw byte stream into complete transaction
//                      blocks, resolves the `default-level` directive, and
//                      submits one EPOCH (= one serial flush batch) at a time;
//   stage 2 (N shards) decode their session-partitioned subset of the epoch's
//                      blocks into model::Transactions — the expensive,
//                      embarrassingly parallel work;
//   stage 3 (merge)    reassembles each epoch in stream order and appends it
//                      to the ONE authoritative OnlineChecker, which runs the
//                      cross-session checks exactly as the serial monitor
//                      does: extend() compilation, the weak-level direct
//                      path, real-time/retroactive scans, PSI closure, and
//                      windowed retirement at the global watermark.
//
// Admissibility is deliberately NOT sharded: PREREAD, the RA fracture
// comparison, per-key timelines and the PSI PREC closure are all properties
// of the global apply-order prefix, so a session-local verdict would be
// unsound. Keeping one authoritative checker on the merge thread makes the
// strict contract hold by construction: verdicts, first-violation witnesses,
// Stats totals and forensics JSON are byte-identical to the serial monitor
// at every shard count, under windowing and in assigned-level mode — the
// speedup comes from parallel decode plus pipelining the three stages.
//
// Transport is the bounded Vyukov MpmcQueue (common/thread_pool.hpp): a full
// ring blocks the producer (backpressure), so a slow merge stage throttles
// the shards and the shards throttle stage 1 — nothing is ever dropped, and
// crooks_ingest_ring_dropped_total exists purely as a tripwire asserting so.
//
// Epochs are sequenced: the merge stage buffers shard results until every
// shard has reported an epoch, appends epochs strictly in submission order,
// and reconciles errors to the exact serial semantics (the first error in
// LINE order wins; an epoch with any error is discarded whole, matching the
// serial loop's drop-the-batch-on-error behavior).
//
// The block decoder is injected (`BlockDecoder`) rather than calling
// report::parse_observations directly: the checker library stays independent
// of the report/serialization layer, the differential tests can wrap any
// decoder, and a future ingest adapter (e.g. Elle/Jepsen EDN histories) plugs
// in a different decoder without touching the pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "checker/online.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace crooks::checker {

/// One complete `txn … end` block as cut from the raw stream by stage 1.
struct RawBlock {
  std::string text;           ///< the block's lines, newline-terminated
  std::uint64_t first_line = 0;  ///< absolute line number of its `txn` line
  /// Shard routing key (the session id of the block's transaction; 0 when
  /// sessionless or unparsable — a malformed block may route anywhere, its
  /// decode error is identical on every shard).
  std::uint64_t route = 0;
  /// The `default-level` directive in force when the block completed; the
  /// decoder applies it to unannotated transactions. Resolved by stage 1 so
  /// shard workers never share parser state.
  std::optional<ct::IsolationLevel> default_level;
};

/// A decoded block, or a decode failure.
struct DecodedBlock {
  std::vector<model::Transaction> txns;
  /// Non-empty on failure: the fully formatted error message (the pipeline
  /// reports it verbatim). error_line orders concurrent failures — the
  /// smallest line wins, matching the serial first-error semantics.
  std::string error;
  std::uint64_t error_line = 0;
};

using BlockDecoder = std::function<DecodedBlock(const RawBlock&)>;

class ShardedOnlineChecker {
 public:
  struct Options {
    /// Decode shard workers (stage 2). At least 1; one shard still pipelines
    /// decode against check on separate threads.
    std::size_t shards = 2;
    /// Epochs stage 1 may run ahead of the merge stage before submit()
    /// blocks (per-shard input-ring capacity).
    std::size_t max_inflight_epochs = 4;
    /// Uniform-mode levels (ignored when track_assigned is set).
    std::vector<ct::IsolationLevel> levels = {ct::kAllLevels.begin(),
                                              ct::kAllLevels.end()};
    /// Mixed-level monitor: OnlineChecker(kTrackAssigned, assigned_fallback).
    bool track_assigned = false;
    ct::IsolationLevel assigned_fallback = ct::IsolationLevel::kSerializable;
    /// Bounded-memory window, applied to the authoritative checker.
    OnlineChecker::WindowOptions window{};
    /// REQUIRED: turns a RawBlock into transactions on a shard worker. Must
    /// be thread-safe for concurrent calls on distinct blocks.
    BlockDecoder decoder;
    /// Invoked once on the freshly constructed checker before any thread
    /// starts (the forensics Collector attaches here, as in stream_audit).
    std::function<void(OnlineChecker&)> on_checker;
  };

  /// One appended epoch, reported from the merge thread after its
  /// append_all. Mirrors report::StreamBlockReport's checker-derived fields.
  struct EpochReport {
    std::uint64_t epoch = 0;       ///< 1-based; == the serial batch number
    std::size_t transactions = 0;  ///< accepted by the checker
    std::size_t duplicates = 0;
    double seconds = 0;  ///< merge-side append_all latency
    std::vector<ct::IsolationLevel> died;
    const OnlineChecker* checker = nullptr;
    std::uint64_t watermark = 0;
    std::size_t resident_txns = 0;
    std::size_t resident_ops = 0;
  };
  /// Runs on the merge thread; returning false stops the pipeline after
  /// this epoch (later epochs are discarded), like the serial callback.
  using EpochCallback = std::function<bool(const EpochReport&)>;

  ShardedOnlineChecker(Options opts, EpochCallback on_epoch = {});
  ~ShardedOnlineChecker();  // finish()es if the caller did not

  ShardedOnlineChecker(const ShardedOnlineChecker&) = delete;
  ShardedOnlineChecker& operator=(const ShardedOnlineChecker&) = delete;

  /// Submit one epoch of complete blocks (stage 1's flush boundary — cut
  /// exactly where the serial monitor would cut a batch, so batch numbering
  /// and metrics totals line up). Blocks are partitioned by `route` across
  /// the shard rings; an empty vector is a no-op. Returns false once the
  /// pipeline has stopped (error or callback), in which case the epoch is
  /// discarded — exactly what the serial loop does with a batch after stop.
  /// Single-producer: one thread submits.
  bool submit(std::vector<RawBlock> blocks);

  /// Stage 1 hit a stream-level error at `line` (a `vo` line, a `txn` inside
  /// an unfinished block, an unknown directive …). The pending blocks are
  /// decoded for validation but never appended; the reported error is the
  /// first in line order among their decode errors and this one — byte-for-
  /// byte the serial semantics, where an earlier block's parse error fires
  /// before a later stream error is ever read. Stops the pipeline.
  bool submit_error(std::vector<RawBlock> pending, std::uint64_t line,
                    std::string message);

  /// True once an error or a false-returning callback stopped the pipeline.
  /// Stage 1 polls this to stop reading input early.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  struct Result {
    std::uint64_t epochs = 0;  ///< appended epochs == serial batch count
    std::size_t transactions = 0;
    std::size_t duplicates = 0;
    std::string error;  ///< first error in line order; empty on clean exit
  };

  /// Drain the pipeline and join all threads. Idempotent; after it returns
  /// the checker is quiescent and may be read from the calling thread.
  const Result& finish();

  /// The authoritative checker. Only the merge thread touches it while the
  /// pipeline runs; call finish() first (or read from the epoch callback,
  /// which runs on the merge thread).
  const OnlineChecker& checker() const { return chk_; }

  std::size_t shards() const { return in_.size(); }

 private:
  struct ShardTask {
    enum class Kind : std::uint8_t { kAppend, kValidateOnly, kStop };
    Kind kind = Kind::kAppend;
    std::uint64_t epoch = 0;
    /// (sequence within epoch, block): sequence restores stream order at
    /// the merge after shards decode out of order.
    std::vector<std::pair<std::uint32_t, RawBlock>> blocks;
  };
  struct ShardResult {
    ShardTask::Kind kind = ShardTask::Kind::kAppend;
    std::uint64_t epoch = 0;
    std::vector<std::pair<std::uint32_t, model::Transaction>> txns;
    std::string error;
    std::uint64_t error_line = 0;
  };
  /// Per-shard cached metric references (labels are resolved once here, not
  /// per block on the hot path).
  struct ShardMetrics {
    obs::Counter& blocks;
    obs::Counter& appends;
    obs::Counter& submit_stalls;
    obs::Counter& result_stalls;
    obs::Gauge& queue_depth;
    obs::Histogram& decode_seconds;
  };

  void shard_loop(std::size_t shard);
  void merge_loop();
  void process_epoch(std::vector<std::unique_ptr<ShardResult>> results);
  bool submit_tasks(std::vector<RawBlock> blocks, ShardTask::Kind kind);

  Options opts_;
  EpochCallback on_epoch_;
  OnlineChecker chk_;

  std::vector<std::unique_ptr<MpmcQueue<std::unique_ptr<ShardTask>>>> in_;
  MpmcQueue<std::unique_ptr<ShardResult>> results_;

  std::atomic<bool> stopped_{false};
  std::uint64_t next_epoch_ = 0;  // submit thread only
  // Stage-1 error, written by submit_error BEFORE its epoch is pushed and
  // read by the merge thread AFTER popping that epoch's results (the ring's
  // release/acquire pair orders the accesses).
  std::uint64_t stage1_error_epoch_ = 0;
  std::uint64_t stage1_error_line_ = 0;
  std::string stage1_error_;

  Result result_;  // merge thread until joined, then the finish() caller
  bool finished_ = false;

  std::vector<ShardMetrics> shard_metrics_;
  obs::Counter& epochs_counter_;
  obs::Counter& merge_stalls_counter_;
  obs::Counter& dropped_counter_;  // tripwire: never incremented
  obs::Gauge& merge_depth_gauge_;

  std::vector<std::thread> shard_threads_;
  std::thread merge_thread_;
};

}  // namespace crooks::checker
