#include "store/runner.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::store {

namespace {

obs::Counter& txns_result_counter(const char* result) {
  return obs::Registry::global().counter(
      "crooks_store_txns_total", "Transactions finished by the store runner",
      {{"result", result}});
}
obs::Counter& blocked_steps_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_store_blocked_steps_total",
      "Scheduler steps that found the transaction blocked on a lock");
  return c;
}

struct InFlight {
  TxnId id{};
  std::size_t intent = 0;
  std::size_t step = 0;
  int retries_left = 0;
  Timestamp priority = kNoTimestamp;  // original wait-die seniority
};

struct Pending {
  std::size_t intent = 0;
  int retries_left = 0;
  Timestamp priority = kNoTimestamp;
};

}  // namespace

RunResult run(const std::vector<TxnIntent>& intents, const RunOptions& options) {
  obs::TraceSpan span("store.run");
  Store store(options.mode);
  Rng rng(options.seed);
  const std::size_t concurrency =
      options.mode == CCMode::kSerial ? 1 : std::max<std::size_t>(1, options.concurrency);

  std::vector<Pending> pending;
  for (std::size_t i = intents.size(); i-- > 0;) {
    pending.push_back({i, options.retries, kNoTimestamp});
  }
  std::vector<InFlight> inflight;
  std::size_t blocked_steps = 0;
  std::size_t consecutive_blocked = 0;

  auto admit = [&]() {
    while (inflight.size() < concurrency && !pending.empty()) {
      const Pending p = pending.back();
      pending.pop_back();
      const TxnIntent& intent = intents[p.intent];
      const TxnId id =
          store.begin(intent.session, intent.site, p.priority, intent.level);
      inflight.push_back({id, p.intent, 0, p.retries_left, store.priority_of(id)});
    }
  };

  auto handle_abort = [&](std::size_t slot) {
    const InFlight f = inflight[slot];
    inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(slot));
    if (f.retries_left > 0) {
      // Retry with the original seniority so the intent ages toward the
      // front of every wait-die conflict instead of starving — but requeue
      // at the back of the admission order (pending admits from the back),
      // so a died transaction backs off instead of re-colliding immediately.
      pending.insert(pending.begin(), {f.intent, f.retries_left - 1, f.priority});
    }
  };

  admit();
  while (!inflight.empty()) {
    const std::size_t slot = rng.below(inflight.size());
    InFlight& f = inflight[slot];
    const TxnIntent& intent = intents[f.intent];

    // Wound-wait can abort a transaction from another transaction's step;
    // notice the kill before trying to drive the victim further.
    if (!store.is_active(f.id)) {
      consecutive_blocked = 0;
      handle_abort(slot);
      admit();
      continue;
    }

    if (options.injected_abort_prob > 0 && rng.chance(options.injected_abort_prob)) {
      store.abort(f.id);
      handle_abort(slot);
      admit();
      continue;
    }

    StepStatus status;
    if (f.step < intent.steps.size()) {
      const TxnIntent::Step& s = intent.steps[f.step];
      status = s.is_read ? store.read(f.id, s.key).status : store.write(f.id, s.key);
      if (status == StepStatus::kOk) ++f.step;
    } else {
      status = store.commit(f.id);
    }

    switch (status) {
      case StepStatus::kOk:
        consecutive_blocked = 0;
        if (f.step > intent.steps.size() || !store.is_active(f.id)) {
          // committed (commit returns kOk only on success)
        }
        if (!store.is_active(f.id)) {
          inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(slot));
        }
        break;
      case StepStatus::kBlocked:
        ++blocked_steps;
        if (++consecutive_blocked > 100000) {
          throw std::logic_error("scheduler livelock: all transactions blocked");
        }
        break;
      case StepStatus::kAborted:
        consecutive_blocked = 0;
        handle_abort(slot);
        break;
    }
    admit();
  }

  RunResult result{store.history(), store.observations(), store.version_order(),
                   store.committed_count(), store.aborted_count(), blocked_steps};
  if (obs::enabled()) {
    static obs::Counter& committed = txns_result_counter("committed");
    static obs::Counter& aborted = txns_result_counter("aborted");
    committed.inc(result.committed);
    aborted.inc(result.aborted);
    blocked_steps_total().inc(blocked_steps);
  }
  span.field("intents", static_cast<std::uint64_t>(intents.size()))
      .field("committed", static_cast<std::uint64_t>(result.committed))
      .field("aborted", static_cast<std::uint64_t>(result.aborted))
      .field("blocked_steps", static_cast<std::uint64_t>(blocked_steps));
  return result;
}

std::vector<VerifiedRun> run_verified_batch(
    const std::vector<std::vector<TxnIntent>>& workloads, const RunOptions& base,
    ct::IsolationLevel level, const checker::CheckOptions& copts) {
  // A trivially uniform policy is delegated straight back to the
  // global-level check_batch by the checker, so this wrapper is exact.
  return run_verified_batch(workloads, base, ct::LevelPolicy::uniform(level), copts);
}

std::vector<VerifiedRun> run_verified_batch(
    const std::vector<std::vector<TxnIntent>>& workloads, const RunOptions& base,
    const ct::LevelPolicy& policy, const checker::CheckOptions& copts) {
  // Stage 1: the runs. Each is a pure function of (intents, options), so
  // fanning them across the pool preserves the sequential results exactly.
  std::vector<VerifiedRun> out(workloads.size());
  parallel_for_each_index(copts.resolved_threads(), workloads.size(),
                          [&](std::size_t i) {
                            RunOptions o = base;
                            o.seed = base.seed + i;
                            out[i].run = run(workloads[i], o);
                          });

  // Stage 2: one batch check over every run's observations, each restricted
  // by its own install order (the store is authoritative about it). The
  // batch worker compiles each history once (model::CompiledHistory) and
  // every engine the dispatcher tries shares that compilation; the compiled
  // form borrows the observations, which out[i] keeps alive across the call.
  std::vector<checker::BatchItem> items(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    items[i] = {&out[i].run.observations, &out[i].run.version_order};
  }
  std::vector<checker::CheckResult> verdicts =
      checker::check_batch(policy, items, copts);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].verdict = std::move(verdicts[i]);
  }
  return out;
}

}  // namespace crooks::store
