// See stream_audit.hpp. The loop deals with two realities of tailing a file
// another process writes: reads can catch the writer mid-line (a line without
// its newline yet — buffered in `partial` and completed on a later poll), and
// mid-block (a `txn` opened but its `end` not yet written — complete blocks
// are batched, the open one waits).
//
// The stream is consumed in three conceptual stages shared by the serial and
// pipelined paths:
//   stage 1  Splitter — cuts the byte stream into complete RawBlocks and
//            owns ALL parser state that crosses block boundaries (the
//            `default-level` directive, the open-block accumulator, stream-
//            level errors). Downstream decoding is stateless per block.
//   stage 2  decode_block — RawBlock -> transactions via parse_observations,
//            with the directive applied to unannotated transactions. Pure:
//            safe to run on any thread, which is exactly what the pipelined
//            path's shard workers do.
//   stage 3  OnlineChecker::append_all per batch — serial: inline at every
//            flush; pipelined: on ShardedOnlineChecker's merge thread.
// The error contract is "first error in line order wins, and an error drops
// its whole batch"; both paths implement it identically (the serial path
// validates pending blocks before reporting a stream error, mirroring the
// pipeline's validate-only epoch).
#include "report/stream_audit.hpp"

#include <cctype>
#include <chrono>
#include <span>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "checker/sharded_online.hpp"
#include "obs/metrics.hpp"
#include "report/serialize.hpp"

namespace crooks::report {

namespace {

using Clock = std::chrono::steady_clock;

/// The follow-mode series: per-batch counters the CLI's human-format lines
/// are derived from (StreamBlockReport carries the same numbers — the
/// metrics layer is the source of truth, the printf renderer one consumer).
struct FollowMetrics {
  obs::Counter& batches;
  obs::Counter& txns;
  obs::Counter& duplicates;
  obs::Histogram& batch_seconds;
  obs::Gauge& levels_alive;

  static FollowMetrics& get() {
    static FollowMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return FollowMetrics{
          r.counter("crooks_follow_batches_total",
                    "Non-empty batches audited by the streaming monitor"),
          r.counter("crooks_follow_txns_total",
                    "Transactions accepted by the streaming monitor"),
          r.counter("crooks_follow_duplicates_total",
                    "Duplicate transactions ignored by the streaming monitor"),
          r.histogram("crooks_follow_batch_seconds",
                      "append_all latency per audited batch"),
          r.gauge("crooks_follow_levels_alive",
                  "Tracked isolation levels not yet violated")};
    }();
    return m;
  }
};

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// First whitespace-separated token of `line`, with any '#' comment removed.
/// A plain character scan — the follow hot loop calls this once per input
/// line, and the istringstream it replaced paid a locale acquisition (a
/// shared refcount, i.e. a lock) per call.
std::string_view first_token(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::size_t b = 0;
  while (b < line.size() && is_space(line[b])) ++b;
  std::size_t e = b;
  while (e < line.size() && !is_space(line[e])) ++e;
  return line.substr(b, e - b);
}

/// All whitespace-separated tokens, comment stripped (same splitting as the
/// parser's tokenize, without the stream machinery).
std::vector<std::string_view> tokens_of(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_space(line[i])) ++i;
    std::size_t e = i;
    while (e < line.size() && !is_space(line[e])) ++e;
    if (e > i) out.push_back(line.substr(i, e - i));
    i = e;
  }
  return out;
}

/// Shard routing key of a block: the `session=` value on its `txn` header
/// line, 0 when absent or malformed (a malformed attribute routes anywhere —
/// the shard's parse produces the very same error message regardless).
std::uint64_t route_of(std::string_view txn_line) {
  for (std::string_view tok : tokens_of(txn_line)) {
    if (tok.rfind("session=", 0) != 0) continue;
    const std::string_view v = tok.substr(8);
    if (v.empty()) return 0;
    std::uint64_t n = 0;
    for (char c : v) {
      if (c < '0' || c > '9') return 0;
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return n;
  }
  return 0;
}

/// Stage 2: decode one complete block. Pure — no shared state — so the
/// pipelined path hands it to shard workers as-is. The error string is the
/// exact message the serial monitor has always reported.
checker::DecodedBlock decode_block(const checker::RawBlock& block) {
  checker::DecodedBlock out;
  out.error_line = block.first_line;
  Observations obs;
  try {
    obs = parse_observations(block.text);
  } catch (const std::exception& e) {
    out.error = "block starting at line " + std::to_string(block.first_line) +
                ": " + e.what();
    return out;
  }
  out.txns.reserve(obs.txns.size());
  for (const model::Transaction& t : obs.txns) {
    if (block.default_level.has_value() && !t.level().has_value()) {
      // The directive in force when the block completed becomes the
      // transaction's level, exactly as an offline parse of the whole file
      // would assign it.
      out.txns.emplace_back(t.id(), t.ops(), t.session(), t.site(),
                            t.start_ts(), t.commit_ts(), block.default_level);
    } else {
      out.txns.push_back(t);
    }
  }
  return out;
}

/// Stage 1: line stream -> complete RawBlocks. Owns every piece of parser
/// state that crosses block boundaries; shard workers never touch it.
struct Splitter {
  std::vector<checker::RawBlock> pending;  // complete blocks since last flush
  std::optional<ct::IsolationLevel> default_level;
  std::uint64_t line_no = 0;
  bool in_block = false;

  // Stream-level error (a stage-1 fact, distinct from a block parse error).
  bool failed = false;
  std::uint64_t error_line = 0;
  std::string error;  // formatted "line N: why"

  std::string open_block_;
  std::uint64_t open_block_line_ = 0;
  std::uint64_t open_route_ = 0;

  /// Consume one complete line; false on a stream-level error.
  bool consume(const std::string& line) {
    ++line_no;
    const std::string_view tok = first_token(line);
    if (in_block) {
      if (tok == "txn") return fail("'txn' inside an unfinished block");
      if (tok == "vo") return fail("'vo' inside an unfinished block");
      open_block_ += line;
      open_block_ += '\n';
      if (tok == "end") {
        in_block = false;
        pending.push_back(checker::RawBlock{std::move(open_block_),
                                            open_block_line_, open_route_,
                                            default_level});
        open_block_.clear();
      }
      return true;
    }
    if (tok.empty()) return true;  // blank or comment-only
    if (tok == "vo") {
      return fail(
          "version order ('vo') is not allowed in streaming mode: the "
          "monitor judges the apply order itself; use an offline check "
          "for the ∃e question");
    }
    if (tok == "default-level") {
      // Hoisted directive handling: resolved here, once, and stamped onto
      // every later block — the per-block decoders stay stateless.
      const std::vector<std::string_view> toks = tokens_of(line);
      if (toks.size() != 2) {
        return fail("default-level needs: default-level <name>");
      }
      const auto level = ct::level_from_name(std::string(toks[1]));
      if (!level.has_value()) {
        return fail("unknown isolation level '" + std::string(toks[1]) +
                    "' (valid: " + std::string(ct::kValidLevelNames) + ")");
      }
      default_level = *level;
      return true;
    }
    if (tok != "txn") return fail("expected 'txn', got '" + std::string(tok) + "'");
    in_block = true;
    open_block_line_ = line_no;
    open_route_ = route_of(line);
    open_block_ = line;
    open_block_ += '\n';
    return true;
  }

  bool fail(std::string why) {
    failed = true;
    error_line = line_no;
    error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  }
};

/// Serial path: decode at every flush on the calling thread.
StreamAuditResult stream_audit_serial(
    std::istream& in, const StreamAuditOptions& opts,
    const std::function<bool(const StreamBlockReport&)>& on_block) {
  StreamAuditResult result;
  checker::OnlineChecker chk(opts.levels);
  chk.set_window({opts.window_txns, opts.window_bytes});
  if (opts.on_checker) opts.on_checker(chk);

  Splitter splitter;
  std::string partial;  // line fragment read before its newline
  std::vector<model::Transaction> batch;
  bool stop = false;
  Clock::time_point last_input = Clock::now();

  // The stream-error exit, mirroring the pipeline's validate-only epoch: an
  // earlier pending block's parse error must win over the stream error (the
  // serial reader of old hit it first, at that block's `end` line).
  auto stream_fail = [&]() {
    for (const checker::RawBlock& block : splitter.pending) {
      const checker::DecodedBlock decoded = decode_block(block);
      if (!decoded.error.empty()) {
        result.error = decoded.error;
        stop = true;
        return;
      }
    }
    result.error = splitter.error;
    stop = true;
  };

  auto flush = [&]() {
    if (stop) return;
    // Each block is decoded on its own: a writer re-emitting a transaction
    // block is a checker-level duplicate (ignored) no matter how the blocks
    // happen to batch across polls — parsing a whole batch as one document
    // would instead turn "both copies arrived in the same poll" into a
    // fatal parse error.
    for (const checker::RawBlock& block : splitter.pending) {
      checker::DecodedBlock decoded = decode_block(block);
      if (!decoded.error.empty()) {
        result.error = std::move(decoded.error);
        stop = true;
        splitter.pending.clear();
        return;
      }
      for (model::Transaction& t : decoded.txns) batch.push_back(std::move(t));
    }
    splitter.pending.clear();
    if (batch.empty()) return;

    const checker::OnlineChecker::Stats before = chk.stats();
    const std::vector<ct::IsolationLevel> alive_before = chk.surviving_levels();
    const Clock::time_point t0 = Clock::now();
    const std::size_t accepted =
        chk.append_all(std::span<const model::Transaction>(batch));
    const Clock::time_point t1 = Clock::now();

    StreamBlockReport rep;
    rep.block = ++result.blocks;
    rep.transactions = accepted;
    rep.duplicates = chk.stats().duplicates_ignored - before.duplicates_ignored;
    rep.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (ct::IsolationLevel level : alive_before) {
      if (!chk.status(level).ok) rep.died.push_back(level);
    }
    rep.checker = &chk;
    rep.watermark = chk.watermark();
    rep.resident_txns = chk.resident_txns();
    rep.resident_ops = chk.resident_ops();

    result.transactions += accepted;
    result.duplicates += rep.duplicates;
    batch.clear();

    if (obs::enabled()) {
      FollowMetrics& m = FollowMetrics::get();
      m.batches.inc();
      m.txns.inc(accepted);
      m.duplicates.inc(rep.duplicates);
      m.batch_seconds.observe(rep.seconds);
      m.levels_alive.set(static_cast<std::int64_t>(chk.surviving_levels().size()));
    }
    if (opts.metrics_every != 0 && result.blocks % opts.metrics_every == 0) {
      rep.metrics_snapshot = obs::Registry::global().json();
    }

    if (on_block && !on_block(rep)) stop = true;
    if (opts.max_blocks != 0 && result.blocks >= opts.max_blocks) stop = true;
  };

  std::string line;
  while (!stop) {
    if (std::getline(in, line)) {
      last_input = Clock::now();
      if (in.eof()) {
        // The writer hasn't finished this line yet; hold it for later polls.
        partial += line;
        continue;
      }
      if (!splitter.consume(partial + line)) stream_fail();
      partial.clear();
      continue;
    }
    // Caught up with the stream: audit everything complete, then poll.
    if (opts.max_blocks != 0 && result.blocks + 1 >= opts.max_blocks &&
        splitter.in_block && !partial.empty() && first_token(partial) == "end") {
      // This flush is the last one --max-blocks allows, and the open block's
      // `end` already arrived minus its newline. The idle-exit path would
      // treat such a fragment as the complete final line after the loop, but
      // max_blocks stops the loop with `stop` set, skipping it — so the
      // fully-delivered block would silently never be audited. Complete it
      // here instead, so it joins the final batch.
      if (!splitter.consume(partial)) stream_fail();
      partial.clear();
    }
    flush();
    if (stop) break;
    if (opts.idle_exit_ms > 0 &&
        Clock::now() - last_input >= std::chrono::milliseconds(opts.idle_exit_ms)) {
      break;
    }
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
  }
  if (!stop && !partial.empty()) {
    // The writer exited without a trailing newline (idle-exit fired with a
    // buffered fragment): treat the fragment as the complete final line so a
    // block whose `end` lacks the newline is still audited.
    if (!splitter.consume(partial)) stream_fail();
    partial.clear();
  }
  flush();  // blocks completed by the final reads before a stop condition

  result.surviving = chk.surviving_levels();
  for (ct::IsolationLevel level : opts.levels) {
    result.statuses.emplace(level, chk.status(level));
  }
  result.checker_stats = chk.stats();
  return result;
}

/// Pipelined path: stage 1 runs here, decode and append run on
/// ShardedOnlineChecker's threads. Flush boundaries (and therefore batch
/// numbering, per-batch counters and every checker-visible ordering) are cut
/// exactly where the serial path cuts them.
StreamAuditResult stream_audit_pipelined(
    std::istream& in, const StreamAuditOptions& opts,
    const std::function<bool(const StreamBlockReport&)>& on_block) {
  StreamAuditResult result;

  checker::ShardedOnlineChecker::Options sharded;
  sharded.shards = opts.ingest_threads;
  sharded.levels = opts.levels;
  sharded.window = {opts.window_txns, opts.window_bytes};
  sharded.decoder = decode_block;
  sharded.on_checker = opts.on_checker;

  // Per-epoch adapter, invoked sequentially on the merge thread: the same
  // report/metrics/callback/stop logic as a serial flush.
  auto on_epoch = [&](const checker::ShardedOnlineChecker::EpochReport& er) {
    StreamBlockReport rep;
    rep.block = er.epoch;
    rep.transactions = er.transactions;
    rep.duplicates = er.duplicates;
    rep.seconds = er.seconds;
    rep.died = er.died;
    rep.checker = er.checker;
    rep.watermark = er.watermark;
    rep.resident_txns = er.resident_txns;
    rep.resident_ops = er.resident_ops;
    if (obs::enabled()) {
      FollowMetrics& m = FollowMetrics::get();
      m.batches.inc();
      m.txns.inc(er.transactions);
      m.duplicates.inc(er.duplicates);
      m.batch_seconds.observe(er.seconds);
      m.levels_alive.set(
          static_cast<std::int64_t>(er.checker->surviving_levels().size()));
    }
    if (opts.metrics_every != 0 && er.epoch % opts.metrics_every == 0) {
      rep.metrics_snapshot = obs::Registry::global().json();
    }
    bool keep = !on_block || on_block(rep);
    if (opts.max_blocks != 0 && er.epoch >= opts.max_blocks) keep = false;
    return keep;
  };
  checker::ShardedOnlineChecker pipeline(std::move(sharded), on_epoch);

  Splitter splitter;
  std::string partial;
  std::string line;
  std::uint64_t submitted = 0;
  bool failed = false;
  Clock::time_point last_input = Clock::now();

  for (;;) {
    if (std::getline(in, line)) {
      last_input = Clock::now();
      if (in.eof()) {
        partial += line;
        continue;
      }
      if (!splitter.consume(partial + line)) {
        failed = true;
        break;
      }
      partial.clear();
      continue;
    }
    // Caught up: submit the epoch (stage 2/3 overlap with further reading).
    if (opts.max_blocks != 0 && submitted + 1 >= opts.max_blocks &&
        splitter.in_block && !partial.empty() && first_token(partial) == "end") {
      // Same fully-delivered-final-block case as the serial path; `end` as a
      // complete line cannot produce a stream error.
      splitter.consume(partial);
      partial.clear();
    }
    if (!splitter.pending.empty()) {
      ++submitted;
      const bool accepted = pipeline.submit(std::move(splitter.pending));
      splitter.pending.clear();
      if (!accepted) break;
    }
    if (pipeline.stopped()) break;
    if (opts.max_blocks != 0 && submitted >= opts.max_blocks) break;
    if (opts.idle_exit_ms > 0 &&
        Clock::now() - last_input >= std::chrono::milliseconds(opts.idle_exit_ms)) {
      break;
    }
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
  }
  if (!failed && !pipeline.stopped() && !partial.empty()) {
    // Idle-exit with a buffered final fragment, as in the serial path.
    if (!splitter.consume(partial)) failed = true;
    partial.clear();
  }
  if (failed) {
    // Validate-only epoch: pending blocks are decoded for the first-error-
    // in-line-order reconciliation but never appended (the serial path drops
    // an erroring batch whole).
    pipeline.submit_error(std::move(splitter.pending), splitter.error_line,
                          splitter.error);
  } else if (!splitter.pending.empty()) {
    pipeline.submit(std::move(splitter.pending));
  }

  const checker::ShardedOnlineChecker::Result& fin = pipeline.finish();
  result.blocks = fin.epochs;
  result.transactions = fin.transactions;
  result.duplicates = fin.duplicates;
  result.error = fin.error;

  const checker::OnlineChecker& chk = pipeline.checker();
  result.surviving = chk.surviving_levels();
  for (ct::IsolationLevel level : opts.levels) {
    result.statuses.emplace(level, chk.status(level));
  }
  result.checker_stats = chk.stats();
  return result;
}

}  // namespace

StreamAuditResult stream_audit(
    std::istream& in, const StreamAuditOptions& opts,
    const std::function<bool(const StreamBlockReport&)>& on_block) {
  return opts.ingest_threads >= 1 ? stream_audit_pipelined(in, opts, on_block)
                                  : stream_audit_serial(in, opts, on_block);
}

}  // namespace crooks::report
