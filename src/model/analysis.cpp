#include "model/analysis.hpp"

#include <algorithm>
#include <cassert>

namespace crooks::model {

namespace {

// Shared empty timeline (just the initial ⊥ version) for keys never written.
const std::vector<VersionEntry>& initial_only_timeline() {
  static const std::vector<VersionEntry> kInitial{{0, kInitTxn}};
  return kInitial;
}

}  // namespace

ReadStateAnalysis::ReadStateAnalysis(const TransactionSet& txns, const Execution& e)
    : txns_(&txns), exec_(&e), txn_(txns.size()) {
  // Build per-key version timelines by walking the execution order once.
  for (std::size_t j = 0; j < e.order().size(); ++j) {
    const Transaction& t = txns.by_id(e.order()[j]);
    const StateIndex pos = static_cast<StateIndex>(j) + 1;
    for (Key k : t.write_set()) {
      auto [it, inserted] = timelines_.try_emplace(k);
      if (inserted) it->second.push_back({0, kInitTxn});
      it->second.push_back({pos, t.id()});
    }
  }

  for (std::size_t dense = 0; dense < txns.size(); ++dense) {
    analyze_transaction(dense);
    if (!txn_[dense].preread) preread_all_ = false;
  }
}

const std::vector<VersionEntry>& ReadStateAnalysis::timeline(Key k) const {
  auto it = timelines_.find(k);
  return it == timelines_.end() ? initial_only_timeline() : it->second;
}

StateIndex ReadStateAnalysis::last_write_at_or_before(Key k, StateIndex s) const {
  const std::vector<VersionEntry>& tl = timeline(k);
  // Last entry with pos <= s. Entry 0 always has pos == 0 <= s for s >= 0.
  auto it = std::upper_bound(tl.begin(), tl.end(), s,
                             [](StateIndex v, const VersionEntry& en) { return v < en.pos; });
  assert(it != tl.begin());
  return std::prev(it)->pos;
}

StateInterval ReadStateAnalysis::read_states_of(const Transaction& t, std::size_t dense,
                                                std::size_t op_index, bool& internal) const {
  const Operation& op = t.ops()[op_index];
  const StateIndex parent = exec_->parent_of(dense);
  internal = false;

  if (op.is_write()) {
    // By convention (§3), writes can "read" from any state up to the parent.
    return {0, parent};
  }

  // A phantom observation (intermediate write, Adya's G1b) exists in no state.
  if (op.value.phantom) return {};

  // Internal read: the transaction wrote this key earlier in program order.
  for (std::size_t i = 0; i < op_index; ++i) {
    const Operation& prev = t.ops()[i];
    if (prev.is_write() && prev.key == op.key) {
      internal = true;
      // Definition 2: such a read must return the transaction's own write;
      // its read-state set is, by convention, every state up to the parent.
      // An observation violating read-your-own-writes has no read state.
      if (op.value.writer == t.id()) return {0, parent};
      return {};  // empty: malformed observation, PREREAD will fail
    }
  }

  // External read of the value written by op.value.writer.
  const TxnId writer = op.value.writer;
  if (writer == t.id()) return {};  // claims to read own write it never made

  StateIndex version_pos = 0;
  if (writer != kInitTxn) {
    if (!txns_->contains(writer)) return {};  // writer aborted / unknown
    const Transaction& w = txns_->by_id(writer);
    if (!w.writes(op.key)) return {};  // writer never wrote this key
    version_pos = exec_->state_of(txns_->dense_index_of(writer));
  }

  // The version is current from version_pos until the next write of the key.
  const std::vector<VersionEntry>& tl = timeline(op.key);
  auto it = std::upper_bound(tl.begin(), tl.end(), version_pos,
                             [](StateIndex v, const VersionEntry& en) { return v < en.pos; });
  const StateIndex next_write =
      it == tl.end() ? exec_->last_state() + 1 : it->pos;

  // Clamp to the parent: operations cannot read from the future (§3).
  return StateInterval{version_pos, std::min(next_write - 1, parent)};
}

void ReadStateAnalysis::analyze_transaction(std::size_t dense) {
  const Transaction& t = txns_->at(dense);
  TxnAnalysis& out = txn_[dense];
  out.state = exec_->state_of(dense);
  out.parent = out.state - 1;
  out.preread = true;
  out.complete = {0, out.parent};
  out.ops.resize(t.ops().size());

  for (std::size_t i = 0; i < t.ops().size(); ++i) {
    bool internal = false;
    const StateInterval rs = read_states_of(t, dense, i, internal);
    out.ops[i] = {rs, internal};
    if (rs.empty()) out.preread = false;
    out.complete = out.complete.intersect(rs);
  }

  // NO-CONF_T(s) ≡ Δ(s, s_p) ∩ W_T = ∅. Δ(s, s_p) is exactly the set of keys
  // written by transactions at positions in (s, s_p] (values are unique, so a
  // key differs iff someone rewrote it). The earliest conflict-free state is
  // therefore the last position ≤ s_p at which any key of W_T was written.
  StateIndex min_ok = 0;
  for (Key k : t.write_set()) {
    min_ok = std::max(min_ok, last_write_at_or_before(k, out.parent));
  }
  out.no_conf_min = min_ok;
}

const Precedence& ReadStateAnalysis::precedence() const {
  if (precedence_.has_value()) return *precedence_;

  Precedence p;
  const std::size_t n = txns_->size();
  p.prec_.assign(n, DynamicBitset(n));
  p.direct_count_.assign(n, 0);

  // Walk transactions in execution order so that every direct predecessor's
  // transitive set is already complete when we fold it in (Lemma E.1/E.2:
  // under PREREAD, predecessors occur strictly earlier in e).
  for (TxnId id : exec_->order()) {
    const std::size_t dense = txns_->dense_index_of(id);
    const Transaction& t = txns_->at(dense);
    const TxnAnalysis& ta = txn_[dense];
    DynamicBitset& mine = p.prec_[dense];
    DynamicBitset direct_set(n);  // D-PREC_e(T): distinct direct predecessors

    auto add_direct = [&](std::size_t pred_dense) {
      if (pred_dense == dense) return;
      direct_set.set(pred_dense);
      mine.set(pred_dense);
      mine.or_with(p.prec_[pred_dense]);
    };

    // Read dependencies: the writer of each operation's first read state.
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      const OpAnalysis& oa = ta.ops[i];
      if (!op.is_read() || oa.internal || oa.rs.empty()) continue;
      const TxnId w = op.value.writer;
      if (w == kInitTxn) continue;
      add_direct(txns_->dense_index_of(w));
    }

    // Write-write dependencies: every earlier transaction writing a key that
    // this transaction also writes.
    for (Key k : t.write_set()) {
      for_writers_in(k, 0, ta.parent, [&](TxnId w, StateIndex) {
        if (w == kInitTxn) return;
        add_direct(txns_->dense_index_of(w));
      });
    }

    p.direct_count_[dense] = direct_set.count();
  }

  precedence_ = std::move(p);
  return *precedence_;
}

}  // namespace crooks::model
