// Per-transaction isolation-level assignments.
//
// The paper's commit test is modular in the transaction — CT_I(T, e) only
// mentions T's own reads against e — so "the history satisfies I" generalizes
// for free to "∃e : ∀T : CT_{A(T)}(T, e)" for any per-transaction assignment
// A. This is the mixed-isolation setting real deployments run (RC, SI and SER
// transactions in one history; cf. arXiv 2505.18409): each transaction is
// audited at the level it was declared with.
//
// LevelAssignment is the resolved, dense form the engines consume: a fallback
// level plus an optional per-dense-index column. The uniform case (empty
// column, or a column where every entry equals the fallback) is detected at
// construction — every checker entry point taking an assignment delegates
// uniform assignments verbatim to the global-level code path, so uniform
// calls stay verdict-, witness- and node-count-identical to the existing API
// by construction.
//
// LevelPolicy is the unresolved, id-keyed form for callers that don't hold a
// compilation yet (check_batch over many histories, the CLI's --levels flag):
// a fallback, optional TxnId→level overrides, and whether to honor the
// transactions' own `level=` annotations. resolve() binds it to one compiled
// history.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "committest/levels.hpp"
#include "common/ids.hpp"
#include "model/compiled.hpp"

namespace crooks::ct {

class LevelAssignment {
 public:
  /// Uniform assignment: every transaction at `level`. Implicit so existing
  /// call shapes (`check(ct::IsolationLevel::..., ...)`) can flow into
  /// assignment-taking helpers.
  /*implicit*/ LevelAssignment(IsolationLevel level = IsolationLevel::kSerializable)
      : fallback_(level), mask_(bit(level)) {}

  /// Per-transaction column (dense-indexed); entries beyond the column — a
  /// grown history — resolve to `fallback`.
  LevelAssignment(IsolationLevel fallback, std::vector<IsolationLevel> column)
      : fallback_(fallback), column_(std::move(column)) {
    recompute_mask();
  }

  /// Resolve each transaction of `ch` to: its own `level=` annotation when
  /// present, else `fallback`.
  static LevelAssignment from_annotations(const model::CompiledHistory& ch,
                                          IsolationLevel fallback);

  /// Same, with explicit per-id overrides taking precedence over annotations.
  /// Throws std::invalid_argument if an override names an unknown TxnId.
  static LevelAssignment from_annotations(
      const model::CompiledHistory& ch, IsolationLevel fallback,
      const std::unordered_map<TxnId, IsolationLevel>& overrides);

  /// The level of the transaction with dense index `d`.
  IsolationLevel of(std::size_t d) const {
    return d < column_.size() ? column_[d] : fallback_;
  }

  IsolationLevel fallback() const { return fallback_; }
  std::size_t column_size() const { return column_.size(); }

  /// True when every transaction (including any future one beyond the
  /// column) resolves to the same level — the fast path that must stay
  /// bit-identical to the global-level API.
  bool is_uniform() const { return mask_ == bit(fallback_); }

  /// Bitmask over IsolationLevel enumerators of the levels this assignment
  /// can produce (the column's distinct entries plus the fallback).
  std::uint16_t present_mask() const { return mask_; }

  /// The distinct levels present, in enum (weak-to-strong spine) order.
  std::vector<IsolationLevel> present() const;

  /// Is any transaction assigned this level?
  bool present(IsolationLevel l) const { return (mask_ & bit(l)) != 0; }

  /// True iff every present level is in `set`.
  bool all_in(std::initializer_list<IsolationLevel> set) const;

  /// Greatest lower bound of the present levels (always exists — see
  /// meet_of). A refutation of the history at meet() is a refutation of the
  /// mix, by per-transaction monotonicity.
  IsolationLevel meet() const;

  /// "ReadCommitted" for a uniform assignment, else e.g.
  /// "mixed{ReadCommitted, Serializable} (default ReadCommitted)".
  std::string describe() const;

 private:
  static constexpr std::uint16_t bit(IsolationLevel l) {
    return static_cast<std::uint16_t>(1u << static_cast<unsigned>(l));
  }
  void recompute_mask();

  IsolationLevel fallback_ = IsolationLevel::kSerializable;
  std::vector<IsolationLevel> column_;
  std::uint16_t mask_ = 0;
};

/// Unresolved assignment: how a caller without a compilation in hand names
/// levels. Uniform policies (no overrides, annotations ignored) resolve to
/// uniform assignments and therefore to the exact global-level behaviour.
struct LevelPolicy {
  IsolationLevel fallback = IsolationLevel::kSerializable;
  /// Explicit per-transaction overrides (the CLI's --levels flag), applied
  /// over annotations.
  std::unordered_map<TxnId, IsolationLevel> overrides;
  /// Honor the transactions' own `level=` annotations. When false the policy
  /// sees only `fallback` and `overrides`.
  bool use_annotations = true;

  /// A policy equivalent to today's global-level call.
  static LevelPolicy uniform(IsolationLevel level) {
    return LevelPolicy{level, {}, false};
  }

  bool is_trivially_uniform() const { return overrides.empty() && !use_annotations; }

  /// Bind to one compiled history. Throws std::invalid_argument if an
  /// override names a transaction not in `ch`.
  LevelAssignment resolve(const model::CompiledHistory& ch) const;

  /// Like resolve(), but an override naming a transaction not (yet) in `ch`
  /// is ignored instead of throwing — the shape incremental streams need,
  /// where an override may target a transaction arriving in a later block.
  LevelAssignment resolve_prefix(const model::CompiledHistory& ch) const;
};

}  // namespace crooks::ct
