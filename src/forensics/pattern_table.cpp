#include "forensics/pattern_table.hpp"

#include <algorithm>

namespace crooks::forensics {

void SpaceSaving::add(std::uint64_t item) {
  for (Entry& e : slots_) {
    if (e.item == item) {
      ++e.count;
      return;
    }
  }
  if (slots_.size() < k_) {
    slots_.push_back({item, 1});
    return;
  }
  // Evict the FIRST minimum-count slot (deterministic); the newcomer
  // inherits its count + 1 (space-saving overestimate).
  std::size_t victim = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].count < slots_[victim].count) victim = i;
  }
  slots_[victim] = {item, slots_[victim].count + 1};
}

std::vector<SpaceSaving::Entry> SpaceSaving::top() const {
  std::vector<Entry> out = slots_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  return out;
}

std::size_t engine_index(std::string_view engine) {
  for (std::size_t i = 0; i < kEngineNames.size(); ++i) {
    if (kEngineNames[i] == engine) return i;
  }
  return kEngineNames.size() - 1;  // "unknown"
}

namespace {

std::string hex6(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(6, '0');
  for (std::size_t i = 0; i < 6; ++i) {
    out[5 - i] = kHex[(v >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace

std::string pattern_name(const Witness& w) {
  const std::string cycle = known_cycle_name(canonical_form(w.shape));
  std::string out(name_of(w.clause));
  if (!cycle.empty()) {
    out += '/';
    out += cycle;
  } else {
    out += '-';
    out += hex6(w.fingerprint);
  }
  return out;
}

void PatternTable::add(const Witness& w) {
  const std::uint64_t seq = ++seq_;
  if (buffer_.size() < opt_.exemplar_buffer) buffer_.push_back(w);

  auto it = index_.find(w.fingerprint);
  if (it == index_.end()) {
    if (rows_.size() >= opt_.max_patterns) {
      ++overflow_;
      return;
    }
    index_.emplace(w.fingerprint, rows_.size());
    PatternRow row;
    row.fingerprint = w.fingerprint;
    row.name = pattern_name(w);
    row.shape = w.shape_str;
    row.clause = w.clause;
    row.first_seq = seq;
    row.hot_keys = SpaceSaving(opt_.hot_k);
    row.hot_sessions = SpaceSaving(opt_.hot_k);
    row.exemplar = w;
    rows_.push_back(std::move(row));
    it = index_.find(w.fingerprint);
  }

  PatternRow& row = rows_[it->second];
  ++row.count;
  row.last_seq = seq;
  row.truncated += w.truncated;
  row.by_level[static_cast<std::size_t>(w.level)] += 1;
  row.by_engine[engine_index(w.engine)] += 1;
  for (Key k : w.keys) row.hot_keys.add(k.value);
  for (const WitnessNode& n : w.nodes) {
    if (n.session != kNoSession) row.hot_sessions.add(n.session.value);
  }
}

std::vector<const PatternRow*> PatternTable::rows() const {
  std::vector<const PatternRow*> out;
  out.reserve(rows_.size());
  for (const PatternRow& r : rows_) out.push_back(&r);
  std::sort(out.begin(), out.end(), [](const PatternRow* a, const PatternRow* b) {
    if (a->count != b->count) return a->count > b->count;
    if (a->first_seq != b->first_seq) return a->first_seq < b->first_seq;
    return a->fingerprint < b->fingerprint;
  });
  return out;
}

std::vector<MinedPattern> PatternTable::mine() const {
  struct Acc {
    ShapeGraph canon;
    std::uint64_t support = 0;
  };
  std::vector<std::string> codes;   // sorted, parallel to accs by index map
  std::vector<Acc> accs;
  std::vector<std::size_t> order;   // accs index at codes position

  for (const Witness& w : buffer_) {
    const std::vector<ShapeGraph> subs =
        enumerate_subshapes(w.shape, opt_.mine_max_edges);
    // enumerate_subshapes dedups within one witness, so each hit below is a
    // distinct-witness support increment.
    for (const ShapeGraph& sub : subs) {
      std::string code = canonical_code(sub);
      auto it = std::lower_bound(codes.begin(), codes.end(), code);
      const std::size_t pos = static_cast<std::size_t>(it - codes.begin());
      if (it != codes.end() && *it == code) {
        ++accs[order[pos]].support;
      } else {
        codes.insert(it, std::move(code));
        order.insert(order.begin() + static_cast<std::ptrdiff_t>(pos), accs.size());
        accs.push_back({sub, 1});
      }
    }
  }

  std::vector<MinedPattern> out;
  for (std::size_t pos = 0; pos < codes.size(); ++pos) {
    const Acc& a = accs[order[pos]];
    if (a.support < opt_.mine_min_support) continue;
    MinedPattern p;
    p.fingerprint = fnv1a(kFnvBasis, codes[pos]);
    const std::string cycle = known_cycle_name(a.canon);
    p.name = cycle.empty() ? "shape-" + hex6(p.fingerprint) : cycle;
    p.shape = shape_string(a.canon);
    p.support = a.support;
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(), [](const MinedPattern& a, const MinedPattern& b) {
    if (a.support != b.support) return a.support > b.support;
    return a.fingerprint < b.fingerprint;
  });
  if (out.size() > opt_.mine_max_promoted) out.resize(opt_.mine_max_promoted);
  return out;
}

}  // namespace crooks::forensics
