// Workload generators: transaction intents for the store and the
// replication simulator.
//
// The paper's Figure 5 workload is generate_mix with 3 reads + 3 writes,
// uniform over 10,000 keys. Other experiments use variations (Zipfian skew,
// read-only fractions, session-structured clients).
#pragma once

#include <cstdint>
#include <vector>

#include "forensics/forensics.hpp"
#include "store/runner.hpp"

namespace crooks::wl {

struct MixOptions {
  std::size_t transactions = 100;
  std::size_t keys = 1000;
  std::size_t reads_per_txn = 3;
  std::size_t writes_per_txn = 3;
  double zipf_theta = 0;          // 0 = uniform key choice
  double read_only_fraction = 0;  // fraction of transactions with no writes
  std::uint32_t sessions = 0;     // >0: assign round-robin session ids
  std::uint32_t sites = 1;        // >0: assign round-robin site ids (PSI)
  std::uint64_t seed = 1;
};

/// Random read/write transactions. Keys within one transaction are distinct
/// (the model's writes-once rule) and reads precede writes of the same key.
std::vector<store::TxnIntent> generate_mix(const MixOptions& opts);

/// The Figure 3 banking scenario: `pairs` couples, each with a checking and
/// a savings account; each couple issues two concurrent withdrawals — one
/// reads both balances then debits checking, the other reads both then
/// debits savings. Under SER one of each pair must observe the other; under
/// SI both may read the stale snapshot (write skew).
std::vector<store::TxnIntent> banking_withdrawals(std::size_t pairs);

/// Mixed-level deployment profile: the banking withdrawals declared at
/// `critical_level` interleaved with a read-mostly background mix declared at
/// `background_level` — the "SER where it matters, RC everywhere else"
/// pattern mixed-level audits exist for. Background keys are offset past the
/// account keys so the populations share no data; the interleaving is
/// decided by the runner's scheduler, not the intent order.
struct MixedProfileOptions {
  std::size_t pairs = 4;                     // banking couples
  MixOptions background;                     // read-mostly filler traffic
  ct::IsolationLevel critical_level = ct::IsolationLevel::kSerializable;
  ct::IsolationLevel background_level = ct::IsolationLevel::kReadCommitted;
};
std::vector<store::TxnIntent> generate_mixed_profile(const MixedProfileOptions& opts);

/// Forensics feedback loop: replay a mined violation pattern as a directed
/// adversarial workload. Each round re-instantiates the witness's implicated
/// transactions — one intent per non-init node, issuing that node's
/// implicated reads then writes, declared at the witness's level — so the
/// store/replication simulators are hammered with exactly the access shape
/// that produced the violation (the conflict structure recurs; whether it
/// re-manifests depends on the scheduler).
struct PatternReplayOptions {
  std::size_t rounds = 8;
  /// Key-space stride between rounds: round r maps the witness's i-th
  /// implicated key to `1 + r*key_stride + i`, so rounds contend only within
  /// themselves. 0 = every round reuses the witness's own keys (maximum
  /// cross-round contention).
  std::uint64_t key_stride = 0;
  /// >0: override node sessions round-robin across this many sessions;
  /// 0 = inherit each witness node's own session id.
  std::uint32_t sessions = 0;
};
std::vector<store::TxnIntent> generate_from_pattern(
    const forensics::Witness& w, const PatternReplayOptions& opts = {});

}  // namespace crooks::wl
