#include "report/report.hpp"

#include <map>
#include <sstream>

#include "adya/phenomena.hpp"
#include "forensics/collector.hpp"
#include "report/forensics_render.hpp"

namespace crooks::report {

namespace {

const char* verdict_word(const checker::CheckResult& r) {
  switch (r.outcome) {
    case checker::Outcome::kSatisfiable: return "PASS";
    case checker::Outcome::kUnsatisfiable: return "FAIL";
    case checker::Outcome::kUnknown: return "UNDECIDED";
  }
  return "?";
}

/// One text line per offline engine refutation: the canonical pattern the
/// engine's evidence maps to. Annotation only — engine witnesses never enter
/// the replay table the determinism gate diffs.
std::string engine_exemplar_line(const model::CompiledHistory& ch,
                                 const checker::CheckResult& r,
                                 ct::IsolationLevel level,
                                 std::string_view label) {
  const std::optional<forensics::Witness> w =
      forensics::witness_from_result(ch, r, level);
  if (!w.has_value()) return {};
  std::ostringstream os;
  os << "    " << label << " (" << w->engine
     << "): " << forensics::pattern_name(*w) << " — " << w->shape_str << "\n";
  return os.str();
}

AuditResult audit_impl(const Observations& obs, const checker::CheckOptions& base,
                       ForensicsAudit* sink) {
  checker::CheckOptions opts = base;
  if (obs.has_version_order() && opts.version_order == nullptr) {
    opts.version_order = &obs.version_order;
  }

  std::ostringstream out;
  out << "isolation audit: " << obs.txns.size() << " transactions";
  if (opts.version_order != nullptr) {
    out << ", install order supplied (verdicts are definitive for the "
           "untimed levels)";
  }
  out << "\n\n";

  AuditResult result;

  // Forensics replay: the same OnlineChecker + Collector path --follow runs,
  // over the same transactions in the same (declaration) order. Built before
  // the engine loop so its compiled stream doubles as the history the engine
  // exemplar witnesses are extracted against.
  std::optional<checker::OnlineChecker> replay;
  forensics::Collector::Options copt;
  copt.metrics = false;  // a library audit must not touch the global registry
  forensics::Collector collector(copt);
  std::string engine_lines;
  if (sink != nullptr) {
    replay.emplace();  // all ten levels, like the --follow default
    collector.attach(*replay);
    replay->append_all(obs.txns);
  }

  std::vector<ct::IsolationLevel> passing;
  std::optional<model::Execution> strongest_witness;
  for (ct::IsolationLevel level : ct::kAllLevels) {
    const checker::CheckResult r = checker::check(level, obs.txns, opts);
    if (replay.has_value()) {
      engine_lines +=
          engine_exemplar_line(replay->stream(), r, level, ct::name_of(level));
    }
    out << "  " << verdict_word(r) << "  ";
    out.width(20);
    out << std::left << ct::name_of(level);
    if (auto eq = ct::equivalent_names(level); !eq.empty()) out << " (≡ " << eq << ")";
    if (!r.satisfiable() && !r.detail.empty()) out << "\n        " << r.detail;
    out << "\n";
    if (r.unsatisfiable() && r.diagnosis.has_value()) {
      std::istringstream lines(render_counterexample(*r.diagnosis));
      for (std::string line; std::getline(lines, line);) {
        out << "      " << line << "\n";
      }
    }
    if (r.satisfiable()) {
      passing.push_back(level);
      if (!result.strongest.has_value() ||
          ct::at_least_as_strong(level, *result.strongest)) {
        result.strongest = level;
        strongest_witness = r.witness;
      }
    }
  }

  // The lattice has incomparable branches (serializability vs the timed SI
  // family): report every maximal passing level.
  out << "\nstrongest level(s) admitted:";
  bool any = false;
  for (ct::IsolationLevel p : passing) {
    bool maximal = true;
    for (ct::IsolationLevel q : passing) {
      if (q != p && ct::at_least_as_strong(q, p)) maximal = false;
    }
    if (maximal) {
      out << (any ? ", " : " ") << ct::name_of(p);
      any = true;
    }
  }
  if (!any) out << " none";
  out << "\n";

  // Name the anomalies when the install order pins them down.
  if (opts.version_order != nullptr) {
    try {
      const adya::History h = adya::from_observations(obs.txns, *opts.version_order);
      const adya::Phenomena p = adya::detect(h);
      out << "phenomena under the install order: " << p.to_string() << "\n";
    } catch (const std::invalid_argument& e) {
      out << "phenomena unavailable: " << e.what() << "\n";
    }
  }

  if (strongest_witness.has_value() && obs.txns.size() <= 12) {
    out << "\nwitness for the strongest level:\n"
        << render_execution(obs.txns, *strongest_witness);
  }

  // Mixed-level audit: when the input declares per-transaction levels, the
  // per-level table above answers "what if EVERY transaction ran at L"; this
  // section answers the deployment's actual question — each transaction at
  // its own declared level (unannotated ones at the default-level directive,
  // or ReadUncommitted when absent).
  if (obs.has_level_annotations()) {
    const ct::IsolationLevel fallback =
        obs.default_level.value_or(ct::IsolationLevel::kReadUncommitted);
    // Dense compile order == the set's declaration order, so the column can
    // be built straight off the transactions.
    std::vector<ct::IsolationLevel> column;
    column.reserve(obs.txns.size());
    std::map<ct::IsolationLevel, std::size_t> groups;
    for (const model::Transaction& t : obs.txns) {
      column.push_back(t.level().value_or(fallback));
      ++groups[column.back()];
    }
    ct::LevelAssignment assignment(fallback, std::move(column));
    out << "\nmixed-level audit (each transaction at its own declared level; "
        << "default " << ct::name_of(fallback) << "):\n";
    out << "  level groups:";
    for (const auto& [l, n] : groups) out << "  " << ct::name_of(l) << " ×" << n;
    out << "\n";
    const checker::CheckResult r = checker::check(assignment, obs.txns, opts);
    out << "  " << verdict_word(r) << "  " << assignment.describe() << "\n";
    if (!r.satisfiable() && !r.detail.empty()) out << "        " << r.detail << "\n";
    if (r.unsatisfiable() && r.diagnosis.has_value()) {
      std::istringstream lines(render_counterexample(*r.diagnosis));
      for (std::string line; std::getline(lines, line);) {
        out << "      " << line << "\n";
      }
    }
    if (replay.has_value()) {
      engine_lines +=
          engine_exemplar_line(replay->stream(), r, fallback, "mixed-level");
    }
  }

  if (sink != nullptr) {
    out << "\n" << render_forensics(collector.table());
    if (!engine_lines.empty()) {
      out << "  engine exemplars (∃e refutations, text only):\n" << engine_lines;
    }
    sink->table = collector.table();
  }

  result.text = out.str();
  return result;
}

}  // namespace

AuditResult audit(const Observations& obs, const checker::CheckOptions& base) {
  return audit_impl(obs, base, nullptr);
}

ForensicsAudit audit_with_forensics(const Observations& obs,
                                    const checker::CheckOptions& base) {
  ForensicsAudit fa;
  fa.base = audit_impl(obs, base, &fa);
  return fa;
}

std::string render_counterexample(const checker::ReadDiagnosis& d) {
  std::ostringstream out;
  out << "  counterexample";
  if (!d.candidate_execution.empty()) {
    out << " (evidence on " << d.candidate_execution << ")";
  }
  out << ":\n";
  out << "    failing transaction: " << to_string(d.txn);
  // Under a mixed-level assignment this is the transaction's OWN level — the
  // one whose commit test it failed.
  if (d.level.has_value()) out << " (audited at " << ct::name_of(*d.level) << ")";
  out << "\n";
  if (!d.clause.empty()) out << "    violated clause: " << d.clause << "\n";
  if (d.key.has_value()) {
    out << "    implicated read: " << to_string(*d.key);
    if (d.observed_writer.has_value()) {
      out << " (observed writer " << to_string(*d.observed_writer) << ")";
    }
    out << "\n";
  }
  if (!d.candidate_states.empty()) {
    out << "    candidate read states: " << d.candidate_states << "\n";
  }
  return out.str();
}

std::string render_execution(const model::TransactionSet& txns,
                             const model::Execution& e) {
  std::ostringstream out;
  out << "  s0: all keys ⊥\n";
  StateIndex i = 1;
  for (TxnId id : e.order()) {
    const model::Transaction& t = txns.by_id(id);
    out << "  s" << i << ": apply " << to_string(id) << " {";
    bool first = true;
    for (const model::Operation& op : t.ops()) {
      if (!first) out << ", ";
      first = false;
      out << model::to_string(op);
    }
    out << "}";
    const auto state = e.materialize(txns, i);
    out << "  ->  {";
    first = true;
    for (const auto& [k, v] : state) {
      if (!first) out << ", ";
      first = false;
      out << to_string(k) << "=" << to_string(v.writer);
    }
    out << "}\n";
    ++i;
  }
  return out.str();
}

}  // namespace crooks::report
