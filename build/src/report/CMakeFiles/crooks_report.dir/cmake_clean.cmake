file(REMOVE_RECURSE
  "CMakeFiles/crooks_report.dir/report.cpp.o"
  "CMakeFiles/crooks_report.dir/report.cpp.o.d"
  "CMakeFiles/crooks_report.dir/serialize.cpp.o"
  "CMakeFiles/crooks_report.dir/serialize.cpp.o.d"
  "libcrooks_report.a"
  "libcrooks_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
