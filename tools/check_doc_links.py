#!/usr/bin/env python3
"""Check that relative Markdown links in the repo's docs resolve.

Walks every *.md file under the repository root (skipping build trees),
extracts inline links and image references, and verifies that each
repo-relative target exists — including `#anchor` fragments against the
GitHub-style slugs of the target file's headings. External links (http/https/
mailto) are not fetched; CI must not depend on the network. Exit status is the
number of broken links (0 = everything resolves).

Usage: tools/check_doc_links.py [repo-root]
"""
import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", "third_party"}
LINK_RE = re.compile(r"!?\[(?:[^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm, near enough: lowercase, drop punctuation,
    spaces to hyphens. Inline code/emphasis markers are stripped first."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        body = CODE_FENCE_RE.sub("", f.read())
    slugs = set()
    counts = {}
    for m in HEADING_RE.finditer(body):
        slug = slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    md_files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        md_files.extend(
            os.path.join(dirpath, f) for f in filenames if f.endswith(".md"))

    broken = 0
    checked = 0
    for md in sorted(md_files):
        with open(md, encoding="utf-8") as f:
            body = CODE_FENCE_RE.sub("", f.read())
        for m in LINK_RE.finditer(body):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            rel = os.path.relpath(md, root)
            path_part, _, fragment = target.partition("#")
            base = (md if not path_part
                    else os.path.normpath(os.path.join(os.path.dirname(md),
                                                       path_part)))
            if not os.path.exists(base):
                print(f"{rel}: broken link -> {target}")
                broken += 1
                continue
            if fragment and base.endswith(".md"):
                if fragment not in anchors_of(base):
                    print(f"{rel}: missing anchor -> {target}")
                    broken += 1
    print(f"{checked} relative links checked across {len(md_files)} files, "
          f"{broken} broken")
    return broken


if __name__ == "__main__":
    sys.exit(main())
