// Session guarantees (Terry et al.) as state-based tests.
#include <gtest/gtest.h>

#include "committest/session_guarantees.hpp"
#include "model/analysis.hpp"

namespace crooks::ct {
namespace {

using model::Execution;
using model::ReadStateAnalysis;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1};
constexpr SessionId kS1{1}, kS2{2};

ExecutionVerdict eval(SessionGuarantee g, const TransactionSet& txns,
                      std::vector<TxnId> order) {
  const Execution e(txns, std::move(order));
  const ReadStateAnalysis a(txns, e);
  return SessionTester(a).test_all(g);
}

TEST(SessionGuarantees, Names) {
  for (SessionGuarantee g : kAllSessionGuarantees) EXPECT_NE(name_of(g), "?");
}

TEST(SessionGuarantees, ReadMyWritesViolatedByStaleRead) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).session(kS1).at(20, 30).build(),
  }};
  EXPECT_FALSE(eval(SessionGuarantee::kReadMyWrites, txns, {TxnId{1}, TxnId{2}}).ok);
  // Reading the session's own write is fine.
  TransactionSet ok{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(2).read(kX, TxnId{1}).session(kS1).at(20, 30).build(),
  }};
  EXPECT_TRUE(eval(SessionGuarantee::kReadMyWrites, ok, {TxnId{1}, TxnId{2}}).ok);
}

TEST(SessionGuarantees, ReadMyWritesAcceptsNewerVersions) {
  // A third party overwrote the session's write; reading the newer version
  // still satisfies RMW.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(3).write(kX).at(11, 12).build(),
      TxnBuilder(2).read(kX, TxnId{3}).session(kS1).at(20, 30).build(),
  }};
  EXPECT_TRUE(
      eval(SessionGuarantee::kReadMyWrites, txns, {TxnId{1}, TxnId{3}, TxnId{2}}).ok);
}

TEST(SessionGuarantees, OtherSessionsUnconstrained) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).session(kS2).at(20, 30).build(),
  }};
  for (SessionGuarantee g : kAllSessionGuarantees) {
    EXPECT_TRUE(eval(g, txns, {TxnId{1}, TxnId{2}}).ok) << name_of(g);
  }
}

TEST(SessionGuarantees, MonotonicReadsViolatedByTimeTravel) {
  // T2 reads x=T3 (new); later T4 in the same session reads x=⊥ (old).
  TransactionSet txns{{
      TxnBuilder(3).write(kX).at(0, 5).build(),
      TxnBuilder(2).read(kX, TxnId{3}).session(kS1).at(6, 10).build(),
      TxnBuilder(4).read(kX, kInitTxn).session(kS1).at(20, 30).build(),
  }};
  // Execution must let T4 read ⊥: place T4 before T3.
  const ExecutionVerdict v =
      eval(SessionGuarantee::kMonotonicReads, txns, {TxnId{4}, TxnId{3}, TxnId{2}});
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.violating_txn, TxnId{4});
}

TEST(SessionGuarantees, MonotonicReadsOkWhenVersionsAdvance) {
  TransactionSet txns{{
      TxnBuilder(3).write(kX).at(0, 5).build(),
      TxnBuilder(2).read(kX, kInitTxn).session(kS1).at(1, 2).build(),
      TxnBuilder(4).read(kX, TxnId{3}).session(kS1).at(20, 30).build(),
  }};
  EXPECT_TRUE(
      eval(SessionGuarantee::kMonotonicReads, txns, {TxnId{2}, TxnId{3}, TxnId{4}}).ok);
}

TEST(SessionGuarantees, MonotonicWritesOrderSessionStates) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(2).write(kY).session(kS1).at(20, 30).build(),
  }};
  EXPECT_TRUE(eval(SessionGuarantee::kMonotonicWrites, txns, {TxnId{1}, TxnId{2}}).ok);
  EXPECT_FALSE(eval(SessionGuarantee::kMonotonicWrites, txns, {TxnId{2}, TxnId{1}}).ok);
}

TEST(SessionGuarantees, WritesFollowReads) {
  // T2 (session) read T1's x; T3 continues the session. T1 must precede T3.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 5).build(),
      TxnBuilder(2).read(kX, TxnId{1}).session(kS1).at(6, 10).build(),
      TxnBuilder(3).write(kY).session(kS1).at(20, 30).build(),
  }};
  EXPECT_TRUE(
      eval(SessionGuarantee::kWritesFollowReads, txns, {TxnId{1}, TxnId{2}, TxnId{3}}).ok);
  const ExecutionVerdict v =
      eval(SessionGuarantee::kWritesFollowReads, txns, {TxnId{3}, TxnId{1}, TxnId{2}});
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.violating_txn, TxnId{3});
}

TEST(SessionGuarantees, CheckDecidesOnCommitOrder) {
  TransactionSet stale{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).session(kS1).at(20, 30).build(),
  }};
  EXPECT_FALSE(check_session_guarantee(SessionGuarantee::kReadMyWrites, stale).ok);
  EXPECT_TRUE(check_session_guarantee(SessionGuarantee::kMonotonicWrites, stale).ok);

  TransactionSet fresh{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(2).read(kX, TxnId{1}).session(kS1).at(20, 30).build(),
  }};
  for (SessionGuarantee g : kAllSessionGuarantees) {
    EXPECT_TRUE(check_session_guarantee(g, fresh).ok) << name_of(g);
  }
}

TEST(SessionGuarantees, CheckRequiresTimestamps) {
  TransactionSet untimed{{TxnBuilder(1).write(kX).session(kS1).build()}};
  const ExecutionVerdict v =
      check_session_guarantee(SessionGuarantee::kReadMyWrites, untimed);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.explanation.find("time oracle"), std::string::npos);
}

/// Session SI implies all four guarantees on the same execution — the
/// hierarchy relation between §5.2 and the classic session guarantees.
TEST(SessionGuarantees, ImpliedBySessionSi) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(kS1).at(0, 10).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).session(kS1).at(12, 20).build(),
      TxnBuilder(3).read(kX, TxnId{1}).read(kY, TxnId{2}).session(kS1).at(22, 30).build(),
  }};
  const Execution e(txns, {TxnId{1}, TxnId{2}, TxnId{3}});
  const ReadStateAnalysis a(txns, e);
  ASSERT_TRUE(CommitTester(a).test_all(IsolationLevel::kSessionSI).ok);
  SessionTester st(a);
  for (SessionGuarantee g : kAllSessionGuarantees) {
    EXPECT_TRUE(st.test_all(g).ok) << name_of(g);
  }
}

}  // namespace
}  // namespace crooks::ct
