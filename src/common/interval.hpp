// Closed integer intervals over execution-state indices.
//
// Read states of an operation form a contiguous subsequence of the execution's
// states (§3: "the read states of any operation o define a subsequence of
// contiguous states"), so [first, last] intervals are the natural container.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace crooks {

/// Index of a state in an execution. State i is the state reached after
/// applying the first i transactions; state 0 is the initial state.
using StateIndex = std::int64_t;

/// A closed interval [first, last] of state indices; empty iff first > last.
struct StateInterval {
  StateIndex first = 0;
  StateIndex last = -1;  // default-constructed interval is empty

  constexpr StateInterval() = default;
  constexpr StateInterval(StateIndex f, StateIndex l) : first(f), last(l) {}

  constexpr bool empty() const { return first > last; }
  constexpr bool contains(StateIndex i) const { return first <= i && i <= last; }

  /// Intersection of two closed intervals (possibly empty).
  constexpr StateInterval intersect(StateInterval o) const {
    return {std::max(first, o.first), std::min(last, o.last)};
  }

  friend constexpr bool operator==(StateInterval, StateInterval) = default;
};

inline std::string to_string(StateInterval iv) {
  if (iv.empty()) return "[empty]";
  return "[s" + std::to_string(iv.first) + ", s" + std::to_string(iv.last) + "]";
}

}  // namespace crooks
