#include "adya/axiomatic.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/bitset.hpp"

namespace crooks::adya {

namespace {

using model::Operation;
using model::Transaction;

/// An external read: (key, observed writer's dense index or npos for ⊥).
struct ExtRead {
  Key key{};
  std::size_t writer = SIZE_MAX;  // SIZE_MAX = initial value
  bool impossible = false;        // phantom / dangling / never-written-key
};

struct Prepared {
  std::vector<std::vector<ExtRead>> reads;  // per txn
  bool int_violation = false;               // INT broken outright
};

Prepared prepare(const model::TransactionSet& txns) {
  Prepared out;
  out.reads.resize(txns.size());
  for (std::size_t d = 0; d < txns.size(); ++d) {
    const Transaction& t = txns.at(d);
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read()) continue;
      // Internal (post-own-write) reads belong to INT: they must return the
      // transaction's own value; a mismatch is an outright INT violation.
      bool internal = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (t.ops()[j].is_write() && t.ops()[j].key == op.key) internal = true;
      }
      if (internal) {
        if (op.value.writer != t.id() || op.value.phantom) out.int_violation = true;
        continue;
      }
      ExtRead r;
      r.key = op.key;
      if (op.value.phantom) {
        r.impossible = true;
      } else if (op.value.writer == kInitTxn) {
        r.writer = SIZE_MAX;
      } else if (!txns.contains(op.value.writer) ||
                 !txns.by_id(op.value.writer).writes(op.key)) {
        r.impossible = true;  // dangling writer (G1a shape) or bogus key
      } else {
        r.writer = txns.dense_index_of(op.value.writer);
      }
      out.reads[d].push_back(r);
    }
  }
  return out;
}

/// SER: VIS = AR. Each external read must observe the AR-latest prior
/// writer of its key (⊥ when none).
bool check_order_ser(const model::TransactionSet& txns, const Prepared& prep,
                     const std::vector<std::size_t>& ar) {
  const std::size_t n = txns.size();
  std::vector<std::size_t> pos(n);
  for (std::size_t p = 0; p < n; ++p) pos[ar[p]] = p;

  for (std::size_t d = 0; d < n; ++d) {
    for (const ExtRead& r : prep.reads[d]) {
      if (r.impossible) return false;
      std::size_t latest = SIZE_MAX;
      for (std::size_t q = 0; q < pos[d]; ++q) {
        if (txns.at(ar[q]).writes(r.key)) latest = q;
      }
      if (r.writer == SIZE_MAX) {
        if (latest != SIZE_MAX) return false;
      } else if (latest != pos[r.writer]) {
        return false;
      }
    }
  }
  return true;
}

/// Check one arbitration order (given as dense indices in AR order).
bool check_order(const model::TransactionSet& txns, const Prepared& prep,
                 const std::vector<std::size_t>& ar) {
  const std::size_t n = txns.size();
  std::vector<std::size_t> pos(n);  // dense -> AR position
  for (std::size_t p = 0; p < n; ++p) pos[ar[p]] = p;

  // Minimal VIS edges, as bitsets over AR positions: vis[p] = positions
  // visible to the transaction at position p.
  std::vector<DynamicBitset> vis(n, DynamicBitset(n));

  auto add_edge = [&](std::size_t from_pos, std::size_t to_pos) -> bool {
    if (from_pos >= to_pos) return false;  // VIS ⊆ AR
    vis[to_pos].set(from_pos);
    return true;
  };

  // Reads-from edges.
  for (std::size_t d = 0; d < n; ++d) {
    for (const ExtRead& r : prep.reads[d]) {
      if (r.impossible) return false;
      if (r.writer == SIZE_MAX) continue;
      if (!add_edge(pos[r.writer], pos[d])) return false;  // reader before writer
    }
  }
  // NOCONFLICT edges: conflicting writers ordered by AR.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (pos[a] >= pos[b]) continue;
      const Transaction& ta = txns.at(a);
      const Transaction& tb = txns.at(b);
      bool conflict = false;
      for (Key k : ta.write_set()) {
        if (tb.writes(k)) {
          conflict = true;
          break;
        }
      }
      if (conflict) add_edge(pos[a], pos[b]);
    }
  }
  // TRANSVIS: close transitively, walking AR forward (edges point forward).
  for (std::size_t p = 0; p < n; ++p) {
    DynamicBitset absorbed(n);
    vis[p].for_each([&](std::size_t q) { absorbed.or_with(vis[q]); });
    vis[p].or_with(absorbed);
  }

  // EXT: the AR-maximal visible writer of each read's key must match.
  for (std::size_t d = 0; d < n; ++d) {
    const std::size_t my_pos = pos[d];
    for (const ExtRead& r : prep.reads[d]) {
      std::size_t max_writer_pos = SIZE_MAX;
      vis[my_pos].for_each([&](std::size_t q) {
        if (txns.at(ar[q]).writes(r.key)) {
          if (max_writer_pos == SIZE_MAX || q > max_writer_pos) max_writer_pos = q;
        }
      });
      if (r.writer == SIZE_MAX) {
        if (max_writer_pos != SIZE_MAX) return false;  // must read ⊥
      } else if (max_writer_pos != pos[r.writer]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

namespace {

template <typename OrderCheck>
AxiomaticResult enumerate_orders(const model::TransactionSet& txns,
                                 OrderCheck&& accept, const char* what) {
  if (txns.size() > 9) {
    throw std::invalid_argument("axiomatic checks enumerate |𝒯|! orders; ≤9 only");
  }
  const Prepared prep = prepare(txns);
  if (prep.int_violation) {
    return {false, 0, "INT violated: an internal read returned a foreign value"};
  }
  if (txns.empty()) return {true, 0, "empty set"};

  std::vector<std::size_t> ar(txns.size());
  std::iota(ar.begin(), ar.end(), 0);
  AxiomaticResult out;
  do {
    ++out.orders_tried;
    if (accept(txns, prep, ar)) {
      out.satisfiable = true;
      out.detail = std::string("found an arbitration order satisfying ") + what;
      return out;
    }
  } while (std::next_permutation(ar.begin(), ar.end()));
  out.detail = std::string("no arbitration order satisfies ") + what;
  return out;
}

}  // namespace

AxiomaticResult check_psi_axiomatic(const model::TransactionSet& txns) {
  return enumerate_orders(txns, [](const auto& t, const auto& p, const auto& a) {
    return check_order(t, p, a);
  }, "INT/EXT/TRANSVIS/NOCONFLICT (PSI_A)");
}

AxiomaticResult check_ser_axiomatic(const model::TransactionSet& txns) {
  return enumerate_orders(txns, [](const auto& t, const auto& p, const auto& a) {
    return check_order_ser(t, p, a);
  }, "INT/EXT with VIS = AR (SER)");
}

}  // namespace crooks::adya
