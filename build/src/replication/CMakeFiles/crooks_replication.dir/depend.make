# Empty dependencies file for crooks_replication.
# This may be replaced when dependencies are built.
