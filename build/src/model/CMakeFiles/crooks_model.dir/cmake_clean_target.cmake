file(REMOVE_RECURSE
  "libcrooks_model.a"
)
