// Exhaustive branch-and-bound search for a witness execution.
//
// The key fact making prefix pruning sound: once a transaction is placed at
// the end of the current prefix, every quantity its commit test depends on is
// already fixed — read-state intervals only reference states up to the
// parent, NO-CONF windows end at the parent, PREC sets only contain earlier
// transactions, and the real-time/session clauses are handled by requiring
// the quantified predecessors to be placed first. Appending more transactions
// later can never change a placed transaction's verdict, so a failing
// placement prunes the whole subtree, and a fully built order in which every
// placement passed is a genuine witness.
//
// Parallel mode (opts.threads != 1, |𝒯| ≥ kMinParallelSize): the n disjoint
// top-level prefix branches — "transaction d is placed first" — partition the
// whole search tree, so each branch is handed to a pool worker as an
// independent search seeded with that first placement. Coordination is one
// atomic first-witness flag; every branch runs under the full node budget and
// the per-branch outcomes are combined by a fixed rule (see run_parallel), so
// the verdict is a deterministic function of the input even though witness
// choice and nodes_explored may vary with scheduling.
#include <algorithm>
#include <atomic>

#include "checker/checker.hpp"
#include "common/bitset.hpp"
#include "common/thread_pool.hpp"

namespace crooks::checker {

namespace {

using ct::IsolationLevel;
using model::Operation;
using model::Transaction;

/// Below this size a search finishes in microseconds; spawning workers only
/// adds noise (and would make the tiny fixtures' witness shapes and node
/// counts scheduling-dependent).
constexpr std::size_t kMinParallelSize = 4;

class PrefixSearch {
 public:
  PrefixSearch(IsolationLevel level, const model::TransactionSet& txns,
               const CheckOptions& opts)
      : level_(level), txns_(&txns), max_nodes_(opts.max_nodes), n_(txns.size()) {
    // Optional version-order restriction: a transaction writing key k may
    // only be placed when it is the next not-yet-placed installer of k.
    if (opts.version_order != nullptr) {
      for (const auto& [key, installers] : *opts.version_order) {
        auto& seq = vo_[key];
        for (TxnId id : installers) {
          if (txns.contains(id)) seq.push_back(txns.dense_index_of(id));
        }
      }
      vo_next_.reserve(vo_.size());
      for (const auto& [key, seq] : vo_) vo_next_[key] = 0;
    }
    pos_.assign(n_, 0);
    prec_.assign(n_, DynamicBitset(n_));
    remaining_rt_.assign(n_, 0);
    remaining_sess_.assign(n_, 0);
    rt_preds_.resize(n_);
    sess_preds_.resize(n_);
    rt_succs_.resize(n_);
    sess_succs_.resize(n_);

    for (std::size_t a = 0; a < n_; ++a) {
      for (std::size_t b = 0; b < n_; ++b) {
        if (a == b) continue;
        const Transaction& ta = txns.at(a);
        const Transaction& tb = txns.at(b);
        if (time_precedes(ta, tb)) {
          rt_preds_[b].push_back(a);
          rt_succs_[a].push_back(b);
          if (ta.session() != kNoSession && ta.session() == tb.session()) {
            sess_preds_[b].push_back(a);
            sess_succs_[a].push_back(b);
          }
        }
      }
      remaining_rt_[a] = rt_preds_[a].size();
      remaining_sess_[a] = sess_preds_[a].size();
    }

    // Candidate order: commit-timestamp order first (the natural witness for
    // most levels), falling back to declaration order.
    candidates_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) candidates_[i] = i;
    std::stable_sort(candidates_.begin(), candidates_.end(),
                     [&](std::size_t a, std::size_t b) {
                       const Timestamp ca = txns.at(a).commit_ts();
                       const Timestamp cb = txns.at(b).commit_ts();
                       if (ca == kNoTimestamp || cb == kNoTimestamp) return false;
                       return ca < cb;
                     });
  }

  CheckResult run() {
    if (auto pre = timestamps_precheck()) return *std::move(pre);
    if (dfs()) {
      std::vector<TxnId> ids;
      ids.reserve(order_.size());
      for (std::size_t d : order_) ids.push_back(txns_->at(d).id());
      return {Outcome::kSatisfiable, model::Execution(*txns_, std::move(ids)),
              "witness found by exhaustive search", nodes_};
    }
    if (nodes_ >= max_nodes_) {
      return {Outcome::kUnknown, std::nullopt, "search budget exhausted", nodes_};
    }
    return {Outcome::kUnsatisfiable, std::nullopt,
            "exhaustive search: no execution satisfies the commit test", nodes_};
  }

  /// Branch-parallel search over the top-level prefix branches.
  ///
  /// Determinism: each branch (a copy of the root search with candidate i
  /// forced first) runs under the full max_nodes cap, so its outcome —
  /// refuted, witness, or cap hit — is a pure function of the input. The
  /// combination rule below is a pure function of those outcomes:
  ///   * any branch holds a witness            → kSatisfiable
  ///   * no witness, no cap hit, Σnodes < cap  → kUnsatisfiable
  ///   * otherwise                             → kUnknown
  /// First-witness early termination (the shared `cancel` flag) is sound
  /// under this rule: a branch is only ever cancelled by a witness elsewhere,
  /// which already fixes the verdict at kSatisfiable. When no branch contains
  /// a witness nothing is ever cancelled, so the refutation/budget outcomes
  /// are exactly the sequential ones and Σnodes equals the sequential node
  /// count. The verdict therefore agrees with run() whenever run() is
  /// definite; on budget-limited instances the parallel engine may upgrade
  /// run()'s kUnknown to kSatisfiable (never the reverse).
  CheckResult run_parallel(std::size_t threads) {
    if (auto pre = timestamps_precheck()) return *std::move(pre);
    std::vector<BranchOutcome> outcomes(n_);
    std::atomic<bool> cancel{false};
    {
      ThreadPool pool(std::min(threads, n_));
      for (std::size_t i = 0; i < n_; ++i) {
        pool.submit([this, i, &outcomes, &cancel] {
          if (cancel.load(std::memory_order_relaxed)) return;  // stays kCancelled
          PrefixSearch branch(*this);
          outcomes[i] = branch.run_branch(candidates_[i], &cancel);
          if (outcomes[i].kind == BranchOutcome::Kind::kWitness) {
            cancel.store(true, std::memory_order_relaxed);
          }
        });
      }
      pool.wait();
    }

    std::uint64_t total = 0;
    for (const BranchOutcome& o : outcomes) total += o.nodes;
    for (BranchOutcome& o : outcomes) {
      if (o.kind == BranchOutcome::Kind::kWitness) {
        return {Outcome::kSatisfiable, model::Execution(*txns_, std::move(o.order)),
                "witness found by parallel exhaustive search", total};
      }
    }
    bool capped = false;
    for (const BranchOutcome& o : outcomes) {
      capped |= o.kind == BranchOutcome::Kind::kCapped;
    }
    if (capped || total >= max_nodes_) {
      return {Outcome::kUnknown, std::nullopt, "search budget exhausted", total};
    }
    return {Outcome::kUnsatisfiable, std::nullopt,
            "exhaustive search: no execution satisfies the commit test", total};
  }

 private:
  struct OpInterval {
    StateIndex sf = 0;
    StateIndex sl = -1;
    bool empty() const { return sf > sl; }
  };

  /// What one top-level prefix branch concluded about its subtree.
  struct BranchOutcome {
    enum class Kind : std::uint8_t {
      kCancelled,  // skipped/aborted because another branch found a witness
      kRefuted,    // subtree fully explored, no witness
      kWitness,    // `order` is a complete passing execution
      kCapped,     // hit the per-branch node cap
    };
    Kind kind = Kind::kCancelled;
    std::uint64_t nodes = 0;
    std::vector<TxnId> order;
  };

  /// kUnsatisfiable early-out shared by run()/run_parallel(): timed levels
  /// need every transaction timestamped.
  std::optional<CheckResult> timestamps_precheck() const {
    if (!ct::requires_timestamps(level_)) return std::nullopt;
    for (const Transaction& t : *txns_) {
      if (!t.has_timestamps()) {
        return CheckResult{Outcome::kUnsatisfiable, std::nullopt,
                           std::string(ct::name_of(level_)) +
                               " requires the time oracle but " +
                               crooks::to_string(t.id()) + " has no timestamps",
                           0};
      }
    }
    return std::nullopt;
  }

  /// Explore the subtree rooted at placing `root` first. Charges the root
  /// try exactly like the sequential top-level loop (one node, admissibility
  /// gate), so in the no-witness case Σ branch nodes == sequential nodes.
  BranchOutcome run_branch(std::size_t root, const std::atomic<bool>* cancel) {
    cancel_ = cancel;
    bool found = false;
    ++nodes_;
    if (vo_admissible(root) && admissible(root)) {
      place(root);
      found = dfs();
    }
    BranchOutcome out;
    out.nodes = nodes_;
    if (found) {
      out.kind = BranchOutcome::Kind::kWitness;
      out.order.reserve(order_.size());
      for (std::size_t d : order_) out.order.push_back(txns_->at(d).id());
    } else if (cancelled_) {
      out.kind = BranchOutcome::Kind::kCancelled;
    } else if (nodes_ >= max_nodes_) {
      out.kind = BranchOutcome::Kind::kCapped;
    } else {
      out.kind = BranchOutcome::Kind::kRefuted;
    }
    return out;
  }

  bool placed(std::size_t d) const { return pos_[d] != 0; }

  const std::vector<std::pair<StateIndex, std::size_t>>& timeline(Key k) const {
    static const std::vector<std::pair<StateIndex, std::size_t>> kEmpty;
    auto it = timelines_.find(k);
    return it == timelines_.end() ? kEmpty : it->second;
  }

  /// Read-state interval of op `i` of transaction `d` if placed now.
  OpInterval interval_of(std::size_t d, std::size_t i, StateIndex parent) const {
    const Transaction& t = txns_->at(d);
    const Operation& op = t.ops()[i];
    if (op.is_write()) return {0, parent};
    if (op.value.phantom) return {0, -1};

    for (std::size_t j = 0; j < i; ++j) {
      const Operation& prev = t.ops()[j];
      if (prev.is_write() && prev.key == op.key) {
        // Internal read: must observe the transaction's own write.
        return op.value.writer == t.id() ? OpInterval{0, parent} : OpInterval{0, -1};
      }
    }

    const TxnId w = op.value.writer;
    if (w == t.id()) return {0, -1};
    StateIndex version_pos = 0;
    if (w != kInitTxn) {
      if (!txns_->contains(w)) return {0, -1};
      const std::size_t wd = txns_->dense_index_of(w);
      if (!placed(wd) || !txns_->at(wd).writes(op.key)) return {0, -1};
      version_pos = pos_[wd];
    }
    const auto& tl = timeline(op.key);
    auto it = std::upper_bound(
        tl.begin(), tl.end(), version_pos,
        [](StateIndex v, const auto& en) { return v < en.first; });
    const StateIndex next_write = it == tl.end() ? parent + 2 : it->first;
    return {version_pos, std::min(next_write - 1, parent)};
  }

  /// Is the read at index i of transaction d internal (reads own write)?
  bool is_internal(std::size_t d, std::size_t i) const {
    const Transaction& t = txns_->at(d);
    for (std::size_t j = 0; j < i; ++j) {
      if (t.ops()[j].is_write() && t.ops()[j].key == t.ops()[i].key) return true;
    }
    return false;
  }

  /// Evaluate CT_level(T, prefix + T). Fills scratch_ with the op intervals.
  /// Does placing `d` now respect the version-order restriction?
  bool vo_admissible(std::size_t d) const {
    if (vo_.empty()) return true;
    for (Key k : txns_->at(d).write_set()) {
      auto it = vo_.find(k);
      if (it == vo_.end()) continue;
      const std::size_t next = vo_next_.at(k);
      if (next >= it->second.size() || it->second[next] != d) return false;
    }
    return true;
  }

  bool admissible(std::size_t d) {
    const Transaction& t = txns_->at(d);
    const StateIndex parent = static_cast<StateIndex>(order_.size());
    const std::size_t nops = t.ops().size();
    scratch_.resize(nops);

    bool preread = true;
    StateIndex complete_lo = 0, complete_hi = parent;
    for (std::size_t i = 0; i < nops; ++i) {
      scratch_[i] = interval_of(d, i, parent);
      if (scratch_[i].empty()) preread = false;
      complete_lo = std::max(complete_lo, scratch_[i].sf);
      complete_hi = std::min(complete_hi, scratch_[i].sl);
    }

    switch (level_) {
      case IsolationLevel::kReadUncommitted:
        return true;
      case IsolationLevel::kReadCommitted:
        return preread;
      case IsolationLevel::kReadAtomic:
        return preread && !fractured(d);
      case IsolationLevel::kPSI:
        return preread && caus_vis(d);
      case IsolationLevel::kSerializable:
        return complete_lo <= parent && complete_hi >= parent;
      case IsolationLevel::kStrictSerializable:
        return complete_lo <= parent && complete_hi >= parent &&
               remaining_rt_[d] == 0;
      case IsolationLevel::kAdyaSI:
      case IsolationLevel::kAnsiSI:
      case IsolationLevel::kSessionSI:
      case IsolationLevel::kStrongSI:
        return si_family(d, parent, complete_lo, complete_hi);
    }
    return false;
  }

  bool fractured(std::size_t d) const {
    const Transaction& t = txns_->at(d);
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& r1 = t.ops()[i];
      if (!r1.is_read() || is_internal(d, i)) continue;
      if (r1.value.writer == kInitTxn) continue;
      const Transaction& w1 = txns_->by_id(r1.value.writer);
      for (std::size_t j = 0; j < t.ops().size(); ++j) {
        const Operation& r2 = t.ops()[j];
        if (!r2.is_read() || is_internal(d, j)) continue;
        if (w1.writes(r2.key) && scratch_[i].sf > scratch_[j].sf) return true;
      }
    }
    return false;
  }

  bool caus_vis(std::size_t d) {
    const Transaction& t = txns_->at(d);
    // Assemble PREC_e(T) from the already-placed predecessors.
    DynamicBitset& prec = prec_[d];
    prec = DynamicBitset(n_);
    auto absorb = [&](std::size_t pd) {
      prec.set(pd);
      prec.or_with(prec_[pd]);
    };
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || is_internal(d, i)) continue;
      if (op.value.writer == kInitTxn) continue;
      absorb(txns_->dense_index_of(op.value.writer));  // placed: preread holds
    }
    for (Key k : t.write_set()) {
      for (const auto& [pos, wd] : timeline(k)) absorb(wd);
    }
    // ∀T' ▷ T, ∀o: o.k ∈ W_{T'} ⇒ s_{T'} →* sl_o.
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || is_internal(d, i)) continue;
      for (const auto& [pos, wd] : timeline(op.key)) {
        if (pos > scratch_[i].sl && prec.test(wd)) return false;
      }
    }
    return true;
  }

  bool si_family(std::size_t d, StateIndex parent, StateIndex complete_lo,
                 StateIndex complete_hi) const {
    const Transaction& t = txns_->at(d);
    const bool timed = level_ != IsolationLevel::kAdyaSI;

    if (timed) {
      // C-ORD(T_{s_p}, T): commit order along the execution.
      if (!order_.empty()) {
        const Transaction& prev = txns_->at(order_.back());
        if (!(prev.commit_ts() < t.commit_ts())) return false;
      }
    }
    if (level_ == IsolationLevel::kStrictSerializable ||
        level_ == IsolationLevel::kStrongSI) {
      if (remaining_rt_[d] != 0) return false;
    }
    if (level_ == IsolationLevel::kSessionSI && remaining_sess_[d] != 0) return false;

    StateIndex lower = 0;
    if (level_ == IsolationLevel::kStrongSI) {
      for (std::size_t p : rt_preds_[d]) lower = std::max(lower, pos_[p]);
    } else if (level_ == IsolationLevel::kSessionSI) {
      for (std::size_t p : sess_preds_[d]) lower = std::max(lower, pos_[p]);
    }

    // NO-CONF: last prefix write of any key in W_T.
    StateIndex no_conf = 0;
    for (Key k : t.write_set()) {
      const auto& tl = timeline(k);
      if (!tl.empty()) no_conf = std::max(no_conf, tl.back().first);
    }

    const StateIndex lo = std::max({complete_lo, no_conf, lower});
    const StateIndex hi = std::min(complete_hi, parent);
    if (lo > hi) return false;
    if (!timed) return true;

    for (StateIndex s = hi; s >= lo; --s) {
      if (s == 0) return true;
      const Transaction& gen = txns_->at(order_[static_cast<std::size_t>(s) - 1]);
      if (time_precedes(gen, t)) return true;
    }
    return false;
  }

  void place(std::size_t d) {
    order_.push_back(d);
    pos_[d] = static_cast<StateIndex>(order_.size());
    for (Key k : txns_->at(d).write_set()) {
      timelines_[k].emplace_back(pos_[d], d);
      if (auto it = vo_next_.find(k); it != vo_next_.end()) ++it->second;
    }
    for (std::size_t s : rt_succs_[d]) --remaining_rt_[s];
    for (std::size_t s : sess_succs_[d]) --remaining_sess_[s];
  }

  void unplace() {
    const std::size_t d = order_.back();
    order_.pop_back();
    pos_[d] = 0;
    for (Key k : txns_->at(d).write_set()) {
      timelines_[k].pop_back();
      if (auto it = vo_next_.find(k); it != vo_next_.end()) --it->second;
    }
    for (std::size_t s : rt_succs_[d]) ++remaining_rt_[s];
    for (std::size_t s : sess_succs_[d]) ++remaining_sess_[s];
  }

  bool dfs() {
    if (order_.size() == n_) return true;
    if (nodes_ >= max_nodes_) return false;
    if (cancel_ != nullptr && (nodes_ & 1023) == 0 &&
        cancel_->load(std::memory_order_relaxed)) {
      cancelled_ = true;
      return false;
    }
    for (std::size_t d : candidates_) {
      if (placed(d)) continue;
      ++nodes_;
      if (!vo_admissible(d) || !admissible(d)) continue;
      place(d);
      if (dfs()) return true;
      unplace();
      if (cancelled_ || nodes_ >= max_nodes_) return false;
    }
    return false;
  }

  IsolationLevel level_;
  const model::TransactionSet* txns_;
  std::uint64_t max_nodes_;
  std::size_t n_;
  std::uint64_t nodes_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;  // set on branch copies only
  bool cancelled_ = false;

  std::vector<std::size_t> candidates_;
  std::vector<std::size_t> order_;
  std::vector<StateIndex> pos_;  // 0 = unplaced, else 1-based state index
  std::unordered_map<Key, std::vector<std::pair<StateIndex, std::size_t>>> timelines_;
  std::unordered_map<Key, std::vector<std::size_t>> vo_;  // install order (dense)
  std::unordered_map<Key, std::size_t> vo_next_;          // next unplaced installer
  std::vector<DynamicBitset> prec_;
  std::vector<std::vector<std::size_t>> rt_preds_, sess_preds_, rt_succs_, sess_succs_;
  std::vector<std::size_t> remaining_rt_, remaining_sess_;
  std::vector<OpInterval> scratch_;
};

}  // namespace

CheckResult check_exhaustive(ct::IsolationLevel level, const model::TransactionSet& txns,
                             const CheckOptions& opts) {
  if (txns.empty()) {
    return {Outcome::kSatisfiable, model::Execution::identity(txns),
            "empty transaction set", 0};
  }
  PrefixSearch search(level, txns, opts);
  const std::size_t threads = opts.resolved_threads();
  if (threads > 1 && txns.size() >= kMinParallelSize) {
    return search.run_parallel(threads);
  }
  return search.run();
}

ct::ExecutionVerdict verify_witness(ct::IsolationLevel level,
                                    const model::TransactionSet& txns,
                                    const model::Execution& e) {
  return ct::test_execution(level, txns, e);
}

}  // namespace crooks::checker
