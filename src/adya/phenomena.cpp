#include "adya/phenomena.hpp"

#include <algorithm>

namespace crooks::adya {

namespace {

/// Position of a version's writer in the key's install order; -1 = initial.
std::optional<std::ptrdiff_t> install_pos(const History& h, Key k, TxnId writer) {
  if (writer == kInitTxn) return -1;
  const auto& installers = h.installers(k);
  auto it = std::find(installers.begin(), installers.end(), writer);
  if (it == installers.end()) return std::nullopt;
  return it - installers.begin();
}

bool detect_g1a(const History& h) {
  for (const HistTxn& t : h.txns()) {
    if (!t.committed) continue;
    for (const Event& e : t.events) {
      if (e.type != EventType::kRead) continue;
      const TxnId w = e.version.writer;
      if (w == kInitTxn || w == t.id) continue;
      if (!h.contains(w) || !h.by_id(w).committed) return true;
    }
  }
  return false;
}

bool detect_g1b(const History& h) {
  for (const HistTxn& t : h.txns()) {
    if (!t.committed) continue;
    for (const Event& e : t.events) {
      if (e.type != EventType::kRead) continue;
      const TxnId w = e.version.writer;
      if (w == kInitTxn || w == t.id) continue;
      if (!h.contains(w) || !h.by_id(w).committed) continue;  // that's G1a
      if (h.by_id(w).final_write_seq(e.key) != e.version.seq) return true;
    }
  }
  return false;
}

// Fractured reads (Appendix B.1): T_j reads x_m written by T_i; T_i also
// (finally) wrote y; T_j reads a version of y strictly older than T_i's.
bool detect_fractured(const History& h) {
  for (const HistTxn& t : h.txns()) {
    if (!t.committed) continue;
    for (const Event& r1 : t.events) {
      if (r1.type != EventType::kRead) continue;
      const TxnId wi = r1.version.writer;
      if (wi == kInitTxn || wi == t.id) continue;
      if (!h.contains(wi) || !h.by_id(wi).committed) continue;
      const HistTxn& writer = h.by_id(wi);
      if (writer.final_write_seq(r1.key) != r1.version.seq) continue;
      for (const Event& r2 : t.events) {
        if (r2.type != EventType::kRead || r2.version.writer == t.id) continue;
        if (!writer.writes(r2.key)) continue;
        const auto read_pos = install_pos(h, r2.key, r2.version.writer);
        const auto wi_pos = install_pos(h, r2.key, wi);
        if (!read_pos.has_value() || !wi_pos.has_value()) continue;
        if (*read_pos < *wi_pos) return true;
      }
    }
  }
  return false;
}

}  // namespace

Phenomena detect(const History& h) {
  Phenomena p;
  p.g1a = detect_g1a(h);
  p.g1b = detect_g1b(h);
  p.fractured = detect_fractured(h);

  Dsg dsg(h);
  p.g0 = dsg.has_cycle(kWW);
  p.g1c = dsg.has_cycle(kDependency);
  // G2 = some cycle contains an anti-dependency edge ⟺ some rw edge (u,v)
  // is closed by a path v →* u over arbitrary DSG edges. With the path
  // restricted to dependency edges the cycle has *exactly* one rw: G-Single.
  p.g2 = dsg.cycle_with_exactly_one(kRW, kAllDsg);
  p.g_single = dsg.cycle_with_exactly_one(kRW, kDependency);

  Dsg ssg(h);
  if (ssg.add_start_edges(h)) {
    // G-SIa: a ww/wr edge without a corresponding start-dependency edge.
    bool sia = false;
    for (const Edge& e : ssg.edges()) {
      if (e.kind != kWW && e.kind != kWR) continue;
      const HistTxn& a = h.by_id(ssg.id_of(e.from));
      const HistTxn& b = h.by_id(ssg.id_of(e.to));
      if (!(a.commit_ts < b.start_ts)) {
        sia = true;
        break;
      }
    }
    p.g_si_a = sia;
    p.g_si_b = ssg.cycle_with_exactly_one(kRW, kDependency | kSD);
  }

  Dsg rt(h);
  if (rt.add_realtime_edges(h)) {
    p.rt_cycle = rt.has_cycle(kAllDsg | kRT);
  }
  return p;
}

Verdict satisfies(const Phenomena& p, ct::IsolationLevel level) {
  using L = ct::IsolationLevel;
  switch (level) {
    case L::kReadUncommitted:
      return p.g0 ? Verdict::kViolated : Verdict::kSatisfied;
    case L::kReadCommitted:
      return p.g1() ? Verdict::kViolated : Verdict::kSatisfied;
    case L::kReadAtomic:
      return (p.g1() || p.fractured) ? Verdict::kViolated : Verdict::kSatisfied;
    case L::kPSI:
      return (p.g1() || p.g_single) ? Verdict::kViolated : Verdict::kSatisfied;
    case L::kAdyaSI:
      // Adya's SI quantifies start/commit points existentially ("logical
      // timestamps consistent with the transactions' observations", §5.2);
      // phenomena against the *recorded* points decide ANSI SI instead.
      // Deciding timestamp-free SI is exactly what the state-based checker
      // is for — report inapplicable here.
      return Verdict::kInapplicable;
    case L::kAnsiSI:
      if (!p.g_si_a.has_value()) return Verdict::kInapplicable;
      return (p.g1() || *p.g_si_a || *p.g_si_b) ? Verdict::kViolated
                                                : Verdict::kSatisfied;
    case L::kSerializable:
      return (p.g1() || p.g2) ? Verdict::kViolated : Verdict::kSatisfied;
    case L::kStrictSerializable:
      if (!p.rt_cycle.has_value()) return Verdict::kInapplicable;
      return (p.g1() || p.g2 || *p.rt_cycle) ? Verdict::kViolated
                                             : Verdict::kSatisfied;
    case L::kSessionSI:
    case L::kStrongSI:
      return Verdict::kInapplicable;
  }
  return Verdict::kInapplicable;
}

Verdict satisfies(const History& h, ct::IsolationLevel level) {
  return satisfies(detect(h), level);
}

namespace {

std::string render_cycle(const std::vector<TxnId>& cycle) {
  std::string out;
  for (TxnId id : cycle) out += crooks::to_string(id) + " -> ";
  if (!cycle.empty()) out += crooks::to_string(cycle.front());
  return out;
}

}  // namespace

std::string explain_violation(const History& h, ct::IsolationLevel level) {
  const Phenomena p = detect(h);
  if (satisfies(p, level) != Verdict::kViolated) return {};

  using L = ct::IsolationLevel;
  Dsg dsg(h);

  // G1a / G1b apply to every level at or above read committed.
  if (level != L::kReadUncommitted) {
    if (p.g1a) return "G1a (dirty read): a committed transaction observed an aborted write";
    if (p.g1b) return "G1b (intermediate read): a committed transaction observed a non-final write";
    if (p.g1c) {
      return "G1c (circular information flow): " + render_cycle(dsg.find_cycle(kDependency));
    }
  }

  switch (level) {
    case L::kReadUncommitted:
      return "G0 (write cycle): " + render_cycle(dsg.find_cycle(kWW));
    case L::kReadAtomic:
      return "fractured read: a transaction observed part of another's atomic write set";
    case L::kPSI:
      return "G-Single (single anti-dependency cycle): " +
             render_cycle(dsg.find_cycle_with_exactly_one(kRW, kDependency));
    case L::kAnsiSI: {
      if (p.g_si_a.value_or(false)) {
        return "G-SIa (interference): a dependency edge without a start-dependency edge";
      }
      Dsg ssg(h);
      ssg.add_start_edges(h);
      return "G-SIb (missed effects): " +
             render_cycle(ssg.find_cycle_with_exactly_one(kRW, kDependency | kSD));
    }
    case L::kSerializable:
      return "G2 (anti-dependency cycle): " +
             render_cycle(dsg.find_cycle_with_exactly_one(kRW, kAllDsg));
    case L::kStrictSerializable: {
      if (p.g2) {
        return "G2 (anti-dependency cycle): " +
               render_cycle(dsg.find_cycle_with_exactly_one(kRW, kAllDsg));
      }
      Dsg rt(h);
      rt.add_realtime_edges(h);
      return "real-time violation: " + render_cycle(rt.find_cycle(kAllDsg | kRT));
    }
    default:
      return "violated";
  }
}

std::string Phenomena::to_string() const {
  std::string s;
  auto add = [&](const char* name, bool v) {
    if (v) s += s.empty() ? name : std::string(",") + name;
  };
  add("G0", g0);
  add("G1a", g1a);
  add("G1b", g1b);
  add("G1c", g1c);
  add("G2", g2);
  add("G-Single", g_single);
  add("fractured", fractured);
  add("G-SIa", g_si_a.value_or(false));
  add("G-SIb", g_si_b.value_or(false));
  add("RT-cycle", rt_cycle.value_or(false));
  return s.empty() ? "none" : s;
}

}  // namespace crooks::adya
