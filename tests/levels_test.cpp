#include <gtest/gtest.h>

#include "committest/levels.hpp"

namespace crooks::ct {
namespace {

TEST(Levels, Names) {
  EXPECT_EQ(name_of(IsolationLevel::kPSI), "PSI");
  EXPECT_EQ(name_of(IsolationLevel::kStrictSerializable), "StrictSerializable");
  for (IsolationLevel l : kAllLevels) EXPECT_NE(name_of(l), "?");
}

TEST(Levels, Equivalences) {
  EXPECT_EQ(equivalent_names(IsolationLevel::kPSI), "PL-2+ (Lazy Consistency)");
  EXPECT_EQ(equivalent_names(IsolationLevel::kAnsiSI), "GSI (Generalized SI)");
  EXPECT_EQ(equivalent_names(IsolationLevel::kSessionSI), "Strong Session SI, PC-SI");
}

TEST(Levels, TimestampRequirements) {
  EXPECT_TRUE(requires_timestamps(IsolationLevel::kAnsiSI));
  EXPECT_TRUE(requires_timestamps(IsolationLevel::kSessionSI));
  EXPECT_TRUE(requires_timestamps(IsolationLevel::kStrongSI));
  EXPECT_TRUE(requires_timestamps(IsolationLevel::kStrictSerializable));
  EXPECT_FALSE(requires_timestamps(IsolationLevel::kAdyaSI));
  EXPECT_FALSE(requires_timestamps(IsolationLevel::kPSI));
  EXPECT_FALSE(requires_timestamps(IsolationLevel::kSerializable));
}

TEST(Levels, Reflexive) {
  for (IsolationLevel l : kAllLevels) EXPECT_TRUE(at_least_as_strong(l, l));
}

TEST(Levels, Figure4SnapshotHierarchy) {
  using L = IsolationLevel;
  // Strong SI ⊃ Session SI ⊃ ANSI SI ⊃ Adya SI ⊃ PSI (Figure 4).
  EXPECT_TRUE(at_least_as_strong(L::kStrongSI, L::kSessionSI));
  EXPECT_TRUE(at_least_as_strong(L::kSessionSI, L::kAnsiSI));
  EXPECT_TRUE(at_least_as_strong(L::kAnsiSI, L::kAdyaSI));
  EXPECT_TRUE(at_least_as_strong(L::kAdyaSI, L::kPSI));
  EXPECT_TRUE(at_least_as_strong(L::kStrongSI, L::kPSI));  // transitivity
  // Strictness: no upward implications.
  EXPECT_FALSE(at_least_as_strong(L::kSessionSI, L::kStrongSI));
  EXPECT_FALSE(at_least_as_strong(L::kAnsiSI, L::kSessionSI));
  EXPECT_FALSE(at_least_as_strong(L::kAdyaSI, L::kAnsiSI));
  EXPECT_FALSE(at_least_as_strong(L::kPSI, L::kAdyaSI));
}

TEST(Levels, ClassicChain) {
  using L = IsolationLevel;
  EXPECT_TRUE(at_least_as_strong(L::kStrictSerializable, L::kSerializable));
  EXPECT_TRUE(at_least_as_strong(L::kSerializable, L::kAdyaSI));
  EXPECT_TRUE(at_least_as_strong(L::kPSI, L::kReadAtomic));
  EXPECT_TRUE(at_least_as_strong(L::kReadAtomic, L::kReadCommitted));
  EXPECT_TRUE(at_least_as_strong(L::kReadCommitted, L::kReadUncommitted));
  EXPECT_TRUE(at_least_as_strong(L::kStrictSerializable, L::kReadUncommitted));
}

TEST(Levels, SerializabilityAndTimedSiAreIncomparable) {
  using L = IsolationLevel;
  // Write skew separates SER from the SI family; first-committer-wins
  // separates the timed SI family from SER.
  EXPECT_FALSE(at_least_as_strong(L::kSerializable, L::kStrongSI));
  EXPECT_FALSE(at_least_as_strong(L::kSerializable, L::kAnsiSI));
  EXPECT_FALSE(at_least_as_strong(L::kStrongSI, L::kSerializable));
  EXPECT_FALSE(at_least_as_strong(L::kAnsiSI, L::kSerializable));
}

}  // namespace
}  // namespace crooks::ct
