#include "report/report.hpp"

#include <sstream>

#include "adya/phenomena.hpp"

namespace crooks::report {

namespace {

const char* verdict_word(const checker::CheckResult& r) {
  switch (r.outcome) {
    case checker::Outcome::kSatisfiable: return "PASS";
    case checker::Outcome::kUnsatisfiable: return "FAIL";
    case checker::Outcome::kUnknown: return "UNDECIDED";
  }
  return "?";
}

}  // namespace

AuditResult audit(const Observations& obs, const checker::CheckOptions& base) {
  checker::CheckOptions opts = base;
  if (obs.has_version_order() && opts.version_order == nullptr) {
    opts.version_order = &obs.version_order;
  }

  std::ostringstream out;
  out << "isolation audit: " << obs.txns.size() << " transactions";
  if (opts.version_order != nullptr) {
    out << ", install order supplied (verdicts are definitive for the "
           "untimed levels)";
  }
  out << "\n\n";

  AuditResult result;
  std::vector<ct::IsolationLevel> passing;
  std::optional<model::Execution> strongest_witness;
  for (ct::IsolationLevel level : ct::kAllLevels) {
    const checker::CheckResult r = checker::check(level, obs.txns, opts);
    out << "  " << verdict_word(r) << "  ";
    out.width(20);
    out << std::left << ct::name_of(level);
    if (auto eq = ct::equivalent_names(level); !eq.empty()) out << " (≡ " << eq << ")";
    if (!r.satisfiable() && !r.detail.empty()) out << "\n        " << r.detail;
    out << "\n";
    if (r.unsatisfiable() && r.diagnosis.has_value()) {
      std::istringstream lines(render_counterexample(*r.diagnosis));
      for (std::string line; std::getline(lines, line);) {
        out << "      " << line << "\n";
      }
    }
    if (r.satisfiable()) {
      passing.push_back(level);
      if (!result.strongest.has_value() ||
          ct::at_least_as_strong(level, *result.strongest)) {
        result.strongest = level;
        strongest_witness = r.witness;
      }
    }
  }

  // The lattice has incomparable branches (serializability vs the timed SI
  // family): report every maximal passing level.
  out << "\nstrongest level(s) admitted:";
  bool any = false;
  for (ct::IsolationLevel p : passing) {
    bool maximal = true;
    for (ct::IsolationLevel q : passing) {
      if (q != p && ct::at_least_as_strong(q, p)) maximal = false;
    }
    if (maximal) {
      out << (any ? ", " : " ") << ct::name_of(p);
      any = true;
    }
  }
  if (!any) out << " none";
  out << "\n";

  // Name the anomalies when the install order pins them down.
  if (opts.version_order != nullptr) {
    try {
      const adya::History h = adya::from_observations(obs.txns, *opts.version_order);
      const adya::Phenomena p = adya::detect(h);
      out << "phenomena under the install order: " << p.to_string() << "\n";
    } catch (const std::invalid_argument& e) {
      out << "phenomena unavailable: " << e.what() << "\n";
    }
  }

  if (strongest_witness.has_value() && obs.txns.size() <= 12) {
    out << "\nwitness for the strongest level:\n"
        << render_execution(obs.txns, *strongest_witness);
  }

  result.text = out.str();
  return result;
}

std::string render_counterexample(const checker::ReadDiagnosis& d) {
  std::ostringstream out;
  out << "  counterexample";
  if (!d.candidate_execution.empty()) {
    out << " (evidence on " << d.candidate_execution << ")";
  }
  out << ":\n";
  out << "    failing transaction: " << to_string(d.txn) << "\n";
  if (!d.clause.empty()) out << "    violated clause: " << d.clause << "\n";
  if (d.key.has_value()) {
    out << "    implicated read: " << to_string(*d.key);
    if (d.observed_writer.has_value()) {
      out << " (observed writer " << to_string(*d.observed_writer) << ")";
    }
    out << "\n";
  }
  if (!d.candidate_states.empty()) {
    out << "    candidate read states: " << d.candidate_states << "\n";
  }
  return out.str();
}

std::string render_execution(const model::TransactionSet& txns,
                             const model::Execution& e) {
  std::ostringstream out;
  out << "  s0: all keys ⊥\n";
  StateIndex i = 1;
  for (TxnId id : e.order()) {
    const model::Transaction& t = txns.by_id(id);
    out << "  s" << i << ": apply " << to_string(id) << " {";
    bool first = true;
    for (const model::Operation& op : t.ops()) {
      if (!first) out << ", ";
      first = false;
      out << model::to_string(op);
    }
    out << "}";
    const auto state = e.materialize(txns, i);
    out << "  ->  {";
    first = true;
    for (const auto& [k, v] : state) {
      if (!first) out << ", ";
      first = false;
      out << to_string(k) << "=" << to_string(v.writer);
    }
    out << "}\n";
    ++i;
  }
  return out.str();
}

}  // namespace crooks::report
