#include "committest/commit_test.hpp"

#include <algorithm>
#include <map>

#include "model/compiled.hpp"
#include "model/execution.hpp"
#include "model/transaction.hpp"

namespace crooks::ct {

using model::CompiledHistory;
using model::KeyIdx;
using model::OpClass;
using model::Operation;
using model::ReadStateAnalysis;
using model::Transaction;
using model::TxnAnalysis;
using model::TxnIdx;
using model::VersionEntry;

CommitTester::CommitTester(const ReadStateAnalysis& analysis) : a_(&analysis) {}

// ---------------------------------------------------------------- TimeIndex

StateIndex CommitTester::TimeIndex::max_state_before(Timestamp t) const {
  // Largest state among transactions with commit_ts < t; 0 when none (only
  // the initial state "commits" before everything).
  auto it = std::lower_bound(commit_ts.begin(), commit_ts.end(), t);
  if (it == commit_ts.begin()) return 0;
  return prefix_max[static_cast<std::size_t>(it - commit_ts.begin()) - 1];
}

void CommitTester::ensure_time_index() const {
  if (global_time_index_.has_value()) return;

  struct Entry {
    Timestamp ts;
    StateIndex state;
    SessionId session;
  };
  std::vector<Entry> entries;
  const CompiledHistory& ch = a_->compiled();
  for (TxnIdx d = 0; d < ch.size(); ++d) {
    if (ch.commit_ts(d) == kNoTimestamp) continue;
    entries.push_back({ch.commit_ts(d), a_->txn(d).state, ch.session(d)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.ts < y.ts; });

  auto build = [](const std::vector<Entry>& es) {
    TimeIndex idx;
    idx.commit_ts.reserve(es.size());
    idx.prefix_max.reserve(es.size());
    StateIndex running = 0;
    for (const Entry& e : es) {
      running = std::max(running, e.state);
      idx.commit_ts.push_back(e.ts);
      idx.prefix_max.push_back(running);
    }
    return idx;
  };

  global_time_index_ = build(entries);

  std::map<SessionId, std::vector<Entry>> by_session;
  for (const Entry& e : entries) {
    if (e.session != kNoSession) by_session[e.session].push_back(e);
  }
  session_time_index_.clear();
  for (auto& [sess, es] : by_session) {
    session_time_index_.emplace_back(sess, build(es));
  }
}

StateIndex CommitTester::realtime_pred_max_state(std::size_t dense) const {
  const Timestamp start = a_->compiled().start_ts(static_cast<TxnIdx>(dense));
  if (start == kNoTimestamp) return 0;
  ensure_time_index();
  return global_time_index_->max_state_before(start);
}

StateIndex CommitTester::session_pred_max_state(std::size_t dense) const {
  const CompiledHistory& ch = a_->compiled();
  const Timestamp start = ch.start_ts(static_cast<TxnIdx>(dense));
  const SessionId session = ch.session(static_cast<TxnIdx>(dense));
  if (start == kNoTimestamp || session == kNoSession) return 0;
  ensure_time_index();
  for (const auto& [sess, idx] : session_time_index_) {
    if (sess == session) return idx.max_state_before(start);
  }
  return 0;
}

bool CommitTester::commit_ordered_with_parent(std::size_t dense) const {
  const TxnAnalysis& ta = a_->txn(dense);
  if (ta.parent == 0) return true;  // parent is the initial state
  const CompiledHistory& ch = a_->compiled();
  const TxnIdx parent_dense =
      a_->execution().dense_at(static_cast<std::size_t>(ta.parent) - 1);
  return ch.commit_ts(parent_dense) != kNoTimestamp &&
         ch.commit_ts(static_cast<TxnIdx>(dense)) != kNoTimestamp &&
         ch.commit_ts(parent_dense) < ch.commit_ts(static_cast<TxnIdx>(dense));
}

// ------------------------------------------------------------ simple levels

CommitTestResult CommitTester::test_ru(std::size_t) const {
  // CT_RU(T, e) ≡ True (Table 1). See §4 for why the state-based definition
  // is this lax: committed-transaction models cannot distinguish aborted
  // writes from future ones.
  return CommitTestResult::pass();
}

CommitTestResult CommitTester::test_rc(std::size_t dense) const {
  const TxnAnalysis& ta = a_->txn(dense);
  if (ta.preread) return CommitTestResult::pass();
  const Transaction& t = a_->txns().at(dense);
  for (std::size_t i = 0; i < ta.ops.size(); ++i) {
    if (ta.ops[i].rs.empty()) {
      return CommitTestResult::fail("PREREAD fails: operation " +
                                    model::to_string(t.ops()[i]) +
                                    " has no candidate read state in this execution");
    }
  }
  return CommitTestResult::fail("PREREAD fails");
}

CommitTestResult CommitTester::test_ra(std::size_t dense) const {
  if (CommitTestResult rc = test_rc(dense); !rc) return rc;

  // CT_RA (Def. B.1): for external reads r1, r2, if the transaction observed
  // by r1 also wrote r2's key, then sf_{r1} →* sf_{r2} (no fractured reads).
  // PREREAD holds here, so every read with an external member writer is
  // kReadExternal with a valid dense writer index.
  const CompiledHistory& ch = a_->compiled();
  const model::OpsView cops = ch.ops(static_cast<TxnIdx>(dense));
  const TxnAnalysis& ta = a_->txn(dense);
  for (std::size_t i = 0; i < cops.size(); ++i) {
    if (cops.cls(i) != OpClass::kReadExternal) continue;
    const TxnIdx w1 = cops.writer(i);
    for (std::size_t j = 0; j < cops.size(); ++j) {
      if (cops.is_write(j) || ta.ops[j].internal) continue;
      if (!ch.writes_key(w1, cops.key(j))) continue;
      if (ta.ops[i].rs.first > ta.ops[j].rs.first) {
        const Transaction& t = a_->txns().at(dense);
        return CommitTestResult::fail(
            "fractured read: " + model::to_string(t.ops()[i]) + " observes " +
            crooks::to_string(ch.id_of(w1)) + " which also wrote " +
            crooks::to_string(t.ops()[j].key) + ", but " + model::to_string(t.ops()[j]) +
            " reads from the earlier state s" + std::to_string(ta.ops[j].rs.first));
      }
    }
  }
  return CommitTestResult::pass();
}

CommitTestResult CommitTester::test_psi(std::size_t dense) const {
  if (CommitTestResult rc = test_rc(dense); !rc) return rc;

  // CT_PSI (Def. 6): ∀T' ▷ T, ∀o ∈ Σ_T: o.k ∈ W_{T'} ⇒ s_{T'} →* sl_o.
  // Only external reads can violate this: for writes and internal reads,
  // sl_o = s_p and every predecessor precedes s_T (Lemma E.2).
  const CompiledHistory& ch = a_->compiled();
  const model::OpsView cops = ch.ops(static_cast<TxnIdx>(dense));
  const TxnAnalysis& ta = a_->txn(dense);
  const auto& prec = a_->precedence().prec_set(dense);

  for (std::size_t i = 0; i < cops.size(); ++i) {
    if (cops.is_write(i) || ta.ops[i].internal) continue;
    const StateIndex sl = ta.ops[i].rs.last;
    CommitTestResult res = CommitTestResult::pass();
    a_->for_writers_in_idx(cops.key(i), sl, a_->execution().last_state(),
                           [&](const VersionEntry& v) {
                             if (v.writer_dense == model::kNoTxnIdx || !res.ok) return;
                             if (v.writer_dense != dense && prec.test(v.writer_dense)) {
                               const Transaction& t = a_->txns().at(dense);
                               res = CommitTestResult::fail(
                                   "CAUS-VIS fails: " + crooks::to_string(v.writer) +
                                   " ▷-precedes this transaction and wrote " +
                                   crooks::to_string(t.ops()[i].key) + " at state s" +
                                   std::to_string(v.pos) + ", after sl(" +
                                   model::to_string(t.ops()[i]) + ") = s" +
                                   std::to_string(sl));
                             }
                           });
    if (!res) return res;
  }
  return CommitTestResult::pass();
}

CommitTestResult CommitTester::test_ser(std::size_t dense) const {
  const TxnAnalysis& ta = a_->txn(dense);
  if (ta.complete.contains(ta.parent)) return CommitTestResult::pass();
  const Transaction& t = a_->txns().at(dense);
  for (std::size_t i = 0; i < ta.ops.size(); ++i) {
    if (!ta.ops[i].rs.contains(ta.parent)) {
      return CommitTestResult::fail(
          "parent state s" + std::to_string(ta.parent) + " is not complete: " +
          model::to_string(t.ops()[i]) + " cannot read from it (RS = " +
          crooks::to_string(ta.ops[i].rs) + ")");
    }
  }
  return CommitTestResult::fail("parent state is not complete");
}

CommitTestResult CommitTester::test_sser(std::size_t dense) const {
  if (CommitTestResult ser = test_ser(dense); !ser) return ser;
  // ∀T' <_s T ⇒ s_{T'} →* s_T: every real-time predecessor's state precedes.
  const StateIndex bound = realtime_pred_max_state(dense);
  const TxnAnalysis& ta = a_->txn(dense);
  if (bound <= ta.parent) return CommitTestResult::pass();
  return CommitTestResult::fail(
      "real-time order violated: a transaction that committed before this one "
      "started produced state s" + std::to_string(bound) +
      ", after this transaction's state s" + std::to_string(ta.state));
}

// --------------------------------------------------------------- SI family

std::optional<StateIndex> CommitTester::si_witness(std::size_t dense, StateIndex lower,
                                                   bool need_time_order) const {
  const TxnAnalysis& ta = a_->txn(dense);
  const StateInterval cand =
      ta.complete.intersect({std::max(lower, ta.no_conf_min), ta.parent});
  if (cand.empty()) return std::nullopt;
  if (!need_time_order) return cand.last;

  // T_s <_s T: the witness state's generating transaction must commit (real
  // time) before T starts. Scan from the most recent candidate backwards;
  // s = 0 (the initial state) always qualifies.
  const CompiledHistory& ch = a_->compiled();
  for (StateIndex s = cand.last; s >= cand.first; --s) {
    if (s == 0) return s;
    const TxnIdx gen = a_->execution().dense_at(static_cast<std::size_t>(s) - 1);
    if (ch.time_precedes(gen, static_cast<TxnIdx>(dense))) return s;
  }
  return std::nullopt;
}

CommitTestResult CommitTester::test_si_family(IsolationLevel level,
                                              std::size_t dense) const {
  const CompiledHistory& ch = a_->compiled();
  const TxnAnalysis& ta = a_->txn(dense);

  const bool timed = level != IsolationLevel::kAdyaSI;
  if (timed && !ch.has_timestamps(static_cast<TxnIdx>(dense))) {
    return CommitTestResult::fail(std::string(name_of(level)) +
                                  " requires the time oracle, but " +
                                  crooks::to_string(ch.id_of(static_cast<TxnIdx>(dense))) +
                                  " has no timestamps");
  }
  if (timed && !commit_ordered_with_parent(dense)) {
    return CommitTestResult::fail(
        "C-ORD fails: the execution does not apply transactions in real-time "
        "commit order at state s" + std::to_string(ta.state));
  }

  StateIndex lower = 0;
  if (level == IsolationLevel::kSessionSI) lower = session_pred_max_state(dense);
  if (level == IsolationLevel::kStrongSI) lower = realtime_pred_max_state(dense);

  if (si_witness(dense, lower, timed).has_value()) return CommitTestResult::pass();

  // Explain: which clause emptied the candidate set?
  if (ta.complete.empty()) {
    return CommitTestResult::fail(
        "no complete state exists: the operations' read-state intervals have "
        "empty intersection");
  }
  if (ta.complete.intersect({ta.no_conf_min, ta.parent}).empty()) {
    return CommitTestResult::fail(
        "NO-CONF fails: every complete state (latest s" +
        std::to_string(ta.complete.last) + ") is followed by a write conflicting "
        "with this transaction's write set (last conflict at s" +
        std::to_string(ta.no_conf_min) + ")");
  }
  if (ta.complete.intersect({std::max(lower, ta.no_conf_min), ta.parent}).empty()) {
    return CommitTestResult::fail(
        std::string(name_of(level)) + " recency fails: required snapshot ≥ s" +
        std::to_string(lower) + " but the latest conflict-free complete state is s" +
        std::to_string(std::min(ta.complete.last, ta.parent)));
  }
  return CommitTestResult::fail(
      "T_s <_s T fails: no candidate snapshot was generated by a transaction "
      "that committed before this transaction started");
}

// ----------------------------------------------------------------- dispatch

CommitTestResult CommitTester::test(IsolationLevel level, std::size_t dense) const {
  switch (level) {
    case IsolationLevel::kReadUncommitted: return test_ru(dense);
    case IsolationLevel::kReadCommitted: return test_rc(dense);
    case IsolationLevel::kReadAtomic: return test_ra(dense);
    case IsolationLevel::kPSI: return test_psi(dense);
    case IsolationLevel::kAdyaSI:
    case IsolationLevel::kAnsiSI:
    case IsolationLevel::kSessionSI:
    case IsolationLevel::kStrongSI: return test_si_family(level, dense);
    case IsolationLevel::kSerializable: return test_ser(dense);
    case IsolationLevel::kStrictSerializable: return test_sser(dense);
  }
  return CommitTestResult::fail("unknown isolation level");
}

ExecutionVerdict CommitTester::test_all(IsolationLevel level) const {
  for (std::size_t d = 0; d < a_->size(); ++d) {
    if (CommitTestResult r = test(level, d); !r) {
      const TxnId id = a_->compiled().id_of(static_cast<TxnIdx>(d));
      return {false, id, crooks::to_string(id) + ": " + r.violation};
    }
  }
  return {true, std::nullopt, {}};
}

ExecutionVerdict CommitTester::test_all(const LevelAssignment& levels) const {
  // The commit test is modular in T, so the mixed verdict is just each
  // transaction tested at its own level. The uniform delegation keeps the
  // explanation strings (which embed the level only implicitly, via the
  // violated clause) identical to the global-level API.
  if (levels.is_uniform()) return test_all(levels.fallback());
  for (std::size_t d = 0; d < a_->size(); ++d) {
    if (CommitTestResult r = test(levels.of(d), d); !r) {
      const TxnId id = a_->compiled().id_of(static_cast<TxnIdx>(d));
      return {false, id,
              crooks::to_string(id) + " [" + std::string(name_of(levels.of(d))) +
                  "]: " + r.violation};
    }
  }
  return {true, std::nullopt, {}};
}

ExecutionVerdict test_execution(IsolationLevel level, const model::TransactionSet& txns,
                                const model::Execution& e) {
  const model::ReadStateAnalysis analysis(txns, e);
  return CommitTester(analysis).test_all(level);
}

ExecutionVerdict test_execution(IsolationLevel level, const model::CompiledHistory& ch,
                                const model::Execution& e) {
  const model::ReadStateAnalysis analysis(ch, e);
  return CommitTester(analysis).test_all(level);
}

ExecutionVerdict test_execution(const LevelAssignment& levels,
                                const model::TransactionSet& txns,
                                const model::Execution& e) {
  const model::ReadStateAnalysis analysis(txns, e);
  return CommitTester(analysis).test_all(levels);
}

ExecutionVerdict test_execution(const LevelAssignment& levels,
                                const model::CompiledHistory& ch,
                                const model::Execution& e) {
  const model::ReadStateAnalysis analysis(ch, e);
  return CommitTester(analysis).test_all(levels);
}

}  // namespace crooks::ct
