// Isolation levels with state-based commit tests (Tables 1 and 2) and the
// hierarchy of §5.2 / Figure 4.
//
// Levels proven equivalent by the paper share one canonical enumerator:
//   kAnsiSI     ≡ GSI                     (Theorem 8)
//   kSessionSI  ≡ Strong Session SI ≡ PC-SI (Theorem 9)
//   kPSI        ≡ PL-2+                    (Theorem 10)
//   kAdyaSI     is Table 1's CT_SI (timestamp-free snapshot isolation)
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace crooks::ct {

enum class IsolationLevel : std::uint8_t {
  kReadUncommitted,     // CT_RU: True                                (Table 1)
  kReadCommitted,       // CT_RC: PREREAD                             (Table 1)
  kReadAtomic,          // CT_RA: PREREAD ∧ no fractured reads        (Table 1, Def. B.1)
  kPSI,                 // CT_PSI: PREREAD ∧ CAUS-VIS    ≡ PL-2+      (Table 1/2)
  kAdyaSI,              // CT_SI: ∃s COMPLETE ∧ NO-CONF               (Table 1/2)
  kAnsiSI,              // + C-ORD ∧ T_s <_s T           ≡ GSI        (Table 2)
  kSessionSI,           // + session recency             ≡ PC-SI      (Table 2)
  kStrongSI,            // + real-time recency                        (Table 2)
  kSerializable,        // CT_SER: COMPLETE(s_p)                      (Table 1)
  kStrictSerializable,  // CT_SSER: + real-time order                 (Table 1)
};

inline constexpr std::array kAllLevels = {
    IsolationLevel::kReadUncommitted, IsolationLevel::kReadCommitted,
    IsolationLevel::kReadAtomic,      IsolationLevel::kPSI,
    IsolationLevel::kAdyaSI,          IsolationLevel::kAnsiSI,
    IsolationLevel::kSessionSI,       IsolationLevel::kStrongSI,
    IsolationLevel::kSerializable,    IsolationLevel::kStrictSerializable,
};

constexpr std::string_view name_of(IsolationLevel l) {
  switch (l) {
    case IsolationLevel::kReadUncommitted: return "ReadUncommitted";
    case IsolationLevel::kReadCommitted: return "ReadCommitted";
    case IsolationLevel::kReadAtomic: return "ReadAtomic";
    case IsolationLevel::kPSI: return "PSI";
    case IsolationLevel::kAdyaSI: return "AdyaSI";
    case IsolationLevel::kAnsiSI: return "AnsiSI";
    case IsolationLevel::kSessionSI: return "SessionSI";
    case IsolationLevel::kStrongSI: return "StrongSI";
    case IsolationLevel::kSerializable: return "Serializable";
    case IsolationLevel::kStrictSerializable: return "StrictSerializable";
  }
  return "?";
}

/// Inverse of name_of, plus the short aliases used in annotations and on the
/// command line (RU, RC, RA, SI, SER, SSER — PSI is already its own name).
/// nullopt on anything else; the caller owns the error message (use
/// valid_level_names() in it so users see what would have parsed).
constexpr std::optional<IsolationLevel> level_from_name(std::string_view s) {
  for (IsolationLevel l : kAllLevels) {
    if (s == name_of(l)) return l;
  }
  using L = IsolationLevel;
  if (s == "RU") return L::kReadUncommitted;
  if (s == "RC") return L::kReadCommitted;
  if (s == "RA") return L::kReadAtomic;
  if (s == "SI") return L::kAdyaSI;
  if (s == "SER") return L::kSerializable;
  if (s == "SSER") return L::kStrictSerializable;
  return std::nullopt;
}

/// The canonical names, comma-separated — for "unknown level" error messages.
inline constexpr std::string_view kValidLevelNames =
    "ReadUncommitted (RU), ReadCommitted (RC), ReadAtomic (RA), PSI, "
    "AdyaSI (SI), AnsiSI, SessionSI, StrongSI, Serializable (SER), "
    "StrictSerializable (SSER)";

/// Names the paper proves equivalent to this level (§5.2).
constexpr std::string_view equivalent_names(IsolationLevel l) {
  switch (l) {
    case IsolationLevel::kPSI: return "PL-2+ (Lazy Consistency)";
    case IsolationLevel::kAnsiSI: return "GSI (Generalized SI)";
    case IsolationLevel::kSessionSI: return "Strong Session SI, PC-SI";
    default: return "";
  }
}

/// Levels whose commit test refers to the time oracle (real-time start/commit
/// timestamps or session order derived from them).
constexpr bool requires_timestamps(IsolationLevel l) {
  switch (l) {
    case IsolationLevel::kAnsiSI:
    case IsolationLevel::kSessionSI:
    case IsolationLevel::kStrongSI:
    case IsolationLevel::kStrictSerializable:
      return true;
    default:
      return false;
  }
}

/// The implication lattice (Figure 4 for the SI family, plus the classic
/// relations). at_least_as_strong(a, b) == true means every transaction set
/// satisfying level `a` also satisfies level `b` — and, in fact, the very
/// same execution witnesses both (this is how the property tests check it).
constexpr bool at_least_as_strong(IsolationLevel a, IsolationLevel b) {
  if (a == b) return true;
  using L = IsolationLevel;
  // Direct edges of the Hasse diagram.
  constexpr auto edge = [](L x, L y) {
    switch (x) {
      case L::kStrictSerializable: return y == L::kSerializable;
      case L::kSerializable: return y == L::kAdyaSI;
      case L::kStrongSI: return y == L::kSessionSI;
      case L::kSessionSI: return y == L::kAnsiSI;
      case L::kAnsiSI: return y == L::kAdyaSI;
      case L::kAdyaSI: return y == L::kPSI;
      case L::kPSI: return y == L::kReadAtomic;
      case L::kReadAtomic: return y == L::kReadCommitted;
      case L::kReadCommitted: return y == L::kReadUncommitted;
      default: return false;
    }
  };
  // Reachability by bounded DFS (the lattice is tiny and acyclic).
  for (L mid : kAllLevels) {
    if (edge(a, mid) && (mid == b || at_least_as_strong(mid, b))) return true;
  }
  return false;
}

/// Greatest lower bound of two levels. The Hasse diagram is a tree rooted at
/// ReadUncommitted (every level has exactly one weaker parent), so the levels
/// weaker-or-equal than any given level form a chain and the meet always
/// exists — even for the one incomparable pair (Serializable vs StrongSI,
/// meeting at AdyaSI). Used by the mixed-level engines: by per-transaction
/// monotonicity (at_least_as_strong's same-execution guarantee), a history
/// refuted at the meet of the levels present is refuted for the mix.
constexpr IsolationLevel meet_of(IsolationLevel a, IsolationLevel b) {
  if (at_least_as_strong(a, b)) return b;
  if (at_least_as_strong(b, a)) return a;
  IsolationLevel best = IsolationLevel::kReadUncommitted;
  for (IsolationLevel l : kAllLevels) {
    if (at_least_as_strong(a, l) && at_least_as_strong(b, l) &&
        at_least_as_strong(l, best)) {
      best = l;
    }
  }
  return best;
}

}  // namespace crooks::ct
