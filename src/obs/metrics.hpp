// Low-overhead metrics registry: counters, gauges, fixed-bucket histograms.
//
// Every engine in the repo used to keep its own ad-hoc accounting
// (CheckResult::nodes_explored, OnlineChecker::Stats, per-bench JSON
// counters). This registry is the one substrate they all feed so a
// production deployment can scrape a single endpoint-shaped artifact
// (Prometheus exposition text or JSON) instead of tailing logs.
//
// Design constraints, in order:
//
//  1. The hot search loop must pay at most one relaxed atomic increment per
//     event. Counters are sharded across cache-line-padded per-thread slots
//     and aggregated only on scrape, so concurrent writers never contend on
//     a line. Engines with per-node hot loops accumulate in plain locals and
//     flush once per search — the registry cost is then one add per search.
//  2. Instrumentation must be removable at runtime: when disabled (the
//     CROOKS_OBS_OFF=1 environment variable, or obs::set_enabled(false)),
//     every mutation is a load+branch no-op. CI gates the overhead of the
//     enabled path at ≤5% on the online-checker bench.
//  3. Metric objects are registered once and never deallocated while the
//     process lives (reset() zeroes values but keeps addresses stable), so
//     call sites may cache `static Counter&` references safely.
//
// Naming follows Prometheus conventions: `crooks_<subsystem>_<what>_<unit>`,
// labels for low-cardinality partitions (engine, outcome, prune reason).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace crooks::obs {

/// Global instrumentation switch. Initialized once from CROOKS_OBS_OFF
/// (set to "1" to start disabled); togglable at runtime for A/B overhead
/// measurement. Reads are a single relaxed atomic load.
bool enabled();
void set_enabled(bool on);

using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

constexpr std::size_t kShards = 16;

/// One cache line per shard so concurrent increments never false-share.
struct alignas(64) Shard {
  std::atomic<std::uint64_t> v{0};
};

/// The calling thread's stable shard slot (round-robin assignment).
std::size_t shard_slot();

}  // namespace detail

/// Monotone counter. inc() is one relaxed fetch_add on a per-thread shard.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const detail::Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (detail::Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::Shard shards_[detail::kShards];
};

/// Instantaneous value (queue depth, in-flight tasks). Unlike counters a
/// gauge supports set() and signed add(), so it is a single atomic — gauge
/// updates happen at task-queue frequency, not search-node frequency.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (!enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram (cumulative on render, like Prometheus). Bucket
/// upper bounds are set at registration and never change; +Inf is implicit.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) { observe_n(v, 1); }
  /// Bulk form for engines that accumulate a local distribution and flush
  /// once per search: `n` observations of value `v` in one atomic add each.
  void observe_n(double v, std::uint64_t n);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>> buckets_;  // per shard
  detail::Shard count_[detail::kShards];
  std::atomic<double> sum_{0};
};

/// Default latency buckets: 1µs … 10s, roughly ×4 per step.
std::span<const double> latency_buckets_seconds();
/// Default small-integer buckets (depths, queue lengths): 1 … 4096, ×2.
std::span<const double> depth_buckets();
/// Default large-count buckets (fold sizes, transactions per window epoch):
/// 1 … 16M, ×4 per step.
std::span<const double> size_buckets();

class Registry {
 public:
  /// Find-or-register. The returned reference is valid for the process
  /// lifetime; registering the same (name, labels) twice returns the same
  /// object (help/buckets of the first registration win).
  Counter& counter(std::string_view name, std::string_view help = {},
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = {},
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help = {},
                       std::span<const double> upper_bounds = {},
                       Labels labels = {});

  /// Prometheus text exposition format (# HELP / # TYPE / samples).
  std::string prometheus_text() const;
  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}} with `name{label="v"}` keys. Single line, machine-parseable —
  /// this is what the CI gates and the --follow snapshot line consume.
  std::string json() const;

  /// Zero every registered metric, keeping registrations (and therefore
  /// cached references) intact. For tests and in-process A/B benches.
  void reset();

  /// The process-wide registry every instrumentation point uses.
  static Registry& global();

 private:
  struct Family {
    std::string name;  // metric family name, no labels
    std::string help;
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  // Key: name + rendered label string — one entry per labeled series.
  std::map<std::string, Family> series_;
};

/// RAII latency timer: observes elapsed seconds into `h` on destruction
/// (no-op when instrumentation is disabled at construction time).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  /// Seconds since construction (0 when disabled).
  double elapsed() const;

 private:
  Histogram* h_;
  std::uint64_t start_ns_ = 0;  // 0 = disabled
};

/// `name{k1="v1",k2="v2"}`, or just `name` for empty labels — the series key
/// used by both exporters.
std::string series_key(std::string_view name, const Labels& labels);

}  // namespace crooks::obs
