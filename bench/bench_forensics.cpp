// Forensics overhead on the online hot path.
//
// The tentpole claim: attaching the forensics Collector to a streaming
// OnlineChecker costs ≤ 5% throughput. The hook is a std::function checked
// only inside violate() — the clean-append path never touches it — and
// witness extraction runs once per (level × first violation), so on any real
// stream the attached and detached monitors do essentially identical work.
//
//  * BM_ForensicsOverhead — the gate row: the same stream audited by a
//    detached and an attached checker, interleaved A-B-B-A so drift cancels.
//    Exports forensics_overhead = attached_secs / detached_secs (CI asserts
//    ≤ 1.05) plus the witness/pattern counts proving the attached arm really
//    extracted forensics (violations fire early via stale reads).
//  * BM_WitnessExtraction — microbenchmark of extract_witness + table add on
//    a dense violation stream (every level dies, retro inversions included):
//    the per-witness cost bound, exported as witnesses_per_sec.
//
// Export with --benchmark_format=json > BENCH_checker_forensics.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <span>
#include <vector>

#include "checker/online.hpp"
#include "forensics/collector.hpp"
#include "report/forensics_render.hpp"

using namespace crooks;

namespace {

constexpr std::size_t kKeys = 64;
constexpr std::uint32_t kSessions = 8;
constexpr std::size_t kBlock = 500;

/// Mostly-clean commit stream with a burst of stale reads near the front so
/// every tracked level records its first violation (and the collector its
/// witnesses) early — after that both arms audit the same clean tail, which
/// is where the hot-path overhead claim lives.
struct StreamGen {
  std::vector<TxnId> latest = std::vector<TxnId>(kKeys, TxnId{0});
  std::vector<TxnId> stale = std::vector<TxnId>(kKeys, TxnId{0});
  std::uint64_t next_id = 1;
  Timestamp ts = 0;

  std::vector<model::Transaction> block(std::size_t count) {
    std::vector<model::Transaction> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t id = next_id++;
      const std::size_t wk = id % kKeys;
      const std::size_t rk = (id * 7 + 3) % kKeys;
      // Ten stale reads between txn 100 and 1000: enough violations for
      // every level family to die and the collector to aggregate patterns.
      const bool go_stale = id >= 100 && id < 1000 && id % 90 == 0 &&
                            stale[rk] != latest[rk];
      out.push_back(model::TxnBuilder(id)
                        .read(Key{rk}, go_stale ? stale[rk] : latest[rk])
                        .write(Key{wk})
                        .session(SessionId{static_cast<std::uint32_t>(id % kSessions)})
                        .at(ts, ts + 1)
                        .build());
      stale[wk] = latest[wk];
      latest[wk] = TxnId{id};
      ts += 2;
    }
    return out;
  }
};

double audit_stream(std::size_t total, bool attach_collector,
                    std::uint64_t* witnesses, std::size_t* patterns) {
  StreamGen gen;
  checker::OnlineChecker chk;
  forensics::Collector::Options copt;
  copt.metrics = false;  // isolate the hook+extraction cost itself
  forensics::Collector coll(copt);
  if (attach_collector) coll.attach(chk);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t fed = 0; fed < total; fed += kBlock) {
    const std::vector<model::Transaction> blk = gen.block(kBlock);
    benchmark::DoNotOptimize(
        chk.append_all(std::span<const model::Transaction>(blk)));
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (attach_collector) {
    if (witnesses != nullptr) *witnesses = coll.table().witnesses();
    if (patterns != nullptr) *patterns = coll.table().size();
  }
  return secs;
}

void BM_ForensicsOverhead(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRounds = 9;
  for (auto _ : state) {
    std::uint64_t witnesses = 0;
    std::size_t patterns = 0;
    // Untimed warmup so allocator/cache cold-start doesn't land on the
    // first timed arm and skew the ratio.
    audit_stream(total, false, nullptr, nullptr);
    // Alternate the arms in A-B / B-A order (so neither arm always runs in
    // the slot the other just warmed or perturbed) and take each arm's
    // MINIMUM — the ratio of best observed times is robust against the
    // interference spikes of a shared CI host, which only ever make a run
    // slower, never faster.
    double detached = 0, attached = 0;
    for (std::size_t r = 0; r < kRounds; ++r) {
      double det = 0, att = 0;
      if (r % 2 == 0) {
        det = audit_stream(total, false, nullptr, nullptr);
        att = audit_stream(total, true, &witnesses, &patterns);
      } else {
        att = audit_stream(total, true, &witnesses, &patterns);
        det = audit_stream(total, false, nullptr, nullptr);
      }
      detached = r == 0 ? det : std::min(detached, det);
      attached = r == 0 ? att : std::min(attached, att);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(2 * kRounds * total));
    state.counters["forensics_overhead"] = attached / detached;
    state.counters["detached_appends_per_sec"] =
        static_cast<double>(total) / detached;
    state.counters["attached_appends_per_sec"] =
        static_cast<double>(total) / attached;
    state.counters["witnesses"] = static_cast<double>(witnesses);
    state.counters["patterns"] = static_cast<double>(patterns);
  }
}
BENCHMARK(BM_ForensicsOverhead)->Arg(40000)->Iterations(1)->UseRealTime();

/// Dense-violation arm: every append at a dead-on-arrival mix keeps firing
/// the hook? No — first violations only. Instead, measure extraction cost
/// directly: replay the violation burst repeatedly through FRESH checkers so
/// each pass re-extracts its witnesses.
void BM_WitnessExtraction(benchmark::State& state) {
  StreamGen gen;
  std::vector<model::Transaction> all;
  for (std::size_t fed = 0; fed < 2000; fed += kBlock) {
    const auto blk = gen.block(kBlock);
    all.insert(all.end(), blk.begin(), blk.end());
  }
  std::uint64_t witnesses = 0;
  for (auto _ : state) {
    checker::OnlineChecker chk;
    forensics::Collector::Options copt;
    copt.metrics = false;
    forensics::Collector coll(copt);
    coll.attach(chk);
    chk.append_all(std::span<const model::Transaction>(all));
    witnesses += coll.table().witnesses();
    benchmark::DoNotOptimize(coll.table().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(witnesses));
  state.counters["witnesses_per_iter"] =
      state.iterations() > 0
          ? static_cast<double>(witnesses) / static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_WitnessExtraction);

}  // namespace

BENCHMARK_MAIN();
