#include "checker/online.hpp"

#include <algorithm>

namespace crooks::checker {

using ct::IsolationLevel;
using model::Operation;
using model::Transaction;

OnlineChecker::OnlineChecker(std::vector<IsolationLevel> levels) {
  for (IsolationLevel l : levels) statuses_.emplace(l, LevelStatus{});
}

const OnlineChecker::LevelStatus& OnlineChecker::status(IsolationLevel level) const {
  return statuses_.at(level);
}

bool OnlineChecker::all_ok() const {
  for (const auto& [level, s] : statuses_) {
    if (!s.ok) return false;
  }
  return true;
}

std::vector<IsolationLevel> OnlineChecker::surviving_levels() const {
  std::vector<IsolationLevel> out;
  for (const auto& [level, s] : statuses_) {
    if (s.ok) out.push_back(level);
  }
  return out;
}

void OnlineChecker::violate(IsolationLevel level, TxnId txn, std::string why) {
  auto it = statuses_.find(level);
  if (it == statuses_.end() || !it->second.ok) return;  // sticky first violation
  it->second.ok = false;
  it->second.first_violation = txn;
  it->second.explanation = crooks::to_string(txn) + ": " + std::move(why);
}

OnlineChecker::OpView OnlineChecker::analyze_op(const Transaction& t,
                                                std::size_t op_index,
                                                StateIndex parent) const {
  const Operation& op = t.ops()[op_index];
  if (op.is_write()) return {{0, parent}, false};
  if (op.value.phantom) return {{0, -1}, false};

  for (std::size_t j = 0; j < op_index; ++j) {
    const Operation& prev = t.ops()[j];
    if (prev.is_write() && prev.key == op.key) {
      return op.value.writer == t.id() ? OpView{{0, parent}, true}
                                       : OpView{{0, -1}, true};
    }
  }

  const TxnId w = op.value.writer;
  if (w == t.id()) return {{0, -1}, false};
  StateIndex version_pos = 0;
  if (w != kInitTxn) {
    auto it = index_.find(w);
    if (it == index_.end() || !txns_[it->second].txn.writes(op.key)) {
      return {{0, -1}, false};
    }
    version_pos = txns_[it->second].state;
  }
  const auto* tl = timeline_of(op.key);
  StateIndex next_write = parent + 2;
  if (tl != nullptr) {
    auto it = std::upper_bound(
        tl->begin(), tl->end(), version_pos,
        [](StateIndex v, const auto& en) { return v < en.first; });
    if (it != tl->end()) next_write = it->first;
  }
  return {{version_pos, std::min(next_write - 1, parent)}, false};
}

bool OnlineChecker::append(const Transaction& txn) {
  if (index_.contains(txn.id())) return false;

  Placed p;
  p.txn = txn;
  p.state = static_cast<StateIndex>(txns_.size()) + 1;
  const StateIndex parent = p.state - 1;
  p.ops.reserve(txn.ops().size());
  for (std::size_t i = 0; i < txn.ops().size(); ++i) {
    p.ops.push_back(analyze_op(txn, i, parent));
  }

  commit_placed(std::move(p));
  return true;
}

std::size_t OnlineChecker::append_all(const model::CompiledHistory& ch) {
  if (!txns_.empty() || !index_.empty()) {
    // Mixed stream: writer resolution must see previously appended
    // transactions, which the compiled form knows nothing about.
    std::size_t appended = 0;
    for (model::TxnIdx d = 0; d < ch.size(); ++d) {
      if (append(ch.txns().at(d))) ++appended;
    }
    return appended;
  }

  // Fresh checker, whole history: dense index d is applied at state d + 1,
  // so every branch of analyze_op is a precomputed flag or integer compare.
  for (model::TxnIdx d = 0; d < ch.size(); ++d) {
    Placed p;
    p.txn = ch.txns().at(d);
    p.state = static_cast<StateIndex>(d) + 1;
    const StateIndex parent = p.state - 1;
    const std::span<const model::CompiledOp> cops = ch.ops(d);
    p.ops.reserve(cops.size());
    for (const model::CompiledOp& c : cops) {
      if (c.is_write()) {
        p.ops.push_back({{0, parent}, false});
        continue;
      }
      if ((c.flags & model::kOpPhantom) != 0) {
        p.ops.push_back({{0, -1}, false});
        continue;
      }
      if ((c.flags & model::kOpPositionalInternal) != 0) {
        p.ops.push_back((c.flags & model::kOpSelfWriter) != 0
                            ? OpView{{0, parent}, true}
                            : OpView{{0, -1}, true});
        continue;
      }
      if ((c.flags & model::kOpSelfWriter) != 0) {
        p.ops.push_back({{0, -1}, false});
        continue;
      }
      StateIndex version_pos = 0;
      if ((c.flags & model::kOpInitWriter) == 0) {
        if ((c.flags & (model::kOpUnknownWriter | model::kOpWriterMissesKey)) != 0 ||
            c.writer >= d) {  // writer not applied yet: reads from the future
          p.ops.push_back({{0, -1}, false});
          continue;
        }
        version_pos = static_cast<StateIndex>(c.writer) + 1;
      }
      const auto* tl = timeline_of(ch.keys().key_of(c.key));
      StateIndex next_write = parent + 2;
      if (tl != nullptr) {
        auto it = std::upper_bound(
            tl->begin(), tl->end(), version_pos,
            [](StateIndex v, const auto& en) { return v < en.first; });
        if (it != tl->end()) next_write = it->first;
      }
      p.ops.push_back({{version_pos, std::min(next_write - 1, parent)}, false});
    }

    commit_placed(std::move(p));
  }
  return ch.size();
}

void OnlineChecker::commit_placed(Placed p) {
  evaluate_new(p);
  check_retroactive_inversions(p);

  // Install.
  index_.emplace(p.txn.id(), txns_.size());
  for (Key k : p.txn.write_set()) {
    const model::KeyIdx ki = keys_.intern(k);
    if (ki == timelines_.size()) timelines_.emplace_back();
    timelines_[ki].emplace_back(p.state, txns_.size());
  }
  txns_.push_back(std::move(p));
}

void OnlineChecker::evaluate_new(Placed& p) {
  const Transaction& t = p.txn;
  const StateIndex parent = p.state - 1;

  bool preread = true;
  StateIndex complete_lo = 0, complete_hi = parent;
  for (const OpView& o : p.ops) {
    if (o.rs.empty()) preread = false;
    complete_lo = std::max(complete_lo, o.rs.first);
    complete_hi = std::min(complete_hi, o.rs.last);
  }

  if (!preread) {
    for (IsolationLevel l : {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
                             IsolationLevel::kPSI}) {
      if (tracking(l)) violate(l, t.id(), "PREREAD fails in the apply order");
    }
  }

  // Fractured reads (RA).
  if (tracking(IsolationLevel::kReadAtomic) && preread) {
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& r1 = t.ops()[i];
      if (!r1.is_read() || p.ops[i].internal || r1.value.writer == kInitTxn) continue;
      auto wit = index_.find(r1.value.writer);
      if (wit == index_.end()) continue;
      const Transaction& w1 = txns_[wit->second].txn;
      for (std::size_t j = 0; j < t.ops().size(); ++j) {
        const Operation& r2 = t.ops()[j];
        if (!r2.is_read() || p.ops[j].internal) continue;
        if (w1.writes(r2.key) && p.ops[i].rs.first > p.ops[j].rs.first) {
          violate(IsolationLevel::kReadAtomic, t.id(),
                  "fractured read across " + crooks::to_string(w1.id()) + "'s writes");
        }
      }
    }
  }

  // CAUS-VIS (PSI). Build the transitive PREC set from placed predecessors.
  if (tracking(IsolationLevel::kPSI) && preread) {
    Placed& self = p;
    self.prec.grow(txns_.size() + 1);
    auto absorb = [&](std::size_t slot) {
      self.prec.set(slot);
      self.prec.or_with(txns_[slot].prec);
    };
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || p.ops[i].internal || op.value.writer == kInitTxn) continue;
      if (auto it = index_.find(op.value.writer); it != index_.end()) absorb(it->second);
    }
    for (Key k : t.write_set()) {
      if (const auto* tl = timeline_of(k)) {
        for (const auto& [pos, slot] : *tl) absorb(slot);
      }
    }
    for (std::size_t i = 0; i < t.ops().size(); ++i) {
      const Operation& op = t.ops()[i];
      if (!op.is_read() || p.ops[i].internal) continue;
      if (const auto* tl = timeline_of(op.key)) {
        for (const auto& [pos, slot] : *tl) {
          if (pos > p.ops[i].rs.last && self.prec.test(slot)) {
            violate(IsolationLevel::kPSI, t.id(),
                    "CAUS-VIS fails: misses " + crooks::to_string(txns_[slot].txn.id()) +
                        "'s write to " + crooks::to_string(op.key));
          }
        }
      }
    }
  }

  // Serializability: the parent state must be complete.
  const bool parent_complete = complete_lo <= parent && complete_hi >= parent;
  if (tracking(IsolationLevel::kSerializable) && !parent_complete) {
    violate(IsolationLevel::kSerializable, t.id(),
            "parent state is not complete in the apply order");
  }
  if (tracking(IsolationLevel::kStrictSerializable) && !parent_complete) {
    violate(IsolationLevel::kStrictSerializable, t.id(),
            "parent state is not complete in the apply order");
  }

  // The snapshot family.
  const IsolationLevel si_family[] = {IsolationLevel::kAdyaSI, IsolationLevel::kAnsiSI,
                                      IsolationLevel::kSessionSI,
                                      IsolationLevel::kStrongSI};
  StateIndex no_conf = 0;
  for (Key k : t.write_set()) {
    if (const auto* tl = timeline_of(k)) {
      no_conf = std::max(no_conf, tl->back().first);
    }
  }
  for (IsolationLevel level : si_family) {
    if (!tracking(level) || !statuses_.at(level).ok) continue;
    const bool timed = level != IsolationLevel::kAdyaSI;
    if (timed && !t.has_timestamps()) {
      violate(level, t.id(), "requires the time oracle");
      continue;
    }
    if (timed && !txns_.empty()) {
      const Transaction& prev = txns_.back().txn;
      if (!(prev.commit_ts() < t.commit_ts())) {
        violate(level, t.id(), "C-ORD fails: applied out of commit order");
        continue;
      }
    }
    StateIndex lower = 0;
    if (level == IsolationLevel::kStrongSI || level == IsolationLevel::kSessionSI) {
      for (const Placed& q : txns_) {
        if (!time_precedes(q.txn, t)) continue;
        if (level == IsolationLevel::kSessionSI &&
            (t.session() == kNoSession || q.txn.session() != t.session())) {
          continue;
        }
        lower = std::max(lower, q.state);
      }
    }
    const StateIndex lo = std::max({complete_lo, no_conf, lower});
    const StateIndex hi = std::min(complete_hi, parent);
    bool ok = false;
    for (StateIndex s = hi; s >= lo; --s) {
      if (s == 0) {
        ok = true;
        break;
      }
      if (!timed || time_precedes(txns_[static_cast<std::size_t>(s) - 1].txn, t)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      violate(level, t.id(), "no admissible snapshot state in the apply order");
    }
  }
}

void OnlineChecker::check_retroactive_inversions(const Placed& p) {
  // A late-arriving transaction that committed before an already-applied
  // transaction *started* retroactively violates the real-time clauses of
  // strict serializability and Strong SI (and Session SI within a session).
  const Transaction& late = p.txn;
  if (late.commit_ts() == kNoTimestamp) return;
  for (const Placed& q : txns_) {
    if (!time_precedes(late, q.txn)) continue;
    if (tracking(IsolationLevel::kStrictSerializable)) {
      violate(IsolationLevel::kStrictSerializable, q.txn.id(),
              "real-time predecessor " + crooks::to_string(late.id()) +
                  " was applied after it");
    }
    if (tracking(IsolationLevel::kStrongSI)) {
      violate(IsolationLevel::kStrongSI, q.txn.id(),
              "snapshot misses " + crooks::to_string(late.id()) +
                  ", which committed before it started");
    }
    if (tracking(IsolationLevel::kSessionSI) && q.txn.session() != kNoSession &&
        q.txn.session() == late.session()) {
      violate(IsolationLevel::kSessionSI, q.txn.id(),
              "session predecessor " + crooks::to_string(late.id()) +
                  " was applied after it");
    }
  }
}

}  // namespace crooks::checker
