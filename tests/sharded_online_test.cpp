// Differential suite for the pipelined session-sharded ingest.
//
// The strict contract under test: ShardedOnlineChecker (and the pipelined
// report::stream_audit path built on it) produces BYTE-IDENTICAL results to
// the serial streaming monitor at every shard count — verdicts per level,
// first-violation witnesses and explanation strings, Stats totals, duplicate
// accounting, error messages (first in line order), and the aggregated
// forensics JSON — across random epoch cuts, all ten uniform levels, mixed
// per-transaction assignments, and bounded-memory windowing. The pipeline is
// allowed to change wall-clock only.
//
// Also pinned here: the backpressure discipline (a slow merge stage blocks
// the producer through the bounded rings — the drop tripwire stays zero and
// the stall counters move), the hoisted `default-level` directive, and the
// stage-1 error reconciliation (an earlier pending block's parse error beats
// a later stream-level error).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/online.hpp"
#include "checker/sharded_online.hpp"
#include "forensics/collector.hpp"
#include "obs/metrics.hpp"
#include "report/forensics_render.hpp"
#include "report/serialize.hpp"
#include "report/stream_audit.hpp"
#include "workload/observations.hpp"

namespace crooks::checker {
namespace {

using model::Transaction;
using model::TransactionSet;

std::vector<Transaction> to_vector(const TransactionSet& txns) {
  std::vector<Transaction> all;
  all.reserve(txns.size());
  for (const Transaction& t : txns) all.push_back(t);
  return all;
}

/// One transaction rendered as its own observation block (the granularity
/// stage 1 cuts the raw stream at).
RawBlock block_of(const Transaction& t, std::uint64_t first_line) {
  report::Observations obs;
  obs.txns = TransactionSet{std::vector<Transaction>{t}};
  RawBlock b;
  b.text = report::to_text(obs);
  b.first_line = first_line;
  b.route = t.session().value;
  return b;
}

DecodedBlock parse_decoder(const RawBlock& block) {
  DecodedBlock out;
  out.error_line = block.first_line;
  try {
    const report::Observations obs = report::parse_observations(block.text);
    out.txns = to_vector(obs.txns);
  } catch (const std::exception& e) {
    out.error = "block starting at line " + std::to_string(block.first_line) +
                ": " + e.what();
  }
  return out;
}

/// Cut `txns` into `epochs` contiguous runs at seeded random boundaries.
std::vector<std::vector<Transaction>> random_cuts(
    const std::vector<Transaction>& txns, std::size_t epochs,
    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> bounds = {0, txns.size()};
  while (bounds.size() < epochs + 1) {
    bounds.push_back(rng() % (txns.size() + 1));
  }
  std::sort(bounds.begin(), bounds.end());
  std::vector<std::vector<Transaction>> cuts;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    cuts.emplace_back(txns.begin() + bounds[i], txns.begin() + bounds[i + 1]);
  }
  return cuts;
}

struct Fingerprint {
  std::string statuses;  // per-level ok/witness/explanation, or assigned
  std::string stats;
  std::uint64_t epochs = 0;
  std::size_t transactions = 0;
  std::size_t duplicates = 0;
  std::string error;
  std::string forensics;
};

std::string status_line(ct::IsolationLevel level,
                        const OnlineChecker::LevelStatus& st) {
  std::string out(ct::name_of(level));
  out += st.ok ? " ok" : " violated";
  if (st.first_violation.has_value()) {
    out += " first=" + std::to_string(st.first_violation->value);
  }
  out += " | " + st.explanation + "\n";
  return out;
}

std::string stats_line(const OnlineChecker::Stats& s) {
  std::ostringstream os;
  os << s.blocks << ' ' << s.compiled_appends << ' '
     << s.hashed_fallback_appends << ' ' << s.duplicates_ignored << ' '
     << s.ops_evaluated << ' ' << s.direct_appends << ' ' << s.retired_txns
     << ' ' << s.retired_ops << ' ' << s.window_folds << ' '
     << s.past_window_reads << ' ' << s.past_window_checks;
  return os.str();
}

std::string checker_fingerprint(const OnlineChecker& chk,
                                const std::vector<ct::IsolationLevel>& levels,
                                bool assigned) {
  std::string out;
  if (assigned) {
    out += status_line(ct::IsolationLevel::kSerializable, chk.assigned_status());
  } else {
    for (ct::IsolationLevel level : levels) {
      out += status_line(level, chk.status(level));
    }
  }
  return out;
}

struct PipelineConfig {
  std::size_t shards = 0;  // 0 = serial OnlineChecker reference
  std::vector<ct::IsolationLevel> levels = {ct::kAllLevels.begin(),
                                            ct::kAllLevels.end()};
  bool track_assigned = false;
  OnlineChecker::WindowOptions window{};
  std::size_t max_inflight_epochs = 4;
};

/// Run `cuts` through either the serial reference monitor or the pipeline
/// and fingerprint everything the contract covers.
Fingerprint run_cuts(const std::vector<std::vector<Transaction>>& cuts,
                     const PipelineConfig& cfg) {
  Fingerprint fp;
  forensics::Collector collector;
  if (cfg.shards == 0) {
    OnlineChecker chk =
        cfg.track_assigned
            ? OnlineChecker(OnlineChecker::kTrackAssigned,
                            ct::IsolationLevel::kSerializable)
            : OnlineChecker(cfg.levels);
    chk.set_window(cfg.window);
    collector.attach(chk);
    for (const std::vector<Transaction>& cut : cuts) {
      if (cut.empty()) continue;
      ++fp.epochs;
      fp.transactions += chk.append_all(std::span<const Transaction>(cut));
    }
    fp.duplicates = chk.stats().duplicates_ignored;
    fp.statuses = checker_fingerprint(chk, cfg.levels, cfg.track_assigned);
    fp.stats = stats_line(chk.stats());
  } else {
    ShardedOnlineChecker::Options opts;
    opts.shards = cfg.shards;
    opts.max_inflight_epochs = cfg.max_inflight_epochs;
    opts.levels = cfg.levels;
    opts.track_assigned = cfg.track_assigned;
    opts.window = cfg.window;
    opts.decoder = parse_decoder;
    opts.on_checker = [&](OnlineChecker& chk) { collector.attach(chk); };
    ShardedOnlineChecker pipe(std::move(opts));
    std::uint64_t line = 1;
    for (const std::vector<Transaction>& cut : cuts) {
      std::vector<RawBlock> blocks;
      blocks.reserve(cut.size());
      for (const Transaction& t : cut) {
        blocks.push_back(block_of(t, line));
        line += 100;  // synthetic but strictly increasing
      }
      pipe.submit(std::move(blocks));
    }
    const ShardedOnlineChecker::Result& r = pipe.finish();
    fp.epochs = r.epochs;
    fp.transactions = r.transactions;
    fp.duplicates = r.duplicates;
    fp.error = r.error;
    fp.statuses =
        checker_fingerprint(pipe.checker(), cfg.levels, cfg.track_assigned);
    fp.stats = stats_line(pipe.checker().stats());
  }
  fp.forensics = report::forensics_json(collector.table());
  return fp;
}

void expect_identical(const Fingerprint& want, const Fingerprint& got,
                      const std::string& what) {
  EXPECT_EQ(want.statuses, got.statuses) << what;
  EXPECT_EQ(want.stats, got.stats) << what;
  EXPECT_EQ(want.epochs, got.epochs) << what;
  EXPECT_EQ(want.transactions, got.transactions) << what;
  EXPECT_EQ(want.duplicates, got.duplicates) << what;
  EXPECT_EQ(want.error, got.error) << what;
  EXPECT_EQ(want.forensics, got.forensics) << what;
}

const std::size_t kShardCounts[] = {1, 2, 8};

TEST(ShardedOnline, MatchesSerialAcrossLevelsAndCuts) {
  // Adversarial fuzzed observations (dangling reads, phantoms, dropped
  // timestamps) so plenty of levels actually die mid-stream.
  for (std::uint64_t seed : {3u, 17u, 58u}) {
    const auto fuzz = wl::fuzz_observations(
        seed, {.transactions = 32, .keys = 4, .p_dangling = 0.1,
               .p_phantom = 0.1, .p_untimestamped = 0.2, .sessions = 4});
    const std::vector<Transaction> all = to_vector(fuzz.txns);
    for (std::size_t epochs : {std::size_t{1}, std::size_t{5}}) {
      const auto cuts = random_cuts(all, epochs, seed * 7 + epochs);
      const Fingerprint serial = run_cuts(cuts, {});
      for (std::size_t shards : kShardCounts) {
        PipelineConfig cfg;
        cfg.shards = shards;
        const Fingerprint piped = run_cuts(cuts, cfg);
        expect_identical(serial, piped,
                         "seed " + std::to_string(seed) + " epochs " +
                             std::to_string(epochs) + " shards " +
                             std::to_string(shards));
      }
    }
  }
}

TEST(ShardedOnline, MatchesSerialPerUniformLevel) {
  const auto fuzz = wl::fuzz_observations(
      23, {.transactions = 24, .keys = 3, .p_dangling = 0.15, .p_phantom = 0.1});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  const auto cuts = random_cuts(all, 4, 99);
  for (ct::IsolationLevel level : ct::kAllLevels) {
    PipelineConfig cfg;
    cfg.levels = {level};
    const Fingerprint serial = run_cuts(cuts, cfg);
    cfg.shards = 2;
    const Fingerprint piped = run_cuts(cuts, cfg);
    expect_identical(serial, piped, std::string(ct::name_of(level)));
  }
}

TEST(ShardedOnline, MatchesSerialInAssignedMode) {
  const auto fuzz = wl::fuzz_observations(
      41, {.transactions = 28, .keys = 4, .p_dangling = 0.1,
           .sessions = 3, .p_level_annotation = 0.6});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  const auto cuts = random_cuts(all, 3, 5);
  PipelineConfig cfg;
  cfg.track_assigned = true;
  const Fingerprint serial = run_cuts(cuts, cfg);
  for (std::size_t shards : kShardCounts) {
    cfg.shards = shards;
    const Fingerprint piped = run_cuts(cuts, cfg);
    expect_identical(serial, piped, "assigned shards " + std::to_string(shards));
  }
}

TEST(ShardedOnline, MatchesSerialUnderWindowing) {
  const auto fuzz = wl::fuzz_observations(
      11, {.transactions = 48, .keys = 4, .p_dangling = 0.08, .sessions = 4});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  const auto cuts = random_cuts(all, 6, 77);
  PipelineConfig cfg;
  cfg.window = {.max_resident_txns = 12};
  const Fingerprint serial = run_cuts(cuts, cfg);
  for (std::size_t shards : kShardCounts) {
    cfg.shards = shards;
    const Fingerprint piped = run_cuts(cuts, cfg);
    expect_identical(serial, piped, "window shards " + std::to_string(shards));
  }
}

TEST(ShardedOnline, DuplicatesAcrossEpochsAndWithinEpochs) {
  const auto fuzz = wl::fuzz_observations(9, {.transactions = 10, .keys = 3});
  std::vector<Transaction> all = to_vector(fuzz.txns);
  // Same transaction twice within one epoch (lands on the same shard by
  // session routing) plus whole-epoch replays.
  std::vector<std::vector<Transaction>> cuts = {all, all};
  cuts.push_back({all[0], all[0], all[3]});
  const Fingerprint serial = run_cuts(cuts, {});
  for (std::size_t shards : kShardCounts) {
    PipelineConfig cfg;
    cfg.shards = shards;
    const Fingerprint piped = run_cuts(cuts, cfg);
    expect_identical(serial, piped, "dup shards " + std::to_string(shards));
    EXPECT_GT(piped.duplicates, 0u);
  }
}

TEST(ShardedOnline, ParseErrorReportsFirstInLineOrder) {
  // Three blocks: clean (line 1), malformed read (line 10), malformed level
  // (line 20). Whatever shard decodes what first, the reported error must be
  // the line-10 one, and nothing from the erroring epoch may be appended.
  const auto fuzz = wl::fuzz_observations(2, {.transactions = 3, .keys = 2});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  for (std::size_t shards : kShardCounts) {
    ShardedOnlineChecker::Options opts;
    opts.shards = shards;
    opts.decoder = parse_decoder;
    ShardedOnlineChecker pipe(std::move(opts));
    std::vector<RawBlock> blocks;
    blocks.push_back(block_of(all[0], 1));
    blocks.push_back({"txn 90\n read\nend\n", 10, 1, std::nullopt});
    blocks.push_back({"txn 91 level=bogus\n write 0\nend\n", 20, 2, std::nullopt});
    pipe.submit(std::move(blocks));
    const ShardedOnlineChecker::Result& r = pipe.finish();
    EXPECT_EQ(r.epochs, 0u) << shards;
    EXPECT_EQ(r.transactions, 0u) << shards;
    EXPECT_EQ(r.error.rfind("block starting at line 10:", 0), 0u)
        << "shards " << shards << ": " << r.error;
    EXPECT_TRUE(pipe.stopped());
    // A stopped pipeline discards later submissions whole.
    EXPECT_FALSE(pipe.submit({block_of(all[1], 30)}));
  }
}

TEST(ShardedOnline, StreamErrorValidatesPendingBlocksFirst) {
  // submit_error carries pending blocks; a pending block's own parse error
  // on an EARLIER line must win over the stream-level error.
  ShardedOnlineChecker::Options opts;
  opts.shards = 2;
  opts.decoder = parse_decoder;
  {
    ShardedOnlineChecker pipe(std::move(opts));
    std::vector<RawBlock> pending;
    pending.push_back({"txn 7\n read\nend\n", 4, 0, std::nullopt});
    pipe.submit_error(std::move(pending), 9, "line 9: 'vo' is not allowed");
    const ShardedOnlineChecker::Result& r = pipe.finish();
    EXPECT_EQ(r.error.rfind("block starting at line 4:", 0), 0u) << r.error;
  }
  // With clean pending blocks the stream error itself is reported — and the
  // pending blocks are validated only, never appended.
  ShardedOnlineChecker::Options opts2;
  opts2.shards = 2;
  opts2.decoder = parse_decoder;
  ShardedOnlineChecker pipe(std::move(opts2));
  const auto fuzz = wl::fuzz_observations(2, {.transactions = 2, .keys = 2});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  pipe.submit_error({block_of(all[0], 4)}, 9, "line 9: 'vo' is not allowed");
  const ShardedOnlineChecker::Result& r = pipe.finish();
  EXPECT_EQ(r.error, "line 9: 'vo' is not allowed");
  EXPECT_EQ(r.transactions, 0u);
  EXPECT_EQ(pipe.checker().size(), 0u);
}

TEST(ShardedOnline, BackpressureBlocksWithoutDropping) {
  // Tiny rings, a merge stage slowed by its epoch callback, and far more
  // epochs than the rings hold: submit() must block (stall counters move)
  // and every single epoch must still be audited — the drop tripwire stays 0.
  const auto fuzz = wl::fuzz_observations(
      77, {.transactions = 60, .keys = 5, .sessions = 4});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  obs::Registry::global().reset();
  std::atomic<std::uint64_t> seen{0};
  ShardedOnlineChecker::Options opts;
  opts.shards = 2;
  opts.max_inflight_epochs = 1;  // per-shard ring capacity 2
  opts.decoder = parse_decoder;
  ShardedOnlineChecker pipe(std::move(opts),
                            [&](const ShardedOnlineChecker::EpochReport&) {
                              seen.fetch_add(1);
                              std::this_thread::sleep_for(
                                  std::chrono::milliseconds(2));
                              return true;
                            });
  std::uint64_t line = 1;
  std::uint64_t submitted = 0;
  for (const Transaction& t : all) {  // one-transaction epochs, 60 of them
    pipe.submit({block_of(t, line)});
    line += 100;
    ++submitted;
  }
  const ShardedOnlineChecker::Result& r = pipe.finish();
  EXPECT_EQ(r.epochs, submitted);
  EXPECT_EQ(seen.load(), submitted);
  EXPECT_EQ(r.transactions, all.size());
  EXPECT_TRUE(r.error.empty()) << r.error;
  const std::string scrape = obs::Registry::global().json();
  EXPECT_NE(scrape.find("\"crooks_ingest_ring_dropped_total\":0"),
            std::string::npos)
      << scrape;
}

TEST(ShardedOnline, EpochCallbackFalseStopsPipeline) {
  const auto fuzz = wl::fuzz_observations(5, {.transactions = 20, .keys = 3});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  ShardedOnlineChecker::Options opts;
  opts.shards = 2;
  opts.decoder = parse_decoder;
  ShardedOnlineChecker pipe(std::move(opts),
                            [](const ShardedOnlineChecker::EpochReport& er) {
                              return er.epoch < 2;  // stop after epoch 2
                            });
  std::uint64_t line = 1;
  for (const Transaction& t : all) {
    if (!pipe.submit({block_of(t, line)})) break;
    line += 100;
  }
  const ShardedOnlineChecker::Result& r = pipe.finish();
  EXPECT_EQ(r.epochs, 2u);
  EXPECT_EQ(r.transactions, 2u);
  EXPECT_TRUE(r.error.empty()) << r.error;
}

// ---- stream_audit pipelined path -----------------------------------------

report::StreamAuditResult audit_text(const std::string& text,
                                     std::size_t ingest_threads,
                                     std::string* forensics = nullptr,
                                     std::uint64_t max_blocks = 0) {
  std::istringstream in(text);
  forensics::Collector collector;
  report::StreamAuditOptions opts;
  opts.poll_ms = 1;
  opts.idle_exit_ms = 1;
  opts.ingest_threads = ingest_threads;
  opts.max_blocks = max_blocks;
  opts.on_checker = [&](OnlineChecker& chk) { collector.attach(chk); };
  const report::StreamAuditResult r = report::stream_audit(in, opts);
  if (forensics != nullptr) *forensics = report::forensics_json(collector.table());
  return r;
}

void expect_audits_identical(const report::StreamAuditResult& want,
                             const report::StreamAuditResult& got,
                             const std::string& what) {
  EXPECT_EQ(want.blocks, got.blocks) << what;
  EXPECT_EQ(want.transactions, got.transactions) << what;
  EXPECT_EQ(want.duplicates, got.duplicates) << what;
  EXPECT_EQ(want.error, got.error) << what;
  EXPECT_EQ(want.surviving, got.surviving) << what;
  ASSERT_EQ(want.statuses.size(), got.statuses.size()) << what;
  for (const auto& [level, st] : want.statuses) {
    const auto it = got.statuses.find(level);
    ASSERT_NE(it, got.statuses.end()) << what;
    EXPECT_EQ(st.ok, it->second.ok) << what << ' ' << ct::name_of(level);
    EXPECT_EQ(st.first_violation, it->second.first_violation)
        << what << ' ' << ct::name_of(level);
    EXPECT_EQ(st.explanation, it->second.explanation)
        << what << ' ' << ct::name_of(level);
  }
  EXPECT_EQ(stats_line(want.checker_stats), stats_line(got.checker_stats)) << what;
}

TEST(ShardedStreamAudit, PipelinedMatchesSerialOnFuzzedStreams) {
  for (std::uint64_t seed : {8u, 21u}) {
    const auto fuzz = wl::fuzz_observations(
        seed, {.transactions = 30, .keys = 4, .p_dangling = 0.1,
               .p_phantom = 0.1, .sessions = 4});
    report::Observations obs;
    obs.txns = fuzz.txns;
    const std::string text = report::to_text(obs);
    std::string serial_forensics;
    const report::StreamAuditResult serial =
        audit_text(text, 0, &serial_forensics);
    for (std::size_t threads : kShardCounts) {
      std::string piped_forensics;
      const report::StreamAuditResult piped =
          audit_text(text, threads, &piped_forensics);
      expect_audits_identical(serial, piped,
                              "seed " + std::to_string(seed) + " threads " +
                                  std::to_string(threads));
      EXPECT_EQ(serial_forensics, piped_forensics) << threads;
    }
  }
}

TEST(ShardedStreamAudit, ParseAndStreamErrorsMatchSerial) {
  const std::string parse_error =
      "txn 1 start=0 commit=1\n write 0\nend\n"
      "txn 2\n read\nend\n";  // malformed read in block at line 4
  const std::string stream_error =
      "txn 1 start=0 commit=1\n write 0\nend\n"
      "vo 0 1\n";  // vo rejected in streaming mode (line 4)
  const std::string error_before_vo =
      "txn 2\n read\nend\n"  // parse error in the block at line 1...
      "vo 0 1\n";            // ...beats the stream error at line 4
  for (const std::string& text : {parse_error, stream_error, error_before_vo}) {
    const report::StreamAuditResult serial = audit_text(text, 0);
    ASSERT_FALSE(serial.error.empty());
    for (std::size_t threads : kShardCounts) {
      const report::StreamAuditResult piped = audit_text(text, threads);
      expect_audits_identical(serial, piped,
                              "threads " + std::to_string(threads));
    }
  }
}

TEST(ShardedStreamAudit, DefaultLevelDirectiveAppliesToLaterBlocks) {
  // The directive is hoisted to stage 1 and stamped onto later unannotated
  // blocks; annotations are inert for the uniform monitor, so serial and
  // pipelined must agree — and both must parse the directive mid-stream.
  const std::string text =
      "txn 1 start=0 commit=1\n write 0\nend\n"
      "default-level RC\n"
      "txn 2 start=2 commit=3\n read 0 1\nend\n";
  const report::StreamAuditResult serial = audit_text(text, 0);
  EXPECT_TRUE(serial.error.empty()) << serial.error;
  EXPECT_EQ(serial.transactions, 2u);
  for (std::size_t threads : kShardCounts) {
    const report::StreamAuditResult piped = audit_text(text, threads);
    expect_audits_identical(serial, piped, std::to_string(threads));
  }
  // A malformed directive is a stream error on its exact line.
  const std::string bad = "default-level bogus\n";
  const report::StreamAuditResult serial_bad = audit_text(bad, 0);
  EXPECT_EQ(serial_bad.error.rfind("line 1: unknown isolation level 'bogus'", 0),
            0u)
      << serial_bad.error;
  const report::StreamAuditResult piped_bad = audit_text(bad, 2);
  expect_audits_identical(serial_bad, piped_bad, "bad directive");
}

TEST(ShardedStreamAudit, MaxBlocksMatchesSerial) {
  const auto fuzz = wl::fuzz_observations(13, {.transactions = 12, .keys = 3});
  report::Observations obs;
  obs.txns = fuzz.txns;
  const std::string text = report::to_text(obs);
  const report::StreamAuditResult serial = audit_text(text, 0, nullptr, 1);
  EXPECT_EQ(serial.blocks, 1u);
  for (std::size_t threads : kShardCounts) {
    const report::StreamAuditResult piped = audit_text(text, threads, nullptr, 1);
    expect_audits_identical(serial, piped, std::to_string(threads));
  }
}

TEST(ShardedStreamAudit, FollowsGrowingFileAcrossThreadCounts) {
  // The writer appends in bursts while the auditor tails: batch boundaries
  // are timing-dependent, so compare everything that must NOT depend on the
  // cut — totals, per-level statuses, stats minus block count, forensics.
  const auto fuzz = wl::fuzz_observations(
      64, {.transactions = 32, .keys = 4, .p_dangling = 0.1, .sessions = 4});
  const std::vector<Transaction> all = to_vector(fuzz.txns);

  auto run = [&](std::size_t threads, std::string* forensics) {
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("crooks_sharded_follow_" + std::to_string(threads) + ".txt");
    std::remove(path.string().c_str());
    { std::ofstream touch(path); }
    std::thread writer([&] {
      std::ofstream out(path, std::ios::app);
      for (std::size_t at = 0; at < all.size(); at += 4) {
        const std::size_t take = std::min<std::size_t>(4, all.size() - at);
        report::Observations obs;
        obs.txns = TransactionSet{
            std::vector<Transaction>(all.begin() + at, all.begin() + at + take)};
        out << report::to_text(obs) << std::flush;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    std::ifstream in(path);
    forensics::Collector collector;
    report::StreamAuditOptions opts;
    opts.poll_ms = 1;
    opts.idle_exit_ms = 200;
    opts.ingest_threads = threads;
    opts.on_checker = [&](OnlineChecker& chk) { collector.attach(chk); };
    const report::StreamAuditResult r = report::stream_audit(in, opts);
    writer.join();
    std::remove(path.string().c_str());
    *forensics = report::forensics_json(collector.table());
    return r;
  };

  std::string serial_forensics;
  const report::StreamAuditResult serial = run(0, &serial_forensics);
  EXPECT_TRUE(serial.error.empty()) << serial.error;
  EXPECT_EQ(serial.transactions, all.size());
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::string piped_forensics;
    const report::StreamAuditResult piped = run(threads, &piped_forensics);
    EXPECT_TRUE(piped.error.empty()) << piped.error;
    EXPECT_EQ(piped.transactions, serial.transactions) << threads;
    EXPECT_EQ(piped.duplicates, serial.duplicates) << threads;
    EXPECT_EQ(piped.surviving, serial.surviving) << threads;
    for (const auto& [level, st] : serial.statuses) {
      const auto it = piped.statuses.find(level);
      ASSERT_NE(it, piped.statuses.end());
      EXPECT_EQ(st.ok, it->second.ok) << ct::name_of(level);
      EXPECT_EQ(st.first_violation, it->second.first_violation)
          << ct::name_of(level);
      EXPECT_EQ(st.explanation, it->second.explanation) << ct::name_of(level);
    }
    EXPECT_EQ(piped_forensics, serial_forensics) << threads;
  }
}

}  // namespace
}  // namespace crooks::checker
