// The ∃e checker: exhaustive and graph engines, their agreement, and the
// witnesses they produce.
#include <gtest/gtest.h>

#include "adya/history.hpp"
#include "adya/phenomena.hpp"
#include "checker/checker.hpp"

namespace crooks::checker {
namespace {

using ct::IsolationLevel;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1};

TransactionSet write_skew() {
  return TransactionSet{{
      TxnBuilder(1).read(kX, kInitTxn).read(kY, kInitTxn).write(kX).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).read(kY, kInitTxn).write(kY).at(1, 11).build(),
  }};
}

TransactionSet lost_update() {
  return TransactionSet{{
      TxnBuilder(1).read(kX, kInitTxn).write(kX).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).write(kX).at(1, 11).build(),
  }};
}

TransactionSet long_fork() {
  return TransactionSet{{
      TxnBuilder(1).write(kX).at(0, 10).build(),
      TxnBuilder(2).write(kY).at(1, 11).build(),
      TxnBuilder(3).read(kX, TxnId{1}).read(kY, kInitTxn).at(2, 12).build(),
      TxnBuilder(4).read(kX, kInitTxn).read(kY, TxnId{2}).at(3, 13).build(),
  }};
}

TEST(Exhaustive, WriteSkewSeparatesSerFromSi) {
  const TransactionSet txns = write_skew();
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kAdyaSI, txns).satisfiable());
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kStrongSI, txns).satisfiable());
  const CheckResult ser = check_exhaustive(IsolationLevel::kSerializable, txns);
  EXPECT_TRUE(ser.unsatisfiable());
  EXPECT_GT(ser.nodes_explored, 0u);
}

TEST(Exhaustive, LostUpdateRejectedBySnapshotLevels) {
  const TransactionSet txns = lost_update();
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kReadCommitted, txns).satisfiable());
  EXPECT_FALSE(check_exhaustive(IsolationLevel::kAdyaSI, txns).satisfiable());
  EXPECT_FALSE(check_exhaustive(IsolationLevel::kPSI, txns).satisfiable());
  EXPECT_FALSE(check_exhaustive(IsolationLevel::kSerializable, txns).satisfiable());
}

TEST(Exhaustive, LongForkSeparatesPsiFromSi) {
  const TransactionSet txns = long_fork();
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kPSI, txns).satisfiable());
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kReadAtomic, txns).satisfiable());
  EXPECT_FALSE(check_exhaustive(IsolationLevel::kAdyaSI, txns).satisfiable());
  EXPECT_FALSE(check_exhaustive(IsolationLevel::kSerializable, txns).satisfiable());
}

TEST(Exhaustive, WitnessesVerifyAgainstCanonicalTests) {
  for (const TransactionSet& txns : {write_skew(), lost_update(), long_fork()}) {
    for (IsolationLevel l : ct::kAllLevels) {
      const CheckResult r = check_exhaustive(l, txns);
      if (r.satisfiable()) {
        ASSERT_TRUE(r.witness.has_value());
        EXPECT_TRUE(verify_witness(l, txns, *r.witness).ok)
            << ct::name_of(l) << ": " << verify_witness(l, txns, *r.witness).explanation;
      }
    }
  }
}

TEST(Exhaustive, EmptySetSatisfiable) {
  const TransactionSet empty;
  for (IsolationLevel l : ct::kAllLevels) {
    EXPECT_TRUE(check_exhaustive(l, empty).satisfiable()) << ct::name_of(l);
  }
}

TEST(Exhaustive, MonotoneAcrossHierarchy) {
  for (const TransactionSet& txns : {write_skew(), lost_update(), long_fork()}) {
    for (IsolationLevel strong : ct::kAllLevels) {
      if (!check_exhaustive(strong, txns).satisfiable()) continue;
      for (IsolationLevel weak : ct::kAllLevels) {
        if (ct::at_least_as_strong(strong, weak)) {
          EXPECT_TRUE(check_exhaustive(weak, txns).satisfiable())
              << ct::name_of(strong) << " sat but " << ct::name_of(weak) << " unsat";
        }
      }
    }
  }
}

TEST(Exhaustive, VersionOrderRestrictsExecutions) {
  // Two blind writes to x and y in opposite install orders: client-centric
  // SER is satisfiable (clients cannot see install order), but no execution
  // is consistent with the store's install order.
  const TransactionSet txns{{TxnBuilder(1).write(kX).write(kY).build(),
                             TxnBuilder(2).write(kX).write(kY).build()}};
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kSerializable, txns).satisfiable());

  std::unordered_map<Key, std::vector<TxnId>> vo{
      {kX, {TxnId{1}, TxnId{2}}},
      {kY, {TxnId{2}, TxnId{1}}},
  };
  CheckOptions opts;
  opts.version_order = &vo;
  const CheckResult r = check_exhaustive(IsolationLevel::kSerializable, txns, opts);
  EXPECT_TRUE(r.unsatisfiable());
  // Even ReadUncommitted is unsatisfiable under the conflicting install
  // order — there is no execution at all respecting it (this is G0).
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kReadUncommitted, txns, opts)
                  .unsatisfiable());
}

TEST(Exhaustive, BudgetExhaustionReportsUnknown) {
  std::vector<model::Transaction> many;
  for (std::uint64_t i = 1; i <= 12; ++i) {
    // All read x=⊥ and write x: heavily unsatisfiable under SI, forcing the
    // search to explore (and hit the tiny budget).
    many.push_back(TxnBuilder(i).read(kX, kInitTxn).write(Key{100 + i}).write(kX).build());
  }
  TransactionSet txns(std::move(many));
  CheckOptions opts;
  opts.max_nodes = 50;
  const CheckResult r = check_exhaustive(IsolationLevel::kAdyaSI, txns, opts);
  EXPECT_EQ(r.outcome, Outcome::kUnknown);
}

TEST(GraphEngine, TimedSiFamilyIsPinnedByCommitOrder) {
  const TransactionSet txns = write_skew();
  const CheckResult r = check_graph(IsolationLevel::kAnsiSI, txns);
  EXPECT_TRUE(r.satisfiable());
  ASSERT_TRUE(r.witness.has_value());
  // Witness must be the commit-timestamp order: T1 (commit 10), T2 (11).
  EXPECT_EQ(r.witness->order().front(), TxnId{1});

  const CheckResult lu = check_graph(IsolationLevel::kAnsiSI, lost_update());
  EXPECT_TRUE(lu.unsatisfiable());
}

TEST(GraphEngine, TimedSiRequiresTimestamps) {
  const TransactionSet untimed{{TxnBuilder(1).write(kX).build()}};
  EXPECT_TRUE(check_graph(IsolationLevel::kStrongSI, untimed).unsatisfiable());
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kStrongSI, untimed).unsatisfiable());
}

TEST(GraphEngine, VersionOrderEnablesCompleteDecisions) {
  const TransactionSet txns = lost_update();
  std::unordered_map<Key, std::vector<TxnId>> vo{{kX, {TxnId{1}, TxnId{2}}}};
  CheckOptions opts;
  opts.version_order = &vo;
  EXPECT_TRUE(check_graph(IsolationLevel::kPSI, txns, opts).unsatisfiable());
  EXPECT_TRUE(check_graph(IsolationLevel::kReadCommitted, txns, opts).satisfiable());
  const CheckResult ser = check_graph(IsolationLevel::kSerializable, txns, opts);
  EXPECT_TRUE(ser.unsatisfiable());
  EXPECT_NE(ser.detail.find("G"), std::string::npos);  // names the phenomena
}

TEST(GraphEngine, AgreesWithExhaustiveUnderVersionOrder) {
  const TransactionSet sets[] = {write_skew(), lost_update(), long_fork()};
  for (const TransactionSet& txns : sets) {
    // Derive a version order: by commit timestamp (all our fixtures carry ts).
    std::unordered_map<Key, std::vector<TxnId>> vo;
    std::vector<const model::Transaction*> sorted;
    for (const model::Transaction& t : txns) sorted.push_back(&t);
    std::sort(sorted.begin(), sorted.end(), [](auto* a, auto* b) {
      return a->commit_ts() < b->commit_ts();
    });
    for (const model::Transaction* t : sorted) {
      for (Key k : t->write_set()) vo[k].push_back(t->id());
    }
    CheckOptions opts;
    opts.version_order = &vo;
    for (IsolationLevel l : ct::kAllLevels) {
      const CheckResult g = check_graph(l, txns, opts);
      const CheckResult e = check_exhaustive(l, txns, opts);
      ASSERT_NE(e.outcome, Outcome::kUnknown);
      if (g.outcome == Outcome::kUnknown) continue;  // incomplete is allowed
      EXPECT_EQ(g.outcome, e.outcome)
          << ct::name_of(l) << ": graph=" << g.detail << " exhaustive=" << e.detail;
    }
  }
}

TEST(Check, DispatchesAndDecides) {
  EXPECT_TRUE(check(IsolationLevel::kAdyaSI, write_skew()).satisfiable());
  EXPECT_FALSE(check(IsolationLevel::kSerializable, write_skew()).satisfiable());
  EXPECT_TRUE(check(IsolationLevel::kPSI, long_fork()).satisfiable());
  EXPECT_FALSE(check(IsolationLevel::kAnsiSI, lost_update()).satisfiable());
}

TEST(Check, LargeSatisfiableChainUsesGraphEngine) {
  // 50 transactions in one causal chain: far beyond the exhaustive
  // threshold; the graph engine must find the witness.
  std::vector<model::Transaction> chain;
  chain.push_back(TxnBuilder(1).write(kX).at(0, 1).build());
  for (std::uint64_t i = 2; i <= 50; ++i) {
    chain.push_back(TxnBuilder(i)
                        .read(kX, TxnId{i - 1})
                        .write(kX)
                        .at(static_cast<Timestamp>(2 * i), static_cast<Timestamp>(2 * i + 1))
                        .build());
  }
  TransactionSet txns(std::move(chain));
  for (IsolationLevel l : ct::kAllLevels) {
    const CheckResult r = check(l, txns);
    EXPECT_TRUE(r.satisfiable()) << ct::name_of(l) << ": " << r.detail;
  }
}

}  // namespace
}  // namespace crooks::checker
