// Constructive graph engine: the ⇐ directions of the equivalence theorems,
// turned into an algorithm.
//
// Timed SI family (ANSI / Session / Strong SI): the C-ORD clause forces any
// witness execution to apply transactions in real-time commit order, so the
// commit-timestamp-sorted order is the *only* candidate — testing it decides
// satisfiability outright (Theorems 7–9's constructions).
//
// Untimed levels with an authoritative version order: lift the observations
// into an Adya history, detect phenomena (the theorems' ⇒ contrapositive
// gives unsatisfiability), and on the absence of phenomena construct the
// witness by topologically sorting the serialization graph with exactly the
// edge set each theorem's ⇐ proof uses (A.2, A.4, A.5, B.2, E.2).
//
// Everything found is re-verified against the canonical commit tests before
// being reported — the engine never returns an unchecked witness.
#include <algorithm>
#include <queue>

#include "adya/graph.hpp"
#include "adya/phenomena.hpp"
#include "checker/checker.hpp"

namespace crooks::checker {

namespace {

using ct::IsolationLevel;
using model::Transaction;

/// Kahn topological sort over the DSG edges selected by `mask`, breaking
/// ties toward smaller commit timestamp then smaller id (deterministic,
/// and commit order is the natural witness). Empty result on a cycle.
std::vector<TxnId> topo_order(const adya::Dsg& dsg, std::uint8_t mask,
                              const model::TransactionSet& txns) {
  const std::size_t n = dsg.size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> out(n);
  for (const adya::Edge& e : dsg.edges()) {
    if (!(e.kind & mask)) continue;
    out[e.from].push_back(e.to);
    ++indegree[e.to];
  }

  auto later = [&](std::size_t a, std::size_t b) {
    const Transaction& ta = txns.by_id(dsg.id_of(a));
    const Transaction& tb = txns.by_id(dsg.id_of(b));
    if (ta.commit_ts() != tb.commit_ts()) return ta.commit_ts() > tb.commit_ts();
    return ta.id() > tb.id();
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(later)> ready(later);
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }

  std::vector<TxnId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t u = ready.top();
    ready.pop();
    order.push_back(dsg.id_of(u));
    for (std::size_t v : out[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != n) return {};  // cycle
  return order;
}

/// Edge set each level's constructive proof sorts by.
std::uint8_t witness_mask(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadUncommitted: return adya::kWW;
    case IsolationLevel::kReadCommitted:
    case IsolationLevel::kReadAtomic:
    case IsolationLevel::kPSI: return adya::kDependency;
    case IsolationLevel::kSerializable: return adya::kAllDsg;
    case IsolationLevel::kStrictSerializable: return adya::kAllDsg | adya::kRT;
    default: return 0;
  }
}

CheckResult verified_sat(IsolationLevel level, const model::TransactionSet& txns,
                         std::vector<TxnId> order, std::string how) {
  model::Execution e(txns, std::move(order));
  if (ct::ExecutionVerdict v = verify_witness(level, txns, e); !v.ok) {
    return {Outcome::kUnknown, std::nullopt,
            "internal: constructed witness failed verification (" + v.explanation + ")",
            0};
  }
  return {Outcome::kSatisfiable, std::move(e), std::move(how), 0};
}

/// The commit-timestamp-sorted execution; nullopt when timestamps are
/// missing or commit timestamps collide.
std::optional<std::vector<TxnId>> commit_sorted(const model::TransactionSet& txns) {
  std::vector<const Transaction*> ts;
  ts.reserve(txns.size());
  for (const Transaction& t : txns) {
    if (t.commit_ts() == kNoTimestamp) return std::nullopt;
    ts.push_back(&t);
  }
  std::sort(ts.begin(), ts.end(), [](const Transaction* a, const Transaction* b) {
    return a->commit_ts() < b->commit_ts();
  });
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i]->commit_ts() == ts[i + 1]->commit_ts()) return std::nullopt;
  }
  std::vector<TxnId> order;
  order.reserve(ts.size());
  for (const Transaction* t : ts) order.push_back(t->id());
  return order;
}

}  // namespace

CheckResult check_graph(IsolationLevel level, const model::TransactionSet& txns,
                        const CheckOptions& opts) {
  if (txns.empty()) {
    return {Outcome::kSatisfiable, model::Execution::identity(txns), "empty set", 0};
  }

  // --- Timed SI family: C-ORD pins the execution to commit order. ---------
  if (level == IsolationLevel::kAnsiSI || level == IsolationLevel::kSessionSI ||
      level == IsolationLevel::kStrongSI) {
    for (const Transaction& t : txns) {
      if (!t.has_timestamps()) {
        return {Outcome::kUnsatisfiable, std::nullopt,
                std::string(ct::name_of(level)) +
                    " requires the time oracle; no timestamps on " +
                    crooks::to_string(t.id()),
                0};
      }
    }
    auto order = commit_sorted(txns);
    if (!order.has_value()) {
      return {Outcome::kUnsatisfiable, std::nullopt,
              "C-ORD needs distinct commit timestamps", 0};
    }
    model::Execution e(txns, std::move(*order));
    ct::ExecutionVerdict v = verify_witness(level, txns, e);
    if (v.ok) {
      return {Outcome::kSatisfiable, std::move(e),
              "commit test passes on the commit-order execution (the only "
              "order satisfying C-ORD)",
              0};
    }
    return {Outcome::kUnsatisfiable, std::nullopt,
            "C-ORD pins the execution to commit-timestamp order, on which: " +
                v.explanation,
            0};
  }

  // --- Untimed levels with an authoritative version order: phenomena. -----
  if (opts.version_order != nullptr && level != IsolationLevel::kAdyaSI) {
    adya::History h = adya::from_observations(txns, *opts.version_order);
    const adya::Phenomena p = adya::detect(h);
    const adya::Verdict verdict = adya::satisfies(p, level);
    if (verdict == adya::Verdict::kViolated) {
      return {Outcome::kUnsatisfiable, std::nullopt,
              "under the system's install order: " + adya::explain_violation(h, level),
              0};
    }
    if (verdict == adya::Verdict::kSatisfied) {
      adya::Dsg dsg(h);
      std::uint8_t mask = witness_mask(level);
      if (level == IsolationLevel::kStrictSerializable) {
        if (!dsg.add_realtime_edges(h)) {
          return {Outcome::kUnsatisfiable, std::nullopt,
                  "StrictSerializable requires the time oracle", 0};
        }
      }
      std::vector<TxnId> order = topo_order(dsg, mask, txns);
      if (!order.empty()) {
        return verified_sat(level, txns, std::move(order),
                            "witness from topological sort of the serialization "
                            "graph (no phenomena under the install order)");
      }
      return {Outcome::kUnknown, std::nullopt,
              "internal: phenomena absent but serialization graph cyclic", 0};
    }
    // kInapplicable (e.g. SSER without timestamps): fall through.
  }

  // --- Heuristic: try natural candidate orders, verify each. --------------
  std::vector<std::pair<std::string, std::vector<TxnId>>> candidates;
  if (auto cs = commit_sorted(txns); cs.has_value()) {
    candidates.emplace_back("commit-timestamp order", std::move(*cs));
  }
  {
    // Dependency topological order using the observations' wr edges plus
    // whatever ww edges a version order pins (if none: single-writer keys).
    try {
      std::unordered_map<Key, std::vector<TxnId>> empty_vo;
      adya::History h = adya::from_observations(
          txns, opts.version_order != nullptr ? *opts.version_order : empty_vo);
      adya::Dsg dsg(h);
      std::vector<TxnId> order =
          topo_order(dsg, level == IsolationLevel::kSerializable ||
                              level == IsolationLevel::kStrictSerializable
                          ? adya::kAllDsg
                          : adya::kDependency,
                     txns);
      if (!order.empty()) candidates.emplace_back("dependency topological order", order);
    } catch (const std::invalid_argument&) {
      // multi-writer keys without version order: no dependency candidate
    }
  }

  for (auto& [how, order] : candidates) {
    model::Execution e(txns, std::move(order));
    if (verify_witness(level, txns, e).ok) {
      return {Outcome::kSatisfiable, std::move(e), "heuristic: " + how + " verified", 0};
    }
  }
  return {Outcome::kUnknown, std::nullopt,
          "no candidate order verified; graph engine is incomplete here", 0};
}

CheckResult check(IsolationLevel level, const model::TransactionSet& txns,
                  const CheckOptions& opts) {
  // Complete graph decisions first (polynomial).
  const bool timed_pinned = level == IsolationLevel::kAnsiSI ||
                            level == IsolationLevel::kSessionSI ||
                            level == IsolationLevel::kStrongSI;
  const bool vo_complete =
      opts.version_order != nullptr &&
      (level == IsolationLevel::kReadUncommitted ||
       level == IsolationLevel::kReadCommitted ||
       level == IsolationLevel::kReadAtomic || level == IsolationLevel::kPSI ||
       level == IsolationLevel::kSerializable ||
       level == IsolationLevel::kStrictSerializable);

  if (timed_pinned || vo_complete) {
    CheckResult r = check_graph(level, txns, opts);
    if (r.outcome != Outcome::kUnknown) return r;
  }
  if (txns.size() <= opts.exhaustive_threshold) {
    return check_exhaustive(level, txns, opts);
  }
  CheckResult r = check_graph(level, txns, opts);
  if (r.outcome != Outcome::kUnknown) return r;

  // Hierarchy inference for the one large-instance gap: timestamp-free
  // Adya SI has no complete polynomial procedure here, but the lattice is
  // sound in both directions — a serializable witness also witnesses SI
  // (SER ⇒ AdyaSI), and an unsatisfiable PSI refutes SI (AdyaSI ⇒ PSI).
  if (level == IsolationLevel::kAdyaSI) {
    CheckResult ser = check_graph(IsolationLevel::kSerializable, txns, opts);
    if (ser.outcome == Outcome::kSatisfiable &&
        verify_witness(level, txns, *ser.witness).ok) {
      ser.detail += " (serializable witness also satisfies CT_SI)";
      return ser;
    }
    CheckResult psi = check_graph(IsolationLevel::kPSI, txns, opts);
    if (psi.outcome == Outcome::kUnsatisfiable) {
      psi.detail = "refuted via the hierarchy (AdyaSI ⇒ PSI): " + psi.detail;
      return psi;
    }
  }

  // Last resort: bounded exhaustive search may still find a witness quickly
  // (the candidate ordering starts from commit order).
  return check_exhaustive(level, txns, opts);
}

}  // namespace crooks::checker
