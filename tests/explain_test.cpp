// Explainable verdicts and uniform effort accounting: every engine labels
// its CheckResult, refuted checks carry a ReadDiagnosis naming the failing
// transaction and the violated commit-test clause, report renders it as a
// human-readable counterexample, and the effort counters (nodes_explored /
// edges_visited / Stats::ops_evaluated) are populated on every path.
#include <gtest/gtest.h>

#include <span>
#include <string>

#include "checker/checker.hpp"
#include "checker/online.hpp"
#include "obs/metrics.hpp"
#include "report/report.hpp"
#include "report/serialize.hpp"

namespace crooks::checker {
namespace {

using ct::IsolationLevel;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1};

/// T2 reads x from T1 but y from the initial state: no single state can
/// serve both reads, so ReadAtomic and everything stronger is refuted.
TransactionSet fractured_read() {
  return TransactionSet{{
      TxnBuilder(1).write(kX).write(kY).build(),
      TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).build(),
  }};
}

TransactionSet lost_update_timed() {
  return TransactionSet{{
      TxnBuilder(1).read(kX, kInitTxn).write(kX).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).write(kX).at(1, 11).build(),
  }};
}

TEST(Explain, RefutedExhaustiveCheckCarriesDiagnosis) {
  const CheckResult r =
      check_exhaustive(IsolationLevel::kReadAtomic, fractured_read());
  ASSERT_TRUE(r.unsatisfiable());
  EXPECT_EQ(r.engine, "exhaustive");
  ASSERT_TRUE(r.diagnosis.has_value());
  EXPECT_EQ(r.diagnosis->txn, TxnId{2});
  EXPECT_FALSE(r.diagnosis->clause.empty());
  EXPECT_FALSE(r.diagnosis->candidate_states.empty());
  // The fractured pair is x-from-T1 vs y-from-init; the clause must mention
  // a fractured/conflicting read rather than a generic failure.
  EXPECT_NE(r.diagnosis->clause.find("fractured"), std::string::npos)
      << r.diagnosis->clause;
}

TEST(Explain, SatisfiableChecksCarryNoDiagnosis) {
  const CheckResult r =
      check_exhaustive(IsolationLevel::kReadCommitted, fractured_read());
  ASSERT_TRUE(r.satisfiable());
  EXPECT_FALSE(r.diagnosis.has_value());
}

TEST(Explain, TimedGraphRefutationCarriesDiagnosis) {
  const CheckResult r =
      check_graph(IsolationLevel::kStrongSI, lost_update_timed());
  ASSERT_TRUE(r.unsatisfiable());
  ASSERT_TRUE(r.diagnosis.has_value());
  EXPECT_FALSE(r.diagnosis->clause.empty());
  // Timed-SI evidence is stated against the commit-timestamp order — the
  // only candidate C-ORD admits.
  EXPECT_NE(r.diagnosis->candidate_execution.find("commit-timestamp"),
            std::string::npos)
      << r.diagnosis->candidate_execution;
}

TEST(Explain, MissingTimestampsDiagnosedWithoutCandidate) {
  const CheckResult r =
      check_exhaustive(IsolationLevel::kStrongSI, fractured_read());
  ASSERT_TRUE(r.unsatisfiable());
  ASSERT_TRUE(r.diagnosis.has_value());
  EXPECT_NE(r.diagnosis->clause.find("time oracle"), std::string::npos)
      << r.diagnosis->clause;
}

TEST(Explain, EnginesAgreeOnDiagnosedTransaction) {
  // The graph engine alone cannot refute untimed levels (it answers unknown
  // and defers), so compare the exhaustive engine with the full dispatcher,
  // whichever engine it routes to.
  const CheckResult ex =
      check_exhaustive(IsolationLevel::kReadAtomic, fractured_read());
  const CheckResult via_dispatch =
      check(IsolationLevel::kReadAtomic, fractured_read(), {});
  ASSERT_TRUE(ex.unsatisfiable());
  ASSERT_TRUE(via_dispatch.unsatisfiable());
  ASSERT_TRUE(ex.diagnosis.has_value());
  ASSERT_TRUE(via_dispatch.diagnosis.has_value());
  EXPECT_EQ(ex.diagnosis->txn, via_dispatch.diagnosis->txn);
  EXPECT_EQ(ex.diagnosis->clause, via_dispatch.diagnosis->clause);
}

TEST(Explain, RenderCounterexampleNamesEvidence) {
  const CheckResult r =
      check_exhaustive(IsolationLevel::kReadAtomic, fractured_read());
  ASSERT_TRUE(r.diagnosis.has_value());
  const std::string text = report::render_counterexample(*r.diagnosis);
  EXPECT_NE(text.find("counterexample"), std::string::npos);
  EXPECT_NE(text.find("failing transaction: T2"), std::string::npos);
  EXPECT_NE(text.find("violated clause:"), std::string::npos);
  EXPECT_NE(text.find("candidate read states:"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Explain, AuditIncludesCounterexampleForRefutedLevels) {
  report::Observations obs;
  obs.txns = fractured_read();
  const report::AuditResult a = report::audit(obs, {});
  EXPECT_NE(a.text.find("counterexample"), std::string::npos);
  EXPECT_NE(a.text.find("failing transaction: T2"), std::string::npos);
}

TEST(EngineLabels, DispatcherRecordsWhichEngineAnswered) {
  // Untimed level on a small history: the dispatcher's answer must be
  // labeled with a known engine, whatever routing heuristics decide.
  const CheckResult r = check(IsolationLevel::kSerializable, fractured_read(), {});
  EXPECT_TRUE(r.engine == "exhaustive" || r.engine == "graph" ||
              r.engine == "heuristic" || r.engine == "hierarchy")
      << r.engine;
  const CheckResult timed =
      check_graph(IsolationLevel::kStrongSI, lost_update_timed());
  EXPECT_EQ(timed.engine, "graph");
}

TEST(Effort, ExhaustiveAndGraphPopulateTheSameCounters) {
  const CheckResult ex =
      check_exhaustive(IsolationLevel::kReadAtomic, fractured_read());
  EXPECT_GT(ex.nodes_explored, 0u);
  const CheckResult gr =
      check_graph(IsolationLevel::kStrongSI, lost_update_timed());
  EXPECT_GT(gr.nodes_explored, 0u);
}

TEST(Effort, OnlineCheckerCountsOpsEvaluated) {
  OnlineChecker chk;
  const TransactionSet txns = fractured_read();
  const OnlineChecker::Stats before = chk.stats();
  EXPECT_EQ(before.ops_evaluated, 0u);
  chk.append_all(txns);
  // fractured_read() has 4 operations across its two transactions.
  EXPECT_EQ(chk.stats().ops_evaluated, 4u);
  // Duplicates are ignored before evaluation, so the counter is stable.
  chk.append(txns.by_id(TxnId{1}));
  EXPECT_EQ(chk.stats().ops_evaluated, 4u);
}

TEST(Metrics, ChecksAndSearchSeriesAdvance) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& unsat = reg.counter("crooks_checks_total", "",
                                    {{"engine", "exhaustive"}, {"outcome", "unsat"}});
  obs::Counter& nodes = reg.counter("crooks_search_nodes_total");
  const std::uint64_t unsat_before = unsat.value();
  const std::uint64_t nodes_before = nodes.value();
  const CheckResult r =
      check_exhaustive(IsolationLevel::kReadAtomic, fractured_read());
  ASSERT_TRUE(r.unsatisfiable());
  EXPECT_EQ(unsat.value(), unsat_before + 1);
  EXPECT_GT(nodes.value(), nodes_before);
}

TEST(Metrics, PruneReasonsAreAttributed) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& fractured = reg.counter("crooks_search_prunes_total", "",
                                        {{"reason", "fractured"}});
  const std::uint64_t before = fractured.value();
  check_exhaustive(IsolationLevel::kReadAtomic, fractured_read());
  EXPECT_GT(fractured.value(), before);
}

}  // namespace
}  // namespace crooks::checker
