// Figure 4 explorer: the snapshot-based isolation hierarchy, demonstrated by
// separating anomalies.
//
// For each classic anomaly, the checker decides which levels admit it. Each
// hierarchy edge is then witnessed by an anomaly that the weaker level
// admits and the stronger one rejects — the empirical counterpart of the
// paper's containment proofs (Appendix F).
//
//   $ ./hierarchy_explorer
#include <cstdio>
#include <vector>

#include "checker/checker.hpp"

using namespace crooks;

namespace {

constexpr Key x{0}, y{1};
using model::TxnBuilder;

struct Named {
  const char* name;
  const char* what;
  model::TransactionSet txns;
};

std::vector<Named> anomalies() {
  std::vector<Named> out;
  out.push_back({"write skew", "disjoint writes after reading a shared stale snapshot",
                 model::TransactionSet{{
                     TxnBuilder(1).read(x, kInitTxn).read(y, kInitTxn).write(x).at(0, 10).build(),
                     TxnBuilder(2).read(x, kInitTxn).read(y, kInitTxn).write(y).at(1, 11).build(),
                 }}});
  out.push_back({"lost update", "both read x=⊥, both overwrite x",
                 model::TransactionSet{{
                     TxnBuilder(1).read(x, kInitTxn).write(x).at(0, 10).build(),
                     TxnBuilder(2).read(x, kInitTxn).write(x).at(1, 11).build(),
                 }}});
  out.push_back({"long fork", "two readers observe independent writes in opposite orders",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).at(0, 10).build(),
                     TxnBuilder(2).write(y).at(1, 11).build(),
                     TxnBuilder(3).read(x, TxnId{1}).read(y, kInitTxn).at(2, 12).build(),
                     TxnBuilder(4).read(x, kInitTxn).read(y, TxnId{2}).at(3, 13).build(),
                 }}});
  out.push_back({"causality violation", "sees y=T2 (which read T1's x) but misses x",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).at(0, 10).build(),
                     TxnBuilder(2).read(x, TxnId{1}).write(y).at(11, 12).build(),
                     TxnBuilder(3).read(y, TxnId{2}).read(x, kInitTxn).at(13, 14).build(),
                 }}});
  out.push_back({"fractured read", "sees half of an atomic two-key write",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).write(y).at(0, 10).build(),
                     TxnBuilder(2).read(x, TxnId{1}).read(y, kInitTxn).at(1, 11).build(),
                 }}});
  out.push_back({"session inversion", "a session reads staler data than it wrote",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(x, kInitTxn).session(SessionId{1}).at(20, 30).build(),
                 }}});
  out.push_back({"stale read (cross-session)", "misses a write that finished before it began",
                 model::TransactionSet{{
                     TxnBuilder(1).write(x).session(SessionId{1}).at(0, 10).build(),
                     TxnBuilder(2).read(x, kInitTxn).session(SessionId{2}).at(20, 30).build(),
                 }}});
  return out;
}

}  // namespace

int main() {
  const auto cases = anomalies();

  std::printf("%-28s", "anomaly \\ level");
  for (ct::IsolationLevel l : ct::kAllLevels) {
    std::printf(" %6.6s", std::string(ct::name_of(l)).c_str());
  }
  std::printf("\n");

  for (const Named& c : cases) {
    std::printf("%-28s", c.name);
    for (ct::IsolationLevel l : ct::kAllLevels) {
      const checker::CheckResult r = checker::check(l, c.txns);
      std::printf(" %6s", r.satisfiable() ? "admit" : "REJECT");
    }
    std::printf("   %s\n", c.what);
  }

  std::printf("\nequivalences proven by the paper (§5.2):\n");
  for (ct::IsolationLevel l : ct::kAllLevels) {
    if (auto eq = ct::equivalent_names(l); !eq.empty()) {
      std::printf("  %-12s ≡ %s\n", std::string(ct::name_of(l)).c_str(),
                  std::string(eq).c_str());
    }
  }

  std::printf("\nhierarchy (every ✓ row-implies-column relation that holds):\n");
  for (ct::IsolationLevel a : ct::kAllLevels) {
    for (ct::IsolationLevel b : ct::kAllLevels) {
      if (a != b && ct::at_least_as_strong(a, b)) {
        std::printf("  %s ⇒ %s\n", std::string(ct::name_of(a)).c_str(),
                    std::string(ct::name_of(b)).c_str());
      }
    }
  }
  return 0;
}
