file(REMOVE_RECURSE
  "CMakeFiles/crooks_checker.dir/exhaustive.cpp.o"
  "CMakeFiles/crooks_checker.dir/exhaustive.cpp.o.d"
  "CMakeFiles/crooks_checker.dir/graph_engine.cpp.o"
  "CMakeFiles/crooks_checker.dir/graph_engine.cpp.o.d"
  "CMakeFiles/crooks_checker.dir/online.cpp.o"
  "CMakeFiles/crooks_checker.dir/online.cpp.o.d"
  "libcrooks_checker.a"
  "libcrooks_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
