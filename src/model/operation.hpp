// Operations and values of the state-based model (§3 of the paper).
//
// A value is identified by the transaction that wrote it. Together with the
// "a transaction writes a key at most once" assumption (§3), the pair
// (writer, key) uniquely identifies every version that ever exists, which is
// exactly the paper's unique-value assumption. The initial state maps every
// key to ⊥, modeled as a write by the synthetic transaction kInitTxn.
#pragma once

#include <string>

#include "common/ids.hpp"

namespace crooks::model {

/// A value as observable by a client: "which transaction wrote what I read".
///
/// `phantom` marks an observed value that exists in *no* state of any
/// execution — a non-final (intermediate) write of its writer. Executions
/// only apply final writes (§3 / Definition 1), so a phantom observation has
/// an empty read-state set and fails PREREAD; this is exactly how Adya's G1b
/// (intermediate reads) surfaces in the state-based model.
struct Value {
  TxnId writer = kInitTxn;
  bool phantom = false;

  constexpr Value() = default;
  constexpr explicit Value(TxnId w, bool ph = false) : writer(w), phantom(ph) {}

  constexpr bool is_initial() const { return writer == kInitTxn && !phantom; }

  friend constexpr auto operator<=>(Value, Value) = default;
};

enum class OpType : std::uint8_t { kRead, kWrite };

/// One read or write operation inside a transaction.
///
/// For reads, `value` is the value the client observed. For writes, `value`
/// is the value created, i.e. Value{self} — filled in by the transaction
/// builder so that an Operation is self-describing.
struct Operation {
  OpType type = OpType::kRead;
  Key key{};
  Value value{};

  static constexpr Operation read(Key k, Value observed) {
    return Operation{OpType::kRead, k, observed};
  }
  static constexpr Operation read(Key k, TxnId observed_writer) {
    return Operation{OpType::kRead, k, Value{observed_writer}};
  }
  /// Observation of a non-final (intermediate) write — see Value::phantom.
  static constexpr Operation read_intermediate(Key k, TxnId observed_writer) {
    return Operation{OpType::kRead, k, Value{observed_writer, /*ph=*/true}};
  }
  static constexpr Operation write(Key k, TxnId self) {
    return Operation{OpType::kWrite, k, Value{self}};
  }

  constexpr bool is_read() const { return type == OpType::kRead; }
  constexpr bool is_write() const { return type == OpType::kWrite; }

  friend constexpr bool operator==(const Operation&, const Operation&) = default;
};

inline std::string to_string(const Operation& op) {
  using crooks::to_string;
  if (op.is_read()) {
    return "r(" + to_string(op.key) + "=" + to_string(op.value.writer) +
           (op.value.phantom ? "!" : "") + ")";
  }
  return "w(" + to_string(op.key) + ")";
}

}  // namespace crooks::model
