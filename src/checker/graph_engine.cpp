// Constructive graph engine: the ⇐ directions of the equivalence theorems,
// turned into an algorithm.
//
// Timed SI family (ANSI / Session / Strong SI): the C-ORD clause forces any
// witness execution to apply transactions in real-time commit order, so the
// commit-timestamp-sorted order is the *only* candidate — testing it decides
// satisfiability outright (Theorems 7–9's constructions).
//
// Untimed levels with an authoritative version order: intern the order
// against the compiled history, detect phenomena (the theorems' ⇒
// contrapositive gives unsatisfiability), and on the absence of phenomena
// construct the witness by topologically sorting the serialization graph with
// exactly the edge set each theorem's ⇐ proof uses (A.2, A.4, A.5, B.2, E.2).
//
// The engine runs entirely on model::CompiledHistory — phenomena, graph
// edges, commit-order candidates and witness verification all share the one
// compiled form (the TransactionSet overloads compile once and delegate).
// Only the cold unsatisfiable-explanation path lifts observations into an
// Adya history, where the phenomenon renderers live.
//
// Everything found is re-verified against the canonical commit tests before
// being reported — the engine never returns an unchecked witness.
#include <algorithm>
#include <numeric>
#include <queue>

#include "adya/graph.hpp"
#include "adya/phenomena.hpp"
#include "checker/checker.hpp"
#include "checker/engine_obs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::checker {

namespace {

using ct::IsolationLevel;
using model::CompiledHistory;
using model::TxnIdx;

/// Effort accounting for the graph engine, mirroring the exhaustive engine's
/// local-tally-then-flush discipline: nodes = transactions commit-tested plus
/// topo queue pops, edges = DSG edges walked. Accumulated locally during one
/// check and copied into CheckResult / the registry by the check_graph
/// wrapper.
struct GraphEffort {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
};

/// Kahn topological sort over the DSG edges selected by `mask`, breaking
/// ties toward smaller commit timestamp then smaller id (deterministic,
/// and commit order is the natural witness). Requires a Dsg built from `ch`
/// (node i == dense index i). Empty result on a cycle.
std::vector<TxnId> topo_order(const adya::Dsg& dsg, std::uint8_t mask,
                              const CompiledHistory& ch, GraphEffort& eff) {
  const std::size_t n = dsg.size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> out(n);
  for (const adya::Edge& e : dsg.edges()) {
    if (!(e.kind & mask)) continue;
    out[e.from].push_back(e.to);
    ++indegree[e.to];
    ++eff.edges;
  }

  auto later = [&](std::size_t a, std::size_t b) {
    const auto ta = static_cast<TxnIdx>(a);
    const auto tb = static_cast<TxnIdx>(b);
    if (ch.commit_ts(ta) != ch.commit_ts(tb)) {
      return ch.commit_ts(ta) > ch.commit_ts(tb);
    }
    return ch.id_of(ta) > ch.id_of(tb);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(later)> ready(later);
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }

  std::vector<TxnId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t u = ready.top();
    ready.pop();
    ++eff.nodes;
    order.push_back(dsg.id_of(u));
    for (std::size_t v : out[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != n) {
    if (obs::Trace::active()) {
      obs::Trace::event("graph.cycle",
                        obs::TraceFields()
                            .add("sorted", static_cast<std::uint64_t>(order.size()))
                            .add("n", static_cast<std::uint64_t>(n)));
    }
    return {};  // cycle
  }
  return order;
}

/// Edge set each level's constructive proof sorts by.
std::uint8_t witness_mask(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadUncommitted: return adya::kWW;
    case IsolationLevel::kReadCommitted:
    case IsolationLevel::kReadAtomic:
    case IsolationLevel::kPSI: return adya::kDependency;
    case IsolationLevel::kSerializable: return adya::kAllDsg;
    case IsolationLevel::kStrictSerializable: return adya::kAllDsg | adya::kRT;
    default: return 0;
  }
}

CheckResult verified_sat(IsolationLevel level, const CompiledHistory& ch,
                         std::vector<TxnId> order, std::string how,
                         GraphEffort& eff) {
  model::Execution e(ch.txns(), std::move(order));
  eff.nodes += ch.size();  // one commit test per transaction
  if (ct::ExecutionVerdict v = verify_witness(level, ch, e); !v.ok) {
    return {Outcome::kUnknown, std::nullopt,
            "internal: constructed witness failed verification (" + v.explanation + ")",
            0};
  }
  return {Outcome::kSatisfiable, std::move(e), std::move(how), 0};
}

/// The commit-timestamp-sorted execution; nullopt when timestamps are
/// missing or commit timestamps collide.
std::optional<std::vector<TxnId>> commit_sorted(const CompiledHistory& ch) {
  const std::size_t n = ch.size();
  std::vector<TxnIdx> ds(n);
  std::iota(ds.begin(), ds.end(), TxnIdx{0});
  for (TxnIdx d = 0; d < n; ++d) {
    if (ch.commit_ts(d) == kNoTimestamp) return std::nullopt;
  }
  std::sort(ds.begin(), ds.end(), [&](TxnIdx a, TxnIdx b) {
    if (ch.commit_ts(a) != ch.commit_ts(b)) return ch.commit_ts(a) < ch.commit_ts(b);
    return a < b;  // collision → rejected below; keep the sort a total order
  });
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (ch.commit_ts(ds[i]) == ch.commit_ts(ds[i + 1])) return std::nullopt;
  }
  std::vector<TxnId> order;
  order.reserve(n);
  for (TxnIdx d : ds) order.push_back(ch.id_of(d));
  return order;
}

/// The engine body. Fills `eff`; the public wrapper below copies the effort
/// into the result, stamps the engine name, attaches the refutation
/// diagnosis and reports to the metrics/trace layers.
CheckResult check_graph_impl(IsolationLevel level, const CompiledHistory& ch,
                             const CheckOptions& opts, GraphEffort& eff) {
  // Timestamp-requiring levels are unsatisfiable as soon as one transaction
  // is outside the time oracle (same convention as the exhaustive engine's
  // precheck). Gating here keeps the heuristic path below from "verifying"
  // an SSER candidate whose real-time clauses hold only vacuously because
  // the missing timestamps make every real-time predecessor set empty.
  if (ct::requires_timestamps(level)) {
    for (TxnIdx d = 0; d < ch.size(); ++d) {
      if (!ch.has_timestamps(d)) {
        CheckResult r{Outcome::kUnsatisfiable, std::nullopt,
                      std::string(ct::name_of(level)) +
                          " requires the time oracle; no timestamps on " +
                          crooks::to_string(ch.id_of(d)),
                      0};
        ReadDiagnosis diag;
        diag.txn = ch.id_of(d);
        diag.clause = r.detail;
        diag.candidate_execution = "time-oracle precheck (no candidate needed)";
        r.diagnosis = std::move(diag);
        return r;
      }
    }
  }

  // --- Timed SI family: C-ORD pins the execution to commit order. ---------
  if (level == IsolationLevel::kAnsiSI || level == IsolationLevel::kSessionSI ||
      level == IsolationLevel::kStrongSI) {
    auto order = commit_sorted(ch);
    if (!order.has_value()) {
      return {Outcome::kUnsatisfiable, std::nullopt,
              "C-ORD needs distinct commit timestamps", 0};
    }
    model::Execution e(ch.txns(), std::move(*order));
    eff.nodes += ch.size();
    ct::ExecutionVerdict v = verify_witness(level, ch, e);
    if (v.ok) {
      return {Outcome::kSatisfiable, std::move(e),
              "commit test passes on the commit-order execution (the only "
              "order satisfying C-ORD)",
              0};
    }
    return {Outcome::kUnsatisfiable, std::nullopt,
            "C-ORD pins the execution to commit-timestamp order, on which: " +
                v.explanation,
            0};
  }

  // --- Untimed levels with an authoritative version order: phenomena. -----
  if (opts.version_order != nullptr && level != IsolationLevel::kAdyaSI) {
    const adya::InstallOrders io = adya::compile_install_orders(ch, opts.version_order);
    // Level-scoped detection: asking about a weak level must not build the
    // SI-family start/real-time edge sets, which are Θ(n²) on serial
    // histories.
    const adya::Phenomena p = adya::detect(ch, io, level);
    const adya::Verdict verdict = adya::satisfies(p, level);
    if (verdict == adya::Verdict::kViolated) {
      // Cold path: lift into an Adya history only to render the diagnosis.
      adya::History h = adya::from_observations(ch.txns(), *opts.version_order);
      return {Outcome::kUnsatisfiable, std::nullopt,
              "under the system's install order: " + adya::explain_violation(h, level),
              0};
    }
    if (verdict == adya::Verdict::kSatisfied) {
      adya::Dsg dsg(ch, io);
      std::uint8_t mask = witness_mask(level);
      if (level == IsolationLevel::kStrictSerializable) {
        if (!dsg.add_realtime_edges(ch)) {
          return {Outcome::kUnsatisfiable, std::nullopt,
                  "StrictSerializable requires the time oracle", 0};
        }
      }
      std::vector<TxnId> order = topo_order(dsg, mask, ch, eff);
      if (!order.empty()) {
        return verified_sat(level, ch, std::move(order),
                            "witness from topological sort of the serialization "
                            "graph (no phenomena under the install order)",
                            eff);
      }
      return {Outcome::kUnknown, std::nullopt,
              "internal: phenomena absent but serialization graph cyclic", 0};
    }
    // kInapplicable (e.g. SSER without timestamps): fall through.
  }

  // --- Heuristic: try natural candidate orders, verify each. --------------
  std::vector<std::pair<std::string, std::vector<TxnId>>> candidates;
  if (auto cs = commit_sorted(ch); cs.has_value()) {
    candidates.emplace_back("commit-timestamp order", std::move(*cs));
  }
  {
    // Dependency topological order using the observations' wr edges plus
    // whatever ww edges a version order pins (if none: single-writer keys).
    try {
      const adya::InstallOrders io =
          adya::compile_install_orders(ch, opts.version_order);
      adya::Dsg dsg(ch, io);
      std::vector<TxnId> order =
          topo_order(dsg, level == IsolationLevel::kSerializable ||
                              level == IsolationLevel::kStrictSerializable
                          ? adya::kAllDsg
                          : adya::kDependency,
                     ch, eff);
      if (!order.empty()) candidates.emplace_back("dependency topological order", order);
    } catch (const std::invalid_argument&) {
      // multi-writer keys without version order: no dependency candidate
    }
  }

  for (auto& [how, order] : candidates) {
    model::Execution e(ch.txns(), std::move(order));
    eff.nodes += ch.size();
    if (verify_witness(level, ch, e).ok) {
      CheckResult r{Outcome::kSatisfiable, std::move(e),
                    "heuristic: " + how + " verified", 0};
      r.engine = "heuristic";
      return r;
    }
  }
  CheckResult r{Outcome::kUnknown, std::nullopt,
                "no candidate order verified; graph engine is incomplete here", 0};
  r.engine = "heuristic";
  return r;
}

/// Mixed-level graph engine. Three tiers, all per-transaction-verified:
///
///  * every level present in the timed SI family → C-ORD holds at *every*
///    placement, so the commit-sorted order is still the only candidate and
///    testing it (each transaction at its own level) is decisive;
///  * refutation at the meet of the present levels — each transaction's own
///    level is at least as strong as the meet (see ct::meet_of), so CT_{A(T)}
///    implies CT_meet transaction by transaction and "no execution satisfies
///    the meet uniformly" refutes the mix. A meet-level *witness* proves
///    nothing by itself and is demoted to a candidate;
///  * heuristic candidate orders verified against the per-transaction tests.
CheckResult check_graph_impl(const ct::LevelAssignment& levels,
                             const CompiledHistory& ch, const CheckOptions& opts,
                             GraphEffort& eff) {
  // Per-transaction timestamp precheck: only a transaction whose own level
  // is timed needs the oracle (same convention as the exhaustive engine).
  for (TxnIdx d = 0; d < ch.size(); ++d) {
    const IsolationLevel lvl = levels.of(d);
    if (!ct::requires_timestamps(lvl) || ch.has_timestamps(d)) continue;
    CheckResult r{Outcome::kUnsatisfiable, std::nullopt,
                  std::string(ct::name_of(lvl)) +
                      " requires the time oracle; no timestamps on " +
                      crooks::to_string(ch.id_of(d)),
                  0};
    ReadDiagnosis diag;
    diag.txn = ch.id_of(d);
    diag.clause = r.detail;
    diag.candidate_execution = "time-oracle precheck (no candidate needed)";
    diag.level = lvl;
    r.diagnosis = std::move(diag);
    return r;
  }

  if (levels.all_in({IsolationLevel::kAnsiSI, IsolationLevel::kSessionSI,
                     IsolationLevel::kStrongSI})) {
    auto order = commit_sorted(ch);
    if (!order.has_value()) {
      return {Outcome::kUnsatisfiable, std::nullopt,
              "C-ORD needs distinct commit timestamps", 0};
    }
    model::Execution e(ch.txns(), std::move(*order));
    eff.nodes += ch.size();
    ct::ExecutionVerdict v = verify_witness(levels, ch, e);
    if (v.ok) {
      return {Outcome::kSatisfiable, std::move(e),
              "per-transaction commit tests pass on the commit-order execution "
              "(every level present pins C-ORD)",
              0};
    }
    return {Outcome::kUnsatisfiable, std::nullopt,
            "C-ORD pins the execution to commit-timestamp order, on which: " +
                v.explanation,
            0};
  }

  // Meet-level tier. Genuinely mixed non-timed-SI assignments always meet at
  // an untimed level (no timed level sits below an untimed one in the
  // lattice), so this never trips the meet's own timestamp precheck.
  const IsolationLevel meet = levels.meet();
  CheckResult at_meet = check_graph(meet, ch, opts);
  eff.nodes += at_meet.nodes_explored;
  eff.edges += at_meet.edges_visited;
  if (at_meet.outcome == Outcome::kUnsatisfiable) {
    return {Outcome::kUnsatisfiable, std::nullopt,
            "refuted at the meet level " + std::string(ct::name_of(meet)) +
                " (every transaction's own level is at least as strong): " +
                at_meet.detail,
            0};
  }
  if (at_meet.outcome == Outcome::kSatisfiable && at_meet.witness.has_value()) {
    eff.nodes += ch.size();
    model::Execution e = *std::move(at_meet.witness);
    if (verify_witness(levels, ch, e).ok) {
      return {Outcome::kSatisfiable, std::move(e),
              "meet-level (" + std::string(ct::name_of(meet)) +
                  ") witness verified against the per-transaction commit tests",
              0};
    }
  }

  // Heuristic tier: natural candidate orders, each verified per transaction.
  std::vector<std::pair<std::string, std::vector<TxnId>>> candidates;
  if (auto cs = commit_sorted(ch); cs.has_value()) {
    candidates.emplace_back("commit-timestamp order", std::move(*cs));
  }
  try {
    const adya::InstallOrders io =
        adya::compile_install_orders(ch, opts.version_order);
    adya::Dsg dsg(ch, io);
    const std::uint8_t mask =
        levels.present(IsolationLevel::kSerializable) ||
                levels.present(IsolationLevel::kStrictSerializable)
            ? adya::kAllDsg
            : adya::kDependency;
    std::vector<TxnId> order = topo_order(dsg, mask, ch, eff);
    if (!order.empty()) candidates.emplace_back("dependency topological order", order);
  } catch (const std::invalid_argument&) {
    // multi-writer keys without version order: no dependency candidate
  }
  for (auto& [how, order] : candidates) {
    model::Execution e(ch.txns(), std::move(order));
    eff.nodes += ch.size();
    if (verify_witness(levels, ch, e).ok) {
      CheckResult r{Outcome::kSatisfiable, std::move(e),
                    "heuristic: " + how + " verified", 0};
      r.engine = "heuristic";
      return r;
    }
  }
  CheckResult r{Outcome::kUnknown, std::nullopt,
                "no candidate order verified; graph engine is incomplete for "
                "this level mix",
                0};
  r.engine = "heuristic";
  return r;
}

}  // namespace

CheckResult check_graph(IsolationLevel level, const CompiledHistory& ch,
                        const CheckOptions& opts) {
  if (ch.size() == 0) {
    return {Outcome::kSatisfiable, model::Execution::identity(ch.txns()), "empty set", 0};
  }
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  static obs::Histogram& graph_latency = engine_obs::check_latency("graph");
  static obs::Counter& edges_total = obs::Registry::global().counter(
      "crooks_graph_edges_visited_total",
      "Serialization-graph edges walked by the graph engine");
  obs::TraceSpan span("engine.graph");
  obs::ScopedTimer timer(graph_latency);
  GraphEffort eff;
  CheckResult result = check_graph_impl(level, ch, opts, eff);
  result.nodes_explored = eff.nodes;
  result.edges_visited = eff.edges;
  if (result.engine.empty()) result.engine = "graph";
  if (result.unsatisfiable() && !result.diagnosis) {
    result.diagnosis = explain_refutation(level, ch);
  }
  if (obs::enabled()) {
    engine_obs::checks_counter(result.engine, result.outcome).inc();
    if (eff.edges != 0) edges_total.inc(eff.edges);
  }
  span.field("level", ct::name_of(level))
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("engine", result.engine)
      .field("nodes", eff.nodes)
      .field("edges", eff.edges)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

CheckResult check_graph(IsolationLevel level, const model::TransactionSet& txns,
                        const CheckOptions& opts) {
  const CompiledHistory ch(txns);
  return check_graph(level, ch, opts);
}

CheckResult check_graph(const ct::LevelAssignment& levels, const CompiledHistory& ch,
                        const CheckOptions& opts) {
  if (levels.is_uniform()) return check_graph(levels.fallback(), ch, opts);
  if (ch.size() == 0) {
    return {Outcome::kSatisfiable, model::Execution::identity(ch.txns()), "empty set", 0};
  }
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  static obs::Histogram& graph_latency = engine_obs::check_latency("graph");
  obs::TraceSpan span("engine.graph");
  obs::ScopedTimer timer(graph_latency);
  GraphEffort eff;
  CheckResult result = check_graph_impl(levels, ch, opts, eff);
  result.nodes_explored = eff.nodes;
  result.edges_visited = eff.edges;
  if (result.engine.empty()) result.engine = "graph";
  if (result.unsatisfiable() && !result.diagnosis) {
    result.diagnosis = explain_refutation(levels, ch);
  }
  if (obs::enabled()) {
    engine_obs::checks_counter(result.engine, result.outcome).inc();
  }
  span.field("level", levels.describe())
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("engine", result.engine)
      .field("nodes", eff.nodes)
      .field("edges", eff.edges)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

namespace {

CheckResult check_dispatch(IsolationLevel level, const CompiledHistory& ch,
                           const CheckOptions& opts) {
  // Explicit engine selection bypasses the tiering and reports the chosen
  // engine's verdict as-is (possibly kUnknown — forcing is honest, never a
  // silent substitution).
  switch (opts.engine) {
    case EngineSelect::kDirect: return check_direct(level, ch, opts);
    case EngineSelect::kGraph: return check_graph(level, ch, opts);
    case EngineSelect::kExhaustive: return check_exhaustive(level, ch, opts);
    case EngineSelect::kAuto: break;
  }

  // Direct tier first: near-linear single-pass decision for the weak levels.
  // Complete for RC/RA; kUnknown only on an oversized undecided PSI instance,
  // which falls through to the complete engines below.
  if (direct_eligible(level)) {
    CheckResult r = check_direct(level, ch, opts);
    if (r.outcome != Outcome::kUnknown) return r;
  }

  // Complete graph decisions next (polynomial).
  const bool timed_pinned = level == IsolationLevel::kAnsiSI ||
                            level == IsolationLevel::kSessionSI ||
                            level == IsolationLevel::kStrongSI;
  const bool vo_complete =
      opts.version_order != nullptr &&
      (level == IsolationLevel::kReadUncommitted ||
       level == IsolationLevel::kReadCommitted ||
       level == IsolationLevel::kReadAtomic || level == IsolationLevel::kPSI ||
       level == IsolationLevel::kSerializable ||
       level == IsolationLevel::kStrictSerializable);

  if (timed_pinned || vo_complete) {
    CheckResult r = check_graph(level, ch, opts);
    if (r.outcome != Outcome::kUnknown) return r;
  }
  if (ch.size() <= opts.exhaustive_threshold) {
    return check_exhaustive(level, ch, opts);
  }
  CheckResult r = check_graph(level, ch, opts);
  if (r.outcome != Outcome::kUnknown) return r;

  // Hierarchy inference for the one large-instance gap: timestamp-free
  // Adya SI has no complete polynomial procedure here, but the lattice is
  // sound in both directions — a serializable witness also witnesses SI
  // (SER ⇒ AdyaSI), and an unsatisfiable PSI refutes SI (AdyaSI ⇒ PSI).
  if (level == IsolationLevel::kAdyaSI) {
    CheckResult ser = check_graph(IsolationLevel::kSerializable, ch, opts);
    if (ser.outcome == Outcome::kSatisfiable &&
        verify_witness(level, ch, *ser.witness).ok) {
      ser.detail += " (serializable witness also satisfies CT_SI)";
      ser.engine = "hierarchy";
      return ser;
    }
    CheckResult psi = check_graph(IsolationLevel::kPSI, ch, opts);
    if (psi.outcome == Outcome::kUnsatisfiable) {
      psi.detail = "refuted via the hierarchy (AdyaSI ⇒ PSI): " + psi.detail;
      psi.engine = "hierarchy";
      return psi;
    }
  }

  // Last resort: bounded exhaustive search may still find a witness quickly
  // (the candidate ordering starts from commit order).
  return check_exhaustive(level, ch, opts);
}

/// Mixed-level tiering. Same shape as the global-level dispatch: direct when
/// every level present is direct-eligible, the decisive graph path when the
/// whole assignment pins C-ORD, then the complete exhaustive search (bounded
/// by the threshold), with the graph engine's meet-refutation/heuristic tier
/// covering large instances before the final exhaustive resort.
CheckResult check_dispatch(const ct::LevelAssignment& levels,
                           const CompiledHistory& ch, const CheckOptions& opts) {
  switch (opts.engine) {
    case EngineSelect::kDirect: return check_direct(levels, ch, opts);
    case EngineSelect::kGraph: return check_graph(levels, ch, opts);
    case EngineSelect::kExhaustive: return check_exhaustive(levels, ch, opts);
    case EngineSelect::kAuto: break;
  }

  if (direct_eligible(levels)) {
    CheckResult r = check_direct(levels, ch, opts);
    if (r.outcome != Outcome::kUnknown) return r;
  }

  if (levels.all_in({IsolationLevel::kAnsiSI, IsolationLevel::kSessionSI,
                     IsolationLevel::kStrongSI})) {
    CheckResult r = check_graph(levels, ch, opts);
    if (r.outcome != Outcome::kUnknown) return r;
  }

  if (ch.size() <= opts.exhaustive_threshold) {
    return check_exhaustive(levels, ch, opts);
  }
  CheckResult r = check_graph(levels, ch, opts);
  if (r.outcome != Outcome::kUnknown) return r;
  return check_exhaustive(levels, ch, opts);
}

}  // namespace

CheckResult check(IsolationLevel level, const CompiledHistory& ch,
                  const CheckOptions& opts) {
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  obs::TraceSpan span("check.dispatch");
  CheckResult result = check_dispatch(level, ch, opts);
  span.field("level", ct::name_of(level))
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("engine", result.engine)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

CheckResult check(IsolationLevel level, const model::TransactionSet& txns,
                  const CheckOptions& opts) {
  const CompiledHistory ch(txns);
  return check(level, ch, opts);
}

CheckResult check(const ct::LevelAssignment& levels, const CompiledHistory& ch,
                  const CheckOptions& opts) {
  // A uniform assignment IS the global-level question; delegating keeps the
  // two APIs verdict-, witness- and diagnosis-identical by construction.
  if (levels.is_uniform()) return check(levels.fallback(), ch, opts);
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  obs::TraceSpan span("check.dispatch");
  CheckResult result = check_dispatch(levels, ch, opts);
  span.field("level", levels.describe())
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("engine", result.engine)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

CheckResult check(const ct::LevelAssignment& levels, const model::TransactionSet& txns,
                  const CheckOptions& opts) {
  const CompiledHistory ch(txns);
  return check(levels, ch, opts);
}

}  // namespace crooks::checker
