// Exhaustive branch-and-bound search for a witness execution.
//
// The key fact making prefix pruning sound: once a transaction is placed at
// the end of the current prefix, every quantity its commit test depends on is
// already fixed — read-state intervals only reference states up to the
// parent, NO-CONF windows end at the parent, PREC sets only contain earlier
// transactions, and the real-time/session clauses are handled by requiring
// the quantified predecessors to be placed first. Appending more transactions
// later can never change a placed transaction's verdict, so a failing
// placement prunes the whole subtree, and a fully built order in which every
// placement passed is a genuine witness.
//
// The search runs entirely on the CompiledHistory form: operations are
// pre-classified (phantom / internal / unknown writer), writers and keys are
// dense indices, and the per-node state — timelines, version-order cursors,
// footprints, real-time/session predecessor counts — lives in flat vectors
// indexed by KeyIdx/TxnIdx. No hash map or hash set is touched between nodes.
//
// Mixed-level mode: the commit test is modular in T, so a per-transaction
// assignment only changes *which* test gates each placement — admissible()
// dispatches on the candidate's own level and the pruning argument above is
// unchanged (a placed transaction's verdict at its own level is fixed by the
// prefix). Two bookkeeping differences: the timestamp precheck applies per
// transaction (only transactions whose own level is timed need the oracle),
// and when PSI is present alongside other levels the PREC sets must be
// maintained for *every* placed transaction, not just the PSI ones — a PSI
// transaction's CAUS-VIS clause folds in the transitive closure through its
// non-PSI predecessors (see build_prec). Uniform assignments never take any
// of these paths, so the global-level behavior is untouched.
//
// Parallel mode (opts.threads != 1, |𝒯| ≥ kMinParallelSize): the n disjoint
// top-level prefix branches — "transaction d is placed first" — partition the
// whole search tree, so each branch is handed to a pool worker as an
// independent search seeded with that first placement. Coordination is one
// atomic first-witness flag; every branch runs under the full node budget and
// the per-branch outcomes are combined by a fixed rule (see run_parallel), so
// the verdict is a deterministic function of the input even though witness
// choice and nodes_explored may vary with scheduling.
#include <algorithm>
#include <atomic>

#include "checker/checker.hpp"
#include "checker/engine_obs.hpp"
#include "common/bitset.hpp"
#include "common/thread_pool.hpp"
#include "model/compiled.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::checker {

namespace {

using ct::IsolationLevel;
using model::CompiledHistory;
using model::KeyIdx;
using model::OpClass;
using model::TxnIdx;

/// Below this size a search finishes in microseconds; spawning workers only
/// adds noise (and would make the tiny fixtures' witness shapes and node
/// counts scheduling-dependent).
constexpr std::size_t kMinParallelSize = 4;

/// Why a candidate placement was rejected — the prune-reason taxonomy the
/// metrics layer exports. The hot loop pays one local array increment per
/// prune; the aggregate is flushed to the registry once per (branch) search.
enum class Prune : std::uint8_t {
  kVersionOrder,      // not the key's next installer under the version order
  kPreread,           // some read has no candidate read state
  kFractured,         // RA: fractured read across a writer's keys
  kCausVis,           // PSI: a ▷-predecessor's write is invisible
  kIncompleteParent,  // SER/SSER: parent state not complete
  kRealTime,          // SSER/StrongSI: real-time predecessor unplaced
  kSession,           // SessionSI: session predecessor unplaced
  kCOrd,              // timed SI: placement out of commit order
  kNoSnapshot,        // SI family: COMPLETE ∩ NO-CONF ∩ bounds empty
  kCount_
};
constexpr std::size_t kPruneKinds = static_cast<std::size_t>(Prune::kCount_);

constexpr const char* kPruneNames[kPruneKinds] = {
    "version_order", "preread",  "fractured", "caus_vis", "incomplete_parent",
    "real_time",     "session",  "c_ord",     "no_snapshot"};

struct SearchMetrics {
  obs::Counter& nodes;
  obs::Counter* prunes[kPruneKinds];
  obs::Histogram& backtrack_depth;

  static SearchMetrics& get() {
    static SearchMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      SearchMetrics init{
          r.counter("crooks_search_nodes_total",
                    "Placements examined by the exhaustive engine"),
          {},
          r.histogram("crooks_search_backtrack_depth",
                      "Prefix depth at which the exhaustive search backtracked",
                      obs::depth_buckets())};
      for (std::size_t i = 0; i < kPruneKinds; ++i) {
        init.prunes[i] = &r.counter("crooks_search_prunes_total",
                                    "Subtrees pruned by the exhaustive engine, "
                                    "by violated clause",
                                    {{"reason", kPruneNames[i]}});
      }
      return init;
    }();
    return m;
  }
};

class PrefixSearch {
 public:
  PrefixSearch(IsolationLevel level, const CompiledHistory& ch, const CheckOptions& opts)
      : level_(level),
        ch_(&ch),
        adj_(&ch.adjacency()),
        candidates_(&ch.ts_order()),
        max_nodes_(opts.max_nodes),
        n_(ch.size()) {
    // Optional version-order restriction: a transaction writing key k may
    // only be placed when it is the next not-yet-placed installer of k. A key
    // present in the version order restricts its writers even when none of
    // its named installers belong to the set (an empty compiled sequence
    // blocks every writer of the key, exactly like the pre-compile engine).
    if (opts.version_order != nullptr && !opts.version_order->empty()) {
      vo_active_ = true;
      vo_has_.assign(ch.key_count(), false);
      vo_seq_.resize(ch.key_count());
      vo_next_.assign(ch.key_count(), 0);
      for (const auto& [key, installers] : *opts.version_order) {
        const KeyIdx k = ch.keys().find(key);
        if (k == model::kNoKeyIdx) continue;  // key never touched by the set
        vo_has_[k] = true;
        for (TxnId id : installers) {
          if (ch.txns().contains(id)) {
            vo_seq_[k].push_back(static_cast<TxnIdx>(ch.txns().dense_index_of(id)));
          }
        }
      }
    }
    pos_.assign(n_, 0);
    prec_.assign(n_, DynamicBitset(n_));
    timelines_.resize(ch.key_count());
    remaining_rt_.resize(n_);
    remaining_sess_.resize(n_);
    for (TxnIdx d = 0; d < n_; ++d) {
      remaining_rt_[d] = adj_->rt_preds.row_size(d);
      remaining_sess_[d] = adj_->sess_preds.row_size(d);
    }
  }

  /// Mixed-level search: each candidate placement is gated by that
  /// transaction's own commit test. The caller keeps `levels` alive for the
  /// whole search (branch copies share the pointer). Uniform assignments are
  /// expected to go through the level ctor instead (check_exhaustive
  /// delegates), but are handled correctly here too.
  PrefixSearch(const ct::LevelAssignment& levels, const CompiledHistory& ch,
               const CheckOptions& opts)
      : PrefixSearch(levels.fallback(), ch, opts) {
    if (!levels.is_uniform()) {
      levels_ = &levels;
      need_prec_ = levels.present(IsolationLevel::kPSI);
    }
  }

  CheckResult run() {
    if (auto pre = timestamps_precheck()) return *std::move(pre);
    CheckResult result;
    if (dfs()) {
      std::vector<TxnId> ids;
      ids.reserve(order_.size());
      for (TxnIdx d : order_) ids.push_back(ch_->id_of(d));
      result = {Outcome::kSatisfiable, model::Execution(ch_->txns(), std::move(ids)),
                "witness found by exhaustive search", nodes_};
    } else if (nodes_ >= max_nodes_) {
      result = {Outcome::kUnknown, std::nullopt, "search budget exhausted", nodes_};
    } else {
      result = {Outcome::kUnsatisfiable, std::nullopt,
                "exhaustive search: no execution satisfies the commit test", nodes_};
    }
    flush_metrics();
    return result;
  }

  /// Branch-parallel search over the top-level prefix branches.
  ///
  /// Determinism: each branch (a copy of the root search with candidate i
  /// forced first) runs under the full max_nodes cap, so its outcome —
  /// refuted, witness, or cap hit — is a pure function of the input. The
  /// combination rule below is a pure function of those outcomes:
  ///   * any branch holds a witness            → kSatisfiable
  ///   * no witness, no cap hit, Σnodes < cap  → kUnsatisfiable
  ///   * otherwise                             → kUnknown
  /// First-witness early termination (the shared `cancel` flag) is sound
  /// under this rule: a branch is only ever cancelled by a witness elsewhere,
  /// which already fixes the verdict at kSatisfiable. When no branch contains
  /// a witness nothing is ever cancelled, so the refutation/budget outcomes
  /// are exactly the sequential ones and Σnodes equals the sequential node
  /// count. The verdict therefore agrees with run() whenever run() is
  /// definite; on budget-limited instances the parallel engine may upgrade
  /// run()'s kUnknown to kSatisfiable (never the reverse).
  CheckResult run_parallel(std::size_t threads) {
    if (auto pre = timestamps_precheck()) return *std::move(pre);
    std::vector<BranchOutcome> outcomes(n_);
    std::atomic<bool> cancel{false};
    {
      ThreadPool pool(std::min(threads, static_cast<std::size_t>(n_)));
      for (std::size_t i = 0; i < n_; ++i) {
        pool.submit([this, i, &outcomes, &cancel] {
          if (cancel.load(std::memory_order_relaxed)) return;  // stays kCancelled
          PrefixSearch branch(*this);
          outcomes[i] = branch.run_branch((*candidates_)[i], &cancel);
          if (outcomes[i].kind == BranchOutcome::Kind::kWitness) {
            cancel.store(true, std::memory_order_relaxed);
          }
        });
      }
      pool.wait();
    }

    std::uint64_t total = 0;
    for (const BranchOutcome& o : outcomes) total += o.nodes;
    for (BranchOutcome& o : outcomes) {
      if (o.kind == BranchOutcome::Kind::kWitness) {
        return {Outcome::kSatisfiable, model::Execution(ch_->txns(), std::move(o.order)),
                "witness found by parallel exhaustive search", total};
      }
    }
    bool capped = false;
    for (const BranchOutcome& o : outcomes) {
      capped |= o.kind == BranchOutcome::Kind::kCapped;
    }
    if (capped || total >= max_nodes_) {
      return {Outcome::kUnknown, std::nullopt, "search budget exhausted", total};
    }
    return {Outcome::kUnsatisfiable, std::nullopt,
            "exhaustive search: no execution satisfies the commit test", total};
  }

 private:
  struct OpInterval {
    StateIndex sf = 0;
    StateIndex sl = -1;
    bool empty() const { return sf > sl; }
  };

  /// What one top-level prefix branch concluded about its subtree.
  struct BranchOutcome {
    enum class Kind : std::uint8_t {
      kCancelled,  // skipped/aborted because another branch found a witness
      kRefuted,    // subtree fully explored, no witness
      kWitness,    // `order` is a complete passing execution
      kCapped,     // hit the per-branch node cap
    };
    Kind kind = Kind::kCancelled;
    std::uint64_t nodes = 0;
    std::vector<TxnId> order;
  };

  /// kUnsatisfiable early-out shared by run()/run_parallel(): a transaction
  /// whose own level is timed needs timestamps. Under a uniform timed level
  /// that is every transaction (the original global-level precheck); under a
  /// mixed assignment only the timed-level transactions are constrained.
  std::optional<CheckResult> timestamps_precheck() const {
    if (levels_ == nullptr && !ct::requires_timestamps(level_)) return std::nullopt;
    for (TxnIdx d = 0; d < n_; ++d) {
      const IsolationLevel lvl = level_of(d);
      if (!ct::requires_timestamps(lvl)) continue;
      if (!ch_->has_timestamps(d)) {
        CheckResult r{Outcome::kUnsatisfiable, std::nullopt,
                      std::string(ct::name_of(lvl)) +
                          " requires the time oracle but " +
                          crooks::to_string(ch_->id_of(d)) + " has no timestamps",
                      0};
        ReadDiagnosis diag;
        diag.txn = ch_->id_of(d);
        diag.clause = r.detail;
        diag.candidate_execution = "time-oracle precheck (no candidate needed)";
        diag.level = lvl;
        r.diagnosis = std::move(diag);
        return r;
      }
    }
    return std::nullopt;
  }

  /// Explore the subtree rooted at placing `root` first. Charges the root
  /// try exactly like the sequential top-level loop (one node, admissibility
  /// gate), so in the no-witness case Σ branch nodes == sequential nodes.
  BranchOutcome run_branch(TxnIdx root, const std::atomic<bool>* cancel) {
    cancel_ = cancel;
    bool found = false;
    ++nodes_;
    if (!vo_admissible(root)) {
      ++prunes_[static_cast<std::size_t>(Prune::kVersionOrder)];
    } else if (!admissible(root)) {
      ++prunes_[static_cast<std::size_t>(prune_)];
    } else {
      place(root);
      found = dfs();
    }
    flush_metrics();
    BranchOutcome out;
    out.nodes = nodes_;
    if (found) {
      out.kind = BranchOutcome::Kind::kWitness;
      out.order.reserve(order_.size());
      for (TxnIdx d : order_) out.order.push_back(ch_->id_of(d));
    } else if (cancelled_) {
      out.kind = BranchOutcome::Kind::kCancelled;
    } else if (nodes_ >= max_nodes_) {
      out.kind = BranchOutcome::Kind::kCapped;
    } else {
      out.kind = BranchOutcome::Kind::kRefuted;
    }
    return out;
  }

  bool placed(TxnIdx d) const { return pos_[d] != 0; }

  /// Read-state interval of op `i` of the viewed transaction if placed now.
  /// Reads the flags byte first and touches the writer / key arrays only for
  /// the classes that need them — the SoA layout makes that selective. The
  /// next write after the version is found by scanning the key's timeline
  /// backwards: reads usually observe a recent version, so the scan exits
  /// after a compare or two where a binary search pays its full log cost.
  OpInterval interval_of(const model::OpsView& ops, std::size_t i,
                         StateIndex parent) const {
    StateIndex version_pos = 0;
    switch (ops.cls(i)) {
      case OpClass::kWrite:
      case OpClass::kReadInternal:
        return {0, parent};
      case OpClass::kReadNever:
        return {0, -1};
      case OpClass::kReadInitial:
        version_pos = 0;
        break;
      case OpClass::kReadExternal: {
        const TxnIdx w = ops.writer(i);
        if (!placed(w)) return {0, -1};
        version_pos = pos_[w];
        break;
      }
    }
    const auto& tl = timelines_[ops.key(i)];
    StateIndex next_write = parent + 2;
    for (auto it = tl.rbegin(); it != tl.rend() && it->first > version_pos; ++it) {
      next_write = it->first;
    }
    return {version_pos, std::min(next_write - 1, parent)};
  }

  /// PREREAD alone (the whole RC test): every read names a version that
  /// exists in the prefix — the initial state, the transaction itself, or a
  /// *placed* member writer. A placed version's interval [pos_w, …] is never
  /// empty (the next write of the key is strictly later and parent ≥ pos_w),
  /// so emptiness can only come from kReadNever or an unplaced external
  /// writer: no timeline is touched at all.
  bool readable(const model::OpsView& ops) const {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      switch (ops.cls(i)) {
        case OpClass::kWrite:
        case OpClass::kReadInternal:
        case OpClass::kReadInitial:
          break;
        case OpClass::kReadNever:
          return false;
        case OpClass::kReadExternal:
          if (!placed(ops.writer(i))) return false;
          break;
      }
    }
    return true;
  }

  /// COMPLETE at the parent state (the SER/SSER test, given that every
  /// interval's sf is ≤ parent by construction): each read's interval must
  /// reach the parent, i.e. no placed write of the key is newer than the
  /// version read — every read observes the key's latest placed version.
  /// One flags byte and at most one probe of the timeline's back per op;
  /// the interval search is not needed for this special case.
  bool reads_latest(const model::OpsView& ops) const {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      StateIndex version_pos = 0;
      switch (ops.cls(i)) {
        case OpClass::kWrite:
        case OpClass::kReadInternal:
          continue;
        case OpClass::kReadNever:
          return false;
        case OpClass::kReadInitial:
          version_pos = 0;
          break;
        case OpClass::kReadExternal: {
          const TxnIdx w = ops.writer(i);
          if (!placed(w)) return false;
          version_pos = pos_[w];
          break;
        }
      }
      const auto& tl = timelines_[ops.key(i)];
      if (!tl.empty() && tl.back().first > version_pos) return false;
    }
    return true;
  }

  /// Fill scratch_ with every op's read-state interval, stopping at the
  /// first empty one (PREREAD fails; the RA/PSI passes that consume scratch_
  /// never run on a failed PREREAD, so the partial fill is fine).
  bool fill_scratch(const model::OpsView& ops, StateIndex parent) {
    scratch_.resize(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      scratch_[i] = interval_of(ops, i, parent);
      if (scratch_[i].empty()) return false;
    }
    return true;
  }

  /// Does placing `d` now respect the version-order restriction?
  bool vo_admissible(TxnIdx d) const {
    if (!vo_active_) return true;
    for (KeyIdx k : ch_->write_keys(d)) {
      if (!vo_has_[k]) continue;
      const std::size_t next = vo_next_[k];
      if (next >= vo_seq_[k].size() || vo_seq_[k][next] != d) return false;
    }
    return true;
  }

  /// The level the candidate's commit test runs at: its assigned level under
  /// a mixed assignment, the search's global level otherwise.
  IsolationLevel level_of(TxnIdx d) const {
    return levels_ != nullptr ? levels_->of(d) : level_;
  }

  /// Evaluate CT_{A(T)}(T, prefix + T). Each level runs only the interval
  /// work its commit test consumes: RC needs no timelines (readable), SER /
  /// SSER one back-probe per read (reads_latest), the SI family the interval
  /// bounds but no scratch_, and only RA / PSI fill scratch_ for the
  /// fragment / causal-visibility passes. Verdicts, prune reasons and node
  /// counts are identical to evaluating every test from a full interval
  /// sweep — the differential suites hold each engine to that.
  bool admissible(TxnIdx d) {
    const model::OpsView cops = ch_->ops(d);
    const StateIndex parent = static_cast<StateIndex>(order_.size());

    switch (level_of(d)) {
      case IsolationLevel::kReadUncommitted:
        return true;
      case IsolationLevel::kReadCommitted:
        return readable(cops) || prune(Prune::kPreread);
      case IsolationLevel::kReadAtomic:
        if (!fill_scratch(cops, parent)) return prune(Prune::kPreread);
        return !fractured(d) || prune(Prune::kFractured);
      case IsolationLevel::kPSI:
        if (!fill_scratch(cops, parent)) return prune(Prune::kPreread);
        return caus_vis(d) || prune(Prune::kCausVis);
      case IsolationLevel::kSerializable:
        return reads_latest(cops) || prune(Prune::kIncompleteParent);
      case IsolationLevel::kStrictSerializable:
        if (!reads_latest(cops)) return prune(Prune::kIncompleteParent);
        return remaining_rt_[d] == 0 || prune(Prune::kRealTime);
      case IsolationLevel::kAdyaSI:
      case IsolationLevel::kAnsiSI:
      case IsolationLevel::kSessionSI:
      case IsolationLevel::kStrongSI: {
        StateIndex complete_lo = 0, complete_hi = parent;
        for (std::size_t i = 0; i < cops.size(); ++i) {
          const OpInterval iv = interval_of(cops, i, parent);
          complete_lo = std::max(complete_lo, iv.sf);
          complete_hi = std::min(complete_hi, iv.sl);
        }
        return si_family(level_of(d), d, parent, complete_lo, complete_hi);
      }
    }
    return false;
  }

  /// Record why the current placement failed; always false so the switch in
  /// admissible() reads as `passes || prune(reason)`.
  bool prune(Prune reason) const {
    prune_ = reason;
    return false;
  }

  /// Non-internal external read of a member writer. Under PREREAD (the only
  /// context fractured()/caus_vis() run in) this is exactly the pre-compile
  /// "is_read && !is_internal && writer != ⊥" predicate.
  static bool external_read(std::uint8_t flags) {
    return model::op_class_of(flags) == OpClass::kReadExternal &&
           (flags & model::kOpPositionalInternal) == 0;
  }

  bool fractured(TxnIdx d) const {
    const model::OpsView cops = ch_->ops(d);
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if (!external_read(cops.flags(i))) continue;
      const TxnIdx w1 = cops.writer(i);
      for (std::size_t j = 0; j < cops.size(); ++j) {
        const std::uint8_t m2 = cops.flags(j);
        if ((m2 & model::kOpWrite) != 0 ||
            (m2 & model::kOpPositionalInternal) != 0) {
          continue;
        }
        if (ch_->writes_key(w1, cops.key(j)) && scratch_[i].sf > scratch_[j].sf) {
          return true;
        }
      }
    }
    return false;
  }

  bool caus_vis(TxnIdx d) {
    const model::OpsView cops = ch_->ops(d);
    // Assemble PREC_e(T) from the already-placed predecessors.
    DynamicBitset& prec = prec_[d];
    prec = DynamicBitset(n_);
    auto absorb = [&](TxnIdx pd) {
      prec.set(pd);
      prec.or_with(prec_[pd]);
    };
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if (external_read(cops.flags(i))) absorb(cops.writer(i));  // placed: preread holds
    }
    for (KeyIdx k : ch_->write_keys(d)) {
      for (const auto& [pos, wd] : timelines_[k]) absorb(wd);
    }
    // ∀T' ▷ T, ∀o: o.k ∈ W_{T'} ⇒ s_{T'} →* sl_o.
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & model::kOpWrite) != 0 ||
          (m & model::kOpPositionalInternal) != 0) {
        continue;
      }
      for (const auto& [pos, wd] : timelines_[cops.key(i)]) {
        if (pos > scratch_[i].sl && prec.test(wd)) return false;
      }
    }
    return true;
  }

  bool si_family(IsolationLevel level, TxnIdx d, StateIndex parent,
                 StateIndex complete_lo, StateIndex complete_hi) const {
    const bool timed = level != IsolationLevel::kAdyaSI;

    if (timed) {
      // C-ORD(T_{s_p}, T): commit order along the execution. The parent must
      // itself be timestamped — under a uniform timed level the precheck
      // guarantees that, but a mixed prefix may hold untimed transactions,
      // and the canonical tester treats an untimed parent as out of order.
      if (!order_.empty() &&
          !(ch_->commit_ts(order_.back()) != kNoTimestamp &&
            ch_->commit_ts(order_.back()) < ch_->commit_ts(d))) {
        return prune(Prune::kCOrd);
      }
    }
    if (level == IsolationLevel::kStrictSerializable ||
        level == IsolationLevel::kStrongSI) {
      if (remaining_rt_[d] != 0) return prune(Prune::kRealTime);
    }
    if (level == IsolationLevel::kSessionSI && remaining_sess_[d] != 0) {
      return prune(Prune::kSession);
    }

    StateIndex lower = 0;
    if (level == IsolationLevel::kStrongSI) {
      for (TxnIdx p : adj_->rt_preds.row(d)) lower = std::max(lower, pos_[p]);
    } else if (level == IsolationLevel::kSessionSI) {
      for (TxnIdx p : adj_->sess_preds.row(d)) lower = std::max(lower, pos_[p]);
    }

    // NO-CONF: last prefix write of any key in W_T.
    StateIndex no_conf = 0;
    for (KeyIdx k : ch_->write_keys(d)) {
      const auto& tl = timelines_[k];
      if (!tl.empty()) no_conf = std::max(no_conf, tl.back().first);
    }

    const StateIndex lo = std::max({complete_lo, no_conf, lower});
    const StateIndex hi = std::min(complete_hi, parent);
    if (lo > hi) return prune(Prune::kNoSnapshot);
    if (!timed) return true;

    for (StateIndex s = hi; s >= lo; --s) {
      if (s == 0) return true;
      const TxnIdx gen = order_[static_cast<std::size_t>(s) - 1];
      if (ch_->time_precedes(gen, d)) return true;
    }
    return prune(Prune::kNoSnapshot);
  }

  /// PREC_e(T) for a transaction being placed at the end of the prefix,
  /// mirroring model::ReadStateAnalysis::precedence(): direct edges are the
  /// placed writers this transaction externally reads (an unplaced writer
  /// means an empty read state, which contributes no edge) plus every earlier
  /// writer of a key it writes; the transitive closure folds in each direct
  /// predecessor's already-complete set. Only needed when a mixed assignment
  /// contains PSI — a later PSI candidate's CAUS-VIS clause may reach through
  /// this transaction regardless of its own level. (PSI candidates build
  /// their set inside caus_vis, where PREREAD already guarantees the writers
  /// are placed.)
  void build_prec(TxnIdx d) {
    DynamicBitset& prec = prec_[d];
    prec = DynamicBitset(n_);
    auto absorb = [&](TxnIdx pd) {
      prec.set(pd);
      prec.or_with(prec_[pd]);
    };
    const model::OpsView cops = ch_->ops(d);
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if (external_read(cops.flags(i)) && placed(cops.writer(i))) {
        absorb(cops.writer(i));
      }
    }
    for (KeyIdx k : ch_->write_keys(d)) {
      for (const auto& [pos, wd] : timelines_[k]) absorb(wd);
    }
  }

  void place(TxnIdx d) {
    if (need_prec_ && level_of(d) != IsolationLevel::kPSI) build_prec(d);
    order_.push_back(d);
    pos_[d] = static_cast<StateIndex>(order_.size());
    for (KeyIdx k : ch_->write_keys(d)) {
      timelines_[k].emplace_back(pos_[d], d);
      if (vo_active_ && vo_has_[k]) ++vo_next_[k];
    }
    for (TxnIdx s : adj_->rt_succs.row(d)) --remaining_rt_[s];
    for (TxnIdx s : adj_->sess_succs.row(d)) --remaining_sess_[s];
  }

  void unplace() {
    const TxnIdx d = order_.back();
    order_.pop_back();
    pos_[d] = 0;
    for (KeyIdx k : ch_->write_keys(d)) {
      timelines_[k].pop_back();
      if (vo_active_ && vo_has_[k]) --vo_next_[k];
    }
    for (TxnIdx s : adj_->rt_succs.row(d)) ++remaining_rt_[s];
    for (TxnIdx s : adj_->sess_succs.row(d)) ++remaining_sess_[s];
  }

  bool dfs() {
    if (order_.size() == n_) return true;
    if (nodes_ >= max_nodes_) return false;
    if (cancel_ != nullptr && (nodes_ & 1023) == 0 &&
        cancel_->load(std::memory_order_relaxed)) {
      cancelled_ = true;
      return false;
    }
    for (TxnIdx d : *candidates_) {
      if (placed(d)) continue;
      ++nodes_;
      if (!vo_admissible(d)) {
        ++prunes_[static_cast<std::size_t>(Prune::kVersionOrder)];
        continue;
      }
      if (!admissible(d)) {
        ++prunes_[static_cast<std::size_t>(prune_)];
        continue;
      }
      place(d);
      if (dfs()) return true;
      ++depth_counts_[order_.size()];  // length of the abandoned prefix
      unplace();
      if (cancelled_ || nodes_ >= max_nodes_) return false;
    }
    return false;
  }

  /// Push the locally accumulated effort counters to the global registry.
  /// Called once per search (per branch in parallel mode) so the dfs hot loop
  /// never touches an atomic.
  void flush_metrics() {
    if (!obs::enabled()) return;
    SearchMetrics& m = SearchMetrics::get();
    if (nodes_ != 0) m.nodes.inc(nodes_);
    for (std::size_t i = 0; i < kPruneKinds; ++i) {
      if (prunes_[i] != 0) m.prunes[i]->inc(prunes_[i]);
    }
    for (std::size_t depth = 0; depth < depth_counts_.size(); ++depth) {
      if (depth_counts_[depth] != 0) {
        m.backtrack_depth.observe_n(static_cast<double>(depth),
                                    depth_counts_[depth]);
      }
    }
  }

  IsolationLevel level_;
  /// Non-null iff genuinely mixed; level_of() then dispatches per candidate.
  const ct::LevelAssignment* levels_ = nullptr;
  /// Mixed with PSI present: maintain PREC for every placed transaction.
  bool need_prec_ = false;
  const CompiledHistory* ch_;
  const CompiledHistory::Adjacency* adj_;
  const std::vector<TxnIdx>* candidates_;  // ch_->ts_order(): fixed SWO comparator
  std::uint64_t max_nodes_;
  std::size_t n_;
  std::uint64_t nodes_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;  // set on branch copies only
  bool cancelled_ = false;

  // Local effort accounting, flushed to the registry by flush_metrics().
  mutable Prune prune_ = Prune::kPreread;   // reason of the latest rejection
  std::uint64_t prunes_[kPruneKinds] = {};  // prune tally by reason
  std::vector<std::uint64_t> depth_counts_ =
      std::vector<std::uint64_t>(n_ + 1, 0);  // backtracks by prefix depth

  std::vector<TxnIdx> order_;
  std::vector<StateIndex> pos_;  // 0 = unplaced, else 1-based state index
  std::vector<std::vector<std::pair<StateIndex, TxnIdx>>> timelines_;  // by KeyIdx
  bool vo_active_ = false;
  std::vector<char> vo_has_;                 // by KeyIdx: key named in version order
  std::vector<std::vector<TxnIdx>> vo_seq_;  // by KeyIdx: install order (dense)
  std::vector<std::uint32_t> vo_next_;       // by KeyIdx: next unplaced installer
  std::vector<DynamicBitset> prec_;
  std::vector<std::size_t> remaining_rt_, remaining_sess_;
  std::vector<OpInterval> scratch_;
};

}  // namespace

CheckResult check_exhaustive(ct::IsolationLevel level, const model::CompiledHistory& ch,
                             const CheckOptions& opts) {
  if (ch.size() == 0) {
    return {Outcome::kSatisfiable, model::Execution::identity(ch.txns()),
            "empty transaction set", 0};
  }
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  static obs::Histogram& latency = engine_obs::check_latency("exhaustive");
  obs::TraceSpan span("engine.exhaustive");
  obs::ScopedTimer timer(latency);
  PrefixSearch search(level, ch, opts);
  const std::size_t threads = opts.resolved_threads();
  CheckResult result = (threads > 1 && ch.size() >= kMinParallelSize)
                           ? search.run_parallel(threads)
                           : search.run();
  result.engine = "exhaustive";
  if (result.unsatisfiable() && !result.diagnosis) {
    result.diagnosis = explain_refutation(level, ch);
  }
  if (obs::enabled()) {
    engine_obs::checks_counter("exhaustive", result.outcome).inc();
  }
  span.field("level", ct::name_of(level))
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("threads", static_cast<std::uint64_t>(threads))
      .field("nodes", result.nodes_explored)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

CheckResult check_exhaustive(ct::IsolationLevel level, const model::TransactionSet& txns,
                             const CheckOptions& opts) {
  if (txns.empty()) {
    return {Outcome::kSatisfiable, model::Execution::identity(txns),
            "empty transaction set", 0};
  }
  const model::CompiledHistory ch(txns);
  return check_exhaustive(level, ch, opts);
}

CheckResult check_exhaustive(const ct::LevelAssignment& levels,
                             const model::CompiledHistory& ch,
                             const CheckOptions& opts) {
  // Uniform assignments ARE the global-level question — delegate so the two
  // APIs are verdict-, witness- and node-count-identical by construction.
  if (levels.is_uniform()) return check_exhaustive(levels.fallback(), ch, opts);
  if (ch.size() == 0) {
    return {Outcome::kSatisfiable, model::Execution::identity(ch.txns()),
            "empty transaction set", 0};
  }
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  static obs::Histogram& latency = engine_obs::check_latency("exhaustive");
  obs::TraceSpan span("engine.exhaustive");
  obs::ScopedTimer timer(latency);
  PrefixSearch search(levels, ch, opts);
  const std::size_t threads = opts.resolved_threads();
  CheckResult result = (threads > 1 && ch.size() >= kMinParallelSize)
                           ? search.run_parallel(threads)
                           : search.run();
  result.engine = "exhaustive";
  if (result.unsatisfiable() && !result.diagnosis) {
    result.diagnosis = explain_refutation(levels, ch);
  }
  if (obs::enabled()) {
    engine_obs::checks_counter("exhaustive", result.outcome).inc();
  }
  span.field("level", levels.describe())
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("threads", static_cast<std::uint64_t>(threads))
      .field("nodes", result.nodes_explored)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

ct::ExecutionVerdict verify_witness(ct::IsolationLevel level,
                                    const model::TransactionSet& txns,
                                    const model::Execution& e) {
  return ct::test_execution(level, txns, e);
}

ct::ExecutionVerdict verify_witness(ct::IsolationLevel level,
                                    const model::CompiledHistory& ch,
                                    const model::Execution& e) {
  return ct::test_execution(level, ch, e);
}

ct::ExecutionVerdict verify_witness(const ct::LevelAssignment& levels,
                                    const model::TransactionSet& txns,
                                    const model::Execution& e) {
  return ct::test_execution(levels, txns, e);
}

ct::ExecutionVerdict verify_witness(const ct::LevelAssignment& levels,
                                    const model::CompiledHistory& ch,
                                    const model::Execution& e) {
  return ct::test_execution(levels, ch, e);
}

}  // namespace crooks::checker
