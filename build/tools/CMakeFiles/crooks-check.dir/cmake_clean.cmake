file(REMOVE_RECURSE
  "CMakeFiles/crooks-check.dir/crooks_check.cpp.o"
  "CMakeFiles/crooks-check.dir/crooks_check.cpp.o.d"
  "crooks-check"
  "crooks-check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks-check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
