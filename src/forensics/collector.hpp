// The witness pipeline's tail: violation events → canonical witnesses →
// bounded pattern aggregation → crooks_forensics_* metric series.
//
// One Collector serves both capture paths. Online, attach() hooks the
// OnlineChecker's violation events and extracts a witness at event time
// (while the failing transaction is resident). Offline, engine refutations
// feed add() with witnesses built by witness_from_result. Because the
// offline --forensics mode of crooks-check REPLAYS the log through the same
// OnlineChecker + Collector machinery as --follow, the aggregated report is
// byte-identical across the two modes by construction.
#pragma once

#include "checker/online.hpp"
#include "forensics/forensics.hpp"
#include "forensics/pattern_table.hpp"

namespace crooks::forensics {

class Collector {
 public:
  struct Options {
    PatternTable::Options table;
    /// Export crooks_forensics_* series on every witness (subject to the
    /// global obs::enabled() switch).
    bool metrics = true;
  };

  Collector() : Collector(Options{}) {}
  explicit Collector(Options opt) : opt_(opt), table_(opt.table) {}

  /// Route every violation the checker records into this collector. The
  /// collector must outlive the checker, or detach (set_violation_hook with
  /// nullptr) first.
  void attach(checker::OnlineChecker& chk);

  /// Ingest one online violation event against its stream (what attach
  /// wires; public so tests can drive it directly).
  void on_violation(const model::CompiledHistory& ch,
                    const checker::OnlineChecker::ViolationEvent& ev);

  /// Ingest an already-extracted witness (the offline engine path).
  void add(const Witness& w);

  const PatternTable& table() const { return table_; }

 private:
  Options opt_;
  PatternTable table_;
};

}  // namespace crooks::forensics
