// Adya's history-based formalism (Appendix A of the paper; Adya's thesis).
//
// This module is the *baseline* the paper proves its state-based model
// equivalent to. A history records low-level information that clients cannot
// observe: aborted transactions, intermediate writes, and a per-key total
// version order. The equivalence theorems (1–4, 6, 10) become executable
// property tests by converting a history to client observations
// (`to_observations`) and comparing checker verdicts with phenomena verdicts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "model/transaction.hpp"

namespace crooks::adya {

/// A specific version of a key: the `seq`-th write (1-based) that `writer`
/// performed on that key. Multiple writes of one key by one transaction are
/// legal in a history (only the final one installs a committed version).
struct Version {
  TxnId writer = kInitTxn;
  std::uint32_t seq = 1;

  friend constexpr bool operator==(Version, Version) = default;
};

inline constexpr Version kInitialVersion{kInitTxn, 1};

enum class EventType : std::uint8_t { kRead, kWrite };

struct Event {
  EventType type = EventType::kRead;
  Key key{};
  Version version{};  // read: the version observed; write: {self, seq}
};

/// One transaction of a history, including its fate (committed or aborted)
/// and the scheduler's real start/commit points (used for start-dependency
/// edges in the SSG and for the timed SI family).
struct HistTxn {
  TxnId id{};
  bool committed = true;
  SessionId session = kNoSession;
  SiteId site{0};
  Timestamp start_ts = kNoTimestamp;
  Timestamp commit_ts = kNoTimestamp;
  /// Isolation level the client declared for this transaction, if any
  /// (carried into the observations' `level=` annotation). Inert to the
  /// phenomena analyses — Adya's definitions are level-parametric already.
  std::optional<ct::IsolationLevel> level;
  std::vector<Event> events;

  /// Sequence number of this transaction's final write to `k`, or nullopt.
  std::optional<std::uint32_t> final_write_seq(Key k) const {
    std::optional<std::uint32_t> seq;
    for (const Event& e : events) {
      if (e.type == EventType::kWrite && e.key == k) seq = e.version.seq;
    }
    return seq;
  }

  bool writes(Key k) const { return final_write_seq(k).has_value(); }
};

/// A history: transactions (committed and aborted) plus the total version
/// order << on committed object versions (Definition A.1). The initial ⊥
/// version of every key is implicit at the front of each key's order.
class History {
 public:
  History() = default;
  History(std::vector<HistTxn> txns,
          std::unordered_map<Key, std::vector<TxnId>> version_order)
      : txns_(std::move(txns)), version_order_(std::move(version_order)) {
    for (std::size_t i = 0; i < txns_.size(); ++i) {
      if (!index_.emplace(txns_[i].id, i).second) {
        throw std::invalid_argument("duplicate transaction in history");
      }
    }
    validate();
  }

  const std::vector<HistTxn>& txns() const { return txns_; }
  const HistTxn& by_id(TxnId id) const { return txns_.at(index_.at(id)); }
  bool contains(TxnId id) const { return index_.contains(id); }

  /// Committed installers of `k`, in version order (⊥ implicit at front).
  const std::vector<TxnId>& installers(Key k) const {
    static const std::vector<TxnId> kEmpty;
    auto it = version_order_.find(k);
    return it == version_order_.end() ? kEmpty : it->second;
  }

  const std::unordered_map<Key, std::vector<TxnId>>& version_order() const {
    return version_order_;
  }

 private:
  void validate() const {
    for (const auto& [key, order] : version_order_) {
      for (TxnId id : order) {
        auto it = index_.find(id);
        if (it == index_.end()) {
          throw std::invalid_argument("version order names unknown transaction");
        }
        const HistTxn& t = txns_[it->second];
        if (!t.committed || !t.writes(key)) {
          throw std::invalid_argument(
              "version order must contain exactly the committed writers of the key");
        }
      }
    }
    // Completeness: << is a *total* order on committed versions (Def. A.1),
    // so every committed final writer of a key must appear in its order.
    for (const HistTxn& t : txns_) {
      if (!t.committed) continue;
      for (const Event& e : t.events) {
        if (e.type != EventType::kWrite) continue;
        const auto& order = installers(e.key);
        if (std::find(order.begin(), order.end(), t.id) == order.end()) {
          throw std::invalid_argument("version order misses a committed writer of " +
                                      crooks::to_string(e.key));
        }
      }
    }
  }

  std::vector<HistTxn> txns_;
  std::unordered_map<Key, std::vector<TxnId>> version_order_;
  std::unordered_map<TxnId, std::size_t> index_;
};

/// Fluent builder. Tracks per-transaction write sequence numbers and, unless
/// a version order is supplied explicitly, derives one from commit timestamps
/// (the usual instantiation: install order = commit order).
class HistoryBuilder {
 public:
  HistoryBuilder& begin(TxnId id, Timestamp start = kNoTimestamp,
                        SessionId session = kNoSession, SiteId site = SiteId{0}) {
    HistTxn t;
    t.id = id;
    t.start_ts = start;
    t.session = session;
    t.site = site;
    open_.emplace(id, std::move(t));
    return *this;
  }
  HistoryBuilder& begin(std::uint64_t id, Timestamp start = kNoTimestamp) {
    return begin(TxnId{id}, start);
  }

  HistoryBuilder& read(TxnId id, Key k, Version v) {
    open_.at(id).events.push_back({EventType::kRead, k, v});
    return *this;
  }
  HistoryBuilder& read(std::uint64_t id, std::uint64_t k, std::uint64_t writer,
                       std::uint32_t seq = 1) {
    return read(TxnId{id}, Key{k}, Version{TxnId{writer}, seq});
  }

  HistoryBuilder& write(TxnId id, Key k) {
    HistTxn& t = open_.at(id);
    const std::uint32_t seq = ++write_seq_[{id, k}];
    t.events.push_back({EventType::kWrite, k, Version{id, seq}});
    return *this;
  }
  HistoryBuilder& write(std::uint64_t id, std::uint64_t k) {
    return write(TxnId{id}, Key{k});
  }

  HistoryBuilder& commit(TxnId id, Timestamp commit = kNoTimestamp) {
    HistTxn t = std::move(open_.at(id));
    open_.erase(id);
    t.committed = true;
    t.commit_ts = commit;
    done_.push_back(std::move(t));
    return *this;
  }
  HistoryBuilder& commit(std::uint64_t id, Timestamp ts = kNoTimestamp) {
    return commit(TxnId{id}, ts);
  }

  HistoryBuilder& abort(TxnId id) {
    HistTxn t = std::move(open_.at(id));
    open_.erase(id);
    t.committed = false;
    done_.push_back(std::move(t));
    return *this;
  }
  HistoryBuilder& abort(std::uint64_t id) { return abort(TxnId{id}); }

  /// Override the derived version order of one key.
  HistoryBuilder& order(Key k, std::vector<TxnId> installers) {
    explicit_order_[k] = std::move(installers);
    return *this;
  }

  History build() const {
    if (!open_.empty()) throw std::logic_error("unfinished transactions in builder");
    std::unordered_map<Key, std::vector<TxnId>> vo = explicit_order_;
    // Derive the order of keys not explicitly ordered: committed writers
    // sorted by commit timestamp, falling back to completion order.
    std::unordered_map<Key, std::vector<const HistTxn*>> writers;
    for (const HistTxn& t : done_) {
      if (!t.committed) continue;
      for (const Event& e : t.events) {
        if (e.type == EventType::kWrite && !vo.contains(e.key)) {
          auto& ws = writers[e.key];
          if (ws.empty() || ws.back() != &t) ws.push_back(&t);
        }
      }
    }
    for (auto& [key, ws] : writers) {
      std::stable_sort(ws.begin(), ws.end(), [](const HistTxn* a, const HistTxn* b) {
        if (a->commit_ts == kNoTimestamp || b->commit_ts == kNoTimestamp) return false;
        return a->commit_ts < b->commit_ts;
      });
      auto& order = vo[key];
      for (const HistTxn* t : ws) order.push_back(t->id);
    }
    return History(std::vector<HistTxn>(done_), std::move(vo));
  }

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<TxnId, Key>& p) const {
      return std::hash<TxnId>{}(p.first) * 0x9e3779b97f4a7c15ULL ^ std::hash<Key>{}(p.second);
    }
  };
  std::unordered_map<TxnId, HistTxn> open_;
  std::vector<HistTxn> done_;
  std::unordered_map<std::pair<TxnId, Key>, std::uint32_t, PairHash> write_seq_;
  std::unordered_map<Key, std::vector<TxnId>> explicit_order_;
};

/// Project a history onto what clients can observe (§3): committed
/// transactions only; writes collapse to their final value; a read of an
/// aborted transaction's write keeps its writer id (which is then absent
/// from the set — G1a); a read of a non-final write becomes a phantom value
/// (G1b). This is the bridge both equivalence tests and the store use.
model::TransactionSet to_observations(const History& h);

/// Lift client observations into a history, given an authoritative per-key
/// install order. Keys absent from `version_order` must have at most one
/// committed writer (their order is then implied); otherwise throws.
/// Phantom reads become reads of a non-final version (G1b); reads naming an
/// unknown writer become reads of an aborted transaction's write (G1a).
History from_observations(
    const model::TransactionSet& txns,
    const std::unordered_map<Key, std::vector<TxnId>>& version_order);

}  // namespace crooks::adya
