# Empty dependencies file for crooks-check.
# This may be replaced when dependencies are built.
