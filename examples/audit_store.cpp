// Black-box isolation audit (the Elle/Cobra use case the state-based model
// enables).
//
// Runs the same concurrent workload against every concurrency-control mode,
// then — looking only at what clients observed (plus the store's exported
// install order) — asks the checker which isolation levels each run could
// have satisfied. The printed matrix is each mode's *measured* isolation,
// with its contractual level marked.
//
//   $ ./audit_store
#include <cstdio>

#include "checker/checker.hpp"
#include "common/rng.hpp"
#include "replication/geo_store.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

/// Drive the geo-replicated PSI store with random cross-site traffic.
std::pair<model::TransactionSet, std::unordered_map<Key, std::vector<TxnId>>>
run_geo_store() {
  repl::GeoStore g({.sites = 3, .replication_delay = 7});
  Rng rng(42);
  for (int i = 0; i < 80; ++i) {
    const TxnId t = g.begin(SiteId{static_cast<std::uint32_t>(rng.below(3))});
    std::unordered_set<std::uint64_t> written;
    for (int op = 0; op < 4; ++op) {
      const std::uint64_t k = rng.below(8);
      if (rng.chance(0.5)) {
        g.read(t, Key{k});
      } else if (written.insert(k).second) {
        g.write(t, Key{k});
      }
    }
    if (g.is_active(t)) g.commit(t);
  }
  return {g.observations(), g.version_order()};
}

}  // namespace

int main() {
  const auto intents = wl::generate_mix({.transactions = 60,
                                         .keys = 8,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .sessions = 4,
                                         .seed = 42});

  const store::CCMode modes[] = {
      store::CCMode::kSerial,          store::CCMode::kTwoPhaseLocking,
      store::CCMode::kWoundWait,       store::CCMode::kSnapshotIsolation,
      store::CCMode::kReadAtomic,      store::CCMode::kReadCommitted,
      store::CCMode::kReadUncommitted,
  };

  std::printf("%-18s", "level \\ mode");
  for (store::CCMode m : modes) std::printf(" %10.10s", std::string(store::name_of(m)).c_str());
  std::printf(" %10s\n", "GeoPSI");

  // Run once per mode; audit against every level.
  struct Audit {
    model::TransactionSet obs;
    std::unordered_map<Key, std::vector<TxnId>> vo;
  };
  std::vector<Audit> audits;
  for (store::CCMode m : modes) {
    const store::RunResult r = store::run(
        intents, {.mode = m, .seed = 7, .concurrency = 6,
                  .injected_abort_prob = 0.05, .retries = 3});
    audits.push_back({r.observations, r.version_order});
  }
  auto [geo_obs, geo_vo] = run_geo_store();
  audits.push_back({std::move(geo_obs), std::move(geo_vo)});

  for (ct::IsolationLevel level : ct::kAllLevels) {
    std::printf("%-18s", std::string(ct::name_of(level)).c_str());
    for (std::size_t i = 0; i < audits.size(); ++i) {
      checker::CheckOptions opts;
      opts.version_order = &audits[i].vo;
      const checker::CheckResult r = checker::check(level, audits[i].obs, opts);
      const char* cell = r.satisfiable()     ? "pass"
                         : r.unsatisfiable() ? "FAIL"
                                             : "?";
      const bool contractual =
          i < std::size(modes) ? store::contract_of(modes[i]) == level
                               : level == ct::IsolationLevel::kPSI;
      std::printf(" %8s%s", cell, contractual ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("\n(*) the level the mode contractually provides. A 'pass' above the\n"
              "contract just means this particular run produced no separating anomaly.\n");
  return 0;
}
