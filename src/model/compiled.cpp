#include "model/compiled.hpp"

#include <algorithm>
#include <numeric>

namespace crooks::model {

CompiledHistory::CompiledHistory(const TransactionSet& txns)
    : txns_(&txns), n_(txns.size()) {
  // Pass 1: intern every key in first-appearance order so KeyIdx assignment is
  // deterministic across runs and thread counts.
  for (const Transaction& t : txns) {
    for (const Operation& op : t.ops()) keys_.intern(op.key);
  }
  const std::size_t kc = keys_.size();

  // Pass 2: write footprints (sorted dense arrays + bitset masks). Every key a
  // transaction writes appears among its ops, so find() always resolves.
  write_mask_.reserve(n_);
  wk_begin_.assign(n_ + 1, 0);
  for (TxnIdx d = 0; d < n_; ++d) {
    const Transaction& t = txns.at(d);
    DynamicBitset mask(kc);
    std::vector<KeyIdx> wk;
    wk.reserve(t.write_set().size());
    for (Key k : t.write_set()) {
      const KeyIdx ki = keys_.find(k);
      mask.set(ki);
      wk.push_back(ki);
    }
    std::sort(wk.begin(), wk.end());
    write_keys_.insert(write_keys_.end(), wk.begin(), wk.end());
    wk_begin_[d + 1] = static_cast<std::uint32_t>(write_keys_.size());
    write_mask_.push_back(std::move(mask));
  }

  // Pass 3: classify every operation, mirroring the branch order of
  // ReadStateAnalysis::read_states_of exactly (phantom before internal before
  // self before unknown-writer before writer-misses-key).
  op_begin_.assign(n_ + 1, 0);
  rk_begin_.assign(n_ + 1, 0);
  start_ts_.resize(n_);
  commit_ts_.resize(n_);
  session_.resize(n_);
  std::vector<bool> written_so_far(kc, false);  // per-txn program-order scratch
  std::vector<KeyIdx> touched;
  for (TxnIdx d = 0; d < n_; ++d) {
    const Transaction& t = txns.at(d);
    start_ts_[d] = t.start_ts();
    commit_ts_[d] = t.commit_ts();
    session_[d] = t.session();
    if (!t.has_timestamps()) all_timestamped_ = false;

    touched.clear();
    std::vector<KeyIdx> rk;
    for (const Operation& op : t.ops()) {
      CompiledOp c;
      c.key = keys_.find(op.key);
      if (op.is_write()) {
        ops_.push_back(c);
        written_so_far[c.key] = true;
        touched.push_back(c.key);
        continue;
      }

      rk.push_back(c.key);
      const TxnId w = op.value.writer;
      const bool positional_internal = written_so_far[c.key];
      const bool is_self = w == t.id();
      const bool is_init = w == kInitTxn;
      const bool known = !is_init && txns.contains(w);
      if (op.value.phantom) c.flags |= kOpPhantom;
      if (is_init) c.flags |= kOpInitWriter;
      if (is_self) c.flags |= kOpSelfWriter;
      if (!is_init && !known) c.flags |= kOpUnknownWriter;
      if (positional_internal) c.flags |= kOpPositionalInternal;
      if (known) {
        c.writer = static_cast<TxnIdx>(txns.dense_index_of(w));
        if (!txns.at(c.writer).writes(op.key)) c.flags |= kOpWriterMissesKey;
      }

      if (op.value.phantom) {
        c.cls = OpClass::kReadNever;
      } else if (positional_internal) {
        c.cls = is_self ? OpClass::kReadInternal : OpClass::kReadNever;
      } else if (is_self) {
        c.cls = OpClass::kReadNever;
      } else if (is_init) {
        c.cls = OpClass::kReadInitial;
      } else if (!known || (c.flags & kOpWriterMissesKey) != 0) {
        c.cls = OpClass::kReadNever;
      } else {
        c.cls = OpClass::kReadExternal;
      }
      ops_.push_back(c);
    }
    op_begin_[d + 1] = static_cast<std::uint32_t>(ops_.size());
    for (KeyIdx k : touched) written_so_far[k] = false;

    std::sort(rk.begin(), rk.end());
    rk.erase(std::unique(rk.begin(), rk.end()), rk.end());
    read_keys_.insert(read_keys_.end(), rk.begin(), rk.end());
    rk_begin_[d + 1] = static_cast<std::uint32_t>(read_keys_.size());
  }

  // Pass 4: per-key writer lists (CSR over KeyIdx, writers in dense order).
  writers_of_.begin.assign(kc + 1, 0);
  for (TxnIdx d = 0; d < n_; ++d) {
    for (KeyIdx k : write_keys(d)) ++writers_of_.begin[k + 1];
  }
  std::partial_sum(writers_of_.begin.begin(), writers_of_.begin.end(),
                   writers_of_.begin.begin());
  writers_of_.items.resize(writers_of_.begin.back());
  std::vector<std::uint32_t> fill(writers_of_.begin.begin(), writers_of_.begin.end() - 1);
  for (TxnIdx d = 0; d < n_; ++d) {
    for (KeyIdx k : write_keys(d)) writers_of_.items[fill[k]++] = d;
  }

  // Candidate order (see ts_order() — fixed strict-weak-order comparator).
  ts_order_.resize(n_);
  std::iota(ts_order_.begin(), ts_order_.end(), TxnIdx{0});
  std::sort(ts_order_.begin(), ts_order_.end(), [this](TxnIdx a, TxnIdx b) {
    const bool ta = commit_ts_[a] != kNoTimestamp;
    const bool tb = commit_ts_[b] != kNoTimestamp;
    if (ta != tb) return ta;  // timestamped first
    if (ta && commit_ts_[a] != commit_ts_[b]) return commit_ts_[a] < commit_ts_[b];
    return a < b;  // deterministic tie-break: dense (declaration) order
  });
}

const CompiledHistory::Adjacency& CompiledHistory::adjacency() const {
  std::call_once(adj_once_, [this] { adj_ = build_adjacency(); });
  return *adj_;
}

CompiledHistory::Adjacency CompiledHistory::build_adjacency() const {
  Adjacency adj;
  const std::size_t n = n_;

  // Committed transactions sorted by (commit_ts, dense): for any b, the
  // real-time predecessors {a : commit(a) < start(b)} form a prefix of this
  // array, found by one binary search instead of an O(n) scan per b.
  std::vector<TxnIdx> by_commit;
  by_commit.reserve(n);
  for (TxnIdx d = 0; d < n; ++d) {
    if (commit_ts_[d] != kNoTimestamp) by_commit.push_back(d);
  }
  std::sort(by_commit.begin(), by_commit.end(), [this](TxnIdx a, TxnIdx b) {
    if (commit_ts_[a] != commit_ts_[b]) return commit_ts_[a] < commit_ts_[b];
    return a < b;
  });

  auto prefix_of = [&](TxnIdx b) -> std::size_t {
    if (start_ts_[b] == kNoTimestamp) return 0;
    const Timestamp s = start_ts_[b];
    auto it = std::lower_bound(by_commit.begin(), by_commit.end(), s,
                               [this](TxnIdx a, Timestamp v) { return commit_ts_[a] < v; });
    return static_cast<std::size_t>(it - by_commit.begin());
  };
  auto self_in_prefix = [&](TxnIdx b) {
    return commit_ts_[b] != kNoTimestamp && start_ts_[b] != kNoTimestamp &&
           commit_ts_[b] < start_ts_[b];
  };

  adj.rt_preds.begin.assign(n + 1, 0);
  adj.sess_preds.begin.assign(n + 1, 0);
  std::vector<std::size_t> prefix(n, 0);
  for (TxnIdx b = 0; b < n; ++b) {
    prefix[b] = prefix_of(b);
    std::size_t rt = prefix[b] - (self_in_prefix(b) ? 1 : 0);
    std::size_t sess = 0;
    if (session_[b] != kNoSession) {
      for (std::size_t i = 0; i < prefix[b]; ++i) {
        const TxnIdx a = by_commit[i];
        if (a != b && session_[a] == session_[b]) ++sess;
      }
    }
    adj.rt_preds.begin[b + 1] = adj.rt_preds.begin[b] + static_cast<std::uint32_t>(rt);
    adj.sess_preds.begin[b + 1] = adj.sess_preds.begin[b] + static_cast<std::uint32_t>(sess);
  }

  adj.rt_preds.items.resize(adj.rt_preds.begin.back());
  adj.sess_preds.items.resize(adj.sess_preds.begin.back());
  std::vector<std::uint32_t> rt_succ_count(n, 0), sess_succ_count(n, 0);
  for (TxnIdx b = 0; b < n; ++b) {
    std::uint32_t rt = adj.rt_preds.begin[b];
    std::uint32_t sess = adj.sess_preds.begin[b];
    for (std::size_t i = 0; i < prefix[b]; ++i) {
      const TxnIdx a = by_commit[i];
      if (a == b) continue;
      adj.rt_preds.items[rt++] = a;
      ++rt_succ_count[a];
      if (session_[b] != kNoSession && session_[a] == session_[b]) {
        adj.sess_preds.items[sess++] = a;
        ++sess_succ_count[a];
      }
    }
  }

  auto invert = [n](const Csr& preds, const std::vector<std::uint32_t>& counts) {
    Csr succs;
    succs.begin.assign(n + 1, 0);
    for (std::size_t a = 0; a < n; ++a) succs.begin[a + 1] = succs.begin[a] + counts[a];
    succs.items.resize(succs.begin.back());
    std::vector<std::uint32_t> fill(succs.begin.begin(), succs.begin.end() - 1);
    for (TxnIdx b = 0; b < n; ++b) {
      for (TxnIdx a : preds.row(b)) succs.items[fill[a]++] = b;
    }
    return succs;
  };
  adj.rt_succs = invert(adj.rt_preds, rt_succ_count);
  adj.sess_succs = invert(adj.sess_preds, sess_succ_count);
  return adj;
}

}  // namespace crooks::model
