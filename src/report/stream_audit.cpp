// See stream_audit.hpp. The loop deals with two realities of tailing a file
// another process writes: reads can catch the writer mid-line (a line without
// its newline yet — buffered in `partial` and completed on a later poll), and
// mid-block (a `txn` opened but its `end` not yet written — complete blocks
// are batched, the open one waits).
#include "report/stream_audit.hpp"

#include <chrono>
#include <span>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "report/serialize.hpp"

namespace crooks::report {

namespace {

/// The follow-mode series: per-batch counters the CLI's human-format lines
/// are derived from (StreamBlockReport carries the same numbers — the
/// metrics layer is the source of truth, the printf renderer one consumer).
struct FollowMetrics {
  obs::Counter& batches;
  obs::Counter& txns;
  obs::Counter& duplicates;
  obs::Histogram& batch_seconds;
  obs::Gauge& levels_alive;

  static FollowMetrics& get() {
    static FollowMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return FollowMetrics{
          r.counter("crooks_follow_batches_total",
                    "Non-empty batches audited by the streaming monitor"),
          r.counter("crooks_follow_txns_total",
                    "Transactions accepted by the streaming monitor"),
          r.counter("crooks_follow_duplicates_total",
                    "Duplicate transactions ignored by the streaming monitor"),
          r.histogram("crooks_follow_batch_seconds",
                      "append_all latency per audited batch"),
          r.gauge("crooks_follow_levels_alive",
                  "Tracked isolation levels not yet violated")};
    }();
    return m;
  }
};

/// First whitespace-separated token of `line`, with any '#' comment removed.
std::string first_token(const std::string& line) {
  const std::size_t hash = line.find('#');
  std::istringstream is(hash == std::string::npos ? line : line.substr(0, hash));
  std::string tok;
  is >> tok;
  return tok;
}

}  // namespace

StreamAuditResult stream_audit(
    std::istream& in, const StreamAuditOptions& opts,
    const std::function<bool(const StreamBlockReport&)>& on_block) {
  using Clock = std::chrono::steady_clock;

  StreamAuditResult result;
  checker::OnlineChecker chk(opts.levels);
  chk.set_window({opts.window_txns, opts.window_bytes});
  if (opts.on_checker) opts.on_checker(chk);

  std::string partial;           // line fragment read before its newline
  std::string open_block;        // lines of a `txn` block awaiting its `end`
  std::uint64_t open_block_line = 0;
  bool in_block = false;
  // Complete blocks awaiting the next flush. Each block is parsed on its own
  // the moment its `end` arrives: a writer re-emitting a transaction block is
  // a checker-level duplicate (ignored) no matter how the blocks happen to
  // batch across polls — parsing a whole batch as one document would instead
  // turn "both copies arrived in the same poll" into a fatal parse error.
  std::vector<model::Transaction> batch;
  std::uint64_t line_no = 0;
  bool stop = false;
  Clock::time_point last_input = Clock::now();

  auto fail = [&](const std::string& why) {
    result.error = "line " + std::to_string(line_no) + ": " + why;
    stop = true;
  };

  auto consume_line = [&](const std::string& line) {
    ++line_no;
    const std::string tok = first_token(line);
    if (in_block) {
      if (tok == "txn") return fail("'txn' inside an unfinished block");
      if (tok == "vo") return fail("'vo' inside an unfinished block");
      open_block += line;
      open_block += '\n';
      if (tok == "end") {
        in_block = false;
        Observations obs;
        try {
          obs = parse_observations(open_block);
        } catch (const std::exception& e) {
          result.error = "block starting at line " +
                         std::to_string(open_block_line) + ": " + e.what();
          stop = true;
          return;
        }
        for (const model::Transaction& t : obs.txns) batch.push_back(t);
        open_block.clear();
      }
      return;
    }
    if (tok.empty()) return;  // blank or comment-only
    if (tok == "vo") {
      return fail(
          "version order ('vo') is not allowed in streaming mode: the "
          "monitor judges the apply order itself; use an offline check "
          "for the ∃e question");
    }
    if (tok != "txn") return fail("expected 'txn', got '" + tok + "'");
    in_block = true;
    open_block_line = line_no;
    open_block = line;
    open_block += '\n';
  };

  auto flush = [&]() {
    if (stop || batch.empty()) return;
    const checker::OnlineChecker::Stats before = chk.stats();
    const std::vector<ct::IsolationLevel> alive_before = chk.surviving_levels();
    const Clock::time_point t0 = Clock::now();
    const std::size_t accepted =
        chk.append_all(std::span<const model::Transaction>(batch));
    const Clock::time_point t1 = Clock::now();

    StreamBlockReport rep;
    rep.block = ++result.blocks;
    rep.transactions = accepted;
    rep.duplicates = chk.stats().duplicates_ignored - before.duplicates_ignored;
    rep.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (ct::IsolationLevel level : alive_before) {
      if (!chk.status(level).ok) rep.died.push_back(level);
    }
    rep.checker = &chk;
    rep.watermark = chk.watermark();
    rep.resident_txns = chk.resident_txns();
    rep.resident_ops = chk.resident_ops();

    result.transactions += accepted;
    result.duplicates += rep.duplicates;
    batch.clear();

    if (obs::enabled()) {
      FollowMetrics& m = FollowMetrics::get();
      m.batches.inc();
      m.txns.inc(accepted);
      m.duplicates.inc(rep.duplicates);
      m.batch_seconds.observe(rep.seconds);
      m.levels_alive.set(static_cast<std::int64_t>(chk.surviving_levels().size()));
    }
    if (opts.metrics_every != 0 && result.blocks % opts.metrics_every == 0) {
      rep.metrics_snapshot = obs::Registry::global().json();
    }

    if (on_block && !on_block(rep)) stop = true;
    if (opts.max_blocks != 0 && result.blocks >= opts.max_blocks) stop = true;
  };

  std::string line;
  while (!stop) {
    if (std::getline(in, line)) {
      last_input = Clock::now();
      if (in.eof()) {
        // The writer hasn't finished this line yet; hold it for later polls.
        partial += line;
        continue;
      }
      consume_line(partial + line);
      partial.clear();
      continue;
    }
    // Caught up with the stream: audit everything complete, then poll.
    if (opts.max_blocks != 0 && result.blocks + 1 >= opts.max_blocks &&
        in_block && !partial.empty() && first_token(partial) == "end") {
      // This flush is the last one --max-blocks allows, and the open block's
      // `end` already arrived minus its newline. The idle-exit path would
      // treat such a fragment as the complete final line after the loop, but
      // max_blocks stops the loop with `stop` set, skipping it — so the
      // fully-delivered block would silently never be audited. Complete it
      // here instead, so it joins the final batch.
      consume_line(partial);
      partial.clear();
    }
    flush();
    if (stop) break;
    if (opts.idle_exit_ms > 0 &&
        Clock::now() - last_input >= std::chrono::milliseconds(opts.idle_exit_ms)) {
      break;
    }
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
  }
  if (!stop && !partial.empty()) {
    // The writer exited without a trailing newline (idle-exit fired with a
    // buffered fragment): treat the fragment as the complete final line so a
    // block whose `end` lacks the newline is still audited.
    consume_line(partial);
    partial.clear();
  }
  flush();  // blocks completed by the final reads before a stop condition

  result.surviving = chk.surviving_levels();
  for (ct::IsolationLevel level : opts.levels) {
    result.statuses.emplace(level, chk.status(level));
  }
  result.checker_stats = chk.stats();
  return result;
}

}  // namespace crooks::report
