file(REMOVE_RECURSE
  "CMakeFiles/anomaly_matrix_test.dir/anomaly_matrix_test.cpp.o"
  "CMakeFiles/anomaly_matrix_test.dir/anomaly_matrix_test.cpp.o.d"
  "anomaly_matrix_test"
  "anomaly_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
