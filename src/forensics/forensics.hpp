// Violation forensics: canonical witnesses extracted from refutations.
//
// PR 4 made every refutation explainable one at a time; this layer turns the
// verdict stream into fleet-level evidence. A forensics::Witness is the
// canonicalized record of ONE refutation — the violated clause, the
// implicated transactions/keys/sessions, and the induced dependency
// subgraph — extracted either from an offline engine's ReadDiagnosis or from
// an OnlineChecker violation event.
//
// Extraction is deliberately restricted to WINDOW-SAFE, APPEND-STABLE data:
// the failing transaction's own compiled ops (resident when the event
// fires), the retained scalar columns (ids, sessions, timestamps — kept
// forever across retire()), and writes_key() (exact for retired
// transactions). Nothing read here depends on transactions applied after the
// failing one or on how the stream happened to batch into blocks, so the
// same log produces byte-identical witnesses whether it is replayed offline
// in one gulp or tailed block by block under --follow — the property the CI
// determinism gate pins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "checker/checker.hpp"
#include "committest/levels.hpp"
#include "common/ids.hpp"
#include "forensics/fingerprint.hpp"
#include "model/compiled.hpp"

namespace crooks::forensics {

/// Commit-test clause families, classified from the human explanation
/// strings every engine (and the online monitor) emits. The online monitor
/// folds the snapshot-recency bound into its admissible-state search, so the
/// SI no-complete / NO-CONF / T_s<_sT refutations all land in kSnapshot —
/// offline and streaming replays of one log then classify identically.
enum class Clause : std::uint8_t {
  kPreread,           // PREREAD fails
  kFracturedRead,     // RA fracture across one writer's updates
  kCausalVisibility,  // PSI CAUS-VIS miss
  kParentIncomplete,  // SER/SSER: parent state not complete
  kSnapshot,          // SI family: no complete/conflict-free/admissible state
  kCommitOrder,       // C-ORD: execution not in commit-timestamp order
  kTimeOracle,        // timed level on an untimestamped transaction
  kRealtime,          // real-time recency / retroactive inversion
  kSessionOrder,      // session recency / session predecessor inversion
  kOther,
};
inline constexpr std::size_t kClauseCount = 10;

std::string_view name_of(Clause c);

/// Map an engine or monitor explanation string to its clause family.
Clause classify_clause(std::string_view why);

/// One implicated transaction, with the footprint slice the pattern replayer
/// needs (restricted to the witness's implicated keys, bounded).
struct WitnessNode {
  TxnId id{};
  std::uint8_t role = kRoleOther;  // kRoleFailing / kRoleInit / kRoleOther
  SessionId session = kNoSession;
  std::vector<Key> reads;   // implicated keys this node read
  std::vector<Key> writes;  // implicated keys this node wrote
};

/// Canonical record of one refutation.
struct Witness {
  Clause clause = Clause::kOther;
  ct::IsolationLevel level = ct::IsolationLevel::kReadUncommitted;
  std::string engine;  // "direct" / "graph" / "exhaustive" / "online" / ...
  TxnId txn{};         // the transaction whose commit test failed
  /// Implicated transactions; node 0 is always the failing transaction.
  /// ShapeGraph node i == nodes[i].
  std::vector<WitnessNode> nodes;
  ShapeGraph shape;              // normalized, in nodes[] order
  std::vector<Key> keys;         // implicated keys, sorted
  std::uint32_t truncated = 0;   // implicated txns dropped by the node cap
  std::uint64_t fingerprint = 0; // FNV-1a over clause + canonical shape code
  std::string shape_str;         // canonical rendering
};

/// Inputs shared by both extraction paths.
struct WitnessInputs {
  model::TxnIdx failing = model::kNoTxnIdx;
  Clause clause = Clause::kOther;
  ct::IsolationLevel level = ct::IsolationLevel::kReadUncommitted;
  std::string engine;
  /// The other transaction the clause names (retroactive inverter, C-ORD
  /// predecessor, missed writer); kNoTxnIdx when none.
  model::TxnIdx other = model::kNoTxnIdx;
};

/// Build the canonical witness for one refutation over the compiled history.
///
/// The conflict neighborhood is the failing transaction f, the APPLIED
/// member writers its external reads observed (dense index < f — a read of
/// a not-yet-applied writer is excluded so block batching cannot change the
/// shape), the synthetic ⊥ node when f read an initial version, and the
/// clause's named `other` transaction. Edges: w -wr-> f per observed read;
/// f -rw-> w per write of w to a key f read from someone else (the missed
/// version); plus the clause edge other -rt/sd-> f for the ordering
/// clauses. When f itself is retired (only the retroactive-inversion victim
/// can be) the witness degrades to the minimal {f, other} pair.
Witness extract_witness(const model::CompiledHistory& ch, const WitnessInputs& in);

/// Witness from an offline engine's refutation evidence. `fallback_level` is
/// used when the diagnosis does not name the audited level. Returns nullopt
/// when the diagnosis names a transaction the history does not contain.
std::optional<Witness> witness_from_diagnosis(const model::CompiledHistory& ch,
                                              const checker::ReadDiagnosis& d,
                                              std::string engine,
                                              ct::IsolationLevel fallback_level);

/// Witness from a CheckResult (uses its diagnosis + engine tag); nullopt for
/// satisfiable results or refutations without a diagnosis.
std::optional<Witness> witness_from_result(const model::CompiledHistory& ch,
                                           const checker::CheckResult& r,
                                           ct::IsolationLevel level);

}  // namespace crooks::forensics
