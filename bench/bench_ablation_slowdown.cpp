// Ablation (§5.3): slowdown-cascade resilience vs stall magnitude.
//
// Sweeps the injected partition stall and reports the mean remote-visibility
// latency of transactions that never touched the stalled partition, under
// the traditional per-site total order and under client-centric
// dependencies. The traditional curve scales with the stall; the
// client-centric curve stays near the raw replication delay.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "replication/simulator.hpp"

using namespace crooks;

namespace {

repl::SimResult run_with_stall(std::uint64_t extra) {
  repl::SimOptions o;
  o.sites = 3;
  o.keys = 10'000;
  o.transactions = 4'000;
  o.replication_delay = 20;
  o.partitions = 50;
  o.site_local_writes = true;
  o.seed = 4;
  if (extra > 0) {
    o.slowdown =
        repl::Slowdown{.partition = 0, .from = 500, .until = 1500, .extra_delay = extra};
  }
  return repl::simulate(o);
}

void print_table() {
  std::printf("Slowdown-cascade ablation: unrelated-transaction visibility latency\n");
  std::printf("(3 sites, 10k keys, replication delay 20, stall window [500,1500))\n\n");
  std::printf("%12s %18s %18s %10s\n", "stall extra", "traditional PSI", "client-centric",
              "ratio");
  for (std::uint64_t extra : {0ULL, 500ULL, 1000ULL, 3000ULL, 10000ULL}) {
    const repl::SimResult r = run_with_stall(extra);
    const double trad = r.mean_unrelated_latency(true);
    const double cc = r.mean_unrelated_latency(false);
    std::printf("%12llu %18.1f %18.1f %9.1fx\n", static_cast<unsigned long long>(extra),
                trad, cc, cc > 0 ? trad / cc : 0.0);
  }
  std::printf("\n");
}

void BM_Simulate(benchmark::State& state) {
  const auto extra = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_with_stall(extra).committed);
  }
}
BENCHMARK(BM_Simulate)->Arg(0)->Arg(3000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
