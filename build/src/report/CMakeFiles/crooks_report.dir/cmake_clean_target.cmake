file(REMOVE_RECURSE
  "libcrooks_report.a"
)
