# Empty dependencies file for anomaly_matrix_test.
# This may be replaced when dependencies are built.
