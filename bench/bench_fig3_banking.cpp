// Figure 3: the banking write-skew scenario at scale.
//
// Many couples issue the two concurrent withdrawals of Figure 3 against each
// CC mode. Reported per mode: how many couples ended with a violated
// invariant (both withdrawals committed), plus checker verdicts on the run's
// observations — SI runs pass CT_SI while failing CT_SER, exactly §5.1's
// diagnosis of write skew.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "checker/checker.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

struct BankingOutcome {
  std::size_t violations = 0;  // couples with BOTH withdrawals committed
  std::size_t pairs = 0;
  bool ser_pass = false;
  bool si_pass = false;
};

BankingOutcome run_banking(store::CCMode mode, std::size_t pairs, std::uint64_t seed) {
  const auto intents = wl::banking_withdrawals(pairs);
  const store::RunResult r =
      store::run(intents, {.mode = mode, .seed = seed, .concurrency = 2 * pairs,
                           .retries = 0});

  BankingOutcome out;
  out.pairs = pairs;
  // A couple's invariant is violated iff both its withdrawals committed AND
  // neither observed the other (each read the initial balances).
  for (std::size_t p = 0; p < pairs; ++p) {
    const Key checking{2 * p}, savings{2 * p + 1};
    const model::Transaction* alice = nullptr;
    const model::Transaction* bob = nullptr;
    for (const model::Transaction& t : r.observations) {
      if (t.writes(checking)) alice = &t;
      if (t.writes(savings)) bob = &t;
    }
    if (alice == nullptr || bob == nullptr) continue;
    bool both_blind = true;
    for (const model::Operation& op : alice->ops()) {
      if (op.is_read() && !op.value.is_initial()) both_blind = false;
    }
    for (const model::Operation& op : bob->ops()) {
      if (op.is_read() && !op.value.is_initial()) both_blind = false;
    }
    if (both_blind) ++out.violations;
  }

  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  out.ser_pass =
      checker::check(ct::IsolationLevel::kSerializable, r.observations, opts)
          .satisfiable();
  out.si_pass =
      checker::check(ct::IsolationLevel::kAdyaSI, r.observations, opts).satisfiable();
  return out;
}

void print_table() {
  const store::CCMode modes[] = {
      store::CCMode::kSerial,
      store::CCMode::kTwoPhaseLocking,
      store::CCMode::kSnapshotIsolation,
      store::CCMode::kReadCommitted,
  };
  std::printf("Figure 3: concurrent withdrawals (50 couples), per CC mode\n\n");
  std::printf("%-20s %18s %10s %10s\n", "mode", "skew violations", "CT_SER", "CT_SI");
  for (store::CCMode m : modes) {
    const BankingOutcome o = run_banking(m, 50, 31);
    std::printf("%-20s %10zu / %-5zu %10s %10s\n", std::string(store::name_of(m)).c_str(),
                o.violations, o.pairs, o.ser_pass ? "pass" : "FAIL",
                o.si_pass ? "pass" : "FAIL");
  }
  std::printf("\nSnapshot isolation commits both withdrawals of (almost) every couple —\n"
              "the run is CT_SI-valid yet CT_SER-invalid: write skew (§5.1).\n"
              "Serial and 2PL never violate the invariant.\n\n");
}

void BM_BankingRun(benchmark::State& state) {
  const auto mode = static_cast<store::CCMode>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_banking(mode, 50, 31).violations);
  }
  state.SetLabel(std::string(store::name_of(mode)));
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (store::CCMode m :
       {store::CCMode::kTwoPhaseLocking, store::CCMode::kSnapshotIsolation}) {
    benchmark::RegisterBenchmark("BM_BankingRun", BM_BankingRun)
        ->Arg(static_cast<int>(m));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
