file(REMOVE_RECURSE
  "libcrooks_adya.a"
)
