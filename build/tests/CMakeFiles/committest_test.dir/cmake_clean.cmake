file(REMOVE_RECURSE
  "CMakeFiles/committest_test.dir/committest_test.cpp.o"
  "CMakeFiles/committest_test.dir/committest_test.cpp.o.d"
  "committest_test"
  "committest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/committest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
