// Streaming isolation monitor.
//
// Real deployments don't audit after the fact — they watch the commit stream.
// OnlineChecker consumes committed transactions in the order the system
// applied them (the system's natural execution witness) and maintains, per
// tracked isolation level, whether the execution-so-far still satisfies
// every commit test. Appending is incremental: per-key version timelines
// grow append-only, a transaction's commit test is evaluated once at its
// append (placement fixes its verdict forever — the same observation that
// makes the exhaustive engine's pruning sound), and real-time/session
// recency clauses are re-checked retroactively when a late transaction
// reveals an inversion.
//
// The verdict is per-execution (CT_I over THIS order), the streaming
// analogue of ct::test_execution. A violation here means the system's own
// apply order is not a witness; the ∃e question can still be asked offline
// with checker::check.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "committest/levels.hpp"
#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "common/interval.hpp"
#include "model/transaction.hpp"

namespace crooks::checker {

class OnlineChecker {
 public:
  /// Track the given levels (default: all of them).
  explicit OnlineChecker(std::vector<ct::IsolationLevel> levels =
                             {ct::kAllLevels.begin(), ct::kAllLevels.end()});

  struct LevelStatus {
    bool ok = true;
    std::optional<TxnId> first_violation;
    std::string explanation;
  };

  /// Append the next committed transaction. Returns false if the id was
  /// already seen (the transaction is ignored).
  bool append(const model::Transaction& txn);

  const LevelStatus& status(ct::IsolationLevel level) const;
  bool all_ok() const;
  std::size_t size() const { return txns_.size(); }

  /// The levels still satisfied by the execution so far.
  std::vector<ct::IsolationLevel> surviving_levels() const;

 private:
  struct OpView {
    StateInterval rs;
    bool internal = false;
  };

  struct Placed {
    model::Transaction txn;
    StateIndex state = 0;  // 1-based
    std::vector<OpView> ops;
    DynamicBitset prec;  // populated only when PSI is tracked
  };

  bool tracking(ct::IsolationLevel level) const {
    return statuses_.contains(level);
  }
  void violate(ct::IsolationLevel level, TxnId txn, std::string why);

  OpView analyze_op(const model::Transaction& t, std::size_t op_index,
                    StateIndex parent) const;
  void evaluate_new(Placed& p);
  void check_retroactive_inversions(const Placed& p);

  std::map<ct::IsolationLevel, LevelStatus> statuses_;
  std::vector<Placed> txns_;  // in append (= execution) order
  std::map<TxnId, std::size_t> index_;
  std::map<Key, std::vector<std::pair<StateIndex, std::size_t>>> timelines_;
};

}  // namespace crooks::checker
