#include "adya/graph.hpp"

#include <algorithm>
#include <deque>

namespace crooks::adya {

namespace {

/// Position of `writer` in the (implicitly ⊥-headed) version order of a key:
/// -1 for the initial version, index otherwise, nullopt if absent.
std::optional<std::ptrdiff_t> version_pos(const std::vector<TxnId>& installers,
                                          TxnId writer) {
  if (writer == kInitTxn) return -1;
  auto it = std::find(installers.begin(), installers.end(), writer);
  if (it == installers.end()) return std::nullopt;
  return it - installers.begin();
}

}  // namespace

Dsg::Dsg(const History& h) {
  for (const HistTxn& t : h.txns()) {
    if (!t.committed) continue;
    node_.emplace(t.id, ids_.size());
    ids_.push_back(t.id);
  }
  adj_.resize(ids_.size());

  auto add_edge = [&](std::size_t from, std::size_t to, EdgeKind kind, Key key) {
    if (from == to) return;
    adj_[from].push_back(edges_.size());
    edges_.push_back({from, to, kind, key});
  };

  // Write-dependencies: consecutive installed versions (Definition A.2).
  for (const auto& [key, installers] : h.version_order()) {
    for (std::size_t i = 0; i + 1 < installers.size(); ++i) {
      add_edge(node_.at(installers[i]), node_.at(installers[i + 1]), kWW, key);
    }
  }

  // Read- and anti-dependencies.
  for (const HistTxn& t : h.txns()) {
    if (!t.committed) continue;
    const std::size_t reader = node_.at(t.id);
    for (const Event& e : t.events) {
      if (e.type != EventType::kRead) continue;
      const TxnId w = e.version.writer;
      if (w == t.id) continue;  // internal read: no inter-transaction conflict
      // Only reads of *installed* versions create DSG edges; dirty and
      // intermediate reads are the G1a/G1b phenomena, detected separately.
      const std::vector<TxnId>& installers = h.installers(e.key);
      if (w != kInitTxn) {
        if (!h.contains(w) || !h.by_id(w).committed) continue;         // G1a
        if (h.by_id(w).final_write_seq(e.key) != e.version.seq) continue;  // G1b
        const auto pos = version_pos(installers, w);
        if (!pos.has_value()) continue;
        add_edge(node_.at(w), reader, kWR, e.key);
        // Anti-dependency to the installer of the *next* version, if any.
        const std::size_t next = static_cast<std::size_t>(*pos) + 1;
        if (next < installers.size()) {
          add_edge(reader, node_.at(installers[next]), kRW, e.key);
        }
      } else {
        // Read of ⊥: anti-depends on the first installer of the key.
        if (!installers.empty()) {
          add_edge(reader, node_.at(installers.front()), kRW, e.key);
        }
      }
    }
  }
}

bool Dsg::add_start_edges(const History& h) {
  for (const HistTxn& t : h.txns()) {
    if (t.committed && (t.start_ts == kNoTimestamp || t.commit_ts == kNoTimestamp)) {
      return false;
    }
  }
  for (const HistTxn& a : h.txns()) {
    if (!a.committed) continue;
    for (const HistTxn& b : h.txns()) {
      if (!b.committed || a.id == b.id) continue;
      if (a.commit_ts < b.start_ts) {
        adj_[node_.at(a.id)].push_back(edges_.size());
        edges_.push_back({node_.at(a.id), node_.at(b.id), kSD, Key{}});
      }
    }
  }
  return true;
}

bool Dsg::add_realtime_edges(const History& h) {
  for (const HistTxn& t : h.txns()) {
    if (t.committed && (t.start_ts == kNoTimestamp || t.commit_ts == kNoTimestamp)) {
      return false;
    }
  }
  for (const HistTxn& a : h.txns()) {
    if (!a.committed) continue;
    for (const HistTxn& b : h.txns()) {
      if (!b.committed || a.id == b.id) continue;
      if (a.commit_ts < b.start_ts) {
        adj_[node_.at(a.id)].push_back(edges_.size());
        edges_.push_back({node_.at(a.id), node_.at(b.id), kRT, Key{}});
      }
    }
  }
  return true;
}

bool Dsg::has_cycle(std::uint8_t mask) const {
  return !find_cycle(mask).empty();
}

std::vector<TxnId> Dsg::find_cycle(std::uint8_t mask) const {
  // Iterative three-color DFS; on finding a back edge, unwind the explicit
  // stack to recover the cycle's nodes.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(size(), kWhite);
  std::vector<std::size_t> stack;          // DFS path (nodes)
  std::vector<std::size_t> edge_iter(size(), 0);

  for (std::size_t root = 0; root < size(); ++root) {
    if (color[root] != kWhite) continue;
    stack.push_back(root);
    color[root] = kGray;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      bool advanced = false;
      while (edge_iter[u] < adj_[u].size()) {
        const Edge& e = edges_[adj_[u][edge_iter[u]++]];
        if (!(e.kind & mask)) continue;
        if (color[e.to] == kGray) {
          // Cycle: from e.to up the stack to u.
          std::vector<TxnId> cycle;
          auto it = std::find(stack.begin(), stack.end(), e.to);
          for (; it != stack.end(); ++it) cycle.push_back(ids_[*it]);
          return cycle;
        }
        if (color[e.to] == kWhite) {
          color[e.to] = kGray;
          stack.push_back(e.to);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

bool Dsg::reachable(std::size_t from, std::size_t to, std::uint8_t mask) const {
  if (from == to) return true;
  std::vector<bool> seen(size(), false);
  std::deque<std::size_t> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (std::size_t ei : adj_[u]) {
      const Edge& e = edges_[ei];
      if (!(e.kind & mask) || seen[e.to]) continue;
      if (e.to == to) return true;
      seen[e.to] = true;
      queue.push_back(e.to);
    }
  }
  return false;
}

bool Dsg::cycle_with_exactly_one(EdgeKind single, std::uint8_t others) const {
  for (const Edge& e : edges_) {
    if (e.kind != single) continue;
    if (reachable(e.to, e.from, others)) return true;
  }
  return false;
}

std::vector<TxnId> Dsg::find_cycle_with_exactly_one(EdgeKind single,
                                                    std::uint8_t others) const {
  for (const Edge& start : edges_) {
    if (start.kind != single) continue;
    // BFS from start.to back to start.from over `others`, keeping parents.
    std::vector<std::ptrdiff_t> parent(size(), -1);
    std::deque<std::size_t> queue{start.to};
    parent[start.to] = static_cast<std::ptrdiff_t>(start.to);
    bool found = start.to == start.from;
    while (!queue.empty() && !found) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (std::size_t ei : adj_[u]) {
        const Edge& e = edges_[ei];
        if (!(e.kind & others) || parent[e.to] != -1) continue;
        parent[e.to] = static_cast<std::ptrdiff_t>(u);
        if (e.to == start.from) {
          found = true;
          break;
        }
        queue.push_back(e.to);
      }
    }
    if (!found) continue;
    std::vector<TxnId> cycle;
    std::size_t node = start.from;
    while (node != start.to) {
      cycle.push_back(ids_[node]);
      node = static_cast<std::size_t>(parent[node]);
    }
    cycle.push_back(ids_[start.to]);
    std::reverse(cycle.begin(), cycle.end());
    // Rotate so the anti-dependency edge's source leads.
    std::rotate(cycle.begin(),
                std::find(cycle.begin(), cycle.end(), ids_[start.from]), cycle.end());
    return cycle;
  }
  return {};
}

std::string to_string(EdgeKind k) {
  switch (k) {
    case kWW: return "ww";
    case kWR: return "wr";
    case kRW: return "rw";
    case kSD: return "sd";
    case kRT: return "rt";
  }
  return "?";
}

}  // namespace crooks::adya
