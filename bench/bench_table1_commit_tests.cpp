// Table 1: the commit tests, as executable checks.
//
// Two outputs: (1) the verdict matrix — for a store run at each CC mode,
// which Table 1 levels does the run satisfy (reproducing the table's
// semantic content: each test accepts exactly the behaviours of its level);
// (2) google-benchmark timings for evaluating each commit test over a fixed
// execution, and for the full ∃e checker decision — the cost of auditing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "checker/checker.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

const ct::IsolationLevel kTable1[] = {
    ct::IsolationLevel::kSerializable,  ct::IsolationLevel::kAdyaSI,
    ct::IsolationLevel::kReadCommitted, ct::IsolationLevel::kReadUncommitted,
    ct::IsolationLevel::kPSI,           ct::IsolationLevel::kStrictSerializable,
    ct::IsolationLevel::kReadAtomic,
};

store::RunResult make_run(store::CCMode mode, std::size_t txns = 200,
                          std::size_t keys = 24) {
  const auto intents = wl::generate_mix({.transactions = txns,
                                         .keys = keys,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = 99});
  return store::run(intents,
                    {.mode = mode, .seed = 17, .concurrency = 6, .retries = 3});
}

void print_matrix() {
  const store::CCMode modes[] = {
      store::CCMode::kSerial,          store::CCMode::kTwoPhaseLocking,
      store::CCMode::kSnapshotIsolation, store::CCMode::kReadAtomic,
      store::CCMode::kReadCommitted,   store::CCMode::kReadUncommitted,
  };
  std::printf("Table 1 commit tests vs store runs (200 txns, 24 keys, 2r+2w):\n\n");
  std::printf("%-20s", "commit test \\ run");
  for (store::CCMode m : modes) std::printf(" %10.10s", std::string(store::name_of(m)).c_str());
  std::printf("\n");
  std::vector<store::RunResult> runs;
  for (store::CCMode m : modes) runs.push_back(make_run(m));
  for (ct::IsolationLevel level : kTable1) {
    std::printf("%-20s", std::string(ct::name_of(level)).c_str());
    for (const store::RunResult& r : runs) {
      checker::CheckOptions opts;
      opts.version_order = &r.version_order;
      const checker::CheckResult res = checker::check(level, r.observations, opts);
      std::printf(" %10s", res.satisfiable() ? "pass" : res.unsatisfiable() ? "fail" : "?");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// --- timing: CT_I(T, e) evaluation over a fixed execution ------------------

void BM_CommitTest(benchmark::State& state) {
  const auto level = static_cast<ct::IsolationLevel>(state.range(0));
  const store::RunResult r = make_run(store::CCMode::kSnapshotIsolation);
  const model::Execution e = *checker::check(ct::IsolationLevel::kReadCommitted,
                                             r.observations)
                                  .witness;
  const model::ReadStateAnalysis analysis(r.observations, e);
  const ct::CommitTester tester(analysis);
  for (auto _ : state) {
    for (std::size_t d = 0; d < r.observations.size(); ++d) {
      benchmark::DoNotOptimize(tester.test(level, d).ok);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.observations.size()));
  state.SetLabel(std::string(ct::name_of(level)));
}

// --- timing: the full ∃e decision ------------------------------------------

void BM_CheckerDecision(benchmark::State& state) {
  const auto level = static_cast<ct::IsolationLevel>(state.range(0));
  const store::RunResult r = make_run(store::CCMode::kSnapshotIsolation);
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::check(level, r.observations, opts).outcome);
  }
  state.SetLabel(std::string(ct::name_of(level)));
}

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  for (ct::IsolationLevel l : kTable1) {
    benchmark::RegisterBenchmark("BM_CommitTest", BM_CommitTest)
        ->Arg(static_cast<int>(l));
    benchmark::RegisterBenchmark("BM_CheckerDecision", BM_CheckerDecision)
        ->Arg(static_cast<int>(l));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
