// Fixed-size worker pool with a shared FIFO task queue.
//
// The checker's parallel layers (check_batch fan-out, the branch-parallel
// exhaustive search) are structured as "submit N independent tasks, wait for
// all of them": the pool supports exactly that shape. Tasks are void()
// callables; the first exception thrown by any task is captured and rethrown
// from wait(), so a parallel section fails as loudly as a sequential loop
// would instead of losing the error inside a worker thread.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace crooks {

namespace pool_detail {

/// Process-wide pool gauges/counters (all ThreadPool instances aggregate into
/// the same series — the scrape-level question is "how deep is the backlog",
/// not "which pool"). Function-local statics so header-only use stays ODR-safe.
inline obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_pool_queue_depth", "Tasks submitted but not yet started");
  return g;
}
inline obs::Gauge& inflight_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_pool_inflight", "Tasks currently executing on a pool worker");
  return g;
}
inline obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_pool_tasks_total", "Tasks completed by pool workers");
  return c;
}
inline obs::Histogram& task_latency_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "crooks_pool_task_seconds",
      "Task latency from submit to completion (queue wait + execution)");
  return h;
}

}  // namespace pool_detail

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = default_threads();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Joins the workers. Tasks still queued (not yet started) are dropped;
  /// call wait() first if every submitted task must run.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      if (!queue_.empty()) {
        pool_detail::queue_depth_gauge().add(
            -static_cast<std::int64_t>(queue_.size()));
      }
      queue_.clear();
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  static std::size_t default_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
  }

  /// Enqueue one task; returns immediately.
  void submit(std::function<void()> task) {
    QueuedTask qt{std::move(task), {}};
    if (obs::enabled()) qt.submitted = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
      queue_.push_back(std::move(qt));
    }
    pool_detail::queue_depth_gauge().add(1);
    cv_.notify_one();
  }

  /// Tasks submitted but not yet picked up by a worker. Snapshot only — the
  /// value may be stale the moment it returns; intended for dashboards and
  /// tests, not for scheduling decisions.
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Tasks currently executing on a worker (same snapshot caveat).
  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return outstanding_ - queue_.size();
  }

  /// Block until every task submitted so far has finished, then rethrow the
  /// first exception any of them raised (if any). The pool is reusable after
  /// wait() returns or throws.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      QueuedTask task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and queue drained/cleared
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      pool_detail::queue_depth_gauge().add(-1);
      pool_detail::inflight_gauge().add(1);
      try {
        task.fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      pool_detail::inflight_gauge().add(-1);
      pool_detail::tasks_counter().inc();
      if (task.submitted != std::chrono::steady_clock::time_point{}) {
        pool_detail::task_latency_histogram().observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          task.submitted)
                .count());
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point submitted;  // zero when obs is off
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // wait(): all submitted tasks finished
  std::deque<QueuedTask> queue_;
  std::size_t outstanding_ = 0;  // queued + running
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for every i in [0, n) across `threads` workers and block until
/// all complete. threads == 0 means hardware_concurrency; threads == 1 (or
/// n <= 1) runs inline on the calling thread with no pool at all, so the
/// single-threaded path is bit-for-bit the plain loop.
inline void parallel_for_each_index(std::size_t threads, std::size_t n,
                                    const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = ThreadPool::default_threads();
  if (threads == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace crooks
