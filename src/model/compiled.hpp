// Compiled history: the one interned, flat representation every engine shares.
//
// Every consumer of a TransactionSet used to re-derive the same structure from
// hash-based containers — per-key timelines in unordered_maps, `contains(w)` /
// `write_set().contains(k)` probes on every search node, O(n²) real-time
// scans. CompiledHistory performs that derivation exactly once:
//
//   * keys are interned to dense `KeyIdx` (0..key_count),
//   * each read's observed writer is resolved once to a dense `TxnIdx`, with
//     phantom / unknown-writer / internal-read classification precomputed as
//     a flags byte (so search-time interval logic is a table lookup on a
//     byte, not a chain of hash probes),
//   * per-transaction read/write footprints are sorted dense arrays plus a
//     per-transaction `DynamicBitset` write mask (O(1) "does T write k"),
//   * per-key committed-writer lists are rows over `KeyIdx`,
//   * read-from edges are the `kReadExternal` ops themselves (writer already
//     dense), and
//   * real-time + session predecessor/successor adjacency is computed in one
//     sorted pass, lazily (only the exhaustive engine needs it; read-state
//     analysis of large histories must not pay O(n²)).
//
// Two construction modes:
//
//   * Borrowing (the original): `CompiledHistory(set)` compiles a finished
//     TransactionSet it does not own. The set must outlive the compiled view
//     and must not be moved while it exists. This form is immutable.
//   * Owning / growable (streaming): the default constructor produces an
//     empty history that owns its TransactionSet; `extend(block)` appends a
//     block of transactions and recompiles *incrementally* — interners are
//     extended, footprint/adjacency rows are appended in place, previously
//     unknown writers are re-resolved when they arrive, and the block's
//     candidates are spliced into `ts_order` without re-sorting the prefix.
//     The result is structurally identical to compiling the concatenated set
//     from scratch (asserted field-for-field by tests/online_incremental_test),
//     so every engine can consume a grown history transparently.
//
// Thread-safety: concurrent readers may share one instance (lazy adjacency is
// built under a mutex with an atomic published flag). `extend` is a writer:
// it must not race with any reader — the streaming OnlineChecker, its only
// concurrent-capable consumer, is externally synchronized anyway.
//
// Verdict independence: compilation is a pure re-indexing — every predicate an
// engine evaluates (read-state intervals, PREREAD/COMPLETE/NO-CONF, version
// order admissibility, phenomena) is defined on the underlying observations,
// and the compiled fields are bijective images of them. The differential suite
// (tests/compiled_history_test.cpp) checks verdict-for-verdict agreement with
// the frozen hash-based reference on every level.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "committest/levels.hpp"
#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "model/transaction.hpp"

namespace crooks::model {

/// Dense index of an interned key (assignment order of first appearance).
using KeyIdx = std::uint32_t;
/// Dense index of a transaction (== TransactionSet::dense_index_of).
using TxnIdx = std::uint32_t;

inline constexpr KeyIdx kNoKeyIdx = ~KeyIdx{0};
inline constexpr TxnIdx kNoTxnIdx = ~TxnIdx{0};

/// Key ↔ dense-index bijection. Also used standalone by consumers whose key
/// universe grows with a stream.
class KeyInterner {
 public:
  KeyIdx intern(Key k) {
    auto [it, inserted] = idx_.try_emplace(k, static_cast<KeyIdx>(keys_.size()));
    if (inserted) keys_.push_back(k);
    return it->second;
  }

  /// kNoKeyIdx when the key was never interned.
  KeyIdx find(Key k) const {
    auto it = idx_.find(k);
    return it == idx_.end() ? kNoKeyIdx : it->second;
  }

  Key key_of(KeyIdx i) const { return keys_[i]; }
  std::size_t size() const { return keys_.size(); }

 private:
  std::unordered_map<Key, KeyIdx> idx_;
  std::vector<Key> keys_;
};

/// Classification of one operation — the branch structure of
/// ReadStateAnalysis::read_states_of / PrefixSearch::interval_of, resolved at
/// compile time so the per-node search path is hash-free. Not stored: derived
/// from the flags byte by `op_class_of` (one table load), so the hot per-op
/// state is exactly {key, writer, flags} in three parallel arrays.
enum class OpClass : std::uint8_t {
  kWrite,         // RS = [0, parent] by convention (§3)
  kReadInitial,   // external read of ⊥: version installed at state 0
  kReadExternal,  // external read of `writer` (a committed member, key match)
  kReadInternal,  // read after own write, observing the own write: RS = [0, parent]
  kReadNever,     // RS = ∅ in every execution (phantom, malformed internal,
                  // self-external, unknown writer, writer misses the key)
};

// Structural facts about an operation, recorded independently so the Adya
// phenomena (G1a/G1b/fractured) can be re-derived without re-parsing. Bits
// 0–5 describe reads; bit 6 marks writes. OpClass is a pure function of this
// byte (see op_class_of), which is what lets extend()'s late-writer
// re-resolution mutate flags alone and have the classification follow.
inline constexpr std::uint8_t kOpPhantom = 1 << 0;             // observed non-final write
inline constexpr std::uint8_t kOpInitWriter = 1 << 1;          // observed writer is ⊥
inline constexpr std::uint8_t kOpSelfWriter = 1 << 2;          // observed writer is self
inline constexpr std::uint8_t kOpUnknownWriter = 1 << 3;       // writer outside the set
inline constexpr std::uint8_t kOpWriterMissesKey = 1 << 4;     // member, but never writes key
inline constexpr std::uint8_t kOpPositionalInternal = 1 << 5;  // own write earlier in Σ_T
inline constexpr std::uint8_t kOpWrite = 1 << 6;               // the op is a write

namespace detail {
/// The exact branch order of compile-time classification (phantom before
/// positional before self before init before unknown / misses-key), evaluated
/// once per flag pattern at compile time into a 128-entry table.
constexpr OpClass classify_flags(std::uint8_t m) {
  if (m & kOpWrite) return OpClass::kWrite;
  if (m & kOpPhantom) return OpClass::kReadNever;
  if (m & kOpPositionalInternal) {
    return (m & kOpSelfWriter) != 0 ? OpClass::kReadInternal : OpClass::kReadNever;
  }
  if (m & kOpSelfWriter) return OpClass::kReadNever;
  if (m & kOpInitWriter) return OpClass::kReadInitial;
  if (m & (kOpUnknownWriter | kOpWriterMissesKey)) return OpClass::kReadNever;
  return OpClass::kReadExternal;
}

struct OpClassTable {
  std::array<OpClass, 128> cls{};
  constexpr OpClassTable() {
    for (std::size_t m = 0; m < cls.size(); ++m) {
      cls[m] = classify_flags(static_cast<std::uint8_t>(m));
    }
  }
};
inline constexpr OpClassTable kOpClassTable{};
}  // namespace detail

/// OpClass of a flags byte: a single indexed load on the search hot path.
inline OpClass op_class_of(std::uint8_t flags) {
  return detail::kOpClassTable.cls[flags & 0x7F];
}

/// One operation gathered back into record form — the cold-path / test-facing
/// view. Engines' hot loops should use OpsView's field accessors instead,
/// which touch only the arrays they need.
struct CompiledOp {
  KeyIdx key = kNoKeyIdx;
  /// Resolved dense index of the observed writer whenever it is a member of
  /// the set (including self and writer-misses-key reads, so phenomena can be
  /// reconstructed); kNoTxnIdx for writes, ⊥ and unknown writers.
  TxnIdx writer = kNoTxnIdx;
  OpClass cls = OpClass::kWrite;
  std::uint8_t flags = 0;

  bool is_write() const { return cls == OpClass::kWrite; }
  bool is_read() const { return cls != OpClass::kWrite; }

  /// Matches OpAnalysis::internal: a positional-internal read, with the
  /// phantom check taking precedence (a phantom read is never "internal").
  bool internal() const {
    return is_read() && (flags & kOpPositionalInternal) != 0 &&
           (flags & kOpPhantom) == 0;
  }
};

/// Non-owning indexed view over one transaction's ops in the SoA layout.
/// Field accessors read exactly one parallel array; predicates read only the
/// flags byte; `operator[]` gathers a full CompiledOp for cold paths. Indices
/// are aligned with Transaction::ops().
class OpsView {
 public:
  OpsView() = default;
  OpsView(const KeyIdx* keys, const TxnIdx* writers, const std::uint8_t* flags,
          std::size_t n)
      : keys_(keys), writers_(writers), flags_(flags), n_(n) {}

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  KeyIdx key(std::size_t i) const { return keys_[i]; }
  TxnIdx writer(std::size_t i) const { return writers_[i]; }
  std::uint8_t flags(std::size_t i) const { return flags_[i]; }
  OpClass cls(std::size_t i) const { return op_class_of(flags_[i]); }
  bool is_write(std::size_t i) const { return (flags_[i] & kOpWrite) != 0; }
  bool is_read(std::size_t i) const { return (flags_[i] & kOpWrite) == 0; }
  bool internal(std::size_t i) const {
    const std::uint8_t m = flags_[i];
    return (m & (kOpWrite | kOpPhantom)) == 0 && (m & kOpPositionalInternal) != 0;
  }

  CompiledOp operator[](std::size_t i) const {
    return CompiledOp{keys_[i], writers_[i], cls(i), flags_[i]};
  }

 private:
  const KeyIdx* keys_ = nullptr;
  const TxnIdx* writers_ = nullptr;
  const std::uint8_t* flags_ = nullptr;
  std::size_t n_ = 0;
};

/// Sparse rows: `row(i)` is a span over row i's items. Stored per-row (not as
/// one flat CSR) so `extend` can append to interior rows in place; the row
/// accessors are unchanged from the CSR form, so engines are oblivious.
struct Rows {
  std::vector<std::vector<TxnIdx>> rows;

  std::span<const TxnIdx> row(std::size_t i) const { return rows[i]; }
  std::size_t row_size(std::size_t i) const { return rows[i].size(); }
  std::size_t size() const { return rows.size(); }
};

/// What one `CompiledHistory::extend` call added — the delta a streaming
/// consumer needs to evaluate exactly the new transactions.
struct CompiledDelta {
  TxnIdx first = 0;             // dense index of the block's first transaction
  std::uint32_t count = 0;      // transactions appended
  KeyIdx first_new_key = 0;     // keys [first_new_key, key_count) are new
  /// Reads of *prefix* transactions whose observed writer arrived in this
  /// block and was re-resolved in place: (owner dense index, op index).
  std::vector<std::pair<TxnIdx, std::uint32_t>> resolved;
};

class CompiledHistory {
 public:
  /// Borrowing mode: compile a finished set (must outlive this object).
  explicit CompiledHistory(const TransactionSet& txns);

  /// Owning / growable mode: an empty history that owns its TransactionSet.
  /// Grow it with extend(); txns() always reflects the transactions so far.
  CompiledHistory();

  CompiledHistory(const CompiledHistory&) = delete;
  CompiledHistory& operator=(const CompiledHistory&) = delete;

  /// True in the growable mode (default-constructed).
  bool owns_transactions() const { return owned_ != nullptr; }

  /// Append a block of transactions and recompile incrementally. Only valid
  /// in the owning mode (throws std::logic_error otherwise); throws
  /// std::invalid_argument on a duplicate or reserved id, like the
  /// TransactionSet constructor. The returned delta is valid until the next
  /// extend(). Not thread-safe against concurrent readers.
  const CompiledDelta& extend(std::span<const Transaction> block);
  const CompiledDelta& extend(const Transaction& txn) {
    return extend(std::span<const Transaction>(&txn, 1));
  }

  // --- epoch-based prefix retirement (bounded-memory streaming) -------------
  //
  // retire(upto) folds the prefix [0, upto) into a summarized base state so a
  // monitor can run forever: the per-op SoA arrays, read-key footprints,
  // write masks, materialized adjacency rows and the owned Transaction
  // payloads of the prefix are reclaimed; everything a *future* append can
  // still be judged against is retained, at a flat few dozen bytes per
  // retired transaction:
  //
  //   * every scalar column (ids_, start/commit timestamps, session, level
  //     tag) — so duplicate detection, C-ORD, time_precedes and the
  //     retroactive real-time inversion scans stay EXACT over retired ids,
  //   * the offset arrays (op_begin_, wk/rk_begin_) — op counts stay known,
  //   * the sorted write-key footprints (write_keys_ + writers_of_) — so
  //     writes_key() stays exact forever (resident transactions use the
  //     bitset mask; retired ones binary-search their retained span),
  //   * ts_order_ — splicing in extend() is untouched.
  //
  // Dense indices are stable (a stable-offset scheme, not a remap): ops(d)
  // subtracts a base offset, so extend() after retire() appends exactly the
  // bytes an unretired twin would — bit-identical for every resident field,
  // asserted by tests/online_window_test.cpp. Accessing the reclaimed fields
  // of a retired transaction (ops(), read_keys(), write_mask()) is undefined;
  // callers must check `d >= retired()` first. The offline engines refuse
  // retired histories outright (they answer ∃e over the full history).
  struct RetireStats {
    TxnIdx watermark = 0;             // first resident dense index after the call
    std::uint32_t txns = 0;           // transactions retired by this call
    std::uint64_t ops = 0;            // compiled ops reclaimed by this call
    std::uint64_t pending_purged = 0; // unresolved-writer entries dropped
  };

  /// Fold the prefix [0, upto) (clamped to size(); monotone — a watermark
  /// at or below retired() is a no-op). Owning mode only.
  RetireStats retire(TxnIdx upto);

  /// Dense index of the first non-retired transaction (0 = nothing retired).
  TxnIdx retired() const { return retired_; }
  /// Compiled ops currently resident (excludes reclaimed prefix ops) — the
  /// flatness gauge the windowed soak bench and CI gate watch.
  std::size_t resident_ops() const { return op_flags_.size(); }

  const TransactionSet& txns() const { return *txns_; }
  std::size_t size() const { return n_; }
  std::size_t key_count() const { return keys_.size(); }
  const KeyInterner& keys() const { return keys_; }

  /// Dense id column: ids_[d] == txns().at(d).id(). Transactions are ~200
  /// bytes each; a linear pass that only needs ids must stream 8 bytes per
  /// transaction, not a cache line.
  TxnId id_of(TxnIdx d) const { return ids_[d]; }
  const std::vector<TxnId>& ids() const { return ids_; }

  // --- per-transaction compiled ops and footprints --------------------------

  /// Ops of transaction `d`, index-aligned with Transaction::ops(). The view
  /// is backed by the three parallel arrays; it is invalidated by extend().
  /// Undefined for d < retired() — the prefix ops are reclaimed.
  OpsView ops(TxnIdx d) const {
    const std::uint32_t b = op_begin_[d] - ops_base_;
    return OpsView(op_key_.data() + b, op_writer_.data() + b,
                   op_flags_.data() + b, op_begin_[d + 1] - op_begin_[d]);
  }

  /// Number of ops of transaction `d` without materializing a view.
  std::size_t op_count(TxnIdx d) const { return op_begin_[d + 1] - op_begin_[d]; }

  /// Sorted dense keys the transaction (finally) writes / externally reads.
  /// Write footprints are retained across retire(); read footprints are
  /// reclaimed (undefined for d < retired()).
  std::span<const KeyIdx> write_keys(TxnIdx d) const {
    return {write_keys_.data() + wk_begin_[d], write_keys_.data() + wk_begin_[d + 1]};
  }
  std::span<const KeyIdx> read_keys(TxnIdx d) const {
    return {read_keys_.data() + (rk_begin_[d] - rk_base_),
            read_keys_.data() + (rk_begin_[d + 1] - rk_base_)};
  }

  /// Membership test on the write footprint — exact for every transaction
  /// ever appended, retired or not. Resident transactions test their bitset
  /// mask in O(1); retired ones binary-search the retained sorted footprint
  /// (the masks, sized to the whole key universe, are what retire()
  /// reclaims). Safe for keys interned after `d` was compiled (a grown
  /// history's masks are not retro-widened): a transaction never writes a
  /// key first revealed by a later block.
  bool writes_key(TxnIdx d, KeyIdx k) const {
    if (d >= retired_) {
      const DynamicBitset& m = write_mask_[d - retired_];
      return k < m.size() && m.test(k);
    }
    const std::span<const KeyIdx> wk = write_keys(d);
    return std::binary_search(wk.begin(), wk.end(), k);
  }
  /// Undefined for d < retired().
  const DynamicBitset& write_mask(TxnIdx d) const {
    return write_mask_[d - retired_];
  }

  /// Committed writers of a key, in dense (declaration) order.
  std::span<const TxnIdx> writers_of(KeyIdx k) const { return writers_of_.row(k); }

  // --- timestamps and sessions ---------------------------------------------

  Timestamp start_ts(TxnIdx d) const { return start_ts_[d]; }
  Timestamp commit_ts(TxnIdx d) const { return commit_ts_[d]; }
  SessionId session(TxnIdx d) const { return session_[d]; }

  // --- per-transaction isolation-level annotations --------------------------

  /// Raw u8 level tag of transaction `d`: the numeric ct::IsolationLevel of
  /// its `level=` annotation, or kNoLevelTag when the observation carries
  /// none. A dense column like ids_/start_ts_ so a level-resolution pass
  /// streams one byte per transaction; preserved bit-identically by extend()
  /// (grown ≡ fresh, asserted by tests/mixed_levels_test.cpp).
  static constexpr std::uint8_t kNoLevelTag = 0xFF;
  std::uint8_t level_tag(TxnIdx d) const { return level_tag_[d]; }
  const std::vector<std::uint8_t>& level_tags() const { return level_tag_; }
  std::optional<ct::IsolationLevel> annotated_level(TxnIdx d) const {
    const std::uint8_t t = level_tag_[d];
    if (t == kNoLevelTag) return std::nullopt;
    return static_cast<ct::IsolationLevel>(t);
  }
  /// Number of transactions carrying an annotation (0 ⇒ every level-resolve
  /// is the fallback — the uniform fast path).
  std::size_t annotated_level_count() const { return annotated_levels_; }
  bool has_timestamps(TxnIdx d) const {
    return start_ts_[d] != kNoTimestamp && commit_ts_[d] != kNoTimestamp;
  }
  bool all_timestamped() const { return all_timestamped_; }

  /// T_a <_s T_b (§3): commit(a) strictly before start(b), both known.
  bool time_precedes(TxnIdx a, TxnIdx b) const {
    return commit_ts_[a] != kNoTimestamp && start_ts_[b] != kNoTimestamp &&
           commit_ts_[a] < start_ts_[b];
  }

  /// Deterministic candidate order: timestamped transactions first, by
  /// (commit_ts, dense index); untimestamped after, in dense order. This is a
  /// total order — unlike the pre-compile comparator, which compared
  /// untimestamped elements "equivalent" to everything and was not a strict
  /// weak order on mixed inputs (UB under std::sort). extend() splices new
  /// candidates into both regions without re-sorting the prefix.
  const std::vector<TxnIdx>& ts_order() const { return ts_order_; }

  // --- real-time / session adjacency (lazy) --------------------------------

  struct Adjacency {
    Rows rt_preds, rt_succs;      // a ∈ rt_preds[b] ⟺ a <_s b
    Rows sess_preds, sess_succs;  // same, restricted to a.session == b.session
    // Sort indices kept so extend() can update the rows incrementally:
    std::vector<TxnIdx> by_commit;  // commit-timestamped txns, by (commit, dense)
    std::vector<TxnIdx> by_start;   // start-timestamped txns, by (start, dense)
  };

  /// Computed on first use (one sorted pass + edge fill), then shared;
  /// thread-safe so parallel search branches can share one instance. If
  /// already materialized when extend() runs, the rows are updated in place
  /// (prefix rows gain late-arriving predecessors at their sorted position),
  /// bit-identical to rebuilding from scratch.
  const Adjacency& adjacency() const;

 private:
  /// Compile transactions [first, txns_->size()): the constructor's whole-set
  /// pass and extend()'s per-block pass are the same code.
  void compile_block(TxnIdx first);
  Adjacency build_adjacency() const;
  void extend_adjacency(Adjacency& adj, TxnIdx first) const;
  bool ts_less(TxnIdx a, TxnIdx b) const;

  const TransactionSet* txns_;
  std::unique_ptr<TransactionSet> owned_;  // set iff owning / growable mode
  std::size_t n_ = 0;
  KeyInterner keys_;

  // Structure-of-arrays op storage: op i of transaction d lives at index
  // op_begin_[d] + i - ops_base_ of each array. Field-separated so a loop
  // that needs only flags (admissibility prescans, phenomenon detection)
  // streams one byte per op instead of a 12-byte record. op_begin_ holds
  // ABSOLUTE offsets forever; retire() front-erases the arrays and advances
  // ops_base_ (the stable-offset scheme), so resident indexing — and every
  // byte extend() appends — is identical to an unretired twin's.
  std::vector<KeyIdx> op_key_;
  std::vector<TxnIdx> op_writer_;
  std::vector<std::uint8_t> op_flags_;
  std::vector<std::uint32_t> op_begin_;
  std::vector<KeyIdx> write_keys_, read_keys_;
  std::vector<std::uint32_t> wk_begin_, rk_begin_;
  std::vector<DynamicBitset> write_mask_;  // resident only: index d - retired_
  Rows writers_of_;  // rows indexed by KeyIdx

  // Retirement state: [0, retired_) is folded. ops_base_/rk_base_ are the
  // absolute offsets of the first resident entry of the front-erased arrays.
  TxnIdx retired_ = 0;
  std::uint32_t ops_base_ = 0;
  std::uint32_t rk_base_ = 0;

  std::vector<TxnId> ids_;
  std::vector<Timestamp> start_ts_, commit_ts_;
  std::vector<SessionId> session_;
  std::vector<std::uint8_t> level_tag_;
  std::size_t annotated_levels_ = 0;
  bool all_timestamped_ = true;
  std::vector<TxnIdx> ts_order_;
  std::size_t ts_timed_ = 0;  // length of the timestamped prefix of ts_order_

  /// Owning mode: reads whose observed writer is not (yet) a member, by
  /// awaited writer id — re-resolved in place if that writer arrives later.
  std::unordered_map<TxnId, std::vector<std::pair<TxnIdx, std::uint32_t>>> pending_;
  CompiledDelta delta_;
  std::vector<char> written_scratch_;  // per-txn program-order scratch, keyed by KeyIdx

  mutable std::mutex adj_mu_;
  mutable std::atomic<bool> adj_ready_{false};
  mutable std::optional<Adjacency> adj_;
};

}  // namespace crooks::model
