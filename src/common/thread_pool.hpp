// Fixed-size worker pool with a shared FIFO task queue, plus a bounded MPMC
// result queue.
//
// The checker's parallel layers (check_batch fan-out, the branch-parallel
// exhaustive search) are structured as "submit N independent tasks, wait for
// all of them": the pool supports exactly that shape. Tasks are void()
// callables; the first exception thrown by any task is captured and rethrown
// from wait(), so a parallel section fails as loudly as a sequential loop
// would instead of losing the error inside a worker thread.
//
// MpmcQueue complements the pool for producer/consumer shapes where the
// submitter wants results *as they complete* instead of a wait() barrier:
// workers push completion records, the caller blocks on pop() and drains them
// in completion order (check_batch's sharded scheduler is the canonical user).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace crooks {

namespace pool_detail {

/// Process-wide pool gauges/counters (all ThreadPool instances aggregate into
/// the same series — the scrape-level question is "how deep is the backlog",
/// not "which pool"). Function-local statics so header-only use stays ODR-safe.
inline obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_pool_queue_depth", "Tasks submitted but not yet started");
  return g;
}
inline obs::Gauge& inflight_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_pool_inflight", "Tasks currently executing on a pool worker");
  return g;
}
inline obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_pool_tasks_total", "Tasks completed by pool workers");
  return c;
}
inline obs::Histogram& task_latency_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "crooks_pool_task_seconds",
      "Task latency from submit to completion (queue wait + execution)");
  return h;
}

}  // namespace pool_detail

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = default_threads();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Joins the workers. Tasks still queued (not yet started) are dropped;
  /// call wait() first if every submitted task must run.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      if (!queue_.empty()) {
        pool_detail::queue_depth_gauge().add(
            -static_cast<std::int64_t>(queue_.size()));
      }
      queue_.clear();
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  static std::size_t default_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
  }

  /// Enqueue one task; returns immediately.
  void submit(std::function<void()> task) {
    QueuedTask qt{std::move(task), {}};
    if (obs::enabled()) qt.submitted = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
      queue_.push_back(std::move(qt));
    }
    pool_detail::queue_depth_gauge().add(1);
    cv_.notify_one();
  }

  /// Tasks submitted but not yet picked up by a worker. Snapshot only — the
  /// value may be stale the moment it returns; intended for dashboards and
  /// tests, not for scheduling decisions.
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Tasks currently executing on a worker (same snapshot caveat).
  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return outstanding_ - queue_.size();
  }

  /// Block until every task submitted so far has finished, then rethrow the
  /// first exception any of them raised (if any). The pool is reusable after
  /// wait() returns or throws.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      QueuedTask task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and queue drained/cleared
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      pool_detail::queue_depth_gauge().add(-1);
      pool_detail::inflight_gauge().add(1);
      try {
        task.fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      pool_detail::inflight_gauge().add(-1);
      pool_detail::tasks_counter().inc();
      if (task.submitted != std::chrono::steady_clock::time_point{}) {
        pool_detail::task_latency_histogram().observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          task.submitted)
                .count());
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point submitted;  // zero when obs is off
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // wait(): all submitted tasks finished
  std::deque<QueuedTask> queue_;
  std::size_t outstanding_ = 0;  // queued + running
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

/// Bounded multi-producer / multi-consumer FIFO queue (Vyukov-style ring:
/// per-cell sequence numbers, one CAS per push/pop, no mutex). Producers and
/// consumers may run on any mix of threads; a blocked pop() parks on a C++20
/// atomic wait instead of spinning.
///
/// Capacity is fixed at construction (rounded up to a power of two). Sized to
/// the number of producers' total pushes — the check_batch scheduler sizes it
/// to the shard count — try_push never fails and push() never blocks; the
/// loop in push() is a safety net, not an expected path.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Number of completed pushes so far (monotone; used by pop() to park).
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_acquire); }

  /// False iff the ring is full. On success the element is visible to a
  /// concurrent pop() before try_push returns. The by-value form consumes
  /// `v` either way; when the caller must retry on a full ring (the pipelined
  /// ingest's backpressure path), use try_push_ref — it moves from `v` only
  /// after a cell has been claimed, so a failed attempt leaves `v` intact.
  bool try_push(T v) { return try_push_ref(v); }

  bool try_push_ref(T& v) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the cell still holds an unpopped element: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_release);
    pushed_.notify_all();
    return true;
  }

  /// Blocking push: yields until a slot frees up. This IS an expected path
  /// for the pipelined ingest, whose bounded rings turn a slow consumer into
  /// backpressure on the producer instead of unbounded buffering.
  void push(T v) {
    while (!try_push_ref(v)) std::this_thread::yield();
  }

  /// Elements currently in the ring (pushed, not yet popped). Racy snapshot —
  /// the cursors are read independently — clamped to [0, capacity]; intended
  /// for queue-depth gauges, never for scheduling decisions.
  std::size_t approx_size() const {
    const auto h = static_cast<std::intptr_t>(head_.load(std::memory_order_relaxed));
    const auto t = static_cast<std::intptr_t>(tail_.load(std::memory_order_relaxed));
    const std::intptr_t d = h - t;
    if (d <= 0) return 0;
    return std::min(static_cast<std::size_t>(d), capacity());
  }

  /// False iff the queue is empty at the moment of the call.
  bool try_pop(T& out) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // no element published at this position yet: empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Pop one element, blocking until one is available. The snapshot-then-wait
  /// shape is missed-wakeup-free: if a push lands between the failed try_pop
  /// and the wait, the pushed_ counter no longer equals the snapshot and
  /// wait() returns immediately.
  T pop() {
    T out;
    for (;;) {
      const std::uint64_t seen = pushed_.load(std::memory_order_acquire);
      if (try_pop(out)) return out;
      pushed_.wait(seen, std::memory_order_acquire);
    }
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  // Producer and consumer cursors on separate cache lines so a push CAS does
  // not invalidate the poppers' line (and vice versa).
  alignas(64) std::atomic<std::size_t> head_{0};  // next push position
  alignas(64) std::atomic<std::size_t> tail_{0};  // next pop position
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
};

/// Run fn(i) for every i in [0, n) across `threads` workers and block until
/// all complete. threads == 0 means hardware_concurrency; threads == 1 (or
/// n <= 1) runs inline on the calling thread with no pool at all, so the
/// single-threaded path is bit-for-bit the plain loop.
inline void parallel_for_each_index(std::size_t threads, std::size_t n,
                                    const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = ThreadPool::default_threads();
  if (threads == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace crooks
