// Incremental compilation and the streaming checker, differentially.
//
// Three oracles pin the incremental paths down:
//  * a grown CompiledHistory must be structurally identical to compiling the
//    final set fresh — every field an engine can observe, including the lazy
//    adjacency whether it is built at the end or extended block by block;
//  * OnlineChecker under any interleaving of append()/append_all() must agree
//    per level (ok, first violation, explanation text) with the frozen hashed
//    monitor checker::reference::OnlineCheckerHashed fed one txn at a time,
//    and with a fresh OnlineChecker fed everything at once — while its
//    hashed-fallback tripwire stays at zero;
//  * check_incremental / check_batch prefix chains must reproduce the
//    verdicts of independent check() calls on each prefix.
// Inputs are store-generated apply orders (real system behaviour) and fuzzed
// adversarial observations (dangling writers, phantoms, mixed timestamps).
// The final test tails a growing file through report::stream_audit with a
// concurrent writer — the `crooks-check --follow` loop, exercised under TSan.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "checker/checker.hpp"
#include "checker/online.hpp"
#include "checker/reference.hpp"
#include "model/compiled.hpp"
#include "report/serialize.hpp"
#include "report/stream_audit.hpp"
#include "store/runner.hpp"
#include "workload/observations.hpp"
#include "workload/workload.hpp"

namespace crooks::checker {
namespace {

using model::CompiledHistory;
using model::Transaction;
using model::TransactionSet;
using model::TxnBuilder;
using model::TxnIdx;

std::vector<Transaction> to_vector(const TransactionSet& txns) {
  std::vector<Transaction> all;
  all.reserve(txns.size());
  for (const Transaction& t : txns) all.push_back(t);
  return all;
}

/// The adversarial input mix: store runs and fuzz shapes that hit every
/// classification branch (dangling writers, phantoms, untimestamped tails).
std::vector<std::vector<Transaction>> interesting_streams() {
  std::vector<std::vector<Transaction>> streams;
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    streams.push_back(to_vector(wl::fuzz_observations(seed, {.transactions = 28,
                                                             .keys = 5,
                                                             .p_dangling = 0.15,
                                                             .p_phantom = 0.15})
                                    .txns));
  }
  streams.push_back(to_vector(
      wl::fuzz_observations(5, {.transactions = 24, .keys = 4, .p_untimestamped = 0.4})
          .txns));
  streams.push_back(to_vector(
      wl::fuzz_observations(9, {.transactions = 20, .keys = 4, .with_timestamps = false})
          .txns));
  for (std::uint64_t seed : {3u, 11u}) {
    const auto intents = wl::generate_mix({.transactions = 60,
                                           .keys = 8,
                                           .reads_per_txn = 2,
                                           .writes_per_txn = 2,
                                           .seed = seed});
    streams.push_back(to_vector(
        store::run(intents, {.mode = store::CCMode::kSnapshotIsolation,
                             .seed = seed + 1, .concurrency = 4, .retries = 3})
            .observations));
  }
  return streams;
}

/// Split [0, n) into random-sized consecutive blocks (sizes 1..max_block).
std::vector<std::size_t> random_cuts(std::size_t n, std::size_t max_block,
                                     std::mt19937_64& rng) {
  std::vector<std::size_t> cuts;
  std::uniform_int_distribution<std::size_t> d(1, max_block);
  for (std::size_t at = 0; at < n;) {
    at = std::min(n, at + d(rng));
    cuts.push_back(at);
  }
  return cuts;
}

void expect_structurally_equal(const CompiledHistory& a, const CompiledHistory& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.key_count(), b.key_count());
  EXPECT_EQ(a.all_timestamped(), b.all_timestamped());
  for (model::KeyIdx k = 0; k < a.key_count(); ++k) {
    EXPECT_EQ(a.keys().key_of(k), b.keys().key_of(k)) << "key " << k;
    const auto wa = a.writers_of(k), wb = b.writers_of(k);
    ASSERT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()))
        << "writers_of " << k;
  }
  for (TxnIdx d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a.id_of(d), b.id_of(d));
    EXPECT_EQ(a.start_ts(d), b.start_ts(d));
    EXPECT_EQ(a.commit_ts(d), b.commit_ts(d));
    EXPECT_EQ(a.session(d), b.session(d));
    const auto oa = a.ops(d), ob = b.ops(d);
    ASSERT_EQ(oa.size(), ob.size()) << "ops of " << d;
    for (std::size_t i = 0; i < oa.size(); ++i) {
      // Compare through the SoA field accessors (each reads one parallel
      // array) so a desynchronized array is caught even if the gathering
      // operator[] happened to mask it.
      EXPECT_EQ(oa.key(i), ob.key(i)) << d << ":" << i;
      EXPECT_EQ(oa.writer(i), ob.writer(i)) << d << ":" << i;
      EXPECT_EQ(oa.cls(i), ob.cls(i)) << d << ":" << i;
      EXPECT_EQ(oa.flags(i), ob.flags(i)) << d << ":" << i;
      // The gathered record must agree with the field accessors.
      EXPECT_EQ(oa[i].key, oa.key(i)) << d << ":" << i;
      EXPECT_EQ(oa[i].writer, oa.writer(i)) << d << ":" << i;
      EXPECT_EQ(oa[i].cls, oa.cls(i)) << d << ":" << i;
      EXPECT_EQ(oa[i].is_write(), oa.is_write(i)) << d << ":" << i;
      EXPECT_EQ(oa[i].internal(), oa.internal(i)) << d << ":" << i;
    }
    const auto wka = a.write_keys(d), wkb = b.write_keys(d);
    EXPECT_TRUE(std::equal(wka.begin(), wka.end(), wkb.begin(), wkb.end()));
    const auto rka = a.read_keys(d), rkb = b.read_keys(d);
    EXPECT_TRUE(std::equal(rka.begin(), rka.end(), rkb.begin(), rkb.end()));
    // Masks may be sized to different key universes (block-time vs final);
    // the observable predicate must agree over every final key.
    for (model::KeyIdx k = 0; k < a.key_count(); ++k) {
      EXPECT_EQ(a.writes_key(d, k), b.writes_key(d, k)) << d << "/" << k;
    }
  }
  EXPECT_EQ(a.ts_order(), b.ts_order());
}

void expect_adjacency_equal(const CompiledHistory& a, const CompiledHistory& b) {
  const auto& x = a.adjacency();
  const auto& y = b.adjacency();
  EXPECT_EQ(x.by_commit, y.by_commit);
  EXPECT_EQ(x.by_start, y.by_start);
  EXPECT_EQ(x.rt_preds.rows, y.rt_preds.rows);
  EXPECT_EQ(x.rt_succs.rows, y.rt_succs.rows);
  EXPECT_EQ(x.sess_preds.rows, y.sess_preds.rows);
  EXPECT_EQ(x.sess_succs.rows, y.sess_succs.rows);
}

TEST(CompiledDelta, GrownHistoryMatchesFreshCompile) {
  std::mt19937_64 rng(1234);
  for (const std::vector<Transaction>& all : interesting_streams()) {
    const TransactionSet whole{std::vector<Transaction>(all)};
    const CompiledHistory fresh(whole);
    for (int rep = 0; rep < 4; ++rep) {
      CompiledHistory grown;
      ASSERT_TRUE(grown.owns_transactions());
      std::size_t prev = 0;
      for (std::size_t cut : random_cuts(all.size(), 6, rng)) {
        const auto& delta = grown.extend(
            std::span<const Transaction>(all.data() + prev, cut - prev));
        EXPECT_EQ(delta.first, prev);
        EXPECT_EQ(delta.count, cut - prev);
        prev = cut;
      }
      expect_structurally_equal(fresh, grown);
      expect_adjacency_equal(fresh, grown);
    }
  }
}

TEST(CompiledDelta, AdjacencyExtendedInPlaceMatchesFreshBuild) {
  std::mt19937_64 rng(99);
  for (const std::vector<Transaction>& all : interesting_streams()) {
    const TransactionSet whole{std::vector<Transaction>(all)};
    const CompiledHistory fresh(whole);
    CompiledHistory grown;
    std::size_t prev = 0;
    for (std::size_t cut : random_cuts(all.size(), 5, rng)) {
      grown.extend(std::span<const Transaction>(all.data() + prev, cut - prev));
      prev = cut;
      // Materialize after every block: later extends must update the rows in
      // place (extend_adjacency), not just invalidate them.
      (void)grown.adjacency();
    }
    expect_adjacency_equal(fresh, grown);
  }
}

TEST(CompiledDelta, LateWriterResolvedAcrossBlocks) {
  // T2 reads T9 before T9 exists: unknown writer at block 1, resolved (and
  // reclassified kReadExternal) when T9's block arrives. T3 reads T8 which
  // arrives but never writes the awaited key: resolved to writer-misses-key.
  CompiledHistory ch;
  ch.extend(TxnBuilder(2).read(Key{0}, TxnId{9}).at(0, 1).build());
  ch.extend(TxnBuilder(3).read(Key{1}, TxnId{8}).at(2, 3).build());
  EXPECT_EQ(ch.ops(0)[0].cls, model::OpClass::kReadNever);
  EXPECT_EQ(ch.ops(0)[0].writer, model::kNoTxnIdx);

  const auto& delta = ch.extend(TxnBuilder(9).write(Key{0}).at(4, 5).build());
  ASSERT_EQ(delta.resolved.size(), 1u);
  EXPECT_EQ(delta.resolved[0], (std::pair<TxnIdx, std::uint32_t>{0, 0}));
  EXPECT_EQ(ch.ops(0)[0].cls, model::OpClass::kReadExternal);
  EXPECT_EQ(ch.ops(0)[0].writer, 2u);

  ch.extend(TxnBuilder(8).write(Key{7}).at(6, 7).build());
  EXPECT_EQ(ch.ops(1)[0].cls, model::OpClass::kReadNever);
  EXPECT_NE(ch.ops(1)[0].flags & model::kOpWriterMissesKey, 0);
  EXPECT_EQ(ch.ops(1)[0].writer, 3u);

  // The grown result is what a fresh compile of the final set produces.
  const TransactionSet whole{to_vector(ch.txns())};
  expect_structurally_equal(CompiledHistory(whole), ch);
}

TEST(CompiledDelta, ExtendValidatesWithoutMutating) {
  CompiledHistory ch;
  ch.extend(TxnBuilder(1).write(Key{0}).build());
  EXPECT_THROW(ch.extend(TxnBuilder(1).write(Key{1}).build()), std::invalid_argument);
  const std::vector<Transaction> bad = {TxnBuilder(2).write(Key{0}).build(),
                                        TxnBuilder(2).write(Key{1}).build()};
  EXPECT_THROW(ch.extend(std::span<const Transaction>(bad)), std::invalid_argument);
  EXPECT_EQ(ch.size(), 1u);
  const TransactionSet borrowed{{TxnBuilder(5).write(Key{0}).build()}};
  CompiledHistory immutable(borrowed);
  EXPECT_THROW(immutable.extend(TxnBuilder(6).write(Key{1}).build()), std::logic_error);
}

/// Drive `chk` with a random interleaving of append() and append_all() and
/// the hashed oracle with the same transactions one at a time; both must
/// agree on every level after every step.
void drive_differentially(const std::vector<Transaction>& all, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  OnlineChecker chk;
  reference::OnlineCheckerHashed oracle;
  std::uint64_t blocks = 0;
  std::size_t at = 0;
  std::uniform_int_distribution<std::size_t> d(1, 5);
  while (at < all.size()) {
    const std::size_t take = std::min(all.size() - at, d(rng));
    if (take == 1 && rng() % 2 == 0) {
      EXPECT_TRUE(chk.append(all[at]));
    } else {
      EXPECT_EQ(chk.append_all(std::span<const Transaction>(all.data() + at, take)),
                take);
    }
    ++blocks;
    for (std::size_t i = 0; i < take; ++i) oracle.append(all[at + i]);
    at += take;
    for (ct::IsolationLevel level : ct::kAllLevels) {
      const auto& got = chk.status(level);
      const auto& want = oracle.status(level);
      ASSERT_EQ(got.ok, want.ok)
          << ct::name_of(level) << " after " << at << " txns (seed " << seed << ")";
      ASSERT_EQ(got.first_violation, want.first_violation) << ct::name_of(level);
      ASSERT_EQ(got.explanation, want.explanation) << ct::name_of(level);
    }
  }
  // Every transaction went through a compiled delta; the tripwire stayed cold.
  EXPECT_EQ(chk.stats().blocks, blocks);
  EXPECT_EQ(chk.stats().compiled_appends, all.size());
  EXPECT_EQ(chk.stats().hashed_fallback_appends, 0u);
  EXPECT_EQ(chk.stats().duplicates_ignored, 0u);

  // And the whole interleaving matches one fresh whole-stream append_all.
  OnlineChecker fresh;
  EXPECT_EQ(fresh.append_all(std::span<const Transaction>(all)), all.size());
  for (ct::IsolationLevel level : ct::kAllLevels) {
    EXPECT_EQ(fresh.status(level).ok, chk.status(level).ok) << ct::name_of(level);
    EXPECT_EQ(fresh.status(level).first_violation, chk.status(level).first_violation);
    EXPECT_EQ(fresh.status(level).explanation, chk.status(level).explanation);
  }
  EXPECT_EQ(fresh.stats().hashed_fallback_appends, 0u);
  EXPECT_EQ(fresh.surviving_levels(), chk.surviving_levels());
}

TEST(OnlineIncremental, AgreesWithHashedOracleOnAnyInterleaving) {
  std::uint64_t seed = 42;
  for (const std::vector<Transaction>& all : interesting_streams()) {
    for (int rep = 0; rep < 3; ++rep) drive_differentially(all, seed++);
  }
}

TEST(OnlineIncremental, WeakOnlyDirectPathMatchesGeneralAndHashedOracle) {
  // A checker tracking only the untimed-weak levels takes the direct ingest
  // path (no per-op intervals, no timeline searches). Differentially: under
  // random block interleavings — including duplicate re-appends of an
  // already-streamed block — it must agree per level, byte for byte, with
  // both the general-path checker and the frozen hashed monitor.
  const std::vector<ct::IsolationLevel> weak{
      ct::IsolationLevel::kReadUncommitted, ct::IsolationLevel::kReadCommitted,
      ct::IsolationLevel::kReadAtomic, ct::IsolationLevel::kPSI};
  std::mt19937_64 rng(771);
  for (const std::vector<Transaction>& all : interesting_streams()) {
    OnlineChecker direct(weak);
    OnlineChecker general;
    reference::OnlineCheckerHashed oracle;
    std::size_t at = 0;
    std::size_t duplicates = 0;
    std::uniform_int_distribution<std::size_t> d(1, 5);
    while (at < all.size()) {
      const std::size_t take = std::min(all.size() - at, d(rng));
      const std::span<const Transaction> block(all.data() + at, take);
      EXPECT_EQ(direct.append_all(block), take);
      EXPECT_EQ(general.append_all(block), take);
      for (const Transaction& t : block) oracle.append(t);
      if (at > 0 && rng() % 3 == 0) {
        // Re-append an already-streamed transaction: ignored on every path.
        EXPECT_FALSE(direct.append(all[rng() % at]));
        ++duplicates;
      }
      at += take;
      for (ct::IsolationLevel level : weak) {
        const auto& got = direct.status(level);
        const auto& gen = general.status(level);
        const auto& want = oracle.status(level);
        ASSERT_EQ(got.ok, gen.ok)
            << ct::name_of(level) << " after " << at << " txns";
        ASSERT_EQ(got.first_violation, gen.first_violation) << ct::name_of(level);
        ASSERT_EQ(got.explanation, gen.explanation) << ct::name_of(level);
        ASSERT_EQ(got.ok, want.ok) << ct::name_of(level) << " vs hashed oracle";
        ASSERT_EQ(got.explanation, want.explanation) << ct::name_of(level);
      }
    }
    EXPECT_EQ(direct.stats().direct_appends, all.size());
    EXPECT_EQ(direct.stats().compiled_appends, all.size());
    EXPECT_EQ(direct.stats().duplicates_ignored, duplicates);
    EXPECT_EQ(direct.stats().ops_evaluated, general.stats().ops_evaluated);
    EXPECT_EQ(direct.stats().hashed_fallback_appends, 0u);
    EXPECT_EQ(general.stats().direct_appends, 0u);
  }
}

TEST(OnlineIncremental, DuplicatesAndReservedIdsIgnored) {
  const std::vector<Transaction> all = {
      TxnBuilder(1).write(Key{0}).at(0, 1).build(),
      TxnBuilder(2).read(Key{0}, TxnId{1}).at(2, 3).build()};
  OnlineChecker chk;
  EXPECT_EQ(chk.append_all(std::span<const Transaction>(all)), 2u);
  EXPECT_FALSE(chk.append(all[0]));                 // stream duplicate
  EXPECT_FALSE(chk.append(TxnBuilder(0).write(Key{0}).build()));  // reserved
  // A block mixing new, stream-duplicate and intra-block-duplicate ids keeps
  // only the new ones, first occurrence wins.
  const std::vector<Transaction> block = {
      TxnBuilder(3).write(Key{1}).at(4, 5).build(), all[1],
      TxnBuilder(3).write(Key{2}).at(6, 7).build()};
  EXPECT_EQ(chk.append_all(std::span<const Transaction>(block)), 1u);
  EXPECT_EQ(chk.size(), 3u);
  EXPECT_EQ(chk.stats().duplicates_ignored, 4u);
  EXPECT_EQ(chk.stats().hashed_fallback_appends, 0u);
  EXPECT_TRUE(chk.stream().writes_key(2, chk.stream().keys().find(Key{1})));
}

TEST(CheckIncremental, MatchesIndependentPrefixChecks) {
  const auto fuzz = wl::fuzz_observations(17, {.transactions = 8, .keys = 3});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  std::vector<TransactionSet> blocks;
  std::vector<TransactionSet> prefixes;
  for (std::size_t at = 0; at < all.size(); at += 3) {
    const std::size_t take = std::min<std::size_t>(3, all.size() - at);
    blocks.emplace_back(
        std::vector<Transaction>(all.begin() + at, all.begin() + at + take));
    prefixes.emplace_back(
        std::vector<Transaction>(all.begin(), all.begin() + at + take));
  }
  CheckOptions opts;
  opts.threads = 1;
  for (ct::IsolationLevel level :
       {ct::IsolationLevel::kReadAtomic, ct::IsolationLevel::kPSI,
        ct::IsolationLevel::kSerializable, ct::IsolationLevel::kStrongSI}) {
    const std::vector<CheckResult> inc = check_incremental(level, blocks, opts);
    ASSERT_EQ(inc.size(), blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const CheckResult lone = check(level, prefixes[i], opts);
      EXPECT_EQ(inc[i].outcome, lone.outcome)
          << ct::name_of(level) << " prefix " << i;
      EXPECT_EQ(inc[i].nodes_explored, lone.nodes_explored)
          << ct::name_of(level) << " prefix " << i;
    }
  }
  std::vector<TransactionSet> dup = {blocks[0], blocks[0]};
  EXPECT_THROW(check_incremental(ct::IsolationLevel::kReadAtomic, dup, opts),
               std::invalid_argument);
}

TEST(CheckBatch, PrefixChainsMatchIndependentChecks) {
  const auto fuzz = wl::fuzz_observations(29, {.transactions = 7, .keys = 3});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  std::vector<TransactionSet> histories;
  for (std::size_t end : {3u, 5u, 7u}) {  // a chain of growing prefixes...
    histories.emplace_back(std::vector<Transaction>(all.begin(), all.begin() + end));
  }
  // ...then a chain-breaking unrelated history, then a fresh chain.
  histories.push_back(wl::fuzz_observations(31, {.transactions = 5, .keys = 3}).txns);
  histories.emplace_back(std::vector<Transaction>(all.begin(), all.begin() + 4));
  histories.emplace_back(std::vector<Transaction>(all.begin(), all.begin() + 6));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    CheckOptions opts;
    opts.threads = threads;
    const std::vector<CheckResult> batch =
        check_batch(ct::IsolationLevel::kSerializable, histories, opts);
    ASSERT_EQ(batch.size(), histories.size());
    CheckOptions lone_opts;
    lone_opts.threads = 1;
    for (std::size_t i = 0; i < histories.size(); ++i) {
      const CheckResult lone =
          check(ct::IsolationLevel::kSerializable, histories[i], lone_opts);
      EXPECT_EQ(batch[i].outcome, lone.outcome) << "history " << i;
      EXPECT_EQ(batch[i].nodes_explored, lone.nodes_explored) << "history " << i;
    }
  }
}

TEST(StreamAudit, RejectsVersionOrderLines) {
  std::istringstream in("vo 1 1 2\n");
  const report::StreamAuditResult r = report::stream_audit(in, {.idle_exit_ms = 1});
  EXPECT_NE(r.error.find("vo"), std::string::npos);
  EXPECT_EQ(r.blocks, 0u);
}

TEST(StreamAudit, AuditsBatchesAndCountsDuplicates) {
  const std::string text =
      "txn 1 start=0 commit=1\n write 0\nend\n"
      "txn 2 start=2 commit=3\n read 0 1\nend\n"
      "txn 1 start=0 commit=1\n write 0\nend\n";  // duplicate, ignored
  std::istringstream in(text);
  std::uint64_t callbacks = 0;
  const report::StreamAuditResult r =
      report::stream_audit(in, {.idle_exit_ms = 1}, [&](const auto& rep) {
        ++callbacks;
        EXPECT_EQ(rep.block, callbacks);
        EXPECT_NE(rep.checker, nullptr);
        return true;
      });
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(callbacks, r.blocks);
  EXPECT_EQ(r.transactions, 2u);
  EXPECT_EQ(r.duplicates, 1u);
  EXPECT_EQ(r.surviving.size(), ct::kAllLevels.size());
  EXPECT_EQ(r.checker_stats.hashed_fallback_appends, 0u);
}

TEST(StreamAudit, HandlesCrlfLineEndings) {
  const std::string text =
      "txn 1 start=0 commit=1\r\n write 0\r\nend\r\n"
      "txn 2 start=2 commit=3\r\n read 0 1\r\nend\r\n";
  std::istringstream in(text);
  const report::StreamAuditResult r = report::stream_audit(in, {.idle_exit_ms = 1});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.transactions, 2u);
}

TEST(StreamAudit, BlankAndCommentOnlyInputProducesNoBatches) {
  std::istringstream in("\n  # comment only\n\n\t\n# another\n");
  std::uint64_t callbacks = 0;
  const report::StreamAuditResult r = report::stream_audit(
      in, {.idle_exit_ms = 1}, [&](const auto&) {
        ++callbacks;
        return true;
      });
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(callbacks, 0u);
  EXPECT_EQ(r.blocks, 0u);
  EXPECT_EQ(r.transactions, 0u);
}

TEST(StreamAudit, PartialFinalLineAuditedAtIdleExit) {
  // The final `end` never gets its newline — the writer exited mid-line.
  // Idle-exit must still audit the complete block.
  const std::string text =
      "txn 1 start=0 commit=1\n write 0\nend\n"
      "txn 2 start=2 commit=3\n read 0 1\nend";  // no trailing '\n'
  std::istringstream in(text);
  const report::StreamAuditResult r = report::stream_audit(in, {.idle_exit_ms = 1});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.transactions, 2u);
}

TEST(StreamAudit, UnfinishedBlockAtIdleExitIsNotAudited) {
  // `txn 2` is open but its `end` never arrives: only the complete block
  // before it may be audited.
  const std::string text =
      "txn 1 start=0 commit=1\n write 0\nend\n"
      "txn 2 start=2 commit=3\n read 0 1\n";
  std::istringstream in(text);
  const report::StreamAuditResult r = report::stream_audit(in, {.idle_exit_ms = 1});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.transactions, 1u);
}

TEST(StreamAudit, MetricsSnapshotEveryNthBatch) {
  // Three polls' worth of blocks: feed one block per flush by capping batches
  // via a growing stringstream is overkill — instead use three blocks in one
  // stream and metrics_every=1 so every batch carries a snapshot, then
  // confirm metrics_every=0 never does.
  const std::string text =
      "txn 1 start=0 commit=1\n write 0\nend\n"
      "txn 2 start=2 commit=3\n read 0 1\nend\n";
  {
    std::istringstream in(text);
    std::vector<std::string> snapshots;
    report::StreamAuditOptions opts;
    opts.idle_exit_ms = 1;
    opts.metrics_every = 1;
    const report::StreamAuditResult r =
        report::stream_audit(in, opts, [&](const auto& rep) {
          snapshots.push_back(rep.metrics_snapshot);
          return true;
        });
    EXPECT_TRUE(r.error.empty()) << r.error;
    ASSERT_GE(snapshots.size(), 1u);
    for (const std::string& s : snapshots) {
      EXPECT_NE(s.find("\"crooks_follow_batches_total\""), std::string::npos) << s;
      EXPECT_EQ(s.find('\n'), std::string::npos);
    }
  }
  {
    std::istringstream in(text);
    const report::StreamAuditResult r = report::stream_audit(
        in, {.idle_exit_ms = 1}, [&](const auto& rep) {
          EXPECT_TRUE(rep.metrics_snapshot.empty());
          return true;
        });
    EXPECT_TRUE(r.error.empty()) << r.error;
  }
}

TEST(StreamAudit, FollowsGrowingFileWithConcurrentWriter) {
  const auto fuzz = wl::fuzz_observations(55, {.transactions = 24, .keys = 4});
  const std::vector<Transaction> all = to_vector(fuzz.txns);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "crooks_follow_smoke.txt";
  std::remove(path.string().c_str());
  { std::ofstream touch(path); }

  std::thread writer([&] {
    std::ofstream out(path, std::ios::app);
    for (std::size_t at = 0; at < all.size(); at += 4) {
      const std::size_t take = std::min<std::size_t>(4, all.size() - at);
      report::Observations obs;
      obs.txns = TransactionSet{
          std::vector<Transaction>(all.begin() + at, all.begin() + at + take)};
      out << report::to_text(obs) << std::flush;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const report::StreamAuditResult r =
      report::stream_audit(in, {.poll_ms = 5, .idle_exit_ms = 400});
  writer.join();
  std::remove(path.string().c_str());

  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.transactions, all.size());
  EXPECT_GE(r.blocks, 1u);
  EXPECT_EQ(r.checker_stats.hashed_fallback_appends, 0u);

  // Whatever batching the race produced, the verdicts match a direct feed.
  OnlineChecker direct;
  direct.append_all(std::span<const Transaction>(all));
  for (ct::IsolationLevel level : ct::kAllLevels) {
    const auto it = r.statuses.find(level);
    ASSERT_NE(it, r.statuses.end());
    EXPECT_EQ(it->second.ok, direct.status(level).ok) << ct::name_of(level);
    EXPECT_EQ(it->second.explanation, direct.status(level).explanation);
  }
}

}  // namespace
}  // namespace crooks::checker
