file(REMOVE_RECURSE
  "libcrooks_checker.a"
)
