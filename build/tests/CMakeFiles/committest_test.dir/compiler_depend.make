# Empty compiler generated dependencies file for committest_test.
# This may be replaced when dependencies are built.
