// Three-way differential suite for the direct engine tier.
//
// Every history here runs through all three engines — direct, graph,
// exhaustive — via the shared oracle harness (engine_oracle.hpp), which
// asserts verdict agreement, witness validity, and canonical-diagnosis
// equality. Inputs cover the spectrum the direct sweeps must survive:
// the hand-built anomaly matrix, 200 fuzzed seeds per level (with and
// without an authoritative version order, with mixed/missing timestamps),
// store-generated runs under four concurrency-control modes, and the PSI
// saturation-incompleteness regressions that exercise the verified-witness
// + exhaustive-fallback escape hatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adya/graph.hpp"
#include "adya/phenomena.hpp"
#include "checker/checker.hpp"
#include "engine_oracle.hpp"
#include "store/runner.hpp"
#include "workload/observations.hpp"
#include "workload/workload.hpp"

namespace crooks::checker {
namespace {

using ct::IsolationLevel;
using model::TransactionSet;
using model::TxnBuilder;
using oracle::run_three_way;

const std::vector<IsolationLevel>& direct_levels() {
  static const std::vector<IsolationLevel> kLevels{
      IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
      IsolationLevel::kPSI};
  return kLevels;
}

// ---------------------------------------------------------------- hand-built

class DirectAnomalyMatrix : public ::testing::TestWithParam<oracle::Scenario> {};

TEST_P(DirectAnomalyMatrix, ThreeWayAgreesWithExpectedVerdict) {
  const oracle::Scenario& sc = GetParam();
  for (IsolationLevel level : direct_levels()) {
    SCOPED_TRACE(sc.name + std::string(" @ ") + std::string(ct::name_of(level)));
    const oracle::ThreeWay r = run_three_way(level, sc.txns);
    EXPECT_EQ(r.direct.satisfiable(), sc.satisfiable.contains(level))
        << r.direct.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Anomalies, DirectAnomalyMatrix,
                         ::testing::ValuesIn(oracle::anomaly_scenarios()),
                         [](const ::testing::TestParamInfo<oracle::Scenario>& info) {
                           return info.param.name;
                         });

TEST(DirectEngine, IneligibleLevelsStayHonestlyUndecided) {
  const TransactionSet txns{{TxnBuilder(1).write(Key{0}).at(0, 1).build()}};
  for (IsolationLevel level : ct::kAllLevels) {
    if (direct_eligible(level)) continue;
    const CheckResult r = check_direct(level, txns);
    EXPECT_EQ(r.outcome, Outcome::kUnknown) << ct::name_of(level);
    // Explicit selection is strict: the dispatcher must not silently
    // substitute another engine.
    CheckOptions forced;
    forced.engine = EngineSelect::kDirect;
    EXPECT_EQ(check(level, txns, forced).outcome, Outcome::kUnknown)
        << ct::name_of(level);
  }
  EXPECT_TRUE(direct_eligible(IsolationLevel::kReadCommitted));
  EXPECT_TRUE(direct_eligible(IsolationLevel::kReadAtomic));
  EXPECT_TRUE(direct_eligible(IsolationLevel::kPSI));
}

TEST(DirectEngine, AutoDispatchRoutesWeakLevelsToDirect) {
  const TransactionSet txns{{
      TxnBuilder(1).write(Key{0}).at(0, 1).build(),
      TxnBuilder(2).read(Key{0}, TxnId{1}).at(2, 3).build(),
  }};
  for (IsolationLevel level : direct_levels()) {
    const CheckResult r = check(level, txns);
    EXPECT_TRUE(r.satisfiable()) << ct::name_of(level);
    EXPECT_EQ(r.engine, "direct") << ct::name_of(level);
  }
}

// The PSI saturation is deliberately incomplete: on a symmetric write
// conflict it forces no order, proposes the timestamp candidate, watches it
// fail verification, and resolves through the bounded exhaustive fallback.
// Lost update is the minimal such history.
TEST(DirectEngine, PsiSaturationFallbackResolvesLostUpdate) {
  const TransactionSet txns{{
      TxnBuilder(1).read(Key{0}, kInitTxn).write(Key{0}).at(0, 10).build(),
      TxnBuilder(2).read(Key{0}, kInitTxn).write(Key{0}).at(1, 11).build(),
  }};
  const CheckResult r = check_direct(IsolationLevel::kPSI, txns);
  EXPECT_TRUE(r.unsatisfiable()) << r.detail;
  EXPECT_NE(r.detail.find("exhaustive fallback"), std::string::npos) << r.detail;

  // Same history above the fallback budget: the direct tier must give up
  // honestly, and the auto dispatch must still decide via a complete engine.
  CheckOptions tight;
  tight.exhaustive_threshold = 1;
  tight.engine = EngineSelect::kDirect;
  EXPECT_EQ(check(IsolationLevel::kPSI, txns, tight).outcome, Outcome::kUnknown);
  tight.engine = EngineSelect::kAuto;
  // kAuto: direct falls through, then the dispatcher's own small-instance
  // tiering answers (threshold applies to the exhaustive tier too, so raise
  // it back for the final decision).
  CheckOptions dispatch;
  EXPECT_TRUE(check(IsolationLevel::kPSI, txns, dispatch).unsatisfiable());
}

// Six-transaction fork with a symmetric write conflict and cross reads: the
// saturation cannot force an order between the conflicting writers, so PSI
// goes through the verified-candidate (and possibly fallback) path. The
// harness pins the ground truth to the exhaustive oracle.
TEST(DirectEngine, PsiConflictForkAgreesWithOracle) {
  constexpr Key kP{0}, kQ{1}, kK{2};
  const TransactionSet txns{{
      TxnBuilder(1).write(kP).at(0, 10).build(),
      TxnBuilder(2).write(kQ).at(1, 11).build(),
      TxnBuilder(3).read(kP, TxnId{1}).write(kK).at(2, 12).build(),
      TxnBuilder(4).read(kQ, TxnId{2}).write(kK).at(3, 13).build(),
      TxnBuilder(5).read(kP, TxnId{1}).read(kK, TxnId{3}).write(kQ).at(4, 14).build(),
      TxnBuilder(6).read(kQ, TxnId{2}).read(kK, TxnId{4}).write(kP).at(5, 15).build(),
  }};
  SCOPED_TRACE("psi_conflict_fork");
  for (IsolationLevel level : direct_levels()) {
    run_three_way(level, txns);
  }
}

// ------------------------------------------------------------------- fuzzed

class DirectFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  wl::FuzzedObservations make() const {
    wl::ObservationFuzzOptions opts;
    opts.transactions = 7;
    opts.keys = 4;
    return wl::fuzz_observations(GetParam(), opts);
  }
};

TEST_P(DirectFuzz, ThreeWayWithoutVersionOrder) {
  const wl::FuzzedObservations f = make();
  const model::CompiledHistory ch(f.txns);
  for (IsolationLevel level : direct_levels()) {
    SCOPED_TRACE(std::string(ct::name_of(level)) + " seed " +
                 std::to_string(GetParam()));
    run_three_way(level, ch);
  }
}

TEST_P(DirectFuzz, ThreeWayWithVersionOrder) {
  const wl::FuzzedObservations f = make();
  const model::CompiledHistory ch(f.txns);
  CheckOptions opts;
  opts.version_order = &f.version_order;
  for (IsolationLevel level : direct_levels()) {
    SCOPED_TRACE(std::string(ct::name_of(level)) + " vo seed " +
                 std::to_string(GetParam()));
    run_three_way(level, ch, opts);
  }
}

TEST_P(DirectFuzz, ThreeWayMixedAndMissingTimestamps) {
  wl::ObservationFuzzOptions o;
  o.transactions = 7;
  o.keys = 4;
  o.p_untimestamped = 0.35;
  const wl::FuzzedObservations mixed = wl::fuzz_observations(GetParam(), o);
  o.with_timestamps = false;
  const wl::FuzzedObservations untimed = wl::fuzz_observations(GetParam(), o);
  for (IsolationLevel level : direct_levels()) {
    SCOPED_TRACE(std::string(ct::name_of(level)) + " mixed-ts seed " +
                 std::to_string(GetParam()));
    run_three_way(level, mixed.txns);
    run_three_way(level, untimed.txns);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectFuzz, ::testing::Range<std::uint64_t>(1, 201));

// ------------------------------------------------------------ store-generated

TEST(DirectEngine, ThreeWayOnStoreRuns) {
  for (store::CCMode mode :
       {store::CCMode::kSnapshotIsolation, store::CCMode::kReadCommitted,
        store::CCMode::kReadUncommitted, store::CCMode::kTwoPhaseLocking}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto intents = wl::generate_mix({.transactions = 8,
                                             .keys = 4,
                                             .reads_per_txn = 2,
                                             .writes_per_txn = 2,
                                             .sessions = 2,
                                             .seed = seed});
      const store::RunResult r =
          store::run(intents, {.mode = mode, .seed = seed + 50, .concurrency = 4,
                               .injected_abort_prob = 0.05});
      const model::CompiledHistory ch(r.observations);
      CheckOptions opts;
      opts.exhaustive_threshold = 10;  // keep the PSI fallback reachable
      for (IsolationLevel level : direct_levels()) {
        SCOPED_TRACE(std::string(store::name_of(mode)) + " seed " +
                     std::to_string(seed) + " @ " +
                     std::string(ct::name_of(level)));
        run_three_way(level, ch, opts);
      }
    }
  }
}

// At sizes where the exhaustive oracle is unreachable, verify_witness is the
// independent ground truth: the direct verdicts must be definite for RC/RA
// and every SAT witness must pass the canonical commit tests.
TEST(DirectEngine, LargeStoreRunDecidedWithVerifiedWitness) {
  const auto intents = wl::generate_mix({.transactions = 300,
                                         .keys = 12,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .sessions = 4,
                                         .seed = 7});
  const store::RunResult r = store::run(
      intents,
      {.mode = store::CCMode::kSnapshotIsolation, .seed = 57, .concurrency = 6});
  const model::CompiledHistory ch(r.observations);
  for (IsolationLevel level : direct_levels()) {
    const CheckResult d = check_direct(level, ch);
    if (level != IsolationLevel::kPSI) {
      ASSERT_NE(d.outcome, Outcome::kUnknown) << ct::name_of(level);
    }
    if (d.satisfiable()) {
      ASSERT_TRUE(d.witness.has_value());
      const ct::ExecutionVerdict v = verify_witness(level, ch, *d.witness);
      EXPECT_TRUE(v.ok) << ct::name_of(level) << ": " << v.explanation;
    }
  }
}

// ------------------------------------------------- batch / incremental paths

TEST(DirectEngine, BatchAgreesAcrossEngineSelections) {
  std::vector<TransactionSet> histories;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    wl::ObservationFuzzOptions o;
    // Mix size classes: some tiny (packed), some past the large-class cut so
    // the scheduler's direct-aware classification is exercised.
    o.transactions = seed % 3 == 0 ? 12 : 5;
    o.keys = 4;
    histories.push_back(wl::fuzz_observations(seed, o).txns);
  }
  for (IsolationLevel level : direct_levels()) {
    CheckOptions direct_opts, auto_opts;
    direct_opts.engine = EngineSelect::kDirect;
    direct_opts.threads = 2;
    auto_opts.threads = 2;
    const std::vector<CheckResult> forced =
        check_batch(level, std::span<const TransactionSet>(histories), direct_opts);
    const std::vector<CheckResult> dispatched =
        check_batch(level, std::span<const TransactionSet>(histories), auto_opts);
    ASSERT_EQ(forced.size(), histories.size());
    for (std::size_t i = 0; i < histories.size(); ++i) {
      if (forced[i].outcome == Outcome::kUnknown) continue;  // oversized PSI
      EXPECT_EQ(forced[i].outcome, dispatched[i].outcome)
          << ct::name_of(level) << " history " << i << ": " << forced[i].detail;
    }
  }
}

TEST(DirectEngine, IncrementalBlocksMatchFromScratchChecks) {
  wl::ObservationFuzzOptions o;
  o.transactions = 9;
  o.keys = 4;
  const wl::FuzzedObservations f = wl::fuzz_observations(41, o);
  // Split into three blocks of three transactions.
  std::vector<model::Transaction> all(f.txns.begin(), f.txns.end());
  std::vector<TransactionSet> blocks;
  for (std::size_t i = 0; i < all.size(); i += 3) {
    blocks.emplace_back(std::vector<model::Transaction>(
        all.begin() + i, all.begin() + std::min(i + 3, all.size())));
  }
  for (IsolationLevel level : direct_levels()) {
    CheckOptions opts;
    opts.engine = EngineSelect::kDirect;
    const std::vector<CheckResult> inc =
        check_incremental(level, std::span<const TransactionSet>(blocks), opts);
    ASSERT_EQ(inc.size(), blocks.size());
    std::vector<model::Transaction> prefix;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      prefix.insert(prefix.end(), blocks[b].begin(), blocks[b].end());
      const TransactionSet so_far{std::vector<model::Transaction>(prefix)};
      const CheckResult fresh = check(level, so_far, opts);
      EXPECT_EQ(inc[b].outcome, fresh.outcome)
          << ct::name_of(level) << " block " << b << ": " << inc[b].detail;
    }
  }
}

// The graph-engine leg of the differential harness (and the scaling bench's
// baseline) runs the level-scoped adya::detect, which skips phenomena the
// queried level never consults — notably the Θ(n²) start-dependency and
// real-time edge sets when asked about a weak level. Scoping is a complexity
// optimization, never a verdict change: on fuzzed histories (timestamped and
// not, with and without a version order) the scoped detection must agree
// with the full reference detection at every level.
TEST(ScopedPhenomena, AgreesWithFullDetectionAtEveryLevel) {
  wl::ObservationFuzzOptions o;
  o.transactions = 8;
  o.keys = 4;
  o.p_dangling = 0.08;
  o.p_phantom = 0.05;
  o.p_untimestamped = 0.25;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const wl::FuzzedObservations f = wl::fuzz_observations(seed, o);
    const model::CompiledHistory ch(f.txns);
    for (const auto* vo : {&f.version_order,
                           static_cast<decltype(&f.version_order)>(nullptr)}) {
      adya::InstallOrders io;
      try {
        io = adya::compile_install_orders(ch, vo);
      } catch (const std::invalid_argument&) {
        // No version order and a multi-writer key: install orders are
        // ambiguous, and the graph engine never reaches detect() on this
        // configuration (it takes the heuristic path instead).
        continue;
      }
      const adya::Phenomena full = adya::detect(ch, io);
      for (IsolationLevel level : ct::kAllLevels) {
        const adya::Phenomena scoped = adya::detect(ch, io, level);
        EXPECT_EQ(adya::satisfies(full, level), adya::satisfies(scoped, level))
            << "seed " << seed << (vo ? " with vo" : " no vo") << " at "
            << ct::name_of(level);
      }
    }
  }
}

}  // namespace
}  // namespace crooks::checker
