// Strong identifier types shared across the library.
//
// The model of Crooks et al. (PODC'17) assumes every value is uniquely
// identifiable by the transaction that wrote it (§3: "we assume that each value
// is uniquely identifiable, as is common practice ... ETags in Azure,
// timestamps in Cassandra"). We realize that assumption structurally: a value
// is the pair (writer transaction, key), so there is never ambiguity about
// which transaction produced an observed value.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace crooks {

/// Identifier of a transaction. Id 0 is reserved for the synthetic
/// "initial transaction" that installs value ⊥ for every key.
struct TxnId {
  std::uint64_t value = 0;

  constexpr TxnId() = default;
  constexpr explicit TxnId(std::uint64_t v) : value(v) {}

  friend constexpr auto operator<=>(TxnId, TxnId) = default;
};

/// The synthetic writer of the initial state (every key maps to ⊥).
inline constexpr TxnId kInitTxn{0};

/// Identifier of a key in the store's key space.
struct Key {
  std::uint64_t value = 0;

  constexpr Key() = default;
  constexpr explicit Key(std::uint64_t v) : value(v) {}

  friend constexpr auto operator<=>(Key, Key) = default;
};

/// Identifier of a client session (used by Session SI / PC-SI, §5.2).
struct SessionId {
  std::uint32_t value = 0;

  constexpr SessionId() = default;
  constexpr explicit SessionId(std::uint32_t v) : value(v) {}

  friend constexpr auto operator<=>(SessionId, SessionId) = default;
};

/// No session: transactions outside any session ordering.
inline constexpr SessionId kNoSession{std::numeric_limits<std::uint32_t>::max()};

/// Identifier of a replication site / datacenter (PSI, §5.3).
struct SiteId {
  std::uint32_t value = 0;

  constexpr SiteId() = default;
  constexpr explicit SiteId(std::uint32_t v) : value(v) {}

  friend constexpr auto operator<=>(SiteId, SiteId) = default;
};

/// Real time from the paper's time oracle O (§3). Distinct per event.
using Timestamp = std::int64_t;

/// Sentinel meaning "the oracle assigned no timestamp".
inline constexpr Timestamp kNoTimestamp = std::numeric_limits<Timestamp>::min();

// Prefix via insert on a named string rather than `const char* + string&&`:
// GCC 12's -O3 restrict analysis flags a false-positive overlap inside the
// temporary-reusing operator+ overload, fatal under -Werror on Release.
inline std::string to_string(TxnId id) {
  std::string out = std::to_string(id.value);
  out.insert(0, 1, 'T');
  return out;
}
inline std::string to_string(Key k) {
  std::string out = std::to_string(k.value);
  out.insert(0, 1, 'k');
  return out;
}
inline std::string to_string(SessionId s) {
  if (s == kNoSession) return "s-";
  std::string out = std::to_string(s.value);
  out.insert(0, 1, 's');
  return out;
}
inline std::string to_string(SiteId s) {
  std::string out = std::to_string(s.value);
  out.insert(0, "site");
  return out;
}

}  // namespace crooks

template <>
struct std::hash<crooks::TxnId> {
  std::size_t operator()(crooks::TxnId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<crooks::Key> {
  std::size_t operator()(crooks::Key k) const noexcept {
    return std::hash<std::uint64_t>{}(k.value);
  }
};

template <>
struct std::hash<crooks::SessionId> {
  std::size_t operator()(crooks::SessionId s) const noexcept {
    return std::hash<std::uint32_t>{}(s.value);
  }
};

template <>
struct std::hash<crooks::SiteId> {
  std::size_t operator()(crooks::SiteId s) const noexcept {
    return std::hash<std::uint32_t>{}(s.value);
  }
};
