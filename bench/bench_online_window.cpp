// Bounded-memory windowed audit: does `--follow` really run forever?
//
//  * BM_WindowedSoak — the headline: ONE checker with a 4096-transaction
//    window audits a million-transaction synthetic commit stream, generated
//    block-by-block so the bench process itself stays small. The exported
//    counters are the flatness evidence the CI gate asserts on:
//      resident_ops_max / resident_ops_steady ("resident_flatness") must stay
//      near 1 — resident footprint is a sawtooth between folds, not a ramp —
//      and retired_txns must account for (stream − window) transactions.
//      lossy_evaluations (past-window reads + checks) stays 0 on this stream:
//      every verdict is bit-identical to the unwindowed monitor's.
//  * BM_WindowedVsUnwindowed — throughput of windowing vs not, measured at
//    5×10⁴ transactions — the largest stream the UNWINDOWED all-levels
//    monitor audits in reasonable time: its PSI predecessor sets make the
//    unwindowed audit superlinear in both time and memory (measured ≈8×
//    cost per stream doubling on this generator), which is the very problem
//    the window removes. Exports windowed_vs_unwindowed (>1 means windowing
//    WINS even at a scale the unwindowed monitor can still handle — folding
//    pays for itself in bounded predecessor sets and smaller searches — and
//    the gap widens without bound as the stream grows).
//
// Export with --benchmark_format=json > BENCH_checker_window.json. When
// CROOKS_OBS_METRICS_JSON names a file, the final obs::Registry scrape is
// written there on exit (crooks_online_retired_ops_total etc. for CI).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <span>
#include <thread>
#include <vector>

#include "checker/online.hpp"
#include "obs/metrics.hpp"

using namespace crooks;

namespace {

constexpr std::size_t kKeys = 64;
constexpr std::uint32_t kSessions = 8;
constexpr std::size_t kBlock = 1000;

/// Block-at-a-time stream generator: every transaction writes one key and
/// reads another from its latest committed writer, sessions round-robin (so
/// no session stalls and the watermark is free to advance), timestamps
/// strictly monotone. The stream is serializable by construction — the soak
/// measures steady-state audit cost, not violation handling.
struct StreamGen {
  std::vector<TxnId> latest = std::vector<TxnId>(kKeys, TxnId{0});
  std::uint64_t next_id = 1;
  Timestamp ts = 0;

  std::vector<model::Transaction> block(std::size_t count) {
    std::vector<model::Transaction> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t id = next_id++;
      const std::size_t wk = id % kKeys;
      const std::size_t rk = (id * 7 + 3) % kKeys;
      out.push_back(model::TxnBuilder(id)
                        .read(Key{rk}, latest[rk])
                        .write(Key{wk})
                        .session(SessionId{static_cast<std::uint32_t>(id % kSessions)})
                        .at(ts, ts + 1)
                        .build());
      latest[wk] = TxnId{id};
      ts += 2;
    }
    return out;
  }
};

void BM_WindowedSoak(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  const std::size_t window = 4096;
  for (auto _ : state) {
    StreamGen gen;
    checker::OnlineChecker chk;
    chk.set_window({.max_resident_txns = window});
    std::size_t resident_ops_max = 0;
    std::size_t resident_ops_steady = 0;  // first sample after the first fold
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t fed = 0; fed < total; fed += kBlock) {
      const std::vector<model::Transaction> blk = gen.block(kBlock);
      benchmark::DoNotOptimize(
          chk.append_all(std::span<const model::Transaction>(blk)));
      const std::size_t ro = chk.resident_ops();
      resident_ops_max = std::max(resident_ops_max, ro);
      if (resident_ops_steady == 0 && chk.stats().window_folds > 0) {
        resident_ops_steady = ro;
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(chk.all_ok());
    const checker::OnlineChecker::Stats& st = chk.stats();
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.counters["appends_per_sec"] = static_cast<double>(total) / secs;
    state.counters["resident_txns_final"] =
        static_cast<double>(chk.resident_txns());
    state.counters["resident_ops_max"] = static_cast<double>(resident_ops_max);
    state.counters["resident_ops_final"] = static_cast<double>(chk.resident_ops());
    state.counters["resident_flatness"] =
        resident_ops_steady > 0
            ? static_cast<double>(resident_ops_max) / resident_ops_steady
            : 0.0;
    state.counters["resident_bytes_final"] =
        static_cast<double>(chk.resident_bytes());
    state.counters["retired_txns"] = static_cast<double>(st.retired_txns);
    state.counters["retired_ops"] = static_cast<double>(st.retired_ops);
    state.counters["window_folds"] = static_cast<double>(st.window_folds);
    state.counters["lossy_evaluations"] =
        static_cast<double>(st.past_window_reads + st.past_window_checks);
    state.counters["fallback_appends"] =
        static_cast<double>(st.hashed_fallback_appends);
    state.counters["host_cpus"] = std::thread::hardware_concurrency();
  }
}
BENCHMARK(BM_WindowedSoak)->Arg(1000000)->Iterations(1)->UseRealTime();

/// Same stream, windowed vs unwindowed, at a scale the unwindowed monitor
/// can still hold. Both arms in one benchmark so the ratio is same-process.
void BM_WindowedVsUnwindowed(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = [&](std::size_t window) {
      StreamGen gen;
      checker::OnlineChecker chk;
      if (window != 0) chk.set_window({.max_resident_txns = window});
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t fed = 0; fed < total; fed += kBlock) {
        const std::vector<model::Transaction> blk = gen.block(kBlock);
        benchmark::DoNotOptimize(
            chk.append_all(std::span<const model::Transaction>(blk)));
      }
      benchmark::DoNotOptimize(chk.all_ok());
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    const double unwindowed = run(0);
    const double windowed = run(4096);
    state.SetItemsProcessed(static_cast<std::int64_t>(2 * total));
    state.counters["unwindowed_secs"] = unwindowed;
    state.counters["windowed_secs"] = windowed;
    state.counters["windowed_vs_unwindowed"] = unwindowed / windowed;
    state.counters["appends_per_sec_windowed"] =
        static_cast<double>(total) / windowed;
  }
}
BENCHMARK(BM_WindowedVsUnwindowed)->Arg(50000)->Iterations(1)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // The retirement counters CI gates on live in the metrics registry.
  if (const char* path = std::getenv("CROOKS_OBS_METRICS_JSON")) {
    std::ofstream out(path);
    out << crooks::obs::Registry::global().json() << "\n";
  }
  return 0;
}
