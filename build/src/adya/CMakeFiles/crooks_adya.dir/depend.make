# Empty dependencies file for crooks_adya.
# This may be replaced when dependencies are built.
