file(REMOVE_RECURSE
  "libcrooks_replication.a"
)
