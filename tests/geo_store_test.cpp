// GeoStore: interactive multi-site PSI semantics — asynchronous visibility,
// causal apply ordering, write-write certification, and the PSI contract
// verified by the checker on generated runs.
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "checker/online.hpp"
#include "common/rng.hpp"
#include "replication/geo_store.hpp"

namespace crooks::repl {
namespace {

using store::StepStatus;

constexpr Key kX{0}, kY{1};
constexpr SiteId kA{0}, kB{1}, kC{2};

GeoStore::Options three_sites(std::uint64_t delay = 20) {
  return {.sites = 3, .replication_delay = delay};
}

/// Burn logical time (each read of an otherwise-unused key is one tick).
void pass_time(GeoStore& g, SiteId site, std::uint64_t ticks) {
  for (std::uint64_t i = 0; i < ticks; ++i) {
    const TxnId t = g.begin(site);
    g.read(t, Key{999'999});
    g.abort(t);
  }
}

TEST(GeoStore, LocalWritesVisibleImmediately) {
  GeoStore g(three_sites());
  const TxnId w = g.begin(kA);
  ASSERT_EQ(g.write(w, kX), StepStatus::kOk);
  ASSERT_EQ(g.commit(w), StepStatus::kOk);

  const TxnId r = g.begin(kA);
  EXPECT_EQ(g.read(r, kX).value.writer, w);
  ASSERT_EQ(g.commit(r), StepStatus::kOk);
}

TEST(GeoStore, RemoteWritesDelayed) {
  GeoStore g(three_sites(/*delay=*/50));
  const TxnId w = g.begin(kA);
  ASSERT_EQ(g.write(w, kX), StepStatus::kOk);
  ASSERT_EQ(g.commit(w), StepStatus::kOk);

  // Immediately at site B: still the initial value.
  const TxnId r1 = g.begin(kB);
  EXPECT_TRUE(g.read(r1, kX).value.is_initial());
  ASSERT_EQ(g.commit(r1), StepStatus::kOk);
  EXPECT_FALSE(g.visible_at(kB, w));

  // After the replication delay: the write has arrived.
  pass_time(g, kC, 60);
  EXPECT_TRUE(g.visible_at(kB, w));
  const TxnId r2 = g.begin(kB);
  EXPECT_EQ(g.read(r2, kX).value.writer, w);
  ASSERT_EQ(g.commit(r2), StepStatus::kOk);
}

TEST(GeoStore, ReadYourOwnWrites) {
  GeoStore g(three_sites());
  const TxnId t = g.begin(kA);
  ASSERT_EQ(g.write(t, kX), StepStatus::kOk);
  EXPECT_EQ(g.read(t, kX).value.writer, t);
  ASSERT_EQ(g.commit(t), StepStatus::kOk);
}

TEST(GeoStore, DoubleWriteRejected) {
  GeoStore g(three_sites());
  const TxnId t = g.begin(kA);
  ASSERT_EQ(g.write(t, kX), StepStatus::kOk);
  EXPECT_THROW(g.write(t, kX), std::invalid_argument);
}

TEST(GeoStore, SomewhereConcurrentWritersConflict) {
  GeoStore g(three_sites(/*delay=*/50));
  const TxnId t1 = g.begin(kA);
  ASSERT_EQ(g.write(t1, kX), StepStatus::kOk);
  ASSERT_EQ(g.commit(t1), StepStatus::kOk);

  // Site B has not seen t1 yet: its write to x must be refused (P2).
  const TxnId t2 = g.begin(kB);
  ASSERT_EQ(g.write(t2, kX), StepStatus::kOk);
  EXPECT_EQ(g.commit(t2), StepStatus::kAborted);
  EXPECT_EQ(g.aborted_count(), 1u);

  // Once t1 replicated, writing x at B succeeds.
  pass_time(g, kC, 60);
  const TxnId t3 = g.begin(kB);
  ASSERT_EQ(g.write(t3, kX), StepStatus::kOk);
  EXPECT_EQ(g.commit(t3), StepStatus::kOk);
}

TEST(GeoStore, CausalDependenciesGateRemoteApplies) {
  GeoStore g(three_sites(/*delay=*/30));
  // T1 commits x at A; after it replicates to B, T2 at B reads it and
  // writes y. T2's apply at C must not precede T1's.
  const TxnId t1 = g.begin(kA);
  ASSERT_EQ(g.write(t1, kX), StepStatus::kOk);
  ASSERT_EQ(g.commit(t1), StepStatus::kOk);
  pass_time(g, kA, 35);

  const TxnId t2 = g.begin(kB);
  EXPECT_EQ(g.read(t2, kX).value.writer, t1);
  ASSERT_EQ(g.write(t2, kY), StepStatus::kOk);
  ASSERT_EQ(g.commit(t2), StepStatus::kOk);

  // Whenever T2 is visible at C, T1 must be as well.
  for (int i = 0; i < 80; ++i) {
    pass_time(g, kA, 1);
    if (g.visible_at(kC, t2)) {
      EXPECT_TRUE(g.visible_at(kC, t1));
    }
  }
  EXPECT_TRUE(g.visible_at(kC, t2));  // eventually applied
}

TEST(GeoStore, LongForkAcrossSites) {
  // Independent writes at A and B; readers at each origin see their local
  // write and miss the remote one: the classic PSI long fork, observable
  // through the store's own API.
  GeoStore g(three_sites(/*delay=*/100));
  const TxnId wa = g.begin(kA);
  ASSERT_EQ(g.write(wa, kX), StepStatus::kOk);
  ASSERT_EQ(g.commit(wa), StepStatus::kOk);
  const TxnId wb = g.begin(kB);
  ASSERT_EQ(g.write(wb, kY), StepStatus::kOk);
  ASSERT_EQ(g.commit(wb), StepStatus::kOk);

  const TxnId ra = g.begin(kA);
  EXPECT_EQ(g.read(ra, kX).value.writer, wa);
  EXPECT_TRUE(g.read(ra, kY).value.is_initial());
  ASSERT_EQ(g.commit(ra), StepStatus::kOk);

  const TxnId rb = g.begin(kB);
  EXPECT_TRUE(g.read(rb, kX).value.is_initial());
  EXPECT_EQ(g.read(rb, kY).value.writer, wb);
  ASSERT_EQ(g.commit(rb), StepStatus::kOk);

  // The observations admit PSI but not snapshot isolation.
  const model::TransactionSet obs = g.observations();
  const auto vo = g.version_order();
  checker::CheckOptions opts;
  opts.version_order = &vo;
  EXPECT_TRUE(checker::check(ct::IsolationLevel::kPSI, obs, opts).satisfiable());
  EXPECT_FALSE(checker::check(ct::IsolationLevel::kAdyaSI, obs, opts).satisfiable());
}

/// The commit-order stream of a GeoStore run monitors clean under PSI: an
/// OnlineChecker fed the global commit order never raises a PSI alarm.
TEST(GeoStore, CommitStreamMonitorsCleanUnderPsi) {
  GeoStore g(three_sites(/*delay=*/9));
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const TxnId t = g.begin(SiteId{static_cast<std::uint32_t>(rng.below(3))});
    std::unordered_set<std::uint64_t> written;
    for (int op = 0; op < 4; ++op) {
      const std::uint64_t k = rng.below(10);
      if (rng.chance(0.5)) {
        g.read(t, Key{k});
      } else if (written.insert(k).second) {
        g.write(t, Key{k});
      }
    }
    if (g.is_active(t)) g.commit(t);
  }
  const model::TransactionSet obs = g.observations();
  std::vector<const model::Transaction*> order;
  for (const model::Transaction& t : obs) order.push_back(&t);
  std::sort(order.begin(), order.end(),
            [](auto* a, auto* b) { return a->commit_ts() < b->commit_ts(); });
  checker::OnlineChecker monitor({ct::IsolationLevel::kPSI,
                                  ct::IsolationLevel::kReadAtomic,
                                  ct::IsolationLevel::kReadCommitted});
  for (const model::Transaction* t : order) monitor.append(*t);
  EXPECT_TRUE(monitor.status(ct::IsolationLevel::kPSI).ok)
      << monitor.status(ct::IsolationLevel::kPSI).explanation;
  EXPECT_TRUE(monitor.status(ct::IsolationLevel::kReadAtomic).ok);
  EXPECT_TRUE(monitor.status(ct::IsolationLevel::kReadCommitted).ok);
}

/// Generated runs: random cross-site traffic must always satisfy CT_PSI.
TEST(GeoStore, RandomRunsSatisfyPsiContract) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeoStore g(three_sites(/*delay=*/7));
    Rng rng(seed);
    for (int i = 0; i < 120; ++i) {
      const SiteId site{static_cast<std::uint32_t>(rng.below(3))};
      const TxnId t = g.begin(site);
      bool aborted = false;
      for (int op = 0; op < 4 && !aborted; ++op) {
        const Key k{rng.below(12)};
        if (rng.chance(0.5)) {
          g.read(t, k);
        } else if (!g.is_active(t)) {
          aborted = true;
        } else {
          // avoid double writes
          try {
            g.write(t, k);
          } catch (const std::invalid_argument&) {
          }
        }
      }
      if (g.is_active(t)) g.commit(t);
    }
    const model::TransactionSet obs = g.observations();
    const auto vo = g.version_order();
    checker::CheckOptions opts;
    opts.version_order = &vo;
    const checker::CheckResult r = checker::check(ct::IsolationLevel::kPSI, obs, opts);
    ASSERT_NE(r.outcome, checker::Outcome::kUnknown);
    EXPECT_TRUE(r.satisfiable()) << "seed " << seed << ": " << r.detail;
    // And read committed, trivially below PSI in the hierarchy.
    EXPECT_TRUE(
        checker::check(ct::IsolationLevel::kReadCommitted, obs, opts).satisfiable());
  }
}

}  // namespace
}  // namespace crooks::repl
