# Empty dependencies file for audit_store.
# This may be replaced when dependencies are built.
