# Empty dependencies file for bench_table2_si_family.
# This may be replaced when dependencies are built.
