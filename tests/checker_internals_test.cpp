// Engine-internal behaviours: version-order corner cases, candidate
// ordering, budget accounting, heuristic fallbacks, and witness shape.
#include <gtest/gtest.h>

#include "checker/checker.hpp"

namespace crooks::checker {
namespace {

using ct::IsolationLevel;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1}, kZ{2};

TEST(ExhaustiveInternals, PartialVersionOrderConstrainsOnlyListedKeys) {
  // x's install order is fixed T2-then-T1; y's is unconstrained (absent).
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).write(kX).build(),
      TxnBuilder(3).read(kX, TxnId{1}).build(),  // needs x's final = T1
  }};
  std::unordered_map<Key, std::vector<TxnId>> vo{{kX, {TxnId{2}, TxnId{1}}}};
  CheckOptions opts;
  opts.version_order = &vo;
  // RC: T3 reads T1's x, which must still be current — with order T2,T1 it
  // is (T1 installs last). Satisfiable.
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kReadCommitted, txns, opts).satisfiable());

  std::unordered_map<Key, std::vector<TxnId>> vo2{{kX, {TxnId{1}, TxnId{2}}}};
  CheckOptions opts2;
  opts2.version_order = &vo2;
  // Order T1,T2: T3 must read T1's x strictly between them; still RC-fine...
  EXPECT_TRUE(
      check_exhaustive(IsolationLevel::kReadCommitted, txns, opts2).satisfiable());
  // ...but SER needs T3's parent complete: T3 between T1 and T2 works too.
  EXPECT_TRUE(
      check_exhaustive(IsolationLevel::kSerializable, txns, opts2).satisfiable());
}

TEST(ExhaustiveInternals, VersionOrderNamesUnknownTxnsGracefully) {
  // Install orders may mention transactions missing from the (partial)
  // observation set; they are simply skipped.
  TransactionSet txns{{TxnBuilder(1).write(kX).build()}};
  std::unordered_map<Key, std::vector<TxnId>> vo{{kX, {TxnId{77}, TxnId{1}}}};
  CheckOptions opts;
  opts.version_order = &vo;
  EXPECT_TRUE(check_exhaustive(IsolationLevel::kReadCommitted, txns, opts).satisfiable());
}

TEST(ExhaustiveInternals, NodesExploredGrowsWithConflict) {
  TransactionSet easy{{TxnBuilder(1).write(kX).build(), TxnBuilder(2).write(kY).build()}};
  const CheckResult e = check_exhaustive(IsolationLevel::kSerializable, easy);
  EXPECT_TRUE(e.satisfiable());
  EXPECT_LE(e.nodes_explored, 4u);  // first path succeeds

  // An unsatisfiable instance must visit the whole (pruned) tree.
  TransactionSet hard{{
      TxnBuilder(1).read(kX, kInitTxn).read(kY, kInitTxn).write(kX).build(),
      TxnBuilder(2).read(kX, kInitTxn).read(kY, kInitTxn).write(kY).build(),
  }};
  const CheckResult h = check_exhaustive(IsolationLevel::kSerializable, hard);
  EXPECT_TRUE(h.unsatisfiable());
  EXPECT_GE(h.nodes_explored, 2u);
}

TEST(ExhaustiveInternals, WitnessPrefersCommitOrderWhenAvailable) {
  TransactionSet txns{{
      TxnBuilder(2).write(kY).at(2, 3).build(),
      TxnBuilder(1).write(kX).at(0, 1).build(),
      TxnBuilder(3).write(kZ).at(4, 5).build(),
  }};
  const CheckResult r = check_exhaustive(IsolationLevel::kSerializable, txns);
  ASSERT_TRUE(r.satisfiable());
  // Candidates are tried in commit order first, so the witness is sorted.
  EXPECT_EQ(r.witness->order(), (std::vector<TxnId>{TxnId{1}, TxnId{2}, TxnId{3}}));
}

TEST(GraphInternals, HeuristicFindsWitnessWithoutVersionOrder) {
  // A pure-read chain, no timestamps: the heuristic dependency order works.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).build(),
      TxnBuilder(3).read(kY, TxnId{2}).build(),
  }};
  const CheckResult r = check_graph(IsolationLevel::kSerializable, txns);
  EXPECT_TRUE(r.satisfiable()) << r.detail;
  EXPECT_NE(r.detail.find("heuristic"), std::string::npos);
}

TEST(GraphInternals, HeuristicGivesUpHonestly) {
  // Untimed multi-writer keys with no version order: the heuristic cannot
  // build a dependency candidate; it must answer kUnknown, never guess.
  TransactionSet txns{{
      TxnBuilder(1).read(kX, kInitTxn).write(kX).build(),
      TxnBuilder(2).read(kX, kInitTxn).write(kX).build(),
  }};
  const CheckResult r = check_graph(IsolationLevel::kAdyaSI, txns);
  EXPECT_EQ(r.outcome, Outcome::kUnknown);
  // The dispatcher resolves it with the exhaustive engine instead.
  EXPECT_TRUE(check(IsolationLevel::kAdyaSI, txns).unsatisfiable());
}

TEST(GraphInternals, SserUsesRealtimeEdgesWithVersionOrder) {
  // T2 starts after T1 commits but reads x=⊥. SER passes (order T2,T1);
  // SSER must fail — via the DSG∪RT cycle once a version order is given.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).write(kY).at(20, 30).build(),
  }};
  std::unordered_map<Key, std::vector<TxnId>> vo{{kX, {TxnId{1}}},
                                                 {kY, {TxnId{2}}}};
  CheckOptions opts;
  opts.version_order = &vo;
  EXPECT_TRUE(check_graph(IsolationLevel::kSerializable, txns, opts).satisfiable());
  const CheckResult sser =
      check_graph(IsolationLevel::kStrictSerializable, txns, opts);
  EXPECT_TRUE(sser.unsatisfiable());
  EXPECT_NE(sser.detail.find("real-time"), std::string::npos) << sser.detail;
}

TEST(GraphInternals, WitnessesAreVerifiedBeforeReporting) {
  // Every satisfiable answer from any engine carries a witness that passes
  // the canonical tests (spot-check across levels on one fixture).
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 1).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).at(2, 3).build(),
  }};
  std::unordered_map<Key, std::vector<TxnId>> vo{{kX, {TxnId{1}}},
                                                 {kY, {TxnId{2}}}};
  CheckOptions opts;
  opts.version_order = &vo;
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult r = check(level, txns, opts);
    ASSERT_TRUE(r.satisfiable()) << ct::name_of(level);
    ASSERT_TRUE(r.witness.has_value());
    EXPECT_TRUE(verify_witness(level, txns, *r.witness).ok);
  }
}

TEST(Dispatch, LargeAdyaSiRefutedThroughHierarchy) {
  // Timestamp-free Adya SI has no complete polynomial decision, but
  // AdyaSI ⇒ PSI: a PSI refutation (polynomial, with a version order)
  // decides instances far beyond the exhaustive threshold. Build a
  // 40-transaction set containing one lost update.
  std::vector<model::Transaction> txns;
  txns.push_back(TxnBuilder(1).read(kX, kInitTxn).write(kX).build());
  txns.push_back(TxnBuilder(2).read(kX, kInitTxn).write(kX).build());
  for (std::uint64_t i = 3; i <= 40; ++i) {
    txns.push_back(TxnBuilder(i).write(Key{i + 100}).build());
  }
  const TransactionSet set(std::move(txns));
  std::unordered_map<Key, std::vector<TxnId>> vo{{kX, {TxnId{1}, TxnId{2}}}};
  for (std::uint64_t i = 3; i <= 40; ++i) vo[Key{i + 100}] = {TxnId{i}};
  CheckOptions opts;
  opts.version_order = &vo;
  const CheckResult r = check(IsolationLevel::kAdyaSI, set, opts);
  EXPECT_TRUE(r.unsatisfiable()) << r.detail;
  EXPECT_NE(r.detail.find("hierarchy"), std::string::npos) << r.detail;
}

TEST(Dispatch, LargeTimedSiSetsAvoidExhaustive) {
  // 200 transactions: far past the exhaustive threshold; the pinned
  // commit-order decision must answer instantly either way.
  std::vector<model::Transaction> txns;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    txns.push_back(TxnBuilder(i)
                       .write(Key{i})
                       .at(static_cast<Timestamp>(2 * i), static_cast<Timestamp>(2 * i + 1))
                       .build());
  }
  const TransactionSet set(std::move(txns));
  const CheckResult r = check(IsolationLevel::kStrongSI, set);
  EXPECT_TRUE(r.satisfiable()) << r.detail;
  // The constructive engine answered — no exhaustive search. Its effort
  // accounting reports the verification pass (one node per transaction),
  // so "which engine" is the signal, not a zero node count.
  EXPECT_EQ(r.engine, "graph");
  EXPECT_EQ(r.nodes_explored, set.size());
}

}  // namespace
}  // namespace crooks::checker
