// Bounded-memory windowing of the online checker, differentially.
//
// The windowed monitor's contract is ONE-SIDED LOSSINESS: against an
// unwindowed OnlineChecker fed the same stream through the same block cuts,
//  * a windowed violation implies an unwindowed violation (never fabricated),
//  * and whenever the lossy-evaluation counters (past_window_reads,
//    past_window_checks) are zero, the verdicts are bit-identical — same ok
//    flags, same first-violation ids, same explanation strings — per level,
//    across all ten levels, mixed assignments, and fuzzed interleavings.
// The suite also pins the operational properties the window exists for: the
// watermark never passes a session's latest applied transaction (a stalled
// session pins the window instead of degrading), a violation whose witness is
// resident is caught even when the other side of the evidence is retired
// (retained columns), duplicate re-appends of retired blocks stay ignored,
// and the model-level fold keeps extend() bit-identical for resident rows.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <sstream>
#include <span>
#include <vector>

#include "checker/checker.hpp"
#include "checker/online.hpp"
#include "model/compiled.hpp"
#include "report/stream_audit.hpp"
#include "store/runner.hpp"
#include "workload/observations.hpp"
#include "workload/workload.hpp"

namespace crooks::checker {
namespace {

using model::CompiledHistory;
using model::Transaction;
using model::TransactionSet;
using model::TxnBuilder;
using model::TxnIdx;

std::vector<Transaction> to_vector(const TransactionSet& txns) {
  std::vector<Transaction> all;
  all.reserve(txns.size());
  for (const Transaction& t : txns) all.push_back(t);
  return all;
}

std::vector<std::vector<Transaction>> interesting_streams() {
  std::vector<std::vector<Transaction>> streams;
  for (std::uint64_t seed : {2u, 13u, 31u}) {
    streams.push_back(to_vector(wl::fuzz_observations(seed, {.transactions = 40,
                                                             .keys = 5,
                                                             .p_dangling = 0.1,
                                                             .p_phantom = 0.1})
                                    .txns));
  }
  streams.push_back(to_vector(
      wl::fuzz_observations(6, {.transactions = 36, .keys = 4, .p_untimestamped = 0.3})
          .txns));
  streams.push_back(to_vector(
      wl::fuzz_observations(8, {.transactions = 30, .keys = 4, .with_timestamps = false})
          .txns));
  for (std::uint64_t seed : {4u, 17u}) {
    const auto intents = wl::generate_mix({.transactions = 80,
                                           .keys = 6,
                                           .reads_per_txn = 2,
                                           .writes_per_txn = 2,
                                           .seed = seed});
    streams.push_back(to_vector(
        store::run(intents, {.mode = store::CCMode::kSnapshotIsolation,
                             .seed = seed + 1, .concurrency = 4, .retries = 3})
            .observations));
  }
  return streams;
}

std::vector<std::size_t> random_cuts(std::size_t n, std::size_t max_block,
                                     std::mt19937_64& rng) {
  std::vector<std::size_t> cuts;
  std::uniform_int_distribution<std::size_t> d(1, max_block);
  for (std::size_t at = 0; at < n;) {
    at = std::min(n, at + d(rng));
    cuts.push_back(at);
  }
  return cuts;
}

void feed(OnlineChecker& chk, const std::vector<Transaction>& all,
          const std::vector<std::size_t>& cuts) {
  std::size_t prev = 0;
  for (std::size_t cut : cuts) {
    chk.append_all(std::span<const Transaction>(all.data() + prev, cut - prev));
    prev = cut;
  }
}

/// The windowed-vs-unwindowed oracle (uniform mode): one-sided always,
/// bit-identical when the windowed run recorded no lossy evaluation.
void expect_one_sided(const OnlineChecker& win, const OnlineChecker& full) {
  EXPECT_EQ(win.stats().hashed_fallback_appends, 0u);
  EXPECT_EQ(win.size(), full.size());
  const bool lossless = win.stats().past_window_reads == 0 &&
                        win.stats().past_window_checks == 0;
  for (ct::IsolationLevel level : ct::kAllLevels) {
    const auto& w = win.status(level);
    const auto& f = full.status(level);
    if (!w.ok) {
      EXPECT_FALSE(f.ok) << ct::name_of(level)
                         << ": windowed fabricated a violation: "
                         << w.explanation;
    }
    if (lossless) {
      EXPECT_EQ(w.ok, f.ok) << ct::name_of(level);
      if (!f.ok && !w.ok) {
        EXPECT_EQ(w.first_violation, f.first_violation) << ct::name_of(level);
        EXPECT_EQ(w.explanation, f.explanation) << ct::name_of(level);
      }
    }
  }
}

TEST(OnlineWindow, DifferentialAgainstUnwindowedAllLevels) {
  std::mt19937_64 rng(4242);
  for (const std::vector<Transaction>& all : interesting_streams()) {
    for (std::size_t window : {4u, 8u, 16u, 64u}) {
      const auto cuts = random_cuts(all.size(), 7, rng);
      OnlineChecker full;
      feed(full, all, cuts);
      OnlineChecker win;
      win.set_window({.max_resident_txns = window});
      feed(win, all, cuts);
      expect_one_sided(win, full);
      if (window < all.size()) {
        EXPECT_LE(win.resident_txns(), all.size());
      }
    }
  }
}

TEST(OnlineWindow, DifferentialSingleLevelCheckers) {
  // Per-level checkers exercise the weak-only direct path (RC/RA/PSI) and
  // the timed paths separately under the window.
  std::mt19937_64 rng(99);
  for (const std::vector<Transaction>& all : interesting_streams()) {
    const auto cuts = random_cuts(all.size(), 5, rng);
    for (ct::IsolationLevel level : ct::kAllLevels) {
      OnlineChecker full({level});
      feed(full, all, cuts);
      OnlineChecker win({level});
      win.set_window({.max_resident_txns = 6});
      feed(win, all, cuts);
      EXPECT_EQ(win.stats().hashed_fallback_appends, 0u);
      const auto& w = win.status(level);
      const auto& f = full.status(level);
      if (!w.ok) {
        EXPECT_FALSE(f.ok) << ct::name_of(level);
      }
      if (win.stats().past_window_reads == 0 &&
          win.stats().past_window_checks == 0) {
        EXPECT_EQ(w.ok, f.ok) << ct::name_of(level);
        if (!f.ok && !w.ok) {
          EXPECT_EQ(w.first_violation, f.first_violation);
          EXPECT_EQ(w.explanation, f.explanation);
        }
      }
    }
  }
}

TEST(OnlineWindow, DifferentialAssignedMode) {
  // Mixed per-transaction levels: re-annotate each fuzzed stream round-robin
  // over a level palette, then compare windowed vs unwindowed single-status
  // verdicts in assigned mode.
  const ct::IsolationLevel palette[] = {
      ct::IsolationLevel::kReadCommitted, ct::IsolationLevel::kPSI,
      ct::IsolationLevel::kSerializable, ct::IsolationLevel::kStrongSI,
      ct::IsolationLevel::kSessionSI};
  std::mt19937_64 rng(777);
  for (const std::vector<Transaction>& base : interesting_streams()) {
    std::vector<Transaction> all;
    all.reserve(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      const Transaction& t = base[i];
      all.emplace_back(t.id(), t.ops(), t.session(), t.site(), t.start_ts(),
                       t.commit_ts(), palette[i % std::size(palette)]);
    }
    const auto cuts = random_cuts(all.size(), 6, rng);
    OnlineChecker full(OnlineChecker::kTrackAssigned,
                       ct::IsolationLevel::kReadAtomic);
    feed(full, all, cuts);
    OnlineChecker win(OnlineChecker::kTrackAssigned,
                      ct::IsolationLevel::kReadAtomic);
    win.set_window({.max_resident_txns = 8});
    feed(win, all, cuts);
    const auto& w = win.assigned_status();
    const auto& f = full.assigned_status();
    if (!w.ok) {
      EXPECT_FALSE(f.ok) << w.explanation;
    }
    if (win.stats().past_window_reads == 0 &&
        win.stats().past_window_checks == 0) {
      EXPECT_EQ(w.ok, f.ok);
      if (!f.ok && !w.ok) {
        EXPECT_EQ(w.first_violation, f.first_violation);
        EXPECT_EQ(w.explanation, f.explanation);
      }
    }
  }
}

TEST(OnlineWindow, StalledSessionPinsWatermark) {
  // Session 1 commits once and goes silent; session 2 streams on. The
  // watermark must never pass session 1's only transaction, so nothing
  // retires (memory grows) — and every verdict stays exactly unwindowed.
  OnlineChecker win;
  win.set_window({.max_resident_txns = 8});
  OnlineChecker full;
  std::uint64_t id = 1;
  Timestamp ts = 0;
  auto emit = [&](SessionId session) {
    const Transaction t = TxnBuilder(id)
                              .write(Key{id % 3})
                              .session(session)
                              .at(ts, ts + 1)
                              .build();
    ++id;
    ts += 2;
    win.append(t);
    full.append(t);
  };
  emit(SessionId{1});
  for (int i = 0; i < 60; ++i) emit(SessionId{2});
  EXPECT_EQ(win.watermark(), 0u);
  EXPECT_EQ(win.stats().window_folds, 0u);
  EXPECT_EQ(win.resident_txns(), win.size());  // RSS grows while stalled
  expect_one_sided(win, full);

  // The stalled session commits again: the window may finally fold.
  emit(SessionId{1});
  for (int i = 0; i < 10; ++i) emit(SessionId{2});
  EXPECT_GT(win.watermark(), 0u);
  EXPECT_GT(win.stats().window_folds, 0u);
  EXPECT_GT(win.stats().retired_txns, 0u);
  EXPECT_LT(win.resident_txns(), win.size());
  expect_one_sided(win, full);
}

TEST(OnlineWindow, ViolationStraddlingWatermark) {
  // The fractured-read witness straddles the fold: the writer retires long
  // before the reader arrives, but its write footprint is a retained column,
  // so the windowed checker still refutes Read Atomic — with the identical
  // explanation, and without a single lossy evaluation.
  std::vector<Transaction> all;
  Timestamp ts = 0;
  all.push_back(TxnBuilder(1).write(Key{100}).write(Key{101}).at(ts, ts + 1).build());
  ts += 2;
  for (std::uint64_t id = 2; id <= 40; ++id) {
    all.push_back(TxnBuilder(id).write(Key{id}).at(ts, ts + 1).build());
    ts += 2;
  }
  // Reads T1's write to 100 but the initial version of 101: fractured.
  all.push_back(TxnBuilder(41)
                    .read(Key{100}, TxnId{1})
                    .read(Key{101}, TxnId{0})
                    .at(ts, ts + 1)
                    .build());

  OnlineChecker full;
  for (const Transaction& t : all) full.append(t);
  OnlineChecker win;
  win.set_window({.max_resident_txns = 8});
  for (const Transaction& t : all) win.append(t);

  ASSERT_GT(win.watermark(), 1u) << "T1 must be retired before T41 arrives";
  EXPECT_EQ(win.stats().past_window_reads, 0u);
  EXPECT_EQ(win.stats().past_window_checks, 0u);
  EXPECT_FALSE(win.status(ct::IsolationLevel::kReadAtomic).ok);
  expect_one_sided(win, full);
}

TEST(OnlineWindow, RetroactiveInversionAcrossRetiredPrefix) {
  // A late transaction whose commit precedes the START of a long-retired
  // transaction: the retroactive real-time scan runs over retained columns,
  // so the inversion is found even though its victim left the window.
  std::vector<Transaction> all;
  Timestamp ts = 100;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    all.push_back(TxnBuilder(id).write(Key{id % 4}).at(ts, ts + 1).build());
    ts += 2;
  }
  // Committed before T1 started, applied last.
  all.push_back(TxnBuilder(99).write(Key{7}).at(10, 11).build());

  OnlineChecker full;
  for (const Transaction& t : all) full.append(t);
  OnlineChecker win;
  win.set_window({.max_resident_txns = 8});
  for (const Transaction& t : all) win.append(t);

  ASSERT_GT(win.watermark(), 1u);
  EXPECT_FALSE(win.status(ct::IsolationLevel::kStrictSerializable).ok);
  EXPECT_FALSE(win.status(ct::IsolationLevel::kStrongSI).ok);
  // The victim (T1) is retired; the violation must still name it.
  expect_one_sided(win, full);
  EXPECT_EQ(win.status(ct::IsolationLevel::kStrictSerializable).first_violation,
            full.status(ct::IsolationLevel::kStrictSerializable).first_violation);
}

TEST(OnlineWindow, DuplicateAppendOfRetiredBlockIgnored) {
  std::vector<Transaction> all;
  Timestamp ts = 0;
  for (std::uint64_t id = 1; id <= 64; ++id) {
    all.push_back(TxnBuilder(id).write(Key{id % 5}).at(ts, ts + 1).build());
    ts += 2;
  }
  OnlineChecker win;
  win.set_window({.max_resident_txns = 8});
  win.append_all(std::span<const Transaction>(all));
  ASSERT_GT(win.watermark(), 10u);
  const auto before = win.stats();

  // Re-append the first 10 transactions — all retired. The id index is a
  // retained column, so they are recognized and ignored, not re-evaluated.
  const std::size_t accepted =
      win.append_all(std::span<const Transaction>(all.data(), 10));
  EXPECT_EQ(accepted, 0u);
  EXPECT_EQ(win.stats().duplicates_ignored, before.duplicates_ignored + 10);
  EXPECT_EQ(win.size(), all.size());
  EXPECT_TRUE(win.all_ok());
}

TEST(OnlineWindow, WindowBytesBoundsResidency) {
  OnlineChecker win;
  win.set_window({.max_resident_bytes = 64 * 1024});
  Timestamp ts = 0;
  for (std::uint64_t id = 1; id <= 2000; ++id) {
    win.append(TxnBuilder(id)
                   .write(Key{id % 16})
                   .read(Key{(id + 1) % 16}, TxnId{0})
                   .at(ts, ts + 1)
                   .build());
    ts += 2;
  }
  EXPECT_GT(win.stats().window_folds, 0u);
  EXPECT_GT(win.watermark(), 0u);
  // The estimate is approximate; hysteresis allows ~1.25× overshoot. Assert
  // an order-of-magnitude bound, not the exact limit.
  EXPECT_LT(win.resident_bytes(), 4 * 64 * 1024u);
  EXPECT_LT(win.resident_txns(), 2000u);
}

// ------------------------------------------------------------- model layer

TEST(CompiledRetire, FoldThenExtendBitIdentical) {
  // After retiring a prefix, every accessor over RESIDENT rows — and every
  // retained column over retired rows — must agree with a never-retired
  // history grown through the same extends.
  for (const std::vector<Transaction>& all : interesting_streams()) {
    CompiledHistory plain;
    CompiledHistory folded;
    std::size_t prev = 0;
    std::mt19937_64 rng(all.size());
    std::vector<std::size_t> cuts = random_cuts(all.size(), 9, rng);
    for (std::size_t cut : cuts) {
      plain.extend(std::span<const Transaction>(all.data() + prev, cut - prev));
      folded.extend(std::span<const Transaction>(all.data() + prev, cut - prev));
      prev = cut;
      if (folded.size() > 12) {
        folded.retire(static_cast<TxnIdx>(folded.size() - 8));
      }
    }
    ASSERT_EQ(plain.size(), folded.size());
    const TxnIdx w = folded.retired();
    for (TxnIdx d = 0; d < plain.size(); ++d) {
      // Retained scalar columns: exact for retired and resident rows alike.
      EXPECT_EQ(plain.id_of(d), folded.id_of(d));
      EXPECT_EQ(plain.start_ts(d), folded.start_ts(d));
      EXPECT_EQ(plain.commit_ts(d), folded.commit_ts(d));
      EXPECT_EQ(plain.session(d), folded.session(d));
      EXPECT_EQ(plain.level_tag(d), folded.level_tag(d));
      const auto wka = plain.write_keys(d), wkb = folded.write_keys(d);
      EXPECT_TRUE(std::equal(wka.begin(), wka.end(), wkb.begin(), wkb.end()))
          << "write_keys " << d;
      for (model::KeyIdx k = 0; k < plain.key_count(); ++k) {
        EXPECT_EQ(plain.writes_key(d, k), folded.writes_key(d, k))
            << d << "/" << k;
      }
      if (d < w) continue;
      // Resident rows: the op arrays must be bit-identical.
      const auto oa = plain.ops(d), ob = folded.ops(d);
      ASSERT_EQ(oa.size(), ob.size()) << "ops of " << d;
      for (std::size_t i = 0; i < oa.size(); ++i) {
        EXPECT_EQ(oa.key(i), ob.key(i)) << d << ":" << i;
        EXPECT_EQ(oa.writer(i), ob.writer(i)) << d << ":" << i;
        EXPECT_EQ(oa.flags(i), ob.flags(i)) << d << ":" << i;
      }
      const auto rka = plain.read_keys(d), rkb = folded.read_keys(d);
      EXPECT_TRUE(std::equal(rka.begin(), rka.end(), rkb.begin(), rkb.end()));
    }
    EXPECT_EQ(plain.ts_order(), folded.ts_order());
  }
}

TEST(CompiledRetire, PendingResolutionPurgedWithPrefix) {
  // T2 awaits T9 (unknown writer). Retiring T2 before T9 arrives must purge
  // the pending patch — the later extend would otherwise write through a
  // reclaimed offset.
  CompiledHistory ch;
  ch.extend(TxnBuilder(2).read(Key{0}, TxnId{9}).at(0, 1).build());
  ch.extend(TxnBuilder(3).write(Key{1}).at(2, 3).build());
  ch.extend(TxnBuilder(4).write(Key{2}).at(4, 5).build());
  const CompiledHistory::RetireStats rs = ch.retire(2);
  EXPECT_EQ(rs.txns, 2u);
  EXPECT_EQ(rs.pending_purged, 1u);
  // T9 arrives after its awaiter was reclaimed: nothing to patch, no crash.
  ch.extend(TxnBuilder(9).write(Key{0}).at(6, 7).build());
  EXPECT_EQ(ch.size(), 4u);
  EXPECT_EQ(ch.retired(), 2u);
}

TEST(CompiledRetire, OfflineEnginesRefuseRetiredHistory) {
  CompiledHistory ch;
  Timestamp ts = 0;
  for (std::uint64_t id = 1; id <= 20; ++id) {
    ch.extend(TxnBuilder(id).write(Key{id % 3}).at(ts, ts + 1).build());
    ts += 2;
  }
  ch.retire(10);
  const CheckResult r = check(ct::IsolationLevel::kSerializable, ch);
  EXPECT_EQ(r.outcome, Outcome::kUnknown);
  EXPECT_NE(r.detail.find("retired"), std::string::npos);
}

// ------------------------------------------------------- stream_audit layer

std::string block_for(std::uint64_t id, std::uint64_t key, Timestamp ts) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "txn %llu start=%lld commit=%lld\nwrite %llu\nend\n",
                static_cast<unsigned long long>(id), static_cast<long long>(ts),
                static_cast<long long>(ts + 1), static_cast<unsigned long long>(key));
  return buf;
}

TEST(StreamAuditWindow, WindowedTailMatchesUnwindowed) {
  std::string text;
  Timestamp ts = 0;
  for (std::uint64_t id = 1; id <= 200; ++id) {
    text += block_for(id, id % 7, ts);
    ts += 2;
  }
  report::StreamAuditOptions opts;
  opts.idle_exit_ms = 1;
  opts.poll_ms = 1;
  opts.window_txns = 16;
  std::istringstream win_in(text);
  std::uint64_t max_resident = 0;
  const report::StreamAuditResult win = report::stream_audit(
      win_in, opts, [&](const report::StreamBlockReport& rep) {
        max_resident = std::max(max_resident,
                                static_cast<std::uint64_t>(rep.resident_txns));
        return true;
      });
  ASSERT_TRUE(win.error.empty()) << win.error;
  EXPECT_EQ(win.transactions, 200u);
  EXPECT_GT(win.checker_stats.retired_txns, 0u);
  EXPECT_GT(win.checker_stats.window_folds, 0u);
  EXPECT_EQ(win.checker_stats.past_window_reads, 0u);
  EXPECT_EQ(win.checker_stats.past_window_checks, 0u);

  report::StreamAuditOptions plain = opts;
  plain.window_txns = 0;
  std::istringstream full_in(text);
  const report::StreamAuditResult full = report::stream_audit(full_in, plain);
  ASSERT_TRUE(full.error.empty());
  for (const auto& [level, st] : full.statuses) {
    const auto it = win.statuses.find(level);
    ASSERT_NE(it, win.statuses.end());
    EXPECT_EQ(it->second.ok, st.ok) << ct::name_of(level);
    EXPECT_EQ(it->second.explanation, st.explanation) << ct::name_of(level);
  }
}

TEST(StreamAuditWindow, MaxBlocksFlushesCompletePartialBlock) {
  // The final line of the last block arrives without its newline. With
  // --max-blocks=1 the single allowed flush used to drop the buffered
  // fragment — a fully-delivered block silently never audited. It must be
  // completed and join the final batch.
  std::string text = block_for(1, 0, 0);
  text += "txn 2 start=2 commit=3\nwrite 1\nend";  // no trailing newline
  report::StreamAuditOptions opts;
  opts.idle_exit_ms = 1;
  opts.poll_ms = 1;
  opts.max_blocks = 1;
  std::istringstream in(text);
  const report::StreamAuditResult r = report::stream_audit(in, opts);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.blocks, 1u);
  EXPECT_EQ(r.transactions, 2u);  // both blocks audited in the one batch

  // Same input WITH the trailing newline must audit identically.
  std::istringstream in2(text + "\n");
  const report::StreamAuditResult r2 = report::stream_audit(in2, opts);
  ASSERT_TRUE(r2.error.empty()) << r2.error;
  EXPECT_EQ(r2.blocks, 1u);
  EXPECT_EQ(r2.transactions, 2u);
}

}  // namespace
}  // namespace crooks::checker
